package cos

import (
	"strconv"
	"time"

	icos "cos/internal/cos"
	"cos/internal/obs"
	"cos/internal/phy"
)

// Link is a simulated CoS sender/receiver pair over an indoor channel. It
// carries the closed loop of the paper's Fig. 8: the receiver measures
// per-subcarrier EVM from each correctly decoded packet and feeds the
// selected control subcarriers (and its measured SNR) back to the sender,
// which adapts both the data rate and the control-message rate.
//
// A Link is thin wiring over three pipeline nodes — Transmitter, Channel,
// and Receiver — each of which owns its own scratch arena, so steady-state
// Sends allocate only the Exchange handed to the caller. The nodes are
// also usable standalone (NewTransmitter, NewChannel, NewReceiver) for
// multi-link topologies.
//
// Create a Link with NewLink and push packets through it with Send.
// A Link is not safe for concurrent use.
type Link struct {
	cfg     config
	tx      *Transmitter
	ch      *Channel
	rx      *Receiver
	now     float64
	seq     int
	metrics linkMetrics
}

// Observer receives every completed exchange, immediately after the link
// finishes processing it and before Send returns. Observers are the
// link's event stream: trace capture, metrics sinks, and experiment
// bookkeeping all consume the same hook (see WithObserver). The Exchange
// is shared — observers must not mutate or retain it past the call.
type Observer func(*Exchange)

// Exchange reports everything observable about one packet exchange.
type Exchange struct {
	// Seq is the 0-based index of this exchange on its link.
	Seq int
	// DataBytes is the sender's data payload length.
	DataBytes int
	// Mode is the 802.11a mode the sender selected.
	Mode phy.Mode
	// DataOK reports whether the data payload passed its frame check.
	DataOK bool
	// Data is the decoded payload (nil when DataOK is false).
	Data []byte
	// ControlSent is the control bit string actually embedded (empty when
	// the budget allowed none or CoS is disabled).
	ControlSent []byte
	// ControlReceived is the control bit string the receiver extracted; it
	// may be longer than ControlSent if trailing noise decoded as extra
	// intervals, or nil if extraction failed outright.
	ControlReceived []byte
	// ControlOK reports whether ControlReceived starts with ControlSent.
	ControlOK bool
	// ControlVerified reports whether the receiver validated the control
	// message through its framing CRC — the receiver-side truth available
	// without knowing the sent bits. Always false unless the link was built
	// with WithControlFraming.
	ControlVerified bool
	// ControlPayload is the CRC-validated payload when ControlVerified.
	ControlPayload []byte
	// SilencesInserted is the number of silence symbols the sender used.
	SilencesInserted int
	// ControlSubcarriers is the subcarrier set used for this packet.
	ControlSubcarriers []int
	// Detection is the energy detector's accuracy against ground truth.
	Detection icos.DetectionStats
	// MeasuredSNRdB is the receiver NIC's SNR estimate for this packet.
	MeasuredSNRdB float64
	// ActualSNRdB is the channel-sounder (ground truth) SNR.
	ActualSNRdB float64
	// Time is the simulation time at which the packet was sent.
	Time float64
	// StageNS is the wall-clock nanoseconds this exchange spent in each
	// pipeline stage, indexed by Stage (zero for stages that did not run,
	// e.g. detection on a data-only packet). The same spans feed the
	// cos_link_stage_*_seconds histograms.
	StageNS [StageCount]int64
	// Probe carries the deep PHY introspection sample for this exchange
	// when the link was built with WithProbe and this exchange was sampled;
	// nil otherwise.
	Probe *Probe
}

// Clone returns a deep copy of the exchange: the slice fields (Data,
// ControlSent, ControlReceived, ControlPayload, ControlSubcarriers) are
// copied and the Probe (when present) is deep-copied too, so the clone
// stays valid after the observer callback returns and the link reuses or
// drops the original. Observers that retain exchanges (trace buffers,
// async sinks) must clone; synchronous consumers that only read fields
// inside the callback need not.
func (ex *Exchange) Clone() *Exchange {
	if ex == nil {
		return nil
	}
	cp := *ex
	cp.Data = append([]byte(nil), ex.Data...)
	cp.ControlSent = append([]byte(nil), ex.ControlSent...)
	cp.ControlReceived = append([]byte(nil), ex.ControlReceived...)
	cp.ControlPayload = append([]byte(nil), ex.ControlPayload...)
	cp.ControlSubcarriers = append([]int(nil), ex.ControlSubcarriers...)
	cp.Probe = ex.Probe.Clone()
	return &cp
}

// linkMetrics holds the link's metric handles, resolved once at
// construction so the per-packet cost is a handful of atomic updates.
// Links sharing a registry (the default) share the counters.
type linkMetrics struct {
	exchanges      *obs.Counter
	dataOK         *obs.Counter
	dataLost       *obs.Counter
	ctrlSent       *obs.Counter
	ctrlOK         *obs.Counter
	ctrlVerified   *obs.Counter
	ctrlBitsSent   *obs.Counter
	silences       *obs.Counter
	feedbackLosses *obs.Counter
	exchangeTime   *obs.Histogram
	ratePackets    *obs.CounterFamily
	probes         *obs.Counter

	// spans times the pipeline stages of every exchange (the flight
	// recorder): per-stage latency histograms plus the per-exchange
	// StageNS drain. Links sharing a registry share the histograms but
	// each link owns its SpanSet, so per-exchange windows never mix. The
	// three nodes of one link share this SpanSet (see stage.go), so one
	// Drain covers the whole pipeline.
	spans *obs.SpanSet

	// SendStream counters (see stream.go).
	streams            *obs.Counter
	streamsDelivered   *obs.Counter
	streamStallAborts  *obs.Counter
	streamFragAborts   *obs.Counter
	streamStalledPkts  *obs.Counter
	fragmentsSent      *obs.Counter
	fragmentsDelivered *obs.Counter
}

func newLinkMetrics(r *obs.Registry) linkMetrics {
	return linkMetrics{
		exchanges: r.Counter("cos_link_exchanges_total",
			"Packet exchanges completed by Link.Send."),
		dataOK: r.Counter("cos_link_data_ok_total",
			"Exchanges whose data payload passed its frame check."),
		dataLost: r.Counter("cos_link_data_lost_total",
			"Exchanges whose data payload failed its frame check."),
		ctrlSent: r.Counter("cos_link_control_sent_total",
			"Exchanges that carried embedded control bits."),
		ctrlOK: r.Counter("cos_link_control_ok_total",
			"Control messages delivered (genie comparison)."),
		ctrlVerified: r.Counter("cos_link_control_verified_total",
			"Control messages validated by the framing CRC."),
		ctrlBitsSent: r.Counter("cos_link_control_bits_total",
			"Control bits embedded across all exchanges."),
		silences: r.Counter("cos_link_silences_total",
			"Silence symbols inserted across all exchanges."),
		feedbackLosses: r.Counter("cos_link_feedback_losses_total",
			"Exchanges after which the sender had no usable feedback (data or feedback-frame loss)."),
		exchangeTime: r.Histogram("cos_link_exchange_seconds",
			"Wall-clock latency of one full Link.Send exchange.", nil),
		ratePackets: r.CounterFamily("cos_link_rate_packets_total",
			"Packets sent per 802.11a data rate.", "rate_mbps"),
		probes: r.Counter("cos_link_probes_total",
			"Deep PHY introspection probes captured (WithProbe sampling)."),
		spans: obs.NewSpanSet(r, "cos_link_stage",
			"Wall-clock latency of one Link.Send pipeline stage", StageNames()),
		streams: r.Counter("cos_stream_sends_total",
			"SendStream transfers started."),
		streamsDelivered: r.Counter("cos_stream_delivered_total",
			"SendStream transfers fully reassembled at the receiver."),
		streamStallAborts: r.Counter("cos_stream_stall_aborts_total",
			"SendStream transfers abandoned after consecutive budget-starved packets."),
		streamFragAborts: r.Counter("cos_stream_fragment_aborts_total",
			"SendStream transfers aborted by a lost or corrupted fragment."),
		streamStalledPkts: r.Counter("cos_stream_stalled_packets_total",
			"Data-only packets pushed while a stream waited out a budget dip."),
		fragmentsSent: r.Counter("cos_stream_fragments_sent_total",
			"Stream fragments embedded into packets."),
		fragmentsDelivered: r.Counter("cos_stream_fragments_delivered_total",
			"Stream fragments CRC-verified at the receiver."),
	}
}

// buildConfig folds options over the default config and validates the
// cross-option constraints shared by NewLink and the node constructors.
func buildConfig(opts []Option) (config, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return cfg, err
		}
	}
	if cfg.fixedRateMbps != 0 {
		if _, err := phy.ModeByRate(cfg.fixedRateMbps); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// NewLink builds a link from options. The zero-option link is PositionB,
// static, 18 dB SNR, adaptive everything.
func NewLink(opts ...Option) (*Link, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	l := &Link{cfg: cfg, metrics: newLinkMetrics(cfg.metrics)}
	ch, err := newChannelNode(cfg, &l.metrics)
	if err != nil {
		return nil, err
	}
	l.tx, err = newTransmitter(cfg, &l.metrics)
	if err != nil {
		return nil, err
	}
	l.ch = ch
	l.rx, err = newReceiver(cfg, ch, &l.metrics)
	if err != nil {
		return nil, err
	}
	return l, nil
}

// Now returns the link's simulation clock in seconds.
func (l *Link) Now() float64 { return l.now }

// clampToBand bounds a measured SNR into the adaptation band of the given
// rate: [its threshold, just below the next mode's threshold].
func clampToBand(snr float64, rateMbps int) float64 {
	modes := phy.Modes()
	for i, m := range modes {
		if m.RateMbps != rateMbps {
			continue
		}
		lo := m.MinSNRdB
		hi := snr
		if i+1 < len(modes) {
			hi = modes[i+1].MinSNRdB - 0.1
		}
		if snr < lo {
			return lo
		}
		if snr > hi {
			return hi
		}
		return snr
	}
	return snr
}

// MaxControlBits reports how many control bits the next Send can embed for
// a payload of dataLen bytes, accounting for the current budget, the
// control subcarrier set, and worst-case interval layout.
func (l *Link) MaxControlBits(dataLen int) (int, error) {
	return l.tx.MaxControlBits(dataLen)
}

// defaultCtrlSCs is the bootstrap control set used before any feedback
// exists: the contiguous mid-band subcarriers of the paper's Fig. 10(a).
var defaultCtrlSCs = []int{9, 10, 11, 12, 13, 14, 15, 16}

// Send transmits one data payload with the given control bits embedded and
// returns the receive-side outcome. len(control) must be a multiple of the
// configured bits-per-interval and fit within MaxControlBits; pass nil to
// send a data-only packet.
func (l *Link) Send(data, control []byte) (*Exchange, error) {
	start := time.Now()

	// Sender node.
	f, err := l.tx.Encode(data, control)
	if err != nil {
		return nil, err
	}
	ex := &Exchange{
		Seq:                l.seq,
		DataBytes:          len(data),
		Mode:               f.Mode,
		Time:               l.now,
		ControlSubcarriers: f.ControlSubcarriers,
	}
	if len(control) > 0 {
		ex.ControlSent = append([]byte(nil), control...)
		ex.SilencesInserted = f.SilencesInserted
	}

	// Channel node.
	rxSamples, actualSNR, err := l.ch.Transmit(f.Samples, l.now)
	if err != nil {
		return nil, err
	}
	ex.ActualSNRdB = actualSNR

	// Receiver node.
	res, err := l.rx.Receive(f, rxSamples, l.now)
	if err != nil {
		return nil, err
	}
	ex.MeasuredSNRdB = res.MeasuredSNRdB
	if res.ControlDecoded {
		// Copy out of the receiver's scratch; keep non-nil even when empty
		// (extraction succeeded, just with no intervals).
		ex.ControlReceived = append(make([]byte, 0, len(res.ControlReceived)), res.ControlReceived...)
	}
	ex.ControlOK = res.ControlOK
	ex.ControlVerified = res.ControlVerified
	ex.ControlPayload = res.ControlPayload
	ex.Detection = res.Detection
	if res.DataOK {
		ex.DataOK = true
		ex.Data = append(make([]byte, 0, len(res.Data)), res.Data...)
	}

	// Close the loop: deliver the receiver's feedback to the transmitter,
	// or note the loss (data or feedback-frame) so the sender falls back to
	// conservative settings (Sec. III-F).
	if res.FeedbackOK {
		l.tx.ApplyFeedback(res.Feedback)
	} else {
		l.tx.NoteLoss()
		l.metrics.feedbackLosses.Inc()
	}

	// Flight recorder epilogue, off the per-packet hot path: the sampled
	// introspection probe (never when WithProbe is absent), then the
	// per-stage latency drain into the exchange.
	if l.cfg.probeEvery > 0 && ex.Seq%l.cfg.probeEvery == 0 {
		probe, err := buildProbe(ex, f.Packet, res.fe, res.mask, res.hard, res.det, f.ControlSubcarriers)
		if err != nil {
			return nil, err
		}
		ex.Probe = probe
		l.metrics.probes.Inc()
		if l.cfg.probeFn != nil {
			l.cfg.probeFn(probe)
		}
	}
	l.metrics.spans.Drain(ex.StageNS[:])

	l.seq++
	l.observe(ex, start)
	l.now += l.cfg.packetInterval
	return ex, nil
}

// observe updates the link's per-exchange metrics and fans the exchange
// out to registered observers.
func (l *Link) observe(ex *Exchange, start time.Time) {
	m := &l.metrics
	m.exchanges.Inc()
	if ex.DataOK {
		m.dataOK.Inc()
	} else {
		m.dataLost.Inc()
	}
	if len(ex.ControlSent) > 0 {
		m.ctrlSent.Inc()
		m.ctrlBitsSent.Add(uint64(len(ex.ControlSent)))
		if ex.ControlOK {
			m.ctrlOK.Inc()
		}
		if ex.ControlVerified {
			m.ctrlVerified.Inc()
		}
	}
	m.silences.Add(uint64(ex.SilencesInserted))
	m.ratePackets.With(strconv.Itoa(ex.Mode.RateMbps)).Inc()
	m.exchangeTime.ObserveSince(start)
	for _, o := range l.cfg.observers {
		o(ex)
	}
}

// clampFeedbackSNR bounds an SNR report to the feedback frame's encodable
// range.
func clampFeedbackSNR(db float64) float64 {
	const lo, hi = -10, 53.75
	if db < lo {
		return lo
	}
	if db > hi {
		return hi
	}
	return db
}

// LastEVM returns the receiver's most recent per-subcarrier EVM picture
// (48 fractions), or nil before the first successful packet.
func (l *Link) LastEVM() []float64 { return l.rx.LastEVM() }

// ControlSubcarriers returns the currently selected control subcarriers.
func (l *Link) ControlSubcarriers() []int { return l.tx.ControlSubcarriers() }
