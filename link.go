package cos

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"time"

	"cos/internal/bits"
	"cos/internal/channel"
	icos "cos/internal/cos"
	"cos/internal/obs"
	"cos/internal/ofdm"
	"cos/internal/phy"
)

// Link is a simulated CoS sender/receiver pair over an indoor channel. It
// carries the closed loop of the paper's Fig. 8: the receiver measures
// per-subcarrier EVM from each correctly decoded packet and feeds the
// selected control subcarriers (and its measured SNR) back to the sender,
// which adapts both the data rate and the control-message rate.
//
// Create a Link with NewLink and push packets through it with Send.
// A Link is not safe for concurrent use.
type Link struct {
	cfg     config
	ch      *channel.TDL
	rng     *rand.Rand
	rateTbl *icos.RateTable
	now     float64
	seq     int
	metrics linkMetrics

	// Receiver feedback state (valid after the first successful packet).
	haveFeedback bool
	// noDetectable records that the last feedback found no subcarrier on
	// which silences could be detected: CoS pauses (budget 0) rather than
	// falling back to the bootstrap set on a channel known to be hostile.
	noDetectable bool
	ctrlSCs      []int
	measuredSNR  float64
	lastEVM      []float64
	lastSCSNRs   []float64
}

// Observer receives every completed exchange, immediately after the link
// finishes processing it and before Send returns. Observers are the
// link's event stream: trace capture, metrics sinks, and experiment
// bookkeeping all consume the same hook (see WithObserver). The Exchange
// is shared — observers must not mutate or retain it past the call.
type Observer func(*Exchange)

// Exchange reports everything observable about one packet exchange.
type Exchange struct {
	// Seq is the 0-based index of this exchange on its link.
	Seq int
	// DataBytes is the sender's data payload length.
	DataBytes int
	// Mode is the 802.11a mode the sender selected.
	Mode phy.Mode
	// DataOK reports whether the data payload passed its frame check.
	DataOK bool
	// Data is the decoded payload (nil when DataOK is false).
	Data []byte
	// ControlSent is the control bit string actually embedded (empty when
	// the budget allowed none or CoS is disabled).
	ControlSent []byte
	// ControlReceived is the control bit string the receiver extracted; it
	// may be longer than ControlSent if trailing noise decoded as extra
	// intervals, or nil if extraction failed outright.
	ControlReceived []byte
	// ControlOK reports whether ControlReceived starts with ControlSent.
	ControlOK bool
	// ControlVerified reports whether the receiver validated the control
	// message through its framing CRC — the receiver-side truth available
	// without knowing the sent bits. Always false unless the link was built
	// with WithControlFraming.
	ControlVerified bool
	// ControlPayload is the CRC-validated payload when ControlVerified.
	ControlPayload []byte
	// SilencesInserted is the number of silence symbols the sender used.
	SilencesInserted int
	// ControlSubcarriers is the subcarrier set used for this packet.
	ControlSubcarriers []int
	// Detection is the energy detector's accuracy against ground truth.
	Detection icos.DetectionStats
	// MeasuredSNRdB is the receiver NIC's SNR estimate for this packet.
	MeasuredSNRdB float64
	// ActualSNRdB is the channel-sounder (ground truth) SNR.
	ActualSNRdB float64
	// Time is the simulation time at which the packet was sent.
	Time float64
	// StageNS is the wall-clock nanoseconds this exchange spent in each
	// pipeline stage, indexed by Stage (zero for stages that did not run,
	// e.g. detection on a data-only packet). The same spans feed the
	// cos_link_stage_*_seconds histograms.
	StageNS [StageCount]int64
	// Probe carries the deep PHY introspection sample for this exchange
	// when the link was built with WithProbe and this exchange was sampled;
	// nil otherwise.
	Probe *Probe
}

// Clone returns a deep copy of the exchange: the slice fields (Data,
// ControlSent, ControlReceived, ControlPayload, ControlSubcarriers) are
// copied, so the clone stays valid after the observer callback returns and
// the link reuses or drops the original. Observers that retain exchanges
// (trace buffers, async sinks) must clone; synchronous consumers that only
// read fields inside the callback need not.
func (ex *Exchange) Clone() *Exchange {
	if ex == nil {
		return nil
	}
	cp := *ex
	cp.Data = append([]byte(nil), ex.Data...)
	cp.ControlSent = append([]byte(nil), ex.ControlSent...)
	cp.ControlReceived = append([]byte(nil), ex.ControlReceived...)
	cp.ControlPayload = append([]byte(nil), ex.ControlPayload...)
	cp.ControlSubcarriers = append([]int(nil), ex.ControlSubcarriers...)
	cp.Probe = ex.Probe.Clone()
	return &cp
}

// linkMetrics holds the link's metric handles, resolved once at
// construction so the per-packet cost is a handful of atomic updates.
// Links sharing a registry (the default) share the counters.
type linkMetrics struct {
	exchanges      *obs.Counter
	dataOK         *obs.Counter
	dataLost       *obs.Counter
	ctrlSent       *obs.Counter
	ctrlOK         *obs.Counter
	ctrlVerified   *obs.Counter
	ctrlBitsSent   *obs.Counter
	silences       *obs.Counter
	feedbackLosses *obs.Counter
	exchangeTime   *obs.Histogram
	ratePackets    *obs.CounterFamily
	probes         *obs.Counter

	// spans times the pipeline stages of every exchange (the flight
	// recorder): per-stage latency histograms plus the per-exchange
	// StageNS drain. Links sharing a registry share the histograms but
	// each link owns its SpanSet, so per-exchange windows never mix.
	spans *obs.SpanSet

	// SendStream counters (see stream.go).
	streams            *obs.Counter
	streamsDelivered   *obs.Counter
	streamStallAborts  *obs.Counter
	streamFragAborts   *obs.Counter
	streamStalledPkts  *obs.Counter
	fragmentsSent      *obs.Counter
	fragmentsDelivered *obs.Counter
}

func newLinkMetrics(r *obs.Registry) linkMetrics {
	return linkMetrics{
		exchanges: r.Counter("cos_link_exchanges_total",
			"Packet exchanges completed by Link.Send."),
		dataOK: r.Counter("cos_link_data_ok_total",
			"Exchanges whose data payload passed its frame check."),
		dataLost: r.Counter("cos_link_data_lost_total",
			"Exchanges whose data payload failed its frame check."),
		ctrlSent: r.Counter("cos_link_control_sent_total",
			"Exchanges that carried embedded control bits."),
		ctrlOK: r.Counter("cos_link_control_ok_total",
			"Control messages delivered (genie comparison)."),
		ctrlVerified: r.Counter("cos_link_control_verified_total",
			"Control messages validated by the framing CRC."),
		ctrlBitsSent: r.Counter("cos_link_control_bits_total",
			"Control bits embedded across all exchanges."),
		silences: r.Counter("cos_link_silences_total",
			"Silence symbols inserted across all exchanges."),
		feedbackLosses: r.Counter("cos_link_feedback_losses_total",
			"Exchanges after which the sender had no usable feedback (data or feedback-frame loss)."),
		exchangeTime: r.Histogram("cos_link_exchange_seconds",
			"Wall-clock latency of one full Link.Send exchange.", nil),
		ratePackets: r.CounterFamily("cos_link_rate_packets_total",
			"Packets sent per 802.11a data rate.", "rate_mbps"),
		probes: r.Counter("cos_link_probes_total",
			"Deep PHY introspection probes captured (WithProbe sampling)."),
		spans: obs.NewSpanSet(r, "cos_link_stage",
			"Wall-clock latency of one Link.Send pipeline stage", StageNames()),
		streams: r.Counter("cos_stream_sends_total",
			"SendStream transfers started."),
		streamsDelivered: r.Counter("cos_stream_delivered_total",
			"SendStream transfers fully reassembled at the receiver."),
		streamStallAborts: r.Counter("cos_stream_stall_aborts_total",
			"SendStream transfers abandoned after consecutive budget-starved packets."),
		streamFragAborts: r.Counter("cos_stream_fragment_aborts_total",
			"SendStream transfers aborted by a lost or corrupted fragment."),
		streamStalledPkts: r.Counter("cos_stream_stalled_packets_total",
			"Data-only packets pushed while a stream waited out a budget dip."),
		fragmentsSent: r.Counter("cos_stream_fragments_sent_total",
			"Stream fragments embedded into packets."),
		fragmentsDelivered: r.Counter("cos_stream_fragments_delivered_total",
			"Stream fragments CRC-verified at the receiver."),
	}
}

// NewLink builds a link from options. The zero-option link is PositionB,
// static, 18 dB SNR, adaptive everything.
func NewLink(opts ...Option) (*Link, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.fixedRateMbps != 0 {
		if _, err := phy.ModeByRate(cfg.fixedRateMbps); err != nil {
			return nil, err
		}
	}
	ch, err := cfg.position.NewVariant(cfg.mobile, cfg.variant)
	if err != nil {
		return nil, err
	}
	return &Link{
		cfg:     cfg,
		ch:      ch,
		rng:     rand.New(rand.NewSource(cfg.seed)),
		rateTbl: icos.DefaultRateTable(),
		metrics: newLinkMetrics(cfg.metrics),
	}, nil
}

// Now returns the link's simulation clock in seconds.
func (l *Link) Now() float64 { return l.now }

// mode returns the data mode for the next packet.
func (l *Link) mode() (phy.Mode, error) {
	if l.cfg.fixedRateMbps != 0 {
		return phy.ModeByRate(l.cfg.fixedRateMbps)
	}
	if !l.haveFeedback {
		// No feedback yet: most robust mode.
		return phy.ModeByRate(6)
	}
	return phy.SelectMode(l.measuredSNR), nil
}

// silenceBudget returns the per-packet silence budget for the next packet.
func (l *Link) silenceBudget() int {
	if !l.cfg.adaptiveBudget {
		return l.cfg.silenceBudget
	}
	if !l.haveFeedback {
		// Sec. III-F: without feedback (e.g. after a loss) use the lowest
		// control rate.
		return l.rateTbl.Fallback()
	}
	snr := l.measuredSNR
	if l.cfg.fixedRateMbps != 0 {
		// The budget table is calibrated against the adaptive SNR->mode
		// mapping. With a pinned rate, clamp the lookup into that mode's
		// band: above the band the pinned mode has *more* headroom than the
		// adaptive mode the table assumes, so the band-top budget is a
		// conservative choice.
		snr = clampToBand(snr, l.cfg.fixedRateMbps)
	}
	return l.rateTbl.Lookup(snr)
}

// clampToBand bounds a measured SNR into the adaptation band of the given
// rate: [its threshold, just below the next mode's threshold].
func clampToBand(snr float64, rateMbps int) float64 {
	modes := phy.Modes()
	for i, m := range modes {
		if m.RateMbps != rateMbps {
			continue
		}
		lo := m.MinSNRdB
		hi := snr
		if i+1 < len(modes) {
			hi = modes[i+1].MinSNRdB - 0.1
		}
		if snr < lo {
			return lo
		}
		if snr > hi {
			return hi
		}
		return snr
	}
	return snr
}

// MaxControlBits reports how many control bits the next Send can embed for
// a payload of dataLen bytes, accounting for the current budget, the
// control subcarrier set, and worst-case interval layout.
func (l *Link) MaxControlBits(dataLen int) (int, error) {
	if l.cfg.disableCoS || l.noDetectable {
		return 0, nil
	}
	mode, err := l.mode()
	if err != nil {
		return 0, err
	}
	budget := l.silenceBudget()
	k := l.cfg.bitsPerInterval
	byBudget := (budget - 1) * k
	if byBudget < 0 {
		byBudget = 0
	}
	if l.cfg.controlFraming {
		byBudget -= icos.FramedBits(0, k) // header+CRC ride in the budget
		if byBudget < 0 {
			byBudget = 0
		}
	}
	nSym := mode.SymbolsForPSDU(dataLen + bits.FCSLen)
	nCtrl := len(l.ctrlSCs)
	if nCtrl == 0 {
		nCtrl = l.cfg.minCtrl
	}
	byCapacity := icos.MaxMessageBits(nSym, nCtrl, k)
	if byCapacity < byBudget {
		return byCapacity, nil
	}
	return byBudget, nil
}

// defaultCtrlSCs is the bootstrap control set used before any feedback
// exists: the contiguous mid-band subcarriers of the paper's Fig. 10(a).
var defaultCtrlSCs = []int{9, 10, 11, 12, 13, 14, 15, 16}

// Send transmits one data payload with the given control bits embedded and
// returns the receive-side outcome. len(control) must be a multiple of the
// configured bits-per-interval and fit within MaxControlBits; pass nil to
// send a data-only packet.
func (l *Link) Send(data, control []byte) (*Exchange, error) {
	start := time.Now()
	mode, err := l.mode()
	if err != nil {
		return nil, err
	}
	if l.cfg.disableCoS && len(control) > 0 {
		return nil, fmt.Errorf("cos: control bits on a CoS-disabled link: %w", ErrCoSDisabled)
	}

	// Sender side.
	spTx := l.metrics.spans.StartSpan(int(StageTxEncode))
	psdu := bits.AppendFCS(data)
	pkt, err := phy.BuildPacket(phy.TxConfig{Mode: mode}, psdu)
	if err != nil {
		return nil, err
	}
	ctrlSCs := l.ctrlSCs
	if len(ctrlSCs) == 0 {
		ctrlSCs = defaultCtrlSCs
	}
	ex := &Exchange{Seq: l.seq, DataBytes: len(data), Mode: mode, Time: l.now, ControlSubcarriers: ctrlSCs}

	var truthMask [][]bool
	wire := control
	if len(control) > 0 {
		maxBits, err := l.MaxControlBits(len(data))
		if err != nil {
			return nil, err
		}
		if len(control) > maxBits {
			return nil, fmt.Errorf("cos: %d control bits exceed the current budget of %d: %w", len(control), maxBits, ErrBudgetExceeded)
		}
		if l.cfg.controlFraming {
			framed, err := icos.FrameControl(control)
			if err != nil {
				return nil, err
			}
			wire, err = icos.PadToInterval(framed, l.cfg.bitsPerInterval)
			if err != nil {
				return nil, err
			}
		} else if len(control)%l.cfg.bitsPerInterval != 0 {
			return nil, fmt.Errorf("cos: %d control bits is not a multiple of k=%d (or use WithControlFraming): %w",
				len(control), l.cfg.bitsPerInterval, ErrControlAlignment)
		}
		truthMask, err = icos.Embed(pkt, ctrlSCs, wire, l.cfg.bitsPerInterval)
		if err != nil {
			return nil, err
		}
		ex.ControlSent = append([]byte(nil), control...)
		ex.SilencesInserted = len(icos.MaskPositions(truthMask, ctrlSCs))
	}

	// Channel.
	samples, err := pkt.Samples()
	if err != nil {
		return nil, err
	}
	spTx.End()
	spCh := l.metrics.spans.StartSpan(int(StageChannel))
	h := l.ch.FrequencyResponse(l.now)
	noiseVar, err := phy.NoiseVarForActualSNR(h, l.cfg.snrDB)
	if err != nil {
		return nil, err
	}
	rx := l.ch.Apply(samples, l.now, noiseVar, l.rng)
	if l.cfg.interferer != nil {
		if _, err := l.cfg.interferer.Apply(rx, l.rng); err != nil {
			return nil, err
		}
	}
	ex.ActualSNRdB, err = phy.ActualSNRdB(h, noiseVar)
	if err != nil {
		return nil, err
	}
	spCh.End()

	// Receiver side.
	spFE := l.metrics.spans.StartSpan(int(StageFrontEnd))
	fe, err := phy.RunFrontEnd(rx)
	if err != nil {
		return nil, err
	}
	ex.MeasuredSNRdB, err = fe.MeasuredSNRdB()
	if err != nil {
		return nil, err
	}
	spFE.End()

	det := icos.Detector{Scheme: mode.Modulation, ThresholdFactor: l.cfg.thresholdFactor}
	var detectedMask [][]bool
	if len(control) > 0 {
		spDet := l.metrics.spans.StartSpan(int(StageDetect))
		detectedMask, err = det.DetectMask(fe, ctrlSCs)
		if err != nil {
			return nil, err
		}
		spDet.End()
		spCtrl := l.metrics.spans.StartSpan(int(StageControlDecode))
		ctrlBits, exErr := icos.DecodeMask(detectedMask, ctrlSCs, l.cfg.bitsPerInterval)
		spCtrl.End()
		if exErr == nil {
			ex.ControlReceived = ctrlBits
			if l.cfg.controlFraming {
				if payload, ok := icos.ParseControl(ctrlBits); ok {
					ex.ControlVerified = true
					ex.ControlPayload = payload
					ex.ControlOK = bits.Equal(payload, control)
				}
			} else {
				ex.ControlOK = len(ctrlBits) >= len(control) && bits.Equal(ctrlBits[:len(control)], control)
			}
		}
		ex.Detection, err = icos.CompareMasks(truthMask, detectedMask, ctrlSCs)
		if err != nil {
			return nil, err
		}
	}

	spEVD := l.metrics.spans.StartSpan(int(StageEVD))
	dec, err := fe.Decode(phy.DecodeConfig{Mode: mode, PSDULen: len(psdu), Erased: detectedMask})
	if err != nil {
		return nil, err
	}
	payload, dataOK := bits.CheckFCS(dec.PSDU)
	spEVD.End()
	if dataOK {
		ex.DataOK = true
		ex.Data = payload
		spFB := l.metrics.spans.StartSpan(int(StageFeedback))
		if err := l.updateFeedback(pkt.Config, fe, dec.PSDU, detectedMask, mode, ex.MeasuredSNRdB); err != nil {
			return nil, err
		}
		spFB.End()
	} else {
		// Loss: the sender gets no feedback; fall back to conservative
		// settings for the next packet (Sec. III-F).
		l.haveFeedback = false
		l.noDetectable = false
		l.ctrlSCs = nil
		l.metrics.feedbackLosses.Inc()
	}

	// Flight recorder epilogue, off the per-packet hot path: the sampled
	// introspection probe (never when WithProbe is absent), then the
	// per-stage latency drain into the exchange.
	if l.cfg.probeEvery > 0 && ex.Seq%l.cfg.probeEvery == 0 {
		probe, err := buildProbe(ex, pkt, fe, detectedMask, dec.HardCodedBits, det, ctrlSCs)
		if err != nil {
			return nil, err
		}
		ex.Probe = probe
		l.metrics.probes.Inc()
		if l.cfg.probeFn != nil {
			l.cfg.probeFn(probe)
		}
	}
	l.metrics.spans.Drain(ex.StageNS[:])

	l.seq++
	l.observe(ex, start)
	l.now += l.cfg.packetInterval
	return ex, nil
}

// observe updates the link's per-exchange metrics and fans the exchange
// out to registered observers.
func (l *Link) observe(ex *Exchange, start time.Time) {
	m := &l.metrics
	m.exchanges.Inc()
	if ex.DataOK {
		m.dataOK.Inc()
	} else {
		m.dataLost.Inc()
	}
	if len(ex.ControlSent) > 0 {
		m.ctrlSent.Inc()
		m.ctrlBitsSent.Add(uint64(len(ex.ControlSent)))
		if ex.ControlOK {
			m.ctrlOK.Inc()
		}
		if ex.ControlVerified {
			m.ctrlVerified.Inc()
		}
	}
	m.silences.Add(uint64(ex.SilencesInserted))
	m.ratePackets.With(strconv.Itoa(ex.Mode.RateMbps)).Inc()
	m.exchangeTime.ObserveSince(start)
	for _, o := range l.cfg.observers {
		o(ex)
	}
}

// updateFeedback recomputes the receiver's EVM picture from the decoded
// packet (re-mapping decoded bits for ideal constellation points, as the
// paper does after a CRC pass) and refreshes the control subcarrier
// selection and SNR feedback.
func (l *Link) updateFeedback(txCfg phy.TxConfig, fe *phy.FrontEnd, psdu []byte, erased [][]bool, mode phy.Mode, measured float64) error {
	grid, err := phy.ReconstructGrid(txCfg, psdu)
	if err != nil {
		return err
	}
	evm := make([]float64, ofdm.NumData)
	counts := make([]int, ofdm.NumData)
	sums := make([]float64, ofdm.NumData)
	for s := 0; s < fe.NumSymbols(); s++ {
		eq, err := fe.Equalized(s)
		if err != nil {
			return err
		}
		row, err := grid.Symbol(s)
		if err != nil {
			return err
		}
		for d := 0; d < ofdm.NumData; d++ {
			if erased != nil && erased[s][d] {
				continue // silences are excluded from EVM (Sec. III-D)
			}
			diff := eq[d] - row[d]
			sums[d] += real(diff)*real(diff) + imag(diff)*imag(diff)
			counts[d]++
		}
	}
	for d := range evm {
		if counts[d] > 0 {
			evm[d] = math.Sqrt(sums[d] / float64(counts[d]))
		}
	}
	snrs, err := fe.SubcarrierSNRs()
	if err != nil {
		return err
	}
	// Smooth the channel picture across packets (EWMA): a single packet's
	// estimate is noisy enough at weak subcarriers to let a borderline
	// subcarrier slip past the detectability floor.
	if l.lastEVM != nil && l.lastSCSNRs != nil {
		const alpha = 0.5
		for d := range evm {
			evm[d] = alpha*evm[d] + (1-alpha)*l.lastEVM[d]
			snrs[d] = alpha*snrs[d] + (1-alpha)*l.lastSCSNRs[d]
		}
	}
	if l.haveFeedback {
		// Smooth the SNR report too: rate selection on a single packet's
		// estimate flaps between modes at band edges.
		const alpha = 0.4
		measured = alpha*measured + (1-alpha)*l.measuredSNR
	}
	nextMode := phy.SelectMode(measured)
	if l.cfg.fixedRateMbps != 0 {
		nextMode = mode
	}
	sel, err := icos.SelectDetectable(evm, snrs, nextMode.Modulation, l.cfg.minCtrl, l.cfg.maxCtrl, 0)
	if err != nil {
		// No detectable subcarriers in this packet's estimate. Keep the
		// previous selection if one exists (estimates fluctuate packet to
		// packet); pause CoS only when there is nothing to fall back on.
		if len(l.ctrlSCs) > 0 {
			sel = l.ctrlSCs
			l.noDetectable = false
		} else {
			sel = nil
			l.noDetectable = true
		}
	} else {
		l.noDetectable = false
	}

	if l.cfg.explicitFeedback {
		// Ship the feedback over the reverse channel (reciprocal) instead
		// of assuming ideal delivery: an ACK-sized frame plus the V symbol.
		fb := icos.Feedback{MeasuredSNRdB: clampFeedbackSNR(measured), Selected: sel}
		frame, err := icos.BuildFeedbackFrame(fb)
		if err != nil {
			return err
		}
		fbNoise, err := phy.NoiseVarForActualSNR(l.ch.FrequencyResponse(l.now), l.cfg.snrDB)
		if err != nil {
			return err
		}
		rx := l.ch.Apply(frame, l.now, fbNoise, l.rng)
		parsed, err := icos.ParseFeedbackFrame(rx, icos.Detector{ThresholdFactor: l.cfg.thresholdFactor})
		if err != nil {
			// Feedback lost: the sender behaves as after a data loss
			// (Sec. III-F) — conservative settings next packet.
			l.metrics.feedbackLosses.Inc()
			l.haveFeedback = false
			l.noDetectable = false
			l.ctrlSCs = nil
			l.lastEVM = evm
			l.lastSCSNRs = snrs
			return nil
		}
		measured = parsed.MeasuredSNRdB
		sel = parsed.Selected
		l.noDetectable = len(sel) == 0
	}

	l.haveFeedback = true
	l.measuredSNR = measured
	l.lastEVM = evm
	l.lastSCSNRs = snrs
	l.ctrlSCs = sel
	return nil
}

// clampFeedbackSNR bounds an SNR report to the feedback frame's encodable
// range.
func clampFeedbackSNR(db float64) float64 {
	const lo, hi = -10, 53.75
	if db < lo {
		return lo
	}
	if db > hi {
		return hi
	}
	return db
}

// LastEVM returns the receiver's most recent per-subcarrier EVM picture
// (48 fractions), or nil before the first successful packet.
func (l *Link) LastEVM() []float64 {
	if l.lastEVM == nil {
		return nil
	}
	out := make([]float64, len(l.lastEVM))
	copy(out, l.lastEVM)
	return out
}

// ControlSubcarriers returns the currently selected control subcarriers.
func (l *Link) ControlSubcarriers() []int {
	src := l.ctrlSCs
	if len(src) == 0 {
		src = defaultCtrlSCs
	}
	out := make([]int, len(src))
	copy(out, src)
	return out
}
