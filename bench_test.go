package cos_test

// Benchmarks, one per figure of the paper's evaluation plus the ablations
// and the core PHY primitives. Each figure benchmark regenerates that
// figure's data series at a reduced scale (benchScale); run
// cmd/cos-figures at scale 1 for publication-quality sweeps.
//
//	go test -bench=. -benchmem

import (
	"context"
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"cos"
	"cos/internal/channel"
	"cos/internal/coding"
	"cos/internal/dsp"
	"cos/internal/experiments"
	"cos/internal/modulation"
	"cos/internal/obs"
	"cos/internal/phy"
)

// benchParallelOut enables TestWriteBenchParallelReport; `make
// bench-parallel` points it at BENCH_parallel.json.
var benchParallelOut = flag.String("bench-parallel-out", "", "write the parallel-engine speedup report to this JSON file")

// benchTraceOut enables TestWriteBenchTraceReport; `make bench-trace`
// points it at BENCH_trace.json.
var benchTraceOut = flag.String("bench-trace-out", "", "write the span/probe overhead report to this JSON file")

// benchPipelineOut enables TestWriteBenchPipelineReport; `make
// bench-pipeline` points it at BENCH_pipeline.json.
var benchPipelineOut = flag.String("bench-pipeline-out", "", "write the pipeline scratch-reuse report to this JSON file")

// benchScale shrinks experiment sample sizes so the full benchmark suite
// completes in minutes; shapes (who wins, where crossovers fall) persist.
const benchScale = 0.05

func runFigureWorkers(b *testing.B, id string, workers int) {
	b.Helper()
	opts := experiments.RunOptions{Scale: benchScale, Workers: workers}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(context.Background(), id, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) == 0 {
			b.Fatalf("%s: empty result", id)
		}
	}
}

func runFigure(b *testing.B, id string) {
	runFigureWorkers(b, id, 1)
}

// --- Parallel engine -----------------------------------------------------

// benchmarkParallel contrasts the serial fast path (workers=1) against the
// worker pool at 2, 4 and GOMAXPROCS workers on the same figure; the output
// is bit-identical across all of them (TestParallelMatchesSerial* assert
// this), so the benchmark isolates pure scheduling overhead/speedup.
// BENCH_parallel.json records the measured ratios.
func benchmarkParallel(b *testing.B, id string) {
	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	for _, w := range counts {
		b.Run(fmtWorkers(w), func(b *testing.B) { runFigureWorkers(b, id, w) })
	}
}

func fmtWorkers(w int) string {
	name := "workers="
	if w >= 10 {
		name += string(rune('0'+w/10)) + string(rune('0'+w%10))
	} else {
		name += string(rune('0' + w))
	}
	return name
}

func BenchmarkParallelFig3(b *testing.B)   { benchmarkParallel(b, "fig3") }
func BenchmarkParallelFig10c(b *testing.B) { benchmarkParallel(b, "fig10c") }
func BenchmarkParallelFig2(b *testing.B)   { benchmarkParallel(b, "fig2") }

// TestWriteBenchParallelReport regenerates BENCH_parallel.json (via
// `make bench-parallel`): for each measured figure it times one serial
// run and one run at GOMAXPROCS workers, asserts the two outputs are
// byte-identical, and records the speedup. It skips itself unless
// -bench-parallel-out is set so `go test ./...` stays fast.
func TestWriteBenchParallelReport(t *testing.T) {
	if *benchParallelOut == "" {
		t.Skip("set -bench-parallel-out to write the report")
	}
	type figureReport struct {
		ID              string  `json:"id"`
		Scale           float64 `json:"scale"`
		Tasks           int     `json:"tasks"`
		SerialSeconds   float64 `json:"serial_seconds"`
		ParallelSeconds float64 `json:"parallel_seconds"`
		Workers         int     `json:"workers"`
		Speedup         float64 `json:"speedup"`
		OutputIdentical bool    `json:"output_identical"`
	}
	workers := runtime.GOMAXPROCS(0)
	timedRun := func(id string, scale float64, w int) (string, float64) {
		start := time.Now()
		res, err := experiments.Run(context.Background(), id,
			experiments.RunOptions{Scale: scale, Workers: w})
		if err != nil {
			t.Fatalf("%s workers=%d: %v", id, w, err)
		}
		return res.String(), time.Since(start).Seconds()
	}
	var figures []figureReport
	for _, m := range []struct {
		id    string
		scale float64
	}{
		{"fig3", 0.25},
		{"fig10c", 0.1},
		{"fig2", 0.5},
	} {
		serialOut, serialSec := timedRun(m.id, m.scale, 1)
		parOut, parSec := timedRun(m.id, m.scale, workers)
		identical := serialOut == parOut
		if !identical {
			t.Errorf("%s: parallel output differs from serial", m.id)
		}
		rows := 0
		for _, c := range serialOut {
			if c == '\n' {
				rows++
			}
		}
		figures = append(figures, figureReport{
			ID: m.id, Scale: m.scale, Tasks: rows,
			SerialSeconds: serialSec, ParallelSeconds: parSec,
			Workers: workers, Speedup: serialSec / parSec,
			OutputIdentical: identical,
		})
	}
	report := struct {
		GeneratedBy string         `json:"generated_by"`
		GoMaxProcs  int            `json:"gomaxprocs"`
		NumCPU      int            `json:"num_cpu"`
		Methodology string         `json:"methodology"`
		Figures     []figureReport `json:"figures"`
	}{
		GeneratedBy: "make bench-parallel",
		GoMaxProcs:  workers,
		NumCPU:      runtime.NumCPU(),
		Methodology: "Each figure is run once at workers=1 (the pool's serial fast " +
			"path) and once at workers=GOMAXPROCS, timing Run() end to end. " +
			"Per-task RNGs are derived as seed^taskIndex and results are " +
			"reassembled in task-index order, so the two outputs are required " +
			"to be byte-identical (output_identical); the speedup therefore " +
			"measures pure scheduling gain on bit-equivalent work. Speedup " +
			"scales with available cores: on a single-CPU host (gomaxprocs=1) " +
			"it is ~1.0 by construction, and the >=3x acceptance figure applies " +
			"to an 8-core runner.",
		Figures: figures,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchParallelOut, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (gomaxprocs=%d)", *benchParallelOut, workers)
}

// TestWriteBenchPipelineReport records the cost of one steady-state
// Link.Send before and after the TX/Channel/RX node split with per-node
// scratch arenas. The "after" numbers are measured live; the "before"
// numbers are frozen from the last pre-split commit, re-measured on this
// container so both sides saw the same hardware.
func TestWriteBenchPipelineReport(t *testing.T) {
	if *benchPipelineOut == "" {
		t.Skip("set -bench-pipeline-out to write the report")
	}
	type metrics struct {
		NsPerOp     int64 `json:"ns_per_op"`
		BytesPerOp  int64 `json:"bytes_per_op"`
		AllocsPerOp int64 `json:"allocs_per_op"`
	}
	// BenchmarkLinkExchange at commit 3831f84 (monolithic Link.Send,
	// allocating PHY helpers), `go test -bench BenchmarkLinkExchange$
	// -benchtime 30x` on this container.
	before := metrics{NsPerOp: 6966938, BytesPerOp: 2067999, AllocsPerOp: 9168}
	res := testing.Benchmark(func(b *testing.B) { runLinkExchange(b) })
	after := metrics{
		NsPerOp:     res.NsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	report := struct {
		GeneratedBy    string  `json:"generated_by"`
		GoMaxProcs     int     `json:"gomaxprocs"`
		NumCPU         int     `json:"num_cpu"`
		Methodology    string  `json:"methodology"`
		Benchmark      string  `json:"benchmark"`
		Before         metrics `json:"before"`
		After          metrics `json:"after"`
		Speedup        float64 `json:"speedup"`
		AllocReduction float64 `json:"alloc_reduction"`
	}{
		GeneratedBy: "make bench-pipeline",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Methodology: "Both sides run BenchmarkLinkExchange: a warmed Link at 20 dB " +
			"(seed 6) sending 1024-byte data packets with adaptive-budget control " +
			"bits, i.e. the full TX -> channel -> RX -> feedback loop per op. " +
			"'before' is frozen from the last commit before the node split, " +
			"re-measured on this same container rather than copied from older " +
			"hardware; 'after' is measured live by this test, so it drifts with " +
			"machine load while allocs_per_op is exact and machine-independent. " +
			"The remaining after-allocations are the returned Exchange and its " +
			"copied-out result slices, which Send must not alias to scratch.",
		Benchmark:      "LinkExchange (1024-byte data, adaptive control bits, SNR 20 dB, seed 6)",
		Before:         before,
		After:          after,
		Speedup:        float64(before.NsPerOp) / float64(after.NsPerOp),
		AllocReduction: 1 - float64(after.AllocsPerOp)/float64(before.AllocsPerOp),
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchPipelineOut, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%.2fx faster, %.1f%% fewer allocs)", *benchPipelineOut,
		report.Speedup, 100*report.AllocReduction)
}

// --- Paper figures -------------------------------------------------------

func BenchmarkFig2SNRGap(b *testing.B)         { runFigure(b, "fig2") }
func BenchmarkFig3DecoderBER(b *testing.B)     { runFigure(b, "fig3") }
func BenchmarkFig5EVM(b *testing.B)            { runFigure(b, "fig5") }
func BenchmarkFig6ErrorPattern(b *testing.B)   { runFigure(b, "fig6") }
func BenchmarkFig7Temporal(b *testing.B)       { runFigure(b, "fig7") }
func BenchmarkFig9Capacity(b *testing.B)       { runFigure(b, "fig9") }
func BenchmarkFig10aMagnitudes(b *testing.B)   { runFigure(b, "fig10a") }
func BenchmarkFig10bThreshold(b *testing.B)    { runFigure(b, "fig10b") }
func BenchmarkFig10cAccuracy(b *testing.B)     { runFigure(b, "fig10c") }
func BenchmarkFig10dInterference(b *testing.B) { runFigure(b, "fig10d") }

// --- Ablations -----------------------------------------------------------

func BenchmarkAblationEVD(b *testing.B)       { runFigure(b, "ablation-evd") }
func BenchmarkAblationPlacement(b *testing.B) { runFigure(b, "ablation-placement") }
func BenchmarkAblationThreshold(b *testing.B) { runFigure(b, "ablation-threshold") }
func BenchmarkControlAccuracy(b *testing.B)   { runFigure(b, "accuracy") }

// --- Core primitives -----------------------------------------------------

func BenchmarkFFT64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 64)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dsp.FFTInPlace(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkViterbiDecode1KB(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 8192+6)
	for i := range data[:8192] {
		data[i] = byte(rng.Intn(2))
	}
	coded, err := coding.ConvEncode(data)
	if err != nil {
		b.Fatal(err)
	}
	metrics, err := coding.HardMetrics(coded, 1)
	if err != nil {
		b.Fatal(err)
	}
	dec := coding.Viterbi{Terminated: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(metrics); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSoftDemap64QAM(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]complex128, 48)
	for i := range pts {
		pts[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, y := range pts {
			if _, err := modulation.QAM64.SoftDemap(y, 0.05); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTxChain1KB(b *testing.B) {
	mode, err := phy.ModeByRate(24)
	if err != nil {
		b.Fatal(err)
	}
	psdu := make([]byte, 1024)
	rand.New(rand.NewSource(4)).Read(psdu)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt, err := phy.BuildPacket(phy.TxConfig{Mode: mode}, psdu)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pkt.Samples(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRxChain1KB(b *testing.B) {
	mode, err := phy.ModeByRate(24)
	if err != nil {
		b.Fatal(err)
	}
	psdu := make([]byte, 1024)
	rng := rand.New(rand.NewSource(5))
	rng.Read(psdu)
	pkt, err := phy.BuildPacket(phy.TxConfig{Mode: mode}, psdu)
	if err != nil {
		b.Fatal(err)
	}
	samples, err := pkt.Samples()
	if err != nil {
		b.Fatal(err)
	}
	ch, err := channel.PositionB.New(false)
	if err != nil {
		b.Fatal(err)
	}
	h := ch.FrequencyResponse(0)
	nv, err := phy.NoiseVarForActualSNR(h, 20)
	if err != nil {
		b.Fatal(err)
	}
	rx := ch.Apply(samples, 0, nv, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fe, err := phy.RunFrontEnd(rx)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fe.Decode(phy.DecodeConfig{Mode: mode, PSDULen: len(psdu)}); err != nil {
			b.Fatal(err)
		}
	}
}

func runLinkExchange(b *testing.B, opts ...cos.Option) {
	b.Helper()
	link, err := cos.NewLink(append([]cos.Option{cos.WithSNR(20), cos.WithSeed(6)}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 1024)
	if _, err := link.Send(data, nil); err != nil {
		b.Fatal(err)
	}
	ctrl := make([]byte, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Follow the adaptive budget: it legitimately dips when the SNR
		// report visits a 3/4-coded band.
		maxBits, err := link.MaxControlBits(len(data))
		if err != nil {
			b.Fatal(err)
		}
		n := len(ctrl)
		if n > maxBits {
			n = maxBits / 4 * 4
		}
		if _, err := link.Send(data, ctrl[:n]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinkExchange(b *testing.B) { runLinkExchange(b) }

// BenchmarkLinkExchangeInstrumented adds the heaviest observability setup a
// session can have — an isolated registry plus an attached observer — on
// top of the always-on pipeline metrics. Comparing against
// BenchmarkLinkExchange bounds the marginal cost of the hook itself;
// BENCH_obs.json records both against the pre-instrumentation baseline.
func BenchmarkLinkExchangeInstrumented(b *testing.B) {
	var observed int
	runLinkExchange(b,
		cos.WithMetricsRegistry(cos.NewMetricsRegistry()),
		cos.WithObserver(func(ex *cos.Exchange) { observed++ }),
	)
	if observed == 0 {
		b.Fatal("observer never fired")
	}
}

// BenchmarkLinkExchangeProbed64 runs the exchange with the flight
// recorder's sampled probe at the documented operating point (every 64th
// packet); the amortized overhead against BenchmarkLinkExchange is what
// the BENCH_trace.json budget bounds.
func BenchmarkLinkExchangeProbed64(b *testing.B) {
	runLinkExchange(b, cos.WithProbe(64, nil))
}

// BenchmarkLinkExchangeProbed1 probes every packet — the worst case, for
// sizing what a probe itself costs (it re-demodulates the whole packet).
func BenchmarkLinkExchangeProbed1(b *testing.B) {
	runLinkExchange(b, cos.WithProbe(1, nil))
}

// TestWriteBenchTraceReport regenerates BENCH_trace.json (via `make
// bench-trace`): it times the exchange loop with spans only (the always-on
// flight-recorder path), with a probe every 64th packet, and with a probe
// on every packet, then records the ratios. The acceptance budget is
// probed64/base <= 1.02: sampled probes must stay within 2% of the
// span-only pipeline. It skips itself unless -bench-trace-out is set so
// `go test ./...` stays fast.
func TestWriteBenchTraceReport(t *testing.T) {
	if *benchTraceOut == "" {
		t.Skip("set -bench-trace-out to write the report")
	}
	const packets = 400
	timedSession := func(opts ...cos.Option) float64 {
		all := append([]cos.Option{cos.WithSNR(20), cos.WithSeed(6)}, opts...)
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			link, err := cos.NewLink(all...)
			if err != nil {
				t.Fatal(err)
			}
			data := make([]byte, 1024)
			ctrl := make([]byte, 24)
			start := time.Now()
			for i := 0; i < packets; i++ {
				maxBits, err := link.MaxControlBits(len(data))
				if err != nil {
					t.Fatal(err)
				}
				n := len(ctrl)
				if n > maxBits {
					n = maxBits / 4 * 4
				}
				if _, err := link.Send(data, ctrl[:n]); err != nil {
					t.Fatal(err)
				}
			}
			sec := time.Since(start).Seconds()
			if best == 0 || sec < best {
				best = sec
			}
		}
		return best
	}
	base := timedSession()
	probed64 := timedSession(cos.WithProbe(64, nil))
	probed1 := timedSession(cos.WithProbe(1, nil))
	report := struct {
		GeneratedBy     string  `json:"generated_by"`
		Packets         int     `json:"packets"`
		Reps            int     `json:"reps"`
		BaseSeconds     float64 `json:"base_seconds"`
		Probed64Seconds float64 `json:"probed64_seconds"`
		Probed1Seconds  float64 `json:"probed1_seconds"`
		Probed64Ratio   float64 `json:"probed64_ratio"`
		Probed1Ratio    float64 `json:"probed1_ratio"`
		BudgetRatio     float64 `json:"budget_ratio"`
		WithinBudget    bool    `json:"within_budget"`
		Methodology     string  `json:"methodology"`
	}{
		GeneratedBy: "make bench-trace",
		Packets:     packets, Reps: 3,
		BaseSeconds: base, Probed64Seconds: probed64, Probed1Seconds: probed1,
		Probed64Ratio: probed64 / base, Probed1Ratio: probed1 / base,
		BudgetRatio: 1.02, WithinBudget: probed64/base <= 1.02,
		Methodology: "Each configuration sends 400 packets (24 control bits, " +
			"adaptive budget) on a fresh seed-6 link, three repetitions, best-of-3 " +
			"wall clock — the same exchange loop as BenchmarkLinkExchange. base " +
			"carries the always-on span layer; probed64 adds cos.WithProbe(64,nil), " +
			"the documented sampling floor; probed1 probes every packet to size the " +
			"raw probe cost. The acceptance budget bounds probed64_ratio at 1.02 " +
			"(sampled probes within 2% of the span-only pipeline); probed1 is " +
			"informational and expected well above it, since every probe " +
			"re-demodulates the packet against the transmitted grid.",
	}
	if !report.WithinBudget {
		t.Errorf("probed64/base = %.4f exceeds the 1.02 budget", report.Probed64Ratio)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchTraceOut, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (probed64 ratio %.4f, probed1 ratio %.4f)",
		*benchTraceOut, report.Probed64Ratio, report.Probed1Ratio)
}

// BenchmarkObsCounterHot measures the per-update cost of the metric
// primitive the pipeline leans on hardest (Counter.Inc under contention).
func BenchmarkObsCounterHot(b *testing.B) {
	c := obs.NewRegistry().Counter("bench_hot_total", "benchmark counter")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkAblationQuantization(b *testing.B) { runFigure(b, "ablation-quantization") }
