package cos_test

import (
	"math/rand"
	"testing"

	"cos"
)

// TestPipelineMetricsEndToEnd runs a realistic session against the default
// registry and asserts the deep-pipeline counters — detector errors,
// Viterbi erasures, rate-table transitions — actually move. It pins the
// contract that instrumentation reaches every stage, not just the link
// wrapper.
func TestPipelineMetricsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-packet session")
	}
	cos.DefaultMetrics().Reset()

	// 12 dB with 16 control bits per packet: low enough for detector
	// errors and rate flapping, high enough for control to mostly work
	// (parameters validated against a cos-sim run with the same seed).
	link, err := cos.NewLink(cos.WithSNR(12), cos.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 1024)
	const packets = 400
	for i := 0; i < packets; i++ {
		rng.Read(data)
		budget, err := link.MaxControlBits(len(data))
		if err != nil {
			t.Fatal(err)
		}
		n := 16
		if n > budget {
			n = budget
		}
		n = n / 4 * 4
		ctrl := make([]byte, n)
		for j := range ctrl {
			ctrl[j] = byte(rng.Intn(2))
		}
		if _, err := link.Send(data, ctrl); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
	}

	snap := cos.MetricsSnapshot()
	mustBePositive := []string{
		"cos_link_exchanges_total",
		"cos_link_data_ok_total",
		"cos_link_control_sent_total",
		"cos_link_silences_total",
		"cos_detector_scans_total",
		"cos_detector_false_positives_total",
		"cos_detector_false_negatives_total",
		"cos_ratectl_lookups_total",
		"cos_ratectl_transitions_total",
		"coding_viterbi_decodes_total",
		"coding_viterbi_erased_metrics_total",
		"phy_tx_packets_total",
		"phy_rx_frontends_total",
		"phy_rx_decodes_total",
		"cos_link_exchange_seconds_count",
	}
	for _, name := range mustBePositive {
		if snap[name] <= 0 {
			t.Errorf("%s = %v, want > 0", name, snap[name])
		}
	}
	if got := snap["cos_link_exchanges_total"]; got != packets {
		t.Errorf("cos_link_exchanges_total = %v, want %d", got, packets)
	}
	// Latency quantiles must be ordered and sane.
	p50, p99 := snap["cos_link_exchange_seconds_p50"], snap["cos_link_exchange_seconds_p99"]
	if p50 <= 0 || p99 < p50 {
		t.Errorf("exchange latency quantiles: p50=%v p99=%v", p50, p99)
	}
}
