package cos_test

import (
	"fmt"
	"log"

	"cos"
)

// The canonical flow: bootstrap the feedback loop with one data packet,
// then piggyback control bits on the next.
func ExampleNewLink() {
	link, err := cos.NewLink(
		cos.WithPosition(cos.PositionB),
		cos.WithSNR(20),
		cos.WithSeed(1),
		cos.WithFixedRate(24),
	)
	if err != nil {
		log.Fatal(err)
	}
	data := make([]byte, 1024)
	if _, err := link.Send(data, nil); err != nil { // bootstrap
		log.Fatal(err)
	}
	control := []byte{0, 0, 1, 0, 0, 1, 1, 0} // "0010 0110" -> intervals 2, 6
	ex, err := link.Send(data, control)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("data delivered:", ex.DataOK)
	fmt.Println("control delivered:", ex.ControlOK)
	// Output:
	// data delivered: true
	// control delivered: true
}

// Control framing lets the receiver validate messages by CRC instead of
// comparing against known content.
func ExampleWithControlFraming() {
	link, err := cos.NewLink(
		cos.WithSNR(20),
		cos.WithSeed(2),
		cos.WithFixedRate(24),
		cos.WithControlFraming(),
	)
	if err != nil {
		log.Fatal(err)
	}
	data := make([]byte, 1024)
	if _, err := link.Send(data, nil); err != nil {
		log.Fatal(err)
	}
	ex, err := link.Send(data, []byte{1, 0, 1, 1, 0}) // any length
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified:", ex.ControlVerified)
	fmt.Println("payload:", ex.ControlPayload)
	// Output:
	// verified: true
	// payload: [1 0 1 1 0]
}

// MaxControlBits reports the current adaptive budget before sending.
func ExampleLink_MaxControlBits() {
	link, err := cos.NewLink(cos.WithSNR(18), cos.WithSeed(3), cos.WithSilenceBudget(9), cos.WithFixedRate(12))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := link.Send(make([]byte, 1024), nil); err != nil {
		log.Fatal(err)
	}
	bits, err := link.MaxControlBits(1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bits) // (9 silences - 1 start marker) * 4 bits per interval
	// Output:
	// 32
}
