package cos

import (
	"math/rand"

	"cos/internal/ofdm"
	"cos/internal/scenario"
)

// Channel is the propagation node between a Transmitter and a Receiver: the
// configured scenario's channel model (the indoor tapped-delay line by
// default) plus AWGN at the configured SNR and the scenario's interferer.
// It owns the link's noise RNG, so forward (Transmit) and reverse (Reverse,
// for explicit feedback) traffic draw from one stream exactly as a
// reciprocal channel should. Received sample buffers are scratch, valid
// until the next call of the same method. A Channel is not safe for
// concurrent use.
type Channel struct {
	cfg     config
	model   scenario.ChannelModel
	intf    scenario.Interferer
	rng     *rand.Rand
	metrics *linkMetrics

	fwd []complex128
	rev []complex128
}

// NewChannel builds a standalone channel node from link options. Inside a
// Link the channel is wired up by NewLink.
func NewChannel(opts ...Option) (*Channel, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	m := newLinkMetrics(cfg.metrics)
	return newChannelNode(cfg, &m)
}

func newChannelNode(cfg config, m *linkMetrics) (*Channel, error) {
	model, err := cfg.scenario.NewChannel(scenario.Geometry{
		Position: cfg.position,
		Mobile:   cfg.mobile,
		Variant:  cfg.variant,
	})
	if err != nil {
		return nil, err
	}
	intf, err := cfg.scenario.NewInterferer()
	if err != nil {
		return nil, err
	}
	if cfg.interferer != nil {
		// WithInterference overrides the scenario's interferer.
		intf = cfg.interferer
	}
	return &Channel{
		cfg:     cfg,
		model:   model,
		intf:    intf,
		rng:     rand.New(rand.NewSource(cfg.seed)),
		metrics: m,
	}, nil
}

// FrequencyResponse returns the channel's per-subcarrier response at
// simulation time now, and whether the model exposes one (flat and TDL
// models do; abstract channels may not).
func (c *Channel) FrequencyResponse(now float64) ([ofdm.NumSubcarriers]complex128, bool) {
	fr, ok := c.model.(scenario.FrequencyResponder)
	if !ok {
		return [ofdm.NumSubcarriers]complex128{}, false
	}
	return fr.FrequencyResponse(now), true
}

// Transmit propagates a frame's samples through the channel at simulation
// time now: the scenario's channel model (convolution plus AWGN scaled to
// the configured SNR) and its interferer if one is configured. It returns
// the received samples (scratch, valid until the next Transmit) and the
// channel-sounder (ground truth) SNR in dB.
func (c *Channel) Transmit(samples []complex128, now float64) ([]complex128, float64, error) {
	sp := c.metrics.span(StageChannel)
	var actual float64
	var err error
	c.fwd, actual, err = c.model.Propagate(c.fwd, samples, now, c.cfg.snrDB, c.rng)
	if err != nil {
		return nil, 0, err
	}
	if c.intf != nil {
		if _, err := c.intf.Apply(c.fwd, c.rng); err != nil {
			return nil, 0, err
		}
	}
	sp.End()
	return c.fwd, actual, nil
}

// Reverse carries an explicit-feedback frame back over the same channel
// (reciprocity). The interferer does not apply — feedback frames are
// ACK-sized and ride the reverse direction. The returned samples are
// scratch, valid until the next Reverse.
func (c *Channel) Reverse(frame []complex128, now float64) ([]complex128, error) {
	var err error
	c.rev, _, err = c.model.Propagate(c.rev, frame, now, c.cfg.snrDB, c.rng)
	if err != nil {
		return nil, err
	}
	return c.rev, nil
}
