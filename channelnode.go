package cos

import (
	"math/rand"

	"cos/internal/channel"
	"cos/internal/phy"
)

// Channel is the propagation node between a Transmitter and a Receiver: a
// tapped-delay-line indoor channel plus AWGN at the configured SNR and the
// optional pulse interferer. It owns the link's noise RNG, so forward
// (Transmit) and reverse (Reverse, for explicit feedback) traffic draw
// from one stream exactly as a reciprocal channel should. Received sample
// buffers are scratch, valid until the next call of the same method. A
// Channel is not safe for concurrent use.
type Channel struct {
	cfg     config
	tdl     *channel.TDL
	rng     *rand.Rand
	metrics *linkMetrics

	taps []complex128
	fwd  []complex128
	rev  []complex128
}

// NewChannel builds a standalone channel node from link options. Inside a
// Link the channel is wired up by NewLink.
func NewChannel(opts ...Option) (*Channel, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	m := newLinkMetrics(cfg.metrics)
	return newChannelNode(cfg, &m)
}

func newChannelNode(cfg config, m *linkMetrics) (*Channel, error) {
	tdl, err := cfg.position.NewVariant(cfg.mobile, cfg.variant)
	if err != nil {
		return nil, err
	}
	return &Channel{
		cfg:     cfg,
		tdl:     tdl,
		rng:     rand.New(rand.NewSource(cfg.seed)),
		metrics: m,
	}, nil
}

// Transmit propagates a frame's samples through the channel at simulation
// time now: TDL convolution, AWGN scaled to the configured SNR, and the
// pulse interferer if one is configured. It returns the received samples
// (scratch, valid until the next Transmit) and the channel-sounder
// (ground truth) SNR in dB.
func (c *Channel) Transmit(samples []complex128, now float64) ([]complex128, float64, error) {
	sp := c.metrics.span(StageChannel)
	// Taps are evaluated once and reused for the frequency response and the
	// convolution; tap evaluation draws no randomness, so this matches
	// separate FrequencyResponse/Apply calls bit for bit.
	c.taps = c.tdl.TapsInto(c.taps, now)
	h := channel.FrequencyResponseFrom(c.taps)
	noiseVar, err := phy.NoiseVarForActualSNR(h, c.cfg.snrDB)
	if err != nil {
		return nil, 0, err
	}
	c.fwd = channel.ApplyTo(c.fwd, samples, c.taps, noiseVar, c.rng)
	if c.cfg.interferer != nil {
		if _, err := c.cfg.interferer.Apply(c.fwd, c.rng); err != nil {
			return nil, 0, err
		}
	}
	actual, err := phy.ActualSNRdB(h, noiseVar)
	if err != nil {
		return nil, 0, err
	}
	sp.End()
	return c.fwd, actual, nil
}

// Reverse carries an explicit-feedback frame back over the same channel
// (reciprocity). The interferer does not apply — feedback frames are
// ACK-sized and ride the reverse direction. The returned samples are
// scratch, valid until the next Reverse.
func (c *Channel) Reverse(frame []complex128, now float64) ([]complex128, error) {
	c.taps = c.tdl.TapsInto(c.taps, now)
	h := channel.FrequencyResponseFrom(c.taps)
	noiseVar, err := phy.NoiseVarForActualSNR(h, c.cfg.snrDB)
	if err != nil {
		return nil, err
	}
	c.rev = channel.ApplyTo(c.rev, frame, c.taps, noiseVar, c.rng)
	return c.rev, nil
}
