# Standard entry points; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race ci bench bench-parallel bench-trace bench-pipeline bench-serve bench-events bench-cache bench-jobtrace bench-scenario bench-fleet figures figures-quick fuzz cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# The pre-merge gate: compile, vet, formatting, quick tests, the pipeline
# refactor's byte-equality + steady-state alloc guards, the node wiring
# under the race detector, and the parallel engine's determinism/
# cancellation tests under the race detector (the parallel tests exercise
# workers 2, 4 and 7 internally), plus the serve daemon's drain and
# cancellation paths under the race detector (signal-vs-submit,
# drain-window expiry, and client cancellation all race by design), and
# the durable store's WAL replay + cache recovery paths under the race
# detector (WAL appends race admission and completion by design), and the
# flight-recorder trace paths (capture determinism, cache reuse, restart
# durability, HTTP round trip) under the race detector, and the scenario
# registry's serve path (by-name jobs end-to-end, typed rejection,
# /scenarios listing) plus a reduced-scale scenario head-to-head bench,
# both under the race detector, and the fleet coordinator's failover /
# mid-run-growth / byte-identity paths under the race detector (workers,
# kill, and add-backend race the dispatch queue by design).
ci: build vet
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) test -short ./...
	$(GO) test -run 'TestPipelineGolden|TestLinkSendSteadyStateAllocs|TestStandaloneNodesMatchLink' .
	$(GO) test -race -run 'TestPipelineNodesRace|TestStandaloneNodesMatchLink' .
	$(GO) test -race -run 'TestParallelMatchesSerial|TestRunnerCancellation' ./internal/experiments/
	$(GO) test -race -run 'TestServerDrain|TestServerDrainCancelsSlowJobs|TestJobCancel|TestDeterministicNDJSON' ./internal/serve/
	$(GO) test -race -run 'TestSIGTERMDrainsGracefully|TestRestartServesDurableResults' ./cmd/cos-serve/
	$(GO) test -race ./internal/serve/store/ ./internal/serve/cache/
	$(GO) test -race -run 'TestCacheHit|TestStoreRecovery|TestFailedJobsSettle' ./internal/serve/
	$(GO) test -race -run 'TestSlowSubscriberNeverBlocksProducer|TestJournalFanoutConcurrency' ./internal/obs/event/
	$(GO) test -race -run 'TestEventsSlowConsumerGap|TestEventsFollowStreamsLive|TestEventsResumeAfterEviction|TestJobLifecycleEvents' ./internal/serve/ ./internal/serve/http/
	$(GO) test -race -run 'TestTracedJobsByteIdentical|TestTraceCacheReuse|TestTraceSurvivesRestart|TestTraceRoundTrip' ./internal/serve/ ./internal/serve/http/
	$(GO) test -race -run 'TestScenarioJobsEndToEnd|TestSubmitUnknownScenario|TestScenariosEndpoint' ./internal/serve/http/
	$(GO) test -race -run TestWriteBenchScenarioReport -bench-scenario-out /tmp/BENCH_scenario.ci.json -bench-scenario-packets 40 .
	$(GO) test -race ./internal/fleet/

bench:
	$(GO) test -bench=. -benchmem

# Regenerate BENCH_parallel.json: times each figure serially (workers=1)
# and at GOMAXPROCS workers, asserts the outputs are byte-identical, and
# records the speedup. Fully deterministic apart from the wall-clock
# timings themselves.
bench-parallel:
	$(GO) test -run TestWriteBenchParallelReport -bench-parallel-out BENCH_parallel.json -v .

# Regenerate BENCH_trace.json: times the exchange loop span-only, with a
# probe every 64th packet, and with a probe every packet, and checks the
# sampled-probe overhead stays within the 2% budget.
bench-trace:
	$(GO) test -run TestWriteBenchTraceReport -bench-trace-out BENCH_trace.json -v .

# Regenerate BENCH_pipeline.json: measures a steady-state Link.Send
# (ns/op, B/op, allocs/op) on the staged node pipeline and compares it to
# the frozen pre-split baseline re-measured on the same container.
bench-pipeline:
	$(GO) test -run TestWriteBenchPipelineReport -bench-pipeline-out BENCH_pipeline.json -v .

# Regenerate BENCH_serve.json: saturates a GOMAXPROCS-sharded cos-serve
# pool with small link jobs for a fixed window (resubmitting on 429) and
# records sustained jobs/sec plus p50/p99 job latency from the server's
# own status timestamps.
bench-serve:
	$(GO) test -v ./internal/serve/ -run TestWriteBenchServeReport -bench-serve-out $(CURDIR)/BENCH_serve.json

# Regenerate BENCH_events.json: costs the operations plane at three levels
# (raw journal append, per-exchange stage observer on a bare link, serve
# throughput with the journal on vs off) and enforces the ~2% overhead
# budget on the serve path.
bench-events:
	$(GO) test -v -timeout 20m ./internal/serve/ -run TestWriteBenchEventsReport -bench-events-out $(CURDIR)/BENCH_events.json

# Regenerate BENCH_cache.json: runs N distinct link specs cold, resubmits
# them warm against the content-addressed result cache, asserts every warm
# stream is byte-identical to its cold run, and enforces the >= 10x
# warm/cold jobs-per-second acceptance bar.
bench-cache:
	$(GO) test -v ./internal/serve/ -run TestWriteBenchCacheReport -bench-cache-out $(CURDIR)/BENCH_cache.json

# Regenerate BENCH_jobtrace.json: saturates the shard pool with distinct
# link jobs untraced, traced event-only, and traced with a probe every 8th
# packet (best of 3 each); records jobs/sec and run p99 per mode, uses the
# untraced run-to-run spread as the noise floor for the ~0% untraced
# overhead claim, and re-runs the probed pass to assert byte-identical
# capture.
bench-jobtrace:
	$(GO) test -v -timeout 20m ./internal/serve/ -run TestWriteBenchJobtraceReport -bench-jobtrace-out $(CURDIR)/BENCH_jobtrace.json

# Regenerate BENCH_scenario.json: drives the same fixed-seed send schedule
# through the default CoS-silence/indoor-TDL world, the OFDM-padding
# embedding on the same channel, and the hybrid BSC/PEC outdoor channel
# under CoS silence (preset + harsher operating point), recording packet
# delivery, control accuracy, silence spend, and throughput per world.
bench-scenario:
	$(GO) test -run TestWriteBenchScenarioReport -bench-scenario-out $(CURDIR)/BENCH_scenario.json -v .

# Regenerate BENCH_fleet.json: dispatches the same distinct link specs
# through fleet coordinators over 1, 2, and 4 in-process cos-serve
# backends, asserts every topology's assembly is byte-identical to the
# single-backend run, and records jobs/sec plus the 2x/4x scaling ratios
# (with an honest single-CPU methodology note when GOMAXPROCS=1).
bench-fleet:
	$(GO) test -v ./internal/fleet/ -run TestWriteBenchFleetReport -bench-fleet-out $(CURDIR)/BENCH_fleet.json

# Publication-quality data for every paper figure and ablation (~10 min).
figures:
	$(GO) run ./cmd/cos-figures -fig all -scale 1 -out results/

figures-quick:
	$(GO) run ./cmd/cos-figures -fig all -scale 0.1 -out results/

fuzz:
	$(GO) test ./internal/cos/ -run xxx -fuzz FuzzParseControl -fuzztime 30s
	$(GO) test ./internal/cos/ -run xxx -fuzz FuzzIntervalRoundTrip -fuzztime 30s
	$(GO) test ./internal/scenario/ -run xxx -fuzz FuzzParseRef -fuzztime 30s

cover:
	$(GO) test -cover ./...

clean:
	rm -rf results/
