# Standard entry points; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race ci bench figures figures-quick fuzz cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# The pre-merge gate: compile, vet, formatting, quick tests.
ci: build vet
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem

# Publication-quality data for every paper figure and ablation (~10 min).
figures:
	$(GO) run ./cmd/cos-figures -fig all -scale 1 -out results/

figures-quick:
	$(GO) run ./cmd/cos-figures -fig all -scale 0.1 -out results/

fuzz:
	$(GO) test ./internal/cos/ -run xxx -fuzz FuzzParseControl -fuzztime 30s
	$(GO) test ./internal/cos/ -run xxx -fuzz FuzzIntervalRoundTrip -fuzztime 30s

cover:
	$(GO) test -cover ./...

clean:
	rm -rf results/
