package cos

import (
	"fmt"

	"cos/internal/channel"
	"cos/internal/obs"
	"cos/internal/scenario"
	_ "cos/internal/scenario/all" // register the built-in scenario components
)

// Position identifies a canonical indoor receiver placement; the three
// placements of the paper's measurement campaign differ in how much
// frequency-selective fading they exhibit.
type Position = channel.Position

// Canonical positions (re-exported from the channel simulator).
const (
	PositionA    = channel.PositionA
	PositionB    = channel.PositionB
	PositionC    = channel.PositionC
	PositionFlat = channel.PositionFlat
)

// config collects Link settings; built by options.
type config struct {
	position         Position
	mobile           bool
	variant          int64
	scenario         scenario.Scenario
	seed             int64
	snrDB            float64
	fixedRateMbps    int
	bitsPerInterval  int
	minCtrl          int
	maxCtrl          int
	thresholdFactor  float64
	silenceBudget    int
	adaptiveBudget   bool
	interferer       *channel.PulseInterferer
	packetInterval   float64
	disableCoS       bool
	explicitFeedback bool
	controlFraming   bool
	observers        []Observer
	metrics          *obs.Registry
	probeEvery       int
	probeFn          func(*Probe)
}

func defaultConfig() config {
	return config{
		position:        PositionB,
		seed:            1,
		snrDB:           18,
		bitsPerInterval: 4,
		minCtrl:         4,
		maxCtrl:         8,
		adaptiveBudget:  true,
		packetInterval:  2e-3,
		metrics:         obs.Default(),
	}
}

// Option configures a Link.
type Option func(*config) error

// WithPosition selects the channel geometry (default PositionB).
func WithPosition(p Position) Option {
	return func(c *config) error {
		if _, err := p.Config(false); err != nil {
			return &ConfigError{Option: "WithPosition", Reason: err.Error(), Err: err}
		}
		c.position = p
		return nil
	}
}

// WithMobile enables walking-speed Doppler (the paper's mobile scenario).
func WithMobile() Option {
	return func(c *config) error {
		c.mobile = true
		return nil
	}
}

// WithChannelVariant selects an independent channel realization of the same
// position geometry; useful for averaging experiments.
func WithChannelVariant(v int64) Option {
	return func(c *config) error {
		c.variant = v
		return nil
	}
}

// WithSeed sets the noise/payload RNG seed (default 1). Two links built
// with identical options produce identical sample-level behaviour.
func WithSeed(seed int64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithSNR sets the true (channel-sounder) SNR in dB at which packets are
// received (default 18).
func WithSNR(db float64) Option {
	return func(c *config) error {
		if db < -10 || db > 60 {
			return &ConfigError{Option: "WithSNR", Reason: fmt.Sprintf("SNR %v dB out of the supported [-10,60] range", db)}
		}
		c.snrDB = db
		return nil
	}
}

// WithFixedRate pins the data rate in Mb/s instead of SNR-based adaptation.
func WithFixedRate(mbps int) Option {
	return func(c *config) error {
		c.fixedRateMbps = mbps
		return nil
	}
}

// WithBitsPerInterval sets k, the control bits carried per inter-silence
// interval (default 4, as in the paper).
func WithBitsPerInterval(k int) Option {
	return func(c *config) error {
		if k < 1 || k > 16 {
			return &ConfigError{Option: "WithBitsPerInterval", Reason: fmt.Sprintf("bits per interval %d out of range [1,16]", k)}
		}
		c.bitsPerInterval = k
		return nil
	}
}

// WithControlSubcarrierRange bounds how many control subcarriers the
// selection algorithm uses (defaults 4..8).
func WithControlSubcarrierRange(min, max int) Option {
	return func(c *config) error {
		if min < 1 || (max != 0 && max < min) {
			return &ConfigError{Option: "WithControlSubcarrierRange", Reason: fmt.Sprintf("bad control subcarrier range [%d,%d]", min, max)}
		}
		c.minCtrl, c.maxCtrl = min, max
		return nil
	}
}

// WithDetectorFactor scales the energy-detection threshold (default 1.0).
func WithDetectorFactor(f float64) Option {
	return func(c *config) error {
		if f <= 0 {
			return &ConfigError{Option: "WithDetectorFactor", Reason: fmt.Sprintf("detector factor %v must be positive", f)}
		}
		c.thresholdFactor = f
		return nil
	}
}

// WithSilenceBudget fixes the per-packet silence budget instead of adaptive
// control-rate selection.
func WithSilenceBudget(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return &ConfigError{Option: "WithSilenceBudget", Reason: fmt.Sprintf("negative silence budget %d", n)}
		}
		c.silenceBudget = n
		c.adaptiveBudget = false
		return nil
	}
}

// WithScenario selects a registered world scenario by name — the channel
// model, interferer, mobility, and control-bit embedding scheme composed
// end-to-end ("default", "pulse", "mobile", "hybrid-bscpec",
// "ofdm-padding", ...; see internal/scenario and `cos-sim
// -list-scenarios`). Optional params configure the scenario's
// parameterized component (e.g. WithScenario("pulse", 40, 160, 0.004)
// sets the interferer's power, burst length, and start probability).
// Geometry options (WithPosition, WithMobile, WithChannelVariant) still
// apply; a scenario with Mobility forces the mobile channel.
func WithScenario(name string, params ...float64) Option {
	return func(c *config) error {
		sc, err := scenario.Resolve(name, params...)
		if err != nil {
			return &ConfigError{Option: "WithScenario", Reason: err.Error(), Err: err}
		}
		c.scenario = sc
		return nil
	}
}

// WithInterference adds a pulse interferer to the link (Fig. 10(d)). It
// overrides the scenario's interferer when both are configured.
//
// Deprecated: WithInterference predates the scenario registry; use
// WithScenario("pulse", power, burstLen, startProb), which configures an
// identical link. It is kept as a thin wrapper for compatibility.
func WithInterference(power float64, burstLen int, startProb float64) Option {
	return func(c *config) error {
		p := &channel.PulseInterferer{Power: power, BurstLen: burstLen, StartProb: startProb}
		if err := p.Validate(); err != nil {
			return &ConfigError{Option: "WithInterference", Reason: err.Error(), Err: err}
		}
		c.interferer = p
		return nil
	}
}

// WithPacketInterval sets the simulated time between packet transmissions
// in seconds (default 2 ms); it drives channel evolution in mobile links.
func WithPacketInterval(seconds float64) Option {
	return func(c *config) error {
		if seconds <= 0 {
			return &ConfigError{Option: "WithPacketInterval", Reason: fmt.Sprintf("packet interval %v must be positive", seconds)}
		}
		c.packetInterval = seconds
		return nil
	}
}

// WithExplicitFeedback transports the receiver's feedback over the reverse
// channel as the paper describes (Sec. III-A/D): an ACK-sized frame at the
// base rate carrying the measured SNR, plus one OFDM symbol whose silences
// encode the selected-subcarrier vector V. Without this option feedback is
// delivered ideally (the default, matching the paper's assumption that ACKs
// are reliable). Feedback frames share the forward channel by reciprocity.
func WithExplicitFeedback() Option {
	return func(c *config) error {
		c.explicitFeedback = true
		return nil
	}
}

// WithControlFraming wraps every control message in an 8-bit length header
// and an 8-bit CRC before interval encoding. The receiver then validates
// messages without knowing their content in advance — the integrity layer a
// deployable CoS needs, since one detection error shifts every later
// interval. Costs 16 bits of control budget per message.
func WithControlFraming() Option {
	return func(c *config) error {
		c.controlFraming = true
		return nil
	}
}

// WithObserver registers an observer on the link's exchange stream; every
// completed Send (and every packet SendStream pushes) is delivered to
// each observer in registration order. Trace capture
// (trace.Writer.Observer), metrics sinks, and experiment bookkeeping all
// ride this one hook.
func WithObserver(o Observer) Option {
	return func(c *config) error {
		if o == nil {
			return &ConfigError{Option: "WithObserver", Reason: "nil observer"}
		}
		c.observers = append(c.observers, o)
		return nil
	}
}

// WithProbe samples a deep PHY introspection Probe every nth exchange
// (every=1 probes every packet): per-subcarrier EVM, the symbol-error
// waterfall, erasure positions, and detector energy margins — the state
// behind the paper's Figs. 5-7, captured live instead of re-simulated.
//
// Probes re-demodulate the whole packet against the transmitted grid, so
// they are far more expensive than the exchange itself; sampling keeps
// them off the hot path (the BENCH_trace.json overhead budget assumes
// every >= 64 for long sessions). Without this option no probe work runs
// at all. fn may be nil: the probe is still attached to Exchange.Probe,
// where observers (e.g. trace capture into schema v2) pick it up; when
// non-nil, fn is called synchronously with each probe before observers
// run and must not retain it without Clone.
func WithProbe(every int, fn func(*Probe)) Option {
	return func(c *config) error {
		if every < 1 {
			return &ConfigError{Option: "WithProbe", Reason: fmt.Sprintf("sampling interval %d must be >= 1", every)}
		}
		c.probeEvery = every
		c.probeFn = fn
		return nil
	}
}

// WithMetricsRegistry redirects the link's metrics to r instead of the
// process-wide default registry — an isolated registry lets tests assert
// exact counts without cross-talk from other links.
func WithMetricsRegistry(r *MetricsRegistry) Option {
	return func(c *config) error {
		if r == nil {
			return &ConfigError{Option: "WithMetricsRegistry", Reason: "nil metrics registry"}
		}
		c.metrics = r
		return nil
	}
}

// WithoutCoS disables silence insertion entirely: the link behaves as plain
// 802.11a. Used as the experimental control.
func WithoutCoS() Option {
	return func(c *config) error {
		c.disableCoS = true
		return nil
	}
}
