package cos

import (
	"math"

	"cos/internal/bits"
	icos "cos/internal/cos"
	"cos/internal/ofdm"
	"cos/internal/phy"
	"cos/internal/scenario"
)

// RxResult reports the receive-side outcome of one frame. Its slice fields
// alias the receiver's scratch storage, so a result is valid only until
// the next Receive on the same receiver; Link copies what it hands to
// callers.
type RxResult struct {
	// MeasuredSNRdB is the receiver NIC's SNR estimate for this frame.
	MeasuredSNRdB float64
	// DataOK reports whether the data payload passed its frame check.
	DataOK bool
	// Data is the decoded payload (nil when DataOK is false).
	Data []byte
	// ControlDecoded reports whether interval extraction produced a control
	// bit string at all (ControlReceived is meaningful only when true).
	ControlDecoded bool
	// ControlReceived is the control bit string the receiver extracted; it
	// may be longer than the sent bits if trailing noise decoded as extra
	// intervals.
	ControlReceived []byte
	// ControlOK reports whether ControlReceived starts with the sent bits.
	ControlOK bool
	// ControlVerified reports whether the receiver validated the control
	// message through its framing CRC.
	ControlVerified bool
	// ControlPayload is the CRC-validated payload when ControlVerified.
	ControlPayload []byte
	// Detection is the energy detector's accuracy against ground truth.
	Detection icos.DetectionStats
	// Feedback is what the receiver would feed back to the transmitter;
	// meaningful only when FeedbackOK.
	Feedback LinkFeedback
	// FeedbackOK reports whether feedback reached the sender: false after
	// a data loss, and false when an explicit feedback frame was lost.
	FeedbackOK bool

	// Probe ingredients (package-internal: Link's flight recorder).
	fe   *phy.FrontEnd
	hard []byte
	mask [][]bool
	det  icos.Detector
}

// Receiver is the receive-side pipeline node: front end, silence
// detection, control-interval decoding, erasure Viterbi decoding, and the
// feedback computation of the paper's Fig. 8 closed loop. It owns a
// reusable scratch arena, so steady-state Receive calls allocate only
// where the selection algorithm does; results alias that arena and are
// valid until the next Receive. A Receiver is not safe for concurrent use.
type Receiver struct {
	cfg     config
	emb     scenario.Embedding
	ch      *Channel
	metrics *linkMetrics

	// Feedback state (valid after the first successful frame). lastSel
	// mirrors the selection last delivered to the transmitter.
	haveFeedback bool
	measuredSNR  float64
	lastSel      []int
	haveEVM      bool
	lastEVM      [ofdm.NumData]float64
	lastSCSNRs   [ofdm.NumData]float64

	// Scratch, reused across Receives (the embedding owns the
	// mask/interval scratch).
	rx     phy.RxScratch
	ref    phy.TxScratch // reconstructed-grid scratch for feedback EVM
	eq     []complex128
	evm    [ofdm.NumData]float64
	sums   [ofdm.NumData]float64
	counts [ofdm.NumData]int
	snrs   [ofdm.NumData]float64
	res    RxResult
}

// NewReceiver builds a standalone receiver node from link options. The
// channel carries explicit feedback frames on its reverse direction (it
// may be nil when WithExplicitFeedback is not used). Inside a Link the
// receiver is wired up by NewLink.
func NewReceiver(ch *Channel, opts ...Option) (*Receiver, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	m := newLinkMetrics(cfg.metrics)
	return newReceiver(cfg, ch, &m)
}

func newReceiver(cfg config, ch *Channel, m *linkMetrics) (*Receiver, error) {
	emb, err := cfg.scenario.NewEmbedding()
	if err != nil {
		return nil, err
	}
	return &Receiver{cfg: cfg, emb: emb, ch: ch, metrics: m}, nil
}

// LastEVM returns the receiver's most recent per-subcarrier EVM picture
// (48 fractions), or nil before the first successful frame.
func (r *Receiver) LastEVM() []float64 {
	if !r.haveEVM {
		return nil
	}
	out := make([]float64, ofdm.NumData)
	copy(out, r.lastEVM[:])
	return out
}

// Receive processes one frame's received samples: front end, silence
// detection and control decoding (when the frame carried control bits),
// erasure Viterbi data decoding, and — after a CRC pass — the feedback
// computation. The result aliases the receiver's scratch and is valid
// until the next Receive.
func (r *Receiver) Receive(f *Frame, samples []complex128, now float64) (*RxResult, error) {
	res := &r.res
	*res = RxResult{}

	spFE := r.metrics.span(StageFrontEnd)
	fe, err := phy.RunFrontEndInto(&r.rx, samples)
	if err != nil {
		return nil, err
	}
	res.MeasuredSNRdB, err = fe.MeasuredSNRdB()
	if err != nil {
		return nil, err
	}
	spFE.End()

	det := icos.Detector{Scheme: f.Mode.Modulation, ThresholdFactor: r.cfg.thresholdFactor}
	var detectedMask [][]bool
	if len(f.ControlBits) > 0 {
		spDet := r.metrics.span(StageDetect)
		detectedMask, err = r.emb.Mask(fe, f.Mode, f.ControlSubcarriers, r.cfg.thresholdFactor)
		if err != nil {
			return nil, err
		}
		spDet.End()
	}

	spEVD := r.metrics.span(StageEVD)
	dec, err := fe.DecodeInto(&r.rx, phy.DecodeConfig{Mode: f.Mode, PSDULen: f.PSDULen, Erased: detectedMask})
	if err != nil {
		return nil, err
	}
	payload, dataOK := bits.CheckFCS(dec.PSDU)
	spEVD.End()

	if len(f.ControlBits) > 0 {
		// Control extraction runs after data decoding so embeddings that
		// ride the data bits (padding) can read the decode result; the
		// silence path draws no randomness here, so the order is free.
		spCtrl := r.metrics.span(StageControlDecode)
		ctrlBits, exErr := r.emb.Extract(dec, detectedMask, f.ControlSubcarriers, r.cfg.bitsPerInterval)
		spCtrl.End()
		if exErr == nil {
			res.ControlDecoded = true
			res.ControlReceived = ctrlBits
			if r.cfg.controlFraming {
				if payload, ok := icos.ParseControl(ctrlBits); ok {
					res.ControlVerified = true
					res.ControlPayload = payload
					res.ControlOK = bits.Equal(payload, f.ControlBits)
				}
			} else {
				res.ControlOK = len(ctrlBits) >= len(f.ControlBits) && bits.Equal(ctrlBits[:len(f.ControlBits)], f.ControlBits)
			}
		}
		if f.TruthMask != nil || detectedMask != nil {
			res.Detection, err = icos.CompareMasks(f.TruthMask, detectedMask, f.ControlSubcarriers)
			if err != nil {
				return nil, err
			}
		}
	}

	if dataOK {
		res.DataOK = true
		res.Data = payload
		spFB := r.metrics.span(StageFeedback)
		fb, ok, err := r.updateFeedback(f, fe, dec.PSDU, detectedMask, res.MeasuredSNRdB, now)
		if err != nil {
			return nil, err
		}
		res.Feedback, res.FeedbackOK = fb, ok
		spFB.End()
	} else {
		// Loss: no feedback reaches the sender; reset the receiver's own
		// selection mirror so both ends fall back together (Sec. III-F).
		r.haveFeedback = false
		r.lastSel = nil
	}

	res.fe = fe
	res.hard = dec.HardCodedBits
	res.mask = detectedMask
	res.det = det
	return res, nil
}

// updateFeedback recomputes the receiver's EVM picture from the decoded
// packet (re-mapping decoded bits for ideal constellation points, as the
// paper does after a CRC pass) and refreshes the control subcarrier
// selection and SNR feedback. The bool result reports whether the
// feedback reached the sender (false when an explicit feedback frame was
// lost).
func (r *Receiver) updateFeedback(f *Frame, fe *phy.FrontEnd, psdu []byte, erased [][]bool, measured float64, now float64) (LinkFeedback, bool, error) {
	grid, err := phy.ReconstructGridInto(&r.ref, f.Packet.Config, psdu)
	if err != nil {
		return LinkFeedback{}, false, err
	}
	r.evm = [ofdm.NumData]float64{}
	r.sums = [ofdm.NumData]float64{}
	r.counts = [ofdm.NumData]int{}
	for s := 0; s < fe.NumSymbols(); s++ {
		r.eq, err = fe.EqualizedInto(r.eq, s)
		if err != nil {
			return LinkFeedback{}, false, err
		}
		row, err := grid.Symbol(s)
		if err != nil {
			return LinkFeedback{}, false, err
		}
		for d := 0; d < ofdm.NumData; d++ {
			if erased != nil && erased[s][d] {
				continue // silences are excluded from EVM (Sec. III-D)
			}
			diff := r.eq[d] - row[d]
			r.sums[d] += real(diff)*real(diff) + imag(diff)*imag(diff)
			r.counts[d]++
		}
	}
	for d := range r.evm {
		if r.counts[d] > 0 {
			r.evm[d] = math.Sqrt(r.sums[d] / float64(r.counts[d]))
		}
	}
	if _, err := fe.SubcarrierSNRsInto(r.snrs[:]); err != nil {
		return LinkFeedback{}, false, err
	}
	// Smooth the channel picture across packets (EWMA): a single packet's
	// estimate is noisy enough at weak subcarriers to let a borderline
	// subcarrier slip past the detectability floor.
	if r.haveEVM {
		const alpha = 0.5
		for d := range r.evm {
			r.evm[d] = alpha*r.evm[d] + (1-alpha)*r.lastEVM[d]
			r.snrs[d] = alpha*r.snrs[d] + (1-alpha)*r.lastSCSNRs[d]
		}
	}
	if r.haveFeedback {
		// Smooth the SNR report too: rate selection on a single packet's
		// estimate flaps between modes at band edges.
		const alpha = 0.4
		measured = alpha*measured + (1-alpha)*r.measuredSNR
	}
	nextMode := phy.SelectMode(measured)
	if r.cfg.fixedRateMbps != 0 {
		nextMode = f.Mode
	}
	noDetectable := false
	sel, err := icos.SelectDetectable(r.evm[:], r.snrs[:], nextMode.Modulation, r.cfg.minCtrl, r.cfg.maxCtrl, 0)
	if err != nil {
		// No detectable subcarriers in this packet's estimate. Keep the
		// previous selection if one exists (estimates fluctuate packet to
		// packet); pause CoS only when there is nothing to fall back on.
		if len(r.lastSel) > 0 {
			sel = r.lastSel
		} else {
			sel = nil
			noDetectable = true
		}
	}

	if r.cfg.explicitFeedback {
		// Ship the feedback over the reverse channel (reciprocal) instead
		// of assuming ideal delivery: an ACK-sized frame plus the V symbol.
		fb := icos.Feedback{MeasuredSNRdB: clampFeedbackSNR(measured), Selected: sel}
		frame, err := icos.BuildFeedbackFrame(fb)
		if err != nil {
			return LinkFeedback{}, false, err
		}
		rxf, err := r.ch.Reverse(frame, now)
		if err != nil {
			return LinkFeedback{}, false, err
		}
		parsed, err := icos.ParseFeedbackFrame(rxf, icos.Detector{ThresholdFactor: r.cfg.thresholdFactor})
		if err != nil {
			// Feedback lost: the sender behaves as after a data loss
			// (Sec. III-F) — conservative settings next packet.
			r.haveFeedback = false
			r.lastSel = nil
			r.storeEVM()
			return LinkFeedback{}, false, nil
		}
		measured = parsed.MeasuredSNRdB
		sel = parsed.Selected
		noDetectable = len(sel) == 0
	}

	r.haveFeedback = true
	r.measuredSNR = measured
	r.storeEVM()
	r.lastSel = sel
	return LinkFeedback{MeasuredSNRdB: measured, ControlSubcarriers: sel, NoDetectable: noDetectable}, true, nil
}

// storeEVM records the (post-smoothing) EVM and SNR pictures as the
// baseline for the next packet's EWMA.
func (r *Receiver) storeEVM() {
	r.lastEVM = r.evm
	r.lastSCSNRs = r.snrs
	r.haveEVM = true
}
