package cos

import (
	"bytes"
	"math/rand"
	"testing"
)

func randBits(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(2))
	}
	return out
}

func TestLinkDataOnly(t *testing.T) {
	link, err := NewLink(WithSNR(20), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 512)
	rand.New(rand.NewSource(12)).Read(data)
	ex, err := link.Send(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.DataOK {
		t.Fatal("data-only packet failed at 20 dB")
	}
	if !bytes.Equal(ex.Data, data) {
		t.Error("payload corrupted")
	}
	if ex.SilencesInserted != 0 || len(ex.ControlSent) != 0 {
		t.Error("data-only packet should carry no silences")
	}
}

func TestLinkControlDelivery(t *testing.T) {
	// 18 dB actual lands the link in the 24 Mb/s (16QAM,1/2) band, where
	// the spare code redundancy sustains a healthy control budget.
	link, err := NewLink(WithSNR(18), WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	data := make([]byte, 1024)
	rng.Read(data)

	// Bootstrap packet (no feedback yet): conservative settings.
	ex, err := link.Send(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.DataOK {
		t.Fatal("bootstrap packet failed")
	}
	if ex.Mode.RateMbps != 6 {
		t.Errorf("bootstrap mode = %v, want 6 Mb/s", ex.Mode)
	}

	// Subsequent packets ride the adapted rate and carry control bits.
	// The budget legitimately shrinks when the smoothed SNR report visits
	// a 3/4-coded band, so follow it rather than demand a floor.
	delivered, dataOK, attempts, sent, adapted := 0, 0, 0, 0, 0
	for i := 0; i < 20; i++ {
		maxBits, err := link.MaxControlBits(len(data))
		if err != nil {
			t.Fatal(err)
		}
		ctrl := randBits(rng, min(maxBits/4*4, 32))
		ex, err := link.Send(data, ctrl)
		if err != nil {
			t.Fatal(err)
		}
		attempts++
		if len(ex.ControlSent) > 0 {
			sent++
			if ex.ControlOK {
				delivered++
			}
		}
		if ex.DataOK {
			dataOK++
		}
		if ex.Mode.RateMbps > 6 {
			adapted++
		}
	}
	if sent < attempts*6/10 {
		t.Errorf("control embedded on only %d/%d packets at 18 dB", sent, attempts)
	}
	if delivered < sent*8/10 {
		t.Errorf("control delivered %d/%d at 18 dB; want >= 80%%", delivered, sent)
	}
	if dataOK < attempts*9/10 {
		t.Errorf("data PRR %d/%d at 18 dB; want >= 90%%", dataOK, attempts)
	}
	if adapted < attempts/2 {
		t.Errorf("rate adapted above 6 Mb/s on only %d/%d packets", adapted, attempts)
	}
}

func TestLinkAdaptsRateToSNR(t *testing.T) {
	for _, c := range []struct {
		snr     float64
		minRate int
		maxRate int
	}{
		{8, 6, 18}, {14, 12, 36}, {25, 36, 54},
	} {
		link, err := NewLink(WithSNR(c.snr), WithSeed(15), WithPosition(PositionC))
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 256)
		var last *Exchange
		for i := 0; i < 4; i++ {
			last, err = link.Send(data, nil)
			if err != nil {
				t.Fatal(err)
			}
		}
		if last.Mode.RateMbps < c.minRate || last.Mode.RateMbps > c.maxRate {
			t.Errorf("SNR %v: adapted to %v, want within [%d,%d] Mb/s",
				c.snr, last.Mode, c.minRate, c.maxRate)
		}
	}
}

func TestLinkSelectsWeakSubcarriers(t *testing.T) {
	// QPSK keeps the detectability floor low so weak subcarriers remain
	// usable for control; with higher-order QAM at this SNR the selection
	// correctly retreats to stronger subcarriers.
	link, err := NewLink(WithSNR(20), WithSeed(16), WithPosition(PositionA), WithFixedRate(12))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 512)
	if _, err := link.Send(data, nil); err != nil {
		t.Fatal(err)
	}
	evm := link.LastEVM()
	if evm == nil {
		t.Fatal("no EVM feedback after a successful packet")
	}
	sel := link.ControlSubcarriers()
	if len(sel) == 0 {
		t.Fatal("no control subcarriers selected")
	}
	// Selected subcarriers should have above-median EVM (they are chosen
	// weakest-first among detectable ones).
	var all []float64
	all = append(all, evm...)
	median := medianOf(all)
	weak := 0
	for _, sc := range sel {
		if evm[sc] >= median {
			weak++
		}
	}
	if weak*2 < len(sel) {
		t.Errorf("only %d/%d selected subcarriers are above-median EVM", weak, len(sel))
	}
}

func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := range s {
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
	return s[len(s)/2]
}

func TestLinkLossResetsToConservative(t *testing.T) {
	link, err := NewLink(WithSNR(30), WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 128)
	if _, err := link.Send(data, nil); err != nil {
		t.Fatal(err)
	}
	// Simulate loss by forcing internal state as a failed packet would.
	link.tx.NoteLoss()
	ex, err := link.Send(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Mode.RateMbps != 6 {
		t.Errorf("post-loss mode = %v, want 6 Mb/s fallback", ex.Mode)
	}
}

func TestLinkDisabledCoSRejectsControl(t *testing.T) {
	link, err := NewLink(WithoutCoS())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := link.Send(make([]byte, 64), []byte{1, 0, 1, 0}); err == nil {
		t.Error("control on disabled link should error")
	}
	n, err := link.MaxControlBits(64)
	if err != nil || n != 0 {
		t.Errorf("MaxControlBits = %d, %v; want 0", n, err)
	}
}

func TestLinkBudgetEnforced(t *testing.T) {
	link, err := NewLink(WithSNR(20), WithSeed(18), WithSilenceBudget(3), WithBitsPerInterval(4))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256)
	if _, err := link.Send(data, nil); err != nil {
		t.Fatal(err)
	}
	maxBits, err := link.MaxControlBits(len(data))
	if err != nil {
		t.Fatal(err)
	}
	if maxBits != 8 { // (3-1)*4
		t.Errorf("MaxControlBits = %d, want 8", maxBits)
	}
	if _, err := link.Send(data, randBits(rand.New(rand.NewSource(19)), 12)); err == nil {
		t.Error("over-budget control should error")
	}
}

func TestLinkDeterministic(t *testing.T) {
	run := func() []float64 {
		link, err := NewLink(WithSNR(15), WithSeed(42), WithMobile())
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		data := make([]byte, 300)
		for i := 0; i < 5; i++ {
			ex, err := link.Send(data, nil)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, ex.MeasuredSNRdB)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at packet %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestLinkMobileChannelVaries(t *testing.T) {
	link, err := NewLink(WithSNR(18), WithSeed(43), WithMobile(), WithPacketInterval(20e-3))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 300)
	var snrs []float64
	for i := 0; i < 10; i++ {
		ex, err := link.Send(data, nil)
		if err != nil {
			t.Fatal(err)
		}
		snrs = append(snrs, ex.MeasuredSNRdB)
	}
	varies := false
	for i := 1; i < len(snrs); i++ {
		if snrs[i] != snrs[0] {
			varies = true
		}
	}
	if !varies {
		t.Error("mobile link measured SNR never changed across 200 ms")
	}
	if link.Now() < 0.19 {
		t.Errorf("clock advanced to %v, want ~0.2 s", link.Now())
	}
}

func TestLinkDataSurvivesCoS(t *testing.T) {
	// The headline guarantee: inserting control messages does not destroy
	// data packets.
	link, err := NewLink(WithSNR(17), WithSeed(44), WithPosition(PositionB))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(45))
	data := make([]byte, 1024)
	rng.Read(data)
	if _, err := link.Send(data, nil); err != nil {
		t.Fatal(err)
	}
	okData := 0
	const n = 15
	for i := 0; i < n; i++ {
		maxBits, err := link.MaxControlBits(len(data))
		if err != nil {
			t.Fatal(err)
		}
		ctrl := randBits(rng, min(maxBits/4*4, 40))
		ex, err := link.Send(data, ctrl)
		if err != nil {
			t.Fatal(err)
		}
		if ex.DataOK {
			okData++
		}
	}
	if okData < n-1 {
		t.Errorf("data PRR %d/%d with CoS active; CoS is destroying packets", okData, n)
	}
}

func TestOptionValidation(t *testing.T) {
	bad := [][]Option{
		{WithSNR(99)},
		{WithFixedRate(33)},
		{WithBitsPerInterval(0)},
		{WithBitsPerInterval(17)},
		{WithControlSubcarrierRange(0, 5)},
		{WithControlSubcarrierRange(6, 2)},
		{WithDetectorFactor(0)},
		{WithSilenceBudget(-1)},
		{WithInterference(-1, 10, 0.1)},
		{WithPacketInterval(0)},
		{WithPosition(Position(99))},
	}
	for i, opts := range bad {
		if _, err := NewLink(opts...); err == nil {
			t.Errorf("option set %d should be rejected", i)
		}
	}
}

func TestLinkExplicitFeedback(t *testing.T) {
	// The closed loop must still function when feedback rides a real
	// reverse-channel frame instead of being delivered ideally.
	link, err := NewLink(WithSNR(18), WithSeed(51), WithExplicitFeedback())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(52))
	data := make([]byte, 1024)
	rng.Read(data)
	if _, err := link.Send(data, nil); err != nil {
		t.Fatal(err)
	}
	sent, delivered, dataOK := 0, 0, 0
	const n = 15
	for i := 0; i < n; i++ {
		maxBits, err := link.MaxControlBits(len(data))
		if err != nil {
			t.Fatal(err)
		}
		ctrl := randBits(rng, min(maxBits/4*4, 24))
		ex, err := link.Send(data, ctrl)
		if err != nil {
			t.Fatal(err)
		}
		if len(ex.ControlSent) > 0 {
			sent++
			if ex.ControlOK {
				delivered++
			}
		}
		if ex.DataOK {
			dataOK++
		}
	}
	if dataOK < n-1 {
		t.Errorf("data PRR %d/%d with explicit feedback", dataOK, n)
	}
	if sent < n/2 {
		t.Errorf("control embedded on only %d/%d packets", sent, n)
	}
	if delivered < sent*7/10 {
		t.Errorf("control delivered %d/%d with explicit feedback", delivered, sent)
	}
}

func TestLinkExplicitFeedbackDeterministic(t *testing.T) {
	run := func() int {
		link, err := NewLink(WithSNR(16), WithSeed(53), WithExplicitFeedback())
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 512)
		ok := 0
		for i := 0; i < 6; i++ {
			ex, err := link.Send(data, nil)
			if err != nil {
				t.Fatal(err)
			}
			if ex.DataOK {
				ok++
			}
		}
		return ok
	}
	if a, b := run(), run(); a != b {
		t.Errorf("explicit-feedback runs diverged: %d vs %d", a, b)
	}
}

func TestLinkControlFraming(t *testing.T) {
	// Pin 24 Mb/s so the budget never visits a 3/4 band mid-test.
	link, err := NewLink(WithSNR(18), WithSeed(61), WithControlFraming(), WithFixedRate(24))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	data := make([]byte, 1024)
	rng.Read(data)
	if _, err := link.Send(data, nil); err != nil {
		t.Fatal(err)
	}
	verified, sent := 0, 0
	for i := 0; i < 12; i++ {
		maxBits, err := link.MaxControlBits(len(data))
		if err != nil {
			t.Fatal(err)
		}
		// Framed control needs no k-alignment: odd lengths are fine.
		n := min(maxBits, 19)
		if n <= 0 {
			continue
		}
		ctrl := randBits(rng, n)
		ex, err := link.Send(data, ctrl)
		if err != nil {
			t.Fatal(err)
		}
		if len(ex.ControlSent) == 0 {
			continue
		}
		sent++
		if ex.ControlVerified {
			verified++
			if !bytes.Equal(ex.ControlPayload, ctrl) {
				t.Fatalf("verified payload differs: %v vs %v", ex.ControlPayload, ctrl)
			}
			if !ex.ControlOK {
				t.Error("verified payload should imply ControlOK")
			}
		}
	}
	if sent < 6 {
		t.Fatalf("control embedded on only %d packets", sent)
	}
	if verified < sent*7/10 {
		t.Errorf("framing verified %d/%d messages", verified, sent)
	}
}

func TestLinkUnframedRequiresAlignment(t *testing.T) {
	link, err := NewLink(WithSNR(20), WithSeed(63))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 512)
	if _, err := link.Send(data, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := link.Send(data, []byte{1, 0, 1}); err == nil {
		t.Error("unframed control of non-multiple length should error")
	}
}

func TestLinkChannelVariantsDiffer(t *testing.T) {
	snrOf := func(variant int64) float64 {
		link, err := NewLink(WithSNR(18), WithSeed(81), WithChannelVariant(variant))
		if err != nil {
			t.Fatal(err)
		}
		ex, err := link.Send(make([]byte, 200), nil)
		if err != nil {
			t.Fatal(err)
		}
		return ex.MeasuredSNRdB
	}
	if snrOf(1) == snrOf(2) {
		t.Error("different channel variants produced identical measured SNR")
	}
}

func TestLinkDetectorFactorOption(t *testing.T) {
	// A huge detector factor drives false positives up; the link must still
	// run (control mostly fails, data survives via erasure decoding).
	link, err := NewLink(WithSNR(20), WithSeed(82), WithDetectorFactor(50), WithFixedRate(12))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 512)
	if _, err := link.Send(data, nil); err != nil {
		t.Fatal(err)
	}
	fp := 0
	for i := 0; i < 5; i++ {
		ex, err := link.Send(data, randBits(rand.New(rand.NewSource(int64(i))), 16))
		if err != nil {
			t.Fatal(err)
		}
		fp += ex.Detection.FalsePositives
	}
	if fp == 0 {
		t.Error("a 50x threshold factor should produce false positives")
	}
}

func TestLinkNowStartsAtZero(t *testing.T) {
	link, err := NewLink()
	if err != nil {
		t.Fatal(err)
	}
	if link.Now() != 0 {
		t.Errorf("fresh link clock = %v", link.Now())
	}
}

func TestSendStreamDeliversLongControl(t *testing.T) {
	link, err := NewLink(WithSNR(19), WithSeed(91), WithControlFraming(), WithFixedRate(24))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(92))
	data := make([]byte, 1024)
	rng.Read(data)
	if _, err := link.Send(data, nil); err != nil {
		t.Fatal(err)
	}
	payload := randBits(rng, 180) // far beyond one packet's budget
	res, err := link.SendStream(payload, data)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatalf("stream not delivered: %+v", res)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Error("reassembled payload differs")
	}
	if res.FragmentsSent < 3 {
		t.Errorf("expected a multi-fragment stream, sent %d", res.FragmentsSent)
	}
	if res.PacketsUsed < res.FragmentsSent {
		t.Errorf("accounting: %d packets < %d fragments", res.PacketsUsed, res.FragmentsSent)
	}
}

func TestSendStreamRequiresFraming(t *testing.T) {
	link, err := NewLink(WithSNR(19), WithSeed(93))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := link.SendStream([]byte{1, 0}, make([]byte, 64)); err == nil {
		t.Error("stream without framing should error")
	}
}

func TestSendStreamRejectsEmptyPayload(t *testing.T) {
	link, err := NewLink(WithControlFraming())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := link.SendStream(nil, make([]byte, 64)); err == nil {
		t.Error("empty payload should error")
	}
}
