// Coordination simulates the motivating application of the paper's intro:
// access coordination in a WLAN. An AP streams data downlink to three
// stations and piggybacks the next transmission grant (station ID + TXOP
// length) as a CoS control message on every data packet — instead of
// spending airtime on explicit control frames.
//
// The example compares the airtime cost of the two designs over a burst of
// traffic: with CoS the coordination is free; with explicit control frames
// every grant costs a frame exchange at the base rate.
//
//	go run ./examples/coordination
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cos"
)

// grant is the coordination message: 4 bits station ID + 8 bits TXOP slots
// + 4 bits priority = 16 bits, a realistic lightweight control payload.
type grant struct {
	station  int
	txop     int
	priority int
}

func (g grant) bits() []byte {
	out := make([]byte, 0, 16)
	push := func(v, n int) {
		for i := n - 1; i >= 0; i-- {
			out = append(out, byte((v>>i)&1))
		}
	}
	push(g.station, 4)
	push(g.txop, 8)
	push(g.priority, 4)
	return out
}

func parseGrant(bits []byte) (grant, bool) {
	if len(bits) < 16 {
		return grant{}, false
	}
	pop := func(off, n int) int {
		v := 0
		for i := 0; i < n; i++ {
			v = v<<1 | int(bits[off+i])
		}
		return v
	}
	return grant{station: pop(0, 4), txop: pop(4, 8), priority: pop(12, 4)}, true
}

func main() {
	// Control framing lets the stations validate grants by CRC instead of
	// comparing against what the AP sent.
	link, err := cos.NewLink(cos.WithPosition(cos.PositionB), cos.WithSNR(20), cos.WithSeed(5),
		cos.WithControlFraming(), cos.WithFixedRate(24))
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	data := make([]byte, 1024)

	// Bootstrap the feedback loop.
	if _, err := link.Send(data, nil); err != nil {
		log.Fatal(err)
	}

	// Airtime of one explicit grant frame: preamble + 14-byte body at the
	// base rate + SIFS.
	const controlFrameAirtime = 16e-6 + 24e-6 + 28e-6
	const rounds = 60
	delivered, failed := 0, 0
	var freeAirtime, explicitAirtime float64
	for r := 0; r < rounds; r++ {
		g := grant{station: rng.Intn(3) + 1, txop: rng.Intn(256), priority: rng.Intn(16)}
		rng.Read(data)
		budget, err := link.MaxControlBits(len(data))
		if err != nil {
			log.Fatal(err)
		}
		explicitAirtime += controlFrameAirtime // the explicit design always pays
		if budget < 16 {
			// Channel conditions pulled the budget below one grant; a real
			// AP would fall back to an explicit frame for this round.
			failed++
			if _, err := link.Send(data, nil); err != nil {
				log.Fatal(err)
			}
			continue
		}
		ex, err := link.Send(data, g.bits())
		if err != nil {
			log.Fatal(err)
		}
		got, ok := parseGrant(ex.ControlPayload)
		if ex.ControlVerified && ok && got == g {
			delivered++
		} else {
			failed++
		}

		_ = freeAirtime // CoS grants ride inside the data packet: zero extra airtime
	}

	fmt.Printf("rounds:                       %d\n", rounds)
	fmt.Printf("grants delivered via CoS:     %d (%.1f%%)\n", delivered, 100*float64(delivered)/rounds)
	fmt.Printf("grants lost or deferred:      %d\n", failed)
	fmt.Printf("airtime spent on grants, CoS:      0 us\n")
	fmt.Printf("airtime spent, explicit frames:    %.0f us (%.2f%% of a 100 ms burst)\n",
		explicitAirtime*1e6, 100*explicitAirtime/0.1)
}
