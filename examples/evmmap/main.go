// Evmmap visualizes the observation at the heart of CoS (Sec. II-D): the
// per-subcarrier EVM profile is strongly uneven (frequency-selective
// fading) yet stable over time, so the weak subcarriers selected for
// control messages persist from packet to packet. Each row is one snapshot
// of the 48 data subcarriers on a walking-speed mobile channel; darker
// glyphs mean higher EVM and '|' marks the selected control subcarriers.
//
//	go run ./examples/evmmap
package main

import (
	"fmt"
	"log"
	"strings"

	"cos"
)

// glyphFor buckets an EVM fraction into a density glyph.
func glyphFor(evm float64) byte {
	switch {
	case evm < 0.10:
		return '.'
	case evm < 0.20:
		return ':'
	case evm < 0.35:
		return 'o'
	case evm < 0.60:
		return 'O'
	default:
		return '#'
	}
}

func main() {
	link, err := cos.NewLink(
		cos.WithPosition(cos.PositionA),
		cos.WithSNR(20),
		cos.WithMobile(),
		cos.WithFixedRate(12),
		cos.WithPacketInterval(10e-3), // one row every 10 ms
		cos.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}

	data := make([]byte, 1024)
	fmt.Println("per-subcarrier EVM over time (rows every 10 ms, Position A, mobile)")
	fmt.Println("  . <10%   : <20%   o <35%   O <60%   # >=60%   | selected control subcarrier")
	fmt.Println()
	fmt.Println("   t(ms)  subcarrier 1..48")

	for row := 0; row < 20; row++ {
		ex, err := link.Send(data, nil)
		if err != nil {
			log.Fatal(err)
		}
		if !ex.DataOK {
			fmt.Printf("  %5.0f   (packet lost)\n", ex.Time*1e3)
			continue
		}
		evm := link.LastEVM()
		selected := map[int]bool{}
		for _, sc := range link.ControlSubcarriers() {
			selected[sc] = true
		}
		var b strings.Builder
		for sc, v := range evm {
			if selected[sc] {
				b.WriteByte('|')
			} else {
				b.WriteByte(glyphFor(v))
			}
		}
		fmt.Printf("  %5.0f   %s\n", ex.Time*1e3, b.String())
	}
	fmt.Println()
	fmt.Println("The high-EVM columns barely move between rows: the paper's temporal")
	fmt.Println("stability (Fig. 7) is what lets the sender trust last packet's weak-")
	fmt.Println("subcarrier feedback when placing this packet's silences.")
}
