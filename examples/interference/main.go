// Interference demonstrates the paper's Fig. 10(d) finding at the link
// level: strong co-channel pulse interference destroys silence detection
// (false negatives) — but it also destroys the data packets themselves, so
// CoS loses nothing the data plane had not already lost. That is the
// paper's argument for leaving strong interference to MAC coordination.
//
//	go run ./examples/interference
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cos"
)

func run(withInterference bool) (dataPRR, ctrlRate, fnRate float64) {
	opts := []cos.Option{
		cos.WithPosition(cos.PositionB),
		cos.WithSNR(16),
		cos.WithSeed(21),
		cos.WithFixedRate(12),
	}
	if withInterference {
		opts = append(opts, cos.WithInterference(40, 160, 0.0001))
	}
	link, err := cos.NewLink(opts...)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	data := make([]byte, 1024)
	if _, err := link.Send(data, nil); err != nil {
		log.Fatal(err)
	}

	const packets = 120
	var dataOK, ctrlOK, ctrlSent, silences, misses int
	for i := 0; i < packets; i++ {
		rng.Read(data)
		budget, err := link.MaxControlBits(len(data))
		if err != nil {
			log.Fatal(err)
		}
		n := 32
		if n > budget {
			n = budget / 4 * 4
		}
		ctrl := make([]byte, n)
		for j := range ctrl {
			ctrl[j] = byte(rng.Intn(2))
		}
		ex, err := link.Send(data, ctrl)
		if err != nil {
			log.Fatal(err)
		}
		if ex.DataOK {
			dataOK++
		}
		if len(ex.ControlSent) > 0 {
			ctrlSent++
			if ex.ControlOK {
				ctrlOK++
			}
		}
		silences += ex.Detection.Silences
		misses += ex.Detection.FalseNegatives
	}
	dataPRR = float64(dataOK) / packets
	if ctrlSent > 0 {
		ctrlRate = float64(ctrlOK) / float64(ctrlSent)
	}
	if silences > 0 {
		fnRate = float64(misses) / float64(silences)
	}
	return dataPRR, ctrlRate, fnRate
}

func main() {
	cleanData, cleanCtrl, cleanFN := run(false)
	dirtyData, dirtyCtrl, dirtyFN := run(true)

	fmt.Printf("%-28s %-12s %-12s\n", "", "clean", "interfered")
	fmt.Printf("%-28s %-12.3f %-12.3f\n", "data PRR", cleanData, dirtyData)
	fmt.Printf("%-28s %-12.3f %-12.3f\n", "control delivery rate", cleanCtrl, dirtyCtrl)
	fmt.Printf("%-28s %-12.4f %-12.4f\n", "silence false-negative rate", cleanFN, dirtyFN)
	fmt.Println("\nStrong interference raises false negatives sharply — but the data")
	fmt.Println("packets it hits fail their FCS anyway, so receiver loses data and")
	fmt.Println("control together (the paper's Sec. IV-C argument).")
}
