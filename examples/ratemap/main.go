// Ratemap builds the SNR -> control-message-rate lookup table of Sec. III-F
// the way the paper does: for each channel SNR, pin the data rate the
// adaptation scheme selects there, then find the largest per-packet silence
// budget whose packet reception rate does not fall below the no-CoS
// baseline by more than the target allows. The budget converts to silence
// symbols per second (Rm) and control bits per second.
//
// The printed table is the measured source of cos.DefaultRateTable.
//
//	go run ./examples/ratemap [-packets 150] [-target 0.993]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"cos"
)

func main() {
	var (
		packets = flag.Int("packets", 150, "packets per PRR trial")
		target  = flag.Float64("target", 0.993, "required packet reception rate")
		size    = flag.Int("size", 1024, "payload size in bytes")
	)
	flag.Parse()

	fmt.Printf("%-10s %-6s %-12s %-14s %-14s %-10s %-10s\n",
		"SNR (dB)", "rate", "budget/pkt", "Rm (sil/s)", "ctrl (bit/s)", "PRR", "baseline")
	for _, snr := range []float64{8, 10, 12, 14, 16, 18, 20, 22, 24} {
		rate, err := adaptedRate(snr, *size)
		if err != nil {
			log.Fatal(err)
		}
		baseline, err := prrAt(snr, rate, *size, *packets, 0)
		if err != nil {
			log.Fatal(err)
		}
		// CoS must not push PRR below the baseline by more than the loss
		// allowance of the target (the paper's "does not destroy the
		// original data packet").
		threshold := baseline - (1 - *target)
		if t := *target; t < threshold {
			threshold = t
		}
		budget, prr, err := maxBudget(snr, rate, *size, *packets, threshold)
		if err != nil {
			log.Fatal(err)
		}
		rm, cbps := ratesFor(rate, *size, budget)
		fmt.Printf("%-10.1f %-6d %-12d %-14.0f %-14.0f %-10.4f %-10.4f\n",
			snr, rate, budget, rm, cbps, prr, baseline)
	}
	fmt.Println("\nUse these budgets as cos RateEntry{SNRdB, SilencesPerPacket} rows.")
}

// adaptedRate probes the link once to learn which rate the SNR-based
// adaptation settles on at this SNR, then pins it for the measurement
// (matching the paper's per-mode methodology and avoiding band-edge mode
// flapping inside a trial).
func adaptedRate(snr float64, size int) (int, error) {
	link, err := cos.NewLink(cos.WithSNR(snr), cos.WithSeed(3))
	if err != nil {
		return 0, err
	}
	data := make([]byte, size)
	rate := 6
	for i := 0; i < 4; i++ {
		ex, err := link.Send(data, nil)
		if err != nil {
			return 0, err
		}
		rate = ex.Mode.RateMbps
	}
	return rate, nil
}

// prrAt measures the data PRR at a pinned rate with a fixed per-packet
// silence budget.
func prrAt(snr float64, rate, size, packets, budget int) (float64, error) {
	link, err := cos.NewLink(cos.WithSNR(snr), cos.WithFixedRate(rate),
		cos.WithSilenceBudget(budget), cos.WithSeed(7))
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(11))
	data := make([]byte, size)
	if _, err := link.Send(data, nil); err != nil { // bootstrap feedback
		return 0, err
	}
	ok := 0
	for i := 0; i < packets; i++ {
		rng.Read(data)
		var ctrl []byte
		if budget >= 2 {
			max, err := link.MaxControlBits(len(data))
			if err != nil {
				return 0, err
			}
			n := (budget - 1) * 4
			if n > max {
				n = max / 4 * 4
			}
			if n < 0 {
				n = 0
			}
			ctrl = make([]byte, n)
			for j := range ctrl {
				ctrl[j] = byte(rng.Intn(2))
			}
		}
		ex, err := link.Send(data, ctrl)
		if err != nil {
			return 0, err
		}
		if ex.DataOK {
			ok++
		}
	}
	return float64(ok) / float64(packets), nil
}

// maxBudget climbs a budget ladder and returns the largest rung meeting the
// PRR threshold. PRR is not perfectly monotone in the budget at finite
// sample sizes, so a ladder with a two-strike stop is more robust than a
// binary search.
func maxBudget(snr float64, rate, size, packets int, threshold float64) (int, float64, error) {
	ladder := []int{2, 4, 8, 12, 16, 24, 32, 48, 64, 96}
	best, bestPRR := 0, 1.0
	strikes := 0
	for _, b := range ladder {
		prr, err := prrAt(snr, rate, size, packets, b)
		if err != nil {
			return 0, 0, err
		}
		if prr >= threshold {
			best, bestPRR = b, prr
			strikes = 0
			continue
		}
		strikes++
		if strikes >= 2 {
			break
		}
	}
	return best, bestPRR, nil
}

// ratesFor converts a budget into Rm and control bit/s at the pinned rate.
func ratesFor(rate, size, budget int) (rm, cbps float64) {
	symbols := symbolsFor(rate, size+4)
	packetDur := (320.0 + float64(symbols*80)) / 20e6
	if budget > 0 {
		rm = float64(budget) / packetDur
	}
	if budget >= 2 {
		cbps = float64((budget-1)*4) / packetDur
	}
	return rm, cbps
}

// symbolsFor mirrors the PHY's SymbolsForPSDU without importing internals.
func symbolsFor(rateMbps, psduLen int) int {
	ndbps := map[int]int{6: 24, 9: 36, 12: 48, 18: 72, 24: 96, 36: 144, 48: 192, 54: 216}[rateMbps]
	bits := 16 + 8*psduLen + 6
	return (bits + ndbps - 1) / ndbps
}
