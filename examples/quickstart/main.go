// Quickstart: send one data packet with a free control message embedded in
// silence symbols, and show what the receiver got.
package main

import (
	"fmt"
	"log"

	"cos"
)

func main() {
	// A static indoor link at Position B with an 18 dB channel.
	link, err := cos.NewLink(cos.WithPosition(cos.PositionB), cos.WithSNR(18))
	if err != nil {
		log.Fatal(err)
	}

	// A realistic frame: the control capacity scales with packet duration,
	// so use a full-size payload (the paper measures with 1024-byte
	// packets).
	data := make([]byte, 1024)
	copy(data, "CoS carries this payload the ordinary 802.11a way.")

	// The first packet bootstraps the feedback loop (EVM measurement,
	// subcarrier selection, SNR report) at the most robust rate.
	if _, err := link.Send(data, nil); err != nil {
		log.Fatal(err)
	}

	// Now embed a control message — 24 bits, the paper's Fig. 1 example —
	// for free: zero extra airtime, data packet intact.
	control := []byte{
		0, 0, 1, 0, 0, 1, 1, 0, 1, 0, 0, 0,
		0, 0, 1, 1, 1, 0, 1, 0, 0, 1, 1, 1,
	}
	budget, err := link.MaxControlBits(len(data))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("control budget this packet: %d bits\n", budget)

	ex, err := link.Send(data, control)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mode:               %v\n", ex.Mode)
	fmt.Printf("data delivered:     %v (%q...)\n", ex.DataOK, ex.Data[:51])
	fmt.Printf("control delivered:  %v\n", ex.ControlOK)
	fmt.Printf("control bits:       sent %v\n", ex.ControlSent)
	fmt.Printf("                    got  %v\n", ex.ControlReceived[:len(ex.ControlSent)])
	fmt.Printf("silence symbols:    %d on subcarriers %v\n", ex.SilencesInserted, ex.ControlSubcarriers)
	fmt.Printf("measured SNR:       %.1f dB (actual %.1f dB)\n", ex.MeasuredSNRdB, ex.ActualSNRdB)
}
