module cos

go 1.22
