package cos_test

// Head-to-head scenario benchmark: the paper's CoS silence embedding
// against the WiPad-style OFDM-padding embedding on the same indoor
// channel, and the indoor TDL channel against the hybrid BSC/PEC outdoor
// channel under the same embedding. `make bench-scenario` writes the
// full-scale report to BENCH_scenario.json; `make ci` replays it at a
// reduced packet count under the race detector.

import (
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"cos"
)

// benchScenarioOut enables TestWriteBenchScenarioReport; `make
// bench-scenario` points it at BENCH_scenario.json.
var benchScenarioOut = flag.String("bench-scenario-out", "", "write the scenario head-to-head report to this JSON file")

// benchScenarioPackets is the per-world packet count; `make ci` shrinks it
// so the race-detector pass stays fast.
var benchScenarioPackets = flag.Int("bench-scenario-packets", 400, "packets per scenario in the head-to-head report")

// scenarioBenchReport is one world's measured row.
type scenarioBenchReport struct {
	Scenario       string  `json:"scenario"`
	Channel        string  `json:"channel"`
	Embedding      string  `json:"embedding"`
	SNRdB          float64 `json:"snr_db"`
	Packets        int     `json:"packets"`
	DataOKRate     float64 `json:"data_ok_rate"`
	ControlOKRate  float64 `json:"control_ok_rate"`
	AvgControlBits float64 `json:"avg_control_bits"`
	AvgSilences    float64 `json:"avg_silences"`
	Seconds        float64 `json:"seconds"`
	PacketsPerSec  float64 `json:"packets_per_sec"`
}

// TestWriteBenchScenarioReport regenerates BENCH_scenario.json (via
// `make bench-scenario`): it drives the same fixed-seed send schedule
// through four worlds — the default CoS-silence/indoor-TDL pairing, the
// OFDM-padding embedding on the same indoor channel, and the CoS-silence
// embedding over the hybrid BSC/PEC outdoor channel at two erasure
// settings — and records per-world packet delivery, control accuracy,
// silence budget spend, and throughput. It skips itself unless
// -bench-scenario-out is set so `go test ./...` stays fast.
func TestWriteBenchScenarioReport(t *testing.T) {
	if *benchScenarioOut == "" {
		t.Skip("set -bench-scenario-out to write the report")
	}
	packets := *benchScenarioPackets
	const ctrlBits, k = 16, 4
	const snr = 22.0

	worlds := []struct {
		name      string
		channel   string
		embedding string
		opts      []cos.Option
	}{
		{"default", "indoor-tdl", "cos-silence",
			[]cos.Option{cos.WithSeed(41), cos.WithSNR(snr)}},
		{"ofdm-padding", "indoor-tdl", "ofdm-padding",
			[]cos.Option{cos.WithScenario("ofdm-padding"), cos.WithSeed(41), cos.WithSNR(snr)}},
		{"hybrid-bscpec", "hybrid-bscpec", "cos-silence",
			[]cos.Option{cos.WithScenario("hybrid-bscpec"), cos.WithSeed(41), cos.WithSNR(snr)}},
		{"hybrid-bscpec:0.3,0.1,25", "hybrid-bscpec", "cos-silence",
			[]cos.Option{cos.WithScenario("hybrid-bscpec", 0.3, 0.1, 25), cos.WithSeed(41), cos.WithSNR(snr)}},
	}

	var rows []scenarioBenchReport
	for _, w := range worlds {
		link, err := cos.NewLink(w.opts...)
		if err != nil {
			t.Fatalf("%s: %v", w.name, err)
		}
		rng := rand.New(rand.NewSource(977))
		var dataOK, ctrlOK, ctrlSent, silences int
		start := time.Now()
		for i := 0; i < packets; i++ {
			data := make([]byte, 256)
			rng.Read(data)
			maxBits, err := link.MaxControlBits(len(data))
			if err != nil {
				t.Fatalf("%s: %v", w.name, err)
			}
			n := ctrlBits
			if n > maxBits {
				n = maxBits / k * k
			}
			ctrl := make([]byte, n)
			for j := range ctrl {
				ctrl[j] = byte(rng.Intn(2))
			}
			ex, err := link.Send(data, ctrl)
			if err != nil {
				t.Fatalf("%s packet %d: %v", w.name, i, err)
			}
			if ex.DataOK {
				dataOK++
			}
			if ex.ControlOK {
				ctrlOK++
			}
			ctrlSent += len(ex.ControlSent)
			silences += ex.SilencesInserted
		}
		sec := time.Since(start).Seconds()
		rows = append(rows, scenarioBenchReport{
			Scenario:       w.name,
			Channel:        w.channel,
			Embedding:      w.embedding,
			SNRdB:          snr,
			Packets:        packets,
			DataOKRate:     float64(dataOK) / float64(packets),
			ControlOKRate:  float64(ctrlOK) / float64(packets),
			AvgControlBits: float64(ctrlSent) / float64(packets),
			AvgSilences:    float64(silences) / float64(packets),
			Seconds:        sec,
			PacketsPerSec:  float64(packets) / sec,
		})
	}

	// Sanity floors rather than cross-world races: every world must move
	// packets, the padding embedding must spend zero silences, and the
	// silence embeddings must spend a nonzero budget.
	for _, r := range rows {
		if r.DataOKRate == 0 {
			t.Errorf("%s delivered no packets", r.Scenario)
		}
		if r.Embedding == "ofdm-padding" && r.AvgSilences != 0 {
			t.Errorf("%s inserted silences (%v/packet); padding must not", r.Scenario, r.AvgSilences)
		}
		if r.Embedding == "cos-silence" && r.AvgSilences == 0 {
			t.Errorf("%s inserted no silences; the CoS embedding is not engaging", r.Scenario)
		}
	}

	report := struct {
		GeneratedBy string                `json:"generated_by"`
		GoMaxProcs  int                   `json:"gomaxprocs"`
		Methodology string                `json:"methodology"`
		Scenarios   []scenarioBenchReport `json:"scenarios"`
	}{
		GeneratedBy: "make bench-scenario",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Methodology: "Each world runs the same fixed-seed 256-byte send schedule " +
			"(16 control bits/packet, k=4) through a fresh Link at 22 dB SNR. " +
			"data_ok_rate is the frame-check pass rate, control_ok_rate the " +
			"fraction of packets whose extracted control bits prefix-match the " +
			"sent bits, avg_silences the silence-symbol budget actually spent. " +
			"The embedding axis compares cos-silence vs ofdm-padding on the " +
			"indoor TDL channel; the channel axis compares indoor TDL vs the " +
			"hybrid BSC/PEC outdoor channel (Chen & Leith) under cos-silence " +
			"at the preset and a harsher q=0.3,p=0.1 operating point. Timings " +
			"are wall clock on a single goroutine.",
		Scenarios: rows,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchScenarioOut, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d packets/world)", *benchScenarioOut, packets)
}
