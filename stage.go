package cos

import "cos/internal/obs"

// This file owns the pipeline's stage vocabulary and its span wiring. The
// node implementations (Transmitter, Channel, Receiver) start every timed
// section through linkMetrics.span, and stageNames is a compile-time
// length-checked array, so a stage cannot be added without its name, its
// latency histogram, and its StageNS slot all appearing here.

// Stage identifies one timed section of Link.Send's pipeline. Every
// exchange records the nanoseconds spent in each stage (Exchange.StageNS),
// and the same spans feed per-stage latency histograms
// (cos_link_stage_<name>_seconds) on the metrics registry.
type Stage int

const (
	// StageTxEncode covers the sender: FCS, scramble/encode/interleave/map,
	// silence embedding, and IFFT+CP sample generation (Transmitter.Encode).
	StageTxEncode Stage = iota
	// StageChannel covers the TDL channel, noise, and interference
	// (Channel.Transmit).
	StageChannel
	// StageFrontEnd covers the receiver front end: FFTs, channel estimate,
	// pilot-aided noise estimate, SNR measurement.
	StageFrontEnd
	// StageDetect covers energy detection of silence symbols.
	StageDetect
	// StageControlDecode covers interval extraction and control-bit
	// decoding from the detected silence mask.
	StageControlDecode
	// StageEVD covers the erasure Viterbi decode: demap, deinterleave,
	// depuncture, Viterbi, descramble, FCS check.
	StageEVD
	// StageFeedback covers the receiver's EVM recomputation, subcarrier
	// selection, and (with WithExplicitFeedback) the reverse-channel frame.
	// Stages FrontEnd through Feedback run inside Receiver.Receive.
	StageFeedback

	// StageCount is the number of stages; it is not itself a stage.
	StageCount
)

var stageNames = [StageCount]string{
	"tx_encode", "channel", "rx_frontend", "detect",
	"control_decode", "evd_decode", "feedback",
}

// String returns the stage's snake_case name as used in metric names and
// the trace schema's stage_ns keys.
func (s Stage) String() string {
	if s < 0 || s >= StageCount {
		return "unknown"
	}
	return stageNames[s]
}

// StageNames returns the names of all pipeline stages in Stage order.
func StageNames() []string {
	return append([]string(nil), stageNames[:]...)
}

// span starts the timed section for one pipeline stage. Every node goes
// through this helper, so this file holds the complete mapping from Stage
// to recorded span.
func (m *linkMetrics) span(s Stage) obs.Span {
	return m.spans.StartSpan(int(s))
}
