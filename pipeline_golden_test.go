package cos_test

// Byte-equality goldens for the staged TX/Channel/RX pipeline refactor.
//
// TestPipelineGolden drives fixed-seed Link.Send and Link.SendStream
// sequences over a spread of configurations, serializes every
// deterministic Exchange field into a transcript, and compares its SHA-256
// against testdata/pipeline_golden.json. The golden file was captured on
// the pre-refactor monolithic Link.Send, so a green run proves the node
// pipeline produces bit-identical outputs (samples, detection, decoding,
// feedback, rate adaptation) for the same seeds.
//
// Wall-clock fields (StageNS) are excluded: they are the only
// non-deterministic part of an Exchange.
//
// Regenerate (only when behaviour is intentionally changed) with:
//
//	go test -run TestPipelineGolden -golden-update .

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"cos"
)

var goldenUpdate = flag.Bool("golden-update", false, "rewrite testdata/pipeline_golden.json from the current implementation")

const goldenPath = "testdata/pipeline_golden.json"

// writeExchange appends every deterministic field of an exchange to the
// transcript. %.17g round-trips float64 exactly.
func writeExchange(w io.Writer, ex *cos.Exchange) {
	fmt.Fprintf(w, "seq=%d bytes=%d rate=%d ok=%t data=%x cs=%x cr=%x cok=%t cver=%t cpay=%x sil=%d scs=%v det=%+v msnr=%.17g asnr=%.17g t=%.17g\n",
		ex.Seq, ex.DataBytes, ex.Mode.RateMbps, ex.DataOK, ex.Data,
		ex.ControlSent, ex.ControlReceived, ex.ControlOK, ex.ControlVerified,
		ex.ControlPayload, ex.SilencesInserted, ex.ControlSubcarriers,
		ex.Detection, ex.MeasuredSNRdB, ex.ActualSNRdB, ex.Time)
	if p := ex.Probe; p != nil {
		fmt.Fprintf(w, "probe seq=%d nsym=%d evm=%.12g dvec=%.12g secnt=%v ssym=%v sep=%v eras=%v dibe=%d dib=%d scs=%v th=%.12g er=%.12g nv=%.17g\n",
			p.Seq, p.NumSymbols, p.EVM, p.ErrorVectors, p.SubcarrierErrorCounts,
			p.SubcarrierSymbols, p.SymbolErrorPositions, p.ErasurePositions,
			p.DecoderInputBitErrors, p.DecoderInputBits, p.ControlSubcarriers,
			p.DetectorThresholds, p.DetectorEnergyRatios, p.NoiseVar)
	}
}

// driveSends pushes packets through the link, following the adaptive
// budget the way cmd/cos-sim does: ask MaxControlBits, clamp the wanted
// control size into it (multiple of k), and send.
func driveSends(t *testing.T, w io.Writer, link *cos.Link, packets, ctrlBits, k int, rng *rand.Rand) {
	t.Helper()
	for i := 0; i < packets; i++ {
		data := make([]byte, 256)
		rng.Read(data)
		maxBits, err := link.MaxControlBits(len(data))
		if err != nil {
			t.Fatal(err)
		}
		n := ctrlBits
		if n > maxBits {
			n = maxBits / k * k
		}
		ctrl := make([]byte, n)
		for j := range ctrl {
			ctrl[j] = byte(rng.Intn(2))
		}
		ex, err := link.Send(data, ctrl)
		if err != nil {
			t.Fatal(err)
		}
		writeExchange(w, ex)
	}
}

// goldenScenarios is the configuration spread the goldens pin down. Every
// option axis the refactor touches appears at least once: adaptive and
// fixed rate, fixed and adaptive budget, framing, explicit feedback,
// mobility, interference, probes, CoS disabled, loss-heavy low SNR, and
// multi-packet streams.
func goldenScenarios() map[string]func(t *testing.T, w io.Writer) {
	return map[string]func(t *testing.T, w io.Writer){
		"default-adaptive": func(t *testing.T, w io.Writer) {
			link, err := cos.NewLink(cos.WithSeed(3), cos.WithSNR(20))
			if err != nil {
				t.Fatal(err)
			}
			driveSends(t, w, link, 40, 24, 4, rand.New(rand.NewSource(100)))
		},
		"position-a-18db": func(t *testing.T, w io.Writer) {
			link, err := cos.NewLink(cos.WithPosition(cos.PositionA), cos.WithSeed(7), cos.WithSNR(18))
			if err != nil {
				t.Fatal(err)
			}
			driveSends(t, w, link, 40, 16, 4, rand.New(rand.NewSource(101)))
		},
		"fixed-rate-fixed-budget": func(t *testing.T, w io.Writer) {
			link, err := cos.NewLink(cos.WithFixedRate(24), cos.WithSilenceBudget(6),
				cos.WithSeed(5), cos.WithSNR(22))
			if err != nil {
				t.Fatal(err)
			}
			driveSends(t, w, link, 40, 20, 4, rand.New(rand.NewSource(102)))
		},
		"framing": func(t *testing.T, w io.Writer) {
			link, err := cos.NewLink(cos.WithControlFraming(), cos.WithSeed(9), cos.WithSNR(20))
			if err != nil {
				t.Fatal(err)
			}
			driveSends(t, w, link, 40, 24, 1, rand.New(rand.NewSource(103)))
		},
		"explicit-feedback": func(t *testing.T, w io.Writer) {
			link, err := cos.NewLink(cos.WithExplicitFeedback(), cos.WithSeed(11), cos.WithSNR(20))
			if err != nil {
				t.Fatal(err)
			}
			driveSends(t, w, link, 40, 16, 4, rand.New(rand.NewSource(104)))
		},
		"mobile-interference": func(t *testing.T, w io.Writer) {
			link, err := cos.NewLink(cos.WithMobile(), cos.WithInterference(2.0, 40, 0.1),
				cos.WithSeed(13), cos.WithSNR(25), cos.WithPacketInterval(2e-3))
			if err != nil {
				t.Fatal(err)
			}
			driveSends(t, w, link, 40, 8, 4, rand.New(rand.NewSource(105)))
		},
		"no-cos": func(t *testing.T, w io.Writer) {
			link, err := cos.NewLink(cos.WithoutCoS(), cos.WithSeed(4), cos.WithSNR(15))
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(106))
			for i := 0; i < 30; i++ {
				data := make([]byte, 300)
				rng.Read(data)
				ex, err := link.Send(data, nil)
				if err != nil {
					t.Fatal(err)
				}
				writeExchange(w, ex)
			}
		},
		"low-snr-losses": func(t *testing.T, w io.Writer) {
			link, err := cos.NewLink(cos.WithSNR(6), cos.WithSeed(8))
			if err != nil {
				t.Fatal(err)
			}
			driveSends(t, w, link, 60, 8, 4, rand.New(rand.NewSource(107)))
		},
		"probed": func(t *testing.T, w io.Writer) {
			link, err := cos.NewLink(cos.WithProbe(8, nil), cos.WithSeed(17), cos.WithSNR(20))
			if err != nil {
				t.Fatal(err)
			}
			driveSends(t, w, link, 24, 16, 4, rand.New(rand.NewSource(108)))
		},
		"stream": func(t *testing.T, w io.Writer) {
			link, err := cos.NewLink(cos.WithControlFraming(), cos.WithSeed(21), cos.WithSNR(20),
				cos.WithObserver(func(ex *cos.Exchange) { writeExchange(w, ex) }))
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(109))
			data := make([]byte, 256)
			rng.Read(data)
			for i := 0; i < 4; i++ {
				payload := make([]byte, 120)
				for j := range payload {
					payload[j] = byte(rng.Intn(2))
				}
				res, err := link.SendStream(payload, data)
				if err != nil {
					t.Fatal(err)
				}
				fmt.Fprintf(w, "stream outcome=%v delivered=%t payload=%x pkts=%d fs=%d fd=%d\n",
					res.Outcome, res.Delivered, res.Payload, res.PacketsUsed,
					res.FragmentsSent, res.FragmentsDelivered)
			}
		},
	}
}

func TestPipelineGolden(t *testing.T) {
	if testing.Short() && !*goldenUpdate {
		// Each scenario is a full PHY simulation; the suite costs a few
		// seconds. make ci runs it explicitly (non-short).
		t.Skip("skipping golden transcripts in -short mode")
	}
	scenarios := goldenScenarios()
	got := make(map[string]string, len(scenarios))
	names := make([]string, 0, len(scenarios))
	for name := range scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		run := scenarios[name]
		t.Run(name, func(t *testing.T) {
			h := sha256.New()
			run(t, h)
			got[name] = hex.EncodeToString(h.Sum(nil))
		})
	}
	if *goldenUpdate {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read goldens (run with -golden-update to create): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if want[name] == "" {
			t.Errorf("%s: no golden recorded", name)
			continue
		}
		if got[name] != want[name] {
			t.Errorf("%s: transcript hash %s differs from golden %s", name, got[name], want[name])
		}
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("golden %q has no scenario", name)
		}
	}
}
