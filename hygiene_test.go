package cos

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLibraryPackagesStayTransportFree freezes the layering rule introduced
// in PR 1 and extended by the serve subsystem: HTTP (and the other
// network-facing stdlib surfaces) may appear only at the edges —
// cmd/ binaries, internal/obs/obshttp, internal/cli, and the serve
// transport/client packages. The simulation core must stay importable from
// any context without dragging a server stack in.
//
// The test parses every non-test source file in the module, builds the
// module-internal import graph, computes the transitive closure of the
// protected packages, and fails if anything in that closure imports a
// forbidden package.
func TestLibraryPackagesStayTransportFree(t *testing.T) {
	const module = "cos"
	protected := []string{
		module,
		module + "/internal/phy",
		module + "/internal/coding",
		module + "/internal/cos",
		module + "/internal/channel",
		module + "/internal/serve",       // transport-free core; servehttp is the edge
		module + "/internal/serve/cache", // content-addressed result cache stays pure
		module + "/internal/serve/store", // durable WAL store: files only, no transport
		module + "/internal/obs/event",   // journal is transport-free; /events streams it
		module + "/internal/scenario",    // scenario registry: pure composition, no transport
		module + "/internal/scenario/all",
		module + "/internal/scenario/indoor",
		module + "/internal/scenario/outdoor",
		module + "/internal/scenario/padding",
		module + "/internal/scenario/silence",
	}
	forbidden := func(imp string) bool {
		return imp == "net/http" ||
			strings.HasPrefix(imp, "net/http/") ||
			imp == "expvar" ||
			imp == "net/rpc"
	}

	imports := moduleImports(t, module)
	for _, root := range protected {
		if _, ok := imports[root]; !ok {
			t.Fatalf("protected package %s not found in module (renamed?)", root)
		}
	}

	// Transitive closure of the protected set over module-internal edges.
	closure := map[string]bool{}
	stack := append([]string(nil), protected...)
	for len(stack) > 0 {
		pkg := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if closure[pkg] {
			continue
		}
		closure[pkg] = true
		for imp := range imports[pkg] {
			if imp == module || strings.HasPrefix(imp, module+"/") {
				stack = append(stack, imp)
			}
		}
	}

	for pkg := range closure {
		for imp := range imports[pkg] {
			if forbidden(imp) {
				t.Errorf("%s imports %s: transport packages must stay out of the simulation core (keep HTTP in cmd/, internal/cli, internal/obs/obshttp, internal/serve/http, internal/serve/client)", pkg, imp)
			}
		}
	}
}

// TestServeClientConsumers pins which packages may depend on the HTTP
// client: operator-facing binaries and the fleet coordinator (which exists
// to drive remote servers). Library packages reaching for the client would
// re-couple the core to its own transport through the back door, and new
// consumers should add themselves here deliberately.
func TestServeClientConsumers(t *testing.T) {
	const module = "cos"
	allowed := map[string]bool{
		module + "/cmd/cos-top":    true,
		module + "/internal/fleet": true,
	}
	imports := moduleImports(t, module)
	for pkg, set := range imports {
		if set[module+"/internal/serve/client"] && !allowed[pkg] {
			t.Errorf("%s imports %s/internal/serve/client; only %v may (extend the list deliberately if this is a new operator binary or coordinator layer)",
				pkg, module, []string{module + "/cmd/cos-top", module + "/internal/fleet"})
		}
	}
}

// TestFleetConsumers keeps the coordinator at the edge too: only cmd/
// binaries may import internal/fleet. The experiments layer must never
// grow a fleet dependency — it sees remote execution only through the
// RunOptions.Exec interface, which is what keeps local and fleet runs
// byte-identical by construction.
func TestFleetConsumers(t *testing.T) {
	const module = "cos"
	imports := moduleImports(t, module)
	for pkg, set := range imports {
		if set[module+"/internal/fleet"] && !strings.HasPrefix(pkg, module+"/cmd/") {
			t.Errorf("%s imports %s/internal/fleet; only cmd/ binaries may (library code integrates via experiments.RunOptions.Exec)",
				pkg, module)
		}
	}
}

// moduleImports parses every non-test .go file under the module root and
// returns importPath -> set of imported paths.
func moduleImports(t *testing.T, module string) map[string]map[string]bool {
	t.Helper()
	imports := map[string]map[string]bool{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		pkg := module
		if dir := filepath.ToSlash(filepath.Dir(path)); dir != "." {
			pkg = module + "/" + dir
		}
		set := imports[pkg]
		if set == nil {
			set = map[string]bool{}
			imports[pkg] = set
		}
		for _, imp := range f.Imports {
			set[strings.Trim(imp.Path.Value, `"`)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return imports
}
