package cos

import (
	icos "cos/internal/cos"
	"cos/internal/dsp"
	"cos/internal/phy"
)

// Probe is a deep PHY introspection sample: the per-subcarrier state the
// paper's Figs. 5-7 are built from, captured from inside one exchange.
// Probes are expensive (they re-demodulate the whole packet against the
// transmitted grid), so WithProbe samples them every nth exchange rather
// than on every packet.
type Probe struct {
	// Seq is the exchange's 0-based index on its link.
	Seq int
	// NumSymbols is the payload OFDM symbol count; flattened positions
	// below are symbol-major (pos = symbol*48 + subcarrier).
	NumSymbols int
	// EVM is the per-data-subcarrier EVM of Eq. (1), a fraction (48 values).
	EVM []float64
	// ErrorVectors is the mean error-vector magnitude per data subcarrier:
	// the D(t) entries of Eq. (2).
	ErrorVectors []float64
	// SubcarrierErrorCounts counts demodulation symbol errors per data
	// subcarrier (erased positions excluded) — the Fig. 6(b) histogram.
	SubcarrierErrorCounts []int
	// SubcarrierSymbols counts compared symbols per data subcarrier.
	SubcarrierSymbols []int
	// SymbolErrorPositions are the flattened positions of every symbol
	// error — the x-axis of Fig. 6(a), whose ~48-periodicity exposes the
	// weak subcarriers.
	SymbolErrorPositions []int
	// ErasurePositions are the flattened positions the energy detector
	// declared silent (erased before the Viterbi decoder).
	ErasurePositions []int
	// DecoderInputBitErrors / DecoderInputBits give the hard-decision BER
	// on the coded bits entering the decoder (Fig. 3).
	DecoderInputBitErrors int
	DecoderInputBits      int
	// ControlSubcarriers is the control set the detector scanned; the two
	// detector slices below are indexed parallel to it.
	ControlSubcarriers []int
	// DetectorThresholds is the adaptive post-FFT energy threshold the
	// detector used on each control subcarrier.
	DetectorThresholds []float64
	// DetectorEnergyRatios is, per control subcarrier, the mean raw bin
	// energy across payload symbols divided by that subcarrier's threshold:
	// how much margin the detector had (values near 1 mean the silent/active
	// populations are hard to separate).
	DetectorEnergyRatios []float64
	// NoiseVar is the pilot-aided post-FFT noise variance estimate eta.
	NoiseVar float64
}

// Clone returns a deep copy of the probe.
func (p *Probe) Clone() *Probe {
	if p == nil {
		return nil
	}
	cp := *p
	cp.EVM = append([]float64(nil), p.EVM...)
	cp.ErrorVectors = append([]float64(nil), p.ErrorVectors...)
	cp.SubcarrierErrorCounts = append([]int(nil), p.SubcarrierErrorCounts...)
	cp.SubcarrierSymbols = append([]int(nil), p.SubcarrierSymbols...)
	cp.SymbolErrorPositions = append([]int(nil), p.SymbolErrorPositions...)
	cp.ErasurePositions = append([]int(nil), p.ErasurePositions...)
	cp.ControlSubcarriers = append([]int(nil), p.ControlSubcarriers...)
	cp.DetectorThresholds = append([]float64(nil), p.DetectorThresholds...)
	cp.DetectorEnergyRatios = append([]float64(nil), p.DetectorEnergyRatios...)
	return &cp
}

// buildProbe assembles a Probe from one exchange's transmit packet and
// front end. erased may be nil (data-only packet); hard may be nil.
func buildProbe(ex *Exchange, pkt *phy.TxPacket, fe *phy.FrontEnd, erased [][]bool, hard []byte, det icos.Detector, ctrlSCs []int) (*Probe, error) {
	d, err := phy.Diagnose(pkt, fe, erased, hard)
	if err != nil {
		return nil, err
	}
	p := &Probe{
		Seq:                   ex.Seq,
		NumSymbols:            fe.NumSymbols(),
		EVM:                   append([]float64(nil), d.EVM[:]...),
		ErrorVectors:          append([]float64(nil), d.ErrorVectors[:]...),
		SubcarrierErrorCounts: append([]int(nil), d.SubcarrierErrorCounts[:]...),
		SubcarrierSymbols:     append([]int(nil), d.SymbolsPerSubcarrier[:]...),
		SymbolErrorPositions:  d.ErrorPositions(),
		ErasurePositions:      phy.FlattenMask(erased),
		DecoderInputBitErrors: d.DecoderInputBitErrors,
		DecoderInputBits:      d.DecoderInputBits,
		ControlSubcarriers:    append([]int(nil), ctrlSCs...),
		NoiseVar:              fe.NoiseVar,
	}
	p.DetectorThresholds = make([]float64, len(ctrlSCs))
	p.DetectorEnergyRatios = make([]float64, len(ctrlSCs))
	for i, sc := range ctrlSCs {
		th, err := det.Threshold(fe, sc)
		if err != nil {
			return nil, err
		}
		var energy float64
		for s := 0; s < fe.NumSymbols(); s++ {
			y, err := fe.Bins[s].DataValue(sc)
			if err != nil {
				return nil, err
			}
			energy += dsp.MagSq(y)
		}
		if n := fe.NumSymbols(); n > 0 {
			energy /= float64(n)
		}
		p.DetectorThresholds[i] = th
		if th > 0 {
			p.DetectorEnergyRatios[i] = energy / th
		}
	}
	return p, nil
}
