package cos

import "errors"

// Sentinel errors for the failure classes callers branch on. They are always
// returned wrapped with context, so test with errors.Is:
//
//	if _, err := link.Send(data, ctrl); errors.Is(err, cos.ErrBudgetExceeded) {
//		ctrl = ctrl[:0] // retry data-only
//	}
var (
	// ErrBudgetExceeded reports a control message larger than the current
	// adaptive silence budget allows (see Link.MaxControlBits).
	ErrBudgetExceeded = errors.New("control bits exceed the silence budget")
	// ErrCoSDisabled reports an attempt to embed control bits on a link
	// built with WithoutCoS.
	ErrCoSDisabled = errors.New("CoS is disabled on this link")
	// ErrControlAlignment reports a control message whose length is not a
	// multiple of the configured bits-per-interval (and the link has no
	// framing layer to pad it).
	ErrControlAlignment = errors.New("control bits not aligned to the interval size")
	// ErrFramingRequired reports an operation that needs the
	// WithControlFraming integrity layer on a link built without it.
	ErrFramingRequired = errors.New("control framing required")
)

// ConfigError reports an invalid option value passed to NewLink (or to the
// option itself). It wraps the validation failure so callers can test with
// errors.As:
//
//	var ce *cos.ConfigError
//	if errors.As(err, &ce) {
//		log.Printf("bad option %s: %s", ce.Option, ce.Reason)
//	}
type ConfigError struct {
	// Option names the option constructor, e.g. "WithSNR".
	Option string
	// Reason describes the rejected value.
	Reason string
	// Err is an optional underlying cause.
	Err error
}

// Error keeps the historical "cos: <reason>" message shape so existing log
// scraping and error-string matches keep working.
func (e *ConfigError) Error() string { return "cos: " + e.Reason }

// Unwrap returns the underlying cause, if any.
func (e *ConfigError) Unwrap() error { return e.Err }
