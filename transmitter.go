package cos

import (
	"fmt"

	"cos/internal/bits"
	icos "cos/internal/cos"
	"cos/internal/phy"
	"cos/internal/scenario"
)

// Frame is one encoded transmission: the output of Transmitter.Encode and
// the input to Channel.Transmit / Receiver.Receive. Its slice fields alias
// the transmitter's scratch storage, so a frame is valid only until the
// next Encode on the same transmitter.
type Frame struct {
	// Mode is the 802.11a mode the transmitter selected.
	Mode phy.Mode
	// DataBytes is the data payload length in bytes.
	DataBytes int
	// PSDULen is the PSDU length (data + FCS) in bytes.
	PSDULen int
	// Samples are the baseband time-domain samples to push through the
	// channel: preamble plus cyclic-prefixed OFDM payload symbols.
	Samples []complex128
	// Packet is the underlying transmit packet (grid already carries the
	// embedded silences).
	Packet *phy.TxPacket
	// ControlSubcarriers is the control subcarrier set used for this frame.
	ControlSubcarriers []int
	// ControlBits are the control bits the caller asked to embed (before
	// framing/padding); empty for a data-only frame.
	ControlBits []byte
	// TruthMask is the ground-truth silence mask the transmitter embedded,
	// or nil for a data-only frame.
	TruthMask [][]bool
	// SilencesInserted is the number of silence symbols embedded.
	SilencesInserted int
}

// LinkFeedback is what the receiver feeds back to the transmitter after a
// successful exchange: the smoothed SNR report and the selected control
// subcarriers (Fig. 8's closed loop).
type LinkFeedback struct {
	// MeasuredSNRdB is the receiver's (smoothed) SNR report.
	MeasuredSNRdB float64
	// ControlSubcarriers is the selected control set; empty when no
	// subcarrier was detectable.
	ControlSubcarriers []int
	// NoDetectable reports that the receiver found no subcarrier on which
	// silences could be detected; the transmitter pauses CoS.
	NoDetectable bool
}

// Transmitter is the sender-side pipeline node: it selects the data mode
// and silence budget from the last feedback, runs the 802.11a transmit
// chain, embeds control bits through the scenario's embedding scheme
// (silence intervals by default), and renders baseband samples. It owns a
// reusable scratch arena, so steady-state Encode calls do not allocate;
// the returned Frame aliases that arena and is valid until the next
// Encode. A Transmitter is not safe for concurrent use.
type Transmitter struct {
	cfg     config
	emb     scenario.Embedding
	rateTbl *icos.RateTable
	metrics *linkMetrics

	// Feedback state (valid after the first ApplyFeedback).
	haveFeedback bool
	// noDetectable records that the last feedback found no subcarrier on
	// which silences could be detected: CoS pauses (budget 0) rather than
	// falling back to the bootstrap set on a channel known to be hostile.
	noDetectable bool
	ctrlSCs      []int
	measuredSNR  float64

	// Scratch, reused across Encodes (the embedding owns the
	// interval/mask scratch).
	phy     phy.TxScratch
	psdu    []byte
	framed  []byte
	padded  []byte
	samples []complex128
	frame   Frame
}

// NewTransmitter builds a standalone transmitter node from link options.
// Inside a Link the transmitter is wired up by NewLink; standalone nodes
// are for multi-link topologies where sender and receiver are driven
// separately.
func NewTransmitter(opts ...Option) (*Transmitter, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	m := newLinkMetrics(cfg.metrics)
	return newTransmitter(cfg, &m)
}

func newTransmitter(cfg config, m *linkMetrics) (*Transmitter, error) {
	emb, err := cfg.scenario.NewEmbedding()
	if err != nil {
		return nil, err
	}
	return &Transmitter{cfg: cfg, emb: emb, rateTbl: icos.DefaultRateTable(), metrics: m}, nil
}

// Mode returns the data mode the next Encode will use.
func (t *Transmitter) Mode() (phy.Mode, error) {
	if t.cfg.fixedRateMbps != 0 {
		return phy.ModeByRate(t.cfg.fixedRateMbps)
	}
	if !t.haveFeedback {
		// No feedback yet: most robust mode.
		return phy.ModeByRate(6)
	}
	return phy.SelectMode(t.measuredSNR), nil
}

// SilenceBudget returns the per-packet silence budget for the next frame.
func (t *Transmitter) SilenceBudget() int {
	if !t.cfg.adaptiveBudget {
		return t.cfg.silenceBudget
	}
	if !t.haveFeedback {
		// Sec. III-F: without feedback (e.g. after a loss) use the lowest
		// control rate.
		return t.rateTbl.Fallback()
	}
	snr := t.measuredSNR
	if t.cfg.fixedRateMbps != 0 {
		// The budget table is calibrated against the adaptive SNR->mode
		// mapping. With a pinned rate, clamp the lookup into that mode's
		// band: above the band the pinned mode has *more* headroom than the
		// adaptive mode the table assumes, so the band-top budget is a
		// conservative choice.
		snr = clampToBand(snr, t.cfg.fixedRateMbps)
	}
	return t.rateTbl.Lookup(snr)
}

// MaxControlBits reports how many control bits the next Encode can embed
// for a payload of dataLen bytes, accounting for the current budget, the
// control subcarrier set, and the embedding scheme's capacity (worst-case
// interval layout for silences, pad size for padding).
func (t *Transmitter) MaxControlBits(dataLen int) (int, error) {
	if t.cfg.disableCoS || (t.emb.Budgeted() && t.noDetectable) {
		return 0, nil
	}
	mode, err := t.Mode()
	if err != nil {
		return 0, err
	}
	k := t.cfg.bitsPerInterval
	nCtrl := len(t.ctrlSCs)
	if nCtrl == 0 {
		nCtrl = t.cfg.minCtrl
	}
	byCapacity := t.emb.Capacity(mode, dataLen+bits.FCSLen, nCtrl, k)
	if !t.emb.Budgeted() {
		// Capacity-limited only: no silence budget applies, but framing
		// overhead still eats into the pad.
		if t.cfg.controlFraming {
			byCapacity -= icos.FramedBits(0, t.emb.Align(k))
		}
		if byCapacity < 0 {
			byCapacity = 0
		}
		return byCapacity, nil
	}
	budget := t.SilenceBudget()
	byBudget := (budget - 1) * k
	if byBudget < 0 {
		byBudget = 0
	}
	if t.cfg.controlFraming {
		byBudget -= icos.FramedBits(0, k) // header+CRC ride in the budget
		if byBudget < 0 {
			byBudget = 0
		}
	}
	if byCapacity < byBudget {
		return byCapacity, nil
	}
	return byBudget, nil
}

// ControlSubcarriers returns the control subcarrier set the next Encode
// will use (a copy).
func (t *Transmitter) ControlSubcarriers() []int {
	src := t.ctrlSCs
	if len(src) == 0 {
		src = defaultCtrlSCs
	}
	out := make([]int, len(src))
	copy(out, src)
	return out
}

// Encode builds one frame: FCS, the 802.11a transmit chain, control-bit
// embedding as silences, and sample generation. len(control) must be a
// multiple of the configured bits-per-interval and fit within
// MaxControlBits; pass nil for a data-only frame. The returned frame
// aliases the transmitter's scratch and is valid until the next Encode.
func (t *Transmitter) Encode(data, control []byte) (*Frame, error) {
	mode, err := t.Mode()
	if err != nil {
		return nil, err
	}
	if t.cfg.disableCoS && len(control) > 0 {
		return nil, fmt.Errorf("cos: control bits on a CoS-disabled link: %w", ErrCoSDisabled)
	}

	sp := t.metrics.span(StageTxEncode)
	t.psdu = bits.AppendFCSInto(t.psdu, data)
	pkt, err := phy.BuildPacketInto(&t.phy, phy.TxConfig{Mode: mode}, t.psdu)
	if err != nil {
		return nil, err
	}
	ctrlSCs := t.ctrlSCs
	if len(ctrlSCs) == 0 {
		ctrlSCs = defaultCtrlSCs
	}
	f := &t.frame
	*f = Frame{
		Mode:               mode,
		DataBytes:          len(data),
		PSDULen:            len(t.psdu),
		Packet:             pkt,
		ControlSubcarriers: ctrlSCs,
		ControlBits:        control,
	}

	if len(control) > 0 {
		maxBits, err := t.MaxControlBits(len(data))
		if err != nil {
			return nil, err
		}
		if len(control) > maxBits {
			return nil, fmt.Errorf("cos: %d control bits exceed the current budget of %d: %w", len(control), maxBits, ErrBudgetExceeded)
		}
		wire := control
		align := t.emb.Align(t.cfg.bitsPerInterval)
		if t.cfg.controlFraming {
			t.framed, err = icos.FrameControlInto(t.framed, control)
			if err != nil {
				return nil, err
			}
			t.padded, err = icos.PadToIntervalInto(t.padded, t.framed, align)
			if err != nil {
				return nil, err
			}
			wire = t.padded
		} else if align > 1 && len(control)%align != 0 {
			return nil, fmt.Errorf("cos: %d control bits is not a multiple of k=%d (or use WithControlFraming): %w",
				len(control), align, ErrControlAlignment)
		}
		f.TruthMask, f.SilencesInserted, err = t.emb.Embed(pkt, ctrlSCs, wire, t.cfg.bitsPerInterval)
		if err != nil {
			return nil, err
		}
	}

	t.samples, err = pkt.SamplesInto(t.samples)
	if err != nil {
		return nil, err
	}
	f.Samples = t.samples
	sp.End()
	return f, nil
}

// ApplyFeedback installs the receiver's feedback; it governs the mode,
// budget, and control set of subsequent Encodes.
func (t *Transmitter) ApplyFeedback(fb LinkFeedback) {
	t.haveFeedback = true
	t.measuredSNR = fb.MeasuredSNRdB
	t.ctrlSCs = fb.ControlSubcarriers
	t.noDetectable = fb.NoDetectable
}

// NoteLoss records that the last exchange produced no usable feedback
// (data or feedback-frame loss): the transmitter falls back to
// conservative settings for the next frame (Sec. III-F).
func (t *Transmitter) NoteLoss() {
	t.haveFeedback = false
	t.noDetectable = false
	t.ctrlSCs = nil
}
