package cos

import "cos/internal/obs"

// MetricsRegistry is the observability registry the pipeline reports
// into: counters, gauges, and bounded histograms with a Snapshot() API,
// Prometheus text exposition, and expvar JSON (see internal/obs and the
// README's "Observability" section).
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty, isolated registry for injection
// via WithMetricsRegistry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// DefaultMetrics returns the process-wide registry: the one every link
// uses unless overridden, the one the internal pipeline stages
// (PHY, detector, Viterbi, rate control, WLAN coordination) always use,
// and the one the CLIs expose with -metrics-addr.
func DefaultMetrics() *MetricsRegistry { return obs.Default() }

// MetricsSnapshot flattens the default registry into name->value pairs;
// histograms expand to _count, _sum, _p50, _p95 and _p99 keys.
func MetricsSnapshot() map[string]float64 { return obs.Snapshot() }
