package cos_test

// Scenario-layer equivalence and goldens at the public Link API.
//
// TestInterferenceScenarioEquivalence is the deprecation contract for
// WithInterference: the thin wrapper and WithScenario("pulse", ...) must
// configure byte-identical links. TestScenarioLinkGoldens pins fixed-seed
// transcript hashes for the two non-default worlds this repo ships (the
// hybrid BSC/PEC outdoor channel and the OFDM-padding embedding) the same
// way TestPipelineGolden pins the default world.

import (
	"crypto/sha256"
	"encoding/hex"
	"math/rand"
	"strings"
	"testing"

	"cos"
)

// transcript drives a fresh link built from opts through the standard
// golden send schedule and returns the full transcript text.
func transcript(t *testing.T, packets, ctrlBits, k int, sendSeed int64, opts ...cos.Option) string {
	t.Helper()
	link, err := cos.NewLink(opts...)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	driveSends(t, &b, link, packets, ctrlBits, k, rand.New(rand.NewSource(sendSeed)))
	return b.String()
}

// TestInterferenceScenarioEquivalence proves the deprecated
// WithInterference(power, burstLen, startProb) and
// WithScenario("pulse", power, burstLen, startProb) configure identical
// links: same channel draws, same interference bursts, same decoding —
// byte-identical transcripts on the TestPipelineGolden mobile-interference
// configuration.
func TestInterferenceScenarioEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full PHY simulation; skipped in -short mode")
	}
	common := func(extra cos.Option) []cos.Option {
		return []cos.Option{
			cos.WithMobile(), extra,
			cos.WithSeed(13), cos.WithSNR(25), cos.WithPacketInterval(2e-3),
		}
	}
	old := transcript(t, 40, 8, 4, 105, common(cos.WithInterference(2.0, 40, 0.1))...)
	new_ := transcript(t, 40, 8, 4, 105, common(cos.WithScenario("pulse", 2.0, 40, 0.1))...)
	if old != new_ {
		t.Fatal("WithInterference and WithScenario(\"pulse\", ...) transcripts differ")
	}
}

// TestScenarioLinkGoldens pins fixed-seed transcript hashes for the two
// new scenario components end-to-end through the public Link API. A drift
// means the component's deterministic behaviour changed — bump these only
// deliberately, like the TestPipelineGolden goldens.
func TestScenarioLinkGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("full PHY simulation; skipped in -short mode")
	}
	cases := []struct {
		name string
		want string
		opts []cos.Option
	}{
		{
			name: "hybrid-bscpec",
			want: "7e59bb588e3fed7983d9cb34bddcef3379bf075eff0e5a30ac0481276711ada6",
			opts: []cos.Option{cos.WithScenario("hybrid-bscpec"), cos.WithSeed(23), cos.WithSNR(20)},
		},
		{
			name: "hybrid-bscpec-params",
			want: "3f85eacee4084a1f1cd51d32e3ee6e1ae2d015b84c82c9ffcd5a1f49264308c0",
			opts: []cos.Option{cos.WithScenario("hybrid-bscpec", 0.3, 0.1, 10), cos.WithSeed(23), cos.WithSNR(20)},
		},
		{
			name: "ofdm-padding",
			want: "3d403d7ffdc481cd56710f8fdf9f5c109bddedf4c39ae0701727920898b77241",
			opts: []cos.Option{cos.WithScenario("ofdm-padding"), cos.WithSeed(29), cos.WithSNR(20)},
		},
		{
			name: "ofdm-padding-framed",
			want: "5f544cc9ccb2aaf8e62bbfd61cab0627112f9228497bfd8a68a1d0b3c49e704c",
			opts: []cos.Option{cos.WithScenario("ofdm-padding"), cos.WithControlFraming(), cos.WithSeed(31), cos.WithSNR(18)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := 4
			if strings.Contains(tc.name, "framed") {
				k = 1
			}
			first := transcript(t, 25, 16, k, 200, tc.opts...)
			second := transcript(t, 25, 16, k, 200, tc.opts...)
			if first != second {
				t.Fatal("transcript is not deterministic across fresh links")
			}
			sum := sha256.Sum256([]byte(first))
			if got := hex.EncodeToString(sum[:]); got != tc.want {
				t.Errorf("transcript hash = %s, want %s", got, tc.want)
			}
		})
	}
}

// TestScenarioOptionErrors pins WithScenario's failure mode: unknown names
// and misrouted parameters surface as ConfigError at NewLink, never later.
func TestScenarioOptionErrors(t *testing.T) {
	if _, err := cos.NewLink(cos.WithScenario("no-such-world")); err == nil {
		t.Error("NewLink accepted an unknown scenario")
	}
	if _, err := cos.NewLink(cos.WithScenario("default", 1, 2)); err == nil {
		t.Error("NewLink accepted parameters for the parameterless default scenario")
	}
}
