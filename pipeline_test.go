package cos_test

import (
	"bytes"
	"sync"
	"testing"

	"cos"
)

// sendWithBudgetedControl queries the link's current silence budget and
// sends data with as many control bits as fit (rounded down to the k=4
// interval alignment), mirroring how an adaptive sender would drive the API.
func sendWithBudgetedControl(t testing.TB, link *cos.Link, data, ctrl []byte) (*cos.Exchange, []byte) {
	t.Helper()
	maxBits, err := link.MaxControlBits(len(data))
	if err != nil {
		t.Fatalf("MaxControlBits: %v", err)
	}
	n := maxBits / 4 * 4
	if n > cap(ctrl) {
		n = cap(ctrl)
	}
	ctrl = ctrl[:n]
	for i := range ctrl {
		ctrl[i] = byte(i % 2)
	}
	ex, err := link.Send(data, ctrl)
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	return ex, ctrl
}

// TestLinkSendSteadyStateAllocs freezes the tentpole claim of the pipeline
// refactor: once the per-node scratch arenas are warm, Link.Send allocates
// (near) nothing per packet. The budget is deliberately above the measured
// value (~15 allocs/op, all in the Exchange result and its copied-out
// slices) so legitimate result-surface changes don't trip it, while a
// regression back toward the pre-refactor ~9000 allocs/op fails loudly.
func TestLinkSendSteadyStateAllocs(t *testing.T) {
	const allocBudget = 32

	link, err := cos.NewLink(cos.WithSNR(20), cos.WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i)
	}
	ctrl := make([]byte, 0, 64)

	// Warm up: let the feedback loop settle on a mode and the scratch
	// arenas grow to their steady-state sizes.
	for i := 0; i < 8; i++ {
		sendWithBudgetedControl(t, link, data, ctrl)
	}

	avg := testing.AllocsPerRun(50, func() {
		sendWithBudgetedControl(t, link, data, ctrl)
	})
	t.Logf("steady-state Link.Send: %.1f allocs/op (budget %d)", avg, allocBudget)
	if avg > allocBudget {
		t.Fatalf("steady-state Link.Send allocates %.1f/op, budget is %d", avg, allocBudget)
	}
}

// TestStandaloneNodesMatchLink drives the public Transmitter -> Channel ->
// Receiver nodes by hand — the multi-link simulation wiring — and checks
// the outcome of every packet is identical to a Link built from the same
// options: same bytes, same SNRs, same control verdicts. This pins the
// contract that Link is pure wiring around the nodes.
func TestStandaloneNodesMatchLink(t *testing.T) {
	opts := []cos.Option{cos.WithSNR(20), cos.WithSeed(6)}
	link, err := cos.NewLink(opts...)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := cos.NewTransmitter(opts...)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := cos.NewChannel(opts...)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := cos.NewReceiver(ch, opts...)
	if err != nil {
		t.Fatal(err)
	}

	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i)
	}
	ctrlLink := make([]byte, 0, 64)
	now := 0.0
	const interval = 2e-3 // the default packet interval

	for p := 0; p < 12; p++ {
		ex, ctrl := sendWithBudgetedControl(t, link, data, ctrlLink)

		// Standalone pipeline, fed the exact same inputs.
		maxBits, err := tx.MaxControlBits(len(data))
		if err != nil {
			t.Fatalf("packet %d: MaxControlBits: %v", p, err)
		}
		if got := maxBits / 4 * 4; got < len(ctrl) {
			t.Fatalf("packet %d: standalone budget %d < link control length %d", p, got, len(ctrl))
		}
		f, err := tx.Encode(data, ctrl)
		if err != nil {
			t.Fatalf("packet %d: Encode: %v", p, err)
		}
		rxSamples, actualSNR, err := ch.Transmit(f.Samples, now)
		if err != nil {
			t.Fatalf("packet %d: Transmit: %v", p, err)
		}
		res, err := rx.Receive(f, rxSamples, now)
		if err != nil {
			t.Fatalf("packet %d: Receive: %v", p, err)
		}
		if res.FeedbackOK {
			tx.ApplyFeedback(res.Feedback)
		} else {
			tx.NoteLoss()
		}
		now += interval

		if actualSNR != ex.ActualSNRdB {
			t.Fatalf("packet %d: actual SNR %v != link %v", p, actualSNR, ex.ActualSNRdB)
		}
		if res.MeasuredSNRdB != ex.MeasuredSNRdB {
			t.Fatalf("packet %d: measured SNR %v != link %v", p, res.MeasuredSNRdB, ex.MeasuredSNRdB)
		}
		if res.DataOK != ex.DataOK {
			t.Fatalf("packet %d: DataOK %v != link %v", p, res.DataOK, ex.DataOK)
		}
		if res.DataOK && !bytes.Equal(res.Data, ex.Data) {
			t.Fatalf("packet %d: decoded data differs from link", p)
		}
		if res.ControlOK != ex.ControlOK {
			t.Fatalf("packet %d: ControlOK %v != link %v", p, res.ControlOK, ex.ControlOK)
		}
		if !bytes.Equal(res.ControlReceived, ex.ControlReceived) {
			t.Fatalf("packet %d: control bits differ from link", p)
		}
	}
}

// TestPipelineNodesRace exercises the node wiring from concurrent
// goroutines — independent links plus a hand-wired standalone pipeline per
// goroutine — so `go test -race` can catch unsynchronized access to the
// package-level shared state the nodes lean on (the interleaver cache, the
// precomputed preamble, the metrics registry). Each link itself stays
// single-goroutine, per the concurrency contract.
func TestPipelineNodesRace(t *testing.T) {
	const workers = 4
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			opts := []cos.Option{cos.WithSNR(20), cos.WithSeed(seed)}
			link, err := cos.NewLink(opts...)
			if err != nil {
				errs <- err
				return
			}
			ctrl := make([]byte, 0, 64)
			for p := 0; p < 3; p++ {
				maxBits, err := link.MaxControlBits(len(data))
				if err != nil {
					errs <- err
					return
				}
				n := maxBits / 4 * 4
				if n > cap(ctrl) {
					n = cap(ctrl)
				}
				ctrl = ctrl[:n]
				for i := range ctrl {
					ctrl[i] = byte(i % 2)
				}
				if _, err := link.Send(data, ctrl); err != nil {
					errs <- err
					return
				}
			}
			// Standalone nodes in the same goroutine: constructors and one
			// manual pass also touch the shared caches.
			tx, err := cos.NewTransmitter(opts...)
			if err != nil {
				errs <- err
				return
			}
			ch, err := cos.NewChannel(opts...)
			if err != nil {
				errs <- err
				return
			}
			rx, err := cos.NewReceiver(ch, opts...)
			if err != nil {
				errs <- err
				return
			}
			f, err := tx.Encode(data, nil)
			if err != nil {
				errs <- err
				return
			}
			rxSamples, _, err := ch.Transmit(f.Samples, 0)
			if err != nil {
				errs <- err
				return
			}
			if _, err := rx.Receive(f, rxSamples, 0); err != nil {
				errs <- err
				return
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
