package cos

import (
	"fmt"

	icos "cos/internal/cos"
)

// StreamOutcome classifies how a SendStream transfer ended. The zero value
// is meaningless; every StreamResult carries one of the named outcomes.
type StreamOutcome int

const (
	// StreamDelivered: the receiver reassembled the full payload.
	StreamDelivered StreamOutcome = iota + 1
	// StreamStallAborted: the stream gave up after maxStreamStalls
	// consecutive budget-starved packets.
	StreamStallAborted
	// StreamFragmentLost: a fragment failed CRC validation at the receiver
	// (or the stream ran out of fragments without completing).
	StreamFragmentLost
	// StreamHeaderCorrupted: a fragment passed its CRC but its reassembly
	// header no longer continued the stream — a detection error rewrote the
	// header into a non-continuation.
	StreamHeaderCorrupted
)

// String returns the outcome's name.
func (o StreamOutcome) String() string {
	switch o {
	case StreamDelivered:
		return "delivered"
	case StreamStallAborted:
		return "stall-aborted"
	case StreamFragmentLost:
		return "fragment-lost"
	case StreamHeaderCorrupted:
		return "header-corrupted"
	default:
		return fmt.Sprintf("StreamOutcome(%d)", int(o))
	}
}

// StreamResult reports a multi-packet control stream transfer.
type StreamResult struct {
	// Outcome classifies how the transfer ended.
	Outcome StreamOutcome
	// Delivered reports whether the receiver reassembled the full payload.
	// It is always Outcome == StreamDelivered; kept as a field for
	// compatibility with callers predating Outcome.
	Delivered bool
	// Payload is the receiver's reassembled copy when Delivered.
	Payload []byte
	// PacketsUsed counts data packets consumed (including budget-starved
	// packets that carried no fragment).
	PacketsUsed int
	// FragmentsSent and FragmentsDelivered count the stream's fragments.
	FragmentsSent, FragmentsDelivered int
}

// finish stamps the outcome and keeps Delivered in sync with it.
func (r *StreamResult) finish(o StreamOutcome) *StreamResult {
	r.Outcome = o
	r.Delivered = o == StreamDelivered
	return r
}

// maxStreamStalls bounds how many consecutive budget-starved packets a
// stream tolerates before giving up.
const maxStreamStalls = 8

// SendStream delivers a control payload longer than one packet's budget by
// fragmenting it across consecutive data packets (each packet carries data
// plus one fragment). It requires WithControlFraming — fragments must be
// CRC-validated before reassembly. data supplies the payload reused for
// every packet.
//
// A corrupted or lost fragment aborts the stream (the result's Outcome
// says which way): CoS control messages are small state updates, and the
// caller retries whole messages.
func (l *Link) SendStream(payload, data []byte) (*StreamResult, error) {
	if !l.cfg.controlFraming {
		return nil, fmt.Errorf("cos: SendStream requires WithControlFraming: %w", ErrFramingRequired)
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("cos: empty stream payload")
	}
	l.metrics.streams.Inc()

	// Pick a fragment size from the current budget, floored so odd budgets
	// still make progress and capped to keep per-packet silence counts low.
	budget, err := l.MaxControlBits(len(data))
	if err != nil {
		return nil, err
	}
	fragBits := budget
	if fragBits > 64 {
		fragBits = 64
	}
	if fragBits < 16 {
		fragBits = 16
	}

	var fr icos.Fragmenter
	frags, err := fr.Split(payload, fragBits)
	if err != nil {
		return nil, err
	}

	res := &StreamResult{}
	var re icos.Reassembler
	stalls := 0
	for i := 0; i < len(frags); {
		budget, err := l.MaxControlBits(len(data))
		if err != nil {
			return nil, err
		}
		if budget < len(frags[i]) {
			// Budget dip: push a data-only packet and let the feedback
			// loop recover.
			if _, err := l.Send(data, nil); err != nil {
				return nil, err
			}
			res.PacketsUsed++
			l.metrics.streamStalledPkts.Inc()
			stalls++
			if stalls >= maxStreamStalls {
				l.metrics.streamStallAborts.Inc()
				return res.finish(StreamStallAborted), nil
			}
			continue
		}
		stalls = 0
		ex, err := l.Send(data, frags[i])
		if err != nil {
			return nil, err
		}
		res.PacketsUsed++
		res.FragmentsSent++
		l.metrics.fragmentsSent.Inc()
		if !ex.ControlVerified {
			l.metrics.streamFragAborts.Inc()
			return res.finish(StreamFragmentLost), nil // fragment lost: abort the stream
		}
		res.FragmentsDelivered++
		l.metrics.fragmentsDelivered.Inc()
		msg, done, err := re.Push(ex.ControlPayload)
		if err != nil {
			l.metrics.streamFragAborts.Inc()
			// Header corrupted into a non-continuation.
			return res.finish(StreamHeaderCorrupted), nil
		}
		if done {
			res.Payload = msg
			l.metrics.streamsDelivered.Inc()
			return res.finish(StreamDelivered), nil
		}
		i++
	}
	l.metrics.streamFragAborts.Inc()
	return res.finish(StreamFragmentLost), nil
}
