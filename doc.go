// Package cos reproduces CoS — "Communication through Symbol Silence:
// Towards Free Control Messages in Indoor WLANs" (Feng, Liu, Zhang, Fang;
// ICDCS 2017) — as a pure-Go simulation of the full 802.11a stack the paper
// prototyped on the Sora software-defined radio.
//
// CoS piggybacks lightweight control messages on ordinary data packets at
// zero airtime cost: the transmitter silences selected data symbols (zero
// power on one subcarrier for one OFDM symbol) and encodes control bits in
// the intervals between silences; the receiver finds the silences with
// symbol-level energy detection and recovers the erased data through the
// convolutional code's unused redundancy (the "SNR gap") via erasure
// Viterbi decoding. Placing silences on weak subcarriers — whose symbols
// frequency-selective fading would have corrupted anyway — makes the
// erasures nearly free.
//
// The top-level API is Link, a simulated sender/receiver pair over an
// indoor multipath channel:
//
//	link, err := cos.NewLink(cos.WithPosition(cos.PositionB), cos.WithSNR(18))
//	if err != nil { ... }
//	ex, err := link.Send(data, controlBits)
//	// ex.DataOK, ex.ControlOK, ex.Detection, ex.MeasuredSNRdB, ...
//
// # Errors
//
// Failures are typed. Option validation surfaces *ConfigError (match with
// errors.As; Option names the offending With* option and Reason says what
// was wrong). Send and SendStream wrap sentinel errors — ErrCoSDisabled,
// ErrBudgetExceeded, ErrControlAlignment, ErrFramingRequired — so callers
// branch with errors.Is instead of string matching:
//
//	if _, err := link.Send(data, ctrl); errors.Is(err, cos.ErrBudgetExceeded) {
//		ctrl = ctrl[:0] // back off and retry data-only
//	}
//
// SendStream reports how a stream ended in StreamResult.Outcome
// (StreamDelivered, StreamStallAborted, StreamFragmentLost,
// StreamHeaderCorrupted); the boolean Delivered field is derived from it.
//
// # Retaining exchanges
//
// The *Exchange delivered to a WithObserver callback may share slice
// memory (Data, ControlSent, ControlSubcarriers, ...) with live link
// state that later packets overwrite. Observers that only read fields
// synchronously need nothing special; observers that retain or mutate an
// exchange past the callback must take an Exchange.Clone(), which deep-
// copies every slice field.
//
// Lower layers live under internal/: the 802.11a PHY (internal/phy), OFDM
// waveform (internal/ofdm), channel coding with erasure Viterbi decoding
// (internal/coding), constellations and EVM (internal/modulation), the
// indoor channel simulator (internal/channel), and the CoS mechanisms
// themselves (internal/cos). The cmd/cos-figures binary and the benchmarks
// in bench_test.go regenerate every figure of the paper's evaluation; see
// DESIGN.md and EXPERIMENTS.md.
package cos
