package cos_test

import (
	"errors"
	"sync"
	"testing"

	"cos"
)

func sendN(t *testing.T, link *cos.Link, n int) []*cos.Exchange {
	t.Helper()
	data := make([]byte, 1024)
	out := make([]*cos.Exchange, 0, n)
	for i := 0; i < n; i++ {
		ctrl := []byte{1, 0, 1, 0}
		if maxBits, err := link.MaxControlBits(len(data)); err != nil || maxBits < len(ctrl) {
			ctrl = nil // budget follows feedback; probe behaviour must not care
		}
		ex, err := link.Send(data, ctrl)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ex)
	}
	return out
}

func TestNoProbeWithoutOption(t *testing.T) {
	// The zero-overhead guarantee: without WithProbe no probe is ever
	// built, while the span layer still times every stage.
	reg := cos.NewMetricsRegistry()
	link, err := cos.NewLink(cos.WithSNR(18), cos.WithSeed(31), cos.WithSilenceBudget(16), cos.WithMetricsRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	for i, ex := range sendN(t, link, 6) {
		if ex.Probe != nil {
			t.Errorf("exchange %d grew a probe without WithProbe", i)
		}
		var stages int64
		for _, ns := range ex.StageNS {
			stages += ns
		}
		if stages <= 0 {
			t.Errorf("exchange %d has no stage latencies: %v", i, ex.StageNS)
		}
	}
	if n := reg.Snapshot()["cos_link_probes_total"]; n != 0 {
		t.Errorf("cos_link_probes_total = %v on an unprobed link", n)
	}
}

func TestProbeSamplesEveryNth(t *testing.T) {
	reg := cos.NewMetricsRegistry()
	var fired []int
	link, err := cos.NewLink(cos.WithSNR(18), cos.WithSeed(32), cos.WithSilenceBudget(16),
		cos.WithMetricsRegistry(reg),
		cos.WithProbe(3, func(p *cos.Probe) { fired = append(fired, p.Seq) }))
	if err != nil {
		t.Fatal(err)
	}
	exchanges := sendN(t, link, 7)
	for i, ex := range exchanges {
		want := i%3 == 0
		if got := ex.Probe != nil; got != want {
			t.Errorf("exchange %d: probe attached = %v, want %v", i, got, want)
		}
		if ex.Probe != nil && ex.Probe.Seq != i {
			t.Errorf("exchange %d: probe.Seq = %d", i, ex.Probe.Seq)
		}
	}
	if len(fired) != 3 || fired[0] != 0 || fired[1] != 3 || fired[2] != 6 {
		t.Errorf("callback fired on %v, want [0 3 6]", fired)
	}
	if n := reg.Snapshot()["cos_link_probes_total"]; n != 3 {
		t.Errorf("cos_link_probes_total = %v, want 3", n)
	}
}

func TestProbeContents(t *testing.T) {
	link, err := cos.NewLink(cos.WithSNR(14), cos.WithSeed(33), cos.WithProbe(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	ex := sendN(t, link, 1)[0]
	p := ex.Probe
	if p == nil {
		t.Fatal("no probe on a WithProbe(1) link")
	}
	if len(p.EVM) != 48 {
		t.Errorf("EVM has %d subcarriers, want 48", len(p.EVM))
	}
	for sc, v := range p.EVM {
		if v < 0 {
			t.Errorf("EVM[%d] = %v negative", sc, v)
		}
	}
	if p.NumSymbols <= 0 || p.DecoderInputBits <= 0 {
		t.Errorf("empty demod stats: symbols=%d bits=%d", p.NumSymbols, p.DecoderInputBits)
	}
	if p.NoiseVar <= 0 {
		t.Errorf("NoiseVar = %v", p.NoiseVar)
	}
	if len(p.ControlSubcarriers) == 0 {
		t.Fatal("no control subcarriers recorded")
	}
	if len(p.DetectorThresholds) != len(p.ControlSubcarriers) ||
		len(p.DetectorEnergyRatios) != len(p.ControlSubcarriers) {
		t.Errorf("detector stats misaligned: %d thresholds, %d ratios, %d control SCs",
			len(p.DetectorThresholds), len(p.DetectorEnergyRatios), len(p.ControlSubcarriers))
	}
	for i, th := range p.DetectorThresholds {
		if th <= 0 {
			t.Errorf("DetectorThresholds[%d] = %v", i, th)
		}
	}
	for _, pos := range p.ErasurePositions {
		if pos < 0 || pos >= p.NumSymbols*48 {
			t.Errorf("erasure position %d out of grid [0,%d)", pos, p.NumSymbols*48)
		}
	}
}

func TestProbeCloneIsDeep(t *testing.T) {
	link, err := cos.NewLink(cos.WithSNR(18), cos.WithSeed(34), cos.WithProbe(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	p := sendN(t, link, 1)[0].Probe
	cp := p.Clone()
	if cp == p {
		t.Fatal("Clone returned the receiver")
	}
	cp.EVM[0] = -99
	cp.ControlSubcarriers[0] = -99
	if p.EVM[0] == -99 || p.ControlSubcarriers[0] == -99 {
		t.Error("Clone shares slices with the original")
	}
	var nilProbe *cos.Probe
	if nilProbe.Clone() != nil {
		t.Error("nil Clone should stay nil")
	}
}

func TestProbeRejectsBadInterval(t *testing.T) {
	_, err := cos.NewLink(cos.WithProbe(0, nil))
	var ce *cos.ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("WithProbe(0) error = %v, want ConfigError", err)
	}
}

func TestProbedLinksConcurrent(t *testing.T) {
	// Probed links sharing the default registry must be race-clean: span
	// histograms are shared across links, probe state is per-link.
	var wg sync.WaitGroup
	for l := 0; l < 4; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			link, err := cos.NewLink(cos.WithSNR(18), cos.WithSeed(int64(40+l)), cos.WithSilenceBudget(16),
				cos.WithProbe(2, nil))
			if err != nil {
				t.Error(err)
				return
			}
			data := make([]byte, 1024)
			for i := 0; i < 6; i++ {
				ctrl := []byte{1, 0, 1, 0}
				if maxBits, err := link.MaxControlBits(len(data)); err != nil || maxBits < len(ctrl) {
					ctrl = nil // budget follows the rate; probes must not care
				}
				ex, err := link.Send(data, ctrl)
				if err != nil {
					t.Error(err)
					return
				}
				if (i%2 == 0) != (ex.Probe != nil) {
					t.Errorf("link %d exchange %d: unexpected probe state", l, i)
				}
			}
		}(l)
	}
	wg.Wait()
}
