package cos

import (
	"math/rand"
	"testing"
)

// streamSnapshot runs SendStream against an isolated metrics registry and
// returns the result plus the registry snapshot, so tests can assert exact
// stream-counter values without cross-talk from other links.
func streamSnapshot(t *testing.T, payloadBits int, opts ...Option) (*StreamResult, map[string]float64) {
	t.Helper()
	reg := NewMetricsRegistry()
	opts = append(opts, WithControlFraming(), WithMetricsRegistry(reg))
	link, err := NewLink(opts...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	data := make([]byte, 512)
	rng.Read(data)
	payload := randBits(rng, payloadBits)
	res, err := link.SendStream(payload, data)
	if err != nil {
		t.Fatal(err)
	}
	return res, reg.Snapshot()
}

func TestSendStreamStallAbort(t *testing.T) {
	// A zero silence budget starves every fragment: the stream pushes
	// data-only packets hoping the budget recovers (it cannot, the budget
	// is pinned) and gives up after maxStreamStalls of them.
	res, snap := streamSnapshot(t, 40, WithSNR(20), WithSeed(21), WithSilenceBudget(0))
	if res.Delivered {
		t.Fatal("stream delivered with a zero budget")
	}
	if res.Outcome != StreamStallAborted {
		t.Errorf("Outcome = %v, want %v", res.Outcome, StreamStallAborted)
	}
	if res.FragmentsSent != 0 {
		t.Errorf("fragments sent with a zero budget: %d", res.FragmentsSent)
	}
	if res.PacketsUsed != maxStreamStalls {
		t.Errorf("packets used = %d, want %d stalled packets", res.PacketsUsed, maxStreamStalls)
	}
	for name, want := range map[string]float64{
		"cos_stream_sends_total":           1,
		"cos_stream_stall_aborts_total":    1,
		"cos_stream_stalled_packets_total": maxStreamStalls,
		"cos_stream_fragment_aborts_total": 0,
		"cos_stream_delivered_total":       0,
	} {
		if snap[name] != want {
			t.Errorf("%s = %v, want %v", name, snap[name], want)
		}
	}
}

func TestSendStreamFragmentAbort(t *testing.T) {
	// At 4 dB the CRC framing rejects corrupted fragments; the stream
	// aborts on the first unverified one instead of reassembling garbage.
	res, snap := streamSnapshot(t, 120, WithSNR(4), WithSeed(22), WithSilenceBudget(24), WithFixedRate(6))
	if res.Delivered {
		t.Fatal("stream delivered through a 4 dB channel")
	}
	if res.Outcome != StreamFragmentLost && res.Outcome != StreamHeaderCorrupted {
		t.Errorf("Outcome = %v, want a fragment abort", res.Outcome)
	}
	if snap["cos_stream_fragment_aborts_total"] != 1 {
		t.Errorf("cos_stream_fragment_aborts_total = %v, want 1", snap["cos_stream_fragment_aborts_total"])
	}
	if snap["cos_stream_stall_aborts_total"] != 0 {
		t.Errorf("cos_stream_stall_aborts_total = %v, want 0", snap["cos_stream_stall_aborts_total"])
	}
	if got := snap["cos_stream_fragments_sent_total"]; got != float64(res.FragmentsSent) || got < 1 {
		t.Errorf("cos_stream_fragments_sent_total = %v, want %d (>=1)", got, res.FragmentsSent)
	}
	if got := snap["cos_stream_fragments_delivered_total"]; got != float64(res.FragmentsDelivered) {
		t.Errorf("cos_stream_fragments_delivered_total = %v, want %d", got, res.FragmentsDelivered)
	}
}

func TestSendStreamDeliveredMetrics(t *testing.T) {
	// The happy path from TestSendStreamDeliversLongControl, re-checked
	// against the stream counters.
	res, snap := streamSnapshot(t, 180, WithSNR(19), WithSeed(91), WithFixedRate(24))
	if !res.Delivered {
		t.Fatalf("stream not delivered: %+v", res)
	}
	if res.Outcome != StreamDelivered {
		t.Errorf("Outcome = %v, want %v", res.Outcome, StreamDelivered)
	}
	for name, want := range map[string]float64{
		"cos_stream_sends_total":               1,
		"cos_stream_delivered_total":           1,
		"cos_stream_stall_aborts_total":        0,
		"cos_stream_fragment_aborts_total":     0,
		"cos_stream_fragments_sent_total":      float64(res.FragmentsSent),
		"cos_stream_fragments_delivered_total": float64(res.FragmentsDelivered),
	} {
		if snap[name] != want {
			t.Errorf("%s = %v, want %v", name, snap[name], want)
		}
	}
	if snap["cos_link_exchanges_total"] != float64(res.PacketsUsed) {
		t.Errorf("cos_link_exchanges_total = %v, want %d packets",
			snap["cos_link_exchanges_total"], res.PacketsUsed)
	}
}
