package cos

import (
	"errors"
	"strings"
	"testing"
)

// Every typed error must be reachable through errors.Is/As from the public
// entry points (NewLink, Send, SendStream), wrapped with a contextual
// message.

func TestConfigErrorFromOptions(t *testing.T) {
	cases := []struct {
		name   string
		opt    Option
		option string
	}{
		{"snr", WithSNR(99), "WithSNR"},
		{"bits-per-interval", WithBitsPerInterval(0), "WithBitsPerInterval"},
		{"subcarrier-range", WithControlSubcarrierRange(0, 4), "WithControlSubcarrierRange"},
		{"detector-factor", WithDetectorFactor(-1), "WithDetectorFactor"},
		{"silence-budget", WithSilenceBudget(-1), "WithSilenceBudget"},
		{"packet-interval", WithPacketInterval(0), "WithPacketInterval"},
		{"observer", WithObserver(nil), "WithObserver"},
		{"metrics-registry", WithMetricsRegistry(nil), "WithMetricsRegistry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewLink(tc.opt)
			if err == nil {
				t.Fatal("want error")
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error %v is not a *ConfigError", err)
			}
			if ce.Option != tc.option {
				t.Errorf("Option = %q, want %q", ce.Option, tc.option)
			}
			if ce.Reason == "" {
				t.Error("empty Reason")
			}
			// Historical message shape: "cos: <reason>".
			if !strings.HasPrefix(err.Error(), "cos: ") {
				t.Errorf("message %q lost the cos: prefix", err.Error())
			}
		})
	}
}

func TestErrCoSDisabled(t *testing.T) {
	link, err := NewLink(WithoutCoS(), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	_, err = link.Send(make([]byte, 256), []byte{1, 0, 1, 0})
	if !errors.Is(err, ErrCoSDisabled) {
		t.Errorf("err = %v, want ErrCoSDisabled", err)
	}
}

func TestErrBudgetExceeded(t *testing.T) {
	link, err := NewLink(WithSNR(20), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 4096)
	_, err = link.Send(make([]byte, 256), big)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestErrControlAlignment(t *testing.T) {
	link, err := NewLink(WithSNR(20), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	_, err = link.Send(make([]byte, 256), []byte{1, 0, 1}) // 3 bits, k=4
	if !errors.Is(err, ErrControlAlignment) {
		t.Errorf("err = %v, want ErrControlAlignment", err)
	}
}

func TestErrFramingRequired(t *testing.T) {
	link, err := NewLink(WithSNR(20), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	_, err = link.SendStream(make([]byte, 40), make([]byte, 256))
	if !errors.Is(err, ErrFramingRequired) {
		t.Errorf("err = %v, want ErrFramingRequired", err)
	}
}

func TestExchangeClone(t *testing.T) {
	link, err := NewLink(WithSNR(22), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256)
	// Warm the feedback loop, then size the control bits to the budget so
	// the exchange carries control whenever the link allows any.
	var ex *Exchange
	for i := 0; i < 4; i++ {
		budget, err := link.MaxControlBits(len(data))
		if err != nil {
			t.Fatal(err)
		}
		n := budget / 4 * 4
		if n > 8 {
			n = 8
		}
		ex, err = link.Send(data, make([]byte, n))
		if err != nil {
			t.Fatal(err)
		}
	}
	cp := ex.Clone()
	if cp == ex {
		t.Fatal("Clone returned the same pointer")
	}
	if len(cp.ControlSent) != len(ex.ControlSent) || len(cp.ControlSubcarriers) != len(ex.ControlSubcarriers) {
		t.Fatal("Clone dropped slice contents")
	}
	// Mutating the clone must not reach the original. (The original's
	// slices may alias live link state — ControlSubcarriers can be the
	// link's current selection — which is exactly why retaining observers
	// clone.)
	if len(cp.ControlSent) > 0 {
		want := ex.ControlSent[0]
		cp.ControlSent[0] ^= 1
		if ex.ControlSent[0] != want {
			t.Error("ControlSent aliased")
		}
	}
	if len(cp.ControlSubcarriers) > 0 {
		want := ex.ControlSubcarriers[0]
		cp.ControlSubcarriers[0] += 100
		if ex.ControlSubcarriers[0] != want {
			t.Error("ControlSubcarriers aliased")
		}
	}
	if cp.Data != nil {
		want := ex.Data[0]
		cp.Data[0] ^= 0xff
		if ex.Data[0] != want {
			t.Error("Data aliased")
		}
	}
	var nilEx *Exchange
	if nilEx.Clone() != nil {
		t.Error("nil Clone should be nil")
	}
}

func TestStreamOutcomeString(t *testing.T) {
	cases := map[StreamOutcome]string{
		StreamDelivered:       "delivered",
		StreamStallAborted:    "stall-aborted",
		StreamFragmentLost:    "fragment-lost",
		StreamHeaderCorrupted: "header-corrupted",
		StreamOutcome(0):      "StreamOutcome(0)",
		StreamOutcome(42):     "StreamOutcome(42)",
		StreamOutcome(-1):     "StreamOutcome(-1)",
	}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(o), got, want)
		}
	}
}
