package coding

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// pathMetric scores a candidate information sequence against soft metrics.
func pathMetric(t *testing.T, info []byte, metrics []float64) float64 {
	t.Helper()
	coded, err := ConvEncode(info)
	if err != nil {
		t.Fatal(err)
	}
	var m float64
	for i, b := range coded {
		m += metrics[i] * float64(2*int(b)-1)
	}
	return m
}

// TestViterbiOptimalityBruteForce verifies against exhaustive search that
// the decoder returns the maximum-metric terminated path — the property
// that makes it a maximum-likelihood decoder. This is the test that would
// have caught the unterminated-pad-bits bug in the PHY.
func TestViterbiOptimalityBruteForce(t *testing.T) {
	dec := &Viterbi{Terminated: true}
	const infoBits = 10
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		steps := infoBits + TailBits
		metrics := make([]float64, 2*steps)
		for i := range metrics {
			metrics[i] = rng.NormFloat64()
			if rng.Float64() < 0.15 {
				metrics[i] = 0 // sprinkle erasures
			}
		}
		got, err := dec.Decode(metrics)
		if err != nil {
			return false
		}
		gotMetric := pathMetric(t, got, metrics)
		// Exhaustive search over all terminated information sequences.
		best := -1e300
		for v := 0; v < 1<<infoBits; v++ {
			info := make([]byte, steps)
			for i := 0; i < infoBits; i++ {
				info[i] = byte((v >> i) & 1)
			}
			if m := pathMetric(t, info, metrics); m > best {
				best = m
			}
		}
		// The decoder's tail must be zero (terminated).
		for i := infoBits; i < steps; i++ {
			if got[i] != 0 {
				return false
			}
		}
		return gotMetric >= best-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestViterbiUnterminatedOptimality checks the free-end variant against
// brute force over all end states.
func TestViterbiUnterminatedOptimality(t *testing.T) {
	dec := &Viterbi{}
	const infoBits = 12
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		metrics := make([]float64, 2*infoBits)
		for i := range metrics {
			metrics[i] = rng.NormFloat64()
		}
		got, err := dec.Decode(metrics)
		if err != nil {
			return false
		}
		gotMetric := pathMetric(t, got, metrics)
		best := -1e300
		for v := 0; v < 1<<infoBits; v++ {
			info := make([]byte, infoBits)
			for i := 0; i < infoBits; i++ {
				info[i] = byte((v >> i) & 1)
			}
			if m := pathMetric(t, info, metrics); m > best {
				best = m
			}
		}
		return gotMetric >= best-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestViterbiAllErasures decodes a fully erased block: any terminated path
// is equally likely, and the decoder must not fail.
func TestViterbiAllErasures(t *testing.T) {
	dec := &Viterbi{Terminated: true}
	metrics := make([]float64, 2*(20+TailBits))
	out, err := dec.Decode(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 20+TailBits {
		t.Fatalf("output length %d", len(out))
	}
}

// TestViterbiMetricScaleInvariance: scaling all metrics by a positive
// constant cannot change the decision.
func TestViterbiMetricScaleInvariance(t *testing.T) {
	dec := &Viterbi{Terminated: true}
	f := func(seed int64, scaleRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		scale := 0.1 + float64(scaleRaw)/8
		data := randBits(rng, 60)
		in := append(append([]byte{}, data...), make([]byte, TailBits)...)
		coded, err := ConvEncode(in)
		if err != nil {
			return false
		}
		m1 := make([]float64, len(coded))
		m2 := make([]float64, len(coded))
		for i, b := range coded {
			v := float64(2*int(b)-1) + 0.8*rng.NormFloat64()
			m1[i] = v
			m2[i] = v * scale
		}
		d1, err := dec.Decode(m1)
		if err != nil {
			return false
		}
		d2, err := dec.Decode(m2)
		if err != nil {
			return false
		}
		for i := range d1 {
			if d1[i] != d2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
