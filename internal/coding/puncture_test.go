package coding

import (
	"math/rand"
	"testing"

	"cos/internal/bits"
)

func TestCodeRateString(t *testing.T) {
	cases := map[CodeRate]string{
		Rate1_2:     "1/2",
		Rate2_3:     "2/3",
		Rate3_4:     "3/4",
		CodeRate(9): "CodeRate(9)",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(r), got, want)
		}
	}
}

func TestCodeRateFraction(t *testing.T) {
	cases := []struct {
		r        CodeRate
		num, den int
	}{{Rate1_2, 1, 2}, {Rate2_3, 2, 3}, {Rate3_4, 3, 4}}
	for _, c := range cases {
		n, d := c.r.Fraction()
		if n != c.num || d != c.den {
			t.Errorf("%v.Fraction() = %d/%d, want %d/%d", c.r, n, d, c.num, c.den)
		}
	}
}

func TestPunctureLengths(t *testing.T) {
	in := make([]byte, 24)
	for _, c := range []struct {
		r    CodeRate
		want int
	}{{Rate1_2, 24}, {Rate2_3, 18}, {Rate3_4, 16}} {
		out, err := Puncture(in, c.r)
		if err != nil {
			t.Fatalf("Puncture(%v): %v", c.r, err)
		}
		if len(out) != c.want {
			t.Errorf("Puncture(%v) length %d, want %d", c.r, len(out), c.want)
		}
		n, err := c.r.PuncturedLen(24)
		if err != nil || n != c.want {
			t.Errorf("PuncturedLen(%v,24) = %d,%v; want %d,nil", c.r, n, err, c.want)
		}
	}
}

func TestPunctureKnownPattern(t *testing.T) {
	// Mother stream A1 B1 A2 B2 A3 B3 = 1 2 3 4 5 6 (using distinct values).
	in := []byte{1, 2, 3, 4, 5, 6}
	got, err := Puncture(in, Rate3_4)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 3, 6} // A1 B1 A2 B3
	if !bits.Equal(got, want) {
		t.Errorf("3/4 puncture = %v, want %v", got, want)
	}
	got, err = Puncture(in[:4], Rate2_3)
	if err != nil {
		t.Fatal(err)
	}
	want = []byte{1, 2, 3} // A1 B1 A2
	if !bits.Equal(got, want) {
		t.Errorf("2/3 puncture = %v, want %v", got, want)
	}
}

func TestPunctureErrors(t *testing.T) {
	if _, err := Puncture(make([]byte, 5), Rate3_4); err == nil {
		t.Error("want error for non-multiple length")
	}
	if _, err := Puncture(make([]byte, 6), CodeRate(0)); err == nil {
		t.Error("want error for invalid rate")
	}
	if _, err := (CodeRate(0)).PuncturedLen(6); !CodeRate(0).Valid() && err == nil {
		t.Error("want error from PuncturedLen for odd mother length at least")
	}
}

func TestDepunctureRestoresLength(t *testing.T) {
	for _, r := range []CodeRate{Rate1_2, Rate2_3, Rate3_4} {
		mother := make([]byte, 48)
		p, err := Puncture(mother, r)
		if err != nil {
			t.Fatal(err)
		}
		m := make([]float64, len(p))
		out, err := DepunctureMetrics(m, r)
		if err != nil {
			t.Fatalf("DepunctureMetrics(%v): %v", r, err)
		}
		if len(out) != 48 {
			t.Errorf("DepunctureMetrics(%v) length %d, want 48", r, len(out))
		}
	}
}

func TestDepunctureInsertsZerosAtPuncturedPositions(t *testing.T) {
	// Metrics 1..4 for kept positions of one 3/4 period.
	in := []float64{10, 20, 30, 40}
	out, err := DepunctureMetrics(in, Rate3_4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 30, 0, 0, 40}
	if len(out) != len(want) {
		t.Fatalf("length %d, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestPuncturedRoundTripThroughViterbi(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	dec := &Viterbi{Terminated: true}
	for _, r := range []CodeRate{Rate1_2, Rate2_3, Rate3_4} {
		for trial := 0; trial < 10; trial++ {
			// Choose a data length that makes the mother output a multiple
			// of the puncture period (period 6 needs multiples of 3 input).
			data := randBits(rng, 300)
			coded := encodeWithTail(t, data)
			punct, err := Puncture(coded, r)
			if err != nil {
				t.Fatal(err)
			}
			m, _ := HardMetrics(punct, 1)
			full, err := DepunctureMetrics(m, r)
			if err != nil {
				t.Fatal(err)
			}
			got, err := dec.Decode(full)
			if err != nil {
				t.Fatal(err)
			}
			if !bits.Equal(got[:len(data)], data) {
				t.Fatalf("rate %v trial %d: punctured roundtrip failed", r, trial)
			}
		}
	}
}

func TestPuncturedCodeCorrectsErrors(t *testing.T) {
	// Even at 3/4 the code corrects isolated errors spaced beyond the
	// punctured free distance.
	rng := rand.New(rand.NewSource(22))
	dec := &Viterbi{Terminated: true}
	data := randBits(rng, 300)
	coded := encodeWithTail(t, data)
	punct, _ := Puncture(coded, Rate3_4)
	m, _ := HardMetrics(punct, 1)
	for pos := 11; pos < len(m); pos += 80 {
		m[pos] = -m[pos]
	}
	full, _ := DepunctureMetrics(m, Rate3_4)
	got, err := dec.Decode(full)
	if err != nil {
		t.Fatal(err)
	}
	if !bits.Equal(got[:len(data)], data) {
		t.Fatal("3/4 code failed to correct isolated errors")
	}
}
