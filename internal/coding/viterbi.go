package coding

import (
	"fmt"
	"math"
	"time"

	"cos/internal/obs"
)

// Decoder metrics: the EVD erasure load (zero metrics cover both silence
// erasures and punctured positions) and the end-to-end decode latency,
// traceback included.
var (
	mDecodes = obs.Default().Counter("coding_viterbi_decodes_total",
		"Viterbi decode calls.")
	mDecodedBits = obs.Default().Counter("coding_viterbi_bits_total",
		"Information bits produced by the Viterbi decoder.")
	mErasedMetrics = obs.Default().Counter("coding_viterbi_erased_metrics_total",
		"Zero (erased) input metrics seen by the decoder: silence erasures plus punctured positions.")
	mDecodeSeconds = obs.Default().Histogram("coding_viterbi_decode_seconds",
		"Viterbi decode latency including traceback.", nil)
)

// Viterbi decodes the 802.11a rate-1/2 convolutional code from soft bit
// metrics, implementing the paper's erasure Viterbi decoding (EVD).
//
// The input is one metric per mother-code bit (so len(metrics) must be even:
// A and B generator outputs alternate). Each metric is an LLR-style value:
// positive favors bit 1, negative favors bit 0, and exactly zero means the
// bit is erased (silence symbol or punctured position) and contributes
// nothing to any path — precisely Eq. (7) of the paper.
//
// The decoder maximizes sum over coded bits of metric * (2*bit - 1) with a
// full traceback over the whole block.
type Viterbi struct {
	// Terminated selects terminated-trellis decoding: the encoder is assumed
	// to have been flushed with TailBits zeros, so the survivor ending in
	// state 0 is chosen. When false, the best-metric end state is used.
	Terminated bool
}

// decision records the transition that won a trellis state at one step:
// bits 0-5 hold the predecessor state, bit 6 the input bit. Predecessor
// recovery cannot re-derive the previous state from (ns, bit) alone because
// the trellis shift drops the LSB, so it is stored explicitly.
type decision uint8

// ViterbiScratch holds the decoder's working storage — the two path-metric
// columns, the decision matrix, and the output bits — so repeated decodes
// reuse one arena. The zero value is ready to use; arrays grow on demand and
// are retained between calls. A scratch must not be shared across concurrent
// decodes, and the bits returned by DecodeInto are valid only until the next
// decode with the same scratch.
type ViterbiScratch struct {
	cur, next []float64
	decisions []decision
	out       []byte
}

// Decode returns the maximum-likelihood information bits for the given
// metrics. The returned slice has len(metrics)/2 bits, including any tail
// bits the encoder appended.
func (v *Viterbi) Decode(metrics []float64) ([]byte, error) {
	return v.DecodeInto(nil, metrics)
}

// DecodeInto is Decode using s as working storage; the returned bits alias
// s and are valid until the next decode with the same scratch. A nil s
// decodes into fresh storage, making DecodeInto(nil, m) identical to
// Decode(m).
func (v *Viterbi) DecodeInto(s *ViterbiScratch, metrics []float64) ([]byte, error) {
	if len(metrics)%2 != 0 {
		return nil, fmt.Errorf("coding: metric count %d is odd; rate-1/2 code needs pairs", len(metrics))
	}
	steps := len(metrics) / 2
	if steps == 0 {
		return nil, nil
	}
	// Metrics live in this wrapper, not in decode: values held across the
	// trellis loop (the timer, the erasure count) cost registers the hot
	// loop needs, a measured ~5% on a 1 KB decode.
	start := time.Now()
	erased := 0
	for _, m := range metrics {
		// Branchless count: erasure positions look random to the branch
		// predictor, and a mispredicting loop over ~16k metrics is
		// measurable next to the decode itself.
		inc := 0
		if m == 0 {
			inc = 1
		}
		erased += inc
	}
	out, err := v.decode(s, metrics)
	if err != nil {
		return nil, err
	}
	mDecodes.Inc()
	mDecodedBits.Add(uint64(steps))
	mErasedMetrics.Add(uint64(erased))
	mDecodeSeconds.ObserveSince(start)
	return out, nil
}

func (v *Viterbi) decode(s *ViterbiScratch, metrics []float64) ([]byte, error) {
	if s == nil {
		s = &ViterbiScratch{}
	}
	// steps is recomputed from len(metrics) rather than passed in so the
	// compiler can prove 2*t+1 < len(metrics) and drop the bounds checks
	// in the trellis loop.
	steps := len(metrics) / 2
	negInf := math.Inf(-1)
	s.cur = growFloat64(s.cur, NumStates)
	s.next = growFloat64(s.next, NumStates)
	cur, next := s.cur, s.next
	cur[0] = 0 // encoder starts in state 0
	for st := 1; st < NumStates; st++ {
		cur[st] = negInf
	}

	// decisions[t*NumStates + ns] records the input bit whose transition
	// won state ns at step t, together with the predecessor state.
	if cap(s.decisions) < steps*NumStates {
		s.decisions = make([]decision, steps*NumStates)
	}
	decisions := s.decisions[:steps*NumStates]

	for t := 0; t < steps; t++ {
		mA := metrics[2*t]
		mB := metrics[2*t+1]
		for s := range next {
			next[s] = negInf
		}
		for s := 0; s < NumStates; s++ {
			pm := cur[s]
			if math.IsInf(pm, -1) {
				continue
			}
			for b := 0; b <= 1; b++ {
				br := trellis[s][b]
				m := pm + float64(br.outA)*mA + float64(br.outB)*mB
				ns := int(br.next)
				if m > next[ns] {
					next[ns] = m
					decisions[t*NumStates+ns] = decision(uint8(s) | uint8(b)<<6)
				}
			}
		}
		cur, next = next, cur
	}

	// Pick the terminal state.
	end := 0
	if !v.Terminated {
		best := cur[0]
		for s := 1; s < NumStates; s++ {
			if cur[s] > best {
				best = cur[s]
				end = s
			}
		}
	}
	if math.IsInf(cur[end], -1) {
		return nil, fmt.Errorf("coding: no surviving path to end state %d", end)
	}

	s.out = growBytes(s.out, steps)
	out := s.out
	state := end
	for t := steps - 1; t >= 0; t-- {
		d := decisions[t*NumStates+state]
		out[t] = byte(d >> 6)
		state = int(d & 0x3F)
	}
	return out, nil
}

// HardMetrics converts hard bits into antipodal metrics of the given
// confidence (use 1.0 for unit confidence). It is a convenience for tests
// and hard-decision baselines. Erasures can be injected afterwards by
// zeroing entries.
func HardMetrics(bits []byte, confidence float64) ([]float64, error) {
	out := make([]float64, len(bits))
	for i, b := range bits {
		if b > 1 {
			return nil, fmt.Errorf("coding: element %d = %d is not a bit", i, b)
		}
		out[i] = confidence * float64(2*int(b)-1)
	}
	return out, nil
}
