package coding

import "fmt"

// Interleaver implements the 802.11a per-OFDM-symbol block interleaver
// (17.3.5.6). It is defined by two permutations over one OFDM symbol's worth
// of coded bits (NCBPS): the first spreads adjacent coded bits across
// non-adjacent subcarriers; the second alternates bits between more and less
// significant constellation positions.
//
// In CoS the deinterleaver is what spreads the zeroed bit metrics of a
// silence symbol across the codeword (Sec. III-E), preventing erasure bursts
// from overwhelming a local trellis region.
type Interleaver struct {
	ncbps int
	perm  []int // perm[k] = output position of input bit k
	inv   []int // inv[j]  = input position of output bit j
}

// NewInterleaver builds the interleaver for a symbol of ncbps coded bits
// carrying nbpsc bits per subcarrier. ncbps must be a positive multiple of
// both 16 and nbpsc.
func NewInterleaver(ncbps, nbpsc int) (*Interleaver, error) {
	if ncbps <= 0 || ncbps%16 != 0 {
		return nil, fmt.Errorf("coding: NCBPS %d must be a positive multiple of 16", ncbps)
	}
	if nbpsc <= 0 || ncbps%nbpsc != 0 {
		return nil, fmt.Errorf("coding: NBPSC %d must divide NCBPS %d", nbpsc, ncbps)
	}
	s := nbpsc / 2
	if s < 1 {
		s = 1
	}
	perm := make([]int, ncbps)
	inv := make([]int, ncbps)
	for k := 0; k < ncbps; k++ {
		i := (ncbps/16)*(k%16) + k/16
		j := s*(i/s) + (i+ncbps-16*i/ncbps)%s
		perm[k] = j
		inv[j] = k
	}
	return &Interleaver{ncbps: ncbps, perm: perm, inv: inv}, nil
}

// BlockSize returns NCBPS, the interleaving block length in bits.
func (il *Interleaver) BlockSize() int { return il.ncbps }

// Interleave permutes in (whose length must be a multiple of NCBPS) block by
// block and returns a new slice.
func Interleave[T any](il *Interleaver, in []T) ([]T, error) {
	return applyBlocks(in, il.ncbps, il.perm)
}

// Deinterleave applies the inverse permutation block by block.
func Deinterleave[T any](il *Interleaver, in []T) ([]T, error) {
	return applyBlocks(in, il.ncbps, il.inv)
}

func applyBlocks[T any](in []T, block int, perm []int) ([]T, error) {
	if len(in)%block != 0 {
		return nil, fmt.Errorf("coding: length %d is not a multiple of block size %d", len(in), block)
	}
	out := make([]T, len(in))
	for base := 0; base < len(in); base += block {
		for k, j := range perm {
			out[base+j] = in[base+k]
		}
	}
	return out, nil
}
