package coding

import "fmt"

// CodeRate identifies one of the 802.11a convolutional code rates.
type CodeRate int

// Code rates defined by 802.11a. Rates 2/3 and 3/4 are obtained from the
// mother rate-1/2 code by puncturing (17.3.5.6).
const (
	Rate1_2 CodeRate = iota + 1
	Rate2_3
	Rate3_4
)

// String returns the conventional fraction form, e.g. "1/2".
func (r CodeRate) String() string {
	switch r {
	case Rate1_2:
		return "1/2"
	case Rate2_3:
		return "2/3"
	case Rate3_4:
		return "3/4"
	default:
		return fmt.Sprintf("CodeRate(%d)", int(r))
	}
}

// Fraction returns the numerator and denominator of the code rate.
func (r CodeRate) Fraction() (num, den int) {
	switch r {
	case Rate2_3:
		return 2, 3
	case Rate3_4:
		return 3, 4
	default:
		return 1, 2
	}
}

// puncturePattern returns the keep/drop mask applied periodically over the
// A/B-interleaved rate-1/2 encoder output.
//
//	2/3: (A1 B1 A2 B2)       -> A1 B1 A2         mask 1110
//	3/4: (A1 B1 A2 B2 A3 B3) -> A1 B1 A2 B3      mask 111001
func (r CodeRate) puncturePattern() []bool {
	switch r {
	case Rate2_3:
		return []bool{true, true, true, false}
	case Rate3_4:
		return []bool{true, true, true, false, false, true}
	default:
		return []bool{true, true}
	}
}

// Valid reports whether r is one of the defined code rates.
func (r CodeRate) Valid() bool {
	return r == Rate1_2 || r == Rate2_3 || r == Rate3_4
}

// PuncturedLen returns the number of coded bits after puncturing motherLen
// rate-1/2 coded bits. motherLen must be a multiple of the pattern period.
func (r CodeRate) PuncturedLen(motherLen int) (int, error) {
	if !r.Valid() {
		return 0, fmt.Errorf("coding: invalid code rate %d", int(r))
	}
	pat := r.puncturePattern()
	if motherLen%len(pat) != 0 {
		return 0, fmt.Errorf("coding: mother-code length %d is not a multiple of puncture period %d", motherLen, len(pat))
	}
	kept := 0
	for _, k := range pat {
		if k {
			kept++
		}
	}
	return motherLen / len(pat) * kept, nil
}

// Puncture drops coded bits from the rate-1/2 stream according to the rate's
// pattern. len(in) must be a multiple of the pattern period (the PHY pads
// data so this always holds).
func Puncture(in []byte, r CodeRate) ([]byte, error) {
	if !r.Valid() {
		return nil, fmt.Errorf("coding: invalid code rate %d", int(r))
	}
	pat := r.puncturePattern()
	if len(in)%len(pat) != 0 {
		return nil, fmt.Errorf("coding: input length %d is not a multiple of puncture period %d", len(in), len(pat))
	}
	if r == Rate1_2 {
		out := make([]byte, len(in))
		copy(out, in)
		return out, nil
	}
	out := make([]byte, 0, len(in)*2/3)
	for i, b := range in {
		if pat[i%len(pat)] {
			out = append(out, b)
		}
	}
	return out, nil
}

// DepunctureMetrics reinserts zero (erasure) metrics at punctured positions,
// restoring the mother-code length. A zero metric carries no information, so
// the Viterbi decoder treats punctured bits exactly like erased bits.
func DepunctureMetrics(in []float64, r CodeRate) ([]float64, error) {
	if !r.Valid() {
		return nil, fmt.Errorf("coding: invalid code rate %d", int(r))
	}
	pat := r.puncturePattern()
	kept := 0
	for _, k := range pat {
		if k {
			kept++
		}
	}
	if len(in)%kept != 0 {
		return nil, fmt.Errorf("coding: punctured length %d is not a multiple of %d", len(in), kept)
	}
	out := make([]float64, 0, len(in)*len(pat)/kept)
	src := 0
	for len(out) < len(in)*len(pat)/kept {
		for _, k := range pat {
			if k {
				out = append(out, in[src])
				src++
			} else {
				out = append(out, 0)
			}
		}
	}
	return out, nil
}
