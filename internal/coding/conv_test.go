package coding

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cos/internal/bits"
)

func TestConvEncodeKnownVector(t *testing.T) {
	// Hand-computed from the 133/171 generators starting in state 0.
	got, err := ConvEncode([]byte{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 1, 0, 1, 0, 0}
	if !bits.Equal(got, want) {
		t.Errorf("ConvEncode([1 0 1]) = %v, want %v", got, want)
	}
}

func TestConvEncodeZeroInput(t *testing.T) {
	got, err := ConvEncode(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("all-zero input produced nonzero coded bit at %d", i)
		}
	}
}

func TestConvEncodeRejectsNonBits(t *testing.T) {
	if _, err := ConvEncode([]byte{0, 1, 2}); err == nil {
		t.Error("want error for non-bit input")
	}
}

func TestConvEncodeLinearity(t *testing.T) {
	// Convolutional codes are linear: enc(a XOR b) == enc(a) XOR enc(b).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32 + rng.Intn(64)
		a := randBits(rng, n)
		b := randBits(rng, n)
		x := make([]byte, n)
		for i := range x {
			x[i] = a[i] ^ b[i]
		}
		ea, _ := ConvEncode(a)
		eb, _ := ConvEncode(b)
		ex, _ := ConvEncode(x)
		for i := range ex {
			if ex[i] != ea[i]^eb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func randBits(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(2))
	}
	return out
}

// encodeWithTail encodes data plus the 6 flush bits.
func encodeWithTail(t *testing.T, data []byte) []byte {
	t.Helper()
	in := make([]byte, 0, len(data)+TailBits)
	in = append(in, data...)
	in = append(in, make([]byte, TailBits)...)
	coded, err := ConvEncode(in)
	if err != nil {
		t.Fatal(err)
	}
	return coded
}

func TestViterbiNoiselessRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dec := &Viterbi{Terminated: true}
	for trial := 0; trial < 20; trial++ {
		data := randBits(rng, 24+rng.Intn(200))
		coded := encodeWithTail(t, data)
		m, err := HardMetrics(coded, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(m)
		if err != nil {
			t.Fatal(err)
		}
		if !bits.Equal(got[:len(data)], data) {
			t.Fatalf("trial %d: decode mismatch", trial)
		}
	}
}

func TestViterbiUnterminatedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	dec := &Viterbi{Terminated: false}
	data := randBits(rng, 120)
	coded, err := ConvEncode(data)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := HardMetrics(coded, 1)
	got, err := dec.Decode(m)
	if err != nil {
		t.Fatal(err)
	}
	// Without termination the tail of the block is unreliable; check the
	// prefix only.
	if !bits.Equal(got[:100], data[:100]) {
		t.Fatal("unterminated decode mismatch in reliable prefix")
	}
}

func TestViterbiCorrectsScatteredErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dec := &Viterbi{Terminated: true}
	data := randBits(rng, 400)
	coded := encodeWithTail(t, data)
	m, _ := HardMetrics(coded, 1)
	// Flip well-separated coded bits: the free distance is 10, so isolated
	// single errors spaced far apart are always correctable.
	for pos := 7; pos < len(m); pos += 40 {
		m[pos] = -m[pos]
	}
	got, err := dec.Decode(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bits.Equal(got[:len(data)], data) {
		t.Fatal("Viterbi failed to correct scattered single errors")
	}
}

func TestViterbiCorrectsScatteredErasures(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	dec := &Viterbi{Terminated: true}
	data := randBits(rng, 400)
	coded := encodeWithTail(t, data)
	m, _ := HardMetrics(coded, 1)
	// Erase 20% of coded bits at random: a rate-1/2 code with d_free = 10
	// handles scattered erasures at this density essentially always.
	for i := range m {
		if rng.Float64() < 0.20 {
			m[i] = 0
		}
	}
	got, err := dec.Decode(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bits.Equal(got[:len(data)], data) {
		t.Fatal("Viterbi failed under 20% scattered erasures")
	}
}

func TestErasuresPreferableToErrors(t *testing.T) {
	// Geist & Cain: an erasure consumes roughly half the correction budget
	// of an error. Compare decode success under p fraction erasures vs p
	// fraction hard errors at a density where errors start to fail.
	rng := rand.New(rand.NewSource(15))
	dec := &Viterbi{Terminated: true}
	const trials = 60
	const p = 0.11
	erasureOK, errorOK := 0, 0
	for trial := 0; trial < trials; trial++ {
		data := randBits(rng, 300)
		coded := encodeWithTail(t, data)

		mE, _ := HardMetrics(coded, 1)
		mX, _ := HardMetrics(coded, 1)
		for i := range mE {
			if rng.Float64() < p {
				mE[i] = 0
			}
			if rng.Float64() < p {
				mX[i] = -mX[i]
			}
		}
		if got, err := dec.Decode(mE); err == nil && bits.Equal(got[:len(data)], data) {
			erasureOK++
		}
		if got, err := dec.Decode(mX); err == nil && bits.Equal(got[:len(data)], data) {
			errorOK++
		}
	}
	if erasureOK <= errorOK {
		t.Errorf("erasures should beat errors: erasure successes %d, error successes %d", erasureOK, errorOK)
	}
	if erasureOK < trials*9/10 {
		t.Errorf("erasure decoding succeeded only %d/%d times", erasureOK, trials)
	}
}

func TestViterbiOddMetricsRejected(t *testing.T) {
	dec := &Viterbi{}
	if _, err := dec.Decode(make([]float64, 3)); err == nil {
		t.Error("want error for odd metric count")
	}
}

func TestViterbiEmptyInput(t *testing.T) {
	dec := &Viterbi{}
	got, err := dec.Decode(nil)
	if err != nil || got != nil {
		t.Errorf("Decode(nil) = %v, %v; want nil, nil", got, err)
	}
}

func TestHardMetricsRejectsNonBits(t *testing.T) {
	if _, err := HardMetrics([]byte{3}, 1); err == nil {
		t.Error("want error for non-bit input")
	}
}

func TestViterbiSoftBeatsHardUnderNoise(t *testing.T) {
	// Soft metrics carrying reliability should decode at least as well as
	// quantized hard decisions from the same noisy observations.
	rng := rand.New(rand.NewSource(16))
	dec := &Viterbi{Terminated: true}
	const sigma = 0.95
	softErrs, hardErrs := 0, 0
	for trial := 0; trial < 30; trial++ {
		data := randBits(rng, 200)
		coded := encodeWithTail(t, data)
		soft := make([]float64, len(coded))
		hard := make([]float64, len(coded))
		for i, b := range coded {
			x := float64(2*int(b)-1) + sigma*rng.NormFloat64()
			soft[i] = x
			if x >= 0 {
				hard[i] = 1
			} else {
				hard[i] = -1
			}
		}
		if got, err := dec.Decode(soft); err != nil {
			t.Fatal(err)
		} else {
			softErrs += bits.Diff(got[:len(data)], data)
		}
		if got, err := dec.Decode(hard); err != nil {
			t.Fatal(err)
		} else {
			hardErrs += bits.Diff(got[:len(data)], data)
		}
	}
	if softErrs > hardErrs {
		t.Errorf("soft decoding (%d bit errors) should not lose to hard decoding (%d)", softErrs, hardErrs)
	}
}
