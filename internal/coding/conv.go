// Package coding implements the 802.11a channel-coding chain: the K=7
// rate-1/2 convolutional encoder (generators 133/171 octal), the 2/3 and 3/4
// puncturing patterns, the two-permutation block interleaver, and a
// soft-decision Viterbi decoder with erasure support.
//
// The erasure support is the paper's EVD (erasure Viterbi decoding, Sec.
// III-E): bit metrics belonging to erased symbols are forced to zero before
// decoding, so they contribute nothing to any path metric. The trellis and
// traceback are the standard Viterbi algorithm, unchanged.
package coding

import (
	"fmt"
	"math/bits"
)

// Convolutional code parameters fixed by IEEE 802.11a (17.3.5.5).
const (
	// ConstraintLength is the K=7 constraint length.
	ConstraintLength = 7
	// NumStates is the number of trellis states (2^(K-1)).
	NumStates = 1 << (ConstraintLength - 1)
	// GeneratorA is the first generator polynomial, 133 octal, with the MSB
	// weighting the current input bit.
	GeneratorA = 0o133
	// GeneratorB is the second generator polynomial, 171 octal.
	GeneratorB = 0o171
	// TailBits is the number of zero bits appended to flush the encoder.
	TailBits = ConstraintLength - 1
)

func parity(x uint) byte {
	return byte(bits.OnesCount(x) & 1)
}

// ConvEncode encodes a bit slice with the 802.11a rate-1/2 convolutional
// code. The output interleaves the two generator streams as A0 B0 A1 B1 ...
// and has exactly 2*len(in) bits. The encoder starts in the all-zero state;
// callers wanting a terminated trellis must append TailBits zero bits to in
// (the PHY layer does this as part of padding).
func ConvEncode(in []byte) ([]byte, error) {
	out := make([]byte, 0, 2*len(in))
	state := uint(0) // 6 most recent input bits; bit 5 is the newest.
	for i, b := range in {
		if b > 1 {
			return nil, fmt.Errorf("coding: input element %d = %d is not a bit", i, b)
		}
		window := uint(b)<<6 | state
		out = append(out, parity(window&GeneratorA), parity(window&GeneratorB))
		state = window >> 1
	}
	return out, nil
}

// branch describes one trellis transition used by the Viterbi decoder.
type branch struct {
	next uint8 // next state
	outA int8  // +1/-1 antipodal form of generator-A output
	outB int8  // +1/-1 antipodal form of generator-B output
}

// trellis holds the two outgoing branches (input bit 0 and 1) per state.
// It is computed once at package init; the code is fixed by the standard.
var trellis [NumStates][2]branch

func init() {
	for s := 0; s < NumStates; s++ {
		for b := uint(0); b <= 1; b++ {
			window := b<<6 | uint(s)
			a := parity(window & GeneratorA)
			bb := parity(window & GeneratorB)
			trellis[s][b] = branch{
				next: uint8(window >> 1),
				outA: int8(2*int(a) - 1),
				outB: int8(2*int(bb) - 1),
			}
		}
	}
}
