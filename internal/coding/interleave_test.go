package coding

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cos/internal/bits"
)

// the four (NCBPS, NBPSC) pairs used by 802.11a.
var interleaverModes = []struct {
	ncbps, nbpsc int
}{
	{48, 1},  // BPSK
	{96, 2},  // QPSK
	{192, 4}, // 16QAM
	{288, 6}, // 64QAM
}

func TestInterleaverIsBijection(t *testing.T) {
	for _, m := range interleaverModes {
		il, err := NewInterleaver(m.ncbps, m.nbpsc)
		if err != nil {
			t.Fatalf("NewInterleaver(%d,%d): %v", m.ncbps, m.nbpsc, err)
		}
		seen := make([]bool, m.ncbps)
		for _, j := range il.perm {
			if j < 0 || j >= m.ncbps || seen[j] {
				t.Fatalf("mode %+v: permutation is not a bijection", m)
			}
			seen[j] = true
		}
	}
}

func TestDeinterleaveInvertsInterleave(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, m := range interleaverModes {
		il, err := NewInterleaver(m.ncbps, m.nbpsc)
		if err != nil {
			t.Fatal(err)
		}
		// Multiple blocks at once.
		in := randBits(rng, 3*m.ncbps)
		mid, err := Interleave(il, in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Deinterleave(il, mid)
		if err != nil {
			t.Fatal(err)
		}
		if !bits.Equal(out, in) {
			t.Errorf("mode %+v: deinterleave(interleave(x)) != x", m)
		}
	}
}

func TestInterleaverKnownFirstMapping(t *testing.T) {
	// For BPSK (NCBPS=48, s=1): j == i == 3*(k mod 16) + k/16.
	il, err := NewInterleaver(48, 1)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 48; k++ {
		want := 3*(k%16) + k/16
		if il.perm[k] != want {
			t.Errorf("BPSK perm[%d] = %d, want %d", k, il.perm[k], want)
		}
	}
}

func TestInterleaverSpreadsAdjacentBits(t *testing.T) {
	// The point of the interleaver: adjacent coded bits land on distant
	// positions (different subcarriers). Verify minimum output distance of
	// adjacent inputs is at least NCBPS/16 - nbpsc for each mode.
	for _, m := range interleaverModes {
		il, _ := NewInterleaver(m.ncbps, m.nbpsc)
		minDist := m.ncbps
		for k := 0; k+1 < m.ncbps; k++ {
			d := il.perm[k+1] - il.perm[k]
			if d < 0 {
				d = -d
			}
			if d < minDist {
				minDist = d
			}
		}
		if minDist < m.ncbps/16-m.nbpsc {
			t.Errorf("mode %+v: adjacent coded bits only %d apart", m, minDist)
		}
	}
}

func TestInterleaveGenericOverFloats(t *testing.T) {
	il, err := NewInterleaver(48, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 48)
	for i := range in {
		in[i] = float64(i)
	}
	mid, err := Interleave(il, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Deinterleave(il, mid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != in[i] {
			t.Fatalf("float roundtrip failed at %d", i)
		}
	}
}

func TestInterleaverRejectsBadParameters(t *testing.T) {
	cases := []struct{ ncbps, nbpsc int }{
		{0, 1}, {47, 1}, {48, 0}, {48, 5}, {-16, 2},
	}
	for _, c := range cases {
		if _, err := NewInterleaver(c.ncbps, c.nbpsc); err == nil {
			t.Errorf("NewInterleaver(%d,%d): want error", c.ncbps, c.nbpsc)
		}
	}
}

func TestInterleaveRejectsBadLength(t *testing.T) {
	il, _ := NewInterleaver(48, 1)
	if _, err := Interleave(il, make([]byte, 47)); err == nil {
		t.Error("want error for non-multiple length")
	}
	if _, err := Deinterleave(il, make([]byte, 49)); err == nil {
		t.Error("want error for non-multiple length")
	}
}

func TestInterleaverPropertyRandomModes(t *testing.T) {
	f := func(blockIdx uint8, seed int64) bool {
		m := interleaverModes[int(blockIdx)%len(interleaverModes)]
		il, err := NewInterleaver(m.ncbps, m.nbpsc)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		in := randBits(rng, m.ncbps)
		mid, err := Interleave(il, in)
		if err != nil {
			return false
		}
		out, err := Deinterleave(il, mid)
		if err != nil {
			return false
		}
		return bits.Equal(out, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
