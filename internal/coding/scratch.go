package coding

import (
	"fmt"
	"sync"
)

// Scratch-reuse variants of the coding chain. Each XxxInto function writes
// into a caller-owned destination slice, growing it only when its capacity is
// insufficient, and returns the (possibly re-sliced) destination. The
// destination must not alias the input. All functions compute exactly what
// their allocating counterparts do.

func growBytes(s []byte, n int) []byte {
	if cap(s) < n {
		return make([]byte, n)
	}
	return s[:n]
}

func growFloat64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// interleaverCache shares Interleaver instances per (NCBPS, NBPSC) pair.
// The permutation tables are read-only after construction, so one instance
// can serve any number of goroutines.
var interleaverCache struct {
	mu sync.RWMutex
	m  map[[2]int]*Interleaver
}

// CachedInterleaver returns a shared, immutable Interleaver for the given
// parameters, building it at most once per process. The eight 802.11a modes
// use only four distinct NCBPS values, so the cache stays tiny.
func CachedInterleaver(ncbps, nbpsc int) (*Interleaver, error) {
	key := [2]int{ncbps, nbpsc}
	interleaverCache.mu.RLock()
	il := interleaverCache.m[key]
	interleaverCache.mu.RUnlock()
	if il != nil {
		return il, nil
	}
	il, err := NewInterleaver(ncbps, nbpsc)
	if err != nil {
		return nil, err
	}
	interleaverCache.mu.Lock()
	if interleaverCache.m == nil {
		interleaverCache.m = make(map[[2]int]*Interleaver)
	}
	if existing := interleaverCache.m[key]; existing != nil {
		il = existing
	} else {
		interleaverCache.m[key] = il
	}
	interleaverCache.mu.Unlock()
	return il, nil
}

// InterleaveInto is Interleave writing into dst.
func InterleaveInto[T any](il *Interleaver, dst, in []T) ([]T, error) {
	return applyBlocksInto(dst, in, il.ncbps, il.perm)
}

// DeinterleaveInto is Deinterleave writing into dst.
func DeinterleaveInto[T any](il *Interleaver, dst, in []T) ([]T, error) {
	return applyBlocksInto(dst, in, il.ncbps, il.inv)
}

func applyBlocksInto[T any](dst, in []T, block int, perm []int) ([]T, error) {
	if len(in)%block != 0 {
		return nil, fmt.Errorf("coding: length %d is not a multiple of block size %d", len(in), block)
	}
	if cap(dst) < len(in) {
		dst = make([]T, len(in))
	}
	dst = dst[:len(in)]
	for base := 0; base < len(in); base += block {
		for k, j := range perm {
			dst[base+j] = in[base+k]
		}
	}
	return dst, nil
}

// ConvEncodeInto is ConvEncode writing into dst.
func ConvEncodeInto(dst, in []byte) ([]byte, error) {
	dst = growBytes(dst, 2*len(in))
	state := uint(0)
	for i, b := range in {
		if b > 1 {
			return nil, fmt.Errorf("coding: input element %d = %d is not a bit", i, b)
		}
		window := uint(b)<<6 | state
		dst[2*i] = parity(window & GeneratorA)
		dst[2*i+1] = parity(window & GeneratorB)
		state = window >> 1
	}
	return dst, nil
}

// PunctureInto is Puncture writing into dst.
func PunctureInto(dst, in []byte, r CodeRate) ([]byte, error) {
	if !r.Valid() {
		return nil, fmt.Errorf("coding: invalid code rate %d", int(r))
	}
	pat := r.puncturePattern()
	if len(in)%len(pat) != 0 {
		return nil, fmt.Errorf("coding: input length %d is not a multiple of puncture period %d", len(in), len(pat))
	}
	if r == Rate1_2 {
		dst = growBytes(dst, len(in))
		copy(dst, in)
		return dst, nil
	}
	kept := 0
	for _, k := range pat {
		if k {
			kept++
		}
	}
	n := len(in) / len(pat) * kept
	dst = growBytes(dst, n)
	w := 0
	for i, b := range in {
		if pat[i%len(pat)] {
			dst[w] = b
			w++
		}
	}
	return dst, nil
}

// DepunctureMetricsInto is DepunctureMetrics writing into dst.
func DepunctureMetricsInto(dst, in []float64, r CodeRate) ([]float64, error) {
	if !r.Valid() {
		return nil, fmt.Errorf("coding: invalid code rate %d", int(r))
	}
	pat := r.puncturePattern()
	kept := 0
	for _, k := range pat {
		if k {
			kept++
		}
	}
	if len(in)%kept != 0 {
		return nil, fmt.Errorf("coding: punctured length %d is not a multiple of %d", len(in), kept)
	}
	n := len(in) * len(pat) / kept
	dst = growFloat64(dst, n)
	src, w := 0, 0
	for w < n {
		for _, k := range pat {
			if k {
				dst[w] = in[src]
				src++
			} else {
				dst[w] = 0
			}
			w++
		}
	}
	return dst, nil
}
