package pool

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestForEachDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 64
	run := func(workers int) []float64 {
		out := make([]float64, n)
		err := ForEach(context.Background(), workers, n, 7, func(i int, rng *rand.Rand) error {
			// A few draws so stream identity, not just the seed, matters.
			v := 0.0
			for k := 0; k < 5; k++ {
				v += rng.NormFloat64()
			}
			out[i] = v
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, w := range []int{2, 4, 16, 0} {
		got := run(w)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: slot %d = %v, want %v (not bit-identical to serial)", w, i, got[i], serial[i])
			}
		}
	}
}

func TestForEachTaskSeedDerivation(t *testing.T) {
	if TaskSeed(5, 0) != 5 {
		t.Errorf("TaskSeed(5,0) = %d", TaskSeed(5, 0))
	}
	if TaskSeed(5, 3) != 5^3 {
		t.Errorf("TaskSeed(5,3) = %d", TaskSeed(5, 3))
	}
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		s := TaskSeed(1, i)
		if seen[s] {
			t.Fatalf("duplicate task seed %d at index %d", s, i)
		}
		seen[s] = true
	}
}

func TestForEachPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	for _, w := range []int{1, 4} {
		err := ForEach(context.Background(), w, 32, 1, func(i int, rng *rand.Rand) error {
			if i == 9 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: err = %v, want boom", w, err)
		}
	}
}

func TestForEachCancellation(t *testing.T) {
	for _, w := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		started := make(chan struct{}, 1)
		done := make(chan error, 1)
		go func() {
			done <- ForEach(ctx, w, 1_000_000, 1, func(i int, rng *rand.Rand) error {
				select {
				case started <- struct{}{}:
				default:
				}
				return nil
			})
		}()
		<-started
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("workers=%d: err = %v, want context.Canceled", w, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("workers=%d: ForEach did not return after cancellation", w)
		}
	}
}

func TestForEachPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForEach(ctx, 4, 10, 1, func(i int, rng *rand.Rand) error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("task ran under a pre-cancelled context")
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, 1, nil); err != nil {
		t.Errorf("n=0: %v", err)
	}
}

func TestWorkersClamp(t *testing.T) {
	if got := Workers(8, 3); got != 3 {
		t.Errorf("Workers(8,3) = %d", got)
	}
	if got := Workers(0, 100); got < 1 {
		t.Errorf("Workers(0,100) = %d", got)
	}
	if got := Workers(-1, 100); got < 1 {
		t.Errorf("Workers(-1,100) = %d", got)
	}
}
