// Package pool is the deterministic parallel execution engine behind the
// experiment sweeps: it runs N independent point-tasks across a bounded set
// of worker goroutines while guaranteeing that the results are bit-identical
// to a serial run.
//
// Determinism rests on two rules. First, task i never shares a random
// stream with any other task: it receives a private *rand.Rand seeded
// seed^i (the per-task seed derivation DESIGN.md documents), so the noise,
// payload, and placement draws a task makes are a pure function of
// (seed, i) regardless of which worker executes it or in what order.
// Second, tasks communicate results only through caller-owned, per-index
// slots (each closure writes results for its own index), so assembly order
// is the index order, not the completion order. Under those two rules
// ForEach with 1 worker and ForEach with GOMAXPROCS workers produce the
// same bytes.
//
// Cancellation is cooperative: the pool checks the context between tasks
// and long-running task bodies are expected to poll ctx themselves (the
// experiment runners check once per simulated packet).
package pool

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// TaskSeed derives the RNG seed for task index i from the sweep seed: the
// XOR scheme keeps every task's stream independent of worker scheduling
// while remaining trivially reproducible by hand.
func TaskSeed(seed int64, i int) int64 { return seed ^ int64(i) }

// TaskRNG returns task i's private random stream.
func TaskRNG(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(TaskSeed(seed, i)))
}

// Workers normalizes a worker-count request: values <= 0 select
// runtime.GOMAXPROCS(0), and the result is clamped to n so a small sweep
// never spawns idle goroutines.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(i, rng) for every i in [0, n) across at most `workers`
// goroutines (workers <= 0 selects GOMAXPROCS) and returns the error of the
// lowest-indexed failing task, or ctx.Err() if the context was cancelled
// first. fn receives task i's private RNG (seeded TaskSeed(seed, i)) and
// must write its result only into caller-owned state for index i; under
// that contract the output is bit-identical for every worker count.
//
// On failure or cancellation in-flight tasks finish their current body
// (cooperatively polling ctx) but no new tasks start.
func ForEach(ctx context.Context, workers, n int, seed int64, fn func(i int, rng *rand.Rand) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers, n)
	if workers == 1 {
		// Serial fast path: no goroutines, same per-task seeding.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i, TaskRNG(seed, i)); err != nil {
				return err
			}
		}
		return nil
	}

	// Parallel path: a shared atomic cursor hands out indices; the first
	// failure (lowest index wins, to match the serial path) cancels the
	// remaining tasks.
	inner, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstErr error
		firstIdx int
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := inner.Err(); err != nil {
					return
				}
				if err := fn(i, TaskRNG(seed, i)); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// The caller's cancellation outranks any error a dying task reported.
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}
