package fleet

// Journal event types emitted by the Coordinator. They ride the same
// obs/event.Journal as the server-side job_* events, so cos-top and the
// /events stream see dispatch decisions interleaved with job lifecycle.
const (
	// EventFleetDispatch: a worker handed a task to its backend (one per
	// attempt, so retries show up as dispatch/retry pairs).
	EventFleetDispatch = "fleet_dispatch"
	// EventFleetRetry: a transient failure; the worker sleeps DelayMS and
	// tries the same backend again.
	EventFleetRetry = "fleet_retry"
	// EventFleetFailover: a backend exhausted its retries on a task; the
	// task went back on the queue for another backend.
	EventFleetFailover = "fleet_failover"
	// EventBackendUp: a backend entered (or re-entered) dispatch rotation.
	EventBackendUp = "backend_up"
	// EventBackendDown: a health probe failed after a failover; the worker
	// stops dispatching and reprobes until the backend recovers.
	EventBackendDown = "backend_down"
)

// DispatchEvent is the payload of EventFleetDispatch.
type DispatchEvent struct {
	Backend string `json:"backend"`
	Task    int    `json:"task"`
	Digest  string `json:"digest"`
	// Attempt counts dispatches of this task to this backend (0 = first).
	Attempt int `json:"attempt"`
}

// RetryEvent is the payload of EventFleetRetry.
type RetryEvent struct {
	Backend string  `json:"backend"`
	Task    int     `json:"task"`
	Digest  string  `json:"digest"`
	Attempt int     `json:"attempt"`
	DelayMS float64 `json:"delay_ms"`
	Error   string  `json:"error"`
}

// FailoverEvent is the payload of EventFleetFailover.
type FailoverEvent struct {
	Backend string `json:"backend"`
	Task    int    `json:"task"`
	Digest  string `json:"digest"`
	// Hops counts backends that have given up on this task so far.
	Hops  int    `json:"hops"`
	Error string `json:"error"`
}

// BackendEvent is the payload of EventBackendUp and EventBackendDown.
type BackendEvent struct {
	Backend string `json:"backend"`
	// Error is the probe failure that took the backend down; empty on up.
	Error string `json:"error,omitempty"`
}
