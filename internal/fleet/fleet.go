package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"cos/internal/experiments"
	"cos/internal/obs/event"
	"cos/internal/pool"
	"cos/internal/serve"
	"cos/internal/serve/client"
)

// Config parameterizes a Coordinator. The zero value plus at least one
// backend is usable.
type Config struct {
	// Backends is the initial host set; AddBackend grows it at runtime.
	Backends []Backend
	// Journal receives fleet_* and backend_* events (nil disables).
	Journal *event.Journal
	// RetryAttempts is how many transient failures a worker absorbs on one
	// backend (sleeping a backoff between them) before failing the task
	// over to the queue. 0 selects 2; negative disables retry (fail over on
	// the first transient error).
	RetryAttempts int
	// MaxHops caps how many backends may give up on a task before the task
	// fails outright — the brake on a spec that every host rejects
	// transiently forever. 0 selects 8.
	MaxHops int
	// Backoff is the retry-delay template. Its Rand is ignored: each worker
	// gets a private copy with a source derived from Seed and the worker
	// index, so delay sequences are reproducible and race-free.
	Backoff client.Backoff
	// Seed feeds the per-worker jitter sources (0 selects 1). It has no
	// effect on results — only on retry timing.
	Seed int64
	// HealthEvery is the reprobe cadence for a backend that failed its
	// post-failover health check (0 selects 100ms).
	HealthEvery time.Duration
}

// task is the internal unit of fleet work: one spec, one slot in the
// submission order.
type task struct {
	spec   serve.Spec
	digest string
	index  int
	ctx    context.Context
	// hops counts backends that exhausted their retries on this task;
	// guarded by the coordinator mutex while queued, owned by one worker
	// while running.
	hops int

	once sync.Once
	done chan struct{}
	body []byte
	err  error
}

func (t *task) finish(body []byte, err error) {
	t.once.Do(func() {
		t.body, t.err = body, err
		close(t.done)
	})
}

// Task is the caller's handle on a submitted spec.
type Task struct{ t *task }

// Wait blocks until the task settles or ctx expires, returning the job's
// NDJSON result body.
func (tk *Task) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-tk.t.done:
		return tk.t.body, tk.t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Coordinator fans specs out across backends. One goroutine per backend
// pulls from a shared queue (lowest submission index first, so failover
// re-queues jump ahead of later work instead of starving the assembly),
// runs the spec with bounded retry, and either settles the task or puts it
// back for another backend. Results are handed back strictly by submission
// index, never by completion order.
type Coordinator struct {
	cfg      Config
	journal  *event.Journal
	closedCh chan struct{}

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []*task
	closed    bool
	nextIndex int
	nworkers  int
	wg        sync.WaitGroup
}

// New starts a Coordinator over cfg.Backends. Callers must Close it.
func New(cfg Config) *Coordinator {
	if cfg.RetryAttempts == 0 {
		cfg.RetryAttempts = 2
	}
	if cfg.RetryAttempts < 0 {
		cfg.RetryAttempts = 0
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.HealthEvery <= 0 {
		cfg.HealthEvery = 100 * time.Millisecond
	}
	c := &Coordinator{cfg: cfg, journal: cfg.Journal, closedCh: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	for _, b := range cfg.Backends {
		c.AddBackend(b)
	}
	return c
}

func (c *Coordinator) emit(typ string, payload any) {
	if c.journal != nil {
		c.journal.Append(typ, "", payload)
	}
}

// AddBackend brings a backend into dispatch rotation mid-run. Safe to call
// concurrently with Submit/Run; a no-op after Close.
func (c *Coordinator) AddBackend(b Backend) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	seq := c.nworkers
	c.nworkers++
	c.wg.Add(1)
	c.mu.Unlock()
	c.emit(EventBackendUp, BackendEvent{Backend: b.Name()})
	go c.loop(b, seq)
}

// Submit validates spec locally, queues it, and returns its handle.
// Tasks settle in any order but Run assembles strictly by index.
func (c *Coordinator) Submit(ctx context.Context, spec serve.Spec) (*Task, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	t := &task{spec: spec, digest: spec.Digest(), ctx: ctx, done: make(chan struct{})}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	t.index = c.nextIndex
	c.nextIndex++
	c.queue = append(c.queue, t)
	c.mu.Unlock()
	c.cond.Signal()
	return &Task{t: t}, nil
}

// Run submits every spec and assembles the bodies in spec order: bodies[i]
// is exactly what a single serve instance would stream for specs[i], no
// matter which backend ran it. On failure it reports the lowest-index
// task's error (the pool rule) and cancels the rest.
func (c *Coordinator) Run(ctx context.Context, specs []serve.Spec) ([][]byte, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	tasks := make([]*Task, len(specs))
	for i, sp := range specs {
		t, err := c.Submit(runCtx, sp)
		if err != nil {
			return nil, fmt.Errorf("fleet: task %d: %w", i, err)
		}
		tasks[i] = t
	}
	bodies := make([][]byte, len(specs))
	var firstErr error
	for i, t := range tasks {
		body, err := t.Wait(runCtx)
		if err != nil && firstErr == nil {
			// Waiting in index order means the first error seen is the
			// lowest-index failure; cancel the stragglers.
			firstErr = fmt.Errorf("fleet: task %d: %w", i, err)
			cancel()
		}
		bodies[i] = body
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return bodies, nil
}

// Close stops the workers. Queued tasks fail with ErrClosed; tasks already
// dispatched run to completion first.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	pending := c.queue
	c.queue = nil
	c.mu.Unlock()
	close(c.closedCh)
	c.cond.Broadcast()
	for _, t := range pending {
		t.finish(nil, ErrClosed)
	}
	c.wg.Wait()
}

// pop blocks for the lowest-index queued task; nil means the coordinator
// closed.
func (c *Coordinator) pop() *task {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.queue) == 0 && !c.closed {
		c.cond.Wait()
	}
	if len(c.queue) == 0 {
		return nil
	}
	best := 0
	for i, t := range c.queue {
		if t.index < c.queue[best].index {
			best = i
		}
	}
	t := c.queue[best]
	c.queue = append(c.queue[:best], c.queue[best+1:]...)
	return t
}

// requeue puts a failed-over task back for another worker.
func (c *Coordinator) requeue(t *task) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		t.finish(nil, ErrClosed)
		return
	}
	c.queue = append(c.queue, t)
	c.mu.Unlock()
	c.cond.Signal()
}

// sleep waits d, cut short by the task context or coordinator close.
func (c *Coordinator) sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	case <-c.closedCh:
		return false
	}
}

// loop is one backend's worker: pull, run with retry, settle or fail over.
func (c *Coordinator) loop(b Backend, seq int) {
	defer c.wg.Done()
	bo := c.cfg.Backoff
	bo.Rand = rand.New(rand.NewSource(pool.TaskSeed(c.cfg.Seed, seq)))
	for {
		t := c.pop()
		if t == nil {
			return
		}
		c.runTask(b, &bo, t)
	}
}

// runTask drives one task on one backend through the retry budget. On a
// transient failure past the budget the task is re-queued (failover) and
// the backend is health-checked: while unhealthy the worker stands down,
// reprobing instead of pulling work — health-gated dispatch.
func (c *Coordinator) runTask(b Backend, bo *client.Backoff, t *task) {
	name := b.Name()
	for attempt := 0; ; attempt++ {
		if err := t.ctx.Err(); err != nil {
			t.finish(nil, err)
			return
		}
		c.emit(EventFleetDispatch, DispatchEvent{Backend: name, Task: t.index, Digest: t.digest, Attempt: attempt})
		body, err := b.Run(t.ctx, t.spec)
		if err == nil {
			t.finish(body, nil)
			return
		}
		if ctxErr := t.ctx.Err(); ctxErr != nil {
			t.finish(nil, ctxErr)
			return
		}
		if !Transient(err) {
			t.finish(nil, err)
			return
		}
		if attempt < c.cfg.RetryAttempts {
			d := bo.Delay(attempt+1, client.RetryAfterHint(err))
			c.emit(EventFleetRetry, RetryEvent{
				Backend: name, Task: t.index, Digest: t.digest,
				Attempt: attempt + 1, DelayMS: float64(d) / float64(time.Millisecond),
				Error: err.Error(),
			})
			if !c.sleep(t.ctx, d) {
				if ctxErr := t.ctx.Err(); ctxErr != nil {
					t.finish(nil, ctxErr)
				} else {
					t.finish(nil, ErrClosed)
				}
				return
			}
			continue
		}
		t.hops++
		if t.hops >= c.cfg.MaxHops {
			t.finish(nil, fmt.Errorf("fleet: task %d gave up after %d backends, last from %s: %w", t.index, t.hops, name, err))
			return
		}
		c.emit(EventFleetFailover, FailoverEvent{Backend: name, Task: t.index, Digest: t.digest, Hops: t.hops, Error: err.Error()})
		c.requeue(t)
		c.standDown(b, name)
		return
	}
}

// standDown probes the backend after a failover. Healthy (it was merely
// overloaded): return at once and keep pulling work. Unhealthy: announce
// backend_down, reprobe every HealthEvery, and announce backend_up on
// recovery. While standing down the worker pulls no tasks, so a dead host
// never strands queued work.
func (c *Coordinator) standDown(b Backend, name string) {
	probe := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		return b.Health(ctx)
	}
	err := probe()
	if err == nil {
		return
	}
	c.emit(EventBackendDown, BackendEvent{Backend: name, Error: err.Error()})
	for {
		select {
		case <-c.closedCh:
			return
		case <-time.After(c.cfg.HealthEvery):
		}
		if probe() == nil {
			c.emit(EventBackendUp, BackendEvent{Backend: name})
			return
		}
	}
}

// fleetExecutor plugs the coordinator into experiments.RunOptions.Exec:
// every point-task becomes one figure_task spec, content-addressed by its
// digest, and the records come back in task order.
type fleetExecutor struct{ c *Coordinator }

// ExecTasks implements experiments.Executor.
func (e *fleetExecutor) ExecTasks(ctx context.Context, id string, opts experiments.RunOptions, n int) ([]json.RawMessage, error) {
	specs := make([]serve.Spec, n)
	for i := range specs {
		specs[i] = serve.Spec{
			Kind:     serve.KindFigureTask,
			Figure:   id,
			Scale:    opts.Scale,
			Seed:     opts.Seed,
			Workers:  1,
			Scenario: opts.Scenario,
			Task:     i,
		}
	}
	bodies, err := e.c.Run(ctx, specs)
	if err != nil {
		return nil, err
	}
	recs := make([]json.RawMessage, n)
	for i, body := range bodies {
		var tr serve.TaskRecord
		if err := json.Unmarshal(bytes.TrimSpace(body), &tr); err != nil {
			return nil, fmt.Errorf("fleet: decoding task %d record: %w", i, err)
		}
		if tr.Figure != id || tr.Task != i {
			return nil, fmt.Errorf("fleet: task record mismatch at index %d: got figure %q task %d", i, tr.Figure, tr.Task)
		}
		recs[i] = tr.Record
	}
	return recs, nil
}

// RunFigure computes figure id across the fleet and returns a Result
// byte-identical (CSV, plot, notes) to a local experiments.Run. Figures
// with a task decomposition fan out point-by-point through the executor
// seam; the rest run as one whole-figure job on a single backend and are
// decoded back from the NDJSON stream.
func (c *Coordinator) RunFigure(ctx context.Context, id string, opts experiments.RunOptions) (*experiments.Result, error) {
	// Pin the wire defaults locally before decomposing: the spec cannot
	// carry "unset", and both sides must agree on scale and seed for the
	// task split (and digests) to line up.
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if _, ok := experiments.Tasks(id, opts); ok {
		opts.Exec = &fleetExecutor{c: c}
		return experiments.Run(ctx, id, opts)
	}
	spec := serve.Spec{
		Kind:     serve.KindFigure,
		Figure:   id,
		Scale:    opts.Scale,
		Seed:     opts.Seed,
		Scenario: opts.Scenario,
	}
	if opts.Workers > 0 {
		spec.Workers = opts.Workers
	}
	t, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	body, err := t.Wait(ctx)
	if err != nil {
		return nil, err
	}
	return decodeFigureResult(body)
}

// decodeFigureResult rebuilds an experiments.Result from a figure job's
// NDJSON stream. Go prints float64s exactly through JSON, so the rebuilt
// result renders the same CSV bytes as the local computation.
func decodeFigureResult(body []byte) (*experiments.Result, error) {
	res := &experiments.Result{}
	series := map[string]int{}
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &head); err != nil {
			return nil, fmt.Errorf("fleet: decoding figure stream: %w", err)
		}
		switch head.Type {
		case "figure_meta":
			var m struct {
				ID     string `json:"id"`
				Title  string `json:"title"`
				XLabel string `json:"x_label"`
				YLabel string `json:"y_label"`
			}
			if err := json.Unmarshal(line, &m); err != nil {
				return nil, fmt.Errorf("fleet: decoding figure_meta: %w", err)
			}
			res.ID, res.Title, res.XLabel, res.YLabel = m.ID, m.Title, m.XLabel, m.YLabel
		case "point":
			var p struct {
				Series string  `json:"series"`
				X      float64 `json:"x"`
				Y      float64 `json:"y"`
			}
			if err := json.Unmarshal(line, &p); err != nil {
				return nil, fmt.Errorf("fleet: decoding point: %w", err)
			}
			idx, ok := series[p.Series]
			if !ok {
				idx = len(res.Series)
				series[p.Series] = idx
				res.Series = append(res.Series, experiments.Series{Name: p.Series})
			}
			res.Series[idx].X = append(res.Series[idx].X, p.X)
			res.Series[idx].Y = append(res.Series[idx].Y, p.Y)
		case "note":
			var n struct {
				Note string `json:"note"`
			}
			if err := json.Unmarshal(line, &n); err != nil {
				return nil, fmt.Errorf("fleet: decoding note: %w", err)
			}
			res.Notes = append(res.Notes, n.Note)
		default:
			return nil, fmt.Errorf("fleet: unexpected record type %q in figure stream", head.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: scanning figure stream: %w", err)
	}
	if res.ID == "" {
		return nil, fmt.Errorf("fleet: figure stream carried no figure_meta record")
	}
	return res, nil
}
