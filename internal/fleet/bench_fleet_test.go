package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"cos/internal/obs"
	"cos/internal/serve"
)

// benchFleetOut enables TestWriteBenchFleetReport; `make bench-fleet`
// points it at BENCH_fleet.json.
var benchFleetOut = flag.String("bench-fleet-out", "", "write the fleet scaling report to this JSON file")

// TestWriteBenchFleetReport regenerates BENCH_fleet.json (via `make
// bench-fleet`): D distinct link specs run through coordinators over 1, 2,
// and 4 in-process backends; every topology's assembly is asserted
// byte-identical to the single-backend run, and the report records
// jobs/sec per fleet size plus the 2x/4x scaling ratios.
//
// Methodology: the backends are Loopbacks — real serve.Server instances
// (admission, shard queue, result streaming), so what scales is genuinely
// concurrent job execution across independent servers. On a multi-core
// host the 2-backend fleet must clear 1.7x the single-backend throughput.
// On a single-CPU host (GOMAXPROCS=1) all backends time-share one core, so
// near-1.0x ratios are the honest expectation; the report says which case
// it measured and the ratio gate applies only to the multi-core case. It
// skips itself unless -bench-fleet-out is set so `go test ./...` stays
// fast.
func TestWriteBenchFleetReport(t *testing.T) {
	if *benchFleetOut == "" {
		t.Skip("set -bench-fleet-out to write the report")
	}

	const jobs = 32
	specs := make([]serve.Spec, jobs)
	for i := range specs {
		specs[i] = serve.Spec{Kind: serve.KindLink, Seed: int64(i + 1), PayloadBytes: 256, Packets: 50, ControlBits: 32}
	}

	type tier struct {
		Backends      int     `json:"backends"`
		Seconds       float64 `json:"seconds"`
		JobsPerSecond float64 `json:"jobs_per_second"`
	}
	var tiers []tier
	var reference [][]byte
	identical := true

	for _, nBackends := range []int{1, 2, 4} {
		backends := make([]Backend, nBackends)
		for i := range backends {
			srv := serve.New(serve.Config{Shards: 1, QueueDepth: jobs, Metrics: obs.NewRegistry()})
			defer srv.Drain(60 * time.Second)
			backends[i] = NewLoopback(fmt.Sprintf("bench%d-%d", nBackends, i), srv)
		}
		c := New(Config{Backends: backends})
		start := time.Now()
		bodies, err := c.Run(context.Background(), specs)
		elapsed := time.Since(start)
		c.Close()
		if err != nil {
			t.Fatalf("%d backends: %v", nBackends, err)
		}
		if reference == nil {
			reference = bodies
		} else {
			for i := range bodies {
				if !bytes.Equal(bodies[i], reference[i]) {
					identical = false
					t.Errorf("%d backends: task %d differs from the single-backend run", nBackends, i)
				}
			}
		}
		tiers = append(tiers, tier{
			Backends:      nBackends,
			Seconds:       elapsed.Seconds(),
			JobsPerSecond: float64(jobs) / elapsed.Seconds(),
		})
	}

	scaling2x := tiers[1].JobsPerSecond / tiers[0].JobsPerSecond
	scaling4x := tiers[2].JobsPerSecond / tiers[0].JobsPerSecond
	multiCore := runtime.GOMAXPROCS(0) >= 2
	if multiCore && scaling2x < 1.7 {
		t.Errorf("2-backend scaling = %.2fx on a %d-way host, want >= 1.7x", scaling2x, runtime.GOMAXPROCS(0))
	}

	methodology := "multi-core host: backends execute on separate cores, ratios reflect real parallel speedup"
	if !multiCore {
		methodology = "single-CPU host (GOMAXPROCS=1): all backends time-share one core, so jobs/sec cannot scale with fleet size and near-1.0x ratios are expected; the run still proves coordination overhead is negligible and output is byte-identical at every fleet size"
	}

	report := struct {
		Description     string  `json:"description"`
		CPUs            int     `json:"cpus"`
		GoMaxProcs      int     `json:"gomaxprocs"`
		Jobs            int     `json:"jobs"`
		Tiers           []tier  `json:"tiers"`
		Scaling2x       float64 `json:"scaling_2_backends"`
		Scaling4x       float64 `json:"scaling_4_backends"`
		OutputIdentical bool    `json:"output_identical"`
		Methodology     string  `json:"methodology"`
		GoVersion       string  `json:"go_version"`
	}{
		Description:     "fleet coordinator scaling: the same 32 distinct link specs dispatched through 1, 2, and 4 in-process cos-serve backends; assemblies asserted byte-identical across fleet sizes",
		CPUs:            runtime.NumCPU(),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		Jobs:            jobs,
		Tiers:           tiers,
		Scaling2x:       scaling2x,
		Scaling4x:       scaling4x,
		OutputIdentical: identical,
		Methodology:     methodology,
		GoVersion:       runtime.Version(),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchFleetOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: 1->2 backends %.2fx, 1->4 backends %.2fx (identical=%v, %s)",
		*benchFleetOut, scaling2x, scaling4x, identical, methodology)
}
