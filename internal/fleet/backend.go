// Package fleet fans simulation work out across a set of cos-serve
// backends: a Coordinator owns a task queue and one worker loop per
// backend (the per-host fetcher shape of Sia's renter download pipeline),
// with health-gated dispatch, bounded Retry-After-aware retry, and
// failover — a task whose host dies or keeps refusing admission is
// re-queued to another host.
//
// The determinism guarantee is internal/pool's, lifted over the network:
// every job's result stream is a pure function of its normalized spec, and
// the coordinator assembles bodies in submission-index order, so the
// output is byte-identical regardless of fleet size, host set, which host
// ran which task, or how many times a task was retried. Point-tasks are
// content-addressed (each figure_task spec has its own digest), so the
// PR 7 result cache deduplicates repeated work fleet-wide.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"cos/internal/serve"
	"cos/internal/serve/client"
)

// ErrBackendDown: the backend is unreachable or has been killed; the
// coordinator treats it as transient and fails the task over.
var ErrBackendDown = errors.New("fleet: backend down")

// ErrClosed: the coordinator was closed with work still pending.
var ErrClosed = errors.New("fleet: coordinator closed")

// A Backend runs one spec at a time to completion. Implementations wrap a
// cos-serve daemon (Host, over the typed HTTP client) or an in-process
// *serve.Server (Loopback, for tests and benches). Run must return the
// job's complete NDJSON result body — which, by the serve determinism
// contract, depends only on the normalized spec, never on the backend.
type Backend interface {
	// Name identifies the backend in events and errors.
	Name() string
	// Health reports nil while the backend admits jobs; an error marks it
	// down (the worker loop stops dispatching and reprobes until nil).
	Health(ctx context.Context) error
	// Run executes spec to completion and returns its NDJSON result body.
	Run(ctx context.Context, spec serve.Spec) ([]byte, error)
}

// JobError is a permanent, spec-level failure: the job ran and failed, or
// the server rejected the spec as invalid. No amount of retrying or
// failing over will change the outcome, so the coordinator fails the task
// immediately.
type JobError struct {
	// Backend is the backend that reported the failure; Job its job ID
	// ("" when the spec never admitted).
	Backend string
	Job     string
	// Message is the server's failure message.
	Message string
	// Err is the underlying error when one exists (validation errors on
	// the loopback path); nil for remote failures that arrive as text.
	Err error
}

// Error implements error.
func (e *JobError) Error() string {
	if e.Job != "" {
		return fmt.Sprintf("fleet: job %s on backend %s failed: %s", e.Job, e.Backend, e.Message)
	}
	return fmt.Sprintf("fleet: backend %s rejected spec: %s", e.Backend, e.Message)
}

// Unwrap exposes the underlying error for errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// Transient reports whether err is worth retrying — on this backend after
// a backoff, or on another one after failover. Permanent errors (the job
// ran and failed, or the spec itself is invalid) reproduce identically on
// every host, so they fail the task immediately; everything else —
// overload, drain, dead hosts, transport faults, 5xx — is the fleet's job
// to route around.
func Transient(err error) bool {
	var jobErr *JobError
	if errors.As(err, &jobErr) {
		return false
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) && apiErr.StatusCode >= 400 && apiErr.StatusCode < 500 && apiErr.StatusCode != 429 {
		// 4xx other than overload: the server understood the request and
		// refused it; another host speaks the same protocol.
		return false
	}
	return true
}

// Host returns a Backend that talks to the cos-serve daemon at baseURL
// over the typed HTTP client.
func Host(baseURL string) Backend {
	return &httpBackend{name: baseURL, c: client.New(baseURL)}
}

// FromClient wraps an existing typed client as a Backend (tests inject
// httptest servers this way).
func FromClient(name string, c *client.Client) Backend {
	return &httpBackend{name: name, c: c}
}

type httpBackend struct {
	name string
	c    *client.Client
}

func (b *httpBackend) Name() string { return b.name }

// Health probes GET /healthz; a draining server is down for dispatch.
func (b *httpBackend) Health(ctx context.Context) error {
	h, err := b.c.Health(ctx)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrBackendDown, b.name, err)
	}
	if h.State != "ok" {
		return fmt.Errorf("%w: backend %s", serve.ErrDraining, b.name)
	}
	return nil
}

// Run submits the spec, waits for the job to settle, and streams the
// result body. A cache hit on the server returns immediately.
func (b *httpBackend) Run(ctx context.Context, spec serve.Spec) ([]byte, error) {
	st, err := b.c.Submit(ctx, spec, client.SubmitOptions{})
	if err != nil {
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && !Transient(err) {
			return nil, &JobError{Backend: b.name, Message: apiErr.Message, Err: err}
		}
		return nil, err
	}
	if !st.Terminal {
		if st, err = b.c.Wait(ctx, st.ID); err != nil {
			return nil, err
		}
	}
	return settle(ctx, b.name, st.ID, st.State, st.Error, func(ctx context.Context) ([]byte, error) {
		return b.c.ResultBytes(ctx, st.ID)
	})
}

// settle maps a terminal job state onto the Backend.Run contract: done
// streams the body, failed is permanent, cancelled (a drain window closing
// over the job, or an operator) is transient — the task re-runs elsewhere
// and, results being content-addressed, produces the same bytes.
func settle(ctx context.Context, backend, jobID, state, errMsg string, read func(context.Context) ([]byte, error)) ([]byte, error) {
	switch state {
	case serve.StateDone.String():
		return read(ctx)
	case serve.StateFailed.String():
		return nil, &JobError{Backend: backend, Job: jobID, Message: errMsg}
	default:
		return nil, fmt.Errorf("fleet: job %s on backend %s ended %s before completing", jobID, backend, state)
	}
}

// Loopback is an in-process Backend over a *serve.Server: the same
// admission, queueing, caching, and result machinery as a remote daemon,
// minus the socket. Tests and benches build multi-backend fleets from
// these; Kill simulates a host dying mid-run (subsequent — and in-flight —
// Runs report ErrBackendDown until Revive).
type Loopback struct {
	name string
	srv  *serve.Server

	mu   sync.Mutex
	down bool
}

// NewLoopback wraps srv as a Backend named name. The caller owns the
// server's lifecycle (Drain).
func NewLoopback(name string, srv *serve.Server) *Loopback {
	return &Loopback{name: name, srv: srv}
}

// Name implements Backend.
func (l *Loopback) Name() string { return l.name }

// Kill marks the backend dead: Health and Run fail with ErrBackendDown,
// including a Run already in flight (its response is "lost" — the job may
// complete server-side, but the coordinator re-queues the task, and
// content-addressed results make the re-run byte-identical).
func (l *Loopback) Kill() {
	l.mu.Lock()
	l.down = true
	l.mu.Unlock()
}

// Revive brings a killed backend back.
func (l *Loopback) Revive() {
	l.mu.Lock()
	l.down = false
	l.mu.Unlock()
}

func (l *Loopback) dead() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.down
}

// Health implements Backend.
func (l *Loopback) Health(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if l.dead() {
		return fmt.Errorf("%w: %s", ErrBackendDown, l.name)
	}
	if l.srv.Draining() {
		return fmt.Errorf("%w: backend %s", serve.ErrDraining, l.name)
	}
	return nil
}

// Run implements Backend.
func (l *Loopback) Run(ctx context.Context, spec serve.Spec) ([]byte, error) {
	if l.dead() {
		return nil, fmt.Errorf("%w: %s", ErrBackendDown, l.name)
	}
	job, err := l.srv.Submit(spec)
	if err != nil {
		if Transient(err) {
			return nil, err // overload / drain: the coordinator's problem
		}
		return nil, &JobError{Backend: l.name, Message: err.Error(), Err: err}
	}
	select {
	case <-job.Done():
	case <-ctx.Done():
		_ = l.srv.Cancel(job.ID())
		return nil, ctx.Err()
	}
	if l.dead() {
		return nil, fmt.Errorf("%w: %s", ErrBackendDown, l.name)
	}
	st := job.Status()
	return settle(ctx, l.name, job.ID(), st.State, st.Error, func(context.Context) ([]byte, error) {
		return io.ReadAll(job.Result())
	})
}
