package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"cos/internal/experiments"
	"cos/internal/obs"
	"cos/internal/obs/event"
	"cos/internal/serve"
	"cos/internal/serve/cache"
	"cos/internal/serve/client"
)

func newServer(t testing.TB, cfg serve.Config) *serve.Server {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	srv := serve.New(cfg)
	t.Cleanup(func() { srv.Drain(60 * time.Second) })
	return srv
}

func newLoopback(t testing.TB, name string) *Loopback {
	t.Helper()
	return NewLoopback(name, newServer(t, serve.Config{Shards: 1}))
}

// fastBackoff keeps retry sleeps out of the test budget.
func fastBackoff() client.Backoff {
	return client.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond}
}

func linkSpec(seed int64) serve.Spec {
	return serve.Spec{Kind: serve.KindLink, Seed: seed, PayloadBytes: 256, Packets: 50, ControlBits: 32}
}

// referenceBodies runs each spec serially on one fresh server — the
// ground truth every fleet topology must reproduce byte-for-byte.
func referenceBodies(t *testing.T, specs []serve.Spec) [][]byte {
	t.Helper()
	srv := newServer(t, serve.Config{Shards: 1, QueueDepth: len(specs) + 1})
	out := make([][]byte, len(specs))
	for i, sp := range specs {
		job, err := srv.Submit(sp)
		if err != nil {
			t.Fatalf("reference submit %d: %v", i, err)
		}
		<-job.Done()
		if job.State() != serve.StateDone {
			t.Fatalf("reference job %d ended %s: %v", i, job.State(), job.Err())
		}
		body, err := io.ReadAll(job.Result())
		if err != nil {
			t.Fatal(err)
		}
		out[i] = body
	}
	return out
}

func eventTypes(j *event.Journal) map[string]int {
	counts := map[string]int{}
	for _, ev := range j.Snapshot(0) {
		counts[ev.Type]++
	}
	return counts
}

// TestFigureByteIdenticalAcrossFleetSizes pins the acceptance criterion:
// the same figure through 1 backend, 2 backends, and no fleet at all
// renders byte-identical CSV.
func TestFigureByteIdenticalAcrossFleetSizes(t *testing.T) {
	opts := experiments.RunOptions{Scale: 0.4, Workers: 1, Seed: 1}
	local, err := experiments.Run(context.Background(), "fig2", opts)
	if err != nil {
		t.Fatal(err)
	}
	want := local.String()

	for _, nBackends := range []int{1, 2} {
		backends := make([]Backend, nBackends)
		for i := range backends {
			backends[i] = newLoopback(t, fmt.Sprintf("lo%d", i))
		}
		c := New(Config{Backends: backends, Backoff: fastBackoff()})
		res, err := c.RunFigure(context.Background(), "fig2", experiments.RunOptions{Scale: 0.4, Seed: 1})
		c.Close()
		if err != nil {
			t.Fatalf("%d backends: %v", nBackends, err)
		}
		if got := res.String(); got != want {
			t.Errorf("%d backends: fleet CSV differs from local run:\n--- local ---\n%s--- fleet ---\n%s", nBackends, want, got)
		}
	}
}

// TestKillBackendMidRunFailsOver kills one of two backends while a batch
// is in flight: every task still completes, the assembly is byte-identical
// to the serial reference, and the journal shows the failover and the
// backend going down.
func TestKillBackendMidRunFailsOver(t *testing.T) {
	specs := make([]serve.Spec, 8)
	for i := range specs {
		specs[i] = linkSpec(int64(i + 1))
	}
	want := referenceBodies(t, specs)

	j := event.New(256)
	defer j.Close()
	victim := newLoopback(t, "victim")
	survivor := newLoopback(t, "survivor")
	c := New(Config{
		Backends:      []Backend{victim, survivor},
		Journal:       j,
		Backoff:       fastBackoff(),
		RetryAttempts: 1,
		HealthEvery:   2 * time.Millisecond,
	})
	defer c.Close()

	// Kill the victim the moment it receives its first dispatch, so at
	// least one task sees its backend die under it.
	sub := j.Subscribe(0, 64)
	go func() {
		for ev := range sub.C() {
			if ev.Type == EventFleetDispatch && strings.Contains(string(ev.Data), `"victim"`) {
				victim.Kill()
				return
			}
		}
	}()
	defer sub.Cancel()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	got, err := c.Run(ctx, specs)
	if err != nil {
		t.Fatalf("Run with a killed backend: %v", err)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("task %d: fleet body differs from serial reference", i)
		}
	}
	types := eventTypes(j)
	if types[EventFleetFailover] == 0 {
		t.Error("no fleet_failover event after killing a backend")
	}
	if types[EventBackendDown] == 0 {
		t.Error("no backend_down event after killing a backend")
	}
}

// TestAddBackendMidRun grows the fleet while a batch is draining; output
// stays byte-identical and the newcomer is announced.
func TestAddBackendMidRun(t *testing.T) {
	specs := make([]serve.Spec, 8)
	for i := range specs {
		specs[i] = linkSpec(int64(100 + i))
	}
	want := referenceBodies(t, specs)

	j := event.New(256)
	defer j.Close()
	c := New(Config{
		Backends: []Backend{newLoopback(t, "first")},
		Journal:  j,
		Backoff:  fastBackoff(),
	})
	defer c.Close()

	sub := j.Subscribe(0, 64)
	go func() {
		for ev := range sub.C() {
			if ev.Type == EventFleetDispatch {
				c.AddBackend(newLoopback(t, "second"))
				return
			}
		}
	}()
	defer sub.Cancel()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	got, err := c.Run(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("task %d: fleet body differs from serial reference", i)
		}
	}
	ups := 0
	for _, ev := range j.Snapshot(0) {
		if ev.Type == EventBackendUp && strings.Contains(string(ev.Data), `"second"`) {
			ups++
		}
	}
	if ups != 1 {
		t.Errorf("backend_up for the added backend: got %d events, want 1", ups)
	}
}

// TestRetryOnOverload fills a backend's only queue slot so the fleet's
// submission bounces with ErrOverloaded, and checks the worker retries on
// the same backend (fleet_retry) until the slot frees, still producing the
// right bytes.
func TestRetryOnOverload(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 1, QueueDepth: 1})
	slow := serve.Spec{Kind: serve.KindLink, Seed: 9, PayloadBytes: 256, Packets: 400, ControlBits: 32}
	running, err := srv.Submit(slow) // will occupy the only shard
	if err != nil {
		t.Fatal(err)
	}
	for running.Status().State != serve.StateRunning.String() {
		time.Sleep(time.Millisecond) // wait for it to leave the queue slot
	}
	queued, err := srv.Submit(slow2(slow)) // fills the only queue slot
	if err != nil {
		t.Fatal(err)
	}

	spec := linkSpec(42)
	want := referenceBodies(t, []serve.Spec{spec})[0]

	j := event.New(256)
	defer j.Close()
	c := New(Config{
		Backends:      []Backend{NewLoopback(t.Name(), srv)},
		Journal:       j,
		Backoff:       client.Backoff{Base: 2 * time.Millisecond, Max: 10 * time.Millisecond},
		RetryAttempts: 10_000, // the queue frees within the test budget
		MaxHops:       100_000,
	})
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	got, err := c.Run(ctx, []serve.Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0], want) {
		t.Error("body after overload retries differs from serial reference")
	}
	if eventTypes(j)[EventFleetRetry] == 0 {
		t.Error("no fleet_retry events despite a full queue")
	}
	<-running.Done()
	<-queued.Done()
}

// slow2 derives a second distinct slow spec so the cache can't collapse
// the two queue occupants.
func slow2(s serve.Spec) serve.Spec {
	s.Seed++
	return s
}

// TestPermanentFailureFailsFast: a job that runs and fails (timeout) is
// permanent — reported as the lowest-index error without burning the
// failover budget.
func TestPermanentFailureFailsFast(t *testing.T) {
	bad := serve.Spec{Kind: serve.KindLink, Seed: 5, PayloadBytes: 256, Packets: 200_000, ControlBits: 32, TimeoutMS: 1}

	j := event.New(256)
	defer j.Close()
	c := New(Config{
		Backends: []Backend{newLoopback(t, "a"), newLoopback(t, "b")},
		Journal:  j,
		Backoff:  fastBackoff(),
	})
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	_, err := c.Run(ctx, []serve.Spec{linkSpec(1), bad})
	if err == nil {
		t.Fatal("Run succeeded despite a doomed job")
	}
	var jobErr *JobError
	if !errors.As(err, &jobErr) {
		t.Fatalf("error is %v; want a *JobError", err)
	}
	if !strings.Contains(err.Error(), "task 1") {
		t.Errorf("error %q does not name the failing task index", err)
	}
	if n := eventTypes(j)[EventFleetFailover]; n != 0 {
		t.Errorf("permanent failure caused %d failovers; want 0", n)
	}
}

// TestWholeFigureFallback: a figure with no point-task decomposition runs
// as one job on one backend and decodes back byte-identical.
func TestWholeFigureFallback(t *testing.T) {
	opts := experiments.RunOptions{Scale: 0.05, Workers: 1, Seed: 1}
	local, err := experiments.Run(context.Background(), "fig10a", opts)
	if err != nil {
		t.Fatal(err)
	}

	c := New(Config{Backends: []Backend{newLoopback(t, "lo")}, Backoff: fastBackoff()})
	defer c.Close()
	res, err := c.RunFigure(context.Background(), "fig10a", experiments.RunOptions{Scale: 0.05, Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.String(), local.String(); got != want {
		t.Errorf("fallback CSV differs from local run:\n--- local ---\n%s--- fleet ---\n%s", want, got)
	}
}

// TestCacheDedupAcrossRuns: point-tasks are content-addressed, so a second
// identical figure run is served from the result cache — same bytes, no
// second computation. Both workers dispatch into the same server (the
// cache is per-server; sharing one models a fleet over a shared result
// store), which makes the all-cached assertion deterministic regardless
// of which worker wins which task.
func TestCacheDedupAcrossRuns(t *testing.T) {
	j := event.New(1024)
	defer j.Close()
	srv := newServer(t, serve.Config{Shards: 2, Journal: j, Cache: cache.New(0)})
	backends := []Backend{NewLoopback("c0", srv), NewLoopback("c1", srv)}
	c := New(Config{Backends: backends, Backoff: fastBackoff()})
	defer c.Close()

	opts := experiments.RunOptions{Scale: 0.4, Seed: 1}
	first, err := c.RunFigure(context.Background(), "fig2", opts)
	if err != nil {
		t.Fatal(err)
	}
	startedBefore := eventTypes(j)[serve.EventJobStarted]
	second, err := c.RunFigure(context.Background(), "fig2", opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Error("second fleet run differs from the first")
	}
	types := eventTypes(j)
	if types[serve.EventJobCached] == 0 {
		t.Error("no job_cached events on the second identical run")
	}
	if types[serve.EventJobStarted] != startedBefore {
		t.Errorf("second run started %d fresh jobs; want 0 (all cached)",
			types[serve.EventJobStarted]-startedBefore)
	}
}

// TestSubmitRejectsInvalidSpecLocally: validation fails before anything is
// queued or dispatched.
func TestSubmitRejectsInvalidSpecLocally(t *testing.T) {
	c := New(Config{Backends: []Backend{newLoopback(t, "lo")}, Backoff: fastBackoff()})
	defer c.Close()
	if _, err := c.Submit(context.Background(), serve.Spec{Kind: "bogus"}); err == nil {
		t.Fatal("Submit accepted a bogus kind")
	}
}

// TestCloseFailsPendingTasks: closing with queued work settles every
// pending task with ErrClosed rather than hanging its waiter.
func TestCloseFailsPendingTasks(t *testing.T) {
	lo := newLoopback(t, "lo")
	lo.Kill() // nothing will ever dispatch successfully
	c := New(Config{
		Backends:    []Backend{lo},
		Backoff:     fastBackoff(),
		HealthEvery: time.Millisecond,
		MaxHops:     1 << 20,
	})
	tk, err := c.Submit(context.Background(), linkSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := tk.Wait(context.Background())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("pending task settled with %v; want ErrClosed", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("pending task never settled after Close")
	}
}
