// Package channel simulates the indoor radio environment the paper measured:
// frequency-selective Rayleigh fading via a tapped-delay-line model with an
// exponential power-delay profile, walking-speed temporal variation via a
// Jakes sum-of-sinusoids Doppler process, additive white Gaussian noise, and
// a pulse interferer for the Fig. 10(d) experiment.
//
// This package substitutes for the Sora testbed's physical lab channel. The
// properties CoS depends on — per-subcarrier EVM diversity (Fig. 5),
// symbol-error clustering on weak subcarriers (Fig. 6), and indoor coherence
// times of tens of milliseconds (Fig. 7) — all emerge from this model.
package channel

import (
	"fmt"
	"math"
	"math/rand"

	"cos/internal/ofdm"
)

// WalkingDopplerHz is the kinematic maximum Doppler shift of the paper's
// mobile scenario: 3.4 mph (1.52 m/s) at the 5.25 GHz 802.11a carrier.
const WalkingDopplerHz = 26.6

// EffectiveIndoorDopplerHz is the channel decorrelation rate used for the
// mobile position presets. The paper's own measurements (Fig. 7) show the
// per-subcarrier EVM profile changing by under 1% over 30 ms of walking —
// far slower than a full-scatter Jakes process at the kinematic
// WalkingDopplerHz would predict (which decorrelates in ~15 ms). Indoor
// pedestrian channels are dominated by static scatterers, so the effective
// rate is calibrated here to reproduce the paper's measured coherence.
const EffectiveIndoorDopplerHz = 0.4

// TDLConfig parameterizes a tapped-delay-line channel.
type TDLConfig struct {
	// NumTaps is the number of sample-spaced taps (1 = flat fading). It
	// must stay at most ofdm.CPLen so the cyclic prefix absorbs all ISI.
	NumTaps int
	// DelaySpread is the RMS delay spread in samples; tap m has average
	// power proportional to exp(-m/DelaySpread). Zero concentrates all
	// power in tap 0.
	DelaySpread float64
	// DopplerHz is the maximum Doppler shift of the Jakes process; zero
	// yields a static (but still random) channel.
	DopplerHz float64
	// NumSinusoids is the number of sum-of-sinusoids components per tap;
	// zero selects a default of 16.
	NumSinusoids int
}

// Validate reports configuration errors.
func (c TDLConfig) Validate() error {
	if c.NumTaps < 1 {
		return fmt.Errorf("channel: NumTaps %d must be >= 1", c.NumTaps)
	}
	if c.NumTaps > ofdm.CPLen {
		return fmt.Errorf("channel: NumTaps %d exceeds cyclic prefix %d (would cause ISI)", c.NumTaps, ofdm.CPLen)
	}
	if c.DelaySpread < 0 {
		return fmt.Errorf("channel: negative delay spread %v", c.DelaySpread)
	}
	if c.DopplerHz < 0 {
		return fmt.Errorf("channel: negative Doppler %v", c.DopplerHz)
	}
	return nil
}

// tapProc is the Jakes sum-of-sinusoids process of one tap.
type tapProc struct {
	sigma float64   // sqrt of average tap power
	amp   float64   // per-sinusoid amplitude
	freq  []float64 // 2*pi*fd*cos(alpha_i)
	phase []float64
}

func (p *tapProc) at(t float64) complex128 {
	var re, im float64
	for i, f := range p.freq {
		a := f*t + p.phase[i]
		re += math.Cos(a)
		im += math.Sin(a)
	}
	return complex(p.sigma*p.amp*re, p.sigma*p.amp*im)
}

// TDL is a tapped-delay-line fading channel. Its taps evolve continuously
// with time; within one packet the channel is treated as quasi-static
// (indoor coherence time is orders of magnitude above a packet duration).
type TDL struct {
	cfg   TDLConfig
	procs []tapProc
}

// NewTDL draws a random channel realization from cfg using rng. The average
// total tap power is normalized to 1, so received SNR equals transmit SNR in
// expectation.
func NewTDL(cfg TDLConfig, rng *rand.Rand) (*TDL, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("channel: nil rng")
	}
	m := cfg.NumSinusoids
	if m == 0 {
		m = 16
	}
	// Exponential power-delay profile, normalized to unit total power.
	powers := make([]float64, cfg.NumTaps)
	var total float64
	for i := range powers {
		if cfg.DelaySpread > 0 {
			powers[i] = math.Exp(-float64(i) / cfg.DelaySpread)
		} else if i == 0 {
			powers[i] = 1
		}
		total += powers[i]
	}
	procs := make([]tapProc, cfg.NumTaps)
	for i := range procs {
		p := tapProc{
			sigma: math.Sqrt(powers[i] / total),
			amp:   math.Sqrt(1 / float64(m)),
			freq:  make([]float64, m),
			phase: make([]float64, m),
		}
		for s := 0; s < m; s++ {
			alpha := rng.Float64() * 2 * math.Pi
			p.freq[s] = 2 * math.Pi * cfg.DopplerHz * math.Cos(alpha)
			p.phase[s] = rng.Float64() * 2 * math.Pi
		}
		procs[i] = p
	}
	return &TDL{cfg: cfg, procs: procs}, nil
}

// Config returns the configuration the channel was built from.
func (c *TDL) Config() TDLConfig { return c.cfg }

// Taps returns the complex tap gains at time t (seconds).
func (c *TDL) Taps(t float64) []complex128 {
	out := make([]complex128, len(c.procs))
	for i := range c.procs {
		out[i] = c.procs[i].at(t)
	}
	return out
}

// FrequencyResponse returns H[k] for every logical subcarrier bin (FFT
// ordering, 64 entries) at time t.
func (c *TDL) FrequencyResponse(t float64) [ofdm.NumSubcarriers]complex128 {
	taps := c.Taps(t)
	var h [ofdm.NumSubcarriers]complex128
	for k := 0; k < ofdm.NumSubcarriers; k++ {
		var sum complex128
		for m, g := range taps {
			angle := -2 * math.Pi * float64(k) * float64(m) / ofdm.NumSubcarriers
			sum += g * complex(math.Cos(angle), math.Sin(angle))
		}
		h[k] = sum
	}
	return h
}

// Convolve applies tap gains to samples by linear convolution, truncated to
// len(samples) (the preamble leads every packet, so edge transients never
// touch payload symbols).
func Convolve(samples, taps []complex128) []complex128 {
	out := make([]complex128, len(samples))
	for n := range samples {
		var sum complex128
		for m, g := range taps {
			if n-m < 0 {
				break
			}
			sum += g * samples[n-m]
		}
		out[n] = sum
	}
	return out
}

// AddAWGN adds circular complex Gaussian noise of total variance noiseVar
// (per complex sample) to samples, in place.
func AddAWGN(samples []complex128, noiseVar float64, rng *rand.Rand) {
	if noiseVar <= 0 {
		return
	}
	sigma := math.Sqrt(noiseVar / 2)
	for i := range samples {
		samples[i] += complex(sigma*rng.NormFloat64(), sigma*rng.NormFloat64())
	}
}

// Apply runs samples through the channel at time t and adds noise of the
// given variance: the one-call path used by the PHY simulator.
func (c *TDL) Apply(samples []complex128, t, noiseVar float64, rng *rand.Rand) []complex128 {
	out := Convolve(samples, c.Taps(t))
	AddAWGN(out, noiseVar, rng)
	return out
}
