package channel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"cos/internal/dsp"
	"cos/internal/ofdm"
)

func TestTDLConfigValidate(t *testing.T) {
	bad := []TDLConfig{
		{NumTaps: 0},
		{NumTaps: 17},
		{NumTaps: 2, DelaySpread: -1},
		{NumTaps: 2, DopplerHz: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v): want error", cfg)
		}
	}
	if err := (TDLConfig{NumTaps: 8, DelaySpread: 3}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestNewTDLErrors(t *testing.T) {
	if _, err := NewTDL(TDLConfig{NumTaps: 0}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("want error for invalid config")
	}
	if _, err := NewTDL(TDLConfig{NumTaps: 1}, nil); err == nil {
		t.Error("want error for nil rng")
	}
}

func TestTDLUnitAveragePower(t *testing.T) {
	// Averaged over many realizations, total tap power approaches 1.
	rng := rand.New(rand.NewSource(71))
	cfg := TDLConfig{NumTaps: 8, DelaySpread: 3}
	var total float64
	const n = 2000
	for i := 0; i < n; i++ {
		c, err := NewTDL(cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range c.Taps(0) {
			total += dsp.MagSq(g)
		}
	}
	avg := total / n
	if math.Abs(avg-1) > 0.05 {
		t.Errorf("average tap power = %v, want ~1", avg)
	}
}

func TestTDLExponentialProfile(t *testing.T) {
	// Early taps carry more average power than late taps.
	rng := rand.New(rand.NewSource(72))
	cfg := TDLConfig{NumTaps: 8, DelaySpread: 2}
	first, last := 0.0, 0.0
	const n = 1500
	for i := 0; i < n; i++ {
		c, _ := NewTDL(cfg, rng)
		taps := c.Taps(0)
		first += dsp.MagSq(taps[0])
		last += dsp.MagSq(taps[7])
	}
	if first <= last*5 {
		t.Errorf("tap0 power %v should dominate tap7 power %v", first/n, last/n)
	}
}

func TestStaticChannelConstantOverTime(t *testing.T) {
	c, err := NewTDL(TDLConfig{NumTaps: 4, DelaySpread: 1.5}, rand.New(rand.NewSource(73)))
	if err != nil {
		t.Fatal(err)
	}
	a := c.Taps(0)
	b := c.Taps(10.0)
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("static channel tap %d moved", i)
		}
	}
}

func TestDopplerChannelEvolves(t *testing.T) {
	c, err := NewTDL(TDLConfig{NumTaps: 4, DelaySpread: 1.5, DopplerHz: WalkingDopplerHz},
		rand.New(rand.NewSource(74)))
	if err != nil {
		t.Fatal(err)
	}
	a := c.Taps(0)
	b := c.Taps(0.5) // far beyond coherence time at 26.6 Hz
	moved := 0.0
	for i := range a {
		moved += cmplx.Abs(a[i] - b[i])
	}
	if moved < 0.01 {
		t.Error("Doppler channel did not evolve over 500 ms")
	}
	// But barely moves within one packet duration (~500 us).
	cSlow := c.Taps(500e-6)
	drift := 0.0
	for i := range a {
		drift += cmplx.Abs(a[i] - cSlow[i])
	}
	if drift > moved/10 {
		t.Errorf("channel drift within a packet (%v) should be tiny vs 500 ms drift (%v)", drift, moved)
	}
}

func TestFrequencyResponseMatchesDFTOfTaps(t *testing.T) {
	c, err := NewTDL(TDLConfig{NumTaps: 8, DelaySpread: 3}, rand.New(rand.NewSource(75)))
	if err != nil {
		t.Fatal(err)
	}
	h := c.FrequencyResponse(0)
	taps := c.Taps(0)
	padded := make([]complex128, ofdm.NumSubcarriers)
	copy(padded, taps)
	ref, err := dsp.FFT(padded)
	if err != nil {
		t.Fatal(err)
	}
	for k := range h {
		if cmplx.Abs(h[k]-ref[k]) > 1e-9 {
			t.Fatalf("H[%d] = %v, FFT ref %v", k, h[k], ref[k])
		}
	}
}

func TestFrequencySelectivityIncreasesWithTaps(t *testing.T) {
	// More taps / larger spread => larger variation of |H| across band.
	spreadOf := func(cfg TDLConfig, seed int64) float64 {
		var acc float64
		const reps = 200
		for i := int64(0); i < reps; i++ {
			c, _ := NewTDL(cfg, rand.New(rand.NewSource(seed+i)))
			h := c.FrequencyResponse(0)
			mags := make([]float64, 0, 52)
			for k := -26; k <= 26; k++ {
				if k == 0 {
					continue
				}
				bin, _ := ofdm.Bin(k)
				mags = append(mags, dsp.MagSq(h[bin]))
			}
			acc += dsp.StdDev(mags) / (dsp.Mean(mags) + 1e-12)
		}
		return acc / reps
	}
	flat := spreadOf(TDLConfig{NumTaps: 1}, 100)
	rich := spreadOf(TDLConfig{NumTaps: 8, DelaySpread: 3}, 200)
	if flat > 1e-9 {
		t.Errorf("flat channel shows selectivity %v", flat)
	}
	if rich < 0.3 {
		t.Errorf("rich channel selectivity %v too small", rich)
	}
}

func TestConvolveIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	x := make([]complex128, 100)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	y := Convolve(x, []complex128{1})
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("identity convolution changed signal")
		}
	}
	// One-sample delay.
	y = Convolve(x, []complex128{0, 1})
	if y[0] != 0 {
		t.Error("delayed convolution should zero the first sample")
	}
	for i := 1; i < len(x); i++ {
		if y[i] != x[i-1] {
			t.Fatal("delay convolution incorrect")
		}
	}
}

func TestAddAWGNStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	x := make([]complex128, 50000)
	AddAWGN(x, 0.25, rng)
	p := dsp.Power(x)
	if math.Abs(p-0.25) > 0.01 {
		t.Errorf("noise power = %v, want 0.25", p)
	}
	// Zero variance is a no-op.
	y := make([]complex128, 10)
	AddAWGN(y, 0, rng)
	if dsp.Power(y) != 0 {
		t.Error("zero-variance AWGN changed signal")
	}
}

func TestApplyPreservesLength(t *testing.T) {
	c, _ := NewTDL(TDLConfig{NumTaps: 4, DelaySpread: 1}, rand.New(rand.NewSource(78)))
	x := make([]complex128, 320)
	for i := range x {
		x[i] = 1
	}
	y := c.Apply(x, 0, 0.01, rand.New(rand.NewSource(79)))
	if len(y) != len(x) {
		t.Fatalf("Apply changed length: %d", len(y))
	}
}
