package channel

import (
	"math/rand"
	"testing"

	"cos/internal/dsp"
)

func TestPulseInterfererValidate(t *testing.T) {
	bad := []PulseInterferer{
		{Power: -1, BurstLen: 1, StartProb: 0.1},
		{Power: 1, BurstLen: 0, StartProb: 0.1},
		{Power: 1, BurstLen: 1, StartProb: -0.1},
		{Power: 1, BurstLen: 1, StartProb: 1.5},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v): want error", p)
		}
	}
}

func TestPulseInterfererInjectsBursts(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	p := PulseInterferer{Power: 64, BurstLen: 80, StartProb: 0.005}
	x := make([]complex128, 20000)
	hit, err := p.Apply(x, rng)
	if err != nil {
		t.Fatal(err)
	}
	if hit == 0 {
		t.Fatal("no interference injected")
	}
	if hit%1 != 0 || hit > len(x) {
		t.Fatalf("hit count %d out of range", hit)
	}
	if dsp.Power(x) == 0 {
		t.Error("interference carried no energy")
	}
}

func TestPulseInterfererZeroConfigsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	x := make([]complex128, 100)
	for _, p := range []PulseInterferer{
		{Power: 0, BurstLen: 10, StartProb: 0.5},
		{Power: 10, BurstLen: 10, StartProb: 0},
	} {
		hit, err := p.Apply(x, rng)
		if err != nil {
			t.Fatal(err)
		}
		if hit != 0 || dsp.Power(x) != 0 {
			t.Errorf("%+v should be a no-op", p)
		}
	}
}

func TestPulseInterfererInvalidApply(t *testing.T) {
	p := PulseInterferer{Power: -1, BurstLen: 1, StartProb: 0.1}
	if _, err := p.Apply(make([]complex128, 10), rand.New(rand.NewSource(83))); err == nil {
		t.Error("Apply with invalid config should error")
	}
}
