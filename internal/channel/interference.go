package channel

import (
	"fmt"
	"math"
	"math/rand"
)

// PulseInterferer injects random high-power bursts into a sample stream,
// modeling the co-channel pulse interference of the Fig. 10(d) experiment
// ("pulse signal is sent randomly"). Each burst is complex Gaussian with the
// configured power and lasts BurstLen samples.
type PulseInterferer struct {
	// Power is the burst power relative to unit signal power (linear).
	Power float64
	// BurstLen is the burst duration in samples.
	BurstLen int
	// StartProb is the per-sample probability that a new burst begins when
	// no burst is active.
	StartProb float64
}

// Validate reports configuration errors.
func (p PulseInterferer) Validate() error {
	if p.Power < 0 {
		return fmt.Errorf("channel: negative interference power %v", p.Power)
	}
	if p.BurstLen < 1 {
		return fmt.Errorf("channel: burst length %d must be >= 1", p.BurstLen)
	}
	if p.StartProb < 0 || p.StartProb > 1 {
		return fmt.Errorf("channel: start probability %v out of [0,1]", p.StartProb)
	}
	return nil
}

// Apply adds interference bursts to samples in place and returns the number
// of samples hit.
func (p PulseInterferer) Apply(samples []complex128, rng *rand.Rand) (hit int, err error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if p.Power == 0 || p.StartProb == 0 {
		return 0, nil
	}
	sigma := math.Sqrt(p.Power / 2)
	remaining := 0
	for i := range samples {
		if remaining == 0 && rng.Float64() < p.StartProb {
			remaining = p.BurstLen
		}
		if remaining > 0 {
			samples[i] += complex(sigma*rng.NormFloat64(), sigma*rng.NormFloat64())
			remaining--
			hit++
		}
	}
	return hit, nil
}
