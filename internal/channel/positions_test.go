package channel

import (
	"math/cmplx"
	"testing"
)

func TestPositionStrings(t *testing.T) {
	cases := map[Position]string{
		PositionA:    "Position A",
		PositionB:    "Position B",
		PositionC:    "Position C",
		PositionFlat: "Flat",
		Position(9):  "Position(9)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestPositionConfigs(t *testing.T) {
	for _, p := range Positions() {
		cfg, err := p.Config(false)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if cfg.DopplerHz != 0 {
			t.Errorf("%v static config has Doppler", p)
		}
		m, err := p.Config(true)
		if err != nil {
			t.Fatal(err)
		}
		if m.DopplerHz != EffectiveIndoorDopplerHz {
			t.Errorf("%v mobile config Doppler = %v", p, m.DopplerHz)
		}
	}
	if _, err := Position(0).Config(false); err == nil {
		t.Error("unknown position should error")
	}
	flat, err := PositionFlat.Config(false)
	if err != nil || flat.NumTaps != 1 {
		t.Errorf("flat config = %+v, %v", flat, err)
	}
}

func TestPositionReproducible(t *testing.T) {
	a1, err := PositionA.New(false)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := PositionA.New(false)
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := a1.Taps(0), a2.Taps(0)
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatal("PositionA.New is not deterministic")
		}
	}
}

func TestPositionsDistinct(t *testing.T) {
	a, _ := PositionA.New(false)
	b, _ := PositionB.New(false)
	ta, tb := a.Taps(0), b.Taps(0)
	same := true
	for i := 0; i < len(tb) && i < len(ta); i++ {
		if cmplx.Abs(ta[i]-tb[i]) > 1e-12 {
			same = false
		}
	}
	if same {
		t.Error("positions A and B produced identical channels")
	}
}

func TestPositionVariants(t *testing.T) {
	v1, err := PositionA.NewVariant(false, 1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := PositionA.NewVariant(false, 2)
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := v1.Taps(0), v2.Taps(0)
	same := true
	for i := range t1 {
		if cmplx.Abs(t1[i]-t2[i]) > 1e-12 {
			same = false
		}
	}
	if same {
		t.Error("variants produced identical channels")
	}
	if _, err := Position(0).NewVariant(false, 1); err == nil {
		t.Error("unknown position variant should error")
	}
}
