package channel

import (
	"math"
	"math/rand"

	"cos/internal/ofdm"
)

// Scratch-reuse variants of the channel operators. TapsInto / ConvolveInto /
// ApplyTo write into caller-owned buffers, growing them only when capacity is
// insufficient; FrequencyResponseFrom turns an already-computed tap vector
// into H[k] without re-evaluating the Doppler processes. Tap evaluation draws
// no randomness — only AddAWGN consumes the rng — so computing taps once and
// reusing them for both the frequency response and the convolution is
// bit-identical to calling FrequencyResponse and Apply separately.

// TapsInto is Taps writing into dst.
func (c *TDL) TapsInto(dst []complex128, t float64) []complex128 {
	if cap(dst) < len(c.procs) {
		dst = make([]complex128, len(c.procs))
	}
	dst = dst[:len(c.procs)]
	for i := range c.procs {
		dst[i] = c.procs[i].at(t)
	}
	return dst
}

// FrequencyResponseFrom computes H[k] for every subcarrier bin from an
// already-evaluated tap vector (as returned by Taps or TapsInto).
func FrequencyResponseFrom(taps []complex128) [ofdm.NumSubcarriers]complex128 {
	var h [ofdm.NumSubcarriers]complex128
	for k := 0; k < ofdm.NumSubcarriers; k++ {
		var sum complex128
		for m, g := range taps {
			angle := -2 * math.Pi * float64(k) * float64(m) / ofdm.NumSubcarriers
			sum += g * complex(math.Cos(angle), math.Sin(angle))
		}
		h[k] = sum
	}
	return h
}

// ConvolveInto is Convolve writing into dst, which must not alias samples.
func ConvolveInto(dst, samples, taps []complex128) []complex128 {
	if cap(dst) < len(samples) {
		dst = make([]complex128, len(samples))
	}
	dst = dst[:len(samples)]
	for n := range samples {
		var sum complex128
		for m, g := range taps {
			if n-m < 0 {
				break
			}
			sum += g * samples[n-m]
		}
		dst[n] = sum
	}
	return dst
}

// ApplyTo is Apply writing into dst using precomputed taps: convolution
// followed by AWGN, consuming the rng exactly as Apply does.
func ApplyTo(dst, samples, taps []complex128, noiseVar float64, rng *rand.Rand) []complex128 {
	dst = ConvolveInto(dst, samples, taps)
	AddAWGN(dst, noiseVar, rng)
	return dst
}
