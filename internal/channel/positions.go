package channel

import (
	"fmt"
	"math/rand"
)

// Position identifies one of the canonical receiver placements of the
// paper's measurement campaign (Sec. II-D). Each position is a distinct
// multipath geometry, i.e. a distinct degree of frequency selectivity.
type Position int

// The three measurement positions of Figs. 5-7 plus a flat reference.
const (
	PositionA Position = iota + 1
	PositionB
	PositionC
	// PositionFlat is a single-tap (frequency-flat) channel used as an
	// experimental control; the paper's phenomena should vanish on it.
	PositionFlat
)

// String returns the paper's name for the position.
func (p Position) String() string {
	switch p {
	case PositionA:
		return "Position A"
	case PositionB:
		return "Position B"
	case PositionC:
		return "Position C"
	case PositionFlat:
		return "Flat"
	default:
		return fmt.Sprintf("Position(%d)", int(p))
	}
}

// Config returns the TDL configuration of the position. Positions differ in
// multipath richness: A is the richest (strongest frequency selectivity),
// C the mildest. mobile adds the walking-speed Doppler of the paper's
// mobile traces.
func (p Position) Config(mobile bool) (TDLConfig, error) {
	var cfg TDLConfig
	switch p {
	case PositionA:
		cfg = TDLConfig{NumTaps: 8, DelaySpread: 3.0}
	case PositionB:
		cfg = TDLConfig{NumTaps: 6, DelaySpread: 2.0}
	case PositionC:
		cfg = TDLConfig{NumTaps: 4, DelaySpread: 1.2}
	case PositionFlat:
		cfg = TDLConfig{NumTaps: 1, DelaySpread: 0}
	default:
		return cfg, fmt.Errorf("channel: unknown position %d", int(p))
	}
	if mobile {
		cfg.DopplerHz = EffectiveIndoorDopplerHz
	}
	return cfg, nil
}

// seed returns the canonical per-position RNG seed, so "Position A" is the
// same channel realization in every experiment, mirroring a fixed physical
// placement.
func (p Position) seed() int64 { return 0xC05 + int64(p)*1000 }

// New draws the canonical channel realization for the position.
func (p Position) New(mobile bool) (*TDL, error) {
	cfg, err := p.Config(mobile)
	if err != nil {
		return nil, err
	}
	return NewTDL(cfg, rand.New(rand.NewSource(p.seed())))
}

// NewVariant draws an independent realization of the position's geometry
// using the provided seed offset; used when an experiment needs many
// channels of the same selectivity class.
func (p Position) NewVariant(mobile bool, variant int64) (*TDL, error) {
	cfg, err := p.Config(mobile)
	if err != nil {
		return nil, err
	}
	return NewTDL(cfg, rand.New(rand.NewSource(p.seed()^(variant*0x9E3779B9))))
}

// Positions lists the three paper positions.
func Positions() []Position { return []Position{PositionA, PositionB, PositionC} }
