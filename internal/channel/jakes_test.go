package channel

import (
	"math"
	"math/rand"
	"testing"
)

// besselJ0 evaluates the Bessel function of the first kind, order zero,
// via its power series (|x| small) or asymptotic form (|x| large). Good to
// ~1e-6 over the range used here.
func besselJ0(x float64) float64 {
	x = math.Abs(x)
	if x < 8 {
		term := 1.0
		sum := 1.0
		for k := 1; k <= 30; k++ {
			term *= -x * x / (4 * float64(k) * float64(k))
			sum += term
		}
		return sum
	}
	return math.Sqrt(2/(math.Pi*x)) * math.Cos(x-math.Pi/4)
}

// TestJakesAutocorrelationMatchesBessel verifies the sum-of-sinusoids
// process reproduces the Clarke/Jakes temporal autocorrelation
// E[g(t)g*(t+tau)] = J0(2*pi*fd*tau), the property all the temporal
// experiments rely on.
func TestJakesAutocorrelationMatchesBessel(t *testing.T) {
	const fd = 10.0
	taus := []float64{0, 0.005, 0.010, 0.020, 0.040}
	const realizations = 4000

	for _, tau := range taus {
		var accRe, accIm, power float64
		for r := 0; r < realizations; r++ {
			ch, err := NewTDL(TDLConfig{NumTaps: 1, DopplerHz: fd, NumSinusoids: 32},
				rand.New(rand.NewSource(int64(9000+r))))
			if err != nil {
				t.Fatal(err)
			}
			g0 := ch.Taps(0)[0]
			g1 := ch.Taps(tau)[0]
			prod := g0 * complex(real(g1), -imag(g1))
			accRe += real(prod)
			accIm += imag(prod)
			p := real(g0)*real(g0) + imag(g0)*imag(g0)
			power += p
		}
		got := accRe / power // normalized autocorrelation (real part)
		want := besselJ0(2 * math.Pi * fd * tau)
		if math.Abs(got-want) > 0.06 {
			t.Errorf("tau=%v: autocorrelation %.4f, Bessel J0 predicts %.4f", tau, got, want)
		}
		if im := accIm / power; math.Abs(im) > 0.06 {
			t.Errorf("tau=%v: imaginary autocorrelation %.4f should vanish", tau, im)
		}
	}
}

// TestTapsRayleighDistributed verifies single-tap magnitudes follow a
// Rayleigh distribution: P(|g|^2 > x) = exp(-x) for unit average power.
func TestTapsRayleighDistributed(t *testing.T) {
	const realizations = 6000
	exceed1, exceed2 := 0, 0
	for r := 0; r < realizations; r++ {
		ch, err := NewTDL(TDLConfig{NumTaps: 1, NumSinusoids: 32},
			rand.New(rand.NewSource(int64(20000+r))))
		if err != nil {
			t.Fatal(err)
		}
		g := ch.Taps(0)[0]
		p := real(g)*real(g) + imag(g)*imag(g)
		if p > 1 {
			exceed1++
		}
		if p > 2 {
			exceed2++
		}
	}
	got1 := float64(exceed1) / realizations
	got2 := float64(exceed2) / realizations
	if math.Abs(got1-math.Exp(-1)) > 0.03 {
		t.Errorf("P(|g|^2>1) = %.3f, Rayleigh predicts %.3f", got1, math.Exp(-1))
	}
	if math.Abs(got2-math.Exp(-2)) > 0.03 {
		t.Errorf("P(|g|^2>2) = %.3f, Rayleigh predicts %.3f", got2, math.Exp(-2))
	}
}
