// Package modulation implements the 802.11a constellation mappings
// (17.3.5.7): Gray-coded BPSK, QPSK, 16-QAM and 64-QAM with the standard
// normalization factors, a hard demapper, a soft max-log demapper producing
// the per-bit metrics of the paper's Eq. (8), and the per-subcarrier EVM
// metrics of Eqs. (1)-(2).
package modulation

import (
	"fmt"
	"math"
)

// Scheme identifies a modulation scheme.
type Scheme int

// The four 802.11a modulation schemes.
const (
	BPSK Scheme = iota + 1
	QPSK
	QAM16
	QAM64
)

// String returns the conventional name of the scheme.
func (s Scheme) String() string {
	switch s {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16QAM"
	case QAM64:
		return "64QAM"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Valid reports whether s is one of the defined schemes.
func (s Scheme) Valid() bool { return s >= BPSK && s <= QAM64 }

// BitsPerSymbol returns NBPSC, the number of coded bits carried by one
// subcarrier symbol. It returns 0 for an invalid scheme.
func (s Scheme) BitsPerSymbol() int {
	switch s {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	default:
		return 0
	}
}

// Norm returns the 802.11a normalization factor Kmod that scales the integer
// constellation to unit average power.
func (s Scheme) Norm() float64 {
	switch s {
	case BPSK:
		return 1
	case QPSK:
		return 1 / math.Sqrt2
	case QAM16:
		return 1 / math.Sqrt(10)
	case QAM64:
		return 1 / math.Sqrt(42)
	default:
		return 0
	}
}

// MinDistance returns Dm, the distance between the two nearest points of the
// normalized constellation. The paper's subcarrier selection compares
// per-subcarrier EVM against Dm/2 (Sec. III-D).
func (s Scheme) MinDistance() float64 {
	return 2 * s.Norm()
}

// MinPointEnergy returns the squared magnitude of the weakest point of the
// normalized constellation (1 for BPSK/QPSK, 0.2 for 16QAM, 2/42 for
// 64QAM). Energy detection of silence symbols must discriminate against
// this inner-point energy, not the unit average.
func (s Scheme) MinPointEnergy() float64 {
	n := s.Norm()
	switch s {
	case BPSK:
		return 1
	case QPSK:
		return 1
	case QAM16, QAM64:
		return 2 * n * n // innermost point at (+-1, +-1) * Kmod
	default:
		return 0
	}
}

// axisLevels returns the Gray-coded PAM levels of one axis, indexed by the
// integer value of the axis bits (LSB-first within the axis), in integer
// (unnormalized) units.
//
// 802.11a encodes each axis independently:
//
//	1 bit:  0 -> -1, 1 -> +1
//	2 bits: 00 -> -3, 01 -> -1, 11 -> +1, 10 -> +3
//	3 bits: 000 -> -7, 001 -> -5, 011 -> -3, 010 -> -1,
//	        110 -> +1, 111 -> +3, 101 -> +5, 100 -> +7
//
// The tables below are indexed by the bit pattern read MSB-first as in the
// standard's tables; the mapper assembles indices accordingly.
// Axis level tables are package-level so axisLevels never allocates on the
// demap hot path.
var (
	levels1 = []float64{-1, 1}
	levels2 = []float64{-3, -1, 3, 1} // index = b0<<1 | b1 (b0 first)
	// index = b0<<2 | b1<<1 | b2 (b0 transmitted first, per standard
	// table ordering b0 b1 b2 -> level).
	levels3 = []float64{-7, -5, -1, -3, 7, 5, 1, 3}
)

func axisLevels(bitsPerAxis int) []float64 {
	switch bitsPerAxis {
	case 1:
		return levels1
	case 2:
		return levels2
	case 3:
		return levels3
	default:
		return nil
	}
}

// Constellation returns every point of the normalized constellation, indexed
// by the integer formed from the symbol's bits (first transmitted bit is the
// most significant index bit, matching the standard's b0 b1 ... ordering).
func (s Scheme) Constellation() []complex128 {
	m := s.BitsPerSymbol()
	if m == 0 {
		return nil
	}
	n := 1 << m
	out := make([]complex128, n)
	for v := 0; v < n; v++ {
		bits := make([]byte, m)
		for i := 0; i < m; i++ {
			bits[i] = byte((v >> (m - 1 - i)) & 1)
		}
		pt, err := s.Map(bits)
		if err != nil {
			return nil
		}
		out[v] = pt
	}
	return out
}
