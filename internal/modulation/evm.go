package modulation

import (
	"fmt"
	"math"

	"cos/internal/dsp"
)

// EVM computes the error vector magnitude of Eq. (1) for one subcarrier:
//
//	EVM = sqrt( mean |r_i - s_i|^2 / mean |s_m|^2 )
//
// where received/ideal are the per-symbol observations of that subcarrier
// and the denominator averages over the scheme's constellation points
// (which is 1 for the normalized 802.11a constellations, but computed
// explicitly for fidelity to the paper). The result is a fraction; multiply
// by 100 for the percentages plotted in Figs. 5 and 7.
func EVM(s Scheme, received, ideal []complex128) (float64, error) {
	if len(received) != len(ideal) {
		return 0, fmt.Errorf("modulation: received %d and ideal %d lengths differ", len(received), len(ideal))
	}
	if len(received) == 0 {
		return 0, fmt.Errorf("modulation: EVM of zero symbols")
	}
	constPts := s.Constellation()
	if constPts == nil {
		return 0, fmt.Errorf("modulation: invalid scheme %d", int(s))
	}
	var num float64
	for i := range received {
		num += dsp.MagSq(received[i] - ideal[i])
	}
	num /= float64(len(received))
	den := dsp.Power(constPts)
	return math.Sqrt(num / den), nil
}

// ErrorVectorMagnitudes returns |r_i - s_i| per symbol; these are the |d_j|
// entries of the vector D(t) used by Eq. (2).
func ErrorVectorMagnitudes(received, ideal []complex128) ([]float64, error) {
	if len(received) != len(ideal) {
		return nil, fmt.Errorf("modulation: received %d and ideal %d lengths differ", len(received), len(ideal))
	}
	out := make([]float64, len(received))
	for i := range received {
		out[i] = dsp.Abs(received[i] - ideal[i])
	}
	return out, nil
}

// NablaEVM computes the normalized EVM change of Eq. (2):
//
//	nabla = ||D(t) - D(t+tau)|| / ||D(t+tau)||
//
// where D holds the per-subcarrier error-vector magnitudes at two times.
func NablaEVM(dt, dtau []float64) (float64, error) {
	if len(dt) != len(dtau) {
		return 0, fmt.Errorf("modulation: vector lengths differ (%d vs %d)", len(dt), len(dtau))
	}
	var num, den float64
	for i := range dt {
		diff := dt[i] - dtau[i]
		num += diff * diff
		den += dtau[i] * dtau[i]
	}
	if den == 0 {
		return 0, fmt.Errorf("modulation: zero reference vector")
	}
	return math.Sqrt(num) / math.Sqrt(den), nil
}
