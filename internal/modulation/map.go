package modulation

import (
	"fmt"
	"math"
)

// Map converts one symbol's worth of coded bits (len = BitsPerSymbol) into a
// normalized constellation point. Per 802.11a, the first half of the bits
// selects the I axis and the second half the Q axis; BPSK uses only I.
func (s Scheme) Map(symbolBits []byte) (complex128, error) {
	m := s.BitsPerSymbol()
	if m == 0 {
		return 0, fmt.Errorf("modulation: invalid scheme %d", int(s))
	}
	if len(symbolBits) != m {
		return 0, fmt.Errorf("modulation: %v needs %d bits per symbol, got %d", s, m, len(symbolBits))
	}
	for i, b := range symbolBits {
		if b > 1 {
			return 0, fmt.Errorf("modulation: element %d = %d is not a bit", i, b)
		}
	}
	if s == BPSK {
		return complex(float64(2*int(symbolBits[0])-1), 0), nil
	}
	half := m / 2
	levels := axisLevels(half)
	iIdx, qIdx := 0, 0
	for k := 0; k < half; k++ {
		iIdx = iIdx<<1 | int(symbolBits[k])
		qIdx = qIdx<<1 | int(symbolBits[half+k])
	}
	norm := s.Norm()
	return complex(levels[iIdx]*norm, levels[qIdx]*norm), nil
}

// MapBits modulates a bit stream (length a multiple of BitsPerSymbol) into
// constellation points.
func (s Scheme) MapBits(in []byte) ([]complex128, error) {
	m := s.BitsPerSymbol()
	if m == 0 {
		return nil, fmt.Errorf("modulation: invalid scheme %d", int(s))
	}
	if len(in)%m != 0 {
		return nil, fmt.Errorf("modulation: bit count %d is not a multiple of %d", len(in), m)
	}
	out := make([]complex128, 0, len(in)/m)
	for i := 0; i < len(in); i += m {
		pt, err := s.Map(in[i : i+m])
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// MapBitsInto is MapBits writing into dst, which is grown (reusing its
// capacity) to len(in)/BitsPerSymbol points.
func (s Scheme) MapBitsInto(dst []complex128, in []byte) ([]complex128, error) {
	m := s.BitsPerSymbol()
	if m == 0 {
		return nil, fmt.Errorf("modulation: invalid scheme %d", int(s))
	}
	if len(in)%m != 0 {
		return nil, fmt.Errorf("modulation: bit count %d is not a multiple of %d", len(in), m)
	}
	n := len(in) / m
	if cap(dst) < n {
		dst = make([]complex128, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		pt, err := s.Map(in[i*m : (i+1)*m])
		if err != nil {
			return nil, err
		}
		dst[i] = pt
	}
	return dst, nil
}

// hardAxis returns the axis bits (MSB-first) of the level nearest to x,
// where x is in unnormalized integer units.
func hardAxis(bitsPerAxis int, x float64) []byte {
	levels := axisLevels(bitsPerAxis)
	bestIdx, bestDist := 0, math.Inf(1)
	for idx, lv := range levels {
		d := (x - lv) * (x - lv)
		if d < bestDist {
			bestDist = d
			bestIdx = idx
		}
	}
	out := make([]byte, bitsPerAxis)
	for i := 0; i < bitsPerAxis; i++ {
		out[i] = byte((bestIdx >> (bitsPerAxis - 1 - i)) & 1)
	}
	return out
}

// HardDemap returns the bits of the constellation point nearest to y.
func (s Scheme) HardDemap(y complex128) ([]byte, error) {
	m := s.BitsPerSymbol()
	if m == 0 {
		return nil, fmt.Errorf("modulation: invalid scheme %d", int(s))
	}
	if s == BPSK {
		if real(y) >= 0 {
			return []byte{1}, nil
		}
		return []byte{0}, nil
	}
	norm := s.Norm()
	half := m / 2
	out := make([]byte, 0, m)
	out = append(out, hardAxis(half, real(y)/norm)...)
	out = append(out, hardAxis(half, imag(y)/norm)...)
	return out, nil
}

// NearestPoint returns the normalized constellation point closest to y.
func (s Scheme) NearestPoint(y complex128) (complex128, error) {
	bits, err := s.HardDemap(y)
	if err != nil {
		return 0, err
	}
	return s.Map(bits)
}

// SoftDemap computes max-log bit metrics for one received point (Eq. (8)):
//
//	lambda_i = [ min_{x in chi_0^i} |y-x|^2 - min_{x in chi_1^i} |y-x|^2 ] / N0
//
// Positive metrics favor bit 1. noiseVar is the complex noise variance N0;
// values below a small floor are clamped to keep metrics finite. The Gray
// mapping is I/Q-separable, so each axis is searched independently.
func (s Scheme) SoftDemap(y complex128, noiseVar float64) ([]float64, error) {
	m := s.BitsPerSymbol()
	if m == 0 {
		return nil, fmt.Errorf("modulation: invalid scheme %d", int(s))
	}
	out := make([]float64, m)
	if err := s.SoftDemapInto(out, y, noiseVar); err != nil {
		return nil, err
	}
	return out, nil
}

// SoftDemapInto is SoftDemap writing the BitsPerSymbol metrics into dst,
// whose length must be exactly BitsPerSymbol. It is the allocation-free form
// the receiver uses to demap straight into a symbol's metric segment.
func (s Scheme) SoftDemapInto(dst []float64, y complex128, noiseVar float64) error {
	m := s.BitsPerSymbol()
	if m == 0 {
		return fmt.Errorf("modulation: invalid scheme %d", int(s))
	}
	if len(dst) != m {
		return fmt.Errorf("modulation: %v demaps %d metrics per symbol, destination has %d", s, m, len(dst))
	}
	const minNoiseVar = 1e-9
	if noiseVar < minNoiseVar {
		noiseVar = minNoiseVar
	}
	if s == BPSK {
		// chi_0 = {-1}, chi_1 = {+1}: LLR = ((re+1)^2 - (re-1)^2)/N0.
		dst[0] = 4 * real(y) / noiseVar
		return nil
	}
	half := m / 2
	softAxis(dst[:half], half, real(y), s.Norm(), noiseVar)
	softAxis(dst[half:], half, imag(y), s.Norm(), noiseVar)
	return nil
}

// softAxis computes the per-bit max-log metrics of one axis into out.
func softAxis(out []float64, bitsPerAxis int, y, norm, noiseVar float64) {
	levels := axisLevels(bitsPerAxis)
	for bit := 0; bit < bitsPerAxis; bit++ {
		shift := bitsPerAxis - 1 - bit // bit 0 is the MSB of the axis index
		min0, min1 := math.Inf(1), math.Inf(1)
		for idx, lv := range levels {
			d := y - lv*norm
			d *= d
			if (idx>>shift)&1 == 0 {
				if d < min0 {
					min0 = d
				}
			} else if d < min1 {
				min1 = d
			}
		}
		out[bit] = (min0 - min1) / noiseVar
	}
}

// DemapBits hard-demaps a sequence of received points into a bit stream.
func (s Scheme) DemapBits(ys []complex128) ([]byte, error) {
	m := s.BitsPerSymbol()
	if m == 0 {
		return nil, fmt.Errorf("modulation: invalid scheme %d", int(s))
	}
	out := make([]byte, 0, len(ys)*m)
	for _, y := range ys {
		b, err := s.HardDemap(y)
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
	}
	return out, nil
}
