package modulation

import (
	"math"
	"math/rand"
	"testing"
)

func TestEVMZeroForPerfectReception(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, s := range allSchemes {
		in := randomBits(rng, s.BitsPerSymbol()*40)
		pts, err := s.MapBits(in)
		if err != nil {
			t.Fatal(err)
		}
		evm, err := EVM(s, pts, pts)
		if err != nil {
			t.Fatal(err)
		}
		if evm != 0 {
			t.Errorf("%v: EVM of perfect reception = %v", s, evm)
		}
	}
}

func TestEVMKnownValue(t *testing.T) {
	// A fixed error vector of magnitude e on every symbol of a unit-power
	// constellation gives EVM = e.
	ideal := []complex128{1, -1, 1i, -1i}
	received := make([]complex128, len(ideal))
	const e = 0.25
	for i, p := range ideal {
		received[i] = p + complex(e, 0)
	}
	evm, err := EVM(QPSK, received, ideal)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(evm-e) > 1e-12 {
		t.Errorf("EVM = %v, want %v", evm, e)
	}
}

func TestEVMMatchesNoiseLevel(t *testing.T) {
	// With additive complex Gaussian noise of variance N0 on a unit-power
	// constellation, EVM converges to sqrt(N0).
	rng := rand.New(rand.NewSource(52))
	const n0 = 0.04
	sigma := math.Sqrt(n0 / 2)
	in := randomBits(rng, QAM16.BitsPerSymbol()*20000)
	pts, _ := QAM16.MapBits(in)
	rx := make([]complex128, len(pts))
	for i, p := range pts {
		rx[i] = p + complex(sigma*rng.NormFloat64(), sigma*rng.NormFloat64())
	}
	evm, err := EVM(QAM16, rx, pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(evm-math.Sqrt(n0)) > 0.01 {
		t.Errorf("EVM = %v, want ~%v", evm, math.Sqrt(n0))
	}
}

func TestEVMErrors(t *testing.T) {
	if _, err := EVM(QPSK, []complex128{1}, []complex128{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := EVM(QPSK, nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := EVM(Scheme(0), []complex128{1}, []complex128{1}); err == nil {
		t.Error("invalid scheme should error")
	}
}

func TestErrorVectorMagnitudes(t *testing.T) {
	got, err := ErrorVectorMagnitudes([]complex128{3 + 4i, 1}, []complex128{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-5) > 1e-12 || got[1] != 0 {
		t.Errorf("magnitudes = %v, want [5 0]", got)
	}
	if _, err := ErrorVectorMagnitudes([]complex128{1}, nil); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestNablaEVM(t *testing.T) {
	dt := []float64{1, 2, 2}
	// Identical vectors -> zero change.
	got, err := NablaEVM(dt, dt)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("NablaEVM(identical) = %v", got)
	}
	// Known value: D(t)=[3,0], D(t+tau)=[0,4]: ||diff||=5, ||ref||=4.
	got, err = NablaEVM([]float64{3, 0}, []float64{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.25) > 1e-12 {
		t.Errorf("NablaEVM = %v, want 1.25", got)
	}
	if _, err := NablaEVM([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := NablaEVM([]float64{1}, []float64{0}); err == nil {
		t.Error("zero reference should error")
	}
}
