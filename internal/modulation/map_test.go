package modulation

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"cos/internal/bits"
)

var allSchemes = []Scheme{BPSK, QPSK, QAM16, QAM64}

func TestSchemeBasics(t *testing.T) {
	cases := []struct {
		s     Scheme
		name  string
		nbpsc int
		norm  float64
	}{
		{BPSK, "BPSK", 1, 1},
		{QPSK, "QPSK", 2, 1 / math.Sqrt2},
		{QAM16, "16QAM", 4, 1 / math.Sqrt(10)},
		{QAM64, "64QAM", 6, 1 / math.Sqrt(42)},
	}
	for _, c := range cases {
		if c.s.String() != c.name {
			t.Errorf("String = %q, want %q", c.s.String(), c.name)
		}
		if c.s.BitsPerSymbol() != c.nbpsc {
			t.Errorf("%v BitsPerSymbol = %d, want %d", c.s, c.s.BitsPerSymbol(), c.nbpsc)
		}
		if math.Abs(c.s.Norm()-c.norm) > 1e-12 {
			t.Errorf("%v Norm = %v, want %v", c.s, c.s.Norm(), c.norm)
		}
		if !c.s.Valid() {
			t.Errorf("%v should be valid", c.s)
		}
	}
	if Scheme(0).Valid() || Scheme(5).Valid() {
		t.Error("out-of-range schemes should be invalid")
	}
	if Scheme(9).BitsPerSymbol() != 0 || Scheme(9).Norm() != 0 {
		t.Error("invalid scheme should report zero parameters")
	}
}

func TestConstellationUnitPower(t *testing.T) {
	for _, s := range allSchemes {
		pts := s.Constellation()
		if len(pts) != 1<<s.BitsPerSymbol() {
			t.Fatalf("%v constellation has %d points", s, len(pts))
		}
		var p float64
		for _, pt := range pts {
			p += real(pt)*real(pt) + imag(pt)*imag(pt)
		}
		p /= float64(len(pts))
		if math.Abs(p-1) > 1e-12 {
			t.Errorf("%v constellation power = %v, want 1", s, p)
		}
	}
}

func TestConstellationPointsDistinct(t *testing.T) {
	for _, s := range allSchemes {
		pts := s.Constellation()
		for i := range pts {
			for j := i + 1; j < len(pts); j++ {
				if cmplx.Abs(pts[i]-pts[j]) < 1e-9 {
					t.Fatalf("%v points %d and %d coincide", s, i, j)
				}
			}
		}
	}
}

func TestMinDistance(t *testing.T) {
	// Verify Dm against a brute-force pairwise search.
	for _, s := range allSchemes {
		pts := s.Constellation()
		min := math.Inf(1)
		for i := range pts {
			for j := i + 1; j < len(pts); j++ {
				if d := cmplx.Abs(pts[i] - pts[j]); d < min {
					min = d
				}
			}
		}
		if s == BPSK {
			// Only two points; Dm = 2.
			if math.Abs(s.MinDistance()-2) > 1e-12 {
				t.Errorf("BPSK MinDistance = %v, want 2", s.MinDistance())
			}
			continue
		}
		if math.Abs(s.MinDistance()-min) > 1e-12 {
			t.Errorf("%v MinDistance = %v, brute force %v", s, s.MinDistance(), min)
		}
	}
}

func TestMapKnownPoints(t *testing.T) {
	// Spot checks against IEEE 802.11a Table 17-* encodings.
	n16 := 1 / math.Sqrt(10)
	n64 := 1 / math.Sqrt(42)
	cases := []struct {
		s    Scheme
		bits []byte
		want complex128
	}{
		{BPSK, []byte{0}, complex(-1, 0)},
		{BPSK, []byte{1}, complex(1, 0)},
		{QPSK, []byte{0, 0}, complex(-1, -1) * complex(1/math.Sqrt2, 0)},
		{QPSK, []byte{1, 0}, complex(1, -1) * complex(1/math.Sqrt2, 0)},
		{QAM16, []byte{0, 0, 0, 0}, complex(-3*n16, -3*n16)},
		{QAM16, []byte{1, 0, 1, 1}, complex(3*n16, 1*n16)},
		{QAM16, []byte{0, 1, 1, 0}, complex(-1*n16, 3*n16)},
		{QAM64, []byte{0, 0, 0, 0, 0, 0}, complex(-7*n64, -7*n64)},
		{QAM64, []byte{1, 0, 0, 1, 0, 0}, complex(7*n64, 7*n64)},
		{QAM64, []byte{0, 1, 0, 1, 1, 1}, complex(-1*n64, 3*n64)},
		{QAM64, []byte{1, 1, 0, 0, 0, 1}, complex(1*n64, -5*n64)},
	}
	for _, c := range cases {
		got, err := c.s.Map(c.bits)
		if err != nil {
			t.Fatalf("Map(%v,%v): %v", c.s, c.bits, err)
		}
		if cmplx.Abs(got-c.want) > 1e-12 {
			t.Errorf("Map(%v,%v) = %v, want %v", c.s, c.bits, got, c.want)
		}
	}
}

func TestMapErrors(t *testing.T) {
	if _, err := BPSK.Map([]byte{0, 1}); err == nil {
		t.Error("wrong bit count should error")
	}
	if _, err := QPSK.Map([]byte{0, 2}); err == nil {
		t.Error("non-bit should error")
	}
	if _, err := Scheme(0).Map([]byte{}); err == nil {
		t.Error("invalid scheme should error")
	}
	if _, err := QPSK.MapBits([]byte{0, 1, 1}); err == nil {
		t.Error("non-multiple bit count should error")
	}
}

func TestHardDemapRoundTrip(t *testing.T) {
	for _, s := range allSchemes {
		m := s.BitsPerSymbol()
		for v := 0; v < 1<<m; v++ {
			in := make([]byte, m)
			for i := 0; i < m; i++ {
				in[i] = byte((v >> (m - 1 - i)) & 1)
			}
			pt, err := s.Map(in)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.HardDemap(pt)
			if err != nil {
				t.Fatal(err)
			}
			if !bits.Equal(got, in) {
				t.Errorf("%v: HardDemap(Map(%v)) = %v", s, in, got)
			}
		}
	}
}

func TestHardDemapWithSmallNoise(t *testing.T) {
	// Perturbations below half the minimum distance never change the
	// decision.
	rng := rand.New(rand.NewSource(41))
	for _, s := range allSchemes {
		m := s.BitsPerSymbol()
		maxShift := s.MinDistance() / 2 * 0.7
		for trial := 0; trial < 200; trial++ {
			in := randomBits(rng, m)
			pt, _ := s.Map(in)
			angle := rng.Float64() * 2 * math.Pi
			r := rng.Float64() * maxShift
			noisy := pt + cmplx.Rect(r, angle)
			got, _ := s.HardDemap(noisy)
			if !bits.Equal(got, in) {
				t.Fatalf("%v: decision changed under %v shift", s, r)
			}
		}
	}
}

func randomBits(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(2))
	}
	return out
}

func TestMapBitsDemapBitsRoundTrip(t *testing.T) {
	f := func(seed int64, schemeIdx uint8) bool {
		s := allSchemes[int(schemeIdx)%len(allSchemes)]
		rng := rand.New(rand.NewSource(seed))
		in := randomBits(rng, s.BitsPerSymbol()*32)
		pts, err := s.MapBits(in)
		if err != nil {
			return false
		}
		out, err := s.DemapBits(pts)
		if err != nil {
			return false
		}
		return bits.Equal(out, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSoftDemapSignMatchesHardDecision(t *testing.T) {
	// For any observation, the sign of each soft metric must agree with the
	// hard decision for that bit (max-log with Gray mapping guarantees it).
	rng := rand.New(rand.NewSource(42))
	for _, s := range allSchemes {
		for trial := 0; trial < 300; trial++ {
			y := complex(rng.NormFloat64(), rng.NormFloat64())
			hard, err := s.HardDemap(y)
			if err != nil {
				t.Fatal(err)
			}
			soft, err := s.SoftDemap(y, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			if len(soft) != len(hard) {
				t.Fatalf("%v: metric count %d != bit count %d", s, len(soft), len(hard))
			}
			for i := range soft {
				wantPositive := hard[i] == 1
				if soft[i] > 0 != wantPositive && soft[i] != 0 {
					t.Fatalf("%v trial %d bit %d: metric %v vs hard bit %d (y=%v)",
						s, trial, i, soft[i], hard[i], y)
				}
			}
		}
	}
}

func TestSoftDemapScalesWithNoise(t *testing.T) {
	y := complex(0.3, -0.8)
	for _, s := range allSchemes {
		a, _ := s.SoftDemap(y, 0.1)
		b, _ := s.SoftDemap(y, 0.2)
		for i := range a {
			if math.Abs(a[i]-2*b[i]) > 1e-9 {
				t.Errorf("%v: metric should scale 1/N0 (a=%v b=%v)", s, a[i], b[i])
			}
		}
	}
}

func TestSoftDemapClampsTinyNoise(t *testing.T) {
	for _, s := range allSchemes {
		m, err := s.SoftDemap(0.5+0.5i, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range m {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				t.Fatalf("%v: non-finite metric %v with zero noise var", s, v)
			}
		}
	}
}

func TestBPSKSoftDemapExactForm(t *testing.T) {
	m, err := BPSK.SoftDemap(complex(0.7, 0.3), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * 0.7 / 0.5
	if math.Abs(m[0]-want) > 1e-12 {
		t.Errorf("BPSK metric = %v, want %v", m[0], want)
	}
}

func TestNearestPoint(t *testing.T) {
	for _, s := range allSchemes {
		pts := s.Constellation()
		for _, pt := range pts {
			got, err := s.NearestPoint(pt + complex(0.01, -0.01))
			if err != nil {
				t.Fatal(err)
			}
			if cmplx.Abs(got-pt) > 1e-12 {
				t.Errorf("%v: NearestPoint drifted from %v to %v", s, pt, got)
			}
		}
	}
}

func TestMinPointEnergyLocal(t *testing.T) {
	// Brute-force check against the constellations.
	for _, s := range allSchemes {
		min := math.Inf(1)
		for _, pt := range s.Constellation() {
			if p := real(pt)*real(pt) + imag(pt)*imag(pt); p < min {
				min = p
			}
		}
		if math.Abs(s.MinPointEnergy()-min) > 1e-12 {
			t.Errorf("%v MinPointEnergy = %v, brute force %v", s, s.MinPointEnergy(), min)
		}
	}
	if Scheme(0).MinPointEnergy() != 0 {
		t.Error("invalid scheme should report 0")
	}
}
