package modulation

import (
	"math"
	"math/rand"
	"testing"
)

// exactLLR computes the true log-sum-exp LLR for bit i of scheme s given
// observation y and noise variance n0 — the quantity the max-log metric of
// Eq. (8) approximates.
func exactLLR(s Scheme, y complex128, n0 float64, bit int) float64 {
	pts := s.Constellation()
	m := s.BitsPerSymbol()
	var sum0, sum1 float64
	for idx, pt := range pts {
		d := y - pt
		l := math.Exp(-(real(d)*real(d) + imag(d)*imag(d)) / n0)
		// Index bit ordering: first transmitted bit is the MSB of idx.
		if (idx>>(m-1-bit))&1 == 0 {
			sum0 += l
		} else {
			sum1 += l
		}
	}
	if sum0 == 0 {
		sum0 = 1e-300
	}
	if sum1 == 0 {
		sum1 = 1e-300
	}
	return math.Log(sum1) - math.Log(sum0)
}

// TestSoftDemapApproximatesExactLLR: the max-log metrics must agree with
// the exact LLR in sign and, at moderate noise, in magnitude within the
// usual max-log error bound.
func TestSoftDemapApproximatesExactLLR(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, s := range allSchemes {
		const n0 = 0.05
		for trial := 0; trial < 200; trial++ {
			// Observations near a random constellation point.
			pts := s.Constellation()
			pt := pts[rng.Intn(len(pts))]
			y := pt + complex(math.Sqrt(n0/2)*rng.NormFloat64(), math.Sqrt(n0/2)*rng.NormFloat64())
			got, err := s.SoftDemap(y, n0)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				want := exactLLR(s, y, n0, i)
				// Sign agreement whenever the exact LLR is decisive.
				if math.Abs(want) > 0.5 && got[i]*want < 0 {
					t.Fatalf("%v trial %d bit %d: max-log %v vs exact %v disagree in sign",
						s, trial, i, got[i], want)
				}
				// Max-log underestimates magnitude but stays within ~log(M)
				// of the exact value at this noise level.
				if math.Abs(want) < 300 && math.Abs(got[i]-want) > math.Abs(want)*0.5+5 {
					t.Fatalf("%v trial %d bit %d: max-log %v too far from exact %v",
						s, trial, i, got[i], want)
				}
			}
		}
	}
}

// TestSoftDemapSymmetry: conjugating/negating the observation flips the
// corresponding axis bits for the I/Q-separable Gray mapping of BPSK/QPSK.
func TestSoftDemapSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 100; trial++ {
		y := complex(rng.NormFloat64(), rng.NormFloat64())
		a, err := QPSK.SoftDemap(y, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := QPSK.SoftDemap(-y, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if math.Abs(a[i]+b[i]) > 1e-9 {
				t.Fatalf("negating the observation should negate QPSK metrics: %v vs %v", a, b)
			}
		}
	}
}
