package trace

import (
	"math/rand"
	"strings"
	"testing"

	"cos"
)

func sampleEvents() []Event {
	return []Event{
		{Seq: 0, Time: 0.000, RateMbps: 6, DataOK: true, DataBytes: 1024},
		{Seq: 1, Time: 0.002, RateMbps: 24, DataOK: true, DataBytes: 1024,
			ControlBits: 16, ControlOK: true, ControlVerified: true, Silences: 5,
			MeasuredSNRdB: 15},
		{Seq: 2, Time: 0.004, RateMbps: 24, DataOK: false, DataBytes: 1024,
			ControlBits: 16, Silences: 5, FalseNegatives: 1, MeasuredSNRdB: 14},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	for _, e := range sampleEvents() {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}
	got, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d events", len(got))
	}
	if got[1].ControlBits != 16 || !got[1].ControlVerified || got[2].FalseNegatives != 1 {
		t.Errorf("event contents lost: %+v", got)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{\"seq\":0}\nnot json\n")); err == nil {
		t.Error("garbage line should error")
	}
}

func TestWriterEmitsSchemaHeader(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	if err := w.Write(Event{Seq: 0}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(b.String(), "\n", 2)[0]
	if first != `{"cos_trace_schema":1}` {
		t.Errorf("first line = %q, want the schema header", first)
	}
	events, version, err := ReadVersioned(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if version != SchemaVersion {
		t.Errorf("version = %d, want %d", version, SchemaVersion)
	}
	if len(events) != 1 {
		t.Errorf("header leaked into events: %d events", len(events))
	}
}

func TestReadHeaderlessV0File(t *testing.T) {
	// Traces written before versioning have no header line; they must
	// still load, reporting version 0.
	in := `{"seq":0,"data_ok":true}
{"seq":1,"rate_mbps":24}
`
	events, version, err := ReadVersioned(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if version != 0 {
		t.Errorf("version = %d, want 0", version)
	}
	if len(events) != 2 || !events[0].DataOK || events[1].RateMbps != 24 {
		t.Errorf("v0 events misread: %+v", events)
	}
}

func TestReadToleratesUnknownFields(t *testing.T) {
	// A trace from a future, more instrumented build carries extra fields;
	// readers keep what they know and ignore the rest.
	in := `{"cos_trace_schema":1}
{"seq":0,"data_ok":true,"erasure_count":12,"pipeline_stage_ns":{"tx":100}}
`
	events, version, err := ReadVersioned(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 || len(events) != 1 || !events[0].DataOK {
		t.Errorf("version=%d events=%+v", version, events)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize(sampleEvents())
	if err != nil {
		t.Fatal(err)
	}
	if s.Events != 3 {
		t.Errorf("Events = %d", s.Events)
	}
	if s.DataPRR < 0.66 || s.DataPRR > 0.67 {
		t.Errorf("DataPRR = %v", s.DataPRR)
	}
	if s.ControlAttempts != 2 || s.ControlDelivery != 0.5 || s.ControlVerifiedRate != 0.5 {
		t.Errorf("control stats: %+v", s)
	}
	if s.ControlBitsDelivered != 16 {
		t.Errorf("bits delivered = %d", s.ControlBitsDelivered)
	}
	// 16 bits over 4 ms.
	if s.ControlThroughputBps < 3999 || s.ControlThroughputBps > 4001 {
		t.Errorf("throughput = %v", s.ControlThroughputBps)
	}
	if s.RateHistogram[24] != 2 || s.RateHistogram[6] != 1 {
		t.Errorf("rate histogram: %v", s.RateHistogram)
	}
	if s.SilencesTotal != 10 || s.FalseNegatives != 1 {
		t.Errorf("silence/detector totals: %+v", s)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("empty trace should error")
	}
}

func TestObserverCapturesSession(t *testing.T) {
	// The observer hook is how CLIs capture traces now: attach it and the
	// writer sees every exchange with its on-link sequence number.
	var b strings.Builder
	w := NewWriter(&b)
	link, err := cos.NewLink(cos.WithSNR(20), cos.WithSeed(81), cos.WithObserver(w.Observer()))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256)
	rand.New(rand.NewSource(82)).Read(data)
	for i := 0; i < 4; i++ {
		if _, err := link.Send(data, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 4 {
		t.Fatalf("observer captured %d events, want 4", w.Count())
	}
	events, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range events {
		if e.Seq != i {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
		if e.DataBytes != len(data) {
			t.Errorf("event %d DataBytes = %d", i, e.DataBytes)
		}
	}
}

func TestFromExchangeEndToEnd(t *testing.T) {
	link, err := cos.NewLink(cos.WithSNR(20), cos.WithSeed(77))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 512)
	rand.New(rand.NewSource(78)).Read(data)
	var b strings.Builder
	w := NewWriter(&b)
	for i := 0; i < 5; i++ {
		ex, err := link.Send(data, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(FromExchange(i, ex, len(data))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(events)
	if err != nil {
		t.Fatal(err)
	}
	if s.Events != 5 || s.DataPRR < 0.99 {
		t.Errorf("summary of clean session: %+v", s)
	}
	if s.MeanMeasuredSNRdB < 5 {
		t.Errorf("mean measured SNR %v implausible", s.MeanMeasuredSNRdB)
	}
}
