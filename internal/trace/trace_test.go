package trace

import (
	"math/rand"
	"strings"
	"testing"

	"cos"
)

func sampleEvents() []Event {
	return []Event{
		{Seq: 0, Time: 0.000, RateMbps: 6, DataOK: true, DataBytes: 1024},
		{Seq: 1, Time: 0.002, RateMbps: 24, DataOK: true, DataBytes: 1024,
			ControlBits: 16, ControlOK: true, ControlVerified: true, Silences: 5,
			MeasuredSNRdB: 15},
		{Seq: 2, Time: 0.004, RateMbps: 24, DataOK: false, DataBytes: 1024,
			ControlBits: 16, Silences: 5, FalseNegatives: 1, MeasuredSNRdB: 14},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	for _, e := range sampleEvents() {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}
	got, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d events", len(got))
	}
	if got[1].ControlBits != 16 || !got[1].ControlVerified || got[2].FalseNegatives != 1 {
		t.Errorf("event contents lost: %+v", got)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{\"seq\":0}\nnot json\n")); err == nil {
		t.Error("garbage line should error")
	}
}

func TestWriterEmitsSchemaHeader(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	if err := w.Write(Event{Seq: 0}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(b.String(), "\n", 2)[0]
	if first != `{"cos_trace_schema":2}` {
		t.Errorf("first line = %q, want the schema header", first)
	}
	events, version, err := ReadVersioned(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if version != SchemaVersion {
		t.Errorf("version = %d, want %d", version, SchemaVersion)
	}
	if len(events) != 1 {
		t.Errorf("header leaked into events: %d events", len(events))
	}
}

func TestWriteHeaderOnEmptyTrace(t *testing.T) {
	// A session interrupted before its first exchange must still leave a
	// well-formed (header-only) trace behind: WriteHeader is explicit and
	// idempotent, and Write must not duplicate it.
	var b strings.Builder
	w := NewWriter(&b)
	if err := w.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Event{Seq: 0}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 || lines[0] != `{"cos_trace_schema":2}` {
		t.Fatalf("lines = %q, want one header then one event", lines)
	}
	events, version, err := ReadVersioned(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if version != SchemaVersion || len(events) != 1 {
		t.Errorf("version=%d events=%d", version, len(events))
	}
}

func TestV2RoundTripStagesAndProbe(t *testing.T) {
	// Schema v2 payload: per-stage latencies and a PHY probe must survive a
	// write→read cycle intact.
	ev := Event{
		Seq: 7, RateMbps: 24, DataOK: true,
		StageNS: map[string]int64{"tx_encode": 1200, "detect": 340},
		Probe: &ProbeRecord{
			NumSymbols:            10,
			EVM:                   []float64{0.1, 0.5},
			SubcarrierErrorCounts: []int{0, 3},
			SymbolErrorPositions:  []int{49},
			ErasurePositions:      []int{1, 49},
			DecoderInputBitErrors: 2,
			DecoderInputBits:      960,
			DetectorThresholds:    []float64{0.02},
			DetectorEnergyRatios:  []float64{7.5},
			NoiseVar:              0.004,
		},
	}
	var b strings.Builder
	w := NewWriter(&b)
	if err := w.Write(ev); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	events, version, err := ReadVersioned(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 || len(events) != 1 {
		t.Fatalf("version=%d events=%d", version, len(events))
	}
	got := events[0]
	if got.StageNS["tx_encode"] != 1200 || got.StageNS["detect"] != 340 {
		t.Errorf("stage_ns lost: %v", got.StageNS)
	}
	p := got.Probe
	if p == nil {
		t.Fatal("probe lost")
	}
	if p.NumSymbols != 10 || p.EVM[1] != 0.5 || p.SubcarrierErrorCounts[1] != 3 ||
		p.ErasurePositions[1] != 49 || p.DecoderInputBitErrors != 2 ||
		p.DetectorEnergyRatios[0] != 7.5 || p.NoiseVar != 0.004 {
		t.Errorf("probe contents lost: %+v", p)
	}
}

func TestReadV1File(t *testing.T) {
	// A v1 trace (header but no stage_ns/probe) reads cleanly under the v2
	// code: new fields stay zero, everything else is kept.
	in := `{"cos_trace_schema":1}
{"seq":0,"data_ok":true,"rate_mbps":24,"control_bits":16,"control_ok":true}
`
	events, version, err := ReadVersioned(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 || len(events) != 1 {
		t.Fatalf("version=%d events=%d", version, len(events))
	}
	e := events[0]
	if !e.DataOK || e.RateMbps != 24 || !e.ControlOK {
		t.Errorf("v1 fields misread: %+v", e)
	}
	if e.StageNS != nil || e.Probe != nil {
		t.Errorf("v1 trace grew v2 fields: %+v", e)
	}
}

func TestReadHeaderlessV0File(t *testing.T) {
	// Traces written before versioning have no header line; they must
	// still load, reporting version 0.
	in := `{"seq":0,"data_ok":true}
{"seq":1,"rate_mbps":24}
`
	events, version, err := ReadVersioned(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if version != 0 {
		t.Errorf("version = %d, want 0", version)
	}
	if len(events) != 2 || !events[0].DataOK || events[1].RateMbps != 24 {
		t.Errorf("v0 events misread: %+v", events)
	}
}

func TestReadToleratesUnknownFields(t *testing.T) {
	// A trace from a future, more instrumented build carries extra fields;
	// readers keep what they know and ignore the rest.
	in := `{"cos_trace_schema":1}
{"seq":0,"data_ok":true,"erasure_count":12,"pipeline_stage_ns":{"tx":100}}
`
	events, version, err := ReadVersioned(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 || len(events) != 1 || !events[0].DataOK {
		t.Errorf("version=%d events=%+v", version, events)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize(sampleEvents())
	if err != nil {
		t.Fatal(err)
	}
	if s.Events != 3 {
		t.Errorf("Events = %d", s.Events)
	}
	if s.DataPRR < 0.66 || s.DataPRR > 0.67 {
		t.Errorf("DataPRR = %v", s.DataPRR)
	}
	if s.ControlAttempts != 2 || s.ControlDelivery != 0.5 || s.ControlVerifiedRate != 0.5 {
		t.Errorf("control stats: %+v", s)
	}
	if s.ControlBitsDelivered != 16 {
		t.Errorf("bits delivered = %d", s.ControlBitsDelivered)
	}
	// 16 bits over 4 ms.
	if s.ControlThroughputBps < 3999 || s.ControlThroughputBps > 4001 {
		t.Errorf("throughput = %v", s.ControlThroughputBps)
	}
	if s.RateHistogram[24] != 2 || s.RateHistogram[6] != 1 {
		t.Errorf("rate histogram: %v", s.RateHistogram)
	}
	if s.SilencesTotal != 10 || s.FalseNegatives != 1 {
		t.Errorf("silence/detector totals: %+v", s)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("empty trace should error")
	}
}

func TestObserverCapturesSession(t *testing.T) {
	// The observer hook is how CLIs capture traces now: attach it and the
	// writer sees every exchange with its on-link sequence number.
	var b strings.Builder
	w := NewWriter(&b)
	link, err := cos.NewLink(cos.WithSNR(20), cos.WithSeed(81), cos.WithObserver(w.Observer()))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256)
	rand.New(rand.NewSource(82)).Read(data)
	for i := 0; i < 4; i++ {
		if _, err := link.Send(data, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 4 {
		t.Fatalf("observer captured %d events, want 4", w.Count())
	}
	events, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range events {
		if e.Seq != i {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
		if e.DataBytes != len(data) {
			t.Errorf("event %d DataBytes = %d", i, e.DataBytes)
		}
	}
}

func TestFromExchangeEndToEnd(t *testing.T) {
	link, err := cos.NewLink(cos.WithSNR(20), cos.WithSeed(77))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 512)
	rand.New(rand.NewSource(78)).Read(data)
	var b strings.Builder
	w := NewWriter(&b)
	for i := 0; i < 5; i++ {
		ex, err := link.Send(data, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(FromExchange(i, ex, len(data))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(events)
	if err != nil {
		t.Fatal(err)
	}
	if s.Events != 5 || s.DataPRR < 0.99 {
		t.Errorf("summary of clean session: %+v", s)
	}
	if s.MeanMeasuredSNRdB < 5 {
		t.Errorf("mean measured SNR %v implausible", s.MeanMeasuredSNRdB)
	}
}

func TestFromExchangeCarriesStagesAndProbes(t *testing.T) {
	// A probed link produces v2 events end to end: stage latencies on every
	// exchange, a probe on every sampled one.
	link, err := cos.NewLink(cos.WithSNR(18), cos.WithSeed(91), cos.WithProbe(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256)
	rand.New(rand.NewSource(92)).Read(data)
	var events []Event
	for i := 0; i < 4; i++ {
		ex, err := link.Send(data, []byte{1, 0, 1, 1})
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, FromExchange(i, ex, len(data)))
	}
	probes := 0
	for i, e := range events {
		if len(e.StageNS) == 0 {
			t.Errorf("event %d has no stage latencies", i)
		}
		if e.StageNS["tx_encode"] <= 0 || e.StageNS["evd_decode"] <= 0 {
			t.Errorf("event %d stage_ns incomplete: %v", i, e.StageNS)
		}
		if e.Probe != nil {
			probes++
			if len(e.Probe.EVM) == 0 || e.Probe.NumSymbols <= 0 {
				t.Errorf("event %d probe empty: %+v", i, e.Probe)
			}
		}
	}
	if probes != 2 {
		t.Errorf("probes on %d of 4 events, want every 2nd", probes)
	}
	s, err := Summarize(events)
	if err != nil {
		t.Fatal(err)
	}
	if s.Probes != 2 {
		t.Errorf("Summary.Probes = %d", s.Probes)
	}
	if s.StageNSTotals["evd_decode"] <= 0 {
		t.Errorf("StageNSTotals missing evd_decode: %v", s.StageNSTotals)
	}
}
