package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"cos"
)

// reportEvents builds a deterministic v2 trace by running a real probed
// link, so the report sees genuine EVM/erasure/stage data.
func reportEvents(t *testing.T) []Event {
	t.Helper()
	link, err := cos.NewLink(cos.WithSNR(14), cos.WithSeed(101), cos.WithProbe(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 512)
	rand.New(rand.NewSource(102)).Read(data)
	var events []Event
	for i := 0; i < 8; i++ {
		ex, err := link.Send(data, []byte{1, 0, 1, 0})
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, FromExchange(i, ex, len(data)))
	}
	return events
}

func TestReportContainsAllSections(t *testing.T) {
	var b bytes.Buffer
	if err := WriteReport(&b, reportEvents(t), SchemaVersion); err != nil {
		t.Fatal(err)
	}
	html := b.String()
	for _, want := range []string{
		"Delivery and outcomes",
		"Pipeline stage latency",
		"Interval-decode error breakdown",
		"Per-subcarrier EVM (Fig. 5)",
		"EVM waterfall (Fig. 7)",
		"Symbol errors per subcarrier (Fig. 6)",
		"Erasure map",
		"Symbol-error waterfall",
		"tx_encode",
		"evd_decode",
		"<svg",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
	for _, banned := range []string{"<script", "http://", "https://"} {
		if strings.Contains(html, banned) {
			t.Errorf("report must be self-contained, found %q", banned)
		}
	}
}

func TestReportDeterministic(t *testing.T) {
	// Byte-identical across renders of the same trace: the report carries
	// no timestamps and iterates everything in a fixed order.
	events := reportEvents(t)
	var a, b bytes.Buffer
	if err := WriteReport(&a, events, SchemaVersion); err != nil {
		t.Fatal(err)
	}
	if err := WriteReport(&b, events, SchemaVersion); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders of the same trace differ")
	}
}

func TestReportDegradesForOldTraces(t *testing.T) {
	// v0/v1 traces carry no stage_ns and no probes; the report must render
	// the sections it can and say why the rest are absent.
	events := []Event{
		{Seq: 0, RateMbps: 6, DataOK: true, DataBytes: 1024},
		{Seq: 1, RateMbps: 24, DataOK: true, DataBytes: 1024,
			ControlBits: 16, ControlOK: true, ControlVerified: true, Silences: 5},
	}
	var b bytes.Buffer
	if err := WriteReport(&b, events, 1); err != nil {
		t.Fatal(err)
	}
	html := b.String()
	if !strings.Contains(html, "predates schema v2") {
		t.Error("report should explain missing stage latencies")
	}
	if !strings.Contains(html, "carries no probes") {
		t.Error("report should explain missing probes")
	}
	if strings.Contains(html, "EVM waterfall (Fig. 7)") {
		t.Error("probe sections should be absent without probes")
	}
	if !strings.Contains(html, "Delivery and outcomes") {
		t.Error("outcome summary must render for old traces")
	}
}

func TestReportRejectsEmptyTrace(t *testing.T) {
	var b bytes.Buffer
	if err := WriteReport(&b, nil, SchemaVersion); err == nil {
		t.Error("empty trace should error")
	}
}
