package trace

import (
	"fmt"
	"html/template"
	"io"
	"sort"
	"strings"

	"cos"
	"cos/internal/ofdm"
)

// WriteReport renders a captured trace as a deterministic, self-contained
// HTML page: delivery/outcome summary, per-stage pipeline latency
// distributions, and — when the trace carries probes (schema v2,
// cos.WithProbe) — the per-subcarrier EVM waterfall, symbol-error and
// erasure maps behind the paper's Figs. 5-7. The output uses inline SVG
// and CSS only (no scripts, no external resources) and is byte-identical
// for identical input, so reports can be diffed and archived alongside
// their traces.
func WriteReport(w io.Writer, events []Event, version int) error {
	s, err := Summarize(events)
	if err != nil {
		return err
	}
	d := buildReportData(events, s, version)
	t, err := template.New("report").Parse(reportTemplate)
	if err != nil {
		return fmt.Errorf("trace: report template: %w", err)
	}
	if err := t.Execute(w, d); err != nil {
		return fmt.Errorf("trace: report: %w", err)
	}
	return nil
}

// maxWaterfallRows bounds the EVM waterfall's height; longer traces are
// downsampled evenly (the report says so — no silent truncation).
const maxWaterfallRows = 64

type statTile struct {
	Label, Value, Detail string
}

type tableRow struct {
	Cells []string
}

type reportSection struct {
	Title, Note string
	SVG         template.HTML
	Rows        []tableRow
	Header      []string
}

type reportData struct {
	Version   int
	Events    int
	Tiles     []statTile
	Sections  []reportSection
	HasProbes bool
}

func buildReportData(events []Event, s *Summary, version int) *reportData {
	d := &reportData{Version: version, Events: s.Events}
	d.Tiles = []statTile{
		{"Events", fmt.Sprintf("%d", s.Events), fmt.Sprintf("schema v%d", version)},
		{"Data PRR", fmt.Sprintf("%.4f", s.DataPRR), "FCS pass rate"},
		{"Control delivery", fmt.Sprintf("%.4f", s.ControlDelivery),
			fmt.Sprintf("%d attempts", s.ControlAttempts)},
		{"Control throughput", fmt.Sprintf("%.0f bit/s", s.ControlThroughputBps),
			fmt.Sprintf("%d bits delivered", s.ControlBitsDelivered)},
		{"Mean measured SNR", fmt.Sprintf("%.1f dB", s.MeanMeasuredSNRdB), "NIC estimate"},
		{"Probes", fmt.Sprintf("%d", s.Probes), "PHY introspection samples"},
	}
	d.Sections = append(d.Sections, outcomeSection(s))
	d.Sections = append(d.Sections, stageSection(events))
	d.Sections = append(d.Sections, controlSection(events, s))

	probes := probeEvents(events)
	d.HasProbes = len(probes) > 0
	if d.HasProbes {
		d.Sections = append(d.Sections, evmMeanSection(probes))
		d.Sections = append(d.Sections, evmWaterfallSection(probes))
		d.Sections = append(d.Sections, errorMapSections(probes)...)
	} else {
		d.Sections = append(d.Sections, reportSection{
			Title: "PHY introspection",
			Note: "This trace carries no probes. Capture with cos-sim -trace out.jsonl " +
				"-probe N (or cos.WithProbe) to record per-subcarrier EVM, symbol-error " +
				"and erasure maps (schema v2).",
		})
	}
	return d
}

func probeEvents(events []Event) []Event {
	var out []Event
	for _, e := range events {
		if e.Probe != nil {
			out = append(out, e)
		}
	}
	return out
}

// --- outcome & control sections ------------------------------------------

func outcomeSection(s *Summary) reportSection {
	sec := reportSection{
		Title:  "Delivery and outcomes",
		Header: []string{"Measure", "Value"},
	}
	rates := make([]int, 0, len(s.RateHistogram))
	for r := range s.RateHistogram {
		rates = append(rates, r)
	}
	sort.Ints(rates)
	var rh strings.Builder
	for i, r := range rates {
		if i > 0 {
			rh.WriteString(", ")
		}
		fmt.Fprintf(&rh, "%d Mb/s: %d", r, s.RateHistogram[r])
	}
	sec.Rows = []tableRow{
		{[]string{"Packets", fmt.Sprintf("%d", s.Events)}},
		{[]string{"Data PRR", fmt.Sprintf("%.4f", s.DataPRR)}},
		{[]string{"Silence symbols inserted", fmt.Sprintf("%d", s.SilencesTotal)}},
		{[]string{"Rate histogram", rh.String()}},
	}
	return sec
}

func controlSection(events []Event, s *Summary) reportSection {
	sec := reportSection{
		Title:  "Interval-decode error breakdown",
		Header: []string{"Outcome", "Count", "Rate"},
	}
	attempts := s.ControlAttempts
	if attempts == 0 {
		sec.Note = "No control bits were embedded in this session."
		return sec
	}
	delivered, verified, silentFail := 0, 0, 0
	for _, e := range events {
		if e.ControlBits == 0 {
			continue
		}
		if e.ControlOK {
			delivered++
		}
		if e.ControlVerified {
			verified++
		}
		if !e.ControlOK && e.FalsePositives == 0 && e.FalseNegatives == 0 {
			silentFail++
		}
	}
	rate := func(n int) string { return fmt.Sprintf("%.4f", float64(n)/float64(attempts)) }
	sec.Rows = []tableRow{
		{[]string{"Control attempts", fmt.Sprintf("%d", attempts), "1.0000"}},
		{[]string{"Delivered (genie comparison)", fmt.Sprintf("%d", delivered), rate(delivered)}},
		{[]string{"CRC-verified", fmt.Sprintf("%d", verified), rate(verified)}},
		{[]string{"Failed", fmt.Sprintf("%d", attempts-delivered), rate(attempts - delivered)}},
		{[]string{"Failed without a detector error on record", fmt.Sprintf("%d", silentFail), rate(silentFail)}},
		{[]string{"Detector false positives (total)", fmt.Sprintf("%d", s.FalsePositives), ""}},
		{[]string{"Detector false negatives (total)", fmt.Sprintf("%d", s.FalseNegatives), ""}},
	}
	sec.Note = "A single detection error shifts every later interval, so one FP/FN " +
		"typically fails the whole message; failures with no recorded detector error " +
		"point at interval framing (start-marker loss) instead."
	return sec
}

// --- stage latency section -----------------------------------------------

func stageSection(events []Event) reportSection {
	sec := reportSection{
		Title:  "Pipeline stage latency",
		Header: []string{"Stage", "Exchanges", "Min", "p50", "Mean", "p95", "Max", "Share"},
	}
	byStage := map[string][]int64{}
	for _, e := range events {
		for st, ns := range e.StageNS {
			byStage[st] = append(byStage[st], ns)
		}
	}
	if len(byStage) == 0 {
		sec.Note = "This trace predates schema v2: no per-stage latencies were recorded."
		return sec
	}
	// Canonical pipeline order first, then any unknown stages (from a
	// newer build) alphabetically.
	order := cos.StageNames()
	known := map[string]bool{}
	for _, st := range order {
		known[st] = true
	}
	var extra []string
	for st := range byStage {
		if !known[st] {
			extra = append(extra, st)
		}
	}
	sort.Strings(extra)
	order = append(order, extra...)

	var total float64
	means := map[string]float64{}
	for st, ns := range byStage {
		var sum int64
		for _, v := range ns {
			sum += v
		}
		means[st] = float64(sum) / float64(len(ns))
		total += float64(sum)
	}
	var svg strings.Builder
	const barH, gap, left, width = 18, 2, 150, 560
	var maxMean float64
	for _, m := range means {
		if m > maxMean {
			maxMean = m
		}
	}
	present := 0
	for _, st := range order {
		if _, ok := byStage[st]; ok {
			present++
		}
	}
	h := present*(barH+gap) + gap
	fmt.Fprintf(&svg, `<svg viewBox="0 0 %d %d" width="%d" height="%d" role="img" aria-label="Mean time per pipeline stage">`,
		left+width+90, h, left+width+90, h)
	y := gap
	for _, st := range order {
		ns, ok := byStage[st]
		if !ok {
			continue
		}
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		mean := means[st]
		w := 0.0
		if maxMean > 0 {
			w = mean / maxMean * width
		}
		var sum int64
		for _, v := range ns {
			sum += v
		}
		share := 0.0
		if total > 0 {
			share = float64(sum) / total
		}
		fmt.Fprintf(&svg, `<text x="%d" y="%d" class="lbl" text-anchor="end">%s</text>`,
			left-8, y+barH-5, template.HTMLEscapeString(st))
		fmt.Fprintf(&svg, `<rect x="%d" y="%d" width="%.1f" height="%d" rx="1.5" class="bar"><title>%s: mean %s over %d exchanges (%.1f%% of pipeline time)</title></rect>`,
			left, y, w, barH, template.HTMLEscapeString(st), fmtNS(mean), len(ns), share*100)
		fmt.Fprintf(&svg, `<text x="%.1f" y="%d" class="val">%s</text>`,
			float64(left)+w+6, y+barH-5, fmtNS(mean))
		sec.Rows = append(sec.Rows, tableRow{[]string{
			st, fmt.Sprintf("%d", len(ns)),
			fmtNS(float64(ns[0])),
			fmtNS(float64(percentile(ns, 0.50))),
			fmtNS(mean),
			fmtNS(float64(percentile(ns, 0.95))),
			fmtNS(float64(ns[len(ns)-1])),
			fmt.Sprintf("%.1f%%", share*100),
		}})
		y += barH + gap
	}
	svg.WriteString(`</svg>`)
	sec.SVG = template.HTML(svg.String())
	sec.Note = "Mean wall-clock time per stage (bar lengths share one scale). " +
		"The table adds min/p50/p95/max across all exchanges that ran the stage."
	return sec
}

// percentile returns the nearest-rank q-quantile of sorted ns.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func fmtNS(ns float64) string {
	switch {
	case ns < 1e3:
		return fmt.Sprintf("%.0f ns", ns)
	case ns < 1e6:
		return fmt.Sprintf("%.1f µs", ns/1e3)
	case ns < 1e9:
		return fmt.Sprintf("%.2f ms", ns/1e6)
	default:
		return fmt.Sprintf("%.2f s", ns/1e9)
	}
}

// --- probe-derived sections ----------------------------------------------

// seqRamp is the sequential blue ramp (light to dark) for magnitude heat
// cells; rampColor interpolates by picking the nearest step.
var seqRamp = []string{
	"#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
	"#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281", "#0d366b",
}

// orangeRamp is the second sequential context (symbol-error heat).
var orangeRamp = []string{
	"#fbe3d8", "#f6c4ab", "#f1a47e", "#ee8a58", "#eb6834", "#d95926", "#b84a1f",
}

func rampColor(ramp []string, t float64) string {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	i := int(t * float64(len(ramp)-1))
	return ramp[i]
}

func evmMeanSection(probes []Event) reportSection {
	sec := reportSection{Title: "Per-subcarrier EVM (Fig. 5)"}
	mean := make([]float64, ofdm.NumData)
	n := make([]int, ofdm.NumData)
	ctrl := map[int]bool{}
	for _, e := range probes {
		for sc, v := range e.Probe.EVM {
			if sc >= ofdm.NumData {
				break
			}
			mean[sc] += v
			n[sc]++
		}
		for _, sc := range e.ControlSubcarriers {
			if sc >= 0 && sc < ofdm.NumData {
				ctrl[sc] = true
			}
		}
	}
	var maxV float64
	for sc := range mean {
		if n[sc] > 0 {
			mean[sc] /= float64(n[sc])
		}
		if mean[sc] > maxV {
			maxV = mean[sc]
		}
	}
	sec.SVG = barChart(mean, maxV, func(sc int) string {
		if ctrl[sc] {
			return "#eb6834"
		}
		return "#2a78d6"
	}, func(sc int) string {
		role := "data"
		if ctrl[sc] {
			role = "control"
		}
		return fmt.Sprintf("subcarrier %d (%s): mean EVM %.4f", sc, role, mean[sc])
	}, fmt.Sprintf("%.3f", maxV))
	sec.Note = "Mean EVM per data subcarrier across all probes. Orange bars are " +
		"subcarriers the link selected for control at least once — EVM-guided " +
		"selection should put them on the weak (high-EVM) columns."
	return sec
}

func evmWaterfallSection(probes []Event) reportSection {
	sec := reportSection{Title: "EVM waterfall (Fig. 7)"}
	rows := sampleRows(probes)
	var maxV float64
	for _, e := range rows {
		for _, v := range e.Probe.EVM {
			if v > maxV {
				maxV = v
			}
		}
	}
	sec.SVG = heatmap(rows, maxV, seqRamp,
		func(e Event, sc int) float64 {
			if sc < len(e.Probe.EVM) {
				return e.Probe.EVM[sc]
			}
			return 0
		},
		func(e Event, sc int, v float64) string {
			return fmt.Sprintf("pkt %d, subcarrier %d: EVM %.4f", e.Seq, sc, v)
		})
	sec.Note = waterfallNote(len(rows), len(probes),
		fmt.Sprintf("Cell color: EVM from near 0 (light) to %.3f (dark). "+
			"Stable dark columns are the persistent weak subcarriers the paper exploits.", maxV))
	return sec
}

func errorMapSections(probes []Event) []reportSection {
	rows := sampleRows(probes)
	// Per-subcarrier totals across all probes.
	errCounts := make([]float64, ofdm.NumData)
	eraseCounts := make([]float64, ofdm.NumData)
	for _, e := range probes {
		for _, pos := range e.Probe.SymbolErrorPositions {
			errCounts[pos%ofdm.NumData]++
		}
		for _, pos := range e.Probe.ErasurePositions {
			eraseCounts[pos%ofdm.NumData]++
		}
	}
	maxOf := func(v []float64) float64 {
		var m float64
		for _, x := range v {
			if x > m {
				m = x
			}
		}
		return m
	}

	errSec := reportSection{Title: "Symbol errors per subcarrier (Fig. 6)"}
	maxE := maxOf(errCounts)
	errSec.SVG = barChart(errCounts, maxE, func(int) string { return "#eb6834" },
		func(sc int) string {
			return fmt.Sprintf("subcarrier %d: %.0f symbol errors", sc, errCounts[sc])
		}, fmt.Sprintf("%.0f", maxE))
	errSec.Note = "Demodulation symbol errors per data subcarrier, summed over probes " +
		"(erased positions excluded). The concentration on a few columns is the " +
		"frequency-selective error pattern of Fig. 6."

	per := make([]float64, ofdm.NumData)
	copy(per, eraseCounts)
	eraseSec := reportSection{Title: "Erasure map"}
	maxEr := maxOf(per)
	eraseSec.SVG = barChart(per, maxEr, func(int) string { return "#2a78d6" },
		func(sc int) string {
			return fmt.Sprintf("subcarrier %d: %.0f erasures", sc, per[sc])
		}, fmt.Sprintf("%.0f", maxEr))
	eraseSec.Note = "Positions the energy detector declared silent (and the EVD " +
		"erased), per subcarrier. These should sit on the control set."

	wf := reportSection{Title: "Symbol-error waterfall"}
	var maxCell float64
	cell := func(e Event, sc int) float64 {
		var c float64
		for _, pos := range e.Probe.SymbolErrorPositions {
			if pos%ofdm.NumData == sc {
				c++
			}
		}
		return c
	}
	for _, e := range rows {
		for sc := 0; sc < ofdm.NumData; sc++ {
			if v := cell(e, sc); v > maxCell {
				maxCell = v
			}
		}
	}
	wf.SVG = heatmap(rows, maxCell, orangeRamp, cell,
		func(e Event, sc int, v float64) string {
			return fmt.Sprintf("pkt %d, subcarrier %d: %.0f symbol errors", e.Seq, sc, v)
		})
	wf.Note = waterfallNote(len(rows), len(probes),
		fmt.Sprintf("Cell color: symbol errors in that packet on that subcarrier, 0 (light) to %.0f (dark).", maxCell))
	return []reportSection{errSec, eraseSec, wf}
}

func waterfallNote(shown, total int, detail string) string {
	if shown < total {
		return fmt.Sprintf("Showing %d of %d probes (evenly downsampled). %s", shown, total, detail)
	}
	return fmt.Sprintf("One row per probe (%d), oldest at the top. %s", total, detail)
}

// sampleRows evenly downsamples probes to maxWaterfallRows, keeping order.
func sampleRows(probes []Event) []Event {
	if len(probes) <= maxWaterfallRows {
		return probes
	}
	out := make([]Event, 0, maxWaterfallRows)
	for i := 0; i < maxWaterfallRows; i++ {
		out = append(out, probes[i*len(probes)/maxWaterfallRows])
	}
	return out
}

// barChart renders one thin bar per data subcarrier with a shared scale.
func barChart(vals []float64, maxV float64, color func(int) string, title func(int) string, maxLabel string) template.HTML {
	const barW, gap, height, bottom, left = 12, 2, 120, 18, 40
	width := left + len(vals)*(barW+gap) + 10
	var svg strings.Builder
	fmt.Fprintf(&svg, `<svg viewBox="0 0 %d %d" width="%d" height="%d" role="img" aria-label="Per-subcarrier chart">`,
		width, height+bottom, width, height+bottom)
	fmt.Fprintf(&svg, `<line x1="%d" y1="%d" x2="%d" y2="%d" class="axis"/>`,
		left, height, width-4, height)
	fmt.Fprintf(&svg, `<text x="%d" y="10" class="lbl" text-anchor="end">%s</text>`, left-6, maxLabel)
	fmt.Fprintf(&svg, `<text x="%d" y="%d" class="lbl" text-anchor="end">0</text>`, left-6, height)
	for sc, v := range vals {
		h := 0.0
		if maxV > 0 {
			h = v / maxV * float64(height-8)
		}
		x := left + sc*(barW+gap)
		fmt.Fprintf(&svg, `<rect x="%d" y="%.1f" width="%d" height="%.1f" rx="1.5" fill="%s"><title>%s</title></rect>`,
			x, float64(height)-h, barW, h, color(sc), template.HTMLEscapeString(title(sc)))
		if sc%8 == 0 {
			fmt.Fprintf(&svg, `<text x="%d" y="%d" class="lbl" text-anchor="middle">%d</text>`,
				x+barW/2, height+14, sc)
		}
	}
	svg.WriteString(`</svg>`)
	return template.HTML(svg.String())
}

// heatmap renders one row per probe event, one cell per data subcarrier.
func heatmap(rows []Event, maxV float64, ramp []string, value func(Event, int) float64, title func(Event, int, float64) string) template.HTML {
	const cellW, cellH, gap, left = 13, 10, 2, 52
	width := left + ofdm.NumData*(cellW+gap) + 10
	height := len(rows)*(cellH+gap) + 20
	var svg strings.Builder
	fmt.Fprintf(&svg, `<svg viewBox="0 0 %d %d" width="%d" height="%d" role="img" aria-label="Waterfall heatmap">`,
		width, height, width, height)
	for r, e := range rows {
		y := r * (cellH + gap)
		if r%8 == 0 {
			fmt.Fprintf(&svg, `<text x="%d" y="%d" class="lbl" text-anchor="end">pkt %d</text>`,
				left-6, y+cellH-1, e.Seq)
		}
		for sc := 0; sc < ofdm.NumData; sc++ {
			v := value(e, sc)
			t := 0.0
			if maxV > 0 {
				t = v / maxV
			}
			fmt.Fprintf(&svg, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"><title>%s</title></rect>`,
				left+sc*(cellW+gap), y, cellW, cellH, rampColor(ramp, t),
				template.HTMLEscapeString(title(e, sc, v)))
		}
	}
	y := len(rows)*(cellH+gap) + 14
	for sc := 0; sc < ofdm.NumData; sc += 8 {
		fmt.Fprintf(&svg, `<text x="%d" y="%d" class="lbl" text-anchor="middle">%d</text>`,
			left+sc*(cellW+gap)+cellW/2, y, sc)
	}
	svg.WriteString(`</svg>`)
	return template.HTML(svg.String())
}

const reportTemplate = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>CoS flight recorder report</title>
<style>
  :root { color-scheme: light; }
  body {
    margin: 2rem auto; max-width: 960px; padding: 0 1rem;
    background: #fcfcfb; color: #0b0b0b;
    font: 15px/1.5 system-ui, sans-serif;
  }
  h1 { font-size: 1.4rem; }
  h2 { font-size: 1.1rem; margin-top: 2rem; border-bottom: 1px solid #e4e3df; padding-bottom: .3rem; }
  .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 1rem 0; }
  .tile { background: #f4f3f0; border-radius: 8px; padding: 10px 14px; min-width: 130px; }
  .tile .v { font-size: 1.3rem; font-weight: 600; }
  .tile .l { color: #52514e; font-size: .8rem; }
  .tile .d { color: #83827d; font-size: .75rem; }
  table { border-collapse: collapse; margin: .8rem 0; }
  th, td { text-align: left; padding: 4px 14px 4px 0; border-bottom: 1px solid #eceae6; font-variant-numeric: tabular-nums; }
  th { color: #52514e; font-weight: 600; font-size: .85rem; }
  .note { color: #52514e; font-size: .85rem; max-width: 70ch; }
  svg { display: block; margin: .8rem 0; max-width: 100%; height: auto; }
  svg .lbl { font: 11px system-ui, sans-serif; fill: #52514e; }
  svg .val { font: 11px system-ui, sans-serif; fill: #0b0b0b; }
  svg .bar { fill: #2a78d6; }
  svg .axis { stroke: #c9c7c1; stroke-width: 1; }
  .legend { display: flex; gap: 16px; color: #52514e; font-size: .85rem; align-items: center; }
  .swatch { display: inline-block; width: 12px; height: 12px; border-radius: 3px; margin-right: 5px; vertical-align: -1px; }
</style>
</head>
<body>
<h1>CoS flight recorder report</h1>
<p class="note">Rendered by <code>cos-trace report</code> from a schema v{{.Version}} trace
({{.Events}} events). Sections without recorded data say so explicitly.</p>
<div class="tiles">
{{range .Tiles}}  <div class="tile"><div class="v">{{.Value}}</div><div class="l">{{.Label}}</div><div class="d">{{.Detail}}</div></div>
{{end}}</div>
{{range .Sections}}<h2>{{.Title}}</h2>
{{if .SVG}}{{.SVG}}{{end}}
{{if eq .Title "Per-subcarrier EVM (Fig. 5)"}}<div class="legend"><span><span class="swatch" style="background:#2a78d6"></span>data subcarrier</span><span><span class="swatch" style="background:#eb6834"></span>selected for control</span></div>
{{end}}{{if .Rows}}<table>
<tr>{{range .Header}}<th>{{.}}</th>{{end}}</tr>
{{range .Rows}}<tr>{{range .Cells}}<td>{{.}}</td>{{end}}</tr>
{{end}}</table>
{{end}}{{if .Note}}<p class="note">{{.Note}}</p>
{{end}}{{end}}
</body>
</html>
`
