// Package trace records link sessions as JSON-lines event streams and
// computes offline statistics over them. A trace decouples *running* a
// (slow, simulated) radio session from *analyzing* it: capture once with
// cos-sim -trace, then slice delivery rates, detection accuracy, or
// control throughput without re-simulating.
//
// Capture rides the link's observer hook: attach Writer.Observer with
// cos.WithObserver and every exchange the link completes lands in the
// trace — the same event stream the metrics layer consumes (DESIGN.md
// §trace, README §Observability).
//
// Files begin with a schema header line ({"cos_trace_schema":1}) so
// readers can tell versions apart; Read tolerates files without one (the
// pre-versioning format) and ignores unknown fields on events, so traces
// written by newer, more instrumented builds still load.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"cos"
)

// SchemaVersion is the trace-file schema this package writes. Version 1
// is the first self-describing format; files with no header are treated
// as version 0 (same event fields, no header line).
const SchemaVersion = 1

// header is the first line of a versioned trace file.
type header struct {
	Schema int `json:"cos_trace_schema"`
}

// Event is one packet exchange, flattened for serialization.
type Event struct {
	// Seq is the 0-based packet index within the session.
	Seq int `json:"seq"`
	// Time is the simulation timestamp in seconds.
	Time float64 `json:"time"`
	// RateMbps is the data mode used.
	RateMbps int `json:"rate_mbps"`
	// DataOK reports FCS success.
	DataOK bool `json:"data_ok"`
	// DataBytes is the payload size.
	DataBytes int `json:"data_bytes"`
	// ControlBits is the number of control bits embedded (0 = none).
	ControlBits int `json:"control_bits"`
	// ControlOK reports control delivery (genie comparison).
	ControlOK bool `json:"control_ok"`
	// ControlVerified reports CRC-framing validation.
	ControlVerified bool `json:"control_verified"`
	// Silences is the silence-symbol count inserted.
	Silences int `json:"silences"`
	// FalsePositives / FalseNegatives are the detector's errors.
	FalsePositives int `json:"false_positives"`
	FalseNegatives int `json:"false_negatives"`
	// MeasuredSNRdB / ActualSNRdB are the SNR observations.
	MeasuredSNRdB float64 `json:"measured_snr_db"`
	ActualSNRdB   float64 `json:"actual_snr_db"`
	// ControlSubcarriers is the control set used.
	ControlSubcarriers []int `json:"control_subcarriers,omitempty"`
}

// FromExchange flattens a link exchange into an event.
func FromExchange(seq int, ex *cos.Exchange, dataBytes int) Event {
	return Event{
		Seq:                seq,
		Time:               ex.Time,
		RateMbps:           ex.Mode.RateMbps,
		DataOK:             ex.DataOK,
		DataBytes:          dataBytes,
		ControlBits:        len(ex.ControlSent),
		ControlOK:          ex.ControlOK,
		ControlVerified:    ex.ControlVerified,
		Silences:           ex.SilencesInserted,
		FalsePositives:     ex.Detection.FalsePositives,
		FalseNegatives:     ex.Detection.FalseNegatives,
		MeasuredSNRdB:      ex.MeasuredSNRdB,
		ActualSNRdB:        ex.ActualSNRdB,
		ControlSubcarriers: ex.ControlSubcarriers,
	}
}

// Writer streams events as JSON lines, prefixed by the schema header.
type Writer struct {
	w         *bufio.Writer
	enc       *json.Encoder
	n         int
	headerErr error
	wroteHdr  bool
	obsErr    error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// Write appends one event; the first call emits the schema header line.
func (t *Writer) Write(e Event) error {
	if !t.wroteHdr {
		t.wroteHdr = true
		if err := t.enc.Encode(header{Schema: SchemaVersion}); err != nil {
			t.headerErr = fmt.Errorf("trace: header: %w", err)
		}
	}
	if t.headerErr != nil {
		return t.headerErr
	}
	if err := t.enc.Encode(e); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	t.n++
	return nil
}

// Observer returns a sink for the link's exchange stream: attach it with
// cos.WithObserver and every completed exchange is appended to the trace
// with its on-link sequence number. Write errors are deferred to Err,
// since observers cannot fail the exchange.
//
// The exchange is cloned before flattening: the observer contract says the
// link may reuse the exchange (and its slices) after the callback returns,
// and the flattened event aliases ControlSubcarriers.
func (t *Writer) Observer() cos.Observer {
	return func(ex *cos.Exchange) {
		if t.obsErr != nil {
			return
		}
		ex = ex.Clone()
		if err := t.Write(FromExchange(ex.Seq, ex, ex.DataBytes)); err != nil {
			t.obsErr = err
		}
	}
}

// Err returns the first error an Observer write hit, if any.
func (t *Writer) Err() error { return t.obsErr }

// Count returns the number of events written (the header is not an
// event).
func (t *Writer) Count() int { return t.n }

// Flush drains buffered output; call before closing the underlying file.
func (t *Writer) Flush() error { return t.w.Flush() }

// Read loads every event from a JSON-lines stream. A leading schema
// header is consumed when present (its absence means a version-0 file);
// unknown fields on events are ignored, so traces from newer builds with
// extra instrumentation still load.
func Read(r io.Reader) ([]Event, error) {
	events, _, err := ReadVersioned(r)
	return events, err
}

// ReadVersioned is Read, also reporting the file's schema version (0 for
// headerless pre-versioning files).
func ReadVersioned(r io.Reader) ([]Event, int, error) {
	var out []Event
	version := 0
	dec := json.NewDecoder(r)
	first := true
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			return nil, version, fmt.Errorf("trace: event %d: %w", len(out), err)
		}
		if first {
			first = false
			var h header
			if err := json.Unmarshal(raw, &h); err == nil && h.Schema > 0 {
				version = h.Schema
				continue
			}
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, version, fmt.Errorf("trace: event %d: %w", len(out), err)
		}
		out = append(out, e)
	}
	return out, version, nil
}

// Summary aggregates a trace.
type Summary struct {
	// Events is the packet count.
	Events int
	// DataPRR is the fraction of packets whose data survived.
	DataPRR float64
	// ControlAttempts counts packets that carried control bits.
	ControlAttempts int
	// ControlDelivery is the fraction of attempts delivered (genie).
	ControlDelivery float64
	// ControlVerifiedRate is the fraction of attempts CRC-verified.
	ControlVerifiedRate float64
	// ControlBitsDelivered totals delivered control payload bits.
	ControlBitsDelivered int
	// ControlThroughputBps is delivered control bits over the session span.
	ControlThroughputBps float64
	// SilencesTotal counts inserted silence symbols.
	SilencesTotal int
	// FPRate and FNRate are detector error totals normalized by scanned
	// silences/normals... approximated per packet counts here.
	FalsePositives, FalseNegatives int
	// MeanMeasuredSNRdB averages the NIC SNR reports.
	MeanMeasuredSNRdB float64
	// RateHistogram counts packets per data rate.
	RateHistogram map[int]int
}

// Summarize computes aggregate statistics over events.
func Summarize(events []Event) (*Summary, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	s := &Summary{Events: len(events), RateHistogram: map[int]int{}}
	dataOK := 0
	ctrlOK, ctrlVerified := 0, 0
	var snrSum float64
	var tMin, tMax float64
	for i, e := range events {
		if e.DataOK {
			dataOK++
		}
		if e.ControlBits > 0 {
			s.ControlAttempts++
			if e.ControlOK {
				ctrlOK++
				s.ControlBitsDelivered += e.ControlBits
			}
			if e.ControlVerified {
				ctrlVerified++
			}
		}
		s.SilencesTotal += e.Silences
		s.FalsePositives += e.FalsePositives
		s.FalseNegatives += e.FalseNegatives
		snrSum += e.MeasuredSNRdB
		s.RateHistogram[e.RateMbps]++
		if i == 0 || e.Time < tMin {
			tMin = e.Time
		}
		if i == 0 || e.Time > tMax {
			tMax = e.Time
		}
	}
	s.DataPRR = float64(dataOK) / float64(len(events))
	if s.ControlAttempts > 0 {
		s.ControlDelivery = float64(ctrlOK) / float64(s.ControlAttempts)
		s.ControlVerifiedRate = float64(ctrlVerified) / float64(s.ControlAttempts)
	}
	s.MeanMeasuredSNRdB = snrSum / float64(len(events))
	if span := tMax - tMin; span > 0 {
		s.ControlThroughputBps = float64(s.ControlBitsDelivered) / span
	}
	return s, nil
}
