// Package trace records link sessions as JSON-lines event streams and
// computes offline statistics over them. A trace decouples *running* a
// (slow, simulated) radio session from *analyzing* it: capture once with
// cos-sim -trace, then slice delivery rates, detection accuracy, or
// control throughput without re-simulating.
//
// Capture rides the link's observer hook: attach Writer.Observer with
// cos.WithObserver and every exchange the link completes lands in the
// trace — the same event stream the metrics layer consumes (DESIGN.md
// §trace, README §Observability).
//
// Files begin with a schema header line ({"cos_trace_schema":2}) so
// readers can tell versions apart; Read tolerates files without one (the
// pre-versioning v0 format) and v1 files (per-packet outcomes only), and
// ignores unknown fields on events, so traces written by newer, more
// instrumented builds still load.
//
// Schema v2 is the flight recorder: every event carries the per-stage
// pipeline latencies of its exchange (stage_ns, from the span layer in
// internal/obs), and sampled events carry a deep PHY introspection probe
// (per-subcarrier EVM, symbol-error waterfall, erasure positions,
// detector energy margins — captured with cos.WithProbe). cos-trace
// report renders a captured session's probes and spans as a
// self-contained HTML file.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"cos"
)

// SchemaVersion is the trace-file schema this package writes. Version 2
// adds per-stage pipeline latencies (stage_ns) and sampled PHY probes to
// every event; version 1 was the first self-describing format; files with
// no header are treated as version 0 (v1 event fields, no header line).
// Readers accept all three.
const SchemaVersion = 2

// header is the first line of a versioned trace file.
type header struct {
	Schema int `json:"cos_trace_schema"`
}

// Event is one packet exchange, flattened for serialization.
type Event struct {
	// Seq is the 0-based packet index within the session.
	Seq int `json:"seq"`
	// Time is the simulation timestamp in seconds.
	Time float64 `json:"time"`
	// RateMbps is the data mode used.
	RateMbps int `json:"rate_mbps"`
	// DataOK reports FCS success.
	DataOK bool `json:"data_ok"`
	// DataBytes is the payload size.
	DataBytes int `json:"data_bytes"`
	// ControlBits is the number of control bits embedded (0 = none).
	ControlBits int `json:"control_bits"`
	// ControlOK reports control delivery (genie comparison).
	ControlOK bool `json:"control_ok"`
	// ControlVerified reports CRC-framing validation.
	ControlVerified bool `json:"control_verified"`
	// Silences is the silence-symbol count inserted.
	Silences int `json:"silences"`
	// FalsePositives / FalseNegatives are the detector's errors.
	FalsePositives int `json:"false_positives"`
	FalseNegatives int `json:"false_negatives"`
	// MeasuredSNRdB / ActualSNRdB are the SNR observations.
	MeasuredSNRdB float64 `json:"measured_snr_db"`
	ActualSNRdB   float64 `json:"actual_snr_db"`
	// ControlSubcarriers is the control set used.
	ControlSubcarriers []int `json:"control_subcarriers,omitempty"`
	// StageNS maps pipeline stage names (cos.StageNames) to the wall-clock
	// nanoseconds this exchange spent in them (schema v2; absent in v0/v1
	// traces and for stages that did not run).
	StageNS map[string]int64 `json:"stage_ns,omitempty"`
	// Probe is the deep PHY introspection sample for exchanges captured
	// with cos.WithProbe (schema v2; nil on unsampled events).
	Probe *ProbeRecord `json:"probe,omitempty"`
}

// ProbeRecord is the serialized form of cos.Probe: the per-subcarrier
// state behind the paper's Figs. 5-7. Flattened positions are
// symbol-major (pos = symbol*48 + subcarrier).
type ProbeRecord struct {
	NumSymbols            int       `json:"num_symbols"`
	EVM                   []float64 `json:"evm,omitempty"`
	ErrorVectors          []float64 `json:"error_vectors,omitempty"`
	SubcarrierErrorCounts []int     `json:"subcarrier_error_counts,omitempty"`
	SubcarrierSymbols     []int     `json:"subcarrier_symbols,omitempty"`
	SymbolErrorPositions  []int     `json:"symbol_error_positions,omitempty"`
	ErasurePositions      []int     `json:"erasure_positions,omitempty"`
	DecoderInputBitErrors int       `json:"decoder_input_bit_errors,omitempty"`
	DecoderInputBits      int       `json:"decoder_input_bits,omitempty"`
	DetectorThresholds    []float64 `json:"detector_thresholds,omitempty"`
	DetectorEnergyRatios  []float64 `json:"detector_energy_ratios,omitempty"`
	NoiseVar              float64   `json:"noise_var,omitempty"`
}

// fromProbe flattens a cos.Probe (sharing slices: events are written
// immediately and the probe is already a clone on the observer path).
func fromProbe(p *cos.Probe) *ProbeRecord {
	if p == nil {
		return nil
	}
	return &ProbeRecord{
		NumSymbols:            p.NumSymbols,
		EVM:                   p.EVM,
		ErrorVectors:          p.ErrorVectors,
		SubcarrierErrorCounts: p.SubcarrierErrorCounts,
		SubcarrierSymbols:     p.SubcarrierSymbols,
		SymbolErrorPositions:  p.SymbolErrorPositions,
		ErasurePositions:      p.ErasurePositions,
		DecoderInputBitErrors: p.DecoderInputBitErrors,
		DecoderInputBits:      p.DecoderInputBits,
		DetectorThresholds:    p.DetectorThresholds,
		DetectorEnergyRatios:  p.DetectorEnergyRatios,
		NoiseVar:              p.NoiseVar,
	}
}

// FromExchange flattens a link exchange into an event.
func FromExchange(seq int, ex *cos.Exchange, dataBytes int) Event {
	var stageNS map[string]int64
	for i, ns := range ex.StageNS {
		if ns <= 0 {
			continue
		}
		if stageNS == nil {
			stageNS = make(map[string]int64, len(ex.StageNS))
		}
		stageNS[cos.Stage(i).String()] = ns
	}
	return Event{
		Seq:                seq,
		Time:               ex.Time,
		RateMbps:           ex.Mode.RateMbps,
		DataOK:             ex.DataOK,
		DataBytes:          dataBytes,
		ControlBits:        len(ex.ControlSent),
		ControlOK:          ex.ControlOK,
		ControlVerified:    ex.ControlVerified,
		Silences:           ex.SilencesInserted,
		FalsePositives:     ex.Detection.FalsePositives,
		FalseNegatives:     ex.Detection.FalseNegatives,
		MeasuredSNRdB:      ex.MeasuredSNRdB,
		ActualSNRdB:        ex.ActualSNRdB,
		ControlSubcarriers: ex.ControlSubcarriers,
		StageNS:            stageNS,
		Probe:              fromProbe(ex.Probe),
	}
}

// Writer streams events as JSON lines, prefixed by the schema header.
type Writer struct {
	w         *bufio.Writer
	enc       *json.Encoder
	n         int
	headerErr error
	wroteHdr  bool
	obsErr    error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// WriteHeader emits the schema header line if it has not been written
// yet. Write does this implicitly on the first event; callers that may be
// cancelled before any event lands (cos-sim under SIGINT) call it up
// front so even an empty or truncated capture is a well-formed, versioned
// trace.
func (t *Writer) WriteHeader() error {
	if !t.wroteHdr {
		t.wroteHdr = true
		if err := t.enc.Encode(header{Schema: SchemaVersion}); err != nil {
			t.headerErr = fmt.Errorf("trace: header: %w", err)
		}
	}
	return t.headerErr
}

// Write appends one event; the first call emits the schema header line.
func (t *Writer) Write(e Event) error {
	if err := t.WriteHeader(); err != nil {
		return err
	}
	if err := t.enc.Encode(e); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	t.n++
	return nil
}

// Observer returns a sink for the link's exchange stream: attach it with
// cos.WithObserver and every completed exchange is appended to the trace
// with its on-link sequence number. Write errors are deferred to Err,
// since observers cannot fail the exchange.
//
// The exchange is cloned before flattening: the observer contract says the
// link may reuse the exchange (and its slices) after the callback returns,
// and the flattened event aliases ControlSubcarriers.
func (t *Writer) Observer() cos.Observer {
	return func(ex *cos.Exchange) {
		if t.obsErr != nil {
			return
		}
		ex = ex.Clone()
		if err := t.Write(FromExchange(ex.Seq, ex, ex.DataBytes)); err != nil {
			t.obsErr = err
		}
	}
}

// Err returns the first error an Observer write hit, if any.
func (t *Writer) Err() error { return t.obsErr }

// Count returns the number of events written (the header is not an
// event).
func (t *Writer) Count() int { return t.n }

// Flush drains buffered output; call before closing the underlying file.
func (t *Writer) Flush() error { return t.w.Flush() }

// FormatError reports a record in a trace stream that failed to parse.
// Event is the index of the offending record; 0 means the stream broke at
// the header position (the file is not a trace at all), which tools treat
// as a usage error rather than a data error.
type FormatError struct {
	Event int
	Err   error
}

func (e *FormatError) Error() string { return fmt.Sprintf("trace: event %d: %v", e.Event, e.Err) }
func (e *FormatError) Unwrap() error { return e.Err }

// Read loads every event from a JSON-lines stream. A leading schema
// header is consumed when present (its absence means a version-0 file);
// unknown fields on events are ignored, so traces from newer builds with
// extra instrumentation still load.
func Read(r io.Reader) ([]Event, error) {
	events, _, err := ReadVersioned(r)
	return events, err
}

// ReadVersioned is Read, also reporting the file's schema version (0 for
// headerless pre-versioning files). Parse failures are returned as
// *FormatError.
func ReadVersioned(r io.Reader) ([]Event, int, error) {
	var out []Event
	version := 0
	dec := json.NewDecoder(r)
	first := true
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			return nil, version, &FormatError{Event: len(out), Err: err}
		}
		if first {
			first = false
			var h header
			if err := json.Unmarshal(raw, &h); err == nil && h.Schema > 0 {
				version = h.Schema
				continue
			}
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, version, &FormatError{Event: len(out), Err: err}
		}
		out = append(out, e)
	}
	return out, version, nil
}

// Summary aggregates a trace.
type Summary struct {
	// Events is the packet count.
	Events int
	// DataPRR is the fraction of packets whose data survived.
	DataPRR float64
	// ControlAttempts counts packets that carried control bits.
	ControlAttempts int
	// ControlDelivery is the fraction of attempts delivered (genie).
	ControlDelivery float64
	// ControlVerifiedRate is the fraction of attempts CRC-verified.
	ControlVerifiedRate float64
	// ControlBitsDelivered totals delivered control payload bits.
	ControlBitsDelivered int
	// ControlThroughputBps is delivered control bits over the session span.
	ControlThroughputBps float64
	// SilencesTotal counts inserted silence symbols.
	SilencesTotal int
	// FPRate and FNRate are detector error totals normalized by scanned
	// silences/normals... approximated per packet counts here.
	FalsePositives, FalseNegatives int
	// MeanMeasuredSNRdB averages the NIC SNR reports.
	MeanMeasuredSNRdB float64
	// RateHistogram counts packets per data rate.
	RateHistogram map[int]int
	// Probes counts events carrying a PHY introspection probe (schema v2).
	Probes int
	// StageNSTotals sums per-stage pipeline nanoseconds across all events
	// that recorded them (schema v2); empty for v0/v1 traces.
	StageNSTotals map[string]int64
}

// Summarize computes aggregate statistics over events.
func Summarize(events []Event) (*Summary, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	s := &Summary{Events: len(events), RateHistogram: map[int]int{}, StageNSTotals: map[string]int64{}}
	dataOK := 0
	ctrlOK, ctrlVerified := 0, 0
	var snrSum float64
	var tMin, tMax float64
	for i, e := range events {
		if e.DataOK {
			dataOK++
		}
		if e.ControlBits > 0 {
			s.ControlAttempts++
			if e.ControlOK {
				ctrlOK++
				s.ControlBitsDelivered += e.ControlBits
			}
			if e.ControlVerified {
				ctrlVerified++
			}
		}
		s.SilencesTotal += e.Silences
		s.FalsePositives += e.FalsePositives
		s.FalseNegatives += e.FalseNegatives
		snrSum += e.MeasuredSNRdB
		s.RateHistogram[e.RateMbps]++
		if e.Probe != nil {
			s.Probes++
		}
		for stage, ns := range e.StageNS {
			s.StageNSTotals[stage] += ns
		}
		if i == 0 || e.Time < tMin {
			tMin = e.Time
		}
		if i == 0 || e.Time > tMax {
			tMax = e.Time
		}
	}
	s.DataPRR = float64(dataOK) / float64(len(events))
	if s.ControlAttempts > 0 {
		s.ControlDelivery = float64(ctrlOK) / float64(s.ControlAttempts)
		s.ControlVerifiedRate = float64(ctrlVerified) / float64(s.ControlAttempts)
	}
	s.MeanMeasuredSNRdB = snrSum / float64(len(events))
	if span := tMax - tMin; span > 0 {
		s.ControlThroughputBps = float64(s.ControlBitsDelivered) / span
	}
	return s, nil
}
