// Package wlan simulates a small infrastructure WLAN that uses CoS for the
// application the paper's introduction motivates: access coordination. An
// AP streams downlink data and piggybacks each next transmission grant
// (station + slot count) as a free control message inside the data packet;
// the baseline design spends airtime on explicit grant frames instead.
//
// Every frame — data, CoS control, and explicit grants — crosses the real
// simulated PHY, so grant losses, data losses, and detection errors all
// emerge from the same mechanisms the rest of the repository measures.
package wlan

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"

	"cos"
	"cos/internal/obs"
	"cos/internal/scenario"
)

// Coordination metrics: grant delivery split by transport and the airtime
// ledger the CoS-vs-explicit comparison is built on.
var (
	mGrantsDelivered = obs.Default().CounterFamily("wlan_grants_delivered_total",
		"Coordination grants delivered, by transport (cos or explicit).", "transport")
	mGrantsLost = obs.Default().CounterFamily("wlan_grants_lost_total",
		"Coordination grants lost, by transport (cos or explicit).", "transport")
	mRounds = obs.Default().Counter("wlan_rounds_total",
		"Scheduling rounds executed.")
	mIdleRounds = obs.Default().Counter("wlan_idle_rounds_total",
		"Rounds idled because the previous grant never arrived.")
	mDataAirtime = obs.Default().Gauge("wlan_data_airtime_seconds",
		"Accumulated airtime spent on data frames.")
	mControlAirtime = obs.Default().Gauge("wlan_control_airtime_seconds",
		"Accumulated airtime spent on explicit coordination frames.")
	mGrantedStation = obs.Default().CounterFamily("wlan_station_grants_total",
		"Grants issued per station.", "station")
)

// StationID identifies a station (1-based).
type StationID int

// Grant is one coordination message: the station granted the next
// transmission opportunity and its length in slots. It encodes in 16 bits
// (4 bits station, 8 bits slots, 4 bits sequence).
type Grant struct {
	// Station is the granted station (1..15).
	Station StationID
	// Slots is the TXOP length in slots (0..255).
	Slots int
	// Seq is a 4-bit sequence number for duplicate detection.
	Seq int
}

// GrantBits is the encoded grant length.
const GrantBits = 16

// Bits encodes the grant MSB-first.
func (g Grant) Bits() ([]byte, error) {
	if g.Station < 1 || g.Station > 15 {
		return nil, fmt.Errorf("wlan: station %d outside [1,15]", g.Station)
	}
	if g.Slots < 0 || g.Slots > 255 {
		return nil, fmt.Errorf("wlan: slots %d outside [0,255]", g.Slots)
	}
	if g.Seq < 0 || g.Seq > 15 {
		return nil, fmt.Errorf("wlan: seq %d outside [0,15]", g.Seq)
	}
	out := make([]byte, 0, GrantBits)
	push := func(v, n int) {
		for i := n - 1; i >= 0; i-- {
			out = append(out, byte((v>>i)&1))
		}
	}
	push(int(g.Station), 4)
	push(g.Slots, 8)
	push(g.Seq, 4)
	return out, nil
}

// ParseGrant decodes a grant from at least GrantBits bits.
func ParseGrant(bits []byte) (Grant, error) {
	if len(bits) < GrantBits {
		return Grant{}, fmt.Errorf("wlan: grant needs %d bits, got %d", GrantBits, len(bits))
	}
	pop := func(off, n int) int {
		v := 0
		for i := 0; i < n; i++ {
			v = v<<1 | int(bits[off+i])
		}
		return v
	}
	g := Grant{
		Station: StationID(pop(0, 4)),
		Slots:   pop(4, 8),
		Seq:     pop(12, 4),
	}
	if g.Station < 1 {
		return Grant{}, fmt.Errorf("wlan: decoded station 0")
	}
	return g, nil
}

// Coordination selects how grants reach stations.
type Coordination int

const (
	// CoordCoS piggybacks grants on data packets via symbol silence.
	CoordCoS Coordination = iota + 1
	// CoordExplicit sends each grant as its own frame at the base rate.
	CoordExplicit
)

// String names the scheme.
func (c Coordination) String() string {
	switch c {
	case CoordCoS:
		return "CoS"
	case CoordExplicit:
		return "explicit"
	default:
		return fmt.Sprintf("Coordination(%d)", int(c))
	}
}

// Config parameterizes a network.
type Config struct {
	// Stations is the station count (1..15; default 3).
	Stations int
	// SNRdB is each downlink's true SNR (default 18).
	SNRdB float64
	// Position selects the channel geometry (default PositionB; each
	// station gets an independent variant of it).
	Position cos.Position
	// PayloadBytes is the data frame payload (default 1024).
	PayloadBytes int
	// Coordination selects the grant transport (default CoordCoS).
	Coordination Coordination
	// Seed drives all randomness.
	Seed int64
	// Scenario is an optional scenario reference ("pulse",
	// "hybrid-bscpec:0.2,0.05,25", ...) applied to every station link; ""
	// selects the default world (see internal/scenario).
	Scenario string
	// Observer, when non-nil, receives every downlink exchange from every
	// station's link (the flight-recorder hook). The serve layer uses it to
	// aggregate per-stage timings for WLAN jobs; it has no effect on the
	// simulation itself.
	Observer cos.Observer
}

func (c *Config) setDefaults() error {
	if c.Stations == 0 {
		c.Stations = 3
	}
	if c.Stations < 1 || c.Stations > 15 {
		return fmt.Errorf("wlan: station count %d outside [1,15]", c.Stations)
	}
	if c.SNRdB == 0 {
		c.SNRdB = 18
	}
	if c.Position == 0 {
		c.Position = cos.PositionB
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 1024
	}
	if c.PayloadBytes < 16 {
		return fmt.Errorf("wlan: payload %d bytes too small", c.PayloadBytes)
	}
	if c.Coordination == 0 {
		c.Coordination = CoordCoS
	}
	if c.Coordination != CoordCoS && c.Coordination != CoordExplicit {
		return fmt.Errorf("wlan: unknown coordination scheme %d", int(c.Coordination))
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// explicitGrantAirtime is the cost of one explicit grant frame: PLCP
// preamble (16 us) + SIGNAL (4 us) + a 14-byte frame at 6 Mb/s (5 OFDM
// symbols, 20 us) + SIFS (16 us).
const explicitGrantAirtime = 16e-6 + 4e-6 + 20e-6 + 16e-6

// Network is a running WLAN simulation.
type Network struct {
	cfg   Config
	links []*cos.Link // downlink per station
	rng   *rand.Rand
	seq   int
}

// New builds a network; every station gets an independent channel variant
// at the configured position and SNR.
func New(cfg Config) (*Network, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	for s := 0; s < cfg.Stations; s++ {
		opts := []cos.Option{
			cos.WithPosition(cfg.Position),
			cos.WithSNR(cfg.SNRdB),
			cos.WithSeed(cfg.Seed + int64(s)*101),
			cos.WithChannelVariant(int64(s + 1)),
			// Grants are validated by the control framing CRC: the station
			// never needs genie knowledge of what the AP sent.
			cos.WithControlFraming(),
		}
		if cfg.Coordination == CoordExplicit {
			opts = append(opts, cos.WithoutCoS())
		}
		if cfg.Scenario != "" {
			ref, err := scenario.ParseRef(cfg.Scenario)
			if err != nil {
				return nil, err
			}
			opts = append(opts, cos.WithScenario(ref.Name, ref.Params...))
		}
		if cfg.Observer != nil {
			opts = append(opts, cos.WithObserver(cfg.Observer))
		}
		link, err := cos.NewLink(opts...)
		if err != nil {
			return nil, err
		}
		n.links = append(n.links, link)
	}
	return n, nil
}

// Report aggregates a simulation run.
type Report struct {
	// Rounds is the number of scheduling rounds executed.
	Rounds int
	// DataDelivered and DataLost count data frames.
	DataDelivered, DataLost int
	// GrantsDelivered and GrantsLost count coordination messages.
	GrantsDelivered, GrantsLost int
	// DataAirtime and ControlAirtime are seconds spent on each.
	DataAirtime, ControlAirtime float64
	// PerStation counts data deliveries by station (index 0 = station 1).
	PerStation []int
}

// ControlOverhead returns the fraction of total airtime spent on
// coordination.
func (r *Report) ControlOverhead() float64 {
	total := r.DataAirtime + r.ControlAirtime
	if total == 0 {
		return 0
	}
	return r.ControlAirtime / total
}

// GrantDeliveryRate returns the fraction of grants that arrived.
func (r *Report) GrantDeliveryRate() float64 {
	total := r.GrantsDelivered + r.GrantsLost
	if total == 0 {
		return 0
	}
	return float64(r.GrantsDelivered) / float64(total)
}

// packetAirtime returns the duration of a data frame at the mode the link
// last used.
func packetAirtime(ex *cos.Exchange, payloadBytes int) float64 {
	symbols := ex.Mode.SymbolsForPSDU(payloadBytes + 4)
	return (320.0 + float64(symbols*80)) / 20e6
}

// Run executes rounds of the downlink scheduler: each round sends one data
// frame to the current station carrying (or accompanied by) the grant that
// names the next station. A lost grant idles the next round's slot, exactly
// the cost real coordination loss incurs.
func (n *Network) Run(rounds int) (*Report, error) {
	return n.RunContext(context.Background(), rounds)
}

// RunContext is Run with cooperative cancellation: the scheduler polls ctx
// once per round and returns ctx.Err() mid-simulation when it fires, so
// CLIs can honor SIGINT and the serve layer can enforce job deadlines.
func (n *Network) RunContext(ctx context.Context, rounds int) (*Report, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("wlan: rounds %d must be >= 1", rounds)
	}
	rep := &Report{Rounds: rounds, PerStation: make([]int, n.cfg.Stations)}
	data := make([]byte, n.cfg.PayloadBytes)

	current := StationID(1)
	granted := true // round 0's grant is assumed delivered out of band
	for r := 0; r < rounds; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		next := StationID(int(current)%n.cfg.Stations + 1)
		n.seq = (n.seq + 1) & 0xF
		grant := Grant{Station: next, Slots: 1 + n.rng.Intn(8), Seq: n.seq}
		mRounds.Inc()
		mGrantedStation.With(strconv.Itoa(int(next))).Inc()

		if !granted {
			// The previous grant never arrived: the slot idles and the AP
			// re-issues the grant explicitly (recovery always costs an
			// explicit frame, whichever scheme is in use).
			rep.ControlAirtime += explicitGrantAirtime
			mControlAirtime.Add(explicitGrantAirtime)
			mIdleRounds.Inc()
			granted = true
			continue
		}

		link := n.links[int(current)-1]
		n.rng.Read(data)

		var ctrl []byte
		if n.cfg.Coordination == CoordCoS {
			bits, err := grant.Bits()
			if err != nil {
				return nil, err
			}
			budget, err := link.MaxControlBits(len(data))
			if err != nil {
				return nil, err
			}
			if budget >= GrantBits {
				ctrl = bits
			}
		}
		ex, err := link.Send(data, ctrl)
		if err != nil {
			return nil, err
		}
		rep.DataAirtime += packetAirtime(ex, n.cfg.PayloadBytes)
		mDataAirtime.Add(packetAirtime(ex, n.cfg.PayloadBytes))
		if ex.DataOK {
			rep.DataDelivered++
			rep.PerStation[int(current)-1]++
		} else {
			rep.DataLost++
		}

		switch {
		case n.cfg.Coordination == CoordCoS && ctrl != nil:
			// Grant rides for free inside the data frame; the station
			// trusts it only when the framing CRC verifies.
			if ex.ControlVerified {
				if got, err := ParseGrant(ex.ControlPayload); err == nil && got == grant {
					rep.GrantsDelivered++
					mGrantsDelivered.With("cos").Inc()
					granted = true
				} else {
					rep.GrantsLost++
					mGrantsLost.With("cos").Inc()
					granted = false
				}
			} else {
				rep.GrantsLost++
				mGrantsLost.With("cos").Inc()
				granted = false
			}
		case n.cfg.Coordination == CoordCoS:
			// Budget too small this packet: fall back to an explicit frame.
			rep.ControlAirtime += explicitGrantAirtime
			mControlAirtime.Add(explicitGrantAirtime)
			delivered, err := n.sendExplicitGrant(link)
			if err != nil {
				return nil, err
			}
			granted = delivered
			if delivered {
				rep.GrantsDelivered++
				mGrantsDelivered.With("explicit").Inc()
			} else {
				rep.GrantsLost++
				mGrantsLost.With("explicit").Inc()
			}
		default:
			rep.ControlAirtime += explicitGrantAirtime
			mControlAirtime.Add(explicitGrantAirtime)
			delivered, err := n.sendExplicitGrant(link)
			if err != nil {
				return nil, err
			}
			granted = delivered
			if delivered {
				rep.GrantsDelivered++
				mGrantsDelivered.With("explicit").Inc()
			} else {
				rep.GrantsLost++
				mGrantsLost.With("explicit").Inc()
			}
		}
		current = next
	}
	return rep, nil
}

// sendExplicitGrant pushes a 14-byte grant frame through the station's
// link (data-only, base conditions) and reports delivery.
func (n *Network) sendExplicitGrant(link *cos.Link) (bool, error) {
	frame := make([]byte, 14)
	n.rng.Read(frame)
	ex, err := link.Send(frame, nil)
	if err != nil {
		return false, err
	}
	return ex.DataOK, nil
}
