package wlan

import (
	"strings"
	"testing"
)

// TestParseGrantBitCountErrors pins the error paths for inputs that are not
// at least GrantBits long: the parser must refuse them and say how many bits
// it saw, never index past the slice.
func TestParseGrantBitCountErrors(t *testing.T) {
	for _, n := range []int{0, 1, 4, 8, GrantBits - 1} {
		_, err := ParseGrant(make([]byte, n))
		if err == nil {
			t.Fatalf("ParseGrant accepted %d bits", n)
		}
		if !strings.Contains(err.Error(), "16 bits") {
			t.Errorf("%d bits: error %q does not name the required width", n, err)
		}
	}
	if _, err := ParseGrant(nil); err == nil {
		t.Fatal("ParseGrant accepted a nil slice")
	}
}

// TestParseGrantExtraBitsIgnored: the contract is "at least GrantBits";
// trailing bits (e.g. the payload that follows a grant in a control stream)
// must not disturb decoding.
func TestParseGrantExtraBitsIgnored(t *testing.T) {
	g := Grant{Station: 9, Slots: 200, Seq: 3}
	bits, err := g.Bits()
	if err != nil {
		t.Fatal(err)
	}
	padded := append(bits, 1, 0, 1, 1, 0)
	got, err := ParseGrant(padded)
	if err != nil {
		t.Fatal(err)
	}
	if got != g {
		t.Fatalf("ParseGrant with trailing bits = %+v, want %+v", got, g)
	}
}

// TestParseGrantDecodedStationZero: a wire pattern whose station field
// decodes to 0 is structurally valid but semantically reserved; the parser
// must reject it rather than hand schedulers an unroutable grant.
func TestParseGrantDecodedStationZero(t *testing.T) {
	bits := make([]byte, GrantBits)
	// Station nibble 0000, but nonzero slots/seq so the frame is not all-zero.
	copy(bits[4:], []byte{1, 1, 0, 0, 1, 0, 0, 1, 0, 1, 1, 0})
	_, err := ParseGrant(bits)
	if err == nil {
		t.Fatal("ParseGrant accepted station 0")
	}
	if !strings.Contains(err.Error(), "station 0") {
		t.Errorf("error %q does not name the reserved station", err)
	}
}

// TestGrantBitsRangeErrors pins each Bits() range check individually with
// the field named in the error, so a future encoding change cannot silently
// widen a field past what ParseGrant's 4/8/4 layout can carry.
func TestGrantBitsRangeErrors(t *testing.T) {
	cases := []struct {
		g    Grant
		want string
	}{
		{Grant{Station: 0, Slots: 1, Seq: 1}, "station"},
		{Grant{Station: 16, Slots: 1, Seq: 1}, "station"},
		{Grant{Station: -3, Slots: 1, Seq: 1}, "station"},
		{Grant{Station: 1, Slots: -1, Seq: 1}, "slots"},
		{Grant{Station: 1, Slots: 256, Seq: 1}, "slots"},
		{Grant{Station: 1, Slots: 1, Seq: -1}, "seq"},
		{Grant{Station: 1, Slots: 1, Seq: 16}, "seq"},
	}
	for _, tc := range cases {
		_, err := tc.g.Bits()
		if err == nil {
			t.Errorf("%+v encoded despite out-of-range %s", tc.g, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%+v: error %q does not name field %q", tc.g, err, tc.want)
		}
	}
}
