package wlan

import (
	"testing"

	"cos"
)

func TestGrantBitsRoundTrip(t *testing.T) {
	for _, g := range []Grant{
		{Station: 1, Slots: 0, Seq: 0},
		{Station: 15, Slots: 255, Seq: 15},
		{Station: 7, Slots: 100, Seq: 9},
	} {
		bits, err := g.Bits()
		if err != nil {
			t.Fatalf("%+v: %v", g, err)
		}
		if len(bits) != GrantBits {
			t.Fatalf("grant encodes to %d bits", len(bits))
		}
		got, err := ParseGrant(bits)
		if err != nil {
			t.Fatal(err)
		}
		if got != g {
			t.Errorf("roundtrip %+v -> %+v", g, got)
		}
	}
}

func TestGrantValidation(t *testing.T) {
	bad := []Grant{
		{Station: 0, Slots: 1, Seq: 1},
		{Station: 16, Slots: 1, Seq: 1},
		{Station: 1, Slots: -1, Seq: 1},
		{Station: 1, Slots: 256, Seq: 1},
		{Station: 1, Slots: 1, Seq: 16},
	}
	for _, g := range bad {
		if _, err := g.Bits(); err == nil {
			t.Errorf("%+v should not encode", g)
		}
	}
	if _, err := ParseGrant(make([]byte, 8)); err == nil {
		t.Error("short grant should not parse")
	}
	// Station 0 in the bits is invalid.
	zero := make([]byte, GrantBits)
	if _, err := ParseGrant(zero); err == nil {
		t.Error("station-0 grant should not parse")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Stations: 16},
		{PayloadBytes: 4},
		{Coordination: Coordination(9)},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	if _, err := New(Config{}); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestCoordinationString(t *testing.T) {
	if CoordCoS.String() != "CoS" || CoordExplicit.String() != "explicit" {
		t.Error("coordination names wrong")
	}
	if Coordination(9).String() == "" {
		t.Error("unknown coordination should still print")
	}
}

func TestRunRejectsBadRounds(t *testing.T) {
	n, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(0); err == nil {
		t.Error("zero rounds should error")
	}
}

func TestCoSCoordinationSavesAirtime(t *testing.T) {
	const rounds = 40
	run := func(coord Coordination) *Report {
		n, err := New(Config{Stations: 3, SNRdB: 19, Coordination: coord, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := n.Run(rounds)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	cosRep := run(CoordCoS)
	expRep := run(CoordExplicit)

	// The explicit design pays airtime for every grant; CoS pays only for
	// fallbacks and recoveries.
	if cosRep.ControlAirtime >= expRep.ControlAirtime {
		t.Errorf("CoS control airtime %.0fus should be below explicit %.0fus",
			cosRep.ControlAirtime*1e6, expRep.ControlAirtime*1e6)
	}
	if expRep.ControlOverhead() < 0.01 {
		t.Errorf("explicit overhead %.4f suspiciously small", expRep.ControlOverhead())
	}
	// Both schemes must actually coordinate at 19 dB.
	if cosRep.GrantDeliveryRate() < 0.85 {
		t.Errorf("CoS grant delivery %.3f too low", cosRep.GrantDeliveryRate())
	}
	if expRep.GrantDeliveryRate() < 0.95 {
		t.Errorf("explicit grant delivery %.3f too low", expRep.GrantDeliveryRate())
	}
	// Data keeps flowing under both.
	if cosRep.DataDelivered < rounds*7/10 || expRep.DataDelivered < rounds*7/10 {
		t.Errorf("data delivered CoS=%d explicit=%d of %d rounds",
			cosRep.DataDelivered, expRep.DataDelivered, rounds)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	n, err := New(Config{Stations: 3, SNRdB: 22, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.Run(45)
	if err != nil {
		t.Fatal(err)
	}
	for s, count := range rep.PerStation {
		if count < 8 {
			t.Errorf("station %d served only %d times in 45 rounds", s+1, count)
		}
	}
}

func TestReportAccounting(t *testing.T) {
	n, err := New(Config{Stations: 2, SNRdB: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 20
	rep, err := n.Run(rounds)
	if err != nil {
		t.Fatal(err)
	}
	attempted := rep.DataDelivered + rep.DataLost
	if attempted > rounds {
		t.Errorf("data frames attempted %d > rounds %d", attempted, rounds)
	}
	grants := rep.GrantsDelivered + rep.GrantsLost
	if grants > rounds {
		t.Errorf("grants %d > rounds %d", grants, rounds)
	}
	if rep.DataAirtime <= 0 {
		t.Error("no data airtime recorded")
	}
	if rep.ControlOverhead() < 0 || rep.ControlOverhead() > 1 {
		t.Errorf("overhead %v out of range", rep.ControlOverhead())
	}
}

func TestExplicitNetworkDisablesCoS(t *testing.T) {
	n, err := New(Config{Coordination: CoordExplicit, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The links were built WithoutCoS: MaxControlBits must be zero.
	for i, l := range n.links {
		bits, err := l.MaxControlBits(1024)
		if err != nil || bits != 0 {
			t.Errorf("station %d: MaxControlBits = %d, %v", i+1, bits, err)
		}
	}
	_ = cos.PositionB // keep the import honest if assertions change
}

func TestLowSNRDegradesGracefully(t *testing.T) {
	// At a hostile SNR the network keeps running: data losses and grant
	// losses rise but the scheduler never wedges.
	n, err := New(Config{Stations: 2, SNRdB: 9, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DataDelivered == 0 {
		t.Error("no data delivered at 9 dB; the base rates should still work")
	}
	if rep.DataAirtime <= 0 {
		t.Error("no airtime recorded")
	}
	// Every round is accounted: a data frame or an idle recovery.
	if rep.DataDelivered+rep.DataLost > rep.Rounds {
		t.Errorf("accounting overflow: %d+%d > %d", rep.DataDelivered, rep.DataLost, rep.Rounds)
	}
}
