package phy

import (
	"fmt"

	"cos/internal/coding"
	"cos/internal/dsp"
	"cos/internal/modulation"
	"cos/internal/ofdm"
)

// The 802.11a SIGNAL field (17.3.4): one BPSK, rate-1/2 OFDM symbol carrying
// RATE (4 bits), a reserved bit, LENGTH (12 bits, LSB first), even parity,
// and 6 tail zeros. It lets the receiver discover the payload's mode and
// length without out-of-band help.

// signalRateBits maps RateMbps to the RATE field bits (b3..b0 transmitted
// b0 first; the table lists them in transmission order).
var signalRateBits = map[int][4]byte{
	6:  {1, 1, 0, 1},
	9:  {1, 1, 1, 1},
	12: {0, 1, 0, 1},
	18: {0, 1, 1, 1},
	24: {1, 0, 0, 1},
	36: {1, 0, 1, 1},
	48: {0, 0, 0, 1},
	54: {0, 0, 1, 1},
}

// MaxSignalLength is the largest PSDU length the 12-bit LENGTH field can
// carry.
const MaxSignalLength = 1<<12 - 1

// signalBits assembles the 24 SIGNAL bits for a mode and PSDU length.
func signalBits(m Mode, psduLen int) ([]byte, error) {
	rate, ok := signalRateBits[m.RateMbps]
	if !ok {
		return nil, fmt.Errorf("phy: mode %v has no SIGNAL rate code", m)
	}
	if psduLen < 0 || psduLen > MaxSignalLength {
		return nil, fmt.Errorf("phy: PSDU length %d outside the SIGNAL field's 12-bit range", psduLen)
	}
	bits := make([]byte, 24)
	copy(bits[0:4], rate[:])
	// bits[4] reserved = 0.
	for i := 0; i < 12; i++ {
		bits[5+i] = byte((psduLen >> i) & 1)
	}
	var parity byte
	for _, b := range bits[:17] {
		parity ^= b
	}
	bits[17] = parity
	// bits[18:24] tail zeros.
	return bits, nil
}

// signalInterleaver is the BPSK interleaver used by the SIGNAL symbol.
func signalInterleaver() (*coding.Interleaver, error) {
	return coding.NewInterleaver(ofdm.NumData, 1)
}

// EncodeSignal produces the 48 frequency-domain data values of the SIGNAL
// symbol for the given mode and PSDU length.
func EncodeSignal(m Mode, psduLen int) ([]complex128, error) {
	bits, err := signalBits(m, psduLen)
	if err != nil {
		return nil, err
	}
	coded, err := coding.ConvEncode(bits)
	if err != nil {
		return nil, err
	}
	il, err := signalInterleaver()
	if err != nil {
		return nil, err
	}
	interleaved, err := coding.Interleave(il, coded)
	if err != nil {
		return nil, err
	}
	return modulation.BPSK.MapBits(interleaved)
}

// DecodeSignal recovers the mode and PSDU length from the raw FFT bins of
// the SIGNAL symbol, using the front end's channel and noise estimates.
// It fails if the parity bit, the reserved bit, or the RATE code is invalid.
func DecodeSignal(fe *FrontEnd, bins *ofdm.Bins) (Mode, int, error) {
	metrics := make([]float64, 0, ofdm.NumData)
	for d := 0; d < ofdm.NumData; d++ {
		y, err := bins.DataValue(d)
		if err != nil {
			return Mode{}, 0, err
		}
		h, err := fe.ChannelAt(d)
		if err != nil {
			return Mode{}, 0, err
		}
		hMag := dsp.MagSq(h)
		if hMag < 1e-12 {
			metrics = append(metrics, 0) // dead subcarrier: erase
			continue
		}
		lam, err := modulation.BPSK.SoftDemap(y/h, fe.NoiseVar/hMag)
		if err != nil {
			return Mode{}, 0, err
		}
		metrics = append(metrics, lam...)
	}
	il, err := signalInterleaver()
	if err != nil {
		return Mode{}, 0, err
	}
	deint, err := coding.Deinterleave(il, metrics)
	if err != nil {
		return Mode{}, 0, err
	}
	dec := coding.Viterbi{Terminated: true}
	bits, err := dec.Decode(deint)
	if err != nil {
		return Mode{}, 0, err
	}

	var parity byte
	for _, b := range bits[:17] {
		parity ^= b
	}
	if parity != bits[17] {
		return Mode{}, 0, fmt.Errorf("phy: SIGNAL parity check failed")
	}
	if bits[4] != 0 {
		return Mode{}, 0, fmt.Errorf("phy: SIGNAL reserved bit set")
	}
	var rate [4]byte
	copy(rate[:], bits[0:4])
	var mode Mode
	found := false
	for mbps, code := range signalRateBits {
		if code == rate {
			mode, err = ModeByRate(mbps)
			if err != nil {
				return Mode{}, 0, err
			}
			found = true
			break
		}
	}
	if !found {
		return Mode{}, 0, fmt.Errorf("phy: SIGNAL rate code %v invalid", rate)
	}
	length := 0
	for i := 0; i < 12; i++ {
		length |= int(bits[5+i]) << i
	}
	return mode, length, nil
}

// SamplesWithSignal renders the packet with a leading SIGNAL symbol:
// preamble, SIGNAL (pilot index 0), then the payload symbols (pilot indices
// 1..N), exactly the 802.11a frame layout.
func (p *TxPacket) SamplesWithSignal() ([]complex128, error) {
	sig, err := EncodeSignal(p.Config.Mode, len(p.PSDU))
	if err != nil {
		return nil, err
	}
	sigGrid := ofdm.NewGrid(1)
	row, err := sigGrid.Symbol(0)
	if err != nil {
		return nil, err
	}
	copy(row, sig)
	sigSamples, err := sigGrid.Modulate(0)
	if err != nil {
		return nil, err
	}
	payload, err := p.Grid.Modulate(1)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, 0, ofdm.PreambleLen+len(sigSamples)+len(payload))
	out = append(out, ofdm.Preamble()...)
	out = append(out, sigSamples...)
	out = append(out, payload...)
	return out, nil
}

// AutoReceive runs the self-describing receive path: channel estimation
// from the preamble, SIGNAL decoding for rate and length, then the payload
// front end. It returns the payload front end (SIGNAL symbol stripped), the
// discovered mode, and the PSDU length.
func AutoReceive(samples []complex128) (*FrontEnd, Mode, int, error) {
	fe, err := RunFrontEndAt(samples, 0) // symbol 0 is the SIGNAL field
	if err != nil {
		return nil, Mode{}, 0, err
	}
	if fe.NumSymbols() < 2 {
		return nil, Mode{}, 0, fmt.Errorf("phy: packet too short for SIGNAL plus payload")
	}
	mode, psduLen, err := DecodeSignal(fe, &fe.Bins[0])
	if err != nil {
		return nil, Mode{}, 0, err
	}
	// Strip the SIGNAL symbol: the payload front end's symbol s then maps
	// to pilot polarity index 1+s, exactly what Decode expects.
	payload := &FrontEnd{
		Bins:           fe.Bins[1:],
		ChannelEst:     fe.ChannelEst,
		LTFNoiseVar:    fe.LTFNoiseVar,
		PerSymbolNoise: fe.PerSymbolNoise[1:],
		NoiseVar:       fe.NoiseVar,
	}
	if want := mode.SymbolsForPSDU(psduLen); want != payload.NumSymbols() {
		return nil, Mode{}, 0, fmt.Errorf("phy: SIGNAL says %d symbols but packet has %d", want, payload.NumSymbols())
	}
	return payload, mode, psduLen, nil
}
