// Package phy implements the 802.11a physical layer over the ofdm, coding,
// modulation, and bits packages: the eight transmission modes, the transmit
// chain (scramble, encode, puncture, interleave, map, OFDM-modulate), and
// the receive chain (channel estimation from the long training field,
// equalization, pilot-aided noise estimation, soft demapping, erasure-aware
// Viterbi decoding, descrambling).
//
// The receive chain is deliberately split into a front end and a decoder so
// the CoS energy detector can run between them on the raw FFT bins, mark
// silence symbols as erasures, and hand the mask to the decoder — exactly
// the architecture of the paper's Fig. 8.
package phy

import (
	"fmt"

	"cos/internal/coding"
	"cos/internal/modulation"
	"cos/internal/ofdm"
)

// Mode is one 802.11a transmission mode: a modulation scheme plus a
// convolutional code rate.
type Mode struct {
	// RateMbps is the nominal data rate in Mb/s and uniquely identifies
	// the mode.
	RateMbps int
	// Modulation is the subcarrier constellation.
	Modulation modulation.Scheme
	// CodeRate is the convolutional code rate.
	CodeRate coding.CodeRate
	// MinSNRdB is the minimum receiver SNR (dB) at which the SNR-based
	// rate adaptation scheme selects this mode. The table is calibrated to
	// the paper's anchor "24 Mb/s requires 12 dB" (Figs. 2-3).
	MinSNRdB float64
}

// modes lists the eight 802.11a modes in ascending rate order.
var modes = []Mode{
	{6, modulation.BPSK, coding.Rate1_2, 4.0},
	{9, modulation.BPSK, coding.Rate3_4, 5.5},
	{12, modulation.QPSK, coding.Rate1_2, 7.1},
	{18, modulation.QPSK, coding.Rate3_4, 9.5},
	{24, modulation.QAM16, coding.Rate1_2, 12.0},
	{36, modulation.QAM16, coding.Rate3_4, 16.0},
	{48, modulation.QAM64, coding.Rate2_3, 19.5},
	{54, modulation.QAM64, coding.Rate3_4, 22.0},
}

// Modes returns all eight 802.11a modes in ascending rate order.
// The returned slice is a copy.
func Modes() []Mode {
	out := make([]Mode, len(modes))
	copy(out, modes)
	return out
}

// ModeByRate looks a mode up by its nominal rate in Mb/s.
func ModeByRate(mbps int) (Mode, error) {
	for _, m := range modes {
		if m.RateMbps == mbps {
			return m, nil
		}
	}
	return Mode{}, fmt.Errorf("phy: no 802.11a mode with rate %d Mb/s", mbps)
}

// EvaluatedModes returns the six modes the paper's Fig. 9 experiments with
// (12 through 54 Mb/s).
func EvaluatedModes() []Mode {
	out := make([]Mode, 0, 6)
	for _, m := range modes {
		if m.RateMbps >= 12 {
			out = append(out, m)
		}
	}
	return out
}

// String returns e.g. "(16QAM,1/2) 24 Mb/s".
func (m Mode) String() string {
	return fmt.Sprintf("(%v,%v) %d Mb/s", m.Modulation, m.CodeRate, m.RateMbps)
}

// NBPSC returns the coded bits per subcarrier.
func (m Mode) NBPSC() int { return m.Modulation.BitsPerSymbol() }

// NCBPS returns the coded bits per OFDM symbol.
func (m Mode) NCBPS() int { return ofdm.NumData * m.NBPSC() }

// NDBPS returns the data bits per OFDM symbol.
func (m Mode) NDBPS() int {
	num, den := m.CodeRate.Fraction()
	return m.NCBPS() * num / den
}

// Valid reports whether the mode's parameters are consistent.
func (m Mode) Valid() bool {
	return m.Modulation.Valid() && m.CodeRate.Valid() && m.NDBPS() > 0
}

// SymbolsForPSDU returns the number of OFDM symbols needed to carry a PSDU
// of psduLen bytes (SERVICE + data + tail, padded to a whole symbol).
func (m Mode) SymbolsForPSDU(psduLen int) int {
	nBits := serviceBits + 8*psduLen + coding.TailBits
	return (nBits + m.NDBPS() - 1) / m.NDBPS()
}

// DataRate returns the exact data rate in bits/s implied by NDBPS and the
// 4 us symbol duration.
func (m Mode) DataRate() float64 {
	return float64(m.NDBPS()) / ofdm.SymbolDuration
}

// SelectMode implements the SNR-based rate adaptation of [Holland et al.]
// that both the paper and this reproduction adopt: the fastest mode whose
// minimum required SNR is at or below the measured SNR. Below the slowest
// mode's threshold the slowest mode is returned (the sender must send
// something).
func SelectMode(measuredSNRdB float64) Mode {
	best := modes[0]
	for _, m := range modes {
		if measuredSNRdB >= m.MinSNRdB {
			best = m
		}
	}
	return best
}
