package phy

import (
	"bytes"
	"math/rand"
	"testing"

	"cos/internal/channel"
)

func TestSignalBitsStructure(t *testing.T) {
	m, _ := ModeByRate(36)
	bits, err := signalBits(m, 0xABC)
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) != 24 {
		t.Fatalf("SIGNAL has %d bits", len(bits))
	}
	// RATE code for 36 Mb/s is 1011.
	want := []byte{1, 0, 1, 1}
	for i := range want {
		if bits[i] != want[i] {
			t.Errorf("rate bit %d = %d, want %d", i, bits[i], want[i])
		}
	}
	if bits[4] != 0 {
		t.Error("reserved bit set")
	}
	// LENGTH 0xABC LSB-first.
	length := 0xABC
	for i := 0; i < 12; i++ {
		if bits[5+i] != byte((length>>uint(i))&1) {
			t.Errorf("length bit %d wrong", i)
		}
	}
	// Even parity over bits 0..16.
	var p byte
	for _, b := range bits[:17] {
		p ^= b
	}
	if p != bits[17] {
		t.Error("parity bit wrong")
	}
	for i := 18; i < 24; i++ {
		if bits[i] != 0 {
			t.Error("tail bits not zero")
		}
	}
}

func TestSignalBitsErrors(t *testing.T) {
	m, _ := ModeByRate(24)
	if _, err := signalBits(m, -1); err == nil {
		t.Error("negative length should error")
	}
	if _, err := signalBits(m, MaxSignalLength+1); err == nil {
		t.Error("oversized length should error")
	}
	if _, err := signalBits(Mode{RateMbps: 33}, 100); err == nil {
		t.Error("unknown rate should error")
	}
}

func TestSignalRoundTripAllModes(t *testing.T) {
	flat, err := channel.PositionFlat.New(false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(301))
	for _, m := range Modes() {
		for _, length := range []int{1, 200, 1024, MaxSignalLength} {
			psdu := make([]byte, min(length, 600)) // keep test fast
			rng.Read(psdu)
			pkt, err := BuildPacket(TxConfig{Mode: m}, psdu)
			if err != nil {
				t.Fatal(err)
			}
			samples, err := pkt.SamplesWithSignal()
			if err != nil {
				t.Fatal(err)
			}
			rx := flat.Apply(samples, 0, 1e-6, rng)
			fe, err := RunFrontEndAt(rx, 0)
			if err != nil {
				t.Fatal(err)
			}
			mode, gotLen, err := DecodeSignal(fe, &fe.Bins[0])
			if err != nil {
				t.Fatalf("%v len %d: %v", m, length, err)
			}
			if mode.RateMbps != m.RateMbps || gotLen != len(psdu) {
				t.Errorf("decoded (%v,%d), want (%v,%d)", mode, gotLen, m, len(psdu))
			}
		}
	}
}

func TestAutoReceiveEndToEnd(t *testing.T) {
	ch, err := channel.PositionB.New(false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(302))
	for _, rate := range []int{6, 18, 36, 54} {
		m, _ := ModeByRate(rate)
		psdu := randPSDU(rng, 700)
		pkt, err := BuildPacket(TxConfig{Mode: m}, psdu)
		if err != nil {
			t.Fatal(err)
		}
		samples, err := pkt.SamplesWithSignal()
		if err != nil {
			t.Fatal(err)
		}
		h := ch.FrequencyResponse(0)
		nv, err := NoiseVarForActualSNR(h, m.MinSNRdB+8)
		if err != nil {
			t.Fatal(err)
		}
		rx := ch.Apply(samples, 0, nv, rng)
		fe, mode, psduLen, err := AutoReceive(rx)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if mode.RateMbps != rate || psduLen != len(psdu) {
			t.Fatalf("AutoReceive found (%v,%d), want (%v,%d)", mode, psduLen, m, len(psdu))
		}
		dec, err := fe.Decode(DecodeConfig{Mode: mode, PSDULen: psduLen})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dec.PSDU, psdu) {
			t.Errorf("%v: PSDU corrupted through AutoReceive path", m)
		}
	}
}

func TestAutoReceiveRejectsGarbage(t *testing.T) {
	// A packet without a SIGNAL symbol should fail parity/rate validation
	// almost surely.
	ch, err := channel.PositionFlat.New(false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(303))
	m, _ := ModeByRate(24)
	psdu := randPSDU(rng, 300)
	pkt, err := BuildPacket(TxConfig{Mode: m}, psdu)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := pkt.Samples() // no SIGNAL: first symbol is 16QAM data
	if err != nil {
		t.Fatal(err)
	}
	rx := ch.Apply(samples, 0, 1e-5, rng)
	if _, _, _, err := AutoReceive(rx); err == nil {
		t.Error("AutoReceive accepted a frame with no SIGNAL field")
	}
}

func TestAutoReceiveShortPacket(t *testing.T) {
	flat, _ := channel.PositionFlat.New(false)
	m, _ := ModeByRate(6)
	pkt, err := BuildPacket(TxConfig{Mode: m}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// SIGNAL-only equivalent length: preamble + 1 symbol.
	samples, err := pkt.Samples()
	if err != nil {
		t.Fatal(err)
	}
	rx := flat.Apply(samples, 0, 1e-6, rand.New(rand.NewSource(304)))
	if _, _, _, err := AutoReceive(rx); err == nil {
		t.Error("AutoReceive should reject a packet with no payload symbols")
	}
}

func TestSignalParityDetectsCorruption(t *testing.T) {
	// Flip the SIGNAL symbol heavily and confirm validation catches it in
	// the overwhelming majority of trials.
	flat, _ := channel.PositionFlat.New(false)
	rng := rand.New(rand.NewSource(305))
	m, _ := ModeByRate(24)
	psdu := randPSDU(rng, 100)
	pkt, _ := BuildPacket(TxConfig{Mode: m}, psdu)
	rejected := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		samples, err := pkt.SamplesWithSignal()
		if err != nil {
			t.Fatal(err)
		}
		// Severe noise on the SIGNAL symbol only.
		rx := flat.Apply(samples, 0, 1e-6, rng)
		for s := 320; s < 400; s++ {
			rx[s] += complex(rng.NormFloat64(), rng.NormFloat64()) * 0.4
		}
		_, mode, gotLen, err := AutoReceive(rx)
		if err != nil {
			rejected++
			continue
		}
		// If it decoded, it must have decoded correctly or been caught by
		// the symbol-count crosscheck.
		if mode.RateMbps != 24 || gotLen != len(psdu) {
			t.Fatalf("corrupted SIGNAL slipped through as (%v,%d)", mode, gotLen)
		}
	}
	if rejected == 0 {
		t.Log("all corrupted SIGNALs still decoded (code is strong); acceptable")
	}
}
