package phy

import (
	"fmt"
	"time"

	"cos/internal/bits"
	"cos/internal/coding"
	"cos/internal/dsp"
	"cos/internal/obs"
	"cos/internal/ofdm"
)

// Receive-chain metrics: stage timings for the two RX stages (front end:
// FFT, channel and noise estimation; decode: demap through descramble)
// and the erasure load entering the decoder.
var (
	mRxFrontEnds = obs.Default().Counter("phy_rx_frontends_total",
		"Packets processed by the receiver front end.")
	mRxFrontEndSeconds = obs.Default().Histogram("phy_rx_frontend_seconds",
		"RunFrontEnd latency: FFTs, channel estimate, noise estimate.", nil)
	mRxDecodes = obs.Default().Counter("phy_rx_decodes_total",
		"Payload decode attempts.")
	mRxDecodeSeconds = obs.Default().Histogram("phy_rx_decode_seconds",
		"Decode latency: demap, deinterleave, depuncture, Viterbi, descramble.", nil)
	mRxErasedPositions = obs.Default().Counter("phy_rx_erased_positions_total",
		"Symbol/subcarrier positions erased by the silence mask before decoding.")
)

// FrontEnd is the receiver's pre-decoding state: raw FFT bins of every
// payload symbol, the LS channel estimate from the long training field, and
// the pilot-aided noise estimate of Eqs. (5)-(6). The CoS energy detector
// consumes the raw bins; the decoder consumes the equalized symbols.
type FrontEnd struct {
	// Bins holds the un-equalized FFT output of each payload OFDM symbol.
	Bins []ofdm.Bins
	// ChannelEst is the per-bin LS channel estimate H_hat.
	ChannelEst [ofdm.NumSubcarriers]complex128
	// NoiseVar is the pilot-aided post-FFT noise variance estimate eta,
	// averaged over all payload symbols.
	NoiseVar float64
	// PerSymbolNoise is the pilot-aided noise estimate of each symbol.
	PerSymbolNoise []float64
	// LTFNoiseVar is an independent noise estimate from the difference of
	// the two long training symbols.
	LTFNoiseVar float64
}

// RunFrontEnd consumes a packet's baseband samples (preamble + payload) and
// produces the front-end state. The payload length must be a whole number
// of OFDM symbols; timing synchronization is assumed ideal. Payload pilot
// polarity indices start at 1 (the layout without a SIGNAL symbol); use
// RunFrontEndAt for self-describing frames.
func RunFrontEnd(samples []complex128) (*FrontEnd, error) {
	return RunFrontEndAt(samples, 1)
}

// RunFrontEndAt is RunFrontEnd with an explicit pilot polarity index for
// the first post-preamble OFDM symbol: 0 when that symbol is the SIGNAL
// field, 1 when the payload follows the preamble directly.
func RunFrontEndAt(samples []complex128, firstPilotIndex int) (*FrontEnd, error) {
	if len(samples) < ofdm.PreambleLen+ofdm.SymbolLen {
		return nil, fmt.Errorf("phy: packet too short: %d samples", len(samples))
	}
	// Instrumentation stays in this wrapper: a timer held live across the
	// estimation loops costs the inner function registers (see
	// coding.Viterbi.Decode for the measurement).
	start := time.Now()
	fe, err := runFrontEndAt(samples, firstPilotIndex)
	if err != nil {
		return nil, err
	}
	mRxFrontEnds.Inc()
	mRxFrontEndSeconds.ObserveSince(start)
	return fe, nil
}

func runFrontEndAt(samples []complex128, firstPilotIndex int) (*FrontEnd, error) {
	fe := &FrontEnd{}
	if err := frontEndInto(fe, samples, firstPilotIndex); err != nil {
		return nil, err
	}
	return fe, nil
}

// frontEndInto fills fe from samples, reusing the capacity of fe.Bins and
// fe.PerSymbolNoise. All other fields are overwritten.
func frontEndInto(fe *FrontEnd, samples []complex128, firstPilotIndex int) error {
	payload := samples[ofdm.PreambleLen:]
	if len(payload)%ofdm.SymbolLen != 0 {
		return fmt.Errorf("phy: payload %d samples is not a whole number of OFDM symbols", len(payload))
	}

	y1, y2, err := ofdm.LongTrainingObservations(samples[:ofdm.PreambleLen])
	if err != nil {
		return err
	}
	fe.ChannelEst = [ofdm.NumSubcarriers]complex128{}
	var ltfNoise float64
	occupied := 0
	for k := -26; k <= 26; k++ {
		if k == 0 {
			continue
		}
		bin, err := ofdm.Bin(k)
		if err != nil {
			return err
		}
		l := ofdm.LongTrainingValue(k)
		fe.ChannelEst[bin] = (y1[bin] + y2[bin]) / (2 * l)
		d := y1[bin] - y2[bin]
		ltfNoise += dsp.MagSq(d) / 2
		occupied++
	}
	fe.LTFNoiseVar = ltfNoise / float64(occupied)

	fe.Bins, err = ofdm.DemodulateInto(fe.Bins, payload)
	if err != nil {
		return err
	}

	// Pilot-aided noise estimation (Eqs. (5)-(6)): n_i = y_i - H_hat_i x_i
	// on each pilot. The residual also carries the channel-estimation
	// error: H_hat averages two LTF symbols, so Var(H_hat - H) = eta/2 and
	// E|y - H_hat x|^2 = eta + eta/2 |x|^2 = 1.5 eta for unit pilots.
	// Dividing by that factor makes the estimator unbiased.
	const pilotEstimateBias = 1.5
	if cap(fe.PerSymbolNoise) < len(fe.Bins) {
		fe.PerSymbolNoise = make([]float64, len(fe.Bins))
	}
	fe.PerSymbolNoise = fe.PerSymbolNoise[:len(fe.Bins)]
	var total float64
	for s := range fe.Bins {
		var acc float64
		for p := 0; p < ofdm.NumPilots; p++ {
			obs, err := fe.Bins[s].PilotObservation(p)
			if err != nil {
				return err
			}
			binIdx, err := ofdm.Bin(ofdm.PilotIndices[p])
			if err != nil {
				return err
			}
			want, err := ofdm.PilotValue(p, firstPilotIndex+s)
			if err != nil {
				return err
			}
			n := obs - fe.ChannelEst[binIdx]*want
			acc += dsp.MagSq(n)
		}
		fe.PerSymbolNoise[s] = acc / (ofdm.NumPilots * pilotEstimateBias)
		total += fe.PerSymbolNoise[s]
	}
	fe.NoiseVar = total / float64(len(fe.Bins))
	return nil
}

// NumSymbols returns the number of payload OFDM symbols.
func (fe *FrontEnd) NumSymbols() int { return len(fe.Bins) }

// ChannelAt returns the channel estimate of data subcarrier d (0..47).
func (fe *FrontEnd) ChannelAt(d int) (complex128, error) {
	k, err := ofdm.DataIndex(d)
	if err != nil {
		return 0, err
	}
	bin, err := ofdm.Bin(k)
	if err != nil {
		return 0, err
	}
	return fe.ChannelEst[bin], nil
}

// Equalized returns the zero-forcing-equalized data subcarriers of payload
// symbol s: Y_k / H_hat_k.
func (fe *FrontEnd) Equalized(s int) ([]complex128, error) {
	return fe.EqualizedInto(nil, s)
}

// EqualizedInto is Equalized writing into dst, which is grown (reusing its
// capacity) to ofdm.NumData values.
func (fe *FrontEnd) EqualizedInto(dst []complex128, s int) ([]complex128, error) {
	if s < 0 || s >= len(fe.Bins) {
		return nil, fmt.Errorf("phy: symbol %d out of range [0,%d)", s, len(fe.Bins))
	}
	if cap(dst) < ofdm.NumData {
		dst = make([]complex128, ofdm.NumData)
	}
	out := dst[:ofdm.NumData]
	for d := 0; d < ofdm.NumData; d++ {
		y, err := fe.Bins[s].DataValue(d)
		if err != nil {
			return nil, err
		}
		h, err := fe.ChannelAt(d)
		if err != nil {
			return nil, err
		}
		if dsp.MagSq(h) < 1e-12 {
			out[d] = 0
			continue
		}
		out[d] = y / h
	}
	return out, nil
}

// SubcarrierSNRs returns the estimated linear SNR of each data subcarrier:
// |H_hat_k|^2 / eta (unit-power constellations make Es = 1).
func (fe *FrontEnd) SubcarrierSNRs() ([]float64, error) {
	return fe.SubcarrierSNRsInto(nil)
}

// SubcarrierSNRsInto is SubcarrierSNRs writing into dst, which is grown
// (reusing its capacity) to ofdm.NumData values.
func (fe *FrontEnd) SubcarrierSNRsInto(dst []float64) ([]float64, error) {
	noise := fe.NoiseVar
	if noise <= 0 {
		noise = 1e-12
	}
	if cap(dst) < ofdm.NumData {
		dst = make([]float64, ofdm.NumData)
	}
	out := dst[:ofdm.NumData]
	for d := range out {
		h, err := fe.ChannelAt(d)
		if err != nil {
			return nil, err
		}
		out[d] = dsp.MagSq(h) / noise
	}
	return out, nil
}

// MeasuredSNRdB models the NIC's SNR report: the mean of the per-subcarrier
// SNRs in the dB domain. Jensen's inequality drags this below the true
// (arithmetic-mean) SNR on frequency-selective channels — the paper's
// "measured SNR is dragged to a low value by those fading subcarriers".
func (fe *FrontEnd) MeasuredSNRdB() (float64, error) {
	noise := fe.NoiseVar
	if noise <= 0 {
		noise = 1e-12
	}
	var sum float64
	for d := 0; d < ofdm.NumData; d++ {
		h, err := fe.ChannelAt(d)
		if err != nil {
			return 0, err
		}
		s := dsp.MagSq(h) / noise
		if s < 1e-9 {
			s = 1e-9
		}
		sum += dsp.DB(s)
	}
	return sum / float64(ofdm.NumData), nil
}

// DecodeConfig configures the decoding stage.
type DecodeConfig struct {
	// Mode must match the transmitter's.
	Mode Mode
	// ScramblerSeed must match the transmitter's (zero selects the
	// default).
	ScramblerSeed byte
	// PSDULen is the expected PSDU length in bytes (known from the SIGNAL
	// field in a real system; carried out-of-band here).
	PSDULen int
	// Erased marks silence symbols found by the energy detector:
	// Erased[s][d] erases all bit metrics of data subcarrier d in payload
	// symbol s (the paper's Eq. (7)). nil means no erasures.
	Erased [][]bool
	// LLRBits, when nonzero, quantizes the decoder-input metrics to the
	// given signed fixed-point width (hardware receivers use 3-6 bits);
	// zero keeps full floating-point metrics.
	LLRBits int
}

// Validate reports configuration errors against the front end fe.
func (c DecodeConfig) Validate(fe *FrontEnd) error {
	if !c.Mode.Valid() {
		return fmt.Errorf("phy: invalid mode %+v", c.Mode)
	}
	if c.PSDULen < 0 {
		return fmt.Errorf("phy: negative PSDU length %d", c.PSDULen)
	}
	if need := c.Mode.SymbolsForPSDU(c.PSDULen); need != fe.NumSymbols() {
		return fmt.Errorf("phy: %d payload symbols but mode %v with %d-byte PSDU needs %d",
			fe.NumSymbols(), c.Mode, c.PSDULen, need)
	}
	if c.LLRBits != 0 && (c.LLRBits < 2 || c.LLRBits > 16) {
		return fmt.Errorf("phy: LLR width %d outside [2,16]", c.LLRBits)
	}
	if c.Erased != nil {
		if len(c.Erased) != fe.NumSymbols() {
			return fmt.Errorf("phy: erasure mask has %d symbols, payload has %d", len(c.Erased), fe.NumSymbols())
		}
		for s, row := range c.Erased {
			if len(row) != ofdm.NumData {
				return fmt.Errorf("phy: erasure mask symbol %d has %d entries, want %d", s, len(row), ofdm.NumData)
			}
		}
	}
	return nil
}

// DecodeResult is the output of the decoding stage.
type DecodeResult struct {
	// PSDU is the decoded MAC payload (always PSDULen bytes; integrity is
	// the link layer's concern via its FCS).
	PSDU []byte
	// DataBits are the descrambled data bits (SERVICE + PSDU + tail+pad).
	DataBits []byte
	// HardCodedBits are sign decisions of the pre-deinterleaver metrics in
	// transmission order; comparing them against TxPacket.CodedBits gives
	// the decoder-input BER of Fig. 3.
	HardCodedBits []byte
}

// Decode demaps, deinterleaves, depunctures, Viterbi-decodes, and
// descrambles the payload. Erasures (silence symbols and punctured
// positions) enter the decoder as zero metrics.
func (fe *FrontEnd) Decode(cfg DecodeConfig) (*DecodeResult, error) {
	return fe.DecodeInto(nil, cfg)
}

// DecodeInto is Decode using s as working storage; the returned result and
// its slices alias s and are valid until the next decode with the same
// scratch. A nil s decodes into fresh storage, making DecodeInto(nil, cfg)
// identical to Decode(cfg).
func (fe *FrontEnd) DecodeInto(s *RxScratch, cfg DecodeConfig) (*DecodeResult, error) {
	if err := cfg.Validate(fe); err != nil {
		return nil, err
	}
	// Instrumentation stays in this wrapper (register pressure, see
	// coding.Viterbi.Decode); the erasure count comes from the mask, not
	// the demap loop, for the same reason.
	start := time.Now()
	res, err := fe.decode(s, cfg)
	if err != nil {
		return nil, err
	}
	erased := 0
	for _, row := range cfg.Erased {
		for _, e := range row {
			if e {
				erased++
			}
		}
	}
	mRxDecodes.Inc()
	mRxErasedPositions.Add(uint64(erased))
	mRxDecodeSeconds.ObserveSince(start)
	return res, nil
}

func (fe *FrontEnd) decode(s *RxScratch, cfg DecodeConfig) (*DecodeResult, error) {
	if s == nil {
		s = &RxScratch{}
	}
	m := cfg.Mode
	il, scheme, err := mapperFor(m)
	if err != nil {
		return nil, err
	}
	nbpsc := m.NBPSC()

	ncbps := m.NCBPS()
	nMetrics := fe.NumSymbols() * ncbps
	if cap(s.metrics) < nMetrics {
		s.metrics = make([]float64, nMetrics)
	}
	metrics := s.metrics[:nMetrics]
	if cap(s.hard) < nMetrics {
		s.hard = make([]byte, nMetrics)
	}
	hard := s.hard[:nMetrics]
	if cap(s.symMetrics) < ncbps {
		s.symMetrics = make([]float64, ncbps)
	}
	symMetrics := s.symMetrics[:ncbps]
	for sym := 0; sym < fe.NumSymbols(); sym++ {
		s.eq, err = fe.EqualizedInto(s.eq, sym)
		if err != nil {
			return nil, err
		}
		eq := s.eq
		noise := fe.NoiseVar
		for d := 0; d < ofdm.NumData; d++ {
			dst := symMetrics[d*nbpsc : (d+1)*nbpsc]
			if cfg.Erased != nil && cfg.Erased[sym][d] {
				for i := range dst {
					dst[i] = 0
				}
				continue
			}
			h, err := fe.ChannelAt(d)
			if err != nil {
				return nil, err
			}
			hMag := dsp.MagSq(h)
			postEqNoise := 1e9 // unusable subcarrier: metrics ~ 0
			if hMag > 1e-12 {
				postEqNoise = noise / hMag
			}
			if err := scheme.SoftDemapInto(dst, eq[d], postEqNoise); err != nil {
				return nil, err
			}
		}
		base := sym * ncbps
		for i, v := range symMetrics {
			if v > 0 {
				hard[base+i] = 1
			} else {
				hard[base+i] = 0
			}
		}
		if _, err := coding.DeinterleaveInto(il, metrics[base:base+ncbps], symMetrics); err != nil {
			return nil, err
		}
	}

	s.full, err = coding.DepunctureMetricsInto(s.full, metrics, m.CodeRate)
	if err != nil {
		return nil, err
	}
	full := s.full
	if cfg.LLRBits != 0 {
		full, err = QuantizeMetrics(full, cfg.LLRBits, 0)
		if err != nil {
			return nil, err
		}
	}
	dec := coding.Viterbi{Terminated: true}
	scrambled, err := dec.DecodeInto(&s.vit, full)
	if err != nil {
		return nil, err
	}
	seed := cfg.ScramblerSeed
	if seed == 0 {
		seed = DefaultScramblerSeed
	}
	s.descr = bits.NewScrambler(seed).ScrambleInto(s.descr, scrambled)
	descr := s.descr
	// The tail bits were zeroed post-scrambling at the transmitter, so
	// descrambling mangles them; that region carries no data.
	psduBits := descr[serviceBits : serviceBits+8*cfg.PSDULen]
	s.psdu, err = bits.ToBytesInto(s.psdu, psduBits)
	if err != nil {
		return nil, err
	}
	s.res = DecodeResult{PSDU: s.psdu, DataBits: descr, HardCodedBits: hard}
	return &s.res, nil
}
