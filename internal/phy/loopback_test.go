package phy

import (
	"bytes"
	"math/rand"
	"testing"

	"cos/internal/channel"
	"cos/internal/ofdm"
)

func randPSDU(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	rng.Read(out)
	return out
}

// runLink pushes one packet through a channel at the given actual SNR and
// returns the decode result plus front end.
func runLink(t *testing.T, mode Mode, psdu []byte, ch *channel.TDL, snrDB float64, seed int64) (*TxPacket, *FrontEnd, *DecodeResult) {
	t.Helper()
	tx, err := BuildPacket(TxConfig{Mode: mode}, psdu)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := tx.Samples()
	if err != nil {
		t.Fatal(err)
	}
	h := ch.FrequencyResponse(0)
	nv, err := NoiseVarForActualSNR(h, snrDB)
	if err != nil {
		t.Fatal(err)
	}
	rxSamples := ch.Apply(samples, 0, nv, rand.New(rand.NewSource(seed)))
	fe, err := RunFrontEnd(rxSamples)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := fe.Decode(DecodeConfig{Mode: mode, PSDULen: len(psdu)})
	if err != nil {
		t.Fatal(err)
	}
	return tx, fe, dec
}

func TestLoopbackIdealChannelAllModes(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	flat, err := channel.PositionFlat.New(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Modes() {
		psdu := randPSDU(rng, 200)
		_, _, dec := runLink(t, m, psdu, flat, 40, 92)
		if !bytes.Equal(dec.PSDU, psdu) {
			t.Errorf("%v: ideal-channel loopback corrupted PSDU", m)
		}
	}
}

func TestLoopbackFadingChannelHighSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for _, pos := range channel.Positions() {
		ch, err := pos.New(false)
		if err != nil {
			t.Fatal(err)
		}
		for _, rate := range []int{6, 24, 54} {
			m, _ := ModeByRate(rate)
			psdu := randPSDU(rng, 500)
			_, _, dec := runLink(t, m, psdu, ch, 38, 94)
			if !bytes.Equal(dec.PSDU, psdu) {
				t.Errorf("%v %v: fading loopback corrupted PSDU", pos, m)
			}
		}
	}
}

func TestLoopbackAtModerateSNR(t *testing.T) {
	// Each mode decodes at a few dB above its adaptation threshold.
	rng := rand.New(rand.NewSource(95))
	ch, err := channel.PositionB.New(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Modes() {
		psdu := randPSDU(rng, 300)
		_, _, dec := runLink(t, m, psdu, ch, m.MinSNRdB+6, 96)
		if !bytes.Equal(dec.PSDU, psdu) {
			t.Errorf("%v: failed at %v dB", m, m.MinSNRdB+6)
		}
	}
}

func TestLoopbackWithErasures(t *testing.T) {
	// Zero a scattered set of grid symbols (silence insertion) and mark
	// them erased: the decoder must still recover the PSDU.
	rng := rand.New(rand.NewSource(97))
	ch, err := channel.PositionB.New(false)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := ModeByRate(24)
	psdu := randPSDU(rng, 400)
	tx, err := BuildPacket(TxConfig{Mode: m}, psdu)
	if err != nil {
		t.Fatal(err)
	}
	erased := make([][]bool, tx.NumSymbols())
	nErased := 0
	for s := range erased {
		erased[s] = make([]bool, ofdm.NumData)
		// Erase two subcarriers per symbol (~4% of symbols).
		for _, d := range []int{11, 37} {
			erased[s][d] = true
			if err := tx.Grid.Set(s, d, 0); err != nil {
				t.Fatal(err)
			}
			nErased++
		}
	}
	samples, err := tx.Samples()
	if err != nil {
		t.Fatal(err)
	}
	h := ch.FrequencyResponse(0)
	nv, err := NoiseVarForActualSNR(h, 20)
	if err != nil {
		t.Fatal(err)
	}
	rxSamples := ch.Apply(samples, 0, nv, rand.New(rand.NewSource(98)))
	fe, err := RunFrontEnd(rxSamples)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := fe.Decode(DecodeConfig{Mode: m, PSDULen: len(psdu), Erased: erased})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.PSDU, psdu) {
		t.Fatalf("decode failed with %d erased symbols", nErased)
	}
}

func TestErasureDecodingBeatsIgnorantDecoding(t *testing.T) {
	// Decoding silence symbols WITHOUT marking them erased should be worse:
	// the erased positions demap to garbage metrics that mislead the
	// decoder. Run near the mode's threshold so the budget matters.
	rng := rand.New(rand.NewSource(99))
	ch, err := channel.PositionB.New(false)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := ModeByRate(24)
	okMarked, okIgnorant := 0, 0
	const trials = 12
	for trial := 0; trial < trials; trial++ {
		psdu := randPSDU(rng, 400)
		tx, err := BuildPacket(TxConfig{Mode: m}, psdu)
		if err != nil {
			t.Fatal(err)
		}
		erased := make([][]bool, tx.NumSymbols())
		for s := range erased {
			erased[s] = make([]bool, ofdm.NumData)
			for _, d := range []int{5, 17, 29, 41} {
				erased[s][d] = true
				if err := tx.Grid.Set(s, d, 0); err != nil {
					t.Fatal(err)
				}
			}
		}
		samples, _ := tx.Samples()
		h := ch.FrequencyResponse(0)
		nv, _ := NoiseVarForActualSNR(h, m.MinSNRdB+2.5)
		rxSamples := ch.Apply(samples, 0, nv, rand.New(rand.NewSource(100+int64(trial))))
		fe, err := RunFrontEnd(rxSamples)
		if err != nil {
			t.Fatal(err)
		}
		if dec, err := fe.Decode(DecodeConfig{Mode: m, PSDULen: len(psdu), Erased: erased}); err == nil && bytes.Equal(dec.PSDU, psdu) {
			okMarked++
		}
		if dec, err := fe.Decode(DecodeConfig{Mode: m, PSDULen: len(psdu)}); err == nil && bytes.Equal(dec.PSDU, psdu) {
			okIgnorant++
		}
	}
	if okMarked < okIgnorant {
		t.Errorf("erasure-aware decoding (%d/%d) should beat erasure-ignorant (%d/%d)",
			okMarked, trials, okIgnorant, trials)
	}
	if okMarked == 0 {
		t.Error("erasure-aware decoding never succeeded")
	}
}

func TestFrontEndChannelEstimateAccuracy(t *testing.T) {
	ch, err := channel.PositionA.New(false)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := ModeByRate(12)
	psdu := randPSDU(rand.New(rand.NewSource(101)), 100)
	tx, _ := BuildPacket(TxConfig{Mode: m}, psdu)
	samples, _ := tx.Samples()
	h := ch.FrequencyResponse(0)
	nv, _ := NoiseVarForActualSNR(h, 30)
	rx := ch.Apply(samples, 0, nv, rand.New(rand.NewSource(102)))
	fe, err := RunFrontEnd(rx)
	if err != nil {
		t.Fatal(err)
	}
	// Estimated H close to true H on every data subcarrier.
	for d := 0; d < ofdm.NumData; d++ {
		k, _ := ofdm.DataIndex(d)
		bin, _ := ofdm.Bin(k)
		est, err := fe.ChannelAt(d)
		if err != nil {
			t.Fatal(err)
		}
		diff := est - h[bin]
		if reIm := real(diff)*real(diff) + imag(diff)*imag(diff); reIm > 0.05 {
			t.Errorf("subcarrier %d: |H_est - H|^2 = %v", d, reIm)
		}
	}
}

func TestFrontEndNoiseEstimateTracksTruth(t *testing.T) {
	ch, err := channel.PositionFlat.New(false)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := ModeByRate(12)
	psdu := randPSDU(rand.New(rand.NewSource(103)), 600)
	tx, _ := BuildPacket(TxConfig{Mode: m}, psdu)
	samples, _ := tx.Samples()
	h := ch.FrequencyResponse(0)
	for _, snr := range []float64{8, 15, 25} {
		nv, _ := NoiseVarForActualSNR(h, snr)
		rx := ch.Apply(samples, 0, nv, rand.New(rand.NewSource(104)))
		fe, err := RunFrontEnd(rx)
		if err != nil {
			t.Fatal(err)
		}
		truePostFFT := ofdm.NumSubcarriers * nv
		ratio := fe.NoiseVar / truePostFFT
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("SNR %v: pilot noise estimate %v vs true %v (ratio %v)",
				snr, fe.NoiseVar, truePostFFT, ratio)
		}
		ratio = fe.LTFNoiseVar / truePostFFT
		if ratio < 0.3 || ratio > 3.0 {
			t.Errorf("SNR %v: LTF noise estimate ratio %v", snr, ratio)
		}
	}
}

func TestMeasuredSNRBelowActualOnSelectiveChannel(t *testing.T) {
	// The NIC's dB-mean estimate must sit below the true arithmetic-mean
	// SNR on a frequency-selective channel — the second SNR-gap source.
	ch, err := channel.PositionA.New(false)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := ModeByRate(12)
	psdu := randPSDU(rand.New(rand.NewSource(105)), 400)
	tx, _ := BuildPacket(TxConfig{Mode: m}, psdu)
	samples, _ := tx.Samples()
	h := ch.FrequencyResponse(0)
	nv, _ := NoiseVarForActualSNR(h, 18)
	rx := ch.Apply(samples, 0, nv, rand.New(rand.NewSource(106)))
	fe, err := RunFrontEnd(rx)
	if err != nil {
		t.Fatal(err)
	}
	measured, err := fe.MeasuredSNRdB()
	if err != nil {
		t.Fatal(err)
	}
	actual, err := ActualSNRdB(h, nv)
	if err != nil {
		t.Fatal(err)
	}
	if measured >= actual {
		t.Errorf("measured SNR %v should be below actual %v on selective channel", measured, actual)
	}
	if actual-measured > 12 {
		t.Errorf("measured SNR gap %v dB implausibly large", actual-measured)
	}
}

func TestRunFrontEndErrors(t *testing.T) {
	if _, err := RunFrontEnd(make([]complex128, 50)); err == nil {
		t.Error("short packet should error")
	}
	if _, err := RunFrontEnd(make([]complex128, ofdm.PreambleLen+ofdm.SymbolLen+3)); err == nil {
		t.Error("partial symbol should error")
	}
}

func TestDecodeConfigValidation(t *testing.T) {
	flat, _ := channel.PositionFlat.New(false)
	m, _ := ModeByRate(12)
	psdu := randPSDU(rand.New(rand.NewSource(107)), 50)
	tx, _ := BuildPacket(TxConfig{Mode: m}, psdu)
	samples, _ := tx.Samples()
	rx := flat.Apply(samples, 0, 1e-6, rand.New(rand.NewSource(108)))
	fe, err := RunFrontEnd(rx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fe.Decode(DecodeConfig{Mode: Mode{}, PSDULen: 50}); err == nil {
		t.Error("invalid mode should error")
	}
	if _, err := fe.Decode(DecodeConfig{Mode: m, PSDULen: -1}); err == nil {
		t.Error("negative PSDU length should error")
	}
	if _, err := fe.Decode(DecodeConfig{Mode: m, PSDULen: 5000}); err == nil {
		t.Error("mismatched PSDU length should error")
	}
	bad := make([][]bool, 1)
	bad[0] = make([]bool, ofdm.NumData)
	if _, err := fe.Decode(DecodeConfig{Mode: m, PSDULen: 50, Erased: bad}); err == nil {
		t.Error("wrong-size erasure mask should error")
	}
}

func TestBuildPacketValidation(t *testing.T) {
	if _, err := BuildPacket(TxConfig{}, []byte{1}); err == nil {
		t.Error("zero-value config should error")
	}
}

func TestScramblerSeedMismatchCorruptsData(t *testing.T) {
	flat, _ := channel.PositionFlat.New(false)
	m, _ := ModeByRate(12)
	psdu := randPSDU(rand.New(rand.NewSource(109)), 50)
	tx, _ := BuildPacket(TxConfig{Mode: m, ScramblerSeed: 0x2A}, psdu)
	samples, _ := tx.Samples()
	rx := flat.Apply(samples, 0, 1e-7, rand.New(rand.NewSource(110)))
	fe, _ := RunFrontEnd(rx)
	dec, err := fe.Decode(DecodeConfig{Mode: m, ScramblerSeed: 0x11, PSDULen: 50})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(dec.PSDU, psdu) {
		t.Error("mismatched scrambler seeds should corrupt the payload")
	}
}
