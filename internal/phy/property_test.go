package phy

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"cos/internal/channel"
	"cos/internal/ofdm"
)

// TestLoopbackPropertyRandomModesAndLengths pushes random (mode, payload
// length, payload, position) combinations through the full chain at
// comfortable SNR and demands exact recovery.
func TestLoopbackPropertyRandomModesAndLengths(t *testing.T) {
	positions := []channel.Position{channel.PositionA, channel.PositionB, channel.PositionC, channel.PositionFlat}
	f := func(seed int64, modeIdx, posIdx uint8, lenRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		mode := Modes()[int(modeIdx)%8]
		pos := positions[int(posIdx)%len(positions)]
		psduLen := 1 + int(lenRaw)%1200
		psdu := make([]byte, psduLen)
		rng.Read(psdu)

		tx, err := BuildPacket(TxConfig{Mode: mode}, psdu)
		if err != nil {
			return false
		}
		samples, err := tx.Samples()
		if err != nil {
			return false
		}
		ch, err := pos.NewVariant(false, seed%7)
		if err != nil {
			return false
		}
		h := ch.FrequencyResponse(0)
		nv, err := NoiseVarForActualSNR(h, mode.MinSNRdB+14)
		if err != nil {
			return false
		}
		rx := ch.Apply(samples, 0, nv, rng)
		fe, err := RunFrontEnd(rx)
		if err != nil {
			return false
		}
		dec, err := fe.Decode(DecodeConfig{Mode: mode, PSDULen: psduLen})
		if err != nil {
			return false
		}
		return bytes.Equal(dec.PSDU, psdu)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestGridSymbolCountMatchesFormula: the built grid always matches
// SymbolsForPSDU.
func TestGridSymbolCountMatchesFormula(t *testing.T) {
	f := func(modeIdx uint8, lenRaw uint16) bool {
		mode := Modes()[int(modeIdx)%8]
		psduLen := int(lenRaw) % 2000
		tx, err := BuildPacket(TxConfig{Mode: mode}, make([]byte, psduLen))
		if err != nil {
			return false
		}
		return tx.NumSymbols() == mode.SymbolsForPSDU(psduLen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSamplesLengthInvariant: rendered packets are always preamble plus a
// whole number of OFDM symbols, with and without the SIGNAL field.
func TestSamplesLengthInvariant(t *testing.T) {
	f := func(modeIdx uint8, lenRaw uint16) bool {
		mode := Modes()[int(modeIdx)%8]
		psduLen := int(lenRaw) % 1500
		tx, err := BuildPacket(TxConfig{Mode: mode}, make([]byte, psduLen))
		if err != nil {
			return false
		}
		plain, err := tx.Samples()
		if err != nil {
			return false
		}
		withSig, err := tx.SamplesWithSignal()
		if err != nil {
			return false
		}
		wantPlain := ofdm.PreambleLen + tx.NumSymbols()*ofdm.SymbolLen
		return len(plain) == wantPlain && len(withSig) == wantPlain+ofdm.SymbolLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestDiagnoseSelfConsistency: diagnosing a noiseless loopback reports
// zero errors and zero EVM everywhere.
func TestDiagnoseSelfConsistency(t *testing.T) {
	flat, err := channel.PositionFlat.New(false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(321))
	m, _ := ModeByRate(36)
	psdu := randPSDU(rng, 400)
	tx, _ := BuildPacket(TxConfig{Mode: m}, psdu)
	samples, _ := tx.Samples()
	rx := flat.Apply(samples, 0, 1e-9, rng)
	fe, err := RunFrontEnd(rx)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := fe.Decode(DecodeConfig{Mode: m, PSDULen: len(psdu)})
	if err != nil {
		t.Fatal(err)
	}
	diag, err := Diagnose(tx, fe, nil, dec.HardCodedBits)
	if err != nil {
		t.Fatal(err)
	}
	if diag.DecoderInputBitErrors != 0 {
		t.Errorf("noiseless loopback has %d coded-bit errors", diag.DecoderInputBitErrors)
	}
	for d := 0; d < ofdm.NumData; d++ {
		if diag.SubcarrierErrorCounts[d] != 0 {
			t.Errorf("subcarrier %d has symbol errors in noiseless loopback", d)
		}
		if diag.EVM[d] > 1e-3 {
			t.Errorf("subcarrier %d EVM %v in noiseless loopback", d, diag.EVM[d])
		}
	}
	if len(diag.ErrorPositions()) != 0 {
		t.Error("noiseless loopback reports error positions")
	}
}

// TestDiagnoseExcludesErasedPositions: erased positions must not count as
// symbol errors even though the transmitted grid was silenced there.
func TestDiagnoseExcludesErasedPositions(t *testing.T) {
	flat, err := channel.PositionFlat.New(false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(322))
	m, _ := ModeByRate(24)
	psdu := randPSDU(rng, 200)
	tx, _ := BuildPacket(TxConfig{Mode: m}, psdu)
	erased := make([][]bool, tx.NumSymbols())
	for s := range erased {
		erased[s] = make([]bool, ofdm.NumData)
		erased[s][7] = true
		if err := tx.Grid.Set(s, 7, 0); err != nil {
			t.Fatal(err)
		}
	}
	samples, _ := tx.Samples()
	rx := flat.Apply(samples, 0, 1e-9, rng)
	fe, err := RunFrontEnd(rx)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := Diagnose(tx, fe, erased, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diag.SubcarrierErrorCounts[7] != 0 {
		t.Errorf("erased subcarrier counted %d errors", diag.SubcarrierErrorCounts[7])
	}
	if diag.SymbolsPerSubcarrier[7] != 0 {
		t.Errorf("erased subcarrier counted %d compared symbols", diag.SymbolsPerSubcarrier[7])
	}
	ser, err := diag.SubcarrierSER(7)
	if err != nil || ser != 0 {
		t.Errorf("SER of fully-erased subcarrier = %v, %v", ser, err)
	}
	if _, err := diag.SubcarrierSER(48); err == nil {
		t.Error("out-of-range subcarrier should error")
	}
}
