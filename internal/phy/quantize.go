package phy

import (
	"fmt"
	"math"
	"sort"
)

// QuantizeMetrics models a hardware receiver's fixed-point LLR path:
// metrics are clipped at clip times the median magnitude of the non-erased
// metrics and uniformly quantized to 2^bits-1 signed levels (zero stays
// exactly zero, so erasures survive quantization). bits must be in [2,16];
// clip <= 0 selects a 4x-median clipping point.
//
// The median-based scale matters: post-equalization LLRs span orders of
// magnitude across subcarriers (confidence scales with subcarrier SNR), so
// an RMS scale would let the strongest subcarriers crush the weakest to
// zero. Saturating the strong ones instead is harmless — they are already
// certain. Real Viterbi decoders run on 3-6 bit soft inputs; the
// quantization ablation measures how little that costs the CoS pipeline.
func QuantizeMetrics(metrics []float64, bits int, clip float64) ([]float64, error) {
	if bits < 2 || bits > 16 {
		return nil, fmt.Errorf("phy: LLR width %d outside [2,16]", bits)
	}
	if clip <= 0 {
		clip = 4
	}
	mags := make([]float64, 0, len(metrics))
	for _, m := range metrics {
		if m != 0 {
			mags = append(mags, math.Abs(m))
		}
	}
	out := make([]float64, len(metrics))
	if len(mags) == 0 {
		return out, nil // all erased
	}
	sort.Float64s(mags)
	median := mags[len(mags)/2]
	if median == 0 {
		median = mags[len(mags)-1]
	}
	maxMag := clip * median
	levels := float64(int(1)<<(bits-1)) - 1 // e.g. 7 for 4-bit signed
	step := maxMag / levels
	for i, m := range metrics {
		if m == 0 {
			continue // erasure: exactly zero in any width
		}
		q := math.Round(m / step)
		if q > levels {
			q = levels
		}
		if q < -levels {
			q = -levels
		}
		out[i] = q * step
	}
	return out, nil
}
