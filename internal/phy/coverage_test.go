package phy

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"cos/internal/channel"
	"cos/internal/ofdm"
)

func TestDecoderInputBERHelper(t *testing.T) {
	d := &Diagnostics{DecoderInputBitErrors: 5, DecoderInputBits: 100}
	if got := d.DecoderInputBER(); got != 0.05 {
		t.Errorf("DecoderInputBER = %v", got)
	}
	var empty Diagnostics
	if empty.DecoderInputBER() != 0 {
		t.Error("empty diagnostics BER should be 0")
	}
}

func TestReconstructGridMatchesOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	m, _ := ModeByRate(36)
	psdu := randPSDU(rng, 300)
	cfg := TxConfig{Mode: m}
	tx, err := BuildPacket(cfg, psdu)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := ReconstructGrid(cfg, psdu)
	if err != nil {
		t.Fatal(err)
	}
	if grid.NumSymbols() != tx.NumSymbols() {
		t.Fatalf("reconstructed %d symbols, want %d", grid.NumSymbols(), tx.NumSymbols())
	}
	for s := 0; s < grid.NumSymbols(); s++ {
		a, _ := grid.Symbol(s)
		b, _ := tx.Grid.Symbol(s)
		for d := range a {
			if cmplx.Abs(a[d]-b[d]) > 1e-12 {
				t.Fatalf("reconstructed grid differs at (%d,%d)", s, d)
			}
		}
	}
	if _, err := ReconstructGrid(TxConfig{}, psdu); err == nil {
		t.Error("invalid config should error")
	}
}

func TestFrontEndAccessorBounds(t *testing.T) {
	flat, _ := channel.PositionFlat.New(false)
	m, _ := ModeByRate(12)
	psdu := randPSDU(rand.New(rand.NewSource(602)), 50)
	tx, _ := BuildPacket(TxConfig{Mode: m}, psdu)
	samples, _ := tx.Samples()
	rx := flat.Apply(samples, 0, 1e-6, rand.New(rand.NewSource(603)))
	fe, err := RunFrontEnd(rx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fe.ChannelAt(-1); err == nil {
		t.Error("ChannelAt(-1) should error")
	}
	if _, err := fe.ChannelAt(48); err == nil {
		t.Error("ChannelAt(48) should error")
	}
	if _, err := fe.Equalized(-1); err == nil {
		t.Error("Equalized(-1) should error")
	}
	if _, err := fe.Equalized(fe.NumSymbols()); err == nil {
		t.Error("Equalized out of range should error")
	}
}

func TestEqualizedDeadSubcarrierYieldsZero(t *testing.T) {
	// Force a (near-)zero channel estimate and confirm equalization does
	// not blow up.
	flat, _ := channel.PositionFlat.New(false)
	m, _ := ModeByRate(12)
	psdu := randPSDU(rand.New(rand.NewSource(604)), 50)
	tx, _ := BuildPacket(TxConfig{Mode: m}, psdu)
	samples, _ := tx.Samples()
	rx := flat.Apply(samples, 0, 1e-9, rand.New(rand.NewSource(605)))
	fe, err := RunFrontEnd(rx)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := ofdm.DataIndex(10)
	bin, _ := ofdm.Bin(k)
	fe.ChannelEst[bin] = 0
	eq, err := fe.Equalized(0)
	if err != nil {
		t.Fatal(err)
	}
	if eq[10] != 0 {
		t.Errorf("dead subcarrier equalized to %v, want 0", eq[10])
	}
}

func TestSNRHelpersErrors(t *testing.T) {
	var h [ofdm.NumSubcarriers]complex128
	if _, err := ActualSNRdB(h, 0); err == nil {
		t.Error("zero noise variance should error")
	}
	if _, err := NoiseVarForActualSNR(h, 10); err == nil {
		t.Error("zero-gain channel should error")
	}
	for i := range h {
		h[i] = 1
	}
	nv, err := NoiseVarForActualSNR(h, 20)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ActualSNRdB(h, nv)
	if err != nil {
		t.Fatal(err)
	}
	if got < 19.99 || got > 20.01 {
		t.Errorf("SNR roundtrip = %v, want 20", got)
	}
}

func TestEncodeSignalErrors(t *testing.T) {
	if _, err := EncodeSignal(Mode{RateMbps: 99}, 100); err == nil {
		t.Error("unknown mode should error")
	}
	m, _ := ModeByRate(6)
	sig, err := EncodeSignal(m, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != ofdm.NumData {
		t.Errorf("SIGNAL symbol has %d points", len(sig))
	}
	// BPSK points only.
	for i, p := range sig {
		if imag(p) != 0 || (real(p) != 1 && real(p) != -1) {
			t.Fatalf("SIGNAL point %d = %v is not BPSK", i, p)
		}
	}
}

func TestSamplesWithSignalErrors(t *testing.T) {
	// An oversized PSDU cannot be described by the 12-bit LENGTH field.
	m, _ := ModeByRate(54)
	tx, err := BuildPacket(TxConfig{Mode: m}, make([]byte, MaxSignalLength+1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.SamplesWithSignal(); err == nil {
		t.Error("PSDU beyond the LENGTH field should error")
	}
}

func TestMeasuredSNRFloorsDeadSubcarriers(t *testing.T) {
	flat, _ := channel.PositionFlat.New(false)
	m, _ := ModeByRate(12)
	psdu := randPSDU(rand.New(rand.NewSource(606)), 50)
	tx, _ := BuildPacket(TxConfig{Mode: m}, psdu)
	samples, _ := tx.Samples()
	rx := flat.Apply(samples, 0, 1e-6, rand.New(rand.NewSource(607)))
	fe, err := RunFrontEnd(rx)
	if err != nil {
		t.Fatal(err)
	}
	// Kill half the band; the dB-mean must stay finite.
	for d := 0; d < 24; d++ {
		k, _ := ofdm.DataIndex(d)
		bin, _ := ofdm.Bin(k)
		fe.ChannelEst[bin] = 0
	}
	got, err := fe.MeasuredSNRdB()
	if err != nil {
		t.Fatal(err)
	}
	if got != got || got < -100 { // NaN or absurd
		t.Errorf("measured SNR with dead subcarriers = %v", got)
	}
}
