package phy

import (
	"fmt"
	"time"

	"cos/internal/bits"
	"cos/internal/coding"
	"cos/internal/ofdm"
)

// preambleSamples caches the (fixed) 320-sample PLCP preamble so SamplesInto
// never rebuilds it.
var preambleSamples = ofdm.Preamble()

// TxScratch is the transmit chain's reusable working storage. One scratch
// serves one transmitter; it must not be shared across concurrent builds.
// Packets returned by BuildPacketInto alias the scratch (PSDU, grid, coded
// bits) and are valid only until the next build with the same scratch.
// The zero value is ready to use; buffers grow on demand and are retained.
type TxScratch struct {
	dataBits    []byte
	scrambled   []byte
	coded       []byte
	punctured   []byte
	interleaved []byte
	points      []complex128
	grid        ofdm.Grid
	psdu        []byte
	pkt         TxPacket
}

// BuildPacketInto is BuildPacket using s as working storage; the returned
// packet aliases s and is valid until the next build with the same scratch.
// A nil s builds into fresh storage, making BuildPacketInto(nil, cfg, psdu)
// equivalent to BuildPacket(cfg, psdu).
func BuildPacketInto(s *TxScratch, cfg TxConfig, psdu []byte) (*TxPacket, error) {
	if s == nil {
		s = &TxScratch{}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Instrumentation mirrors BuildPacket so metric counts do not depend on
	// which entry point built the packet.
	start := time.Now()
	pkt, err := buildPacketInto(s, cfg, psdu)
	if err != nil {
		return nil, err
	}
	mTxPackets.Inc()
	mTxBuildSeconds.ObserveSince(start)
	return pkt, nil
}

func buildPacketInto(s *TxScratch, cfg TxConfig, psdu []byte) (*TxPacket, error) {
	m := cfg.Mode

	// Assemble data bits: SERVICE (16 zeros) + PSDU + 6 tail zeros, padded
	// to a whole number of OFDM symbols.
	nSym := m.SymbolsForPSDU(len(psdu))
	total := nSym * m.NDBPS()
	if cap(s.dataBits) < total {
		s.dataBits = make([]byte, total)
	}
	s.dataBits = s.dataBits[:total]
	for i := range s.dataBits {
		s.dataBits[i] = 0
	}
	bits.FromBytesInto(s.dataBits[serviceBits:serviceBits+8*len(psdu)], psdu)

	// Scramble, then zero the tail and pad bits (see buildPacket for why the
	// pad is zeroed too).
	scr := bits.NewScrambler(cfg.seed())
	s.scrambled = scr.ScrambleInto(s.scrambled, s.dataBits)
	tailStart := serviceBits + 8*len(psdu)
	for i := tailStart; i < len(s.scrambled); i++ {
		s.scrambled[i] = 0
	}

	var err error
	s.coded, err = coding.ConvEncodeInto(s.coded, s.scrambled)
	if err != nil {
		return nil, err
	}
	s.punctured, err = coding.PunctureInto(s.punctured, s.coded, m.CodeRate)
	if err != nil {
		return nil, err
	}
	il, err := coding.CachedInterleaver(m.NCBPS(), m.NBPSC())
	if err != nil {
		return nil, err
	}
	s.interleaved, err = coding.InterleaveInto(il, s.interleaved, s.punctured)
	if err != nil {
		return nil, err
	}
	s.points, err = m.Modulation.MapBitsInto(s.points, s.interleaved)
	if err != nil {
		return nil, err
	}
	if len(s.points) != nSym*ofdm.NumData {
		return nil, fmt.Errorf("phy: internal error: %d points for %d symbols", len(s.points), nSym)
	}
	s.grid.Resize(nSym)
	for sym := 0; sym < nSym; sym++ {
		row, err := s.grid.Symbol(sym)
		if err != nil {
			return nil, err
		}
		copy(row, s.points[sym*ofdm.NumData:(sym+1)*ofdm.NumData])
	}
	if cap(s.psdu) < len(psdu) {
		s.psdu = make([]byte, len(psdu))
	}
	s.psdu = s.psdu[:len(psdu)]
	copy(s.psdu, psdu)
	s.pkt = TxPacket{
		Config:        cfg,
		PSDU:          s.psdu,
		Grid:          &s.grid,
		CodedBits:     s.interleaved,
		ScrambledBits: s.scrambled,
	}
	return &s.pkt, nil
}

// SamplesInto is Samples writing into dst, which is grown (reusing its
// capacity) to preamble + payload length. The cached preamble is copied and
// the grid is modulated directly into the destination.
func (p *TxPacket) SamplesInto(dst []complex128) ([]complex128, error) {
	start := time.Now()
	n := ofdm.PreambleLen + p.Grid.NumSymbols()*ofdm.SymbolLen
	if cap(dst) < n {
		dst = make([]complex128, n)
	}
	dst = dst[:n]
	copy(dst, preambleSamples)
	if _, err := p.Grid.ModulateInto(1, dst[ofdm.PreambleLen:]); err != nil {
		return nil, err
	}
	mTxModulateSeconds.ObserveSince(start)
	return dst, nil
}

// ReconstructGridInto is ReconstructGrid using s as working storage; the
// returned grid aliases s. It counts as a packet build, exactly like
// ReconstructGrid.
func ReconstructGridInto(s *TxScratch, cfg TxConfig, psdu []byte) (*ofdm.Grid, error) {
	pkt, err := BuildPacketInto(s, cfg, psdu)
	if err != nil {
		return nil, err
	}
	return pkt.Grid, nil
}

// RxScratch is the receive chain's reusable working storage: the front-end
// state plus every intermediate decode buffer. One scratch serves one
// receiver; results returned by RunFrontEndInto and DecodeInto alias the
// scratch and are valid only until its next use. The zero value is ready to
// use.
type RxScratch struct {
	fe         FrontEnd
	eq         []complex128
	metrics    []float64
	symMetrics []float64
	full       []float64
	hard       []byte
	vit        coding.ViterbiScratch
	descr      []byte
	psdu       []byte
	res        DecodeResult
}

// RunFrontEndInto is RunFrontEnd filling s's front end. The returned front
// end aliases s and is valid until the next RunFrontEndInto with the same
// scratch. A nil s runs into fresh storage.
func RunFrontEndInto(s *RxScratch, samples []complex128) (*FrontEnd, error) {
	if s == nil {
		s = &RxScratch{}
	}
	if len(samples) < ofdm.PreambleLen+ofdm.SymbolLen {
		return nil, fmt.Errorf("phy: packet too short: %d samples", len(samples))
	}
	// Instrumentation mirrors RunFrontEnd (see the register-pressure note
	// there).
	start := time.Now()
	if err := frontEndInto(&s.fe, samples, 1); err != nil {
		return nil, err
	}
	mRxFrontEnds.Inc()
	mRxFrontEndSeconds.ObserveSince(start)
	return &s.fe, nil
}
