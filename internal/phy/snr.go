package phy

import (
	"fmt"

	"cos/internal/dsp"
	"cos/internal/ofdm"
)

// MeanChannelGain returns the arithmetic mean of |H_k|^2 over the 52
// occupied subcarriers.
func MeanChannelGain(h [ofdm.NumSubcarriers]complex128) float64 {
	var sum float64
	n := 0
	for k := -26; k <= 26; k++ {
		if k == 0 {
			continue
		}
		bin, _ := ofdm.Bin(k)
		sum += dsp.MagSq(h[bin])
		n++
	}
	return sum / float64(n)
}

// ActualSNRdB returns the true channel SNR — what the paper's channel
// sounder measures — given the exact frequency response and the time-domain
// noise variance: the arithmetic-mean subcarrier SNR in dB. Post-FFT noise
// variance is NumSubcarriers times the per-sample variance.
func ActualSNRdB(h [ofdm.NumSubcarriers]complex128, timeNoiseVar float64) (float64, error) {
	if timeNoiseVar <= 0 {
		return 0, fmt.Errorf("phy: non-positive noise variance %v", timeNoiseVar)
	}
	return dsp.DB(MeanChannelGain(h) / (ofdm.NumSubcarriers * timeNoiseVar)), nil
}

// NoiseVarForActualSNR inverts ActualSNRdB: the time-domain noise variance
// that produces the requested true subcarrier-average SNR over channel h.
func NoiseVarForActualSNR(h [ofdm.NumSubcarriers]complex128, snrDB float64) (float64, error) {
	gain := MeanChannelGain(h)
	if gain <= 0 {
		return 0, fmt.Errorf("phy: channel has zero gain")
	}
	return gain / (ofdm.NumSubcarriers * dsp.Linear(snrDB)), nil
}
