package phy

import (
	"testing"

	"cos/internal/coding"
	"cos/internal/modulation"
)

func TestModeTable(t *testing.T) {
	ms := Modes()
	if len(ms) != 8 {
		t.Fatalf("Modes() returned %d modes, want 8", len(ms))
	}
	// NDBPS values fixed by the standard.
	wantNDBPS := map[int]int{6: 24, 9: 36, 12: 48, 18: 72, 24: 96, 36: 144, 48: 192, 54: 216}
	wantNCBPS := map[int]int{6: 48, 9: 48, 12: 96, 18: 96, 24: 192, 36: 192, 48: 288, 54: 288}
	for _, m := range ms {
		if !m.Valid() {
			t.Errorf("mode %v invalid", m)
		}
		if got := m.NDBPS(); got != wantNDBPS[m.RateMbps] {
			t.Errorf("%v NDBPS = %d, want %d", m, got, wantNDBPS[m.RateMbps])
		}
		if got := m.NCBPS(); got != wantNCBPS[m.RateMbps] {
			t.Errorf("%v NCBPS = %d, want %d", m, got, wantNCBPS[m.RateMbps])
		}
		// Nominal rate = NDBPS / 4 us.
		if got := m.DataRate(); got != float64(m.RateMbps)*1e6 {
			t.Errorf("%v DataRate = %v, want %v", m, got, float64(m.RateMbps)*1e6)
		}
	}
	// Ascending rates and thresholds.
	for i := 1; i < len(ms); i++ {
		if ms[i].RateMbps <= ms[i-1].RateMbps {
			t.Error("modes not in ascending rate order")
		}
		if ms[i].MinSNRdB <= ms[i-1].MinSNRdB {
			t.Error("SNR thresholds not ascending")
		}
	}
}

func TestModeByRate(t *testing.T) {
	m, err := ModeByRate(24)
	if err != nil {
		t.Fatal(err)
	}
	if m.Modulation != modulation.QAM16 || m.CodeRate != coding.Rate1_2 {
		t.Errorf("24 Mb/s = %v, want (16QAM,1/2)", m)
	}
	// The paper's anchor: 24 Mb/s requires 12 dB.
	if m.MinSNRdB != 12.0 {
		t.Errorf("24 Mb/s MinSNRdB = %v, want 12", m.MinSNRdB)
	}
	if _, err := ModeByRate(33); err == nil {
		t.Error("rate 33 should error")
	}
}

func TestEvaluatedModes(t *testing.T) {
	ms := EvaluatedModes()
	if len(ms) != 6 {
		t.Fatalf("EvaluatedModes returned %d, want 6", len(ms))
	}
	if ms[0].RateMbps != 12 || ms[5].RateMbps != 54 {
		t.Errorf("EvaluatedModes range = %d..%d", ms[0].RateMbps, ms[5].RateMbps)
	}
}

func TestSelectMode(t *testing.T) {
	cases := []struct {
		snr  float64
		want int
	}{
		{0, 6}, {4.0, 6}, {5.4, 6}, {5.5, 9}, {7.1, 12},
		{9.4, 12}, {12.0, 24}, {15.0, 24}, {16.0, 36},
		{21.9, 48}, {22.0, 54}, {30, 54},
	}
	for _, c := range cases {
		if got := SelectMode(c.snr); got.RateMbps != c.want {
			t.Errorf("SelectMode(%v) = %d Mb/s, want %d", c.snr, got.RateMbps, c.want)
		}
	}
}

func TestSymbolsForPSDU(t *testing.T) {
	m, _ := ModeByRate(24) // NDBPS 96
	// 1024-byte PSDU: 16 + 8192 + 6 = 8214 bits -> ceil(8214/96) = 86.
	if got := m.SymbolsForPSDU(1024); got != 86 {
		t.Errorf("SymbolsForPSDU(1024) = %d, want 86", got)
	}
	if got := m.SymbolsForPSDU(0); got != 1 {
		t.Errorf("SymbolsForPSDU(0) = %d, want 1", got)
	}
}

func TestModeString(t *testing.T) {
	m, _ := ModeByRate(36)
	if got := m.String(); got != "(16QAM,3/4) 36 Mb/s" {
		t.Errorf("String = %q", got)
	}
}
