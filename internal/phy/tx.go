package phy

import (
	"fmt"
	"time"

	"cos/internal/bits"
	"cos/internal/coding"
	"cos/internal/modulation"
	"cos/internal/obs"
	"cos/internal/ofdm"
)

// Transmit-chain metrics: stage timings for the two TX stages (bit
// processing up to the frequency grid, and OFDM modulation to samples).
var (
	mTxPackets = obs.Default().Counter("phy_tx_packets_total",
		"Packets built by the transmit chain.")
	mTxBuildSeconds = obs.Default().Histogram("phy_tx_build_seconds",
		"BuildPacket latency: scramble, encode, puncture, interleave, map.", nil)
	mTxModulateSeconds = obs.Default().Histogram("phy_tx_modulate_seconds",
		"Samples() latency: OFDM modulation of the grid plus preamble.", nil)
)

// serviceBits is the length of the 802.11a SERVICE field (16 zero bits; the
// first 7 synchronize the descrambler).
const serviceBits = 16

// DefaultScramblerSeed is the scrambler initial state used when a TxConfig
// does not specify one.
const DefaultScramblerSeed = 0x5D

// TxConfig configures a transmission.
type TxConfig struct {
	// Mode is the 802.11a transmission mode.
	Mode Mode
	// ScramblerSeed is the 7-bit scrambler initial state; zero selects
	// DefaultScramblerSeed. Both ends of a link must agree (the standard
	// carries the seed in the SERVICE field; we fix it per link).
	ScramblerSeed byte
}

func (c TxConfig) seed() byte {
	if c.ScramblerSeed == 0 {
		return DefaultScramblerSeed
	}
	return c.ScramblerSeed
}

// Validate reports configuration errors.
func (c TxConfig) Validate() error {
	if !c.Mode.Valid() {
		return fmt.Errorf("phy: invalid mode %+v", c.Mode)
	}
	return nil
}

// TxPacket is a fully built transmission, exposed at the grid stage so the
// CoS power controller can erase symbols before OFDM modulation.
type TxPacket struct {
	// Config echoes the transmit configuration.
	Config TxConfig
	// PSDU is the MAC payload carried by the packet.
	PSDU []byte
	// Grid holds the frequency-domain data symbols. Mutating it (e.g.
	// zeroing elements to create silence symbols) affects Samples().
	Grid *ofdm.Grid
	// CodedBits are the interleaved, punctured coded bits in transmission
	// order — the ground truth for decoder-input BER measurements.
	CodedBits []byte
	// ScrambledBits are the scrambled data bits fed to the encoder
	// (SERVICE + PSDU + tail + pad).
	ScrambledBits []byte
}

// NumSymbols returns the number of payload OFDM symbols.
func (p *TxPacket) NumSymbols() int { return p.Grid.NumSymbols() }

// BuildPacket runs the 802.11a transmit chain up to the frequency-domain
// grid: SERVICE + PSDU + tail + pad, scramble, convolutionally encode,
// puncture, interleave, and map onto constellation points.
func BuildPacket(cfg TxConfig, psdu []byte) (*TxPacket, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Instrumentation stays in this wrapper (register pressure, see
	// coding.Viterbi.Decode).
	start := time.Now()
	pkt, err := buildPacket(cfg, psdu)
	if err != nil {
		return nil, err
	}
	mTxPackets.Inc()
	mTxBuildSeconds.ObserveSince(start)
	return pkt, nil
}

func buildPacket(cfg TxConfig, psdu []byte) (*TxPacket, error) {
	m := cfg.Mode

	// Assemble data bits: SERVICE (16 zeros) + PSDU + 6 tail zeros, padded
	// to a whole number of OFDM symbols.
	nSym := m.SymbolsForPSDU(len(psdu))
	total := nSym * m.NDBPS()
	data := make([]byte, 0, total)
	data = append(data, make([]byte, serviceBits)...)
	data = append(data, bits.FromBytes(psdu)...)
	data = append(data, make([]byte, total-len(data))...)

	// Scramble everything, then zero the tail bits so the encoder is
	// flushed to the zero state (17.3.5.3). The pad bits after the tail are
	// zeroed as well — unlike the standard, which transmits them scrambled —
	// so the trellis stays terminated through the end of the block; pad bits
	// carry no information either way.
	scr := bits.NewScrambler(cfg.seed())
	scrambled := scr.Scramble(data)
	tailStart := serviceBits + 8*len(psdu)
	for i := tailStart; i < len(scrambled); i++ {
		scrambled[i] = 0
	}

	coded, err := coding.ConvEncode(scrambled)
	if err != nil {
		return nil, err
	}
	punctured, err := coding.Puncture(coded, m.CodeRate)
	if err != nil {
		return nil, err
	}
	il, err := coding.CachedInterleaver(m.NCBPS(), m.NBPSC())
	if err != nil {
		return nil, err
	}
	interleaved, err := coding.Interleave(il, punctured)
	if err != nil {
		return nil, err
	}
	points, err := m.Modulation.MapBits(interleaved)
	if err != nil {
		return nil, err
	}
	if len(points) != nSym*ofdm.NumData {
		return nil, fmt.Errorf("phy: internal error: %d points for %d symbols", len(points), nSym)
	}
	grid := ofdm.NewGrid(nSym)
	for s := 0; s < nSym; s++ {
		row, err := grid.Symbol(s)
		if err != nil {
			return nil, err
		}
		copy(row, points[s*ofdm.NumData:(s+1)*ofdm.NumData])
	}
	return &TxPacket{
		Config:        cfg,
		PSDU:          append([]byte(nil), psdu...),
		Grid:          grid,
		CodedBits:     interleaved,
		ScrambledBits: scrambled,
	}, nil
}

// Samples renders the packet to baseband time-domain samples: the 320-sample
// PLCP preamble followed by the cyclic-prefixed OFDM payload symbols. Call
// after any grid mutation (silence insertion).
func (p *TxPacket) Samples() ([]complex128, error) {
	start := time.Now()
	payload, err := p.Grid.Modulate(1) // data symbols start at pilot index 1
	if err != nil {
		return nil, err
	}
	out := make([]complex128, 0, ofdm.PreambleLen+len(payload))
	out = append(out, ofdm.Preamble()...)
	out = append(out, payload...)
	mTxModulateSeconds.ObserveSince(start)
	return out, nil
}

// ReconstructGrid rebuilds the transmitted frequency-domain grid from a
// correctly decoded PSDU. This is how the paper's receiver obtains ideal
// constellation points for EVM after a CRC pass (Sec. III-D): re-map the
// decoded bits rather than assume genie knowledge.
func ReconstructGrid(cfg TxConfig, psdu []byte) (*ofdm.Grid, error) {
	pkt, err := BuildPacket(cfg, psdu)
	if err != nil {
		return nil, err
	}
	return pkt.Grid, nil
}

// mapperFor returns the interleaver for a mode (shared by RX). Interleavers
// are immutable after construction, so the process-wide cache is safe to
// share.
func mapperFor(m Mode) (*coding.Interleaver, modulation.Scheme, error) {
	il, err := coding.CachedInterleaver(m.NCBPS(), m.NBPSC())
	if err != nil {
		return nil, 0, err
	}
	return il, m.Modulation, nil
}
