package phy

import (
	"fmt"

	"cos/internal/bits"
	"cos/internal/modulation"
	"cos/internal/ofdm"
)

// Diagnostics aggregates the per-packet measurements behind the paper's
// Figs. 3, 5, 6 and 7: decoder-input BER, per-subcarrier symbol error
// rates, symbol-error positions within the packet, and per-subcarrier EVM.
type Diagnostics struct {
	// DecoderInputBitErrors counts hard-decision errors on the coded bits
	// entering the decoder (excluding erased positions).
	DecoderInputBitErrors int
	// DecoderInputBits is the number of coded bits compared.
	DecoderInputBits int
	// SymbolErrors[s][d] marks a demodulation error at payload symbol s,
	// data subcarrier d (excluding erased positions).
	SymbolErrors [][]bool
	// SubcarrierErrorCounts[d] counts symbol errors on data subcarrier d.
	SubcarrierErrorCounts [ofdm.NumData]int
	// SymbolsPerSubcarrier[d] counts compared symbols per subcarrier.
	SymbolsPerSubcarrier [ofdm.NumData]int
	// EVM[d] is the per-subcarrier EVM of Eq. (1), a fraction.
	EVM [ofdm.NumData]float64
	// ErrorVectors[d] is the mean error-vector magnitude |d_j| per data
	// subcarrier: the D(t) entries of Eq. (2).
	ErrorVectors [ofdm.NumData]float64
}

// DecoderInputBER returns the fraction of erroneous coded bits at the
// decoder input.
func (d *Diagnostics) DecoderInputBER() float64 {
	if d.DecoderInputBits == 0 {
		return 0
	}
	return float64(d.DecoderInputBitErrors) / float64(d.DecoderInputBits)
}

// SubcarrierSER returns the symbol error rate of data subcarrier d.
func (d *Diagnostics) SubcarrierSER(sc int) (float64, error) {
	if sc < 0 || sc >= ofdm.NumData {
		return 0, fmt.Errorf("phy: subcarrier %d out of range", sc)
	}
	if d.SymbolsPerSubcarrier[sc] == 0 {
		return 0, nil
	}
	return float64(d.SubcarrierErrorCounts[sc]) / float64(d.SymbolsPerSubcarrier[sc]), nil
}

// ErrorPositions returns the flattened in-packet positions (symbol-major,
// subcarrier-minor: pos = s*48 + d) of every symbol error — the x-axis of
// Fig. 6(a), whose ~48-position periodicity reveals the weak subcarriers.
func (d *Diagnostics) ErrorPositions() []int {
	var out []int
	for s, row := range d.SymbolErrors {
		for sc, e := range row {
			if e {
				out = append(out, s*ofdm.NumData+sc)
			}
		}
	}
	return out
}

// FlattenMask returns the flattened symbol-major positions (pos = s*48 + d)
// of every set entry in a [symbol][subcarrier] mask; nil masks flatten to
// nil. The inverse mapping is pos/48 (symbol), pos%48 (subcarrier) — the
// same layout Diagnostics.ErrorPositions uses.
func FlattenMask(mask [][]bool) []int {
	var out []int
	for s, row := range mask {
		for d, set := range row {
			if set {
				out = append(out, s*ofdm.NumData+d)
			}
		}
	}
	return out
}

// Diagnose compares a received front end against the transmitted packet.
// erased marks positions to exclude (silence symbols); it may be nil.
// hardCoded, if non-nil, is DecodeResult.HardCodedBits and enables the
// decoder-input BER measurement.
func Diagnose(tx *TxPacket, fe *FrontEnd, erased [][]bool, hardCoded []byte) (*Diagnostics, error) {
	if tx.NumSymbols() != fe.NumSymbols() {
		return nil, fmt.Errorf("phy: tx has %d symbols, rx has %d", tx.NumSymbols(), fe.NumSymbols())
	}
	if erased != nil && len(erased) != fe.NumSymbols() {
		return nil, fmt.Errorf("phy: erasure mask has %d symbols, want %d", len(erased), fe.NumSymbols())
	}
	m := tx.Config.Mode
	nbpsc := m.NBPSC()
	d := &Diagnostics{SymbolErrors: make([][]bool, fe.NumSymbols())}

	type acc struct{ rx, ideal []complex128 }
	perSC := make([]acc, ofdm.NumData)

	for s := 0; s < fe.NumSymbols(); s++ {
		d.SymbolErrors[s] = make([]bool, ofdm.NumData)
		eq, err := fe.Equalized(s)
		if err != nil {
			return nil, err
		}
		txRow, err := tx.Grid.Symbol(s)
		if err != nil {
			return nil, err
		}
		for sc := 0; sc < ofdm.NumData; sc++ {
			if erased != nil && erased[s][sc] {
				continue
			}
			rxBits, err := m.Modulation.HardDemap(eq[sc])
			if err != nil {
				return nil, err
			}
			txBits, err := m.Modulation.HardDemap(txRow[sc])
			if err != nil {
				return nil, err
			}
			if !bits.Equal(rxBits, txBits) {
				d.SymbolErrors[s][sc] = true
				d.SubcarrierErrorCounts[sc]++
			}
			d.SymbolsPerSubcarrier[sc]++
			perSC[sc].rx = append(perSC[sc].rx, eq[sc])
			perSC[sc].ideal = append(perSC[sc].ideal, txRow[sc])

			if hardCoded != nil {
				base := s*m.NCBPS() + sc*nbpsc
				txBase := base // CodedBits are in the same transmission order
				for i := 0; i < nbpsc; i++ {
					if hardCoded[base+i] != tx.CodedBits[txBase+i] {
						d.DecoderInputBitErrors++
					}
					d.DecoderInputBits++
				}
			}
		}
	}

	for sc := range perSC {
		if len(perSC[sc].rx) == 0 {
			continue
		}
		evm, err := modulation.EVM(m.Modulation, perSC[sc].rx, perSC[sc].ideal)
		if err != nil {
			return nil, err
		}
		d.EVM[sc] = evm
		mags, err := modulation.ErrorVectorMagnitudes(perSC[sc].rx, perSC[sc].ideal)
		if err != nil {
			return nil, err
		}
		var sum float64
		for _, v := range mags {
			sum += v
		}
		d.ErrorVectors[sc] = sum / float64(len(mags))
	}
	return d, nil
}
