package phy

import (
	"bytes"
	"math/rand"
	"testing"

	"cos/internal/channel"
)

func TestQuantizeMetricsBasics(t *testing.T) {
	in := []float64{1, -1, 0, 0.5, -3, 100}
	out, err := QuantizeMetrics(in, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out[2] != 0 {
		t.Error("erasure (zero metric) must survive quantization as zero")
	}
	// Signs preserved.
	for i := range in {
		if in[i] > 0 && out[i] < 0 || in[i] < 0 && out[i] > 0 {
			t.Errorf("sign flipped at %d: %v -> %v", i, in[i], out[i])
		}
	}
	// Clipping: the huge value saturates.
	if out[5] <= 0 || out[5] > 10*out[0] {
		t.Errorf("clipping wrong: %v", out)
	}
	if _, err := QuantizeMetrics(in, 1, 0); err == nil {
		t.Error("1-bit width should error")
	}
	if _, err := QuantizeMetrics(in, 17, 0); err == nil {
		t.Error("17-bit width should error")
	}
	// All-erased input stays all zero.
	z, err := QuantizeMetrics(make([]float64, 8), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range z {
		if v != 0 {
			t.Error("all-zero input should quantize to zero")
		}
	}
}

func TestQuantizedDecodingStillWorks(t *testing.T) {
	// 4-bit LLRs decode essentially as well as floats at moderate SNR.
	ch, err := channel.PositionB.New(false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(311))
	m, _ := ModeByRate(24)
	okFloat, okQ4, okQ3 := 0, 0, 0
	const trials = 12
	for i := 0; i < trials; i++ {
		psdu := randPSDU(rng, 600)
		tx, err := BuildPacket(TxConfig{Mode: m}, psdu)
		if err != nil {
			t.Fatal(err)
		}
		samples, _ := tx.Samples()
		h := ch.FrequencyResponse(0)
		nv, _ := NoiseVarForActualSNR(h, m.MinSNRdB+3)
		rx := ch.Apply(samples, 0, nv, rng)
		fe, err := RunFrontEnd(rx)
		if err != nil {
			t.Fatal(err)
		}
		if dec, err := fe.Decode(DecodeConfig{Mode: m, PSDULen: len(psdu)}); err == nil && bytes.Equal(dec.PSDU, psdu) {
			okFloat++
		}
		if dec, err := fe.Decode(DecodeConfig{Mode: m, PSDULen: len(psdu), LLRBits: 4}); err == nil && bytes.Equal(dec.PSDU, psdu) {
			okQ4++
		}
		if dec, err := fe.Decode(DecodeConfig{Mode: m, PSDULen: len(psdu), LLRBits: 3}); err == nil && bytes.Equal(dec.PSDU, psdu) {
			okQ3++
		}
	}
	if okQ4 < okFloat-1 {
		t.Errorf("4-bit LLRs lost too much: float %d/%d vs 4-bit %d/%d", okFloat, trials, okQ4, trials)
	}
	// 3 bits is aggressive (hardware uses 4-6); expect degradation but not
	// total failure.
	if okQ3 == 0 {
		t.Errorf("3-bit LLRs failed completely: float %d vs 3-bit %d", okFloat, okQ3)
	}
	if okFloat < trials-2 {
		t.Errorf("float baseline %d/%d unexpectedly weak", okFloat, trials)
	}
}

func TestDecodeRejectsBadLLRWidth(t *testing.T) {
	flat, _ := channel.PositionFlat.New(false)
	m, _ := ModeByRate(12)
	psdu := randPSDU(rand.New(rand.NewSource(312)), 50)
	tx, _ := BuildPacket(TxConfig{Mode: m}, psdu)
	samples, _ := tx.Samples()
	rx := flat.Apply(samples, 0, 1e-6, rand.New(rand.NewSource(313)))
	fe, err := RunFrontEnd(rx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fe.Decode(DecodeConfig{Mode: m, PSDULen: 50, LLRBits: 1}); err == nil {
		t.Error("LLR width 1 should be rejected")
	}
}
