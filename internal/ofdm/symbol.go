package ofdm

import (
	"fmt"

	"cos/internal/dsp"
)

// Grid is a frequency-domain resource grid: one row of 48 data-subcarrier
// values per OFDM symbol. It is the unit the paper's Fig. 1(a) draws: a
// symbol is the 2-D (time slot, subcarrier) resource element, and CoS
// inserts silence by zeroing selected elements before OFDM modulation.
type Grid struct {
	symbols [][]complex128
}

// NewGrid allocates a grid of numSymbols OFDM symbols with all data
// subcarriers zero.
func NewGrid(numSymbols int) *Grid {
	rows := make([][]complex128, numSymbols)
	backing := make([]complex128, numSymbols*NumData)
	for i := range rows {
		rows[i], backing = backing[:NumData:NumData], backing[NumData:]
	}
	return &Grid{symbols: rows}
}

// NumSymbols returns the number of OFDM symbols in the grid.
func (g *Grid) NumSymbols() int { return len(g.symbols) }

// Symbol returns the 48 data-subcarrier values of OFDM symbol i. The slice
// aliases the grid; writes modify the grid (this is how the CoS power
// controller erases symbols).
func (g *Grid) Symbol(i int) ([]complex128, error) {
	if i < 0 || i >= len(g.symbols) {
		return nil, fmt.Errorf("ofdm: symbol %d out of range [0,%d)", i, len(g.symbols))
	}
	return g.symbols[i], nil
}

// At returns the value at (symbol, data subcarrier).
func (g *Grid) At(sym, sc int) (complex128, error) {
	row, err := g.Symbol(sym)
	if err != nil {
		return 0, err
	}
	if sc < 0 || sc >= NumData {
		return 0, fmt.Errorf("ofdm: data subcarrier %d out of range [0,%d)", sc, NumData)
	}
	return row[sc], nil
}

// Set writes the value at (symbol, data subcarrier).
func (g *Grid) Set(sym, sc int, v complex128) error {
	row, err := g.Symbol(sym)
	if err != nil {
		return err
	}
	if sc < 0 || sc >= NumData {
		return fmt.Errorf("ofdm: data subcarrier %d out of range [0,%d)", sc, NumData)
	}
	row[sc] = v
	return nil
}

// Resize reshapes the grid to numSymbols symbols with all data subcarriers
// zero, reusing the existing backing storage when it is large enough. It is
// the scratch-arena entry point: a transmit scratch keeps one Grid and
// Resizes it per packet instead of allocating a fresh one.
func (g *Grid) Resize(numSymbols int) {
	if numSymbols <= cap(g.symbols) {
		g.symbols = g.symbols[:numSymbols]
		for i := range g.symbols {
			row := g.symbols[i]
			for j := range row {
				row[j] = 0
			}
		}
		return
	}
	*g = *NewGrid(numSymbols)
}

// Clone returns a deep copy of the grid.
func (g *Grid) Clone() *Grid {
	out := NewGrid(len(g.symbols))
	for i, row := range g.symbols {
		copy(out.symbols[i], row)
	}
	return out
}

// Modulate converts the grid into baseband time-domain samples. Each OFDM
// symbol n (firstSymbolIndex+i for row i, needed for pilot polarity) is
// assembled into 64 bins (48 data + 4 polarized pilots + zero guards),
// IFFT'd, and prefixed with the 16-sample cyclic prefix.
func (g *Grid) Modulate(firstSymbolIndex int) ([]complex128, error) {
	return g.ModulateInto(firstSymbolIndex, nil)
}

// ModulateInto is Modulate writing into dst, which is grown (reusing its
// capacity) to exactly NumSymbols*SymbolLen samples. A stack-resident bin
// buffer is reused across symbols, so a caller that recycles dst modulates
// without heap allocation.
func (g *Grid) ModulateInto(firstSymbolIndex int, dst []complex128) ([]complex128, error) {
	n := len(g.symbols) * SymbolLen
	if cap(dst) < n {
		dst = make([]complex128, n)
	}
	dst = dst[:n]
	var bins [NumSubcarriers]complex128
	for i, row := range g.symbols {
		for b := range bins {
			bins[b] = 0
		}
		for d, v := range row {
			bin, err := Bin(dataIndices[d])
			if err != nil {
				return nil, err
			}
			bins[bin] = v
		}
		for p, k := range PilotIndices {
			bin, err := Bin(k)
			if err != nil {
				return nil, err
			}
			pv, err := PilotValue(p, firstSymbolIndex+i)
			if err != nil {
				return nil, err
			}
			bins[bin] = pv
		}
		if err := dsp.IFFTInPlace(bins[:]); err != nil {
			return nil, err
		}
		off := i * SymbolLen
		copy(dst[off:off+CPLen], bins[NumSubcarriers-CPLen:])
		copy(dst[off+CPLen:off+SymbolLen], bins[:])
	}
	return dst, nil
}

// Bins holds the raw 64 frequency bins of one received OFDM symbol, before
// equalization. The CoS energy detector operates directly on these (the
// "simple FFT" of Sec. IV-C).
type Bins [NumSubcarriers]complex128

// DataValue returns the raw bin of data subcarrier d (0..47).
func (b *Bins) DataValue(d int) (complex128, error) {
	if d < 0 || d >= NumData {
		return 0, fmt.Errorf("ofdm: data subcarrier %d out of range", d)
	}
	bin, err := Bin(dataIndices[d])
	if err != nil {
		return 0, err
	}
	return b[bin], nil
}

// PilotObservation returns the raw bin of pilot p (0..3).
func (b *Bins) PilotObservation(p int) (complex128, error) {
	if p < 0 || p >= NumPilots {
		return 0, fmt.Errorf("ofdm: pilot %d out of range", p)
	}
	bin, err := Bin(PilotIndices[p])
	if err != nil {
		return 0, err
	}
	return b[bin], nil
}

// Demodulate splits samples into OFDM symbols, strips each cyclic prefix,
// and FFTs the remaining 64 samples. len(samples) must be a multiple of
// SymbolLen.
func Demodulate(samples []complex128) ([]Bins, error) {
	return DemodulateInto(nil, samples)
}

// DemodulateInto is Demodulate writing into dst, which is grown (reusing its
// capacity) to one Bins per OFDM symbol.
func DemodulateInto(dst []Bins, samples []complex128) ([]Bins, error) {
	if len(samples)%SymbolLen != 0 {
		return nil, fmt.Errorf("ofdm: sample count %d is not a multiple of %d", len(samples), SymbolLen)
	}
	n := len(samples) / SymbolLen
	if cap(dst) < n {
		dst = make([]Bins, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		sym := samples[i*SymbolLen+CPLen : (i+1)*SymbolLen]
		copy(dst[i][:], sym)
		if err := dsp.FFTInPlace(dst[i][:]); err != nil {
			return nil, err
		}
	}
	return dst, nil
}
