package ofdm

import (
	"fmt"
	"math"

	"cos/internal/dsp"
)

// Preamble lengths in samples (17.3.3): ten repetitions of a 16-sample short
// symbol, then a double-length guard plus two 64-sample long symbols.
const (
	ShortPreambleLen = 160
	LongPreambleLen  = 160
	PreambleLen      = ShortPreambleLen + LongPreambleLen
)

// longSeq is the frequency-domain long training sequence L_{-26..26}
// (17.3.3, equation 17-8), indexed 0..52 for logical subcarriers -26..26.
var longSeq = [53]int8{
	1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1,
	0,
	1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1,
}

// LongTrainingValue returns L_k for logical subcarrier k (-26..26); zero for
// subcarriers outside the occupied set.
func LongTrainingValue(k int) complex128 {
	if k < -26 || k > 26 {
		return 0
	}
	return complex(float64(longSeq[k+26]), 0)
}

// shortSeq returns the frequency-domain short training sequence S_k for
// logical subcarrier k. Nonzero only at multiples of 4 (17.3.3, eq. 17-6).
func shortSeq(k int) complex128 {
	scale := complex(math.Sqrt(13.0/6.0), 0)
	pp := scale * complex(1, 1)   // +(1+j)
	pm := scale * complex(-1, -1) // -(1+j)
	switch k {
	case -24, -16, -4, 12, 16, 20, 24:
		return pp
	case -20, -12, -8, 4, 8:
		return pm
	default:
		return 0
	}
}

// longTimeSymbol caches one 64-sample long training symbol.
var longTimeSymbol = buildLongTimeSymbol()

func buildLongTimeSymbol() []complex128 {
	bins := make([]complex128, NumSubcarriers)
	for k := -26; k <= 26; k++ {
		bin, _ := Bin(k)
		bins[bin] = LongTrainingValue(k)
	}
	td, _ := dsp.IFFT(bins)
	return td
}

// shortTimeSymbol caches one 16-sample short training repetition.
var shortTimeSymbol = buildShortTimeSymbol()

func buildShortTimeSymbol() []complex128 {
	bins := make([]complex128, NumSubcarriers)
	for k := -26; k <= 26; k++ {
		if v := shortSeq(k); v != 0 {
			bin, _ := Bin(k)
			bins[bin] = v
		}
	}
	td, _ := dsp.IFFT(bins)
	// The short training symbol is periodic with period 16; one period
	// suffices to tile the 160-sample field.
	return td[:16]
}

// Preamble returns the 320-sample 802.11a PLCP preamble: the short training
// field (10 x 16 samples) followed by the long training field (32-sample
// guard + 2 x 64-sample long symbols).
func Preamble() []complex128 {
	out := make([]complex128, 0, PreambleLen)
	for i := 0; i < 10; i++ {
		out = append(out, shortTimeSymbol...)
	}
	// GI2: the last 32 samples of the long symbol.
	out = append(out, longTimeSymbol[NumSubcarriers-32:]...)
	out = append(out, longTimeSymbol...)
	out = append(out, longTimeSymbol...)
	return out
}

// LongTrainingObservations FFTs the two long training symbols out of a
// received preamble and returns their raw bins. The receiver averages them
// for the LS channel estimate and differences them for a noise estimate.
func LongTrainingObservations(preamble []complex128) (first, second Bins, err error) {
	if len(preamble) < PreambleLen {
		return first, second, fmt.Errorf("ofdm: preamble too short: %d samples, need %d", len(preamble), PreambleLen)
	}
	base := ShortPreambleLen + 32
	if err := dsp.FFTInto(first[:], preamble[base:base+NumSubcarriers]); err != nil {
		return first, second, err
	}
	if err := dsp.FFTInto(second[:], preamble[base+NumSubcarriers:base+2*NumSubcarriers]); err != nil {
		return first, second, err
	}
	return first, second, nil
}
