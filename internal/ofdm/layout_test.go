package ofdm

import (
	"testing"
)

func TestDataIndices(t *testing.T) {
	idx := DataIndices()
	if len(idx) != NumData {
		t.Fatalf("len = %d, want %d", len(idx), NumData)
	}
	seen := map[int]bool{}
	for _, k := range idx {
		if k == 0 {
			t.Error("DC subcarrier used for data")
		}
		if k < -26 || k > 26 {
			t.Errorf("subcarrier %d outside occupied band", k)
		}
		for _, p := range PilotIndices {
			if k == p {
				t.Errorf("pilot subcarrier %d used for data", k)
			}
		}
		if seen[k] {
			t.Errorf("subcarrier %d repeated", k)
		}
		seen[k] = true
	}
	// Ascending order.
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			t.Error("data indices not ascending")
		}
	}
	// Returned slice is a copy.
	idx[0] = 99
	if DataIndices()[0] == 99 {
		t.Error("DataIndices returned aliased storage")
	}
}

func TestDataIndexBounds(t *testing.T) {
	if _, err := DataIndex(-1); err == nil {
		t.Error("want error for -1")
	}
	if _, err := DataIndex(48); err == nil {
		t.Error("want error for 48")
	}
	k, err := DataIndex(0)
	if err != nil || k != -26 {
		t.Errorf("DataIndex(0) = %d, %v; want -26", k, err)
	}
	k, err = DataIndex(47)
	if err != nil || k != 26 {
		t.Errorf("DataIndex(47) = %d, %v; want 26", k, err)
	}
}

func TestBinMapping(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 26: 26, -1: 63, -26: 38, -32: 32, 31: 31}
	for logical, want := range cases {
		got, err := Bin(logical)
		if err != nil {
			t.Fatalf("Bin(%d): %v", logical, err)
		}
		if got != want {
			t.Errorf("Bin(%d) = %d, want %d", logical, got, want)
		}
	}
	if _, err := Bin(32); err == nil {
		t.Error("Bin(32) should error")
	}
	if _, err := Bin(-33); err == nil {
		t.Error("Bin(-33) should error")
	}
}

func TestPilotPolarityKnownPrefix(t *testing.T) {
	// 17.3.5.9: p_0..p_10 = 1,1,1,1,-1,-1,-1,1,-1,-1,-1.
	want := []int8{1, 1, 1, 1, -1, -1, -1, 1, -1, -1, -1}
	for n, w := range want {
		if got := PilotPolarity(n); got != w {
			t.Errorf("p_%d = %d, want %d", n, got, w)
		}
	}
}

func TestPilotPolarityPeriodic(t *testing.T) {
	for n := 0; n < 127; n++ {
		if PilotPolarity(n) != PilotPolarity(n+127) {
			t.Fatalf("polarity not periodic at n=%d", n)
		}
	}
}

func TestPilotValue(t *testing.T) {
	// Symbol 0 has polarity +1; pilot 3 carries -1.
	v, err := PilotValue(3, 0)
	if err != nil || v != -1 {
		t.Errorf("PilotValue(3,0) = %v, %v; want -1", v, err)
	}
	v, err = PilotValue(0, 4) // p_4 = -1
	if err != nil || v != -1 {
		t.Errorf("PilotValue(0,4) = %v, %v; want -1", v, err)
	}
	if _, err := PilotValue(4, 0); err == nil {
		t.Error("pilot index 4 should error")
	}
}
