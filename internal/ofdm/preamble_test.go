package ofdm

import (
	"math"
	"math/cmplx"
	"testing"

	"cos/internal/dsp"
)

func TestPreambleLength(t *testing.T) {
	p := Preamble()
	if len(p) != PreambleLen {
		t.Fatalf("preamble length %d, want %d", len(p), PreambleLen)
	}
	if PreambleLen != 320 {
		t.Fatalf("PreambleLen = %d, want 320", PreambleLen)
	}
}

func TestShortTrainingPeriodicity(t *testing.T) {
	p := Preamble()
	stf := p[:ShortPreambleLen]
	for i := 16; i < len(stf); i++ {
		if cmplx.Abs(stf[i]-stf[i-16]) > 1e-12 {
			t.Fatalf("STF not 16-periodic at sample %d", i)
		}
	}
}

func TestLongTrainingRepetition(t *testing.T) {
	p := Preamble()
	ltf := p[ShortPreambleLen:]
	first := ltf[32 : 32+64]
	second := ltf[32+64 : 32+128]
	for i := range first {
		if cmplx.Abs(first[i]-second[i]) > 1e-12 {
			t.Fatalf("LTF symbols differ at sample %d", i)
		}
	}
	// GI2 is the tail of the long symbol.
	for i := 0; i < 32; i++ {
		if cmplx.Abs(ltf[i]-first[32+i]) > 1e-12 {
			t.Fatalf("GI2 mismatch at sample %d", i)
		}
	}
}

func TestLongTrainingValues(t *testing.T) {
	// Spot values from the standard's sequence.
	cases := map[int]float64{-26: 1, -25: 1, -24: -1, -1: 1, 1: 1, 2: -1, 26: 1, 0: 0, 27: 0, -27: 0}
	for k, want := range cases {
		if got := LongTrainingValue(k); got != complex(want, 0) {
			t.Errorf("L[%d] = %v, want %v", k, got, want)
		}
	}
	// All occupied subcarriers are +-1.
	n := 0
	for k := -26; k <= 26; k++ {
		v := LongTrainingValue(k)
		if k == 0 {
			continue
		}
		if real(v) != 1 && real(v) != -1 {
			t.Errorf("L[%d] = %v, want +-1", k, v)
		}
		n++
	}
	if n != 52 {
		t.Errorf("occupied LTF subcarriers = %d, want 52", n)
	}
}

func TestLongTrainingObservationsRecoverSequence(t *testing.T) {
	first, second, err := LongTrainingObservations(Preamble())
	if err != nil {
		t.Fatal(err)
	}
	for k := -26; k <= 26; k++ {
		bin, _ := Bin(k)
		want := LongTrainingValue(k)
		if cmplx.Abs(first[bin]-want) > 1e-9 || cmplx.Abs(second[bin]-want) > 1e-9 {
			t.Fatalf("LTF bin %d: got %v/%v, want %v", k, first[bin], second[bin], want)
		}
	}
}

func TestLongTrainingObservationsShortInput(t *testing.T) {
	if _, _, err := LongTrainingObservations(make([]complex128, 100)); err == nil {
		t.Error("want error for short preamble")
	}
}

func TestPreambleAveragePowerMatchesData(t *testing.T) {
	// The preamble should have power within a small factor of a data
	// symbol's, so AGC/SNR estimates from the preamble transfer to data.
	p := Preamble()
	pre := dsp.Power(p[ShortPreambleLen+32:]) // the two long symbols
	g := NewGrid(1)
	row, _ := g.Symbol(0)
	for i := range row {
		row[i] = 1 // unit-power data
	}
	s, err := g.Modulate(0)
	if err != nil {
		t.Fatal(err)
	}
	data := dsp.Power(s)
	ratio := pre / data
	if math.Abs(ratio-1) > 0.25 {
		t.Errorf("LTF/data power ratio = %v, want ~1", ratio)
	}
}
