package ofdm

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"cos/internal/dsp"
)

func randGrid(rng *rand.Rand, numSymbols int) *Grid {
	g := NewGrid(numSymbols)
	for s := 0; s < numSymbols; s++ {
		row, _ := g.Symbol(s)
		for d := range row {
			// QPSK-like points.
			row[d] = complex(float64(2*rng.Intn(2)-1), float64(2*rng.Intn(2)-1)) * complex(1/1.4142135623730951, 0)
		}
	}
	return g
}

func TestGridAccessors(t *testing.T) {
	g := NewGrid(3)
	if g.NumSymbols() != 3 {
		t.Fatalf("NumSymbols = %d", g.NumSymbols())
	}
	if err := g.Set(1, 5, 2+3i); err != nil {
		t.Fatal(err)
	}
	v, err := g.At(1, 5)
	if err != nil || v != 2+3i {
		t.Errorf("At = %v, %v", v, err)
	}
	if _, err := g.At(3, 0); err == nil {
		t.Error("out-of-range symbol should error")
	}
	if _, err := g.At(0, 48); err == nil {
		t.Error("out-of-range subcarrier should error")
	}
	if err := g.Set(-1, 0, 0); err == nil {
		t.Error("negative symbol should error")
	}
	if err := g.Set(0, -1, 0); err == nil {
		t.Error("negative subcarrier should error")
	}
}

func TestGridClone(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g := randGrid(rng, 2)
	c := g.Clone()
	if err := c.Set(0, 0, 99); err != nil {
		t.Fatal(err)
	}
	v, _ := g.At(0, 0)
	if v == 99 {
		t.Error("Clone shares storage with original")
	}
}

func TestModulateDemodulateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	g := randGrid(rng, 5)
	samples, err := g.Modulate(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5*SymbolLen {
		t.Fatalf("sample count = %d, want %d", len(samples), 5*SymbolLen)
	}
	binsList, err := Demodulate(samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(binsList) != 5 {
		t.Fatalf("symbol count = %d", len(binsList))
	}
	for s := range binsList {
		for d := 0; d < NumData; d++ {
			got, err := binsList[s].DataValue(d)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := g.At(s, d)
			if cmplx.Abs(got-want) > 1e-9 {
				t.Fatalf("symbol %d subcarrier %d: %v != %v", s, d, got, want)
			}
		}
		for p := 0; p < NumPilots; p++ {
			got, err := binsList[s].PilotObservation(p)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := PilotValue(p, 1+s)
			if cmplx.Abs(got-want) > 1e-9 {
				t.Fatalf("symbol %d pilot %d: %v != %v", s, p, got, want)
			}
		}
	}
}

func TestModulateGuardBinsEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	g := randGrid(rng, 1)
	samples, err := g.Modulate(0)
	if err != nil {
		t.Fatal(err)
	}
	bins, err := Demodulate(samples)
	if err != nil {
		t.Fatal(err)
	}
	for k := 27; k <= 37; k++ { // bins 27..37 are guards (logical 27..31, -32..-27)
		if cmplx.Abs(bins[0][k]) > 1e-9 {
			t.Errorf("guard bin %d carries energy %v", k, cmplx.Abs(bins[0][k]))
		}
	}
	if cmplx.Abs(bins[0][0]) > 1e-9 {
		t.Error("DC bin carries energy")
	}
}

func TestCyclicPrefixIsCopyOfTail(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	g := randGrid(rng, 2)
	samples, err := g.Modulate(0)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		sym := samples[s*SymbolLen : (s+1)*SymbolLen]
		for i := 0; i < CPLen; i++ {
			if sym[i] != sym[NumSubcarriers+i] {
				t.Fatalf("symbol %d: CP sample %d mismatch", s, i)
			}
		}
	}
}

func TestDemodulateRejectsPartialSymbol(t *testing.T) {
	if _, err := Demodulate(make([]complex128, SymbolLen+1)); err == nil {
		t.Error("want error for partial symbol")
	}
}

func TestSilencedSubcarrierHasZeroEnergy(t *testing.T) {
	// The CoS mechanism: zeroing a grid element produces (near-)zero energy
	// in the corresponding FFT bin at the receiver.
	rng := rand.New(rand.NewSource(65))
	g := randGrid(rng, 1)
	const silenced = 13
	if err := g.Set(0, silenced, 0); err != nil {
		t.Fatal(err)
	}
	samples, _ := g.Modulate(0)
	bins, _ := Demodulate(samples)
	v, _ := bins[0].DataValue(silenced)
	if cmplx.Abs(v) > 1e-9 {
		t.Errorf("silenced subcarrier energy %v", dsp.MagSq(v))
	}
	// Neighbors unaffected.
	v, _ = bins[0].DataValue(silenced + 1)
	if cmplx.Abs(v) < 0.5 {
		t.Error("neighbor subcarrier lost energy")
	}
}

func TestBinsAccessorBounds(t *testing.T) {
	var b Bins
	if _, err := b.DataValue(-1); err == nil {
		t.Error("DataValue(-1) should error")
	}
	if _, err := b.DataValue(48); err == nil {
		t.Error("DataValue(48) should error")
	}
	if _, err := b.PilotObservation(-1); err == nil {
		t.Error("PilotObservation(-1) should error")
	}
	if _, err := b.PilotObservation(4); err == nil {
		t.Error("PilotObservation(4) should error")
	}
	if _, err := b.DataValue(0); err != nil {
		t.Error("DataValue(0) should work")
	}
}
