package experiments

import (
	"context"
	"fmt"
	"sort"
)

// RunOptions configures one experiment run. The zero value selects the
// publication-quality scale, one worker per CPU, and the canonical seed.
type RunOptions struct {
	// Scale shrinks sample sizes (1 = publication quality; smaller values
	// shrink packet counts and sweep resolutions proportionally). Zero or
	// negative selects 1.
	Scale float64
	// Workers bounds the goroutines the point-task pool uses; zero or
	// negative selects runtime.GOMAXPROCS(0). Results are bit-identical
	// for every worker count (per-task RNGs are derived as seed^taskIndex
	// and reassembled in index order — see internal/pool).
	Workers int
	// Seed drives all randomness; zero selects 1.
	Seed int64
	// Scenario is an optional scenario reference ("" = the default world).
	// It is threaded into every figure configuration verbatim.
	Scenario string
	// Exec, when non-nil, runs the point-tasks of task-decomposable
	// figures (see Tasks) instead of the in-process pool — the fleet
	// coordinator plugs in here to fan tasks out across cos-serve
	// backends. Results are byte-identical either way; figures that do not
	// decompose ignore it. Not comparable/serializable: excluded from any
	// notion of run identity.
	Exec Executor
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Runner produces one figure. Implementations must honor ctx (returning
// ctx.Err() promptly mid-sweep) and must make their output depend only on
// opts, never on opts.Workers or goroutine scheduling.
type Runner interface {
	Run(ctx context.Context, opts RunOptions) (*Result, error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(ctx context.Context, opts RunOptions) (*Result, error)

// Run implements Runner.
func (f RunnerFunc) Run(ctx context.Context, opts RunOptions) (*Result, error) {
	return f(ctx, opts)
}

// registry maps experiment IDs to their runners.
var registry = map[string]Runner{
	// fig2 and fig3 decompose into serializable point-tasks (task.go), so
	// their entries run through runTasks: the same path executes locally on
	// the pool or remotely through opts.Exec, byte-identically.
	"fig2": RunnerFunc(func(ctx context.Context, o RunOptions) (*Result, error) {
		return runTasks(ctx, "fig2", o, fig2Tasks{cfg: fig2ConfigFrom(o)})
	}),
	"fig3": RunnerFunc(func(ctx context.Context, o RunOptions) (*Result, error) {
		return runTasks(ctx, "fig3", o, fig3Tasks{cfg: fig3ConfigFrom(o)})
	}),
	"fig5": RunnerFunc(func(ctx context.Context, o RunOptions) (*Result, error) {
		return Fig5EVM(ctx, Fig5Config{Scale: o.Scale, Seed: o.Seed, Workers: o.Workers, Scenario: o.Scenario})
	}),
	"fig6": RunnerFunc(func(ctx context.Context, o RunOptions) (*Result, error) {
		return Fig6ErrorPattern(ctx, Fig6Config{Scale: o.Scale, Seed: o.Seed, Workers: o.Workers, Scenario: o.Scenario})
	}),
	"fig7": RunnerFunc(func(ctx context.Context, o RunOptions) (*Result, error) {
		return Fig7Temporal(ctx, Fig7Config{Scale: o.Scale, Seed: o.Seed, Workers: o.Workers, Scenario: o.Scenario})
	}),
	"fig9": RunnerFunc(func(ctx context.Context, o RunOptions) (*Result, error) {
		cfg := Fig9Config{Scale: o.Scale, Seed: o.Seed, Workers: o.Workers, Scenario: o.Scenario}
		if o.Scale < 1 {
			cfg.PointsPerMode = 2
		}
		return Fig9Capacity(ctx, cfg)
	}),
	"fig10a": RunnerFunc(func(ctx context.Context, o RunOptions) (*Result, error) {
		return Fig10aMagnitudes(ctx, Fig10aConfig{Seed: o.Seed, Scenario: o.Scenario})
	}),
	"fig10b": RunnerFunc(func(ctx context.Context, o RunOptions) (*Result, error) {
		cfg := Fig10bConfig{Scale: o.Scale, Seed: o.Seed, Workers: o.Workers, Scenario: o.Scenario}
		if o.Scale < 1 {
			cfg.Points = 13
		}
		return Fig10bThreshold(ctx, cfg)
	}),
	"fig10c": RunnerFunc(func(ctx context.Context, o RunOptions) (*Result, error) {
		return Fig10cAccuracy(ctx, Fig10cConfig{Scale: o.Scale, Seed: o.Seed, Workers: o.Workers, Scenario: o.Scenario})
	}),
	"fig10d": RunnerFunc(func(ctx context.Context, o RunOptions) (*Result, error) {
		cfg := Fig10cConfig{Scale: o.Scale, Seed: o.Seed, Workers: o.Workers, Scenario: o.Scenario}
		if o.Scale < 1 {
			cfg.SNRs = []float64{4, 8, 12, 16, 20}
		}
		return Fig10dInterference(ctx, cfg)
	}),
	"ablation-evd": RunnerFunc(func(ctx context.Context, o RunOptions) (*Result, error) {
		return AblationEVD(ctx, AblationConfig{Scale: o.Scale, Seed: o.Seed, Workers: o.Workers, Scenario: o.Scenario})
	}),
	"ablation-placement": RunnerFunc(func(ctx context.Context, o RunOptions) (*Result, error) {
		return AblationPlacement(ctx, AblationConfig{Scale: o.Scale, Seed: o.Seed, Workers: o.Workers, Scenario: o.Scenario})
	}),
	"ablation-threshold": RunnerFunc(func(ctx context.Context, o RunOptions) (*Result, error) {
		return AblationThreshold(ctx, AblationConfig{Scale: o.Scale, Seed: o.Seed, Workers: o.Workers, Scenario: o.Scenario})
	}),
	"ablation-quantization": RunnerFunc(func(ctx context.Context, o RunOptions) (*Result, error) {
		return AblationQuantization(ctx, AblationConfig{Scale: o.Scale, Seed: o.Seed, Workers: o.Workers, Scenario: o.Scenario})
	}),
	"accuracy": RunnerFunc(func(ctx context.Context, o RunOptions) (*Result, error) {
		return ControlAccuracy(ctx, AblationConfig{Scale: o.Scale, Seed: o.Seed, Workers: o.Workers, Scenario: o.Scenario})
	}),
}

// IDs lists all experiment identifiers in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Get returns the Runner registered under id.
func Get(id string) (Runner, bool) {
	r, ok := registry[id]
	return r, ok
}

// Run executes the experiment with the given ID under opts. It is the
// context-aware entry point cmd/cos-figures and the benchmarks share.
func Run(ctx context.Context, id string, opts RunOptions) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return r.Run(ctx, opts)
}
