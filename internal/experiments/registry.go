package experiments

import (
	"fmt"
	"sort"
)

// runner produces a figure at a given scale (1 = publication quality).
type runner func(scale float64) (*Result, error)

// registry maps experiment IDs to their runners.
var registry = map[string]runner{
	"fig2": func(s float64) (*Result, error) {
		cfg := Fig2Config{}
		if s < 1 {
			cfg.Variants = 2
			cfg.Step = 2
		}
		return Fig2SNRGap(cfg)
	},
	"fig3": func(s float64) (*Result, error) {
		return Fig3DecoderBER(Fig3Config{Scale: s})
	},
	"fig5": func(s float64) (*Result, error) {
		return Fig5EVM(Fig5Config{Scale: s})
	},
	"fig6": func(s float64) (*Result, error) {
		return Fig6ErrorPattern(Fig6Config{Scale: s})
	},
	"fig7": func(s float64) (*Result, error) {
		return Fig7Temporal(Fig7Config{Scale: s})
	},
	"fig9": func(s float64) (*Result, error) {
		cfg := Fig9Config{Scale: s}
		if s < 1 {
			cfg.PointsPerMode = 2
		}
		return Fig9Capacity(cfg)
	},
	"fig10a": func(s float64) (*Result, error) {
		return Fig10aMagnitudes(Fig10aConfig{})
	},
	"fig10b": func(s float64) (*Result, error) {
		cfg := Fig10bConfig{Scale: s}
		if s < 1 {
			cfg.Points = 13
		}
		return Fig10bThreshold(cfg)
	},
	"fig10c": func(s float64) (*Result, error) {
		return Fig10cAccuracy(Fig10cConfig{Scale: s})
	},
	"fig10d": func(s float64) (*Result, error) {
		cfg := Fig10cConfig{Scale: s}
		if s < 1 {
			cfg.SNRs = []float64{4, 8, 12, 16, 20}
		}
		return Fig10dInterference(cfg)
	},
	"ablation-evd": func(s float64) (*Result, error) {
		return AblationEVD(AblationConfig{Scale: s})
	},
	"ablation-placement": func(s float64) (*Result, error) {
		return AblationPlacement(AblationConfig{Scale: s})
	},
	"ablation-threshold": func(s float64) (*Result, error) {
		return AblationThreshold(AblationConfig{Scale: s})
	},
	"ablation-quantization": func(s float64) (*Result, error) {
		return AblationQuantization(AblationConfig{Scale: s})
	},
	"accuracy": func(s float64) (*Result, error) {
		return ControlAccuracy(AblationConfig{Scale: s})
	},
}

// IDs lists all experiment identifiers in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given ID at the given scale
// (1 = publication quality; smaller values shrink sample sizes).
func Run(id string, scale float64) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(scale)
}
