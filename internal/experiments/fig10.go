package experiments

import (
	"context"
	"math"
	"math/rand"

	"cos/internal/channel"
	icos "cos/internal/cos"
	"cos/internal/dsp"
	"cos/internal/ofdm"
	"cos/internal/phy"
	"cos/internal/pool"
)

// fig10CtrlSCs is the contiguous control set of the paper's Fig. 10(a)
// (data subcarriers 10..17 in its 1-based numbering).
var fig10CtrlSCs = []int{9, 10, 11, 12, 13, 14, 15, 16}

// Fig10aConfig parameterizes the FFT-magnitude snapshot.
type Fig10aConfig struct {
	// SNR is the true channel SNR in dB (default 15).
	SNR float64
	// Seed drives all randomness.
	Seed int64
	// Scenario is an optional scenario reference ("" = default world).
	Scenario string
}

func (c *Fig10aConfig) setDefaults() {
	if c.SNR == 0 {
		c.SNR = 15
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Fig10aMagnitudes reproduces Fig. 10(a): the relative FFT magnitudes of
// the 52 occupied subcarriers of one received OFDM symbol in which control
// subcarriers 10, 11 and 17 (1-based; 9, 10 and 16 here) carry silence
// symbols. The silent bins are clearly discernible. A single packet, so no
// task decomposition — the context is only checked on entry.
func Fig10aMagnitudes(ctx context.Context, cfg Fig10aConfig) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	mode, err := phy.ModeByRate(24)
	if err != nil {
		return nil, err
	}
	ch, err := trialChannel(cfg.Scenario, channel.PositionC, false, 5)
	if err != nil {
		return nil, err
	}
	psdu := make([]byte, 256)
	rng.Read(psdu)
	tx, err := phy.BuildPacket(phy.TxConfig{Mode: mode}, psdu)
	if err != nil {
		return nil, err
	}
	// Silence subcarriers 9, 10 and 16 of symbol 0 (the paper's 10/11/17):
	// interval 5 between the 10 and the 16 encodes "0101".
	const sym = 0
	if _, err := icos.InsertSilences(tx.Grid, []icos.Pos{{Sym: sym, SC: 9}, {Sym: sym, SC: 10}, {Sym: sym, SC: 16}}); err != nil {
		return nil, err
	}
	samples, err := tx.Samples()
	if err != nil {
		return nil, err
	}
	rx, _, err := ch.Propagate(nil, samples, 0, cfg.SNR, rng)
	if err != nil {
		return nil, err
	}
	fe, err := phy.RunFrontEnd(rx)
	if err != nil {
		return nil, err
	}

	// Collect |Y| over the 52 occupied subcarriers in ascending logical
	// order, normalized to the maximum.
	mags := make([]float64, 0, 52)
	for k := -26; k <= 26; k++ {
		if k == 0 {
			continue
		}
		bin, err := ofdm.Bin(k)
		if err != nil {
			return nil, err
		}
		mags = append(mags, math.Sqrt(dsp.MagSq(fe.Bins[sym][bin])))
	}
	max := 0.0
	for _, m := range mags {
		if m > max {
			max = m
		}
	}
	res := &Result{
		ID:     "fig10a",
		Title:  "Relative FFT magnitudes of 52 subcarriers with silences on control subcarriers",
		XLabel: "subcarrier index (1-52)",
		YLabel: "relative FFT magnitude",
	}
	s := Series{Name: "RelativeMagnitude"}
	for i, m := range mags {
		s.X = append(s.X, float64(i+1))
		s.Y = append(s.Y, m/max)
	}
	res.Add(s)
	res.Note("silences inserted on data subcarriers 10, 11, 17 (1-based) of the plotted symbol")
	return res, nil
}

// Fig10bConfig parameterizes the threshold sweep.
type Fig10bConfig struct {
	// MeasuredSNR is the calibrated NIC SNR of the operating point
	// (default 9.2 dB as in the paper).
	MeasuredSNR float64
	// Packets per threshold point (default 120).
	Packets int
	// Points is the number of threshold points (default 25).
	Points int
	// Scale shrinks Packets.
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Workers bounds the point-task pool (0 = GOMAXPROCS).
	Workers int
	// Scenario is an optional scenario reference ("" = default world).
	Scenario string
}

func (c *Fig10bConfig) setDefaults() {
	if c.MeasuredSNR == 0 {
		c.MeasuredSNR = 9.2
	}
	if c.Packets == 0 {
		c.Packets = 120
	}
	if c.Points == 0 {
		c.Points = 25
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Fig10bThreshold reproduces Fig. 10(b): false positive and false negative
// probabilities of silence detection as the (fixed) energy-detection
// threshold sweeps from far below the noise floor to far above the signal
// level. Too low a threshold misses silences (false negatives); too high a
// threshold reads faded data symbols as silences (false positives).
// The x axis is the threshold in dB relative to the estimated noise floor
// (the paper's absolute dBm axis shifted by its noise floor).
//
// The shared calibration and noise-floor probe run serially as task 0 of
// the seed schedule; the threshold points are pool tasks 1..Points.
func Fig10bThreshold(ctx context.Context, cfg Fig10bConfig) (*Result, error) {
	cfg.setDefaults()
	mode, err := phy.ModeByRate(12)
	if err != nil {
		return nil, err
	}
	// Serial prelude channel; pool tasks build their own (a channel model
	// owns tap scratch, and the same variant is the same deterministic draw).
	ch, err := trialChannel(cfg.Scenario, channel.PositionB, false, 4)
	if err != nil {
		return nil, err
	}
	// Serial prelude on the index-0 task RNG: every threshold point shares
	// this operating point, so it cannot be a pool task.
	preludeRNG := pool.TaskRNG(cfg.Seed, 0)
	scr := &trialScratch{} // serial prelude scratch; pool tasks build their own
	actual, err := calibrateActualSNR(scr, ch, 0, mode, cfg.MeasuredSNR, preludeRNG)
	if err != nil {
		return nil, err
	}
	packets := scaled(cfg.Packets, cfg.Scale)

	// Reference noise floor for the x axis.
	pr, err := probe(scr, ch, 0, mode, 256, actual, preludeRNG)
	if err != nil {
		return nil, err
	}
	noiseFloor := pr.fe.NoiseVar

	type point struct {
		relDB  float64
		fp, fn float64
	}
	pts := make([]point, cfg.Points)
	err = pool.ForEach(ctx, cfg.Workers, cfg.Points+1, cfg.Seed, func(i int, rng *rand.Rand) error {
		if i == 0 {
			return nil // index 0 is the serial prelude above
		}
		pi := i - 1
		ch, err := trialChannel(cfg.Scenario, channel.PositionB, false, 4)
		if err != nil {
			return err
		}
		scr := &trialScratch{}
		relDB := -15 + 40*float64(pi)/float64(cfg.Points-1)
		th := noiseFloor * dsp.Linear(relDB)
		var stats icos.DetectionStats
		for p := 0; p < packets; p++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			r, err := runCoSTrial(scr, ch, 0, actual, cosTrialConfig{
				mode:     mode,
				psduLen:  1024,
				silences: 12,
				k:        icos.DefaultBitsPerInterval,
				ctrlSCs:  fig10CtrlSCs,
				detector: icos.Detector{FixedThreshold: th},
			}, rng)
			if err != nil {
				return err
			}
			stats.Add(r.detection)
		}
		pts[pi] = point{relDB: relDB, fp: stats.FalsePositiveRate(), fn: stats.FalseNegativeRate()}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "fig10b",
		Title:  "Detection accuracy vs energy-detection threshold (measured SNR 9.2 dB)",
		XLabel: "threshold (dB above noise floor)",
		YLabel: "probability",
	}
	fp := Series{Name: "FalsePositive"}
	fn := Series{Name: "FalseNegative"}
	for _, pt := range pts {
		fp.X = append(fp.X, pt.relDB)
		fp.Y = append(fp.Y, pt.fp)
		fn.X = append(fn.X, pt.relDB)
		fn.Y = append(fn.Y, pt.fn)
	}
	res.Add(fp)
	res.Add(fn)
	return res, nil
}

// Fig10cConfig parameterizes the accuracy-vs-SNR sweep.
type Fig10cConfig struct {
	// SNRs are the measured-SNR operating points (default 3..20 dB).
	SNRs []float64
	// Packets per point (default 1000, as in the paper).
	Packets int
	// Scale shrinks Packets.
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Interference enables the pulse interferer (Fig. 10(d)).
	Interference bool
	// Workers bounds the point-task pool (0 = GOMAXPROCS).
	Workers int
	// Scenario is an optional scenario reference ("" = default world).
	Scenario string
}

func (c *Fig10cConfig) setDefaults() {
	if len(c.SNRs) == 0 {
		c.SNRs = []float64{3, 4, 6, 8, 10, 12, 14, 16, 18, 20}
	}
	if c.Packets == 0 {
		c.Packets = 1000
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// accuracySweep runs the detection-accuracy measurement behind Figs. 10(c)
// and 10(d): false positive and negative probabilities of the adaptive
// detector across channel SNRs, optionally under pulse interference. Each
// SNR operating point is one pool task (it calibrates, then accumulates its
// own detection statistics on a private RNG).
func accuracySweep(ctx context.Context, cfg Fig10cConfig, interfere bool) (fp, fn Series, err error) {
	mode, err := phy.ModeByRate(12)
	if err != nil {
		return fp, fn, err
	}
	packets := scaled(cfg.Packets, cfg.Scale)
	intf := channel.PulseInterferer{Power: 40, BurstLen: 160, StartProb: 0.004}

	type point struct{ fp, fn float64 }
	pts := make([]point, len(cfg.SNRs))
	err = pool.ForEach(ctx, cfg.Workers, len(cfg.SNRs), cfg.Seed, func(i int, rng *rand.Rand) error {
		// Per task: a channel model owns tap scratch, so point-tasks must
		// not share one (the same variant is the same deterministic draw).
		ch, err := trialChannel(cfg.Scenario, channel.PositionB, false, 4)
		if err != nil {
			return err
		}
		scr := &trialScratch{}
		actual, err := calibrateActualSNR(scr, ch, 0, mode, cfg.SNRs[i], rng)
		if err != nil {
			return err
		}
		trial := cosTrialConfig{
			mode:     mode,
			psduLen:  1024,
			silences: 12,
			k:        icos.DefaultBitsPerInterval,
			ctrlSCs:  fig10CtrlSCs,
			detector: icos.Detector{Scheme: mode.Modulation},
		}
		if interfere {
			trial.interferer = &intf
		}
		var stats icos.DetectionStats
		for p := 0; p < packets; p++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			r, err := runCoSTrial(scr, ch, 0, actual, trial, rng)
			if err != nil {
				return err
			}
			stats.Add(r.detection)
		}
		pts[i] = point{fp: stats.FalsePositiveRate(), fn: stats.FalseNegativeRate()}
		return nil
	})
	if err != nil {
		return fp, fn, err
	}
	for i, snr := range cfg.SNRs {
		fp.X = append(fp.X, snr)
		fp.Y = append(fp.Y, pts[i].fp)
		fn.X = append(fn.X, snr)
		fn.Y = append(fn.Y, pts[i].fn)
	}
	return fp, fn, nil
}

// Fig10cAccuracy reproduces Fig. 10(c): detection accuracy of the adaptive
// detector across channel SNRs; the false-negative probability stays below
// ~1% everywhere, while false positives rise only at very low SNR where
// deep fades approach the noise floor.
func Fig10cAccuracy(ctx context.Context, cfg Fig10cConfig) (*Result, error) {
	cfg.setDefaults()
	fp, fn, err := accuracySweep(ctx, cfg, false)
	if err != nil {
		return nil, err
	}
	fp.Name, fn.Name = "FalsePositive", "FalseNegative"
	res := &Result{
		ID:     "fig10c",
		Title:  "Detection accuracy vs measured SNR (adaptive threshold)",
		XLabel: "measured SNR (dB)",
		YLabel: "probability",
	}
	res.Add(fp)
	res.Add(fn)
	return res, nil
}

// Fig10dInterference reproduces Fig. 10(d): the false-negative probability
// with and without strong pulse interference. Interference landing on a
// silent bin lifts it above threshold and the silence is missed.
func Fig10dInterference(ctx context.Context, cfg Fig10cConfig) (*Result, error) {
	cfg.setDefaults()
	_, fnClean, err := accuracySweep(ctx, cfg, false)
	if err != nil {
		return nil, err
	}
	cfg.Seed++ // independent noise for the interference arm
	_, fnDirty, err := accuracySweep(ctx, cfg, true)
	if err != nil {
		return nil, err
	}
	fnClean.Name = "CoS"
	fnDirty.Name = "CoS with strong interference"
	res := &Result{
		ID:     "fig10d",
		Title:  "Impact of strong interference on false negative probability",
		XLabel: "measured SNR (dB)",
		YLabel: "false negative probability",
	}
	res.Add(fnDirty)
	res.Add(fnClean)
	return res, nil
}
