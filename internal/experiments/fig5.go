package experiments

import (
	"context"
	"math/rand"

	"cos/internal/channel"
	"cos/internal/ofdm"
	"cos/internal/phy"
	"cos/internal/pool"
)

// Fig5Config parameterizes the per-subcarrier EVM measurement.
type Fig5Config struct {
	// SNR is the true channel SNR in dB (default 18).
	SNR float64
	// Packets averaged per position (default 10).
	Packets int
	// Scale shrinks Packets.
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Workers bounds the point-task pool (0 = GOMAXPROCS).
	Workers int
	// Scenario is an optional scenario reference ("" = default world).
	Scenario string
}

func (c *Fig5Config) setDefaults() {
	if c.SNR == 0 {
		c.SNR = 18
	}
	if c.Packets == 0 {
		c.Packets = 10
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Fig5EVM reproduces Fig. 5: measured per-subcarrier EVM (percent) of the
// 48 data subcarriers at the three receiver positions. Frequency-selective
// fading makes different subcarriers — and different positions — exhibit
// very different EVM. Each position is one point-task.
func Fig5EVM(ctx context.Context, cfg Fig5Config) (*Result, error) {
	cfg.setDefaults()
	mode, err := phy.ModeByRate(24)
	if err != nil {
		return nil, err
	}
	packets := scaled(cfg.Packets, cfg.Scale)
	positions := channel.Positions()

	accs := make([][ofdm.NumData]float64, len(positions))
	err = pool.ForEach(ctx, cfg.Workers, len(positions), cfg.Seed, func(i int, rng *rand.Rand) error {
		ch, err := trialChannel(cfg.Scenario, positions[i], false, 0)
		if err != nil {
			return err
		}
		scr := &trialScratch{}
		for p := 0; p < packets; p++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			pr, err := probe(scr, ch, 0, mode, 1024, cfg.SNR, rng)
			if err != nil {
				return err
			}
			diag, err := phy.Diagnose(pr.tx, pr.fe, nil, nil)
			if err != nil {
				return err
			}
			for d := 0; d < ofdm.NumData; d++ {
				accs[i][d] += diag.EVM[d]
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "fig5",
		Title:  "Per-subcarrier EVM at three positions (frequency selective fading)",
		XLabel: "subcarrier index (1-48)",
		YLabel: "EVM (%)",
	}
	for i, pos := range positions {
		s := Series{Name: pos.String()}
		for d := 0; d < ofdm.NumData; d++ {
			s.X = append(s.X, float64(d+1))
			s.Y = append(s.Y, 100*accs[i][d]/float64(packets))
		}
		res.Add(s)
	}
	res.Note("EVM computed per Eq. (1) from equalized symbols against re-mapped ideal points")
	return res, nil
}
