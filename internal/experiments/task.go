package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"cos/internal/pool"
)

// A TaskSet is a figure decomposed into independent, serializable
// point-tasks. It is the network-portable form of the closure slice the
// worker pool already runs: every task is addressed by its index, draws
// only from the private RNG handed to it (pool.TaskRNG(seed, i)), and
// returns a JSON record instead of writing into shared state. Assemble
// folds the records — in index order — back into the figure's Result.
//
// The contract that makes remote execution byte-identical to local:
// RunTask(i) is a pure function of (TaskSet construction inputs, i, the
// task seed), and Go's float64 JSON round-trip is exact, so a record
// computed on another host and shipped back through NDJSON unmarshals to
// the same values the in-process closure would have produced.
type TaskSet interface {
	// NumTasks returns the task count; valid indices are [0, NumTasks).
	NumTasks() int
	// RunTask executes task i with its private RNG and returns its record.
	RunTask(ctx context.Context, i int, rng *rand.Rand) (json.RawMessage, error)
	// Assemble folds the records, indexed by task, into the figure Result.
	Assemble(recs []json.RawMessage) (*Result, error)
}

// An Executor runs a figure's point-tasks somewhere other than the
// in-process pool — the fleet coordinator implements it by submitting one
// figure_task job per index to cos-serve backends. ExecTasks must return
// exactly n records, where record i is what ts.RunTask(ctx, i,
// pool.TaskRNG(seed, i)) returns for the TaskSet that Tasks(id, opts)
// builds; opts is passed through verbatim so both sides derive the same
// decomposition.
type Executor interface {
	ExecTasks(ctx context.Context, id string, opts RunOptions, n int) ([]json.RawMessage, error)
}

// taskRegistry maps the experiment IDs that decompose into serializable
// point-tasks to their TaskSet constructors. Figures whose tasks carry
// non-trivial shared state stay registry-only and run whole (the fleet
// ships those as single figure jobs instead).
var taskRegistry = map[string]func(RunOptions) TaskSet{
	"fig2": func(o RunOptions) TaskSet { return fig2Tasks{cfg: fig2ConfigFrom(o)} },
	"fig3": func(o RunOptions) TaskSet { return fig3Tasks{cfg: fig3ConfigFrom(o)} },
}

// TaskIDs lists the experiment IDs that decompose into point-tasks, in
// sorted order (a subset of IDs()).
func TaskIDs() []string {
	out := make([]string, 0, len(taskRegistry))
	for id := range taskRegistry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Tasks returns figure id's point-task decomposition under opts, or false
// when the figure does not decompose. The same opts always yield the same
// decomposition (task count and per-task behavior), on every host.
func Tasks(id string, opts RunOptions) (TaskSet, bool) {
	mk, ok := taskRegistry[id]
	if !ok {
		return nil, false
	}
	return mk(opts), true
}

// runTasks executes a TaskSet and assembles its Result. With opts.Exec
// set, the executor owns task execution (the records come back over the
// wire); otherwise the tasks run on the in-process pool exactly as the
// pre-TaskSet closures did — same worker semantics, same per-task seeds,
// same lowest-index-error rule.
func runTasks(ctx context.Context, id string, opts RunOptions, ts TaskSet) (*Result, error) {
	n := ts.NumTasks()
	var recs []json.RawMessage
	if opts.Exec != nil {
		var err error
		recs, err = opts.Exec.ExecTasks(ctx, id, opts, n)
		if err != nil {
			return nil, err
		}
		if len(recs) != n {
			return nil, fmt.Errorf("experiments: executor returned %d records for %s, want %d", len(recs), id, n)
		}
	} else {
		seed := opts.Seed
		if seed == 0 {
			seed = 1
		}
		recs = make([]json.RawMessage, n)
		if err := pool.ForEach(ctx, opts.Workers, n, seed, func(i int, rng *rand.Rand) error {
			rec, err := ts.RunTask(ctx, i, rng)
			if err != nil {
				return err
			}
			recs[i] = rec
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return ts.Assemble(recs)
}
