package experiments

import (
	"context"
	"encoding/json"
	"testing"

	"cos/internal/pool"
)

// replayExecutor stands in for a remote fleet: it computes each record
// with its own TaskSet instance and the spec-derived RNG, exactly as a
// cos-serve backend running a figure_task job would.
type replayExecutor struct {
	t     *testing.T
	calls int
}

func (e *replayExecutor) ExecTasks(ctx context.Context, id string, opts RunOptions, n int) ([]json.RawMessage, error) {
	e.calls++
	recs := make([]json.RawMessage, n)
	for i := 0; i < n; i++ {
		// A fresh TaskSet per task mirrors remote execution: every job
		// rebuilds its world from the spec alone.
		ts, ok := Tasks(id, opts)
		if !ok {
			e.t.Fatalf("figure %q lost its decomposition mid-run", id)
		}
		seed := opts.Seed
		if seed == 0 {
			seed = 1
		}
		rec, err := ts.RunTask(ctx, i, pool.TaskRNG(seed, i))
		if err != nil {
			return nil, err
		}
		recs[i] = rec
	}
	return recs, nil
}

// TestExecutorPathMatchesLocal pins the seam the fleet plugs into: every
// task-decomposable figure renders byte-identical CSV whether its records
// come from the in-process pool or from an Executor.
func TestExecutorPathMatchesLocal(t *testing.T) {
	ids := TaskIDs()
	if len(ids) == 0 {
		t.Fatal("no task-decomposable figures registered")
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			opts := RunOptions{Scale: 0.3, Workers: 1, Seed: 1}
			local, err := Run(context.Background(), id, opts)
			if err != nil {
				t.Fatal(err)
			}
			exec := &replayExecutor{t: t}
			remoteOpts := opts
			remoteOpts.Exec = exec
			remote, err := Run(context.Background(), id, remoteOpts)
			if err != nil {
				t.Fatal(err)
			}
			if exec.calls != 1 {
				t.Fatalf("executor invoked %d times, want 1", exec.calls)
			}
			if got, want := remote.String(), local.String(); got != want {
				t.Errorf("executor CSV differs from local:\n--- local ---\n%s--- executor ---\n%s", want, got)
			}
		})
	}
}

// TestTaskIDsAreRegisteredFigures: every decomposable figure is also a
// registered experiment, and Tasks agrees with TaskIDs about membership.
func TestTaskIDsAreRegisteredFigures(t *testing.T) {
	known := map[string]bool{}
	for _, id := range IDs() {
		known[id] = true
	}
	for _, id := range TaskIDs() {
		if !known[id] {
			t.Errorf("TaskIDs lists %q, which is not a registered figure", id)
		}
		ts, ok := Tasks(id, RunOptions{Scale: 0.3, Seed: 1})
		if !ok {
			t.Errorf("Tasks(%q) = !ok despite TaskIDs listing it", id)
			continue
		}
		if n := ts.NumTasks(); n < 2 {
			t.Errorf("figure %q decomposes into %d tasks; want at least 2 for a fleet to matter", id, n)
		}
	}
	if _, ok := Tasks("fig10a", RunOptions{}); ok {
		t.Error("Tasks accepted a figure with no decomposition")
	}
}

// TestExecutorShortCount: an executor returning the wrong record count is
// an error, not a silent truncation.
func TestExecutorShortCount(t *testing.T) {
	opts := RunOptions{Scale: 0.3, Workers: 1, Seed: 1,
		Exec: executorFunc(func(ctx context.Context, id string, o RunOptions, n int) ([]json.RawMessage, error) {
			return make([]json.RawMessage, n-1), nil
		})}
	if _, err := Run(context.Background(), TaskIDs()[0], opts); err == nil {
		t.Fatal("a short record set assembled without error")
	}
}

type executorFunc func(context.Context, string, RunOptions, int) ([]json.RawMessage, error)

func (f executorFunc) ExecTasks(ctx context.Context, id string, opts RunOptions, n int) ([]json.RawMessage, error) {
	return f(ctx, id, opts, n)
}
