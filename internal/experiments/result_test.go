package experiments

import (
	"strings"
	"testing"
)

func TestResultCSVFormat(t *testing.T) {
	r := &Result{ID: "t", Title: "demo", XLabel: "x", YLabel: "y"}
	r.Add(Series{Name: "a", X: []float64{1, 2}, Y: []float64{3, 4}})
	r.Note("note %d", 7)
	out := r.String()
	for _, want := range []string{"# t: demo", "# x=x y=y", "# note: note 7", "series,x,y", "a,1,3", "a,2,4"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestResultCSVRejectsMismatchedSeries(t *testing.T) {
	r := &Result{ID: "t", Title: "bad"}
	r.Add(Series{Name: "a", X: []float64{1}, Y: nil})
	var b strings.Builder
	if err := r.WriteCSV(&b); err == nil {
		t.Error("mismatched series should error")
	}
	if !strings.Contains(r.String(), "experiments:") {
		t.Error("String should surface the error")
	}
}

func TestScaledHelper(t *testing.T) {
	if got := scaled(100, 0.5); got != 50 {
		t.Errorf("scaled(100,0.5) = %d", got)
	}
	if got := scaled(100, 0); got != 100 {
		t.Errorf("scaled(100,0) = %d (zero scale means full)", got)
	}
	if got := scaled(3, 0.01); got != 1 {
		t.Errorf("scaled(3,0.01) = %d, want floor of 1", got)
	}
}
