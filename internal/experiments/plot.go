package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// plotGlyphs mark successive series in an ASCII plot.
var plotGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '$', '~'}

// WritePlot renders the result as an ASCII chart: every series scattered
// into one width x height grid with shared axes. It is intentionally crude
// — enough to eyeball a figure's shape in a terminal without any plotting
// dependency; the CSV output remains the precise artifact.
func (r *Result) WritePlot(w io.Writer, width, height int) error {
	if width < 20 || height < 5 {
		return fmt.Errorf("experiments: plot area %dx%d too small", width, height)
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range r.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("experiments: series %q has mismatched lengths", s.Name)
		}
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
			points++
		}
	}
	if points == 0 {
		return fmt.Errorf("experiments: nothing to plot")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range r.Series {
		glyph := plotGlyphs[si%len(plotGlyphs)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1))
			grid[row][col] = glyph
		}
	}

	if _, err := fmt.Fprintf(w, "%s — %s\n", r.ID, r.Title); err != nil {
		return err
	}
	yTop := fmt.Sprintf("%.3g", ymax)
	yBot := fmt.Sprintf("%.3g", ymin)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", pad)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", pad, yTop)
		case height - 1:
			label = fmt.Sprintf("%*s", pad, yBot)
		}
		if _, err := fmt.Fprintf(w, "%s |%s|\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s+\n", strings.Repeat(" ", pad), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %-*.3g%*.3g   (x: %s, y: %s)\n",
		strings.Repeat(" ", pad), width/2, xmin, width-width/2, xmax, r.XLabel, r.YLabel); err != nil {
		return err
	}
	for si, s := range r.Series {
		if _, err := fmt.Fprintf(w, "  %c %s\n", plotGlyphs[si%len(plotGlyphs)], s.Name); err != nil {
			return err
		}
	}
	return nil
}
