// Package experiments regenerates every figure of the paper's evaluation
// (Figs. 2, 3, 5, 6, 7, 9, 10a-d) plus the ablations DESIGN.md calls for,
// on top of the simulated 802.11a + CoS stack. The cmd/cos-figures binary
// and the repository's benchmarks are thin wrappers over this package.
//
// Every experiment takes a config struct with a Scale knob: Scale 1 is the
// publication-quality run; smaller scales shrink packet counts and sweep
// resolutions proportionally for quick regression runs.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Series is one named curve of an experiment result.
type Series struct {
	// Name labels the curve (legend entry).
	Name string
	// X and Y are the curve's coordinates; len(X) == len(Y).
	X []float64
	// Y holds the dependent values.
	Y []float64
}

// Result is the output of one experiment: a set of curves plus metadata.
type Result struct {
	// ID is the figure identifier, e.g. "fig9".
	ID string
	// Title describes the experiment.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Series holds the curves.
	Series []Series
	// Notes records caveats and substitutions relevant to interpretation.
	Notes []string
}

// Add appends a curve.
func (r *Result) Add(s Series) { r.Series = append(r.Series, s) }

// Note appends an interpretation note.
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// WriteCSV renders the result as a long-format CSV: series,x,y.
func (r *Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", r.ID, r.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# x=%s y=%s\n", r.XLabel, r.YLabel); err != nil {
		return err
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "# note: %s\n", n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "series,x,y"); err != nil {
		return err
	}
	for _, s := range r.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("experiments: series %q has %d x values but %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", s.Name, s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// String renders the CSV form.
func (r *Result) String() string {
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		return fmt.Sprintf("experiments: %v", err)
	}
	return b.String()
}

// scaled returns max(1, round(base*scale)).
func scaled(base int, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	n := int(float64(base)*scale + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}
