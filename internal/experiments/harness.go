package experiments

import (
	"fmt"
	"math/rand"

	"cos/internal/bits"
	"cos/internal/channel"
	icos "cos/internal/cos"
	"cos/internal/ofdm"
	"cos/internal/phy"
)

// probe pushes one known packet through ch at time t with the given true
// SNR and returns the transmit/receive state for genie-aided measurement
// (the experiments know the transmitted packet, exactly like the paper's
// "fixed data packet whose symbol values are known to both the sender and
// the receiver").
type probeResult struct {
	tx        *phy.TxPacket
	fe        *phy.FrontEnd
	nv        float64 // time-domain noise variance used
	actualSNR float64
}

func probe(ch *channel.TDL, t float64, mode phy.Mode, psduLen int, actualSNR float64, rng *rand.Rand) (*probeResult, error) {
	psdu := make([]byte, psduLen)
	rng.Read(psdu)
	tx, err := phy.BuildPacket(phy.TxConfig{Mode: mode}, psdu)
	if err != nil {
		return nil, err
	}
	samples, err := tx.Samples()
	if err != nil {
		return nil, err
	}
	h := ch.FrequencyResponse(t)
	nv, err := phy.NoiseVarForActualSNR(h, actualSNR)
	if err != nil {
		return nil, err
	}
	rx := ch.Apply(samples, t, nv, rng)
	fe, err := phy.RunFrontEnd(rx)
	if err != nil {
		return nil, err
	}
	actual, err := phy.ActualSNRdB(h, nv)
	if err != nil {
		return nil, err
	}
	return &probeResult{tx: tx, fe: fe, nv: nv, actualSNR: actual}, nil
}

// calibrateActualSNR finds the true SNR that makes the receiver's measured
// (NIC) SNR hit target on channel ch, by fixed-point iteration on the
// measured-vs-actual offset.
func calibrateActualSNR(ch *channel.TDL, t float64, mode phy.Mode, target float64, rng *rand.Rand) (float64, error) {
	actual := target
	for iter := 0; iter < 4; iter++ {
		// Average a few probes per step: a single packet's measured-SNR
		// report is noisy enough to leave a persistent calibration error.
		var measured float64
		const probes = 3
		for i := 0; i < probes; i++ {
			pr, err := probe(ch, t, mode, 256, actual, rng)
			if err != nil {
				return 0, err
			}
			m, err := pr.fe.MeasuredSNRdB()
			if err != nil {
				return 0, err
			}
			measured += m / probes
		}
		actual += target - measured
		if diff := target - measured; diff < 0.1 && diff > -0.1 {
			break
		}
	}
	return actual, nil
}

// cosTrialConfig parameterizes one CoS packet trial.
type cosTrialConfig struct {
	mode      phy.Mode
	psduLen   int
	silences  int // total silence symbols to insert (0 = none)
	k         int
	ctrlSCs   []int
	genieMask bool // decode with the true mask instead of the detected one
	// ignoreErasures decodes without any erasure mask (the erasure-
	// ignorant baseline of the EVD ablation).
	ignoreErasures bool
	detector       icos.Detector
	// interferer, when non-nil, injects pulse interference into the
	// received samples (Fig. 10(d)).
	interferer *channel.PulseInterferer
	// placement overrides interval-coded layout with an explicit silence
	// position list (placement ablation); silences/k are ignored for
	// control decoding when set.
	placement []icos.Pos
	// llrBits quantizes the decoder input (0 = float metrics).
	llrBits int
}

// cosTrialResult reports one trial's outcome.
type cosTrialResult struct {
	dataOK    bool
	ctrlOK    bool
	detection icos.DetectionStats
}

// runCoSTrial sends one FCS-protected packet with an embedded random control
// message sized to produce exactly cfg.silences silence symbols, then runs
// the full receive pipeline.
func runCoSTrial(ch *channel.TDL, t, actualSNR float64, cfg cosTrialConfig, rng *rand.Rand) (*cosTrialResult, error) {
	payload := make([]byte, cfg.psduLen-bits.FCSLen)
	rng.Read(payload)
	psdu := bits.AppendFCS(payload)
	tx, err := phy.BuildPacket(phy.TxConfig{Mode: cfg.mode}, psdu)
	if err != nil {
		return nil, err
	}

	var ctrl []byte
	var truthMask [][]bool
	switch {
	case cfg.placement != nil:
		truthMask, err = icos.InsertSilences(tx.Grid, cfg.placement)
		if err != nil {
			return nil, err
		}
	case cfg.silences > 0:
		nBits := (cfg.silences - 1) * cfg.k
		if nBits < 0 {
			nBits = 0
		}
		ctrl = make([]byte, nBits)
		for i := range ctrl {
			ctrl[i] = byte(rng.Intn(2))
		}
		truthMask, err = icos.Embed(tx, cfg.ctrlSCs, ctrl, cfg.k)
		if err != nil {
			return nil, err
		}
	}

	samples, err := tx.Samples()
	if err != nil {
		return nil, err
	}
	h := ch.FrequencyResponse(t)
	nv, err := phy.NoiseVarForActualSNR(h, actualSNR)
	if err != nil {
		return nil, err
	}
	rx := ch.Apply(samples, t, nv, rng)
	if cfg.interferer != nil {
		if _, err := cfg.interferer.Apply(rx, rng); err != nil {
			return nil, err
		}
	}
	fe, err := phy.RunFrontEnd(rx)
	if err != nil {
		return nil, err
	}

	res := &cosTrialResult{}
	var mask [][]bool
	if cfg.placement != nil {
		detMask, err := cfg.detector.DetectMask(fe, cfg.ctrlSCs)
		if err != nil {
			return nil, err
		}
		res.detection, err = icos.CompareMasks(truthMask, detMask, cfg.ctrlSCs)
		if err != nil {
			return nil, err
		}
		mask = detMask
		if cfg.genieMask {
			mask = truthMask
		}
	} else if cfg.silences > 0 {
		ctrlBits, detMask, exErr := icos.ExtractControl(fe, cfg.ctrlSCs, cfg.detector, cfg.k)
		if detMask == nil {
			detMask, err = cfg.detector.DetectMask(fe, cfg.ctrlSCs)
			if err != nil {
				return nil, err
			}
		}
		if exErr == nil && len(ctrlBits) >= len(ctrl) && bits.Equal(ctrlBits[:len(ctrl)], ctrl) {
			res.ctrlOK = true
		}
		res.detection, err = icos.CompareMasks(truthMask, detMask, cfg.ctrlSCs)
		if err != nil {
			return nil, err
		}
		mask = detMask
		if cfg.genieMask {
			mask = truthMask
		}
	}

	if cfg.ignoreErasures {
		mask = nil
	}
	dec, err := fe.Decode(phy.DecodeConfig{Mode: cfg.mode, PSDULen: len(psdu), Erased: mask, LLRBits: cfg.llrBits})
	if err != nil {
		return nil, err
	}
	if _, ok := bits.CheckFCS(dec.PSDU); ok {
		res.dataOK = true
	}
	return res, nil
}

// selectCtrlSCsForBudget measures EVM and per-subcarrier SNR from a few
// clean probes, then selects enough detectable control subcarriers to fit
// `silences` silence symbols into a packet of nSym symbols with k bits per
// interval (worst-case interval spacing). Averaging the probes matters: a
// single packet's channel estimate is noisy enough at weak subcarriers to
// let a borderline-undetectable subcarrier slip past the floor.
func selectCtrlSCsForBudget(ch *channel.TDL, t, actualSNR float64, mode phy.Mode, nSym, silences, k int, rng *rand.Rand) ([]int, error) {
	const probes = 3
	evm := make([]float64, ofdm.NumData)
	snrs := make([]float64, ofdm.NumData)
	for i := 0; i < probes; i++ {
		pr, err := probe(ch, t, mode, 256, actualSNR, rng)
		if err != nil {
			return nil, err
		}
		diag, err := phy.Diagnose(pr.tx, pr.fe, nil, nil)
		if err != nil {
			return nil, err
		}
		s, err := pr.fe.SubcarrierSNRs()
		if err != nil {
			return nil, err
		}
		for d := 0; d < ofdm.NumData; d++ {
			evm[d] += diag.EVM[d] / probes
			snrs[d] += s[d] / probes
		}
	}
	// Worst-case positions needed: every interval at its maximum.
	need := 1 + silences*(1<<k)
	minCtrl := (need + nSym - 1) / nSym
	if minCtrl < 4 {
		minCtrl = 4
	}
	if minCtrl > 24 {
		minCtrl = 24
	}
	sel, err := icos.SelectDetectable(evm, snrs, mode.Modulation, minCtrl, 0, 0)
	if err != nil {
		return nil, err
	}
	if nSym*len(sel) < need {
		return nil, fmt.Errorf("experiments: only %d detectable control subcarriers; %d silences need %d positions over %d symbols",
			len(sel), silences, need, nSym)
	}
	return sel, nil
}

// modeLabel renders "(16QAM,3/4)" style labels used in Fig. 9.
func modeLabel(m phy.Mode) string {
	return fmt.Sprintf("(%v,%v)", m.Modulation, m.CodeRate)
}
