package experiments

import (
	"fmt"
	"math/rand"

	"cos/internal/bits"
	"cos/internal/channel"
	icos "cos/internal/cos"
	"cos/internal/ofdm"
	"cos/internal/phy"
	"cos/internal/scenario"
	_ "cos/internal/scenario/all" // register the built-in scenario components
)

// trialChannel draws the channel model an experiment point-task propagates
// through: the scenario named by ref (default when empty) realized for the
// given geometry, with the scenario's interferer (if any) composed in.
func trialChannel(ref string, pos channel.Position, mobile bool, variant int64) (scenario.ChannelModel, error) {
	sc, err := scenario.FromRef(ref)
	if err != nil {
		return nil, err
	}
	model, err := sc.NewChannel(scenario.Geometry{Position: pos, Mobile: mobile, Variant: variant})
	if err != nil {
		return nil, err
	}
	intf, err := sc.NewInterferer()
	if err != nil {
		return nil, err
	}
	return scenario.Interfered(model, intf), nil
}

// freqResponse reads a channel model's per-subcarrier response, for the
// experiments that plot or threshold against |H|. Models without a
// well-defined response are rejected.
func freqResponse(model scenario.ChannelModel, t float64) ([ofdm.NumSubcarriers]complex128, error) {
	fr, ok := model.(scenario.FrequencyResponder)
	if !ok {
		return [ofdm.NumSubcarriers]complex128{}, fmt.Errorf("experiments: channel model %T exposes no frequency response", model)
	}
	return fr.FrequencyResponse(t), nil
}

// trialScratch is the experiments' reusable working storage: the PHY
// transmit/receive scratch arenas plus every buffer the trial harness
// needs between packets. One scratch serves one point-task; results
// returned by probe and runCoSTrial alias it and are valid only until its
// next use. A nil scratch is accepted everywhere and means fresh
// allocation (the pre-arena behaviour).
type trialScratch struct {
	tx       phy.TxScratch
	rx       phy.RxScratch
	samples  []complex128
	rxBuf    []complex128
	psdu     []byte
	payload  []byte
	ctrl     []byte
	txIvals  []int
	txPos    []icos.Pos
	truthMsk [][]bool
	detMsk   [][]bool
	rxIvals  []int
	rxBits   []byte
}

// probe pushes one known packet through ch at time t with the given true
// SNR and returns the transmit/receive state for genie-aided measurement
// (the experiments know the transmitted packet, exactly like the paper's
// "fixed data packet whose symbol values are known to both the sender and
// the receiver"). The result aliases s.
type probeResult struct {
	tx        *phy.TxPacket
	fe        *phy.FrontEnd
	actualSNR float64
}

func probe(s *trialScratch, ch scenario.ChannelModel, t float64, mode phy.Mode, psduLen int, actualSNR float64, rng *rand.Rand) (*probeResult, error) {
	if s == nil {
		s = &trialScratch{}
	}
	if cap(s.psdu) < psduLen {
		s.psdu = make([]byte, psduLen)
	}
	s.psdu = s.psdu[:psduLen]
	rng.Read(s.psdu)
	tx, err := phy.BuildPacketInto(&s.tx, phy.TxConfig{Mode: mode}, s.psdu)
	if err != nil {
		return nil, err
	}
	s.samples, err = tx.SamplesInto(s.samples)
	if err != nil {
		return nil, err
	}
	var actual float64
	s.rxBuf, actual, err = ch.Propagate(s.rxBuf, s.samples, t, actualSNR, rng)
	if err != nil {
		return nil, err
	}
	fe, err := phy.RunFrontEndInto(&s.rx, s.rxBuf)
	if err != nil {
		return nil, err
	}
	return &probeResult{tx: tx, fe: fe, actualSNR: actual}, nil
}

// calibrateActualSNR finds the true SNR that makes the receiver's measured
// (NIC) SNR hit target on channel ch, by fixed-point iteration on the
// measured-vs-actual offset.
func calibrateActualSNR(s *trialScratch, ch scenario.ChannelModel, t float64, mode phy.Mode, target float64, rng *rand.Rand) (float64, error) {
	actual := target
	for iter := 0; iter < 4; iter++ {
		// Average a few probes per step: a single packet's measured-SNR
		// report is noisy enough to leave a persistent calibration error.
		var measured float64
		const probes = 3
		for i := 0; i < probes; i++ {
			pr, err := probe(s, ch, t, mode, 256, actual, rng)
			if err != nil {
				return 0, err
			}
			m, err := pr.fe.MeasuredSNRdB()
			if err != nil {
				return 0, err
			}
			measured += m / probes
		}
		actual += target - measured
		if diff := target - measured; diff < 0.1 && diff > -0.1 {
			break
		}
	}
	return actual, nil
}

// cosTrialConfig parameterizes one CoS packet trial.
type cosTrialConfig struct {
	mode      phy.Mode
	psduLen   int
	silences  int // total silence symbols to insert (0 = none)
	k         int
	ctrlSCs   []int
	genieMask bool // decode with the true mask instead of the detected one
	// ignoreErasures decodes without any erasure mask (the erasure-
	// ignorant baseline of the EVD ablation).
	ignoreErasures bool
	detector       icos.Detector
	// interferer, when non-nil, injects interference into the received
	// samples (Fig. 10(d) uses the pulse interferer).
	interferer scenario.Interferer
	// placement overrides interval-coded layout with an explicit silence
	// position list (placement ablation); silences/k are ignored for
	// control decoding when set.
	placement []icos.Pos
	// llrBits quantizes the decoder input (0 = float metrics).
	llrBits int
}

// cosTrialResult reports one trial's outcome.
type cosTrialResult struct {
	dataOK    bool
	ctrlOK    bool
	detection icos.DetectionStats
}

// runCoSTrial sends one FCS-protected packet with an embedded random control
// message sized to produce exactly cfg.silences silence symbols, then runs
// the full receive pipeline, all through s's scratch arenas.
func runCoSTrial(s *trialScratch, ch scenario.ChannelModel, t, actualSNR float64, cfg cosTrialConfig, rng *rand.Rand) (*cosTrialResult, error) {
	if s == nil {
		s = &trialScratch{}
	}
	n := cfg.psduLen - bits.FCSLen
	if cap(s.payload) < n {
		s.payload = make([]byte, n)
	}
	s.payload = s.payload[:n]
	rng.Read(s.payload)
	s.psdu = bits.AppendFCSInto(s.psdu, s.payload)
	tx, err := phy.BuildPacketInto(&s.tx, phy.TxConfig{Mode: cfg.mode}, s.psdu)
	if err != nil {
		return nil, err
	}

	var ctrl []byte
	var truthMask [][]bool
	switch {
	case cfg.placement != nil:
		s.truthMsk, err = icos.InsertSilencesInto(s.truthMsk, tx.Grid, cfg.placement)
		if err != nil {
			return nil, err
		}
		truthMask = s.truthMsk
	case cfg.silences > 0:
		nBits := (cfg.silences - 1) * cfg.k
		if nBits < 0 {
			nBits = 0
		}
		if cap(s.ctrl) < nBits {
			s.ctrl = make([]byte, nBits)
		}
		ctrl = s.ctrl[:nBits]
		for i := range ctrl {
			ctrl[i] = byte(rng.Intn(2))
		}
		s.txIvals, err = icos.EncodeIntervalsInto(s.txIvals, ctrl, cfg.k)
		if err != nil {
			return nil, err
		}
		s.txPos, err = icos.LayoutInto(s.txPos, s.txIvals, tx.NumSymbols(), cfg.ctrlSCs)
		if err != nil {
			return nil, err
		}
		s.truthMsk, err = icos.InsertSilencesInto(s.truthMsk, tx.Grid, s.txPos)
		if err != nil {
			return nil, err
		}
		truthMask = s.truthMsk
	}

	s.samples, err = tx.SamplesInto(s.samples)
	if err != nil {
		return nil, err
	}
	s.rxBuf, _, err = ch.Propagate(s.rxBuf, s.samples, t, actualSNR, rng)
	if err != nil {
		return nil, err
	}
	if cfg.interferer != nil {
		if _, err := cfg.interferer.Apply(s.rxBuf, rng); err != nil {
			return nil, err
		}
	}
	fe, err := phy.RunFrontEndInto(&s.rx, s.rxBuf)
	if err != nil {
		return nil, err
	}

	res := &cosTrialResult{}
	var mask [][]bool
	if cfg.placement != nil {
		s.detMsk, err = cfg.detector.DetectMaskInto(s.detMsk, fe, cfg.ctrlSCs)
		if err != nil {
			return nil, err
		}
		res.detection, err = icos.CompareMasks(truthMask, s.detMsk, cfg.ctrlSCs)
		if err != nil {
			return nil, err
		}
		mask = s.detMsk
		if cfg.genieMask {
			mask = truthMask
		}
	} else if cfg.silences > 0 {
		s.detMsk, err = cfg.detector.DetectMaskInto(s.detMsk, fe, cfg.ctrlSCs)
		if err != nil {
			return nil, err
		}
		var ctrlBits []byte
		var exErr error
		s.rxIvals, exErr = icos.ExtractIntervalsInto(s.rxIvals, s.detMsk, cfg.ctrlSCs)
		if exErr == nil {
			s.rxBits, exErr = icos.DecodeIntervalsInto(s.rxBits, s.rxIvals, cfg.k)
			ctrlBits = s.rxBits
		}
		if exErr == nil && len(ctrlBits) >= len(ctrl) && bits.Equal(ctrlBits[:len(ctrl)], ctrl) {
			res.ctrlOK = true
		}
		res.detection, err = icos.CompareMasks(truthMask, s.detMsk, cfg.ctrlSCs)
		if err != nil {
			return nil, err
		}
		mask = s.detMsk
		if cfg.genieMask {
			mask = truthMask
		}
	}

	if cfg.ignoreErasures {
		mask = nil
	}
	dec, err := fe.DecodeInto(&s.rx, phy.DecodeConfig{Mode: cfg.mode, PSDULen: len(s.psdu), Erased: mask, LLRBits: cfg.llrBits})
	if err != nil {
		return nil, err
	}
	if _, ok := bits.CheckFCS(dec.PSDU); ok {
		res.dataOK = true
	}
	return res, nil
}

// selectCtrlSCsForBudget measures EVM and per-subcarrier SNR from a few
// clean probes, then selects enough detectable control subcarriers to fit
// `silences` silence symbols into a packet of nSym symbols with k bits per
// interval (worst-case interval spacing). Averaging the probes matters: a
// single packet's channel estimate is noisy enough at weak subcarriers to
// let a borderline-undetectable subcarrier slip past the floor.
func selectCtrlSCsForBudget(s *trialScratch, ch scenario.ChannelModel, t, actualSNR float64, mode phy.Mode, nSym, silences, k int, rng *rand.Rand) ([]int, error) {
	const probes = 3
	evm := make([]float64, ofdm.NumData)
	snrs := make([]float64, ofdm.NumData)
	for i := 0; i < probes; i++ {
		pr, err := probe(s, ch, t, mode, 256, actualSNR, rng)
		if err != nil {
			return nil, err
		}
		diag, err := phy.Diagnose(pr.tx, pr.fe, nil, nil)
		if err != nil {
			return nil, err
		}
		sc, err := pr.fe.SubcarrierSNRs()
		if err != nil {
			return nil, err
		}
		for d := 0; d < ofdm.NumData; d++ {
			evm[d] += diag.EVM[d] / probes
			snrs[d] += sc[d] / probes
		}
	}
	// Worst-case positions needed: every interval at its maximum.
	need := 1 + silences*(1<<k)
	minCtrl := (need + nSym - 1) / nSym
	if minCtrl < 4 {
		minCtrl = 4
	}
	if minCtrl > 24 {
		minCtrl = 24
	}
	sel, err := icos.SelectDetectable(evm, snrs, mode.Modulation, minCtrl, 0, 0)
	if err != nil {
		return nil, err
	}
	if nSym*len(sel) < need {
		return nil, fmt.Errorf("experiments: only %d detectable control subcarriers; %d silences need %d positions over %d symbols",
			len(sel), silences, need, nSym)
	}
	return sel, nil
}

// modeLabel renders "(16QAM,3/4)" style labels used in Fig. 9.
func modeLabel(m phy.Mode) string {
	return fmt.Sprintf("(%v,%v)", m.Modulation, m.CodeRate)
}
