package experiments

import (
	"context"
	"encoding/json"
	"math/rand"

	"cos/internal/channel"
	"cos/internal/phy"
	"cos/internal/scenario"
)

// Fig3Config parameterizes the decoder-input BER measurement.
type Fig3Config struct {
	// MinSNR and MaxSNR bound the measured-SNR sweep (defaults 12, 17.3 —
	// the 24 Mb/s operating band of the paper's Fig. 3).
	MinSNR, MaxSNR float64
	// Step is the sweep step in dB (default 0.5).
	Step float64
	// Packets is the number of packets averaged per point (default 80).
	Packets int
	// Scale shrinks Packets for quick runs.
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Workers bounds the point-task pool (0 = GOMAXPROCS).
	Workers int
	// Scenario is an optional scenario reference ("" = default world).
	Scenario string
}

func (c *Fig3Config) setDefaults() {
	if c.MaxSNR == 0 {
		c.MinSNR, c.MaxSNR = 12, 17.3
	}
	if c.Step == 0 {
		c.Step = 0.5
	}
	if c.Packets == 0 {
		c.Packets = 80
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// fig3BERAt measures the decoder-input BER at one target measured SNR; it
// is the body of one point-task and draws only from its private rng.
func fig3BERAt(ctx context.Context, ch scenario.ChannelModel, mode phy.Mode, targetMeasured float64, packets int, rng *rand.Rand) (float64, error) {
	scr := &trialScratch{}
	actual, err := calibrateActualSNR(scr, ch, 0, mode, targetMeasured, rng)
	if err != nil {
		return 0, err
	}
	var errsTotal, bitsTotal int
	for p := 0; p < packets; p++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		pr, err := probe(scr, ch, 0, mode, 1024, actual, rng)
		if err != nil {
			return 0, err
		}
		dec, err := pr.fe.Decode(phy.DecodeConfig{Mode: mode, PSDULen: 1024})
		if err != nil {
			return 0, err
		}
		diag, err := phy.Diagnose(pr.tx, pr.fe, nil, dec.HardCodedBits)
		if err != nil {
			return 0, err
		}
		errsTotal += diag.DecoderInputBitErrors
		bitsTotal += diag.DecoderInputBits
	}
	if bitsTotal == 0 {
		return 0, nil
	}
	return float64(errsTotal) / float64(bitsTotal), nil
}

// fig3ConfigFrom maps registry RunOptions onto a Fig3Config exactly as the
// registry entry always has; serve's figure_task executor shares it so
// local and remote decompositions agree.
func fig3ConfigFrom(o RunOptions) Fig3Config {
	cfg := Fig3Config{Scale: o.Scale, Seed: o.Seed, Workers: o.Workers, Scenario: o.Scenario}
	cfg.setDefaults()
	return cfg
}

// snrPoints is the sweep grid: task 0 is the decoder tolerance anchor at
// MinSNR, tasks 1..n the swept points.
func (c *Fig3Config) snrPoints() []float64 {
	snrs := []float64{c.MinSNR}
	for snr := c.MinSNR; snr <= c.MaxSNR+1e-9; snr += c.Step {
		snrs = append(snrs, snr)
	}
	return snrs
}

// fig3Record is one point-task's serialized outcome: the decoder-input BER
// measured at its SNR point.
type fig3Record struct {
	BER float64 `json:"ber"`
}

// fig3Tasks is Fig. 3 decomposed into one point-task per SNR point plus
// the 12 dB tolerance anchor (task 0). cfg must have defaults applied.
type fig3Tasks struct {
	cfg Fig3Config
}

func (f fig3Tasks) NumTasks() int { return len(f.cfg.snrPoints()) }

func (f fig3Tasks) RunTask(ctx context.Context, i int, rng *rand.Rand) (json.RawMessage, error) {
	mode, err := phy.ModeByRate(24)
	if err != nil {
		return nil, err
	}
	// Per task: a channel model owns tap scratch, so point-tasks must not
	// share one (the realization itself is deterministic per variant, so
	// every task sees the same channel).
	ch, err := trialChannel(f.cfg.Scenario, channel.PositionA, false, 7)
	if err != nil {
		return nil, err
	}
	ber, err := fig3BERAt(ctx, ch, mode, f.cfg.snrPoints()[i], scaled(f.cfg.Packets, f.cfg.Scale), rng)
	if err != nil {
		return nil, err
	}
	return json.Marshal(fig3Record{BER: ber})
}

func (f fig3Tasks) Assemble(recs []json.RawMessage) (*Result, error) {
	snrs := f.cfg.snrPoints()
	bers := make([]float64, len(recs))
	for i, raw := range recs {
		var rec fig3Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, err
		}
		bers[i] = rec.BER
	}
	tolerable := bers[0]

	res := &Result{
		ID:     "fig3",
		Title:  "Decoder-input BER vs measured SNR at 24 Mb/s",
		XLabel: "measured SNR (dB)",
		YLabel: "decoder-input BER",
	}
	actualSer := Series{Name: "ActualBER"}
	redundSer := Series{Name: "RedundantBER"}
	for i, snr := range snrs[1:] {
		ber := bers[i+1]
		red := tolerable - ber
		if red < 0 {
			red = 0
		}
		actualSer.X = append(actualSer.X, snr)
		actualSer.Y = append(actualSer.Y, ber)
		redundSer.X = append(redundSer.X, snr)
		redundSer.Y = append(redundSer.Y, red)
	}
	res.Add(actualSer)
	res.Add(redundSer)
	res.Note("tolerable decoder-input BER anchored at the 12 dB minimum required SNR: %.5f", tolerable)
	return res, nil
}

// Fig3DecoderBER reproduces Fig. 3: decoder-input BER versus measured SNR
// at 24 Mb/s. "Actual BER" is the hard-decision error rate on the coded
// bits entering the Viterbi decoder; "Redundant BER" is the headroom —
// the BER the decoder could still tolerate, estimated as the decoder-input
// BER at the mode's minimum required SNR (12 dB) minus the actual BER.
//
// The sweep decomposes into one point-task per SNR point plus one for the
// 12 dB tolerance anchor; tasks run on the worker pool with private RNGs,
// so parallel output is bit-identical to serial.
func Fig3DecoderBER(ctx context.Context, cfg Fig3Config) (*Result, error) {
	cfg.setDefaults()
	return runTasks(ctx, "fig3", RunOptions{Workers: cfg.Workers, Seed: cfg.Seed}, fig3Tasks{cfg: cfg})
}
