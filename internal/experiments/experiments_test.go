package experiments

import (
	"context"
	"strings"
	"testing"
)

// tinyScale keeps regression runs fast; shapes must still hold.
const tinyScale = 0.08

func seriesByName(t *testing.T, r *Result, name string) Series {
	t.Helper()
	for _, s := range r.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("%s: no series %q (have %v)", r.ID, name, seriesNames(r))
	return Series{}
}

func seriesNames(r *Result) []string {
	out := make([]string, 0, len(r.Series))
	for _, s := range r.Series {
		out = append(out, s.Name)
	}
	return out
}

func TestFig2ShapeActualAboveMinRequired(t *testing.T) {
	res, err := Fig2SNRGap(context.Background(), Fig2Config{Variants: 2, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	minReq := seriesByName(t, res, "MinRequiredSNR")
	actual := seriesByName(t, res, "ActualSNR")
	if len(minReq.X) < 5 {
		t.Fatalf("only %d points", len(minReq.X))
	}
	above := 0
	for i := range minReq.X {
		if actual.Y[i] > minReq.Y[i] {
			above++
		}
	}
	// The defining property of the SNR gap: actual SNR sits above the
	// stair-case minimum (essentially always).
	if above < len(minReq.X)*95/100 {
		t.Errorf("actual SNR above minimum required on only %d/%d points", above, len(minReq.X))
	}
	// Actual SNR should also sit above measured SNR on selective channels.
	aboveMeasured := 0
	for i := range actual.X {
		if actual.Y[i] >= actual.X[i]-0.3 {
			aboveMeasured++
		}
	}
	if aboveMeasured < len(actual.X)*9/10 {
		t.Errorf("actual above measured on only %d/%d points", aboveMeasured, len(actual.X))
	}
}

func TestFig3ShapeBERDecreasesWithSNR(t *testing.T) {
	res, err := Fig3DecoderBER(context.Background(), Fig3Config{Scale: 0.25, Step: 1.3})
	if err != nil {
		t.Fatal(err)
	}
	actual := seriesByName(t, res, "ActualBER")
	redundant := seriesByName(t, res, "RedundantBER")
	if actual.Y[0] <= actual.Y[len(actual.Y)-1] {
		t.Errorf("decoder-input BER should fall with SNR: %v", actual.Y)
	}
	if redundant.Y[len(redundant.Y)-1] <= redundant.Y[0] {
		t.Errorf("redundant BER should grow with SNR: %v", redundant.Y)
	}
	for i := range actual.Y {
		if actual.Y[i] < 0 || actual.Y[i] > 0.2 {
			t.Errorf("implausible decoder-input BER %v at %v dB", actual.Y[i], actual.X[i])
		}
	}
}

func TestFig5ShapeFrequencyDiversity(t *testing.T) {
	res, err := Fig5EVM(context.Background(), Fig5Config{Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("want 3 position series, got %v", seriesNames(res))
	}
	for _, s := range res.Series {
		if len(s.Y) != 48 {
			t.Fatalf("%s: %d subcarriers", s.Name, len(s.Y))
		}
		min, max := s.Y[0], s.Y[0]
		for _, v := range s.Y {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		// Frequency selectivity: EVM spread across subcarriers is large
		// (the paper reports differences up to 13 percentage points).
		if max-min < 2 {
			t.Errorf("%s: EVM spread %.2f%% too flat for a selective channel", s.Name, max-min)
		}
		// Deep notches can push post-equalization EVM past 100% (the error
		// vector exceeds the signal on a near-dead subcarrier); anything
		// beyond a few hundred percent would indicate a pipeline bug.
		if max > 500 {
			t.Errorf("%s: implausible EVM %v%%", s.Name, max)
		}
	}
}

func TestFig6ShapePeriodicErrors(t *testing.T) {
	res, err := Fig6ErrorPattern(context.Background(), Fig6Config{Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	ser := seriesByName(t, res, "SERBySubcarrier")
	freq := seriesByName(t, res, "ErrorFreqByPosition")
	if len(freq.Y) != 1000 {
		t.Fatalf("positions = %d", len(freq.Y))
	}
	// Errors concentrate: the max-SER subcarrier should dominate the mean.
	var sum, max float64
	for _, v := range ser.Y {
		sum += v
		if v > max {
			max = v
		}
	}
	mean := sum / float64(len(ser.Y))
	if max < 3*mean {
		t.Errorf("symbol errors not concentrated: max SER %v vs mean %v", max, mean)
	}
	// The positional error frequency must correlate with the subcarrier
	// SER at period 48: position p falls on subcarrier p%%48.
	var corrNum float64
	for p, v := range freq.Y {
		corrNum += v * ser.Y[p%48]
	}
	var shuffled float64
	for p, v := range freq.Y {
		shuffled += v * ser.Y[(p+17)%48]
	}
	if corrNum <= shuffled {
		t.Errorf("no 48-periodicity: aligned weight %v <= misaligned %v", corrNum, shuffled)
	}
}

func TestFig7ShapeTemporalStability(t *testing.T) {
	res, err := Fig7Temporal(context.Background(), Fig7Config{Scale: 0.15, Draws: 20})
	if err != nil {
		t.Fatal(err)
	}
	// CDF medians should be small (stable channel) and grow with tau.
	med := func(s Series) float64 {
		for i, p := range s.Y {
			if p >= 0.5 {
				return s.X[i]
			}
		}
		return s.X[len(s.X)-1]
	}
	m10 := med(seriesByName(t, res, "CDF tau=10ms"))
	m40 := med(seriesByName(t, res, "CDF tau=40ms"))
	if m10 > 1.0 {
		t.Errorf("median nabla-EVM at 10ms = %v; channel should be stable", m10)
	}
	if m40 < m10 {
		t.Errorf("nabla-EVM should not shrink with tau: 10ms=%v 40ms=%v", m10, m40)
	}
}

func TestFig10aShapeSilencesDiscernible(t *testing.T) {
	res, err := Fig10aMagnitudes(context.Background(), Fig10aConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s := seriesByName(t, res, "RelativeMagnitude")
	if len(s.Y) != 52 {
		t.Fatalf("%d subcarriers", len(s.Y))
	}
	// Data subcarriers 9,10,16 are logical data indices; map them into the
	// 52-subcarrier ascending ordering: occupied index = data index shifted
	// by pilots below it. Data SC 9 is logical -15 -> occupied position 11
	// (0-based) among -26..-1,1..26 with pilots included.
	// Simply assert: the three smallest magnitudes are well below median.
	sorted := append([]float64(nil), s.Y...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	median := sorted[26]
	if sorted[2] > median/3 {
		t.Errorf("silent bins not discernible: third-smallest %v vs median %v", sorted[2], median)
	}
}

func TestFig10bShapeThresholdTradeoff(t *testing.T) {
	res, err := Fig10bThreshold(context.Background(), Fig10bConfig{Scale: tinyScale, Points: 9})
	if err != nil {
		t.Fatal(err)
	}
	fp := seriesByName(t, res, "FalsePositive")
	fn := seriesByName(t, res, "FalseNegative")
	// FN falls with threshold; FP rises.
	if fn.Y[0] <= fn.Y[len(fn.Y)-1] {
		t.Errorf("FN should fall as threshold rises: %v", fn.Y)
	}
	if fp.Y[len(fp.Y)-1] <= fp.Y[0] {
		t.Errorf("FP should rise with threshold: %v", fp.Y)
	}
}

func TestFig10cShapeAccuracy(t *testing.T) {
	res, err := Fig10cAccuracy(context.Background(), Fig10cConfig{Scale: tinyScale, SNRs: []float64{4, 10, 16}})
	if err != nil {
		t.Fatal(err)
	}
	fp := seriesByName(t, res, "FalsePositive")
	fn := seriesByName(t, res, "FalseNegative")
	// FN stays low everywhere; FP at high SNR is near zero and no larger
	// than at low SNR.
	for i := range fn.Y {
		if fn.Y[i] > 0.08 {
			t.Errorf("FN %v at %v dB too high", fn.Y[i], fn.X[i])
		}
	}
	last := len(fp.Y) - 1
	if fp.Y[last] > 0.02 {
		t.Errorf("FP %v at high SNR should be near zero", fp.Y[last])
	}
	if fp.Y[0] < fp.Y[last]-1e-9 {
		t.Errorf("FP should not grow with SNR: %v", fp.Y)
	}
}

func TestFig10dShapeInterference(t *testing.T) {
	res, err := Fig10dInterference(context.Background(), Fig10cConfig{Scale: tinyScale, SNRs: []float64{8, 14, 20}})
	if err != nil {
		t.Fatal(err)
	}
	dirty := seriesByName(t, res, "CoS with strong interference")
	clean := seriesByName(t, res, "CoS")
	var dirtySum, cleanSum float64
	for i := range dirty.Y {
		dirtySum += dirty.Y[i]
		cleanSum += clean.Y[i]
	}
	if dirtySum <= cleanSum {
		t.Errorf("interference should raise FN: dirty %v clean %v", dirty.Y, clean.Y)
	}
}

func TestAblationEVDShape(t *testing.T) {
	res, err := AblationEVD(context.Background(), AblationConfig{Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	evd := seriesByName(t, res, "ErasureViterbi")
	ign := seriesByName(t, res, "ErasureIgnorant")
	var evdSum, ignSum float64
	for i := range evd.Y {
		evdSum += evd.Y[i]
		ignSum += ign.Y[i]
	}
	if evdSum <= ignSum {
		t.Errorf("EVD should beat erasure-ignorant decoding: %v vs %v", evd.Y, ign.Y)
	}
	// At zero silences both decode everything.
	if evd.Y[0] < 0.95 || ign.Y[0] < 0.95 {
		t.Errorf("baseline PRR without silences should be ~1: %v / %v", evd.Y[0], ign.Y[0])
	}
}

func TestAblationPlacementShape(t *testing.T) {
	res, err := AblationPlacement(context.Background(), AblationConfig{Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	weak := seriesByName(t, res, "WeakSubcarriers")
	strong := seriesByName(t, res, "StrongSubcarriers")
	var weakSum, strongSum float64
	for i := range weak.Y {
		weakSum += weak.Y[i]
		strongSum += strong.Y[i]
	}
	if weakSum < strongSum {
		t.Errorf("weak-subcarrier placement should not lose to strong: weak %v strong %v", weak.Y, strong.Y)
	}
}

func TestControlAccuracyShape(t *testing.T) {
	res, err := ControlAccuracy(context.Background(), AblationConfig{Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	s := seriesByName(t, res, "ControlDelivery")
	last := len(s.Y) - 1
	if s.Y[last] < 0.9 {
		t.Errorf("control delivery %v at %v dB; paper reports close to 100%%", s.Y[last], s.X[last])
	}
}

func TestRegistryRunsEverythingTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("registry sweep is slow")
	}
	for _, id := range IDs() {
		if id == "fig9" {
			continue // covered by its own test below; too slow here
		}
		res, err := Run(context.Background(), id, RunOptions{Scale: 0.05})
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if len(res.Series) == 0 {
			t.Errorf("%s: empty result", id)
		}
		csv := res.String()
		if !strings.Contains(csv, "series,x,y") {
			t.Errorf("%s: CSV header missing", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run(context.Background(), "nope", RunOptions{}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestFig9TinyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig9 is slow")
	}
	res, err := Fig9Capacity(context.Background(), Fig9Config{PacketsPerTrial: 30, PointsPerMode: 2, TargetPRR: 0.96})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 6 {
		t.Fatalf("want 6 mode series, got %v", seriesNames(res))
	}
	// Key qualitative claims: every mode sustains a nonzero budget, and
	// within a mode Rm does not fall from the band's low edge to its high
	// edge.
	for _, s := range res.Series {
		if len(s.Y) != 2 {
			t.Fatalf("%s: %d points", s.Name, len(s.Y))
		}
		if s.Y[0] <= 0 && s.Y[1] <= 0 {
			t.Errorf("%s: no capacity anywhere in its band", s.Name)
		}
		if s.Y[1] < s.Y[0]*0.5 {
			t.Errorf("%s: Rm fell sharply within the band: %v", s.Name, s.Y)
		}
	}
}

func TestAblationQuantizationShape(t *testing.T) {
	res, err := AblationQuantization(context.Background(), AblationConfig{Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	float := seriesByName(t, res, "float")
	q4 := seriesByName(t, res, "4-bit")
	q3 := seriesByName(t, res, "3-bit")
	var fSum, q4Sum, q3Sum float64
	for i := range float.Y {
		fSum += float.Y[i]
		q4Sum += q4.Y[i]
		q3Sum += q3.Y[i]
	}
	if q4Sum < fSum-0.5 {
		t.Errorf("4-bit LLRs should track float: %v vs %v", q4.Y, float.Y)
	}
	if q3Sum >= q4Sum {
		t.Errorf("3-bit LLRs should degrade below 4-bit: %v vs %v", q3.Y, q4.Y)
	}
}

func TestAblationThresholdShape(t *testing.T) {
	res, err := AblationThreshold(context.Background(), AblationConfig{Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	adaptive := seriesByName(t, res, "AdaptivePerSubcarrier")
	fixed := seriesByName(t, res, "FixedGlobal")
	// The fixed threshold only works near its 12 dB calibration point; the
	// adaptive detector must dominate at the high-SNR end.
	last := len(adaptive.Y) - 1
	if adaptive.Y[last] <= fixed.Y[last] {
		t.Errorf("adaptive (%v) should beat fixed (%v) at %v dB",
			adaptive.Y[last], fixed.Y[last], adaptive.X[last])
	}
	var aSum, fSum float64
	for i := range adaptive.Y {
		aSum += adaptive.Y[i]
		fSum += fixed.Y[i]
	}
	if aSum <= fSum {
		t.Errorf("adaptive should dominate overall: %v vs %v", adaptive.Y, fixed.Y)
	}
}
