package experiments

import (
	"strings"
	"testing"
)

func samplePlotResult() *Result {
	r := &Result{ID: "test", Title: "demo", XLabel: "x", YLabel: "y"}
	r.Add(Series{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}})
	r.Add(Series{Name: "down", X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}})
	return r
}

func TestWritePlotBasics(t *testing.T) {
	var b strings.Builder
	if err := samplePlotResult().WritePlot(&b, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"demo", "up", "down", "*", "o", "(x: x, y: y)"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// The rising series' glyph appears in the top row region at the right.
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Fatalf("plot has %d lines", len(lines))
	}
}

func TestWritePlotErrors(t *testing.T) {
	r := samplePlotResult()
	var b strings.Builder
	if err := r.WritePlot(&b, 5, 2); err == nil {
		t.Error("tiny plot area should error")
	}
	empty := &Result{ID: "e", Title: "empty"}
	if err := empty.WritePlot(&b, 40, 10); err == nil {
		t.Error("empty result should error")
	}
	bad := &Result{ID: "b", Title: "bad", Series: []Series{{Name: "m", X: []float64{1}, Y: nil}}}
	if err := bad.WritePlot(&b, 40, 10); err == nil {
		t.Error("mismatched series should error")
	}
}

func TestWritePlotDegenerateRange(t *testing.T) {
	r := &Result{ID: "flat", Title: "flat"}
	r.Add(Series{Name: "c", X: []float64{1, 1, 1}, Y: []float64{5, 5, 5}})
	var b strings.Builder
	if err := r.WritePlot(&b, 30, 6); err != nil {
		t.Fatalf("flat series should still plot: %v", err)
	}
}
