package experiments

import (
	"context"
	"math/rand"

	"cos/internal/channel"
	icos "cos/internal/cos"
	"cos/internal/phy"
	"cos/internal/pool"
	"cos/internal/scenario"
)

// Fig9Config parameterizes the free-control-message capacity measurement.
type Fig9Config struct {
	// PacketsPerTrial is the PRR sample size per candidate silence budget
	// (default 150: PRR >= 0.993 tolerates one loss).
	PacketsPerTrial int
	// TargetPRR is the required packet reception rate (default 0.993).
	TargetPRR float64
	// PointsPerMode is the number of measured-SNR points inside each
	// mode's operating band (default 3).
	PointsPerMode int
	// PSDULen is the packet size in bytes (default 1024).
	PSDULen int
	// Scale shrinks PacketsPerTrial (PRR resolution degrades gracefully).
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Workers bounds the point-task pool (0 = GOMAXPROCS).
	Workers int
	// Scenario is an optional scenario reference ("" = default world).
	Scenario string
}

func (c *Fig9Config) setDefaults() {
	if c.PacketsPerTrial == 0 {
		c.PacketsPerTrial = 150
	}
	if c.TargetPRR == 0 {
		c.TargetPRR = 0.993
	}
	if c.PointsPerMode == 0 {
		c.PointsPerMode = 3
	}
	if c.PSDULen == 0 {
		c.PSDULen = 1024
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// maxSilenceBudget caps the binary search; beyond this the erasure load is
// far past any code's correction capability for 1 KB packets.
const maxSilenceBudget = 160

// Fig9Capacity reproduces Fig. 9: Rm, the maximum number of silence symbols
// per second sustainable at packet reception rate >= TargetPRR, as a
// function of measured SNR, for the six modes the paper evaluates. Within a
// mode's band Rm rises with SNR (more spare code redundancy); at each rate
// switch the budget resets; lower code rates and lower-order modulations
// support higher Rm.
//
// Every (mode, SNR point) pair is an independent point-task — each runs its
// own calibration and PRR binary search on a private RNG — so the sweep
// parallelizes across the full mode grid.
func Fig9Capacity(ctx context.Context, cfg Fig9Config) (*Result, error) {
	cfg.setDefaults()
	packets := scaled(cfg.PacketsPerTrial, cfg.Scale)
	modes := phy.EvaluatedModes()

	type point struct {
		target float64
		rm     float64
	}
	pts := make([]point, len(modes)*cfg.PointsPerMode)
	err := pool.ForEach(ctx, cfg.Workers, len(pts), cfg.Seed, func(i int, rng *rand.Rand) error {
		// Per task: a channel model owns tap scratch, so point-tasks must
		// not share one (the same variant is the same deterministic draw).
		ch, err := trialChannel(cfg.Scenario, channel.PositionB, false, 3)
		if err != nil {
			return err
		}
		mi, p := i/cfg.PointsPerMode, i%cfg.PointsPerMode
		scr := &trialScratch{}
		mode := modes[mi]
		// The mode's measured-SNR band: its threshold up to the next
		// mode's (or +3 dB for the fastest).
		lo := mode.MinSNRdB + 0.3
		hi := mode.MinSNRdB + 3
		if mi+1 < len(modes) {
			hi = modes[mi+1].MinSNRdB - 0.3
		}
		target := lo
		if cfg.PointsPerMode > 1 {
			target = lo + (hi-lo)*float64(p)/float64(cfg.PointsPerMode-1)
		}
		actual, err := calibrateActualSNR(scr, ch, 0, mode, target, rng)
		if err != nil {
			return err
		}
		budget, err := maxBudgetAtPRR(ctx, scr, ch, actual, mode, cfg, packets, rng)
		if err != nil {
			return err
		}
		pts[i] = point{target: target, rm: icos.SilencesPerSecond(budget, mode, cfg.PSDULen)}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "fig9",
		Title:  "Maximum silence symbols per second (Rm) vs measured SNR",
		XLabel: "measured SNR (dB)",
		YLabel: "Rm (silence symbols/s)",
	}
	for mi, mode := range modes {
		s := Series{Name: modeLabel(mode)}
		for p := 0; p < cfg.PointsPerMode; p++ {
			pt := pts[mi*cfg.PointsPerMode+p]
			s.X = append(s.X, pt.target)
			s.Y = append(s.Y, pt.rm)
		}
		res.Add(s)
	}
	res.Note("PRR target %.3f over %d packets per trial; silence placement on weak detectable subcarriers; detected-mask erasure decoding", cfg.TargetPRR, packets)
	return res, nil
}

// maxBudgetAtPRR binary-searches the largest silence budget whose PRR meets
// the target.
func maxBudgetAtPRR(ctx context.Context, scr *trialScratch, ch scenario.ChannelModel, actualSNR float64, mode phy.Mode, cfg Fig9Config, packets int, rng *rand.Rand) (int, error) {
	nSym := mode.SymbolsForPSDU(cfg.PSDULen)
	prrOK := func(budget int) (bool, error) {
		if budget == 0 {
			return true, nil
		}
		ctrlSCs, err := selectCtrlSCsForBudget(scr, ch, 0, actualSNR, mode, nSym, budget, icos.DefaultBitsPerInterval, rng)
		if err != nil {
			return false, nil // no usable control subcarriers: budget unsustainable
		}
		allowed := int(float64(packets) * (1 - cfg.TargetPRR))
		failures := 0
		trial := cosTrialConfig{
			mode:     mode,
			psduLen:  cfg.PSDULen,
			silences: budget,
			k:        icos.DefaultBitsPerInterval,
			ctrlSCs:  ctrlSCs,
			detector: icos.Detector{Scheme: mode.Modulation},
		}
		for p := 0; p < packets; p++ {
			if err := ctx.Err(); err != nil {
				return false, err
			}
			r, err := runCoSTrial(scr, ch, 0, actualSNR, trial, rng)
			if err != nil {
				// Oversized messages for the capacity mean the budget does
				// not fit at all.
				return false, nil
			}
			if !r.dataOK {
				failures++
				if failures > allowed {
					return false, nil
				}
			}
		}
		return true, nil
	}

	lo, hi := 0, maxSilenceBudget // lo always feasible, hi presumed infeasible
	for lo < hi-1 {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		mid := (lo + hi) / 2
		ok, err := prrOK(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
