package experiments

import (
	"math/rand"
	"sort"

	"cos/internal/channel"
	"cos/internal/phy"
)

// Fig2Config parameterizes the SNR-gap measurement.
type Fig2Config struct {
	// MinSNR and MaxSNR bound the swept measured-SNR range in dB
	// (defaults 5 and 25, as in the paper's Fig. 2).
	MinSNR, MaxSNR float64
	// Step is the sweep step in dB (default 1).
	Step float64
	// Variants is the number of independent channel realizations averaged
	// per point (default 3).
	Variants int
	// Seed drives all randomness (default 1).
	Seed int64
}

func (c *Fig2Config) setDefaults() {
	if c.MaxSNR == 0 {
		c.MinSNR, c.MaxSNR = 5, 25
	}
	if c.Step == 0 {
		c.Step = 1
	}
	if c.Variants == 0 {
		c.Variants = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Fig2SNRGap reproduces Fig. 2: the gap between the minimum SNR required by
// the adaptively selected data rate and the actual channel SNR, as a
// function of the receiver's measured SNR. Two mechanisms open the gap:
// the stair-case rate table (discrete rates under a continuous SNR) and the
// NIC's frequency-selectivity-blind SNR estimate sitting below the true
// mean SNR.
func Fig2SNRGap(cfg Fig2Config) (*Result, error) {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	probeMode, err := phy.ModeByRate(6)
	if err != nil {
		return nil, err
	}

	type point struct{ measured, minReq, actual float64 }
	var pts []point
	for v := 0; v < cfg.Variants; v++ {
		ch, err := channel.PositionA.NewVariant(false, int64(v+1))
		if err != nil {
			return nil, err
		}
		for snr := cfg.MinSNR; snr <= cfg.MaxSNR+1e-9; snr += cfg.Step {
			pr, err := probe(ch, 0, probeMode, 256, snr, rng)
			if err != nil {
				return nil, err
			}
			measured, err := pr.fe.MeasuredSNRdB()
			if err != nil {
				return nil, err
			}
			if measured < cfg.MinSNR || measured > cfg.MaxSNR {
				continue
			}
			mode := phy.SelectMode(measured)
			pts = append(pts, point{measured: measured, minReq: mode.MinSNRdB, actual: pr.actualSNR})
		}
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].measured < pts[b].measured })

	res := &Result{
		ID:     "fig2",
		Title:  "SNR gap between minimum required SNR and actual channel SNR",
		XLabel: "measured SNR (dB)",
		YLabel: "SNR (dB)",
	}
	minReq := Series{Name: "MinRequiredSNR"}
	actual := Series{Name: "ActualSNR"}
	for _, p := range pts {
		minReq.X = append(minReq.X, p.measured)
		minReq.Y = append(minReq.Y, p.minReq)
		actual.X = append(actual.X, p.measured)
		actual.Y = append(actual.Y, p.actual)
	}
	res.Add(minReq)
	res.Add(actual)
	res.Note("actual SNR always sits above the stair-case minimum: the gap CoS harvests")
	return res, nil
}
