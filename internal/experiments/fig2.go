package experiments

import (
	"context"
	"math/rand"
	"sort"

	"cos/internal/channel"
	"cos/internal/phy"
	"cos/internal/pool"
)

// Fig2Config parameterizes the SNR-gap measurement.
type Fig2Config struct {
	// MinSNR and MaxSNR bound the swept measured-SNR range in dB
	// (defaults 5 and 25, as in the paper's Fig. 2).
	MinSNR, MaxSNR float64
	// Step is the sweep step in dB (default 1).
	Step float64
	// Variants is the number of independent channel realizations averaged
	// per point (default 3).
	Variants int
	// Seed drives all randomness (default 1).
	Seed int64
	// Workers bounds the point-task pool (0 = GOMAXPROCS).
	Workers int
	// Scenario is an optional scenario reference ("" = default world).
	Scenario string
}

func (c *Fig2Config) setDefaults() {
	if c.MaxSNR == 0 {
		c.MinSNR, c.MaxSNR = 5, 25
	}
	if c.Step == 0 {
		c.Step = 1
	}
	if c.Variants == 0 {
		c.Variants = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Fig2SNRGap reproduces Fig. 2: the gap between the minimum SNR required by
// the adaptively selected data rate and the actual channel SNR, as a
// function of the receiver's measured SNR. Two mechanisms open the gap:
// the stair-case rate table (discrete rates under a continuous SNR) and the
// NIC's frequency-selectivity-blind SNR estimate sitting below the true
// mean SNR.
//
// Every (variant, SNR) probe is an independent point-task; the sweep grid
// runs on the worker pool and reassembles in deterministic order.
func Fig2SNRGap(ctx context.Context, cfg Fig2Config) (*Result, error) {
	cfg.setDefaults()
	probeMode, err := phy.ModeByRate(6)
	if err != nil {
		return nil, err
	}
	steps := 0
	for snr := cfg.MinSNR; snr <= cfg.MaxSNR+1e-9; snr += cfg.Step {
		steps++
	}

	type point struct {
		ok                       bool
		measured, minReq, actual float64
	}
	pts := make([]point, cfg.Variants*steps)
	err = pool.ForEach(ctx, cfg.Workers, len(pts), cfg.Seed, func(i int, rng *rand.Rand) error {
		scr := &trialScratch{}
		v := i / steps
		snr := cfg.MinSNR + float64(i%steps)*cfg.Step
		ch, err := trialChannel(cfg.Scenario, channel.PositionA, false, int64(v+1))
		if err != nil {
			return err
		}
		pr, err := probe(scr, ch, 0, probeMode, 256, snr, rng)
		if err != nil {
			return err
		}
		measured, err := pr.fe.MeasuredSNRdB()
		if err != nil {
			return err
		}
		if measured < cfg.MinSNR || measured > cfg.MaxSNR {
			return nil // out-of-range estimate: leave the slot empty
		}
		mode := phy.SelectMode(measured)
		pts[i] = point{ok: true, measured: measured, minReq: mode.MinSNRdB, actual: pr.actualSNR}
		return nil
	})
	if err != nil {
		return nil, err
	}
	kept := pts[:0]
	for _, p := range pts {
		if p.ok {
			kept = append(kept, p)
		}
	}
	sort.SliceStable(kept, func(a, b int) bool { return kept[a].measured < kept[b].measured })

	res := &Result{
		ID:     "fig2",
		Title:  "SNR gap between minimum required SNR and actual channel SNR",
		XLabel: "measured SNR (dB)",
		YLabel: "SNR (dB)",
	}
	minReq := Series{Name: "MinRequiredSNR"}
	actual := Series{Name: "ActualSNR"}
	for _, p := range kept {
		minReq.X = append(minReq.X, p.measured)
		minReq.Y = append(minReq.Y, p.minReq)
		actual.X = append(actual.X, p.measured)
		actual.Y = append(actual.Y, p.actual)
	}
	res.Add(minReq)
	res.Add(actual)
	res.Note("actual SNR always sits above the stair-case minimum: the gap CoS harvests")
	return res, nil
}
