package experiments

import (
	"context"
	"encoding/json"
	"math/rand"
	"sort"

	"cos/internal/channel"
	"cos/internal/phy"
)

// Fig2Config parameterizes the SNR-gap measurement.
type Fig2Config struct {
	// MinSNR and MaxSNR bound the swept measured-SNR range in dB
	// (defaults 5 and 25, as in the paper's Fig. 2).
	MinSNR, MaxSNR float64
	// Step is the sweep step in dB (default 1).
	Step float64
	// Variants is the number of independent channel realizations averaged
	// per point (default 3).
	Variants int
	// Seed drives all randomness (default 1).
	Seed int64
	// Workers bounds the point-task pool (0 = GOMAXPROCS).
	Workers int
	// Scenario is an optional scenario reference ("" = default world).
	Scenario string
}

func (c *Fig2Config) setDefaults() {
	if c.MaxSNR == 0 {
		c.MinSNR, c.MaxSNR = 5, 25
	}
	if c.Step == 0 {
		c.Step = 1
	}
	if c.Variants == 0 {
		c.Variants = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// steps is the number of SNR points in the sweep grid.
func (c *Fig2Config) steps() int {
	n := 0
	for snr := c.MinSNR; snr <= c.MaxSNR+1e-9; snr += c.Step {
		n++
	}
	return n
}

// fig2ConfigFrom maps registry RunOptions onto a Fig2Config exactly as the
// registry entry always has; serve's figure_task executor calls this too,
// so a task decomposed locally and one decomposed on a backend agree.
func fig2ConfigFrom(o RunOptions) Fig2Config {
	cfg := Fig2Config{Seed: o.Seed, Workers: o.Workers, Scenario: o.Scenario}
	if o.Scale < 1 {
		cfg.Variants = 2
		cfg.Step = 2
	}
	cfg.setDefaults()
	return cfg
}

// fig2Record is one (variant, SNR) probe's serialized outcome. ok=false
// marks an out-of-range SNR estimate whose slot stays empty.
type fig2Record struct {
	OK       bool    `json:"ok"`
	Measured float64 `json:"measured"`
	MinReq   float64 `json:"min_req"`
	Actual   float64 `json:"actual"`
}

// fig2Tasks is Fig. 2 decomposed into one point-task per (variant, SNR)
// grid cell. cfg must have defaults applied.
type fig2Tasks struct {
	cfg Fig2Config
}

func (f fig2Tasks) NumTasks() int { return f.cfg.Variants * f.cfg.steps() }

func (f fig2Tasks) RunTask(ctx context.Context, i int, rng *rand.Rand) (json.RawMessage, error) {
	probeMode, err := phy.ModeByRate(6)
	if err != nil {
		return nil, err
	}
	scr := &trialScratch{}
	steps := f.cfg.steps()
	v := i / steps
	snr := f.cfg.MinSNR + float64(i%steps)*f.cfg.Step
	ch, err := trialChannel(f.cfg.Scenario, channel.PositionA, false, int64(v+1))
	if err != nil {
		return nil, err
	}
	pr, err := probe(scr, ch, 0, probeMode, 256, snr, rng)
	if err != nil {
		return nil, err
	}
	measured, err := pr.fe.MeasuredSNRdB()
	if err != nil {
		return nil, err
	}
	rec := fig2Record{}
	if measured >= f.cfg.MinSNR && measured <= f.cfg.MaxSNR {
		mode := phy.SelectMode(measured)
		rec = fig2Record{OK: true, Measured: measured, MinReq: mode.MinSNRdB, Actual: pr.actualSNR}
	}
	return json.Marshal(rec)
}

func (f fig2Tasks) Assemble(recs []json.RawMessage) (*Result, error) {
	kept := make([]fig2Record, 0, len(recs))
	for _, raw := range recs {
		var rec fig2Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, err
		}
		if rec.OK {
			kept = append(kept, rec)
		}
	}
	sort.SliceStable(kept, func(a, b int) bool { return kept[a].Measured < kept[b].Measured })

	res := &Result{
		ID:     "fig2",
		Title:  "SNR gap between minimum required SNR and actual channel SNR",
		XLabel: "measured SNR (dB)",
		YLabel: "SNR (dB)",
	}
	minReq := Series{Name: "MinRequiredSNR"}
	actual := Series{Name: "ActualSNR"}
	for _, p := range kept {
		minReq.X = append(minReq.X, p.Measured)
		minReq.Y = append(minReq.Y, p.MinReq)
		actual.X = append(actual.X, p.Measured)
		actual.Y = append(actual.Y, p.Actual)
	}
	res.Add(minReq)
	res.Add(actual)
	res.Note("actual SNR always sits above the stair-case minimum: the gap CoS harvests")
	return res, nil
}

// Fig2SNRGap reproduces Fig. 2: the gap between the minimum SNR required by
// the adaptively selected data rate and the actual channel SNR, as a
// function of the receiver's measured SNR. Two mechanisms open the gap:
// the stair-case rate table (discrete rates under a continuous SNR) and the
// NIC's frequency-selectivity-blind SNR estimate sitting below the true
// mean SNR.
//
// Every (variant, SNR) probe is an independent point-task; the sweep grid
// runs on the worker pool and reassembles in deterministic order.
func Fig2SNRGap(ctx context.Context, cfg Fig2Config) (*Result, error) {
	cfg.setDefaults()
	return runTasks(ctx, "fig2", RunOptions{Workers: cfg.Workers, Seed: cfg.Seed}, fig2Tasks{cfg: cfg})
}
