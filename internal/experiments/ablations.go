package experiments

import (
	"context"
	"math/rand"
	"sort"
	"strconv"

	"cos/internal/channel"
	icos "cos/internal/cos"
	"cos/internal/dsp"
	"cos/internal/ofdm"
	"cos/internal/phy"
	"cos/internal/pool"
)

// AblationConfig parameterizes the design-choice ablations.
type AblationConfig struct {
	// Packets per measured point (default 120).
	Packets int
	// Scale shrinks Packets.
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Workers bounds the point-task pool (0 = GOMAXPROCS).
	Workers int
	// Scenario is an optional scenario reference ("" = default world).
	Scenario string
}

func (c *AblationConfig) setDefaults() {
	if c.Packets == 0 {
		c.Packets = 120
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// AblationEVD compares erasure Viterbi decoding (silences marked via the
// detected mask) against erasure-ignorant decoding (silences demapped as if
// they were data) as the silence load grows: PRR vs silences per packet.
// This isolates the value of Sec. III-E. Each budget is one pool task.
func AblationEVD(ctx context.Context, cfg AblationConfig) (*Result, error) {
	cfg.setDefaults()
	mode, err := phy.ModeByRate(24)
	if err != nil {
		return nil, err
	}
	const snr = 15.0
	packets := scaled(cfg.Packets, cfg.Scale)
	budgets := []int{0, 4, 8, 16, 24, 32, 48, 64}
	nSym := mode.SymbolsForPSDU(1024)

	type point struct{ evd, ign float64 }
	pts := make([]point, len(budgets))
	err = pool.ForEach(ctx, cfg.Workers, len(budgets), cfg.Seed, func(i int, rng *rand.Rand) error {
		// Per task: a channel model owns tap scratch, so point-tasks must
		// not share one (the same variant is the same deterministic draw).
		ch, err := trialChannel(cfg.Scenario, channel.PositionB, false, 11)
		if err != nil {
			return err
		}
		b := budgets[i]
		scr := &trialScratch{}
		ctrlSCs := fig10CtrlSCs
		if b > 0 {
			if sel, err := selectCtrlSCsForBudget(scr, ch, 0, snr, mode, nSym, b, icos.DefaultBitsPerInterval, rng); err == nil {
				ctrlSCs = sel
			}
		}
		okEVD, okIgn := 0, 0
		for p := 0; p < packets; p++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			trial := cosTrialConfig{
				mode: mode, psduLen: 1024, silences: b,
				k: icos.DefaultBitsPerInterval, ctrlSCs: ctrlSCs,
				detector: icos.Detector{Scheme: mode.Modulation},
			}
			r, err := runCoSTrial(scr, ch, 0, snr, trial, rng)
			if err != nil {
				continue
			}
			if r.dataOK {
				okEVD++
			}
			// Ignorant arm: decode without any erasure mask.
			trial.ignoreErasures = true
			r, err = runCoSTrial(scr, ch, 0, snr, trial, rng)
			if err != nil {
				continue
			}
			if r.dataOK {
				okIgn++
			}
		}
		pts[i] = point{evd: float64(okEVD) / float64(packets), ign: float64(okIgn) / float64(packets)}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "ablation-evd",
		Title:  "Erasure-aware vs erasure-ignorant decoding (24 Mb/s, 15 dB)",
		XLabel: "silence symbols per packet",
		YLabel: "packet reception rate",
	}
	evd := Series{Name: "ErasureViterbi"}
	ignorant := Series{Name: "ErasureIgnorant"}
	for i, b := range budgets {
		evd.X = append(evd.X, float64(b))
		evd.Y = append(evd.Y, pts[i].evd)
		ignorant.X = append(ignorant.X, float64(b))
		ignorant.Y = append(ignorant.Y, pts[i].ign)
	}
	res.Add(evd)
	res.Add(ignorant)
	return res, nil
}

// AblationPlacement compares silence placement strategies at a fixed
// silence load: on the weakest subcarriers (CoS), on random subcarriers,
// and on the strongest subcarriers. Decoding uses the genie mask so the
// measurement isolates how many *new* symbol errors each placement adds,
// independent of detection quality — the claim of Sec. II-D.
// Each (placement, budget) cell is one pool task.
func AblationPlacement(ctx context.Context, cfg AblationConfig) (*Result, error) {
	cfg.setDefaults()
	mode, err := phy.ModeByRate(36)
	if err != nil {
		return nil, err
	}
	// Serial ranking channel; pool tasks build their own (a channel model
	// owns tap scratch, and the same variant is the same deterministic draw).
	ch, err := trialChannel(cfg.Scenario, channel.PositionA, false, 13)
	if err != nil {
		return nil, err
	}
	const snr = 17.2 // just above the 16 dB threshold: the budget binds
	packets := scaled(cfg.Packets, cfg.Scale)
	budgets := []int{16, 48, 96, 144}
	nSym := mode.SymbolsForPSDU(1024)

	// Rank subcarriers by gain once (genie knowledge, fixed channel).
	h, err := freqResponse(ch, 0)
	if err != nil {
		return nil, err
	}
	type sub struct {
		idx  int
		gain float64
	}
	ranked := make([]sub, ofdm.NumData)
	for d := 0; d < ofdm.NumData; d++ {
		k, err := ofdm.DataIndex(d)
		if err != nil {
			return nil, err
		}
		bin, err := ofdm.Bin(k)
		if err != nil {
			return nil, err
		}
		ranked[d] = sub{idx: d, gain: dsp.MagSq(h[bin])}
	}
	sort.Slice(ranked, func(a, b int) bool { return ranked[a].gain < ranked[b].gain })
	pick := func(subs []sub) []int {
		out := make([]int, 0, len(subs))
		for _, s := range subs {
			out = append(out, s.idx)
		}
		sort.Ints(out)
		return out
	}
	weak := pick(ranked[:8])
	strong := pick(ranked[len(ranked)-8:])

	placements := []struct {
		name string
		scs  func(rng *rand.Rand) []int
	}{
		{"WeakSubcarriers", func(*rand.Rand) []int { return weak }},
		{"RandomSubcarriers", func(rng *rand.Rand) []int {
			perm := rng.Perm(ofdm.NumData)[:8]
			sort.Ints(perm)
			return perm
		}},
		{"StrongSubcarriers", func(*rand.Rand) []int { return strong }},
	}

	prrs := make([]float64, len(placements)*len(budgets))
	err = pool.ForEach(ctx, cfg.Workers, len(prrs), cfg.Seed, func(i int, rng *rand.Rand) error {
		ch, err := trialChannel(cfg.Scenario, channel.PositionA, false, 13)
		if err != nil {
			return err
		}
		pl := placements[i/len(budgets)]
		b := budgets[i%len(budgets)]
		scr := &trialScratch{}
		ok := 0
		for p := 0; p < packets; p++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			scs := pl.scs(rng)
			positions, err := randomPlacement(rng, b, nSym, scs)
			if err != nil {
				continue
			}
			trial := cosTrialConfig{
				mode: mode, psduLen: 1024,
				ctrlSCs: scs, placement: positions, genieMask: true,
				detector: icos.Detector{Scheme: mode.Modulation},
			}
			r, err := runCoSTrial(scr, ch, 0, snr, trial, rng)
			if err != nil {
				continue
			}
			if r.dataOK {
				ok++
			}
		}
		prrs[i] = float64(ok) / float64(packets)
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "ablation-placement",
		Title:  "Silence placement strategy vs PRR (36 Mb/s, 17.2 dB, genie mask)",
		XLabel: "silence symbols per packet",
		YLabel: "packet reception rate",
	}
	for pi, pl := range placements {
		s := Series{Name: pl.name}
		for bi, b := range budgets {
			s.X = append(s.X, float64(b))
			s.Y = append(s.Y, prrs[pi*len(budgets)+bi])
		}
		res.Add(s)
	}
	res.Note("genie erasure mask isolates placement quality from detection quality")
	return res, nil
}

// randomPlacement scatters n silences uniformly over the (symbol, ctrlSC)
// traversal of a packet.
func randomPlacement(rng *rand.Rand, n, nSym int, ctrlSCs []int) ([]icos.Pos, error) {
	total := nSym * len(ctrlSCs)
	if n > total {
		n = total
	}
	idx := rng.Perm(total)[:n]
	sort.Ints(idx)
	out := make([]icos.Pos, 0, n)
	for _, i := range idx {
		out = append(out, icos.Pos{Sym: i / len(ctrlSCs), SC: ctrlSCs[i%len(ctrlSCs)]})
	}
	return out, nil
}

// AblationThreshold compares the adaptive per-subcarrier detector against a
// fixed global threshold on control-message delivery across SNRs — the
// value of the pilot-aided noise tracking of Sec. III-C.
//
// The fixed threshold is calibrated serially on the index-0 task RNG (it is
// shared state for every point); the SNR points are pool tasks 1..len(snrs).
func AblationThreshold(ctx context.Context, cfg AblationConfig) (*Result, error) {
	cfg.setDefaults()
	mode, err := phy.ModeByRate(12)
	if err != nil {
		return nil, err
	}
	// Serial prelude channel; pool tasks build their own (a channel model
	// owns tap scratch, and the same variant is the same deterministic draw).
	ch, err := trialChannel(cfg.Scenario, channel.PositionB, false, 4)
	if err != nil {
		return nil, err
	}
	packets := scaled(cfg.Packets, cfg.Scale)
	snrs := []float64{6, 9, 12, 15, 18, 21}

	// The fixed threshold is calibrated once at the middle SNR, then used
	// everywhere — what a non-adaptive implementation would do.
	preludeRNG := pool.TaskRNG(cfg.Seed, 0)
	scr := &trialScratch{} // serial prelude scratch; pool tasks build their own
	midActual, err := calibrateActualSNR(scr, ch, 0, mode, 12, preludeRNG)
	if err != nil {
		return nil, err
	}
	pr, err := probe(scr, ch, 0, mode, 256, midActual, preludeRNG)
	if err != nil {
		return nil, err
	}
	fixedTh := 6 * pr.fe.NoiseVar

	nSym := mode.SymbolsForPSDU(1024)
	type point struct{ adaptive, fixed float64 }
	pts := make([]point, len(snrs))
	err = pool.ForEach(ctx, cfg.Workers, len(snrs)+1, cfg.Seed, func(i int, rng *rand.Rand) error {
		if i == 0 {
			return nil // index 0 is the serial calibration prelude above
		}
		si := i - 1
		ch, err := trialChannel(cfg.Scenario, channel.PositionB, false, 4)
		if err != nil {
			return err
		}
		scr := &trialScratch{}
		actual, err := calibrateActualSNR(scr, ch, 0, mode, snrs[si], rng)
		if err != nil {
			return err
		}
		// Both arms use the same per-SNR subcarrier selection so the
		// comparison isolates the detector's threshold policy.
		ctrlSCs, err := selectCtrlSCsForBudget(scr, ch, 0, actual, mode, nSym, 12, icos.DefaultBitsPerInterval, rng)
		if err != nil {
			ctrlSCs = fig10CtrlSCs
		}
		okA, okF := 0, 0
		for p := 0; p < packets; p++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			base := cosTrialConfig{
				mode: mode, psduLen: 1024, silences: 12,
				k: icos.DefaultBitsPerInterval, ctrlSCs: ctrlSCs,
			}
			base.detector = icos.Detector{Scheme: mode.Modulation}
			if r, err := runCoSTrial(scr, ch, 0, actual, base, rng); err == nil && r.ctrlOK {
				okA++
			}
			base.detector = icos.Detector{FixedThreshold: fixedTh}
			if r, err := runCoSTrial(scr, ch, 0, actual, base, rng); err == nil && r.ctrlOK {
				okF++
			}
		}
		pts[si] = point{adaptive: float64(okA) / float64(packets), fixed: float64(okF) / float64(packets)}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "ablation-threshold",
		Title:  "Adaptive vs fixed detection threshold: control delivery vs SNR",
		XLabel: "measured SNR (dB)",
		YLabel: "control message delivery rate",
	}
	adaptive := Series{Name: "AdaptivePerSubcarrier"}
	fixed := Series{Name: "FixedGlobal"}
	for i, snr := range snrs {
		adaptive.X = append(adaptive.X, snr)
		adaptive.Y = append(adaptive.Y, pts[i].adaptive)
		fixed.X = append(fixed.X, snr)
		fixed.Y = append(fixed.Y, pts[i].fixed)
	}
	res.Add(adaptive)
	res.Add(fixed)
	return res, nil
}

// ControlAccuracy measures the paper's headline claim — control messages
// delivered with close to 100% accuracy across the practical SNR region —
// using the full closed-loop pipeline. One pool task per SNR point.
func ControlAccuracy(ctx context.Context, cfg AblationConfig) (*Result, error) {
	cfg.setDefaults()
	mode, err := phy.ModeByRate(12)
	if err != nil {
		return nil, err
	}
	packets := scaled(cfg.Packets, cfg.Scale)
	snrs := []float64{8, 10, 12, 14, 16, 18, 20, 22}
	nSym := mode.SymbolsForPSDU(1024)

	type point struct{ ctrl, data float64 }
	pts := make([]point, len(snrs))
	err = pool.ForEach(ctx, cfg.Workers, len(snrs), cfg.Seed, func(i int, rng *rand.Rand) error {
		// Per task: a channel model owns tap scratch, so point-tasks must
		// not share one (the same variant is the same deterministic draw).
		ch, err := trialChannel(cfg.Scenario, channel.PositionB, false, 19)
		if err != nil {
			return err
		}
		scr := &trialScratch{}
		actual, err := calibrateActualSNR(scr, ch, 0, mode, snrs[i], rng)
		if err != nil {
			return err
		}
		ctrlSCs, err := selectCtrlSCsForBudget(scr, ch, 0, actual, mode, nSym, 12, icos.DefaultBitsPerInterval, rng)
		if err != nil {
			ctrlSCs = fig10CtrlSCs
		}
		okC, okD := 0, 0
		for p := 0; p < packets; p++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			r, err := runCoSTrial(scr, ch, 0, actual, cosTrialConfig{
				mode: mode, psduLen: 1024, silences: 12,
				k: icos.DefaultBitsPerInterval, ctrlSCs: ctrlSCs,
				detector: icos.Detector{Scheme: mode.Modulation},
			}, rng)
			if err != nil {
				continue
			}
			if r.ctrlOK {
				okC++
			}
			if r.dataOK {
				okD++
			}
		}
		pts[i] = point{ctrl: float64(okC) / float64(packets), data: float64(okD) / float64(packets)}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "accuracy",
		Title:  "Control message delivery accuracy vs measured SNR",
		XLabel: "measured SNR (dB)",
		YLabel: "delivery rate",
	}
	s := Series{Name: "ControlDelivery"}
	d := Series{Name: "DataPRR"}
	for i, snr := range snrs {
		s.X = append(s.X, snr)
		s.Y = append(s.Y, pts[i].ctrl)
		d.X = append(d.X, snr)
		d.Y = append(d.Y, pts[i].data)
	}
	res.Add(s)
	res.Add(d)
	return res, nil
}

// AblationQuantization measures the PRR cost of fixed-point LLRs in the
// CoS pipeline: packets with a realistic silence load decoded with float,
// 5-bit, 4-bit and 3-bit decoder inputs. One pool task per SNR point, the
// widths swept inside the task (they share the point's calibration).
func AblationQuantization(ctx context.Context, cfg AblationConfig) (*Result, error) {
	cfg.setDefaults()
	mode, err := phy.ModeByRate(24)
	if err != nil {
		return nil, err
	}
	packets := scaled(cfg.Packets, cfg.Scale)
	snrs := []float64{13, 14, 15, 16}
	widths := []int{0, 5, 4, 3} // 0 = float

	// The genie mask makes detection (and thus subcarrier selection)
	// irrelevant here, so the paper's fixed mid-band control set keeps
	// every cell comparable.
	ctrlSCs := fig10CtrlSCs

	prrs := make([][]float64, len(snrs))
	err = pool.ForEach(ctx, cfg.Workers, len(snrs), cfg.Seed, func(i int, rng *rand.Rand) error {
		// Per task: a channel model owns tap scratch, so point-tasks must
		// not share one (the same variant is the same deterministic draw).
		ch, err := trialChannel(cfg.Scenario, channel.PositionB, false, 11)
		if err != nil {
			return err
		}
		scr := &trialScratch{}
		actual, err := calibrateActualSNR(scr, ch, 0, mode, snrs[i], rng)
		if err != nil {
			return err
		}
		row := make([]float64, len(widths))
		for wi, w := range widths {
			ok := 0
			for p := 0; p < packets; p++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				r, err := runCoSTrial(scr, ch, 0, actual, cosTrialConfig{
					mode: mode, psduLen: 1024, silences: 12,
					k: icos.DefaultBitsPerInterval, ctrlSCs: ctrlSCs,
					detector:  icos.Detector{Scheme: mode.Modulation},
					genieMask: true, // isolate LLR width from detection noise
					llrBits:   w,
				}, rng)
				if err != nil {
					continue
				}
				if r.dataOK {
					ok++
				}
			}
			row[wi] = float64(ok) / float64(packets)
		}
		prrs[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "ablation-quantization",
		Title:  "Fixed-point LLR width vs PRR with CoS active (24 Mb/s)",
		XLabel: "measured SNR (dB)",
		YLabel: "packet reception rate",
	}
	for wi, w := range widths {
		name := "float"
		if w != 0 {
			name = strconv.Itoa(w) + "-bit"
		}
		s := Series{Name: name}
		for si, snr := range snrs {
			s.X = append(s.X, snr)
			s.Y = append(s.Y, prrs[si][wi])
		}
		res.Add(s)
	}
	res.Note("erasures survive quantization exactly (zero metric in any width); genie mask isolates LLR width from detection noise")
	return res, nil
}
