package experiments

import (
	"context"
	"math/rand"

	"cos/internal/channel"
	"cos/internal/ofdm"
	"cos/internal/phy"
	"cos/internal/pool"
)

// Fig6Config parameterizes the symbol-error pattern measurement.
type Fig6Config struct {
	// SNR is the true channel SNR in dB (default 19 — low enough for the
	// 16QAM mode to produce a visible error pattern on weak subcarriers
	// while strong subcarriers stay nearly error-free).
	SNR float64
	// Packets accumulated (default 300).
	Packets int
	// Positions is the number of in-packet symbol positions reported in
	// part (a) (default 1000, as in the paper).
	Positions int
	// Scale shrinks Packets.
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Workers bounds the point-task pool (0 = GOMAXPROCS).
	Workers int
	// Scenario is an optional scenario reference ("" = default world).
	Scenario string
}

func (c *Fig6Config) setDefaults() {
	if c.SNR == 0 {
		c.SNR = 19
	}
	if c.Packets == 0 {
		c.Packets = 300
	}
	if c.Positions == 0 {
		c.Positions = 1000
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// fig6Packet is one packet's error pattern, kept per task so the parallel
// merge is an order-independent integer accumulation done serially after
// the pool drains.
type fig6Packet struct {
	errorPositions []int
	scErrors       [ofdm.NumData]int
	scCounts       [ofdm.NumData]int
}

// Fig6ErrorPattern reproduces Fig. 6 at Position A (mobile): (a) the
// frequency of symbol errors at each in-packet symbol position — revealing
// the ~48-position periodicity induced by weak subcarriers — and (b) the
// symbol error rate of each data subcarrier.
//
// Each packet is an independent point-task: the mobile channel is a pure
// function of the transmit time t = p * 2 ms, so packet p needs no state
// from packet p-1.
func Fig6ErrorPattern(ctx context.Context, cfg Fig6Config) (*Result, error) {
	cfg.setDefaults()
	mode, err := phy.ModeByRate(24)
	if err != nil {
		return nil, err
	}
	packets := scaled(cfg.Packets, cfg.Scale)

	perPacket := make([]fig6Packet, packets)
	err = pool.ForEach(ctx, cfg.Workers, packets, cfg.Seed, func(p int, rng *rand.Rand) error {
		// Per task: a channel model owns tap scratch, so point-tasks must
		// not share one (variant 0 of the same geometry is the same draw).
		ch, err := trialChannel(cfg.Scenario, channel.PositionA, true, 0)
		if err != nil {
			return err
		}
		t := float64(p) * 2e-3 // back-to-back traffic at 2 ms spacing
		scr := &trialScratch{}
		pr, err := probe(scr, ch, t, mode, 1024, cfg.SNR, rng)
		if err != nil {
			return err
		}
		diag, err := phy.Diagnose(pr.tx, pr.fe, nil, nil)
		if err != nil {
			return err
		}
		perPacket[p].errorPositions = diag.ErrorPositions()
		for d := 0; d < ofdm.NumData; d++ {
			perPacket[p].scErrors[d] = diag.SubcarrierErrorCounts[d]
			perPacket[p].scCounts[d] = diag.SymbolsPerSubcarrier[d]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	posErrors := make([]int, cfg.Positions)
	var scErrors, scCounts [ofdm.NumData]int
	for _, pkt := range perPacket {
		for _, pos := range pkt.errorPositions {
			if pos < cfg.Positions {
				posErrors[pos]++
			}
		}
		for d := 0; d < ofdm.NumData; d++ {
			scErrors[d] += pkt.scErrors[d]
			scCounts[d] += pkt.scCounts[d]
		}
	}

	res := &Result{
		ID:     "fig6",
		Title:  "Symbol error pattern within a packet (Position A, mobile)",
		XLabel: "symbol position / subcarrier index",
		YLabel: "error frequency / SER",
	}
	a := Series{Name: "ErrorFreqByPosition"}
	for i := 0; i < cfg.Positions; i++ {
		a.X = append(a.X, float64(i+1))
		a.Y = append(a.Y, float64(posErrors[i])/float64(packets))
	}
	res.Add(a)
	b := Series{Name: "SERBySubcarrier"}
	for d := 0; d < ofdm.NumData; d++ {
		ser := 0.0
		if scCounts[d] > 0 {
			ser = float64(scErrors[d]) / float64(scCounts[d])
		}
		b.X = append(b.X, float64(d+1))
		b.Y = append(b.Y, ser)
	}
	res.Add(b)
	res.Note("position = ofdmSymbol*48 + subcarrier; the periodicity of part (a) equals the 48 data subcarriers")
	return res, nil
}
