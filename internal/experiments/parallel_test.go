package experiments

import (
	"context"
	"errors"
	"testing"
	"time"
)

// assertIdenticalAcrossWorkers runs one experiment at several worker counts
// and requires byte-identical CSV output — the engine's core determinism
// contract (per-task RNGs derived as seed^index, results reassembled in
// index order).
func assertIdenticalAcrossWorkers(t *testing.T, id string, opts RunOptions) {
	t.Helper()
	ctx := context.Background()
	opts.Workers = 1
	serial, err := Run(ctx, id, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := serial.String()
	for _, w := range []int{2, 4, 7} {
		opts.Workers = w
		par, err := Run(ctx, id, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got := par.String(); got != want {
			t.Errorf("workers=%d output differs from serial\nserial:\n%.400s\nparallel:\n%.400s", w, want, got)
		}
	}
}

func TestParallelMatchesSerialFig3(t *testing.T) {
	assertIdenticalAcrossWorkers(t, "fig3", RunOptions{Scale: 0.1})
}

func TestParallelMatchesSerialFig10c(t *testing.T) {
	assertIdenticalAcrossWorkers(t, "fig10c", RunOptions{Scale: tinyScale})
}

func TestParallelMatchesSerialFig2(t *testing.T) {
	assertIdenticalAcrossWorkers(t, "fig2", RunOptions{Scale: 0.5})
}

// Cancelling mid-sweep must surface ctx.Err() promptly from every runner,
// serial or parallel.
func TestRunnerCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, id := range []string{"fig3", "fig10c", "fig9", "ablation-threshold"} {
			ctx, cancel := context.WithCancel(context.Background())
			cancel() // cancelled before the first task: nothing should run
			done := make(chan error, 1)
			go func() {
				_, err := Run(ctx, id, RunOptions{Scale: 1, Workers: workers})
				done <- err
			}()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Errorf("%s workers=%d: err = %v, want context.Canceled", id, workers, err)
				}
			case <-time.After(30 * time.Second):
				t.Fatalf("%s workers=%d: cancellation did not return promptly", id, workers)
			}
		}
	}
}

// Cancelling while tasks are in flight (not before) must also stop the run
// early; the per-packet ctx checks inside the task bodies make this prompt
// even at publication scale.
func TestRunnerCancellationMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, "fig10c", RunOptions{Scale: 1, Workers: 4})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("mid-flight cancellation did not return promptly")
	}
}
