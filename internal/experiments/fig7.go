package experiments

import (
	"context"
	"math/rand"
	"strconv"

	"cos/internal/channel"
	"cos/internal/dsp"
	"cos/internal/modulation"
	"cos/internal/ofdm"
	"cos/internal/phy"
	"cos/internal/pool"
	"cos/internal/scenario"
)

// Fig7Config parameterizes the temporal-selectivity measurement.
type Fig7Config struct {
	// SNR is the true channel SNR in dB (default 22; the paper's lab links
	// were short-range and strong).
	SNR float64
	// TausMs are the evaluated time gaps in milliseconds (default
	// 10,20,30,40 as in the paper).
	TausMs []float64
	// Draws is the number of (t, t+tau) sample pairs per tau for the CDF
	// (default 120).
	Draws int
	// Avg is the number of packets averaged per D(t) snapshot to suppress
	// estimator noise (default 4).
	Avg int
	// Scale shrinks Draws.
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Workers bounds the point-task pool (0 = GOMAXPROCS).
	Workers int
	// Scenario is an optional scenario reference ("" = default world).
	Scenario string
}

func (c *Fig7Config) setDefaults() {
	if c.SNR == 0 {
		c.SNR = 22
	}
	if len(c.TausMs) == 0 {
		c.TausMs = []float64{10, 20, 30, 40}
	}
	if c.Draws == 0 {
		c.Draws = 120
	}
	if c.Avg == 0 {
		c.Avg = 4
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// errorVectorSnapshot measures the per-subcarrier mean error-vector
// magnitudes D(t) and EVM(t), averaged over avg known packets at time t to
// suppress estimator noise (the channel is static within a snapshot).
func errorVectorSnapshot(ctx context.Context, ch scenario.ChannelModel, t float64, mode phy.Mode, snr float64, avg int, rng *rand.Rand) (d, evm []float64, err error) {
	if avg < 1 {
		avg = 1
	}
	scr := &trialScratch{}
	dAcc := make([]float64, ofdm.NumData)
	evmAcc := make([]float64, ofdm.NumData)
	for i := 0; i < avg; i++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		pr, err := probe(scr, ch, t, mode, 1024, snr, rng)
		if err != nil {
			return nil, nil, err
		}
		diag, err := phy.Diagnose(pr.tx, pr.fe, nil, nil)
		if err != nil {
			return nil, nil, err
		}
		for k := 0; k < ofdm.NumData; k++ {
			dAcc[k] += diag.ErrorVectors[k]
			evmAcc[k] += diag.EVM[k]
		}
	}
	for k := 0; k < ofdm.NumData; k++ {
		dAcc[k] /= float64(avg)
		evmAcc[k] /= float64(avg)
	}
	return dAcc, evmAcc, nil
}

// Fig7Temporal reproduces Fig. 7 in the indoor mobile scenario:
// (a) per-subcarrier EVM snapshots separated by time gap tau, showing the
// channel's frequency signature persists across tens of milliseconds, and
// (b) the CDF of the normalized EVM change (Eq. (2)) for each tau.
//
// The task list has two kinds of points: snapshot tasks 0..len(taus) for
// part (a) — task 0 is the tau=0 baseline — and one task per (tau, draw)
// pair for part (b), each measuring an independent D(t), D(t+tau) pair.
func Fig7Temporal(ctx context.Context, cfg Fig7Config) (*Result, error) {
	cfg.setDefaults()
	mode, err := phy.ModeByRate(24)
	if err != nil {
		return nil, err
	}
	draws := scaled(cfg.Draws, cfg.Scale)
	taus := cfg.TausMs

	const t0 = 0.050
	snapshots := make([][]float64, 1+len(taus)) // part (a) EVM vectors
	nablas := make([][]float64, len(taus))      // part (b) samples per tau
	for ti := range nablas {
		nablas[ti] = make([]float64, draws)
	}
	n := 1 + len(taus) + len(taus)*draws
	err = pool.ForEach(ctx, cfg.Workers, n, cfg.Seed, func(i int, rng *rand.Rand) error {
		// Per task: a channel model owns tap scratch, so point-tasks must
		// not share one (variant 0 of the same geometry is the same draw).
		ch, err := trialChannel(cfg.Scenario, channel.PositionC, true, 0)
		if err != nil {
			return err
		}
		if i <= len(taus) { // snapshot task for part (a)
			t := t0
			if i > 0 {
				t += taus[i-1] / 1000
			}
			_, evm, err := errorVectorSnapshot(ctx, ch, t, mode, cfg.SNR, cfg.Avg, rng)
			if err != nil {
				return err
			}
			snapshots[i] = evm
			return nil
		}
		j := i - 1 - len(taus)
		ti, di := j/draws, j%draws
		tau := taus[ti]
		t := 0.010 + float64(di)*0.0075
		dT, _, err := errorVectorSnapshot(ctx, ch, t, mode, cfg.SNR, cfg.Avg, rng)
		if err != nil {
			return err
		}
		dTau, _, err := errorVectorSnapshot(ctx, ch, t+tau/1000, mode, cfg.SNR, cfg.Avg, rng)
		if err != nil {
			return err
		}
		nabla, err := modulation.NablaEVM(dT, dTau)
		if err != nil {
			return err
		}
		nablas[ti][di] = nabla
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "fig7",
		Title:  "Temporal selectivity of subcarriers (mobile, walking speed)",
		XLabel: "subcarrier (a) / nabla-EVM (b)",
		YLabel: "EVM % (a) / CDF (b)",
	}
	names := []string{"EVM tau=0ms"}
	for _, tau := range taus {
		names = append(names, "EVM tau="+fmtMs(tau))
	}
	for i, evm := range snapshots {
		s := Series{Name: names[i]}
		for d := 0; d < ofdm.NumData; d++ {
			s.X = append(s.X, float64(d+1))
			s.Y = append(s.Y, 100*evm[d])
		}
		res.Add(s)
	}
	for ti, tau := range taus {
		cdf := dsp.EmpiricalCDF(nablas[ti])
		s := Series{Name: "CDF tau=" + fmtMs(tau)}
		for _, p := range cdf {
			s.X = append(s.X, p.Value)
			s.Y = append(s.Y, p.Prob)
		}
		res.Add(s)
	}
	res.Note("nabla-EVM per Eq. (2) over the 48-entry error-vector magnitude vectors")
	return res, nil
}

func fmtMs(ms float64) string {
	return strconv.FormatFloat(ms, 'g', -1, 64) + "ms"
}
