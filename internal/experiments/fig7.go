package experiments

import (
	"math/rand"
	"strconv"

	"cos/internal/channel"
	"cos/internal/dsp"
	"cos/internal/modulation"
	"cos/internal/ofdm"
	"cos/internal/phy"
)

// Fig7Config parameterizes the temporal-selectivity measurement.
type Fig7Config struct {
	// SNR is the true channel SNR in dB (default 22; the paper's lab links
	// were short-range and strong).
	SNR float64
	// TausMs are the evaluated time gaps in milliseconds (default
	// 10,20,30,40 as in the paper).
	TausMs []float64
	// Draws is the number of (t, t+tau) sample pairs per tau for the CDF
	// (default 120).
	Draws int
	// Avg is the number of packets averaged per D(t) snapshot to suppress
	// estimator noise (default 4).
	Avg int
	// Scale shrinks Draws.
	Scale float64
	// Seed drives all randomness.
	Seed int64
}

func (c *Fig7Config) setDefaults() {
	if c.SNR == 0 {
		c.SNR = 22
	}
	if len(c.TausMs) == 0 {
		c.TausMs = []float64{10, 20, 30, 40}
	}
	if c.Draws == 0 {
		c.Draws = 120
	}
	if c.Avg == 0 {
		c.Avg = 4
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// errorVectorSnapshot measures the per-subcarrier mean error-vector
// magnitudes D(t) and EVM(t), averaged over avg known packets at time t to
// suppress estimator noise (the channel is static within a snapshot).
func errorVectorSnapshot(ch *channel.TDL, t float64, mode phy.Mode, snr float64, avg int, rng *rand.Rand) (d, evm []float64, err error) {
	if avg < 1 {
		avg = 1
	}
	dAcc := make([]float64, ofdm.NumData)
	evmAcc := make([]float64, ofdm.NumData)
	for i := 0; i < avg; i++ {
		pr, err := probe(ch, t, mode, 1024, snr, rng)
		if err != nil {
			return nil, nil, err
		}
		diag, err := phy.Diagnose(pr.tx, pr.fe, nil, nil)
		if err != nil {
			return nil, nil, err
		}
		for k := 0; k < ofdm.NumData; k++ {
			dAcc[k] += diag.ErrorVectors[k]
			evmAcc[k] += diag.EVM[k]
		}
	}
	for k := 0; k < ofdm.NumData; k++ {
		dAcc[k] /= float64(avg)
		evmAcc[k] /= float64(avg)
	}
	return dAcc, evmAcc, nil
}

// Fig7Temporal reproduces Fig. 7 in the indoor mobile scenario:
// (a) per-subcarrier EVM snapshots separated by time gap tau, showing the
// channel's frequency signature persists across tens of milliseconds, and
// (b) the CDF of the normalized EVM change (Eq. (2)) for each tau.
func Fig7Temporal(cfg Fig7Config) (*Result, error) {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	mode, err := phy.ModeByRate(24)
	if err != nil {
		return nil, err
	}
	ch, err := channel.PositionC.New(true)
	if err != nil {
		return nil, err
	}
	draws := scaled(cfg.Draws, cfg.Scale)

	res := &Result{
		ID:     "fig7",
		Title:  "Temporal selectivity of subcarriers (mobile, walking speed)",
		XLabel: "subcarrier (a) / nabla-EVM (b)",
		YLabel: "EVM % (a) / CDF (b)",
	}

	// (a) EVM snapshots at t0 and t0+tau for each tau.
	const t0 = 0.050
	_, evm0, err := errorVectorSnapshot(ch, t0, mode, cfg.SNR, cfg.Avg, rng)
	if err != nil {
		return nil, err
	}
	base := Series{Name: "EVM tau=0ms"}
	for d := 0; d < ofdm.NumData; d++ {
		base.X = append(base.X, float64(d+1))
		base.Y = append(base.Y, 100*evm0[d])
	}
	res.Add(base)
	for _, tau := range cfg.TausMs {
		_, evmTau, err := errorVectorSnapshot(ch, t0+tau/1000, mode, cfg.SNR, cfg.Avg, rng)
		if err != nil {
			return nil, err
		}
		s := Series{Name: "EVM tau=" + fmtMs(tau)}
		for d := 0; d < ofdm.NumData; d++ {
			s.X = append(s.X, float64(d+1))
			s.Y = append(s.Y, 100*evmTau[d])
		}
		res.Add(s)
	}

	// (b) CDF of the normalized EVM change per tau.
	for _, tau := range cfg.TausMs {
		var samples []float64
		for i := 0; i < draws; i++ {
			t := 0.010 + float64(i)*0.0075
			dT, _, err := errorVectorSnapshot(ch, t, mode, cfg.SNR, cfg.Avg, rng)
			if err != nil {
				return nil, err
			}
			dTau, _, err := errorVectorSnapshot(ch, t+tau/1000, mode, cfg.SNR, cfg.Avg, rng)
			if err != nil {
				return nil, err
			}
			nabla, err := modulation.NablaEVM(dT, dTau)
			if err != nil {
				return nil, err
			}
			samples = append(samples, nabla)
		}
		cdf := dsp.EmpiricalCDF(samples)
		s := Series{Name: "CDF tau=" + fmtMs(tau)}
		for _, p := range cdf {
			s.X = append(s.X, p.Value)
			s.Y = append(s.Y, p.Prob)
		}
		res.Add(s)
	}
	res.Note("nabla-EVM per Eq. (2) over the 48-entry error-vector magnitude vectors")
	return res, nil
}

func fmtMs(ms float64) string {
	return strconv.FormatFloat(ms, 'g', -1, 64) + "ms"
}
