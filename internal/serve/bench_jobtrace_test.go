package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"sort"
	"time"

	"testing"

	"cos/internal/obs"
)

// benchJobtraceOut enables TestWriteBenchJobtraceReport; `make
// bench-jobtrace` points it at BENCH_jobtrace.json.
var benchJobtraceOut = flag.String("bench-jobtrace-out", "", "write the job-trace overhead report to this JSON file")

// TestWriteBenchJobtraceReport regenerates BENCH_jobtrace.json (via `make
// bench-jobtrace`): it interleaves four job populations — untraced
// (twice, as a paired control), traced event-only (ProbeEvery 0), and
// traced with a probe every 8th packet — through ONE server per round,
// submitted round-robin so the shard queues alternate modes job by job.
// The metric is each mode's median per-job run time from the jobs' own
// StartedAt/FinishedAt stamps: because the modes share the same seconds
// of wall clock, co-tenant noise on a shared container lands on all four
// equally instead of biasing whole passes, and the median shrugs off
// scheduler spikes. The tracing code is a nil check when no capture is
// attached, so the two untraced populations are the same configuration
// measured twice: the delta between their medians is the enforced <= 2%
// untraced-overhead budget (rounds continue until they converge, up to a
// cap). The traced populations also assert the capture is doing its job:
// every trace digest present and per-seed reruns byte-identical. It
// skips itself unless -bench-jobtrace-out is set so `go test ./...`
// stays fast.
func TestWriteBenchJobtraceReport(t *testing.T) {
	if *benchJobtraceOut == "" {
		t.Skip("set -bench-jobtrace-out to write the report")
	}

	const perMode = 32 // jobs per mode per round
	const rounds = 3
	shards := runtime.GOMAXPROCS(0)

	type mode struct {
		name   string
		opts   SubmitOptions
		runMS  []float64
		traces [][]byte
	}
	modes := []*mode{
		{name: "untracedA"},
		{name: "event", opts: SubmitOptions{Trace: true}},
		{name: "probe8", opts: SubmitOptions{Trace: true, ProbeEvery: 8}},
		{name: "untracedB"}, // paired control: identical to untracedA
	}

	// Seeds advance monotonically across every round so no spec ever
	// repeats within the measurement (repeats would hit the result cache
	// and measure nothing). The probed population's specs are recorded so
	// the determinism cross-check can replay them exactly.
	seed := int64(0)
	var probeSpecs []Spec
	round := func() {
		s := New(Config{Shards: shards, QueueDepth: perMode * len(modes), Metrics: obs.NewRegistry()})
		defer s.Drain(120 * time.Second)
		type sub struct {
			j *Job
			m *mode
		}
		subs := make([]sub, 0, perMode*len(modes))
		for i := 0; i < perMode; i++ {
			for _, m := range modes {
				seed++
				spec := Spec{Kind: KindLink, Seed: seed, PayloadBytes: 256, Packets: 50, ControlBits: 32}
				if m.opts.Trace && m.opts.ProbeEvery > 0 {
					probeSpecs = append(probeSpecs, spec)
				}
				j, err := s.SubmitWith(spec, m.opts)
				if err != nil {
					t.Fatalf("submit seed %d: %v", seed, err)
				}
				subs = append(subs, sub{j, m})
			}
		}
		for _, su := range subs {
			<-su.j.Done()
			st := su.j.Status()
			if st.State != "done" {
				t.Fatalf("job %s finished %q (err %q)", st.ID, st.State, st.Error)
			}
			if st.StartedAt != nil && st.FinishedAt != nil {
				su.m.runMS = append(su.m.runMS, float64(st.FinishedAt.Sub(*st.StartedAt))/1e6)
			}
			if su.m.opts.Trace {
				body, digest, err := s.JobTrace(su.j)
				if err != nil {
					t.Fatalf("job %s trace: %v", st.ID, err)
				}
				if digest == "" || len(body) == 0 {
					t.Fatalf("job %s: empty trace", st.ID)
				}
				su.m.traces = append(su.m.traces, body)
			}
		}
	}
	for r := 0; r < rounds; r++ {
		round()
	}

	quantile := func(ms []float64, q float64) float64 {
		s := append([]float64(nil), ms...)
		sort.Float64s(s)
		i := int(q * float64(len(s)))
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	median := func(ms []float64) float64 { return quantile(ms, 0.5) }

	untracedA, event, probed, untracedB := modes[0], modes[1], modes[2], modes[3]

	// The paired untraced medians converge as samples accumulate (both
	// populations draw from the same distribution); keep adding interleaved
	// rounds until they agree within the budget, up to a cap.
	delta := func() float64 {
		d := (median(untracedA.runMS) - median(untracedB.runMS)) / median(untracedA.runMS)
		if d < 0 {
			return -d
		}
		return d
	}
	extraRounds := 0
	for delta() > 0.02 && extraRounds < 8 {
		extraRounds++
		round()
	}
	untracedDelta := delta()
	if untracedDelta > 0.02 {
		t.Fatalf("paired untraced medians differ by %.1f%% after %d extra rounds, want <= 2%% — container too noisy to certify the budget",
			untracedDelta*100, extraRounds)
	}

	// Determinism cross-check: replay the probed population's specs on a
	// fresh server and demand byte-identical capture.
	{
		s := New(Config{Shards: shards, QueueDepth: len(probeSpecs), Metrics: obs.NewRegistry()})
		defer s.Drain(120 * time.Second)
		for i, spec := range probeSpecs {
			j, err := s.SubmitWith(spec, SubmitOptions{Trace: true, ProbeEvery: 8})
			if err != nil {
				t.Fatalf("rerun submit %d: %v", i, err)
			}
			<-j.Done()
			body, _, err := s.JobTrace(j)
			if err != nil {
				t.Fatalf("rerun trace %d: %v", i, err)
			}
			if !bytes.Equal(body, probed.traces[i]) {
				t.Fatalf("seed %d: traced rerun not byte-identical", spec.Seed)
			}
		}
	}

	// Run-to-run dispersion of one untraced population, for context: how
	// wide the middle half of the per-job samples sits around the median.
	untracedSpread := (quantile(untracedA.runMS, 0.75) - quantile(untracedA.runMS, 0.25)) / median(untracedA.runMS)

	traceBytes := 0
	for _, b := range event.traces {
		traceBytes += len(b)
	}

	untracedMed := median(untracedA.runMS)
	eventMed := median(event.runMS)
	probeMed := median(probed.runMS)
	// Jobs per second of shard busy time, derived from the median per-job
	// run: comparable across modes because every mode shared the same
	// interleaved schedule.
	jps := func(med float64) float64 { return 1000 * float64(shards) / med }

	report := struct {
		Description      string  `json:"description"`
		Shards           int     `json:"shards"`
		JobsPerMode      int     `json:"jobs_per_mode"`
		Rounds           int     `json:"rounds"`
		ExtraRounds      int     `json:"extra_rounds"`
		UntracedJPS      float64 `json:"untraced_jobs_per_second"`
		UntracedSpread   float64 `json:"untraced_interquartile_spread"`
		UntracedOverhead float64 `json:"untraced_paired_delta"`
		UntracedMedMS    float64 `json:"untraced_run_median_ms"`
		UntracedP99MS    float64 `json:"untraced_run_p99_ms"`
		EventJPS         float64 `json:"traced_event_only_jobs_per_second"`
		EventMedMS       float64 `json:"traced_event_only_run_median_ms"`
		EventP99MS       float64 `json:"traced_event_only_run_p99_ms"`
		ProbeJPS         float64 `json:"traced_probe_every8_jobs_per_second"`
		ProbeMedMS       float64 `json:"traced_probe_every8_run_median_ms"`
		ProbeP99MS       float64 `json:"traced_probe_every8_run_p99_ms"`
		EventOverhead    float64 `json:"traced_event_only_overhead"`
		ProbeOverhead    float64 `json:"traced_probe_every8_overhead"`
		MeanTraceBytes   int     `json:"mean_trace_bytes"`
		ByteIdentical    bool    `json:"traced_reruns_byte_identical"`
		GoVersion        string  `json:"go_version"`
	}{
		Description:      "per-job flight-recorder capture: four job populations (untraced x2 paired control, traced event-only, traced probe-every-8) interleaved job-by-job through one shard pool per round, compared by median per-job run time so container noise lands on every mode equally; untraced_paired_delta is the measured delta between the two identical untraced populations (the <=2% untraced-overhead budget, enforced), and the probed population is replayed to assert byte-identical capture",
		Shards:           shards,
		JobsPerMode:      perMode * rounds,
		Rounds:           rounds,
		ExtraRounds:      extraRounds,
		UntracedJPS:      jps(untracedMed),
		UntracedSpread:   untracedSpread,
		UntracedOverhead: untracedDelta,
		UntracedMedMS:    untracedMed,
		UntracedP99MS:    quantile(untracedA.runMS, 0.99),
		EventJPS:         jps(eventMed),
		EventMedMS:       eventMed,
		EventP99MS:       quantile(event.runMS, 0.99),
		ProbeJPS:         jps(probeMed),
		ProbeMedMS:       probeMed,
		ProbeP99MS:       quantile(probed.runMS, 0.99),
		EventOverhead:    eventMed/untracedMed - 1,
		ProbeOverhead:    probeMed/untracedMed - 1,
		MeanTraceBytes:   traceBytes / len(event.traces),
		ByteIdentical:    true,
		GoVersion:        runtime.Version(),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchJobtraceOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: untraced median %.1fms (paired delta %.2f%%), event-traced %.1fms, probe-traced %.1fms, %d extra rounds",
		*benchJobtraceOut, untracedMed, untracedDelta*100, eventMed, probeMed, extraRounds)
}
