// Package client is a small Go client for the cos-serve HTTP API. The
// daemon's own tests are its first consumer; it wraps submit, status,
// cancellation, and NDJSON result streaming with typed errors that expose
// the server's admission decisions (429 overload with Retry-After, 503
// drain) as errors.Is-compatible sentinels.
//
// The canonical surface is four calls — Submit, Wait, Result, Events —
// plus Status/Jobs/Cancel/Healthy lookups. Submit takes SubmitOptions
// (idempotency key, per-call deadline) and reports cache outcomes: a
// submission served from the server's content-addressed result cache
// returns a Status with Cached set and the full stream already available.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cos/internal/serve"
)

// Error codes from the server's error envelope (the servehttp Code*
// vocabulary). Stable: branch on these, not on message text.
const (
	CodeInvalidSpec     = "invalid_spec"
	CodeBadRequest      = "bad_request"
	CodeUnknownJob      = "unknown_job"
	CodePayloadTooLarge = "payload_too_large"
	CodeOverloaded      = "overloaded"
	CodeDraining        = "draining"
	CodeNotFound        = "not_found"
	CodeInternal        = "internal"
	// CodeTraceUnavailable: the job has no retrievable flight-recorder
	// trace (untraced submission, not finished done, or the persisted
	// trace body is gone).
	CodeTraceUnavailable = "trace_unavailable"
)

// APIError is a non-2xx response from the server. It unwraps to the serve
// package's sentinel errors, so callers write
//
//	errors.Is(err, serve.ErrOverloaded)
//
// instead of inspecting status codes.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Code is the machine-readable error code from the envelope ("" when
	// the server predates the envelope or the body was unreadable).
	Code string
	// Message is the server's error string.
	Message string
	// RetryAfter is the server's retry hint (zero when absent), from the
	// envelope's retry_after_ms or the Retry-After header.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("serve client: server returned %d (%s): %s", e.StatusCode, e.Code, e.Message)
	}
	return fmt.Sprintf("serve client: server returned %d: %s", e.StatusCode, e.Message)
}

// Unwrap maps the error code onto the serve sentinels for errors.Is.
func (e *APIError) Unwrap() error {
	switch e.Code {
	case CodeOverloaded:
		return serve.ErrOverloaded
	case CodeDraining:
		return serve.ErrDraining
	case CodeUnknownJob:
		return serve.ErrUnknownJob
	case CodeTraceUnavailable:
		return serve.ErrTraceUnavailable
	}
	// Legacy servers send a bare string envelope with no code: fall back
	// to the status mapping so errors.Is keeps working.
	switch e.StatusCode {
	case http.StatusTooManyRequests:
		return serve.ErrOverloaded
	case http.StatusServiceUnavailable:
		return serve.ErrDraining
	case http.StatusNotFound:
		return serve.ErrUnknownJob
	}
	return nil
}

// Overloaded reports a 429 admission rejection.
//
// Deprecated: use errors.Is(err, serve.ErrOverloaded).
func (e *APIError) Overloaded() bool { return errors.Is(e, serve.ErrOverloaded) }

// Draining reports a 503 drain rejection.
//
// Deprecated: use errors.Is(err, serve.ErrDraining).
func (e *APIError) Draining() bool { return errors.Is(e, serve.ErrDraining) }

// SubmitOptions refines one Submit call. The zero value submits plainly.
type SubmitOptions struct {
	// IdempotencyKey makes retries safe: the server returns the job the
	// first submission with this key admitted instead of admitting again.
	// Sent as the X-Cos-Idempotency-Key header. Empty disables.
	IdempotencyKey string
	// Deadline bounds this submission round-trip (zero means the ctx
	// governs alone).
	Deadline time.Time
	// Trace asks the server to capture a flight-recorder trace for the job
	// (sent as the X-Cos-Trace header); retrieve it with Trace once the
	// job finishes done.
	Trace bool
	// ProbeEvery sets the traced job's PHY-probe cadence (X-Cos-Probe-Every
	// header); 0 captures events only. Requires Trace.
	ProbeEvery int
}

// Client talks to one cos-serve instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8866".
	BaseURL string
	// HTTP is the underlying client (default http.DefaultClient).
	HTTP *http.Client
}

// New returns a client for the server at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues a request and decodes error envelopes into *APIError.
func (c *Client) do(req *http.Request) (*http.Response, error) {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return resp, nil
	}
	defer resp.Body.Close()
	apiErr := &APIError{StatusCode: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if d, ok := ParseRetryAfter(ra, time.Now()); ok {
			apiErr.RetryAfter = d
		}
	}
	// The envelope's retry_after_ms, when present and positive, overrides
	// the header: it is the server's own hint at millisecond resolution,
	// while the header is capped to whole seconds by HTTP.
	decodeEnvelope(resp.Body, apiErr)
	return nil, apiErr
}

// ParseRetryAfter interprets a Retry-After header value relative to now.
// Both RFC 9110 forms are handled: delta-seconds ("1") and HTTP-date
// ("Mon, 02 Jan 2006 15:04:05 GMT" and the obsolete date layouts). Values
// in the past — a negative delta or an elapsed date — clamp to zero, which
// still means "the server sent a hint" (retry immediately), so ok stays
// true; ok is false only for unparseable values.
func ParseRetryAfter(v string, now time.Time) (wait time.Duration, ok bool) {
	v = strings.TrimSpace(v)
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, true
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// decodeEnvelope fills apiErr from the response body. It accepts both the
// typed envelope {"error":{"code":...,"message":...,"retry_after_ms":...}}
// and the legacy bare-string form {"error":"..."}.
func decodeEnvelope(body io.Reader, apiErr *APIError) {
	var env struct {
		Error json.RawMessage `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(body, 1<<16)).Decode(&env); err != nil || len(env.Error) == 0 {
		return
	}
	var info struct {
		Code         string `json:"code"`
		Message      string `json:"message"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := json.Unmarshal(env.Error, &info); err == nil {
		apiErr.Code = info.Code
		apiErr.Message = info.Message
		if info.RetryAfterMS > 0 {
			apiErr.RetryAfter = time.Duration(info.RetryAfterMS) * time.Millisecond
		}
		return
	}
	var legacy string
	if err := json.Unmarshal(env.Error, &legacy); err == nil {
		apiErr.Message = legacy
	}
}

// Submit posts a job spec and returns the admitted job's status. A Status
// with Cached set was served from the server's content-addressed result
// cache: the job is already terminal and Result returns the full stream
// immediately.
func (c *Client) Submit(ctx context.Context, spec serve.Spec, opts SubmitOptions) (serve.Status, error) {
	var st serve.Status
	if !opts.Deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, opts.Deadline)
		defer cancel()
	}
	payload, err := json.Marshal(spec)
	if err != nil {
		return st, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/jobs", bytes.NewReader(payload))
	if err != nil {
		return st, err
	}
	req.Header.Set("Content-Type", "application/json")
	if opts.IdempotencyKey != "" {
		req.Header.Set("X-Cos-Idempotency-Key", opts.IdempotencyKey)
	}
	if opts.Trace {
		req.Header.Set("X-Cos-Trace", "1")
	}
	if opts.ProbeEvery != 0 {
		req.Header.Set("X-Cos-Probe-Every", strconv.Itoa(opts.ProbeEvery))
	}
	resp, err := c.do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// Status fetches one job's status. id may be a job ID or a spec digest
// (resolving to the newest job for that spec).
func (c *Client) Status(ctx context.Context, id string) (serve.Status, error) {
	var st serve.Status
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/jobs/"+id, nil)
	if err != nil {
		return st, err
	}
	resp, err := c.do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// Jobs lists every job's status in submission order.
func (c *Client) Jobs(ctx context.Context) ([]serve.Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/jobs", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var sts []serve.Status
	return sts, json.NewDecoder(resp.Body).Decode(&sts)
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/jobs/"+id+"/cancel", nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// Result opens the job's NDJSON result stream. id may be a job ID or a
// spec digest; a digest with no live job serves the stored result body.
// The reader delivers records as the job produces them and ends when the
// job reaches a terminal state; the caller must Close it.
func (c *Client) Result(ctx context.Context, id string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// ResultBytes reads the job's complete NDJSON result body, blocking until
// the job is terminal.
func (c *Client) ResultBytes(ctx context.Context, id string) ([]byte, error) {
	body, err := c.Result(ctx, id)
	if err != nil {
		return nil, err
	}
	defer body.Close()
	return io.ReadAll(body)
}

// Trace reads the job's complete flight-recorder trace (NDJSON, schema
// v2), blocking until the job is terminal. id may be a job ID or a spec
// digest; a digest with no live job serves the persisted trace artifact.
// Untraced or unfinished jobs fail with an *APIError unwrapping to
// serve.ErrTraceUnavailable. The pipe-friendly body feeds cos-trace
// summary directly (cos-trace summary -).
func (c *Client) Trace(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/jobs/"+id+"/trace", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Wait polls until the job reaches a terminal state and returns its final
// status.
func (c *Client) Wait(ctx context.Context, id string) (serve.Status, error) {
	return c.WaitPoll(ctx, id, 0)
}

// WaitPoll is Wait with an explicit poll interval (<= 0 selects 50ms).
//
// Deprecated: use Wait unless the poll cadence matters.
func (c *Client) WaitPoll(ctx context.Context, id string, poll time.Duration) (serve.Status, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.Terminal {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-ticker.C:
		}
	}
}

// Healthy reports whether the server is admitting jobs (GET /healthz).
func (c *Client) Healthy(ctx context.Context) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return false, err
	}
	resp, err := c.do(req)
	if err != nil {
		if errors.Is(err, serve.ErrDraining) {
			return false, nil
		}
		return false, err
	}
	resp.Body.Close()
	return true, nil
}

// Health fetches the server's admission snapshot (GET /healthz): state,
// shard count, per-shard queue depths, and jobs in flight. Unlike Healthy
// it returns the body on 503 too — a draining server answers with
// state "draining". Servers predating the Health body yield a snapshot
// with only State filled in, inferred from the status code.
func (c *Client) Health(ctx context.Context) (serve.Health, error) {
	var h serve.Health
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return h, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusServiceUnavailable:
	default:
		apiErr := &APIError{StatusCode: resp.StatusCode}
		decodeEnvelope(resp.Body, apiErr)
		return h, apiErr
	}
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h)
	if h.State == "" {
		if resp.StatusCode == http.StatusOK {
			h.State = "ok"
		} else {
			h.State = "draining"
		}
	}
	return h, nil
}
