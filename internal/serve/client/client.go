// Package client is a small Go client for the cos-serve HTTP API. The
// daemon's own tests are its first consumer; it wraps submit, status,
// cancellation, and NDJSON result streaming with typed errors that expose
// the server's admission decisions (429 overload with Retry-After, 503
// drain).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cos/internal/serve"
)

// APIError is a non-2xx response from the server.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Message is the server's error string.
	Message string
	// RetryAfter is the parsed Retry-After hint (zero when absent).
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("serve client: server returned %d: %s", e.StatusCode, e.Message)
}

// Overloaded reports a 429 admission rejection.
func (e *APIError) Overloaded() bool { return e.StatusCode == http.StatusTooManyRequests }

// Draining reports a 503 drain rejection.
func (e *APIError) Draining() bool { return e.StatusCode == http.StatusServiceUnavailable }

// Client talks to one cos-serve instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8866".
	BaseURL string
	// HTTP is the underlying client (default http.DefaultClient).
	HTTP *http.Client
}

// New returns a client for the server at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues a request and decodes error envelopes into *APIError.
func (c *Client) do(req *http.Request) (*http.Response, error) {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return resp, nil
	}
	defer resp.Body.Close()
	apiErr := &APIError{StatusCode: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil {
		apiErr.Message = body.Error
	}
	return nil, apiErr
}

// Submit posts a job spec and returns the accepted job's status.
func (c *Client) Submit(ctx context.Context, spec serve.Spec) (serve.Status, error) {
	var st serve.Status
	payload, err := json.Marshal(spec)
	if err != nil {
		return st, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/jobs", bytes.NewReader(payload))
	if err != nil {
		return st, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// Status fetches one job's status.
func (c *Client) Status(ctx context.Context, id string) (serve.Status, error) {
	var st serve.Status
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/jobs/"+id, nil)
	if err != nil {
		return st, err
	}
	resp, err := c.do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// Jobs lists every job's status in submission order.
func (c *Client) Jobs(ctx context.Context) ([]serve.Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/jobs", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var sts []serve.Status
	return sts, json.NewDecoder(resp.Body).Decode(&sts)
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/jobs/"+id+"/cancel", nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// Result opens the job's NDJSON result stream. The reader delivers records
// as the job produces them and ends when the job reaches a terminal state;
// the caller must Close it.
func (c *Client) Result(ctx context.Context, id string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// ResultBytes reads the job's complete NDJSON result body, blocking until
// the job is terminal.
func (c *Client) ResultBytes(ctx context.Context, id string) ([]byte, error) {
	body, err := c.Result(ctx, id)
	if err != nil {
		return nil, err
	}
	defer body.Close()
	return io.ReadAll(body)
}

// Wait polls until the job reaches a terminal state and returns its final
// status.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (serve.Status, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.Terminal {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-ticker.C:
		}
	}
}

// Healthy reports whether the server is admitting jobs (GET /healthz).
func (c *Client) Healthy(ctx context.Context) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return false, err
	}
	resp, err := c.do(req)
	if err != nil {
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Draining() {
			return false, nil
		}
		return false, err
	}
	resp.Body.Close()
	return true, nil
}
