package client

import (
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"cos/internal/serve"
)

// TestDecodeEnvelopeTyped pins the typed envelope path: code, message, and
// retry_after_ms all land on the APIError, and Unwrap maps the code onto
// the serve sentinel.
func TestDecodeEnvelopeTyped(t *testing.T) {
	apiErr := &APIError{StatusCode: http.StatusTooManyRequests}
	decodeEnvelope(strings.NewReader(
		`{"error":{"code":"overloaded","message":"serve: admission queue full","retry_after_ms":1000}}`), apiErr)
	if apiErr.Code != CodeOverloaded || apiErr.Message != "serve: admission queue full" {
		t.Fatalf("typed decode = %+v", apiErr)
	}
	if apiErr.RetryAfter != time.Second {
		t.Fatalf("RetryAfter = %v, want 1s from retry_after_ms", apiErr.RetryAfter)
	}
	if !errors.Is(apiErr, serve.ErrOverloaded) {
		t.Fatal("code overloaded did not map to ErrOverloaded")
	}
	if !strings.Contains(apiErr.Error(), "overloaded") {
		t.Fatalf("Error() = %q, want the code included", apiErr.Error())
	}
}

// TestDecodeEnvelopeLegacy: the pre-envelope {"error":"string"} shape
// still decodes, and sentinel mapping falls back to the status code.
func TestDecodeEnvelopeLegacy(t *testing.T) {
	cases := []struct {
		status int
		want   error
	}{
		{http.StatusTooManyRequests, serve.ErrOverloaded},
		{http.StatusServiceUnavailable, serve.ErrDraining},
		{http.StatusNotFound, serve.ErrUnknownJob},
	}
	for _, tc := range cases {
		apiErr := &APIError{StatusCode: tc.status}
		decodeEnvelope(strings.NewReader(`{"error":"legacy message"}`), apiErr)
		if apiErr.Message != "legacy message" || apiErr.Code != "" {
			t.Fatalf("legacy decode (%d) = %+v", tc.status, apiErr)
		}
		if !errors.Is(apiErr, tc.want) {
			t.Errorf("status %d did not map to %v", tc.status, tc.want)
		}
	}
	// Garbage bodies leave the error usable.
	apiErr := &APIError{StatusCode: http.StatusBadRequest}
	decodeEnvelope(strings.NewReader("not json"), apiErr)
	if apiErr.Message != "" || errors.Is(apiErr, serve.ErrOverloaded) {
		t.Fatalf("garbage decode = %+v", apiErr)
	}
}

// TestDeprecatedPredicates: Overloaded/Draining stay truthful for callers
// not yet migrated to errors.Is.
func TestDeprecatedPredicates(t *testing.T) {
	over := &APIError{StatusCode: 429, Code: CodeOverloaded}
	drain := &APIError{StatusCode: 503, Code: CodeDraining}
	if !over.Overloaded() || over.Draining() {
		t.Fatalf("overloaded predicates wrong: %+v", over)
	}
	if !drain.Draining() || drain.Overloaded() {
		t.Fatalf("draining predicates wrong: %+v", drain)
	}
}
