package client

import (
	"errors"
	"math/rand"
	"time"
)

// Backoff computes retry delays for resubmitting against an overloaded or
// flaky server: capped exponential growth with proportional jitter, with
// an explicit server Retry-After hint taking precedence over the schedule
// when one is present. The zero value is ready to use (50ms base, 2s cap,
// factor 2, 20% jitter with no source — i.e. jitter disabled).
//
// Determinism: Delay draws jitter only from Rand. With Rand nil the
// schedule is exactly reproducible; with a seeded source two Backoffs
// constructed the same way produce identical delay sequences, which is how
// the fleet tests pin retry timing. A Backoff with a Rand is NOT safe for
// concurrent use — give each worker its own (the coordinator derives one
// per backend from its seed).
type Backoff struct {
	// Base is the delay before the first retry (0 selects 50ms).
	Base time.Duration
	// Max caps the computed schedule (0 selects 2s). A server hint above
	// Max is honored anyway: the server knows its own drain better.
	Max time.Duration
	// Factor is the per-attempt growth (values < 1 select 2).
	Factor float64
	// Jitter spreads each delay by ±Jitter fraction (0 selects 0.2;
	// negative disables). Applied only when Rand is set.
	Jitter float64
	// Rand is the jitter source; nil disables jitter entirely.
	Rand *rand.Rand
}

// Delay returns the wait before retry number attempt (1 = first retry;
// values < 1 are treated as 1). hint is the server's Retry-After (zero
// when the response carried none); a positive hint replaces the
// exponential schedule for this attempt, jittered the same way so herds
// of clients given the same hint still spread out.
func (b *Backoff) Delay(attempt int, hint time.Duration) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 2 * time.Second
	}
	factor := b.Factor
	if factor < 1 {
		factor = 2
	}
	var d time.Duration
	if hint > 0 {
		d = hint
	} else {
		d = base
		for i := 1; i < attempt && d < max; i++ {
			d = time.Duration(float64(d) * factor)
		}
		if d > max {
			d = max
		}
	}
	jitter := b.Jitter
	if jitter == 0 {
		jitter = 0.2
	}
	if jitter > 0 && b.Rand != nil {
		// Uniform in [1-jitter, 1+jitter); clamp at zero for jitter >= 1.
		scale := 1 + jitter*(2*b.Rand.Float64()-1)
		if scale < 0 {
			scale = 0
		}
		d = time.Duration(float64(d) * scale)
	}
	return d
}

// RetryAfterHint extracts the server's Retry-After from an error chain:
// the *APIError's RetryAfter when err wraps one, zero otherwise. Feed it
// straight into Delay.
func RetryAfterHint(err error) time.Duration {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.RetryAfter
	}
	return 0
}
