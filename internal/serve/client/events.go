package client

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"cos/internal/obs/event"
)

// EventQuery selects which journal events to stream from GET /events.
type EventQuery struct {
	// Since replays retained events with seq > Since before going live.
	Since uint64
	// Types keeps only these event types (empty = all).
	Types []string
	// Job keeps only events for this job ID.
	Job string
	// NoFollow requests a snapshot: the replay, then EOF.
	NoFollow bool
	// Buffer sets the server-side subscriber channel capacity (0 = default).
	Buffer int
}

// EventStream iterates the NDJSON event stream. Close it when done.
type EventStream struct {
	body interface{ Close() error }
	sc   *bufio.Scanner
}

// Events opens a journal stream. The returned stream ends when the server
// drains (journal closed), the context is cancelled, or — with NoFollow —
// when the replay is exhausted.
func (c *Client) Events(ctx context.Context, q EventQuery) (*EventStream, error) {
	v := url.Values{}
	if q.Since > 0 {
		v.Set("since", strconv.FormatUint(q.Since, 10))
	}
	if len(q.Types) > 0 {
		v.Set("type", strings.Join(q.Types, ","))
	}
	if q.Job != "" {
		v.Set("job", q.Job)
	}
	if q.NoFollow {
		v.Set("follow", "0")
	}
	if q.Buffer > 0 {
		v.Set("buf", strconv.Itoa(q.Buffer))
	}
	u := c.BaseURL + "/events"
	if enc := v.Encode(); enc != "" {
		u += "?" + enc
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &EventStream{body: resp.Body, sc: sc}, nil
}

// Next returns the next event, or false at end of stream. Synthetic gap
// records from the server (type "events_dropped", seq 0) are surfaced like
// any other event so consumers can report the loss.
func (s *EventStream) Next() (event.Event, bool) {
	for s.sc.Scan() {
		line := strings.TrimSpace(s.sc.Text())
		if line == "" {
			continue
		}
		var ev event.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			continue // tolerate foreign lines
		}
		return ev, true
	}
	return event.Event{}, false
}

// Err returns the scan error that ended the stream, if any.
func (s *EventStream) Err() error { return s.sc.Err() }

// Close releases the underlying response body.
func (s *EventStream) Close() error { return s.body.Close() }
