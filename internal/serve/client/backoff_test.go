package client

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestParseRetryAfter pins both RFC 9110 forms — delta-seconds and
// HTTP-date — plus the defensive edges: negative deltas clamp to zero and
// garbage reports !ok instead of a bogus wait.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 2, 3, 10, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"3", 3 * time.Second, true},
		{" 7 ", 7 * time.Second, true},
		{"0", 0, true},
		{"-5", 0, true},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second, true},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0, true},
		{"soon", 0, false},
		{"", 0, false},
		{"1.5", 0, false}, // delta-seconds is an integer; fractions are not the protocol
	}
	for _, tc := range cases {
		got, ok := ParseRetryAfter(tc.in, now)
		if got != tc.want || ok != tc.ok {
			t.Errorf("ParseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

// retryAfterResponse serves one canned 429 and returns the resulting
// *APIError from a Status call.
func retryAfterResponse(t *testing.T, header, body string) *APIError {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if header != "" {
			w.Header().Set("Retry-After", header)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(body))
	}))
	defer srv.Close()
	_, err := New(srv.URL).Status(context.Background(), "job-000001")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("Status error = %v, want *APIError", err)
	}
	return apiErr
}

// TestRetryAfterEnvelopePrecedence pins the precedence contract on the
// wire: a positive retry_after_ms in the error envelope overrides the
// Retry-After header; with no envelope hint the header stands, in either
// of its two forms.
func TestRetryAfterEnvelopePrecedence(t *testing.T) {
	both := retryAfterResponse(t, "5",
		`{"error":{"code":"overloaded","message":"busy","retry_after_ms":1200}}`)
	if both.RetryAfter != 1200*time.Millisecond {
		t.Errorf("envelope + header: RetryAfter = %v, want 1.2s (envelope wins)", both.RetryAfter)
	}

	headerOnly := retryAfterResponse(t, "5",
		`{"error":{"code":"overloaded","message":"busy"}}`)
	if headerOnly.RetryAfter != 5*time.Second {
		t.Errorf("header only: RetryAfter = %v, want 5s", headerOnly.RetryAfter)
	}

	date := time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	dated := retryAfterResponse(t, date,
		`{"error":{"code":"overloaded","message":"busy"}}`)
	if dated.RetryAfter <= 0 || dated.RetryAfter > 31*time.Second {
		t.Errorf("HTTP-date header: RetryAfter = %v, want ~30s", dated.RetryAfter)
	}

	neither := retryAfterResponse(t, "", `{"error":{"code":"overloaded","message":"busy"}}`)
	if neither.RetryAfter != 0 {
		t.Errorf("no hint anywhere: RetryAfter = %v, want 0", neither.RetryAfter)
	}
}

// TestBackoffScheduleWithoutJitter: with no Rand the schedule is exact —
// pinned so fleet retry timing stays reproducible.
func TestBackoffScheduleWithoutJitter(t *testing.T) {
	var b Backoff // all defaults: 50ms base, x2, 2s cap
	want := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, 1600 * time.Millisecond,
		2 * time.Second, 2 * time.Second,
	}
	for i, w := range want {
		if got := b.Delay(i+1, 0); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Attempts < 1 behave like the first retry.
	if got := b.Delay(0, 0); got != 50*time.Millisecond {
		t.Errorf("Delay(0) = %v, want 50ms", got)
	}

	custom := Backoff{Base: 10 * time.Millisecond, Factor: 3, Max: 100 * time.Millisecond}
	wantCustom := []time.Duration{
		10 * time.Millisecond, 30 * time.Millisecond, 90 * time.Millisecond,
		100 * time.Millisecond, 100 * time.Millisecond,
	}
	for i, w := range wantCustom {
		if got := custom.Delay(i+1, 0); got != w {
			t.Errorf("custom Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

// TestBackoffJitterDeterministic: two Backoffs over identically-seeded
// sources produce identical delay sequences, and every jittered delay
// stays inside the ±Jitter band.
func TestBackoffJitterDeterministic(t *testing.T) {
	mk := func() Backoff {
		return Backoff{Rand: rand.New(rand.NewSource(42))}
	}
	a, b := mk(), mk()
	plain := Backoff{}
	for i := 1; i <= 16; i++ {
		da, db := a.Delay(i, 0), b.Delay(i, 0)
		if da != db {
			t.Fatalf("Delay(%d) diverged under the same seed: %v vs %v", i, da, db)
		}
		base := plain.Delay(i, 0)
		lo := time.Duration(float64(base) * 0.8)
		hi := time.Duration(float64(base) * 1.2)
		if da < lo || da > hi {
			t.Errorf("Delay(%d) = %v outside the 20%% jitter band [%v, %v]", i, da, lo, hi)
		}
	}
	// Negative Jitter disables jitter even with a source present.
	exact := Backoff{Jitter: -1, Rand: rand.New(rand.NewSource(1))}
	if got := exact.Delay(1, 0); got != 50*time.Millisecond {
		t.Errorf("Jitter -1: Delay(1) = %v, want exact 50ms", got)
	}
}

// TestBackoffHint: a server hint replaces the schedule (even above Max —
// the server knows its drain), and RetryAfterHint digs it out of a
// wrapped error chain.
func TestBackoffHint(t *testing.T) {
	var b Backoff
	if got := b.Delay(5, 700*time.Millisecond); got != 700*time.Millisecond {
		t.Errorf("Delay with hint = %v, want the hint", got)
	}
	if got := b.Delay(1, 10*time.Second); got != 10*time.Second {
		t.Errorf("hint above Max = %v, want 10s honored", got)
	}

	apiErr := &APIError{StatusCode: 429, RetryAfter: 250 * time.Millisecond}
	wrapped := &wrapErr{inner: apiErr}
	if got := RetryAfterHint(wrapped); got != 250*time.Millisecond {
		t.Errorf("RetryAfterHint(wrapped) = %v, want 250ms", got)
	}
	if got := RetryAfterHint(errors.New("plain")); got != 0 {
		t.Errorf("RetryAfterHint(plain) = %v, want 0", got)
	}
}

type wrapErr struct{ inner error }

func (w *wrapErr) Error() string { return "wrapped: " + w.inner.Error() }
func (w *wrapErr) Unwrap() error { return w.inner }
