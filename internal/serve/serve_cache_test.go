package serve

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"cos/internal/obs"
	"cos/internal/serve/cache"
	"cos/internal/serve/store"
)

func readAll(t *testing.T, j *Job) []byte {
	t.Helper()
	b, err := io.ReadAll(j.Result())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCacheHitServesIdenticalBytes is the tentpole's core contract: a
// repeat submission of the same spec is served from the cache — born
// terminal, never queued — with a byte-identical NDJSON stream.
func TestCacheHitServesIdenticalBytes(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Shards: 1, Metrics: reg, Cache: cache.New(0)})

	first, err := s.Submit(fastLinkSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if waitTerminal(t, first, 30*time.Second).State != "done" {
		t.Fatalf("first run failed: %q", first.Err())
	}
	cold := readAll(t, first)

	// Same spec modulo normalization: defaults explicit, position folded.
	respec := fastLinkSpec(7)
	respec.Position = "b"
	respec.Seed = 7
	second, err := s.Submit(respec)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached() {
		t.Fatal("repeat submission missed the cache")
	}
	if second.ID() == first.ID() {
		t.Fatal("cache hit reused the first job's ID")
	}
	st := second.Status()
	if st.State != "done" || !st.Terminal || !st.Cached || st.StartedAt != nil {
		t.Fatalf("cached job status = %+v", st)
	}
	if st.Digest != first.Digest() || st.Digest == "" {
		t.Fatalf("digest mismatch: %q vs %q", st.Digest, first.Digest())
	}
	select {
	case <-second.Done():
	default:
		t.Fatal("cached job's Done channel is open")
	}
	if warm := readAll(t, second); !bytes.Equal(cold, warm) {
		t.Fatalf("cache served different bytes:\ncold %d bytes\nwarm %d bytes", len(cold), len(warm))
	}

	snap := reg.Snapshot()
	if got := snap["serve_cache_hits_total"]; got != 1 {
		t.Errorf("serve_cache_hits_total = %v, want 1", got)
	}
	if got := snap["serve_cache_misses_total"]; got != 1 {
		t.Errorf("serve_cache_misses_total = %v, want 1", got)
	}

	evs := eventsOfType(s.Journal().Snapshot(0), EventJobCached)
	if len(evs) != 1 || evs[0].Job != second.ID() {
		t.Fatalf("job_cached events = %+v", evs)
	}
	var ce CachedEvent
	decodeInto(t, evs[0], &ce)
	if ce.Digest != first.Digest() || ce.ResultBytes != len(cold) {
		t.Fatalf("cached payload = %+v", ce)
	}
}

// TestNoCacheMeansEverySubmissionRuns pins the opt-in: without a cache the
// determinism guarantee is exercised by real recomputation.
func TestNoCacheMeansEverySubmissionRuns(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	for i := 0; i < 2; i++ {
		j, err := s.Submit(fastLinkSpec(3))
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j, 30*time.Second)
		if j.Cached() {
			t.Fatal("job reported cached with caching disabled")
		}
	}
}

func TestIdempotencyKeyReturnsSameJob(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	j1, err := s.SubmitWith(fastLinkSpec(9), SubmitOptions{IdempotencyKey: "retry-1"})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.SubmitWith(fastLinkSpec(9), SubmitOptions{IdempotencyKey: "retry-1"})
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Fatalf("idempotent retry admitted a second job: %s vs %s", j1.ID(), j2.ID())
	}
	// A different key is a fresh submission even for the same spec.
	j3, err := s.SubmitWith(fastLinkSpec(9), SubmitOptions{IdempotencyKey: "retry-2"})
	if err != nil {
		t.Fatal(err)
	}
	if j3 == j1 {
		t.Fatal("distinct keys collapsed onto one job")
	}
}

func TestJobAndResultByDigest(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, Cache: cache.New(0)})
	j, err := s.Submit(fastLinkSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.JobByDigest(j.Digest())
	if err != nil || got != j {
		t.Fatalf("JobByDigest = %v, %v", got, err)
	}
	if _, err := s.JobByDigest("no-such-digest"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown digest error = %v, want ErrUnknownJob", err)
	}
	waitTerminal(t, j, 30*time.Second)
	body, ok := s.ResultByDigest(j.Digest())
	if !ok || !bytes.Equal(body, readAll(t, j)) {
		t.Fatalf("ResultByDigest = %d bytes, %v", len(body), ok)
	}
	if _, ok := s.ResultByDigest(slowLinkSpec().Digest()); ok {
		t.Fatal("ResultByDigest returned a body for a spec that never ran")
	}
}

// TestStoreRecoveryAcrossRestart is the durability contract end to end at
// the core layer: a "crashed" server (drain window 0 cancels its queued
// work, so no terminal records are written) restarted on the same data
// directory re-serves completed digests byte-identically and re-runs the
// interrupted submission.
func TestStoreRecoveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Shards: 1, Metrics: obs.NewRegistry(), Cache: cache.New(0), Store: st1})
	done, err := s1.Submit(fastLinkSpec(21))
	if err != nil {
		t.Fatal(err)
	}
	if waitTerminal(t, done, 30*time.Second).State != "done" {
		t.Fatalf("seed job failed: %q", done.Err())
	}
	coldBody := readAll(t, done)
	interrupted, err := s1.Submit(slowLinkSpec())
	if err != nil {
		t.Fatal(err)
	}
	s1.Drain(0) // window 0: the slow job is cancelled, like a crash
	if st := interrupted.State(); st != StateCancelled {
		t.Fatalf("interrupted job = %v, want cancelled", st)
	}
	st1.Close()

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2 := New(Config{Shards: 1, Metrics: obs.NewRegistry(), Cache: cache.New(0), Store: st2})
	defer s2.Drain(10 * time.Second)

	// The completed digest serves byte-identically, without re-running.
	body, ok := s2.ResultByDigest(done.Digest())
	if !ok || !bytes.Equal(body, coldBody) {
		t.Fatalf("restarted ResultByDigest = %d bytes, %v; want the original %d", len(body), ok, len(coldBody))
	}
	resub, err := s2.Submit(fastLinkSpec(21))
	if err != nil {
		t.Fatal(err)
	}
	if !resub.Cached() {
		t.Fatal("resubmission after restart missed the recovered cache")
	}
	if !bytes.Equal(readAll(t, resub), coldBody) {
		t.Fatal("recovered cache served different bytes")
	}

	// The interrupted submission was re-admitted under a fresh ID.
	requeued, err := s2.JobByDigest(interrupted.Digest())
	if err != nil {
		t.Fatalf("interrupted digest not re-admitted: %v", err)
	}
	if requeued.Cached() || requeued.State().Terminal() && requeued.State() != StateDone {
		t.Fatalf("requeued job state = %v, cached=%v", requeued.State(), requeued.Cached())
	}

	evs := s2.Journal().Snapshot(0)
	var sre StoreRecoveredEvent
	recovered := eventsOfType(evs, EventStoreRecovered)
	if len(recovered) != 1 {
		t.Fatalf("store_recovered events = %+v", recovered)
	}
	decodeInto(t, recovered[0], &sre)
	if sre.Completed != 1 || sre.Requeued != 1 || sre.CacheWarmed != 1 {
		t.Fatalf("store_recovered payload = %+v", sre)
	}
	if jr := eventsOfType(evs, EventJobRecovered); len(jr) != 1 || jr[0].Job != requeued.ID() {
		t.Fatalf("job_recovered events = %+v", jr)
	}
	// Cancel rather than wait out the million-packet job; its cancellation
	// writes no record, so it would simply replay again — the semantics
	// this test already proved.
	s2.Cancel(requeued.ID())
}

// TestFailedJobsSettleAcrossRestart: a deadline-failed job writes a
// settled marker, so a restart neither re-runs nor serves it.
func TestFailedJobsSettleAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Shards: 1, Metrics: obs.NewRegistry(), Cache: cache.New(0), Store: st1})
	spec := slowLinkSpec()
	spec.TimeoutMS = 30
	j, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j, 30*time.Second); st.State != "failed" {
		t.Fatalf("state = %s, want failed", st.State)
	}
	s1.Drain(5 * time.Second)
	st1.Close()

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovery()
	if len(rec.Failed) != 1 || len(rec.Pending) != 0 || len(rec.Completed) != 0 {
		t.Fatalf("recovery after failure = %+v, want one settled digest", rec)
	}
	s2 := New(Config{Shards: 1, Metrics: obs.NewRegistry(), Cache: cache.New(0), Store: st2})
	defer s2.Drain(5 * time.Second)
	if _, err := s2.JobByDigest(j.Digest()); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("failed digest was re-admitted: %v", err)
	}
	if _, ok := s2.ResultByDigest(j.Digest()); ok {
		t.Fatal("failed digest has a servable result")
	}
}
