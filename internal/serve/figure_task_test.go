package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"

	"cos/internal/experiments"
	"cos/internal/obs"
	"cos/internal/pool"
)

func taskSpec(task int) Spec {
	return Spec{Kind: KindFigureTask, Figure: "fig2", Scale: 0.4, Seed: 1, Workers: 1, Task: task}
}

// TestFigureTaskMatchesLocalRunTask: a figure_task job's record is exactly
// what the in-process TaskSet computes for the same index — the identity
// the fleet's byte-for-byte assembly stands on.
func TestFigureTaskMatchesLocalRunTask(t *testing.T) {
	s := New(Config{Shards: 1, Metrics: obs.NewRegistry()})
	defer s.Drain(30 * time.Second)

	spec := taskSpec(2)
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	if job.State() != StateDone {
		t.Fatalf("figure_task job ended %s: %v", job.State(), job.Err())
	}
	body, err := io.ReadAll(job.Result())
	if err != nil {
		t.Fatal(err)
	}
	var tr TaskRecord
	if err := json.Unmarshal(bytes.TrimSpace(body), &tr); err != nil {
		t.Fatalf("result is not one TaskRecord line: %v\n%s", err, body)
	}
	if tr.Type != "figure_task" || tr.Figure != "fig2" || tr.Task != 2 {
		t.Fatalf("TaskRecord header = %+v", tr)
	}

	ts, ok := experiments.Tasks("fig2", experiments.RunOptions{Scale: 0.4, Seed: 1, Workers: 1})
	if !ok {
		t.Fatal("fig2 lost its task decomposition")
	}
	want, err := ts.RunTask(t.Context(), 2, pool.TaskRNG(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tr.Record, want) {
		t.Errorf("served record %s differs from local RunTask %s", tr.Record, want)
	}
}

// TestFigureTaskValidation: bad indices, unknown figures, figures without
// a decomposition, and a task index on any other kind are all rejected at
// admission.
func TestFigureTaskValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"negative index", func() Spec { s := taskSpec(-1); return s }(), "task"},
		{"index past the set", func() Spec { s := taskSpec(1 << 20); return s }(), "task"},
		{"unknown figure", Spec{Kind: KindFigureTask, Figure: "fig999", Task: 0}, "fig999"},
		{"undecomposable figure", Spec{Kind: KindFigureTask, Figure: "fig10a", Task: 0}, "does not decompose"},
		{"task on a link spec", func() Spec {
			s := Spec{Kind: KindLink, Seed: 1, PayloadBytes: 256, Packets: 10, ControlBits: 32}
			s.Task = 3
			return s
		}(), "task"},
		{"task on a whole figure", Spec{Kind: KindFigure, Figure: "fig2", Task: 1}, "task"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestFigureTaskDigests: the task index participates in the canonical
// form (distinct tasks are distinct cache entries), and only for the
// figure_task kind — other kinds' digests carry no task field, pinned
// already by the canonical golden.
func TestFigureTaskDigests(t *testing.T) {
	a, b := taskSpec(0), taskSpec(1)
	if a.Digest() == b.Digest() {
		t.Error("task 0 and task 1 share a digest")
	}
	canon, err := Spec{Kind: KindLink, Seed: 1, PayloadBytes: 256, Packets: 10, ControlBits: 32}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(canon), `"task"`) {
		t.Errorf("link canonical form grew a task field: %s", canon)
	}
	taskCanon, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(taskCanon), `"task"`) {
		t.Errorf("figure_task canonical form lacks the task field: %s", taskCanon)
	}
}
