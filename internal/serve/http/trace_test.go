package servehttp_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cos/internal/obs"
	"cos/internal/serve"
	"cos/internal/serve/client"
	servehttp "cos/internal/serve/http"
)

// startTraceAPI is startAPI plus the raw base URL, for requests the typed
// client does not wrap (report endpoint, malformed headers).
func startTraceAPI(t *testing.T, cfg serve.Config) (*client.Client, string) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	srv := serve.New(cfg)
	ts := httptest.NewServer(servehttp.NewHandler(srv))
	t.Cleanup(func() {
		srv.Drain(10 * time.Second)
		ts.Close()
	})
	return client.New(ts.URL), ts.URL
}

func traceSpec(seed int64) serve.Spec {
	return serve.Spec{Kind: serve.KindLink, Seed: seed, Packets: 3, PayloadBytes: 64}
}

// TestTraceRoundTrip: submit with tracing over HTTP, fetch the trace via
// the typed client, and check the digest header addresses the body.
func TestTraceRoundTrip(t *testing.T) {
	c, base := startTraceAPI(t, serve.Config{Shards: 1})
	ctx := context.Background()

	st, err := c.Submit(ctx, traceSpec(11), client.SubmitOptions{Trace: true, ProbeEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || !final.Traced || final.TraceDigest == "" {
		t.Fatalf("final status = %+v, want done+traced with digest", final)
	}
	if final.ProbeEvery != 2 {
		t.Fatalf("probe_every = %d, want 2", final.ProbeEvery)
	}

	body, err := c.Trace(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(body)
	if got := hex.EncodeToString(sum[:]); got != final.TraceDigest {
		t.Fatalf("trace body sha256 %s, status digest %s", got, final.TraceDigest)
	}
	if final.TraceBytes != len(body) {
		t.Fatalf("trace_bytes = %d, body = %d", final.TraceBytes, len(body))
	}

	// Raw endpoint: content type and digest header.
	resp, err := http.Get(base + "/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace content type = %q", ct)
	}
	if d := resp.Header.Get(servehttp.HeaderTraceDigest); d != final.TraceDigest {
		t.Fatalf("%s = %q, want %q", servehttp.HeaderTraceDigest, d, final.TraceDigest)
	}
	if !bytes.Equal(raw, body) {
		t.Fatal("raw endpoint and client.Trace disagree")
	}

	// Digest-addressed fetch works too.
	resp, err = http.Get(base + "/jobs/" + final.Digest + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	byDigest, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(byDigest, body) {
		t.Fatal("digest-addressed trace differs from job-addressed trace")
	}
}

// TestTraceUnavailableTyped: an untraced job's trace fetch is a 404 with
// the trace_unavailable code, unwrapping to the serve sentinel.
func TestTraceUnavailableTyped(t *testing.T) {
	c, _ := startTraceAPI(t, serve.Config{Shards: 1})
	ctx := context.Background()

	st, err := c.Submit(ctx, traceSpec(13), client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	_, err = c.Trace(ctx, st.ID)
	if !errors.Is(err, serve.ErrTraceUnavailable) {
		t.Fatalf("err = %v, want serve.ErrTraceUnavailable", err)
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 || apiErr.Code != servehttp.CodeTraceUnavailable {
		t.Fatalf("err = %v, want 404 %s", err, servehttp.CodeTraceUnavailable)
	}
}

// TestTraceBadHeaders: malformed or inconsistent trace headers are 400s.
func TestTraceBadHeaders(t *testing.T) {
	_, base := startTraceAPI(t, serve.Config{Shards: 1})
	post := func(hdr map[string]string) *http.Response {
		t.Helper()
		req, err := http.NewRequest("POST", base+"/jobs",
			strings.NewReader(`{"kind":"link","seed":1,"packets":2,"payload_bytes":64}`))
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	cases := []map[string]string{
		{servehttp.HeaderTrace: "yes"},                                 // unparseable flag
		{servehttp.HeaderProbeEvery: "three"},                          // unparseable cadence
		{servehttp.HeaderProbeEvery: "4"},                              // cadence without tracing
		{servehttp.HeaderTrace: "1", servehttp.HeaderProbeEvery: "-1"}, // negative cadence
	}
	for _, hdr := range cases {
		if resp := post(hdr); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("headers %v: status %d, want 400", hdr, resp.StatusCode)
		}
	}
}

// TestTraceReportHTML: the report endpoint renders the captured trace as
// deterministic HTML.
func TestTraceReportHTML(t *testing.T) {
	c, base := startTraceAPI(t, serve.Config{Shards: 1})
	ctx := context.Background()

	st, err := c.Submit(ctx, traceSpec(17), client.SubmitOptions{Trace: true, ProbeEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	get := func() []byte {
		t.Helper()
		resp, err := http.Get(base + "/jobs/" + st.ID + "/trace/report")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("report status = %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
			t.Fatalf("report content type = %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	first := get()
	if !bytes.Contains(first, []byte("<html")) && !bytes.Contains(first, []byte("<!DOCTYPE")) {
		t.Fatalf("report does not look like HTML: %.80s", first)
	}
	if !bytes.Equal(first, get()) {
		t.Fatal("report HTML is not deterministic across fetches")
	}
}
