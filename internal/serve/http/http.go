// Package servehttp is the HTTP/JSON transport for internal/serve. It is
// the only place HTTP types touch the serve subsystem — the core stays
// transport-free per the repository's layering rule (net/http never enters
// library packages; the import-hygiene test freezes this).
//
// Routes:
//
//	POST /jobs              submit a serve.Spec; 202 + job status
//	GET  /jobs              list all job statuses
//	GET  /jobs/{id}         one job's status
//	GET  /jobs/{id}/result  stream the job's NDJSON results
//	POST /jobs/{id}/cancel  request cancellation
//	GET  /events            stream the journal as NDJSON or SSE
//	GET  /healthz           200 while admitting, 503 while draining
//
// Admission pressure maps to status codes: a full shard queue returns 429
// with a Retry-After hint, and a draining server returns 503.
package servehttp

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"cos/internal/serve"
)

// errorBody is the JSON error envelope for every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// RetryAfterSeconds is the hint sent with 429 responses.
const RetryAfterSeconds = "1"

// NewHandler routes the serve API onto s.
func NewHandler(s *serve.Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		submit(s, w, r)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := lookup(s, w, r)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, job.Status())
	})
	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		job, ok := lookup(s, w, r)
		if !ok {
			return
		}
		streamResult(job, w, r)
	})
	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		job, ok := lookup(s, w, r)
		if !ok {
			return
		}
		if err := s.Cancel(job.ID()); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, job.Status())
	})
	mux.HandleFunc("GET /events", func(w http.ResponseWriter, r *http.Request) {
		handleEvents(s, w, r)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.Draining() {
			writeError(w, http.StatusServiceUnavailable, serve.ErrDraining)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func submit(s *serve.Server, w http.ResponseWriter, r *http.Request) {
	var spec serve.Spec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.Submit(spec)
	switch {
	case err == nil:
		w.Header().Set("Location", "/jobs/"+job.ID())
		writeJSON(w, http.StatusAccepted, job.Status())
	case errors.Is(err, serve.ErrOverloaded):
		w.Header().Set("Retry-After", RetryAfterSeconds)
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, serve.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	default: // spec validation
		writeError(w, http.StatusBadRequest, err)
	}
}

func lookup(s *serve.Server, w http.ResponseWriter, r *http.Request) (*serve.Job, bool) {
	job, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return nil, false
	}
	return job, true
}

// streamResult copies the job's NDJSON stream to the client, flushing each
// chunk so records arrive while the job is still running. The copy ends at
// the job's terminal state (reader EOF) or when the client disconnects.
func streamResult(job *serve.Job, w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	reader := job.Result()
	buf := make([]byte, 32*1024)
	for {
		if r.Context().Err() != nil {
			return
		}
		n, err := reader.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return // io.EOF: stream complete
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}
