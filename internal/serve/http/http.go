// Package servehttp is the HTTP/JSON transport for internal/serve. It is
// the only place HTTP types touch the serve subsystem — the core stays
// transport-free per the repository's layering rule (net/http never enters
// library packages; the import-hygiene test freezes this).
//
// Routes:
//
//	POST /jobs                  submit a serve.Spec; 202 + job status
//	                            (200 + X-Cos-Cache: hit for a cache hit)
//	GET  /jobs                  list all job statuses
//	GET  /jobs/{key}            one job's status (key: job ID or spec digest)
//	GET  /jobs/{key}/result     stream the job's NDJSON results; a digest
//	                            with no live job serves the stored body
//	GET  /jobs/{key}/trace      the job's flight-recorder trace (NDJSON,
//	                            schema v2); blocks until the job is
//	                            terminal; 404 trace_unavailable for
//	                            untraced or unfinished jobs
//	GET  /jobs/{key}/trace/report  the same trace rendered as the
//	                            deterministic self-contained HTML report
//	POST /jobs/{key}/cancel     request cancellation
//	GET  /events                stream the journal as NDJSON or SSE
//	GET  /scenarios             list the registered scenario presets
//	GET  /healthz               admission health: 200 while admitting, 503
//	                            while draining, always with a JSON
//	                            serve.Health body (state, shard count,
//	                            per-shard queue depths, inflight)
//
// Every non-2xx response carries one JSON envelope:
//
//	{"error": {"code": "<machine code>", "message": "<detail>",
//	           "retry_after_ms": 1000}}
//
// with retry_after_ms present only on 429. The code vocabulary is the
// Code* constants below; clients switch on codes, never on message text.
// Admission pressure maps to status codes: a full shard queue returns 429
// (code "overloaded") with a Retry-After hint, and a draining server
// returns 503 (code "draining").
//
// POST /jobs honors request headers: X-Cos-Idempotency-Key deduplicates
// retries (a repeated key returns the first admission's job), X-Cos-Trace
// ("1"/"true") asks for a flight-recorder trace, and X-Cos-Probe-Every
// sets the trace's PHY-probe cadence. Bodies over 1 MiB are refused with
// 413. The response's X-Cos-Cache header reports whether the
// content-addressed result cache served the submission ("hit") or the job
// ran ("miss").
package servehttp

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"cos/internal/scenario"
	"cos/internal/serve"
	"cos/internal/trace"
)

// Error codes carried in the error envelope. Stable API: clients branch on
// these, not on HTTP status text or message wording.
const (
	// CodeInvalidSpec: the spec decoded but failed validation.
	CodeInvalidSpec = "invalid_spec"
	// CodeInvalidScenario: the spec names a scenario that is not registered
	// or whose parameters the scenario rejects.
	CodeInvalidScenario = "invalid_scenario"
	// CodeBadRequest: the request itself is malformed (bad JSON, unknown
	// fields, bad query parameters).
	CodeBadRequest = "bad_request"
	// CodeUnknownJob: no job (or stored result) matches the key.
	CodeUnknownJob = "unknown_job"
	// CodePayloadTooLarge: the request body exceeded MaxSpecBytes.
	CodePayloadTooLarge = "payload_too_large"
	// CodeOverloaded: the shard queue is full; retry after retry_after_ms.
	CodeOverloaded = "overloaded"
	// CodeDraining: the server is shutting down and admits nothing.
	CodeDraining = "draining"
	// CodeNotFound: the requested resource is not served here (e.g. the
	// event journal is disabled).
	CodeNotFound = "not_found"
	// CodeTraceUnavailable: the job exists but has no retrievable
	// flight-recorder trace (untraced submission, not finished done, or
	// the persisted trace body is gone).
	CodeTraceUnavailable = "trace_unavailable"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal = "internal"
)

// ErrorBody is the JSON error envelope for every non-2xx response.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// ErrorInfo is the envelope's payload.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMS hints when to retry (429 only).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// RetryAfterSeconds is the Retry-After header sent with 429 responses;
// retryAfterMS is the same hint inside the envelope.
const (
	RetryAfterSeconds = "1"
	retryAfterMS      = 1000
)

// MaxSpecBytes bounds a POST /jobs body; larger requests get 413.
const MaxSpecBytes = 1 << 20

// Response headers.
const (
	// HeaderCache reports the submit cache outcome: "hit" or "miss".
	HeaderCache = "X-Cos-Cache"
	// HeaderIdempotencyKey is the request header carrying a client retry
	// key (serve.SubmitOptions.IdempotencyKey).
	HeaderIdempotencyKey = "X-Cos-Idempotency-Key"
	// HeaderTrace is the POST /jobs request header asking for a
	// flight-recorder trace ("1" or "true"; serve.SubmitOptions.Trace).
	HeaderTrace = "X-Cos-Trace"
	// HeaderProbeEvery is the POST /jobs request header setting the traced
	// job's PHY-probe cadence (serve.SubmitOptions.ProbeEvery).
	HeaderProbeEvery = "X-Cos-Probe-Every"
	// HeaderTraceDigest reports the served trace body's content address on
	// GET /jobs/{key}/trace responses.
	HeaderTraceDigest = "X-Cos-Trace-Digest"
)

// NewHandler routes the serve API onto s.
func NewHandler(s *serve.Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		submit(s, w, r)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})
	mux.HandleFunc("GET /jobs/{key}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := lookup(s, w, r)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, job.Status())
	})
	mux.HandleFunc("GET /jobs/{key}/result", func(w http.ResponseWriter, r *http.Request) {
		streamResultByKey(s, w, r)
	})
	mux.HandleFunc("GET /jobs/{key}/trace", func(w http.ResponseWriter, r *http.Request) {
		body, digest, ok := resolveTrace(s, w, r)
		if !ok {
			return
		}
		w.Header().Set(HeaderTraceDigest, digest)
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	})
	mux.HandleFunc("GET /jobs/{key}/trace/report", func(w http.ResponseWriter, r *http.Request) {
		body, digest, ok := resolveTrace(s, w, r)
		if !ok {
			return
		}
		events, version, err := trace.ReadVersioned(bytes.NewReader(body))
		if err != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, err)
			return
		}
		w.Header().Set(HeaderTraceDigest, digest)
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		trace.WriteReport(w, events, version)
	})
	mux.HandleFunc("POST /jobs/{key}/cancel", func(w http.ResponseWriter, r *http.Request) {
		job, ok := lookup(s, w, r)
		if !ok {
			return
		}
		if err := s.Cancel(job.ID()); err != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, err)
			return
		}
		writeJSON(w, http.StatusOK, job.Status())
	})
	mux.HandleFunc("GET /events", func(w http.ResponseWriter, r *http.Request) {
		handleEvents(s, w, r)
	})
	mux.HandleFunc("GET /scenarios", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, Scenarios())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Both status codes carry the same JSON Health body; the state
		// field explains the code, and the queue numbers give health-gating
		// clients (the fleet coordinator) and operators pressure signal.
		h := s.Health()
		code := http.StatusOK
		if h.State != "ok" {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
	})
	return mux
}

func submit(s *serve.Server, w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxSpecBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, CodePayloadTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		}
		return
	}
	spec, err := serve.DecodeSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	opts := serve.SubmitOptions{
		IdempotencyKey: r.Header.Get(HeaderIdempotencyKey),
	}
	switch v := r.Header.Get(HeaderTrace); v {
	case "", "0", "false":
	case "1", "true":
		opts.Trace = true
	default:
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			errors.New("invalid "+HeaderTrace+" header: "+v))
		return
	}
	if v := r.Header.Get(HeaderProbeEvery); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				errors.New("invalid "+HeaderProbeEvery+" header: "+v))
			return
		}
		opts.ProbeEvery = n
	}
	job, err := s.SubmitWith(spec, opts)
	switch {
	case err == nil:
		w.Header().Set("Location", "/jobs/"+job.ID())
		if job.Cached() {
			// Born terminal from the result cache: the full stream already
			// exists, so this is a 200, not an accepted-for-processing 202.
			w.Header().Set(HeaderCache, "hit")
			writeJSON(w, http.StatusOK, job.Status())
		} else {
			w.Header().Set(HeaderCache, "miss")
			writeJSON(w, http.StatusAccepted, job.Status())
		}
	case errors.Is(err, serve.ErrOverloaded):
		w.Header().Set("Retry-After", RetryAfterSeconds)
		writeError(w, http.StatusTooManyRequests, CodeOverloaded, err)
	case errors.Is(err, serve.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, CodeDraining, err)
	case errors.Is(err, serve.ErrInvalidTraceOptions):
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
	case errors.Is(err, serve.ErrInvalidScenario):
		writeError(w, http.StatusBadRequest, CodeInvalidScenario, err)
	default: // spec validation
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, err)
	}
}

// ScenarioInfo is one GET /scenarios entry: a registered preset with its
// component names made explicit (defaults filled in) and the preset's
// tunable parameter vector, if any.
type ScenarioInfo struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Channel     string `json:"channel"`
	Interferer  string `json:"interferer,omitempty"`
	Embedding   string `json:"embedding"`
	Mobility    bool   `json:"mobility,omitempty"`
	// ParamsFor names the component user-supplied parameters configure
	// ("channel", "interferer", or "embedding"); Params are its defaults.
	ParamsFor string    `json:"params_for,omitempty"`
	Params    []float64 `json:"params,omitempty"`
}

// Scenarios returns the GET /scenarios payload: every registered scenario
// preset, sorted by name — deterministic across processes and restarts.
func Scenarios() []ScenarioInfo {
	list := scenario.List()
	out := make([]ScenarioInfo, 0, len(list))
	for _, s := range list {
		info := ScenarioInfo{
			Name:        s.Name,
			Description: s.Description,
			Channel:     s.Channel,
			Interferer:  s.Interferer,
			Embedding:   s.Embedding,
			Mobility:    s.Mobility,
			ParamsFor:   s.ParamsFor,
			Params:      s.Params(),
		}
		if info.Channel == "" {
			info.Channel = scenario.DefaultChannel
		}
		if info.Embedding == "" {
			info.Embedding = scenario.DefaultEmbedding
		}
		out = append(out, info)
	}
	return out
}

// resolveTrace resolves {key} to a finished flight-recorder trace body
// and its content address. A live job is waited to its terminal state
// first (honoring client disconnect). Digest keys always consult
// TraceByDigest, which prefers the newest job's capture but falls back
// to the persisted trace artifact — so a digest stays servable after a
// daemon restart even when an untraced cache-hit resubmission has since
// become the digest's newest job. On failure the error envelope has
// already been written.
func resolveTrace(s *serve.Server, w http.ResponseWriter, r *http.Request) (body []byte, digest string, ok bool) {
	key := r.PathValue("key")
	if serve.IsDigest(key) {
		job, jerr := s.JobByDigest(key)
		if jerr == nil {
			select {
			case <-job.Done():
			case <-r.Context().Done():
				return nil, "", false
			}
		}
		b, d, terr := s.TraceByDigest(key)
		if terr == nil {
			return b, d, true
		}
		if jerr != nil {
			writeError(w, http.StatusNotFound, CodeUnknownJob, serve.ErrUnknownJob)
		} else {
			writeError(w, http.StatusNotFound, CodeTraceUnavailable, terr)
		}
		return nil, "", false
	}
	job, err := s.Job(key)
	if err != nil {
		writeError(w, http.StatusNotFound, CodeUnknownJob, err)
		return nil, "", false
	}
	select {
	case <-job.Done():
	case <-r.Context().Done():
		return nil, "", false
	}
	b, d, err := s.JobTrace(job)
	if err != nil {
		writeError(w, http.StatusNotFound, CodeTraceUnavailable, err)
		return nil, "", false
	}
	return b, d, true
}

// lookup resolves the {key} path element — a job ID, or a spec digest
// resolving to the newest job for that spec — to a live job.
func lookup(s *serve.Server, w http.ResponseWriter, r *http.Request) (*serve.Job, bool) {
	key := r.PathValue("key")
	var (
		job *serve.Job
		err error
	)
	if serve.IsDigest(key) {
		job, err = s.JobByDigest(key)
	} else {
		job, err = s.Job(key)
	}
	if err != nil {
		writeError(w, http.StatusNotFound, CodeUnknownJob, err)
		return nil, false
	}
	return job, true
}

// streamResultByKey serves GET /jobs/{key}/result. A job ID (or a digest
// with a live job) streams that job's NDJSON as it is produced. A digest
// with no live job — e.g. after a daemon restart — falls back to the
// content-addressed result store and serves the finished body directly.
func streamResultByKey(s *serve.Server, w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if serve.IsDigest(key) {
		if job, err := s.JobByDigest(key); err == nil {
			streamResult(job, w, r)
			return
		}
		if body, ok := s.ResultByDigest(key); ok {
			w.Header().Set(HeaderCache, "hit")
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			w.Write(body)
			return
		}
		writeError(w, http.StatusNotFound, CodeUnknownJob, serve.ErrUnknownJob)
		return
	}
	job, err := s.Job(key)
	if err != nil {
		writeError(w, http.StatusNotFound, CodeUnknownJob, err)
		return
	}
	streamResult(job, w, r)
}

// streamResult copies the job's NDJSON stream to the client, flushing each
// chunk so records arrive while the job is still running. The copy ends at
// the job's terminal state (reader EOF) or when the client disconnects.
func streamResult(job *serve.Job, w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	reader := job.Result()
	buf := make([]byte, 32*1024)
	for {
		if r.Context().Err() != nil {
			return
		}
		n, err := reader.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return // io.EOF: stream complete
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError sends the typed error envelope. The retry hint rides along
// automatically for CodeOverloaded.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	info := ErrorInfo{Code: code, Message: err.Error()}
	if code == CodeOverloaded {
		info.RetryAfterMS = retryAfterMS
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorBody{Error: info})
}
