package servehttp_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"cos/internal/serve"
	"cos/internal/serve/cache"
	"cos/internal/serve/client"
	servehttp "cos/internal/serve/http"
)

// postRaw submits a raw body straight to POST /jobs, bypassing the client,
// for wire-level assertions.
func postRaw(t *testing.T, c *client.Client, body []byte, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeEnvelope(t *testing.T, r io.Reader) servehttp.ErrorBody {
	t.Helper()
	var env servehttp.ErrorBody
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		t.Fatalf("decoding error envelope: %v", err)
	}
	return env
}

// TestErrorEnvelopeCodes pins the typed envelope across the error surface:
// every non-2xx response is {"error":{"code","message",...}} with a stable
// machine code, and the client maps codes onto errors.Is sentinels.
func TestErrorEnvelopeCodes(t *testing.T) {
	srv, c := startAPI(t, serve.Config{Shards: 1, QueueDepth: 1})

	// 400 bad_request: malformed JSON.
	resp := postRaw(t, c, []byte(`{"kind":`), nil)
	if env := decodeEnvelope(t, resp.Body); resp.StatusCode != 400 || env.Error.Code != servehttp.CodeBadRequest {
		t.Fatalf("malformed JSON: status %d code %q", resp.StatusCode, env.Error.Code)
	}

	// 400 bad_request: unknown field (DecodeSpec strictness at the edge).
	resp = postRaw(t, c, []byte(`{"kind":"link","packtes":5}`), nil)
	if env := decodeEnvelope(t, resp.Body); resp.StatusCode != 400 || env.Error.Code != servehttp.CodeBadRequest {
		t.Fatalf("unknown field: status %d code %q", resp.StatusCode, env.Error.Code)
	}

	// 400 invalid_spec: well-formed but semantically invalid.
	resp = postRaw(t, c, []byte(`{"kind":"bogus"}`), nil)
	if env := decodeEnvelope(t, resp.Body); resp.StatusCode != 400 || env.Error.Code != servehttp.CodeInvalidSpec {
		t.Fatalf("invalid spec: status %d code %q", resp.StatusCode, env.Error.Code)
	}

	// 413 payload_too_large.
	huge := []byte(`{"kind":"link","figure":"` + strings.Repeat("x", servehttp.MaxSpecBytes) + `"}`)
	resp = postRaw(t, c, huge, nil)
	if env := decodeEnvelope(t, resp.Body); resp.StatusCode != 413 || env.Error.Code != servehttp.CodePayloadTooLarge {
		t.Fatalf("oversized body: status %d code %q", resp.StatusCode, env.Error.Code)
	}

	// 404 unknown_job, via the client's typed error.
	_, err := c.Status(context.Background(), "job-424242")
	if !errors.Is(err, serve.ErrUnknownJob) {
		t.Fatalf("unknown job error = %v, want errors.Is ErrUnknownJob", err)
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != client.CodeUnknownJob {
		t.Fatalf("unknown job APIError = %+v", apiErr)
	}

	// 429 overloaded with retry hints in header and envelope.
	slow := serve.Spec{Kind: serve.KindLink, Packets: 1e6, PayloadBytes: 64}
	first, err := c.Submit(context.Background(), slow, client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, c, first.ID)
	if _, err := c.Submit(context.Background(), slow, client.SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(context.Background(), slow, client.SubmitOptions{})
	if !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("overload error = %v, want errors.Is ErrOverloaded", err)
	}
	if !errors.As(err, &apiErr) || apiErr.Code != client.CodeOverloaded || apiErr.RetryAfter <= 0 {
		t.Fatalf("overload APIError = %+v", apiErr)
	}

	// 503 draining.
	srv.Drain(0)
	_, err = c.Submit(context.Background(), serve.Spec{Kind: serve.KindLink}, client.SubmitOptions{})
	if !errors.Is(err, serve.ErrDraining) {
		t.Fatalf("draining error = %v, want errors.Is ErrDraining", err)
	}
	if !errors.As(err, &apiErr) || apiErr.Code != client.CodeDraining {
		t.Fatalf("draining APIError = %+v", apiErr)
	}
}

// TestSubmitCacheHitOverHTTP pins the wire contract of a cache hit: 200
// (not 202), X-Cos-Cache: hit, a terminal cached status, and a
// byte-identical result stream addressable by job ID or digest.
func TestSubmitCacheHitOverHTTP(t *testing.T) {
	_, c := startAPI(t, serve.Config{Shards: 1, Cache: cache.New(0)})
	ctx := context.Background()
	spec := serve.Spec{Kind: serve.KindLink, Seed: 5, Packets: 2, PayloadBytes: 64}
	payload, _ := json.Marshal(spec)

	cold := postRaw(t, c, payload, nil)
	if cold.StatusCode != http.StatusAccepted || cold.Header.Get(servehttp.HeaderCache) != "miss" {
		t.Fatalf("cold submit: status %d, %s=%q; want 202 miss",
			cold.StatusCode, servehttp.HeaderCache, cold.Header.Get(servehttp.HeaderCache))
	}
	var coldSt serve.Status
	if err := json.NewDecoder(cold.Body).Decode(&coldSt); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, coldSt.ID); err != nil {
		t.Fatal(err)
	}
	coldBody, err := c.ResultBytes(ctx, coldSt.ID)
	if err != nil {
		t.Fatal(err)
	}

	warm := postRaw(t, c, payload, nil)
	if warm.StatusCode != http.StatusOK || warm.Header.Get(servehttp.HeaderCache) != "hit" {
		t.Fatalf("warm submit: status %d, %s=%q; want 200 hit",
			warm.StatusCode, servehttp.HeaderCache, warm.Header.Get(servehttp.HeaderCache))
	}
	var warmSt serve.Status
	if err := json.NewDecoder(warm.Body).Decode(&warmSt); err != nil {
		t.Fatal(err)
	}
	if !warmSt.Cached || !warmSt.Terminal || warmSt.State != "done" {
		t.Fatalf("warm status = %+v", warmSt)
	}
	if warmSt.Digest != coldSt.Digest || warmSt.Digest == "" {
		t.Fatalf("digest drift: %q vs %q", warmSt.Digest, coldSt.Digest)
	}

	warmBody, err := c.ResultBytes(ctx, warmSt.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatal("cache hit served different bytes than the original run")
	}

	// Digest addressing: status and result resolve without a job ID.
	byDigest, err := c.Status(ctx, warmSt.Digest)
	if err != nil || byDigest.Digest != warmSt.Digest {
		t.Fatalf("status by digest = %+v, %v", byDigest, err)
	}
	digestBody, err := c.ResultBytes(ctx, warmSt.Digest)
	if err != nil || !bytes.Equal(digestBody, coldBody) {
		t.Fatalf("result by digest: %d bytes, %v", len(digestBody), err)
	}
}

// TestIdempotencyKeyOverHTTP: retries carrying the same key return the
// same job instead of admitting another.
func TestIdempotencyKeyOverHTTP(t *testing.T) {
	_, c := startAPI(t, serve.Config{Shards: 1})
	ctx := context.Background()
	spec := serve.Spec{Kind: serve.KindLink, Seed: 6, Packets: 2, PayloadBytes: 64}

	first, err := c.Submit(ctx, spec, client.SubmitOptions{IdempotencyKey: "req-42"})
	if err != nil {
		t.Fatal(err)
	}
	retry, err := c.Submit(ctx, spec, client.SubmitOptions{IdempotencyKey: "req-42"})
	if err != nil {
		t.Fatal(err)
	}
	if retry.ID != first.ID {
		t.Fatalf("idempotent retry admitted a new job: %s vs %s", retry.ID, first.ID)
	}
	fresh, err := c.Submit(ctx, spec, client.SubmitOptions{IdempotencyKey: "req-43"})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID == first.ID {
		t.Fatal("distinct keys collapsed onto one job")
	}
	if _, err := c.Wait(ctx, first.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, fresh.ID); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitDeadlineOption: an expired deadline fails fast client-side.
func TestSubmitDeadlineOption(t *testing.T) {
	_, c := startAPI(t, serve.Config{Shards: 1})
	_, err := c.Submit(context.Background(), serve.Spec{Kind: serve.KindLink},
		client.SubmitOptions{Deadline: time.Now().Add(-time.Second)})
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v, want DeadlineExceeded", err)
	}
}
