package servehttp

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"

	"cos/internal/obs/event"
	"cos/internal/serve"
)

var (
	errJournalDisabled = errors.New("event journal disabled")
	errBadBuf          = errors.New("buf must be a positive integer")
)

// GET /events streams the server's journal.
//
// Formats:
//
//	default            NDJSON — one event JSON object per line
//	Accept: text/event-stream (or ?sse=1)
//	                   SSE — "id: <seq>" + "data: <json>" frames, so
//	                   EventSource reconnects resume via Last-Event-ID
//
// Query parameters:
//
//	since=N    replay retained events with seq > N before going live
//	           (SSE reconnects may send Last-Event-ID instead)
//	type=a,b   keep only these event types
//	job=ID     keep only events for this job (typed "" events still match
//	           when job is empty)
//	follow=0   snapshot mode: send the replay, then close
//	buf=N      subscriber channel capacity (default 64)
//
// The subscription never blocks the server: a slow consumer has its oldest
// pending events dropped, and the gap is reported in-band as a synthetic
// {"seq":0,"type":"events_dropped","data":{"dropped":N}} record before the
// next real event.
func handleEvents(s *serve.Server, w http.ResponseWriter, r *http.Request) {
	j := s.Journal()
	if j == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, errJournalDisabled)
		return
	}
	q := r.URL.Query()

	since, err := parseUint(q.Get("since"))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	// SSE reconnects send the last seen id as a header.
	if h := r.Header.Get("Last-Event-ID"); h != "" && q.Get("since") == "" {
		if v, err := parseUint(h); err == nil {
			since = v
		}
	}
	buf := 64
	if v := q.Get("buf"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, errBadBuf)
			return
		}
		buf = n
	}
	follow := q.Get("follow") != "0"
	keep := eventFilter(q.Get("type"), q.Get("job"))
	sse := q.Get("sse") == "1" || strings.Contains(r.Header.Get("Accept"), "text/event-stream")

	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers out now so clients see the stream open even if
		// no event arrives for a while.
		flusher.Flush()
	}

	// A resume point older than the ring's oldest retained event means the
	// client lost events to eviction; measure before subscribing so the
	// replay that follows starts right after the reported gap.
	evicted := uint64(0)
	if oldest := j.OldestSeq(); since > 0 && oldest > since+1 {
		evicted = oldest - since - 1
	}
	sub := j.Subscribe(since, buf)
	defer sub.Cancel()

	write := func(ev event.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if sse {
			// seq 0 marks synthetic gap records; real events carry their
			// seq as the SSE id for Last-Event-ID resume.
			if ev.Seq > 0 {
				if _, err := w.Write([]byte("id: " + strconv.FormatUint(ev.Seq, 10) + "\n")); err != nil {
					return false
				}
			}
			if _, err := w.Write(append(append([]byte("data: "), data...), '\n', '\n')); err != nil {
				return false
			}
		} else {
			if _, err := w.Write(append(data, '\n')); err != nil {
				return false
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	if evicted > 0 && !write(gapEvent(evicted)) {
		return
	}

	// The subscription channel is pre-filled with the replay and closes when
	// the journal closes; snapshot mode stops once the replay drains.
	replayEnd := j.LastSeq()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-sub.C():
			if !ok {
				return
			}
			if n := sub.TakeDropped(); n > 0 {
				if !write(gapEvent(n)) {
					return
				}
			}
			if keep(ev) && !write(ev) {
				return
			}
			if !follow && ev.Seq >= replayEnd {
				return
			}
		default:
			if !follow {
				return // snapshot mode: replay drained
			}
			// Block until the next event or disconnect.
			select {
			case <-ctx.Done():
				return
			case ev, ok := <-sub.C():
				if !ok {
					return
				}
				if n := sub.TakeDropped(); n > 0 {
					if !write(gapEvent(n)) {
						return
					}
				}
				if keep(ev) && !write(ev) {
					return
				}
			}
		}
	}
}

// gapEvent is the in-band marker for events lost to a slow consumer. Seq 0
// distinguishes it from journal records, which start at 1.
func gapEvent(n uint64) event.Event {
	data, _ := json.Marshal(map[string]uint64{"dropped": n})
	return event.Event{Type: "events_dropped", Data: data}
}

// eventFilter compiles the type/job query parameters into a predicate.
func eventFilter(types, job string) func(event.Event) bool {
	var want map[string]bool
	if types != "" {
		want = make(map[string]bool)
		for _, t := range strings.Split(types, ",") {
			if t = strings.TrimSpace(t); t != "" {
				want[t] = true
			}
		}
	}
	return func(ev event.Event) bool {
		if want != nil && !want[ev.Type] {
			return false
		}
		if job != "" && ev.Job != job {
			return false
		}
		return true
	}
}

func parseUint(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseUint(s, 10, 64)
}
