package servehttp_test

// Scenario plumbing through the HTTP API: the GET /scenarios listing, the
// typed invalid_scenario rejection, and end-to-end jobs running non-default
// worlds (the hybrid BSC/PEC outdoor channel and the OFDM-padding
// embedding) with deterministic content-addressed results.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"cos/internal/serve"
	"cos/internal/serve/client"
	servehttp "cos/internal/serve/http"
)

// TestScenariosEndpoint pins GET /scenarios: 200, sorted deterministic
// JSON matching the registry snapshot, built-in presets present with their
// components made explicit.
func TestScenariosEndpoint(t *testing.T) {
	srv, c := startAPI(t, serve.Config{Shards: 1})
	_ = srv

	resp, err := http.Get(c.BaseURL + "/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /scenarios = %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	var got []servehttp.ScenarioInfo
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}

	// The endpoint serves exactly the registry snapshot...
	want, err := json.MarshalIndent(servehttp.Scenarios(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(bytes.TrimRight(body, "\n")) != string(want) {
		t.Fatalf("GET /scenarios body drifted from servehttp.Scenarios():\n got: %s\nwant: %s", body, want)
	}

	// ...which is sorted, contains the built-ins, and spells defaults out.
	wantNames := []string{"default", "hybrid-bscpec", "mobile", "ofdm-padding", "pulse"}
	if len(got) != len(wantNames) {
		t.Fatalf("got %d scenarios, want %d: %+v", len(got), len(wantNames), got)
	}
	for i, name := range wantNames {
		if got[i].Name != name {
			t.Errorf("scenario[%d] = %q, want %q (sorted order)", i, got[i].Name, name)
		}
		if got[i].Channel == "" || got[i].Embedding == "" {
			t.Errorf("scenario %q has implicit components: %+v", name, got[i])
		}
	}
	if got[4].Name != "pulse" || got[4].Interferer != "pulse" || len(got[4].Params) != 3 {
		t.Errorf("pulse preset = %+v, want interferer=pulse with 3 default params", got[4])
	}
}

// TestSubmitUnknownScenario pins the typed rejection: an unregistered
// scenario name is a 400 with code invalid_scenario, not a generic
// invalid_spec.
func TestSubmitUnknownScenario(t *testing.T) {
	_, c := startAPI(t, serve.Config{Shards: 1})

	body := []byte(`{"kind":"link","packets":1,"scenario":"no-such-world"}`)
	resp, err := http.Post(c.BaseURL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var envelope servehttp.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != servehttp.CodeInvalidScenario {
		t.Fatalf("error code = %q, want %q (message %q)",
			envelope.Error.Code, servehttp.CodeInvalidScenario, envelope.Error.Message)
	}
}

// TestScenarioJobsEndToEnd runs the two new worlds through the full serve
// stack by scenario name and proves their results are deterministic and
// content-addressed: resubmitting the same spec is a cache hit on the same
// digest with a byte-identical body.
func TestScenarioJobsEndToEnd(t *testing.T) {
	_, c := startAPI(t, serve.Config{Shards: 2})
	ctx := context.Background()

	for _, scen := range []string{"hybrid-bscpec", "ofdm-padding"} {
		spec := serve.Spec{Kind: serve.KindLink, Seed: 5, Packets: 3, PayloadBytes: 256, Scenario: scen}

		st, err := c.Submit(ctx, spec, client.SubmitOptions{})
		if err != nil {
			t.Fatalf("%s: %v", scen, err)
		}
		final, err := c.Wait(ctx, st.ID)
		if err != nil {
			t.Fatalf("%s: %v", scen, err)
		}
		if final.State != "done" {
			t.Fatalf("%s: state = %s (err %q), want done", scen, final.State, final.Error)
		}
		body1, err := c.ResultBytes(ctx, st.ID)
		if err != nil {
			t.Fatalf("%s: %v", scen, err)
		}

		// Resubmit: the content-addressed cache must serve the identical
		// body for the identical spec digest.
		st2, err := c.Submit(ctx, spec, client.SubmitOptions{})
		if err != nil {
			t.Fatalf("%s resubmit: %v", scen, err)
		}
		if st2.Digest != st.Digest {
			t.Fatalf("%s: resubmitted digest %s != %s", scen, st2.Digest, st.Digest)
		}
		final2, err := c.Wait(ctx, st2.ID)
		if err != nil {
			t.Fatalf("%s resubmit: %v", scen, err)
		}
		if final2.State != "done" {
			t.Fatalf("%s resubmit: state = %s, want done", scen, final2.State)
		}
		body2, err := c.ResultBytes(ctx, st2.ID)
		if err != nil {
			t.Fatalf("%s resubmit: %v", scen, err)
		}
		if !bytes.Equal(body1, body2) {
			t.Fatalf("%s: resubmitted result differs from the first run", scen)
		}
	}
}

// TestScenarioDigestCollapsesDefaults proves the wire-level back-compat
// rule end-to-end: a spec without a scenario field and the same spec
// naming "default" explicitly resolve to the same job digest.
func TestScenarioDigestCollapsesDefaults(t *testing.T) {
	_, c := startAPI(t, serve.Config{Shards: 1})
	ctx := context.Background()

	bare := serve.Spec{Kind: serve.KindLink, Seed: 9, Packets: 1, PayloadBytes: 64}
	explicit := bare
	explicit.Scenario = "default"

	st1, err := c.Submit(ctx, bare, client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.Submit(ctx, explicit, client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st1.Digest != st2.Digest {
		t.Fatalf("digest with scenario \"default\" = %s, without = %s; want equal", st2.Digest, st1.Digest)
	}
}
