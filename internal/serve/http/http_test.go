package servehttp_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cos/internal/obs"
	"cos/internal/serve"
	"cos/internal/serve/client"
	servehttp "cos/internal/serve/http"
)

// startAPI spins up a serve core behind the HTTP handler and returns a
// client pointed at it.
func startAPI(t *testing.T, cfg serve.Config) (*serve.Server, *client.Client) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	srv := serve.New(cfg)
	ts := httptest.NewServer(servehttp.NewHandler(srv))
	t.Cleanup(func() {
		srv.Drain(10 * time.Second)
		ts.Close()
	})
	return srv, client.New(ts.URL)
}

func TestSubmitStatusAndResultRoundTrip(t *testing.T) {
	_, c := startAPI(t, serve.Config{Shards: 2})
	ctx := context.Background()

	st, err := c.Submit(ctx, serve.Spec{Kind: serve.KindLink, Seed: 5, Packets: 2, PayloadBytes: 64}, client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Kind != serve.KindLink {
		t.Fatalf("submit status = %+v", st)
	}

	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" {
		t.Fatalf("state = %s (err %q), want done", final.State, final.Error)
	}

	body, err := c.ResultBytes(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) != 3 { // 2 packets + summary
		t.Fatalf("got %d NDJSON lines, want 3:\n%s", len(lines), body)
	}
	for _, ln := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("invalid NDJSON line %q: %v", ln, err)
		}
	}

	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != st.ID {
		t.Fatalf("jobs list = %+v", jobs)
	}

	healthy, err := c.Healthy(ctx)
	if err != nil || !healthy {
		t.Fatalf("healthz = %v, %v; want healthy", healthy, err)
	}
}

func TestSubmitValidationError(t *testing.T) {
	_, c := startAPI(t, serve.Config{Shards: 1})
	_, err := c.Submit(context.Background(), serve.Spec{Kind: "bogus"}, client.SubmitOptions{})
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
	if apiErr.Message == "" {
		t.Fatal("400 response carried no error message")
	}
}

func TestSubmitUnknownFieldRejected(t *testing.T) {
	_, c := startAPI(t, serve.Config{Shards: 1})
	payload, _ := json.Marshal(map[string]any{"kind": "link", "packtes": 5}) // typo'd field
	resp, err := http.Post(c.BaseURL+"/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("submit with unknown field: status %d, want 400", resp.StatusCode)
	}
}

func TestOverloadReturns429WithRetryAfter(t *testing.T) {
	_, c := startAPI(t, serve.Config{Shards: 1, QueueDepth: 1})
	ctx := context.Background()

	slow := serve.Spec{Kind: serve.KindLink, Packets: 1e6, PayloadBytes: 64}
	first, err := c.Submit(ctx, slow, client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first job to leave the queue, then fill it again.
	waitRunning(t, c, first.ID)
	if _, err := c.Submit(ctx, slow, client.SubmitOptions{}); err != nil {
		t.Fatal(err)
	}

	_, err = c.Submit(ctx, slow, client.SubmitOptions{})
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || !apiErr.Overloaded() {
		t.Fatalf("err = %v, want 429 APIError", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatalf("429 carried no Retry-After hint: %+v", apiErr)
	}

	// Clean up the unfinishable jobs so the test server drains quickly.
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := c.Cancel(ctx, j.ID); err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range jobs {
		final, err := c.WaitPoll(ctx, j.ID, 5*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != "cancelled" {
			t.Fatalf("job %s: state %s, want cancelled", j.ID, final.State)
		}
	}
}

func TestDrainingReturns503(t *testing.T) {
	srv, c := startAPI(t, serve.Config{Shards: 1})
	ctx := context.Background()
	srv.Drain(time.Second)

	_, err := c.Submit(ctx, serve.Spec{Kind: serve.KindLink, Packets: 1, PayloadBytes: 64}, client.SubmitOptions{})
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || !apiErr.Draining() {
		t.Fatalf("submit on draining server: err = %v, want 503 APIError", err)
	}
	if healthy, err := c.Healthy(ctx); err != nil || healthy {
		t.Fatalf("healthz while draining = %v, %v; want unhealthy", healthy, err)
	}
}

func TestUnknownJob404(t *testing.T) {
	_, c := startAPI(t, serve.Config{Shards: 1})
	_, err := c.Status(context.Background(), "job-424242")
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("err = %v, want 404 APIError", err)
	}
}

// TestResultStreamsWhileRunning proves records arrive before the job is
// terminal: the NDJSON stream is a live feed, not a post-hoc dump.
func TestResultStreamsWhileRunning(t *testing.T) {
	_, c := startAPI(t, serve.Config{Shards: 1})
	ctx := context.Background()

	st, err := c.Submit(ctx, serve.Spec{Kind: serve.KindLink, Packets: 1e6, PayloadBytes: 64}, client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	body, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer body.Close()

	// Read one record while the job is still running.
	buf := make([]byte, 1)
	line := []byte{}
	deadline := time.Now().Add(60 * time.Second)
	for !bytes.Contains(line, []byte("\n")) {
		if time.Now().After(deadline) {
			t.Fatal("no NDJSON record arrived while the job was running")
		}
		n, err := body.Read(buf)
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		line = append(line, buf[:n]...)
	}
	status, err := c.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status.Terminal {
		t.Fatal("job already terminal; the streaming assertion proved nothing")
	}
	if err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitPoll(ctx, st.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

func waitRunning(t *testing.T, c *client.Client, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Status(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "running" {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never started running", id)
}

func asAPIError(err error, target **client.APIError) bool {
	if err == nil {
		return false
	}
	e, ok := err.(*client.APIError)
	if ok {
		*target = e
	}
	return ok
}
