package servehttp_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cos/internal/obs"
	"cos/internal/obs/event"
	"cos/internal/serve"
	"cos/internal/serve/client"
	servehttp "cos/internal/serve/http"
)

// runOneJob submits a quick link job and waits for it to finish.
func runOneJob(t *testing.T, srv *serve.Server) *serve.Job {
	t.Helper()
	j, err := srv.Submit(serve.Spec{Kind: serve.KindLink, Packets: 2, PayloadBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	return j
}

func TestEventsSnapshotAndFilters(t *testing.T) {
	srv, c := startAPI(t, serve.Config{Shards: 1})
	ctx := context.Background()
	j1 := runOneJob(t, srv)
	j2 := runOneJob(t, srv)

	// Unfiltered snapshot: full lifecycle of both jobs, in seq order.
	es, err := c.Events(ctx, client.EventQuery{NoFollow: true})
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	var types []string
	var lastSeq uint64
	for {
		ev, ok := es.Next()
		if !ok {
			break
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("seq not increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		types = append(types, ev.Type)
	}
	want := []string{
		serve.EventJobAdmitted, serve.EventJobStarted, serve.EventJobFinished,
		serve.EventJobAdmitted, serve.EventJobStarted, serve.EventJobFinished,
	}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("event types = %v, want %v", types, want)
	}

	// Type filter.
	es2, err := c.Events(ctx, client.EventQuery{NoFollow: true, Types: []string{serve.EventJobFinished}})
	if err != nil {
		t.Fatal(err)
	}
	defer es2.Close()
	n := 0
	for {
		ev, ok := es2.Next()
		if !ok {
			break
		}
		if ev.Type != serve.EventJobFinished {
			t.Fatalf("type filter leaked %q", ev.Type)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("filtered events = %d, want 2", n)
	}

	// Job filter.
	es3, err := c.Events(ctx, client.EventQuery{NoFollow: true, Job: j2.ID()})
	if err != nil {
		t.Fatal(err)
	}
	defer es3.Close()
	n = 0
	for {
		ev, ok := es3.Next()
		if !ok {
			break
		}
		if ev.Job != j2.ID() {
			t.Fatalf("job filter leaked job %q", ev.Job)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("job-filtered events = %d, want 3 (admitted/started/finished)", n)
	}
	_ = j1
}

func TestEventsResumeFromSequence(t *testing.T) {
	srv, c := startAPI(t, serve.Config{Shards: 1})
	ctx := context.Background()
	runOneJob(t, srv)

	// Find the last seq, then resume from just before it.
	es, err := c.Events(ctx, client.EventQuery{NoFollow: true})
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for {
		ev, ok := es.Next()
		if !ok {
			break
		}
		last = ev.Seq
	}
	es.Close()
	if last == 0 {
		t.Fatal("no events recorded")
	}

	es2, err := c.Events(ctx, client.EventQuery{NoFollow: true, Since: last - 1})
	if err != nil {
		t.Fatal(err)
	}
	defer es2.Close()
	ev, ok := es2.Next()
	if !ok || ev.Seq != last {
		t.Fatalf("resume got seq %d (ok=%v), want %d", ev.Seq, ok, last)
	}
	if _, ok := es2.Next(); ok {
		t.Fatal("resume replay should end after the last event")
	}
}

func TestEventsFollowStreamsLive(t *testing.T) {
	srv, c := startAPI(t, serve.Config{Shards: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	es, err := c.Events(ctx, client.EventQuery{Types: []string{serve.EventJobFinished}})
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()

	if _, err := srv.Submit(serve.Spec{Kind: serve.KindLink, Packets: 2, PayloadBytes: 64}); err != nil {
		t.Fatal(err)
	}

	ev, ok := es.Next()
	if !ok {
		t.Fatalf("stream ended before live event: %v", es.Err())
	}
	if ev.Type != serve.EventJobFinished {
		t.Fatalf("live event type = %q", ev.Type)
	}
	var term serve.TerminalEvent
	if err := json.Unmarshal(ev.Data, &term); err != nil {
		t.Fatal(err)
	}
	if term.StageNS["tx_encode"] <= 0 {
		t.Fatalf("live terminal event stage_ns = %v", term.StageNS)
	}
}

// TestEventsSlowConsumerGap proves a stalled /events reader never blocks
// job execution: the server keeps running jobs, the reader's backlog is
// dropped oldest-first, and the gap is reported in-band.
func TestEventsSlowConsumerGap(t *testing.T) {
	srv, c := startAPI(t, serve.Config{Shards: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Tiny subscriber buffer; do not read until all jobs finish.
	es, err := c.Events(ctx, client.EventQuery{Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()

	const jobs = 40
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < jobs; i++ {
			j, err := srv.Submit(serve.Spec{Kind: serve.KindLink, Packets: 2, PayloadBytes: 64})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			<-j.Done()
		}
	}()

	// Jobs must complete while the consumer stalls: this is the
	// "slow consumer never blocks execution" guarantee.
	select {
	case <-done:
	case <-time.After(25 * time.Second):
		t.Fatal("jobs blocked behind a slow /events consumer")
	}

	// A tight append burst overwhelms the 1-slot subscriber channel far
	// faster than the handler's write+flush loop can drain it, so drops
	// are guaranteed regardless of TCP buffering.
	for i := 0; i < 2000; i++ {
		srv.Journal().Append("noise", "", nil)
	}

	// Now drain the stream: expect at least one synthetic gap record.
	srv.Drain(10 * time.Second) // closes the journal -> stream EOF
	var gaps uint64
	for {
		ev, ok := es.Next()
		if !ok {
			break
		}
		if ev.Type == "events_dropped" {
			var d struct {
				Dropped uint64 `json:"dropped"`
			}
			if err := json.Unmarshal(ev.Data, &d); err != nil || d.Dropped == 0 {
				t.Fatalf("bad gap record: %s (%v)", ev.Data, err)
			}
			gaps += d.Dropped
		}
	}
	if gaps == 0 {
		t.Fatal("no events_dropped gap record; slow consumer was not dropped-from")
	}
	if srv.Journal().Dropped() == 0 {
		t.Fatal("journal-wide dropped counter not incremented")
	}
}

// TestEventsResumeAfterEviction: a subscriber reconnecting with a resume
// point older than the ring's oldest retained seq must get an in-band
// events_dropped gap record before any replayed or live event, so
// consumers never mistake an evicted window for a complete stream.
func TestEventsResumeAfterEviction(t *testing.T) {
	const capacity = 8
	srv, c := startAPI(t, serve.Config{Shards: 1, JournalCapacity: capacity})
	ctx := context.Background()

	const total = 50
	for i := 0; i < total; i++ {
		srv.Journal().Append("noise", "", nil)
	}
	oldest := srv.Journal().OldestSeq()
	if oldest != total-capacity+1 {
		t.Fatalf("oldest retained seq = %d, want %d", oldest, total-capacity+1)
	}

	// Resume from seq 2: events 3..oldest-1 are gone.
	const since = 2
	es, err := c.Events(ctx, client.EventQuery{NoFollow: true, Since: since})
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()

	first, ok := es.Next()
	if !ok {
		t.Fatal("stream ended before any record")
	}
	if first.Type != "events_dropped" {
		t.Fatalf("first record = %q, want events_dropped before replay", first.Type)
	}
	var d struct {
		Dropped uint64 `json:"dropped"`
	}
	if err := json.Unmarshal(first.Data, &d); err != nil {
		t.Fatalf("bad gap payload %s: %v", first.Data, err)
	}
	if want := oldest - since - 1; d.Dropped != want {
		t.Fatalf("gap record dropped = %d, want %d", d.Dropped, want)
	}

	// The replay that follows starts exactly at the oldest retained seq.
	next := oldest
	for {
		ev, ok := es.Next()
		if !ok {
			break
		}
		if ev.Seq != next {
			t.Fatalf("replay seq = %d, want %d", ev.Seq, next)
		}
		next++
	}
	if next != total+1 {
		t.Fatalf("replay ended at seq %d, want %d", next-1, total)
	}

	// A resume point still inside the retained window reports no gap.
	es2, err := c.Events(ctx, client.EventQuery{NoFollow: true, Since: oldest})
	if err != nil {
		t.Fatal(err)
	}
	defer es2.Close()
	ev, ok := es2.Next()
	if !ok {
		t.Fatal("in-window resume returned no events")
	}
	if ev.Type == "events_dropped" {
		t.Fatalf("in-window resume emitted a spurious gap record: %s", ev.Data)
	}
	if ev.Seq != oldest+1 {
		t.Fatalf("in-window resume first seq = %d, want %d", ev.Seq, oldest+1)
	}
}

func TestEventsSSEFraming(t *testing.T) {
	srv := serve.New(serve.Config{Shards: 1, Metrics: obs.NewRegistry()})
	ts := httptest.NewServer(servehttp.NewHandler(srv))
	t.Cleanup(func() {
		srv.Drain(10 * time.Second)
		ts.Close()
	})
	j, err := srv.Submit(serve.Spec{Kind: serve.KindLink, Packets: 2, PayloadBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/events?follow=0", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var ids, datas int
	var firstID string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			if ids == 0 {
				firstID = strings.TrimPrefix(line, "id: ")
			}
			ids++
		case strings.HasPrefix(line, "data: "):
			var ev event.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad SSE data line: %v", err)
			}
			datas++
		case line == "":
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if ids != 3 || datas != 3 {
		t.Fatalf("SSE frames: ids=%d datas=%d, want 3 each", ids, datas)
	}
	if firstID != "1" {
		t.Fatalf("first SSE id = %q, want 1", firstID)
	}

	// Last-Event-ID resumes the stream like ?since=.
	req2, _ := http.NewRequest(http.MethodGet, ts.URL+"/events?follow=0", nil)
	req2.Header.Set("Accept", "text/event-stream")
	req2.Header.Set("Last-Event-ID", "2")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	var resumed []string
	for sc2.Scan() {
		if strings.HasPrefix(sc2.Text(), "id: ") {
			resumed = append(resumed, strings.TrimPrefix(sc2.Text(), "id: "))
		}
	}
	if len(resumed) != 1 || resumed[0] != "3" {
		t.Fatalf("Last-Event-ID resume ids = %v, want [3]", resumed)
	}
}

func TestEventsJournalDisabled404(t *testing.T) {
	srv := serve.New(serve.Config{Shards: 1, Metrics: obs.NewRegistry(), JournalCapacity: -1})
	ts := httptest.NewServer(servehttp.NewHandler(srv))
	t.Cleanup(func() {
		srv.Drain(time.Second)
		ts.Close()
	})
	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestHealthzDrainStatusCodes pins the raw HTTP contract: 200 + JSON
// Health body while admitting, 503 + the same body shape once draining.
// The body shape (state, shards, queue_depth, queues, inflight) is part of
// the fleet health-gating contract — extend it, don't rename it.
func TestHealthzDrainStatusCodes(t *testing.T) {
	srv := serve.New(serve.Config{Shards: 3, Metrics: obs.NewRegistry()})
	ts := httptest.NewServer(servehttp.NewHandler(srv))
	t.Cleanup(ts.Close)

	get := func() (int, map[string]json.RawMessage) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	code, body := get()
	if code != http.StatusOK || string(body["state"]) != `"ok"` {
		t.Fatalf("healthz = %d %v, want 200 state ok", code, body)
	}
	for _, key := range []string{"state", "shards", "queue_depth", "queues", "inflight"} {
		if _, ok := body[key]; !ok {
			t.Errorf("healthz body missing %q: %v", key, body)
		}
	}
	if string(body["shards"]) != "3" {
		t.Fatalf("healthz shards = %s, want 3", body["shards"])
	}
	var queues []int
	if err := json.Unmarshal(body["queues"], &queues); err != nil || len(queues) != 3 {
		t.Fatalf("healthz queues = %s (err %v), want 3 entries", body["queues"], err)
	}

	srv.Drain(time.Second)
	code2, body2 := get()
	if code2 != http.StatusServiceUnavailable || string(body2["state"]) != `"draining"` {
		t.Fatalf("healthz while draining = %d %v, want 503 state draining", code2, body2)
	}
}
