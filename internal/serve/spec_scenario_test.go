package serve

import (
	"bytes"
	"errors"
	"testing"
)

// TestSpecScenarioBackCompat is the wire-format pin for the scenario field:
// a spec without a scenario must keep producing the exact v1 canonical
// bytes — no "scenario" key, same digest — so every digest minted before
// the field existed stays valid.
func TestSpecScenarioBackCompat(t *testing.T) {
	got, err := goldenSpec().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(got, []byte("scenario")) {
		t.Fatalf("no-scenario spec encodes a scenario key: %s", got)
	}
	// Explicitly naming the default world must collapse onto the same
	// canonical bytes (and therefore the pinned v1 digest).
	withDefault := goldenSpec()
	withDefault.Scenario = "default"
	got2, err := withDefault.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, got2) {
		t.Fatalf("scenario \"default\" changed the canonical bytes:\n got: %s\nwant: %s", got2, got)
	}
	const wantDigest = "be08ab14ffb3d1d0f4bec037f4382b6c7f2b2629babd54bfcf6a5eca89a73333"
	if d := withDefault.Digest(); d != wantDigest {
		t.Fatalf("Digest() with explicit default scenario = %s, want the pinned v1 digest %s", d, wantDigest)
	}
}

// TestSpecScenarioDigests pins the scenario field's digest semantics:
// parameterized defaults collapse, real parameter changes separate, and a
// scenario'd spec never collides with the bare one.
func TestSpecScenarioDigests(t *testing.T) {
	base := Spec{Kind: KindLink}

	pulse := Spec{Kind: KindLink, Scenario: "pulse"}
	pulseExplicit := Spec{Kind: KindLink, Scenario: "pulse:40,160,0.004"}
	if pulse.Digest() != pulseExplicit.Digest() {
		t.Error(`"pulse" and "pulse:40,160,0.004" (its defaults) must share a digest`)
	}
	if pulse.Digest() == base.Digest() {
		t.Error(`"pulse" must not collide with the default world`)
	}
	stronger := Spec{Kind: KindLink, Scenario: "pulse:80,160,0.004"}
	if stronger.Digest() == pulse.Digest() {
		t.Error("different pulse parameters must separate digests")
	}
	hybrid := Spec{Kind: KindLink, Scenario: "hybrid-bscpec"}
	padding := Spec{Kind: KindLink, Scenario: "ofdm-padding"}
	if hybrid.Digest() == padding.Digest() || hybrid.Digest() == base.Digest() {
		t.Error("distinct scenarios must have distinct digests")
	}
}

// TestSpecScenarioValidation pins the typed rejection for bad scenarios:
// unknown names, syntax errors, and parameters on parameterless presets
// all wrap ErrInvalidScenario.
func TestSpecScenarioValidation(t *testing.T) {
	for _, ref := range []string{"no-such-world", "Bad Name", "pulse:", "default:1,2", "pulse:1e400"} {
		s := Spec{Kind: KindLink, Scenario: ref}
		err := s.Validate()
		if err == nil {
			t.Errorf("Validate accepted scenario %q", ref)
			continue
		}
		if !errors.Is(err, ErrInvalidScenario) {
			t.Errorf("Validate(%q) = %v, want ErrInvalidScenario", ref, err)
		}
	}
	for _, ref := range []string{"", "default", "pulse", "pulse:50,100,0.01", "hybrid-bscpec", "ofdm-padding", "mobile"} {
		s := Spec{Kind: KindLink, Scenario: ref}
		if err := s.Validate(); err != nil {
			t.Errorf("Validate rejected scenario %q: %v", ref, err)
		}
	}
}
