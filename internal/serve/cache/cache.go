// Package cache is the content-addressed result cache behind cos-serve's
// admission path: finished NDJSON result bodies keyed by the canonical
// spec digest (serve.Spec.Digest). Because a job's output is a pure
// function of its normalized spec, a digest hit can be streamed to the
// client byte-for-byte without touching a shard — repeat submissions of
// the same experiment become lookups instead of FFT/Viterbi work.
//
// The cache is bounded by total body bytes with LRU eviction, safe for
// concurrent use, and — like the rest of the serve core — transport-free:
// it imports only container/list and sync, and the repository's
// import-hygiene test keeps it that way.
package cache

import (
	"container/list"
	"sync"
)

// DefaultMaxBytes bounds a cache built with New(0): 256 MiB of result
// bodies, a few thousand typical link-job streams.
const DefaultMaxBytes = 256 << 20

// Cache is a bounded, content-addressed store of result byte streams.
// Create one with New; all methods are safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	lru      *list.List // front = most recently used; values are *entry
	byDigest map[string]*list.Element

	hits, misses, evictions uint64
}

type entry struct {
	digest string
	body   []byte
}

// New returns a cache holding at most maxBytes of result bodies
// (<= 0 selects DefaultMaxBytes).
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxBytes: maxBytes,
		lru:      list.New(),
		byDigest: map[string]*list.Element{},
	}
}

// Get returns the stored body for digest and marks it recently used. The
// returned slice is the cache's copy: callers must treat it as read-only.
func (c *Cache) Get(digest string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byDigest[digest]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*entry).body, true
}

// Contains reports whether digest is cached without touching LRU order or
// the hit/miss counters.
func (c *Cache) Contains(digest string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.byDigest[digest]
	return ok
}

// Put stores body under digest, evicting least-recently-used entries to
// stay within the byte budget. The cache keeps a reference to body — the
// caller must not mutate it afterwards. A body larger than the whole
// budget is refused rather than evicting everything for one entry.
// Re-putting an existing digest refreshes its LRU position; the body is
// content-addressed, so the bytes cannot differ.
func (c *Cache) Put(digest string, body []byte) {
	if int64(len(body)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byDigest[digest]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.bytes += int64(len(body))
	c.byDigest[digest] = c.lru.PushFront(&entry{digest: digest, body: body})
	for c.bytes > c.maxBytes {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		e := c.lru.Remove(oldest).(*entry)
		delete(c.byDigest, e.digest)
		c.bytes -= int64(len(e.body))
		c.evictions++
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byDigest)
}

// Bytes returns the total body bytes currently cached.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	// Entries and Bytes describe current occupancy.
	Entries int
	Bytes   int64
	// Hits and Misses count Get outcomes; Evictions counts entries
	// removed to stay within the byte budget.
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:   len(c.byDigest),
		Bytes:     c.bytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
