package cache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestGetPutAndStats(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get("d1"); ok {
		t.Fatal("empty cache returned a hit")
	}
	body := []byte("line1\nline2\n")
	c.Put("d1", body)
	got, ok := c.Get("d1")
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("Get = %q, %v; want stored body", got, ok)
	}
	if c.Len() != 1 || c.Bytes() != int64(len(body)) {
		t.Fatalf("Len/Bytes = %d/%d, want 1/%d", c.Len(), c.Bytes(), len(body))
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 0 evictions", st)
	}
	if !c.Contains("d1") || c.Contains("d2") {
		t.Fatal("Contains disagrees with contents")
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	c := New(30) // room for three 10-byte bodies
	ten := func(i int) []byte { return []byte(fmt.Sprintf("%010d", i)) }
	c.Put("a", ten(1))
	c.Put("b", ten(2))
	c.Put("c", ten(3))
	// Touch "a" so "b" is the least recently used.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.Put("d", ten(4)) // must evict "b"
	if c.Contains("b") {
		t.Fatal("LRU entry b survived eviction")
	}
	for _, want := range []string{"a", "c", "d"} {
		if !c.Contains(want) {
			t.Fatalf("entry %s evicted out of LRU order", want)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Bytes != 30 {
		t.Fatalf("stats after eviction = %+v", st)
	}
}

func TestOversizedBodyRefused(t *testing.T) {
	c := New(10)
	c.Put("big", make([]byte, 11))
	if c.Len() != 0 {
		t.Fatal("an oversized body was admitted")
	}
	c.Put("fits", make([]byte, 10))
	if !c.Contains("fits") {
		t.Fatal("a budget-sized body was refused")
	}
}

func TestRePutRefreshesWithoutDoubleCount(t *testing.T) {
	c := New(100)
	c.Put("d", []byte("0123456789"))
	c.Put("d", []byte("0123456789"))
	if c.Len() != 1 || c.Bytes() != 10 {
		t.Fatalf("Len/Bytes after re-put = %d/%d, want 1/10", c.Len(), c.Bytes())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d := fmt.Sprintf("digest-%d", i%32)
				c.Put(d, []byte(d))
				if body, ok := c.Get(d); ok && string(body) != d {
					t.Errorf("Get(%s) returned foreign body %q", d, body)
				}
			}
		}()
	}
	wg.Wait()
}
