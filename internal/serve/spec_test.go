package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// goldenSpec is the fixture pinned by testdata/spec_canonical_v1.golden: a
// link spec with a few explicit fields, everything else defaulted.
func goldenSpec() Spec {
	return Spec{Kind: KindLink, Seed: 7, Packets: 4, SNRdB: 18}
}

// TestSpecCanonicalGolden pins the canonical encoding byte-for-byte. If
// this fails the encoding changed: every stored digest (cache entries, WAL
// records) is silently re-keyed, so bump SpecSchemaVersion and regenerate
// the golden deliberately rather than updating it to "fix" the test.
func TestSpecCanonicalGolden(t *testing.T) {
	got, err := goldenSpec().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "spec_canonical_v1.golden")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want = bytes.TrimRight(want, "\n")
	if !bytes.Equal(got, want) {
		t.Fatalf("canonical encoding drifted from %s:\n got: %s\nwant: %s", path, got, want)
	}
}

// TestSpecDigestPinned pins the digest of the golden spec. A drift here
// without a SpecSchemaVersion bump invalidates every durable store.
func TestSpecDigestPinned(t *testing.T) {
	const want = "be08ab14ffb3d1d0f4bec037f4382b6c7f2b2629babd54bfcf6a5eca89a73333"
	if got := goldenSpec().Digest(); got != want {
		t.Fatalf("Digest() = %s, want %s", got, want)
	}
}

// TestSpecDigestEquality is the API contract: two specs are equal iff
// their digests are equal. Defaults collapse, case-folded positions
// collapse, and every semantic field separates.
func TestSpecDigestEquality(t *testing.T) {
	base := Spec{Kind: KindLink}
	explicitDefaults := Spec{
		Kind: KindLink, Seed: 1, SNRdB: 18, Position: "B", PayloadBytes: 1024,
		Packets: 100, ControlBits: 32, StreamBits: 24, Sends: 10,
		Stations: 3, Rounds: 100, Scale: 0.1, Workers: 1,
	}
	if base.Digest() != explicitDefaults.Digest() {
		t.Error("defaulted and explicitly-defaulted specs must share a digest")
	}
	lower := Spec{Kind: KindLink, Position: "b"}
	if base.Digest() != lower.Digest() {
		t.Error(`position "b" and "B" name the same geometry and must share a digest`)
	}
	flat := Spec{Kind: KindLink, Position: "FLAT"}
	if flat.Digest() != (Spec{Kind: KindLink, Position: "flat"}).Digest() {
		t.Error(`position "FLAT" and "flat" must share a digest`)
	}

	distinct := []Spec{
		base,
		{Kind: KindStream},
		{Kind: KindLink, Seed: 2},
		{Kind: KindLink, TimeoutMS: 5000},
		{Kind: KindLink, SNRdB: 12},
		{Kind: KindLink, Position: "C"},
		{Kind: KindLink, Mobile: true},
		{Kind: KindLink, PayloadBytes: 512},
		{Kind: KindLink, Packets: 5},
		{Kind: KindLink, ControlBits: 16},
		{Kind: KindFigure, Figure: "fig2"},
		{Kind: KindFigure, Figure: "fig2", Scale: 0.5},
	}
	seen := map[string]int{}
	for i, s := range distinct {
		d := s.Digest()
		if len(d) != digestHexLen {
			t.Fatalf("spec %d: digest %q is not %d hex chars", i, d, digestHexLen)
		}
		if prev, dup := seen[d]; dup {
			t.Errorf("specs %d and %d collide on digest %s", prev, i, d)
		}
		seen[d] = i
	}
}

// TestDecodeSpecStrict pins the DisallowUnknownFields contract: a
// misspelled field is an error, never a silent default.
func TestDecodeSpecStrict(t *testing.T) {
	if _, err := DecodeSpec([]byte(`{"kind":"link","packtes":5}`)); err == nil {
		t.Error("DecodeSpec accepted an unknown field")
	}
	if _, err := DecodeSpec([]byte(`{"kind":"link"} trailing`)); err == nil {
		t.Error("DecodeSpec accepted trailing data")
	}
	if _, err := DecodeSpec([]byte(`{"kind":`)); err == nil {
		t.Error("DecodeSpec accepted truncated JSON")
	}
	s, err := DecodeSpec([]byte(`{"kind":"link","packets":5}`))
	if err != nil {
		t.Fatalf("DecodeSpec rejected a valid spec: %v", err)
	}
	if s.Kind != KindLink || s.Packets != 5 {
		t.Fatalf("DecodeSpec = %+v", s)
	}
}

// TestDecodeCanonicalRoundTrip proves Canonical -> DecodeCanonical is the
// identity on normalized specs, and that foreign schema versions are
// refused instead of silently mis-keyed.
func TestDecodeCanonicalRoundTrip(t *testing.T) {
	in := Spec{Kind: KindStream, Seed: 3, StreamBits: 48, Position: "c"}
	b, err := in.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeCanonical(b)
	if err != nil {
		t.Fatal(err)
	}
	if out != in.normalized() {
		t.Fatalf("round trip = %+v, want %+v", out, in.normalized())
	}
	if out.Digest() != in.Digest() {
		t.Fatal("round-tripped spec changed digest")
	}
	if _, err := DecodeCanonical([]byte(`{"spec_schema":99,"spec":{"kind":"link"}}`)); err == nil {
		t.Error("DecodeCanonical accepted an unknown schema version")
	}
}

func TestIsDigest(t *testing.T) {
	d := (Spec{Kind: KindLink}).Digest()
	if !IsDigest(d) {
		t.Fatalf("IsDigest(%q) = false for a real digest", d)
	}
	for _, bad := range []string{"", "job-000001", d[:63], d + "0", "G" + d[1:]} {
		if IsDigest(bad) {
			t.Errorf("IsDigest(%q) = true", bad)
		}
	}
}
