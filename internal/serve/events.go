package serve

import (
	"time"

	"cos"
	"cos/internal/obs"
	"cos/internal/obs/event"
)

// This file is the server's side of the operations plane: the typed event
// vocabulary written to the journal for every job lifecycle transition,
// the per-job flight-recorder correlation (aggregated Exchange.StageNS),
// and the periodic summary frames computed from rolling windows.
//
// Every event payload is a struct, never a map, so the marshaled byte
// stream is deterministic — the same property the NDJSON result streams
// already guarantee.

// Journal event types emitted by the server. The daemon adds its own
// process-level types (server_listening, server_exit) on the same journal.
const (
	// EventJobAdmitted: a job passed validation and entered a shard queue.
	EventJobAdmitted = "job_admitted"
	// EventJobRejected: admission failed (reason overload/draining/invalid).
	EventJobRejected = "job_rejected"
	// EventJobStarted: a shard worker began executing the job.
	EventJobStarted = "job_started"
	// EventJobFinished: the job completed successfully (state done).
	EventJobFinished = "job_finished"
	// EventJobFailed: the job reached state failed.
	EventJobFailed = "job_failed"
	// EventJobCancelled: the job reached state cancelled.
	EventJobCancelled = "job_cancelled"
	// EventJobCached: a submission was served from the content-addressed
	// result cache — the job was born terminal and never touched a shard.
	EventJobCached = "job_cached"
	// EventJobRecovered: a pending submission found in the durable store's
	// WAL was re-admitted after a restart.
	EventJobRecovered = "job_recovered"
	// EventStoreRecovered: one summary of what WAL replay found at startup.
	EventStoreRecovered = "store_recovered"
	// EventDrainBegin: Drain was called; admission has stopped.
	EventDrainBegin = "drain_begin"
	// EventDrainEnd: every worker has exited; clean reports whether the
	// window sufficed.
	EventDrainEnd = "drain_end"
	// EventSummary: periodic rolling-window statistics frame.
	EventSummary = "summary"
)

// AdmittedEvent is the payload of EventJobAdmitted.
type AdmittedEvent struct {
	Kind Kind  `json:"kind"`
	Seed int64 `json:"seed"`
	// Shard is the queue the job landed on; QueueDepth its depth at
	// admission, including this job (>= 1 by construction).
	Shard      int `json:"shard"`
	QueueDepth int `json:"queue_depth"`
}

// RejectedEvent is the payload of EventJobRejected.
type RejectedEvent struct {
	// Reason is "overload", "draining" or "invalid".
	Reason string `json:"reason"`
	Kind   Kind   `json:"kind,omitempty"`
	// Error carries the validation message for invalid specs.
	Error string `json:"error,omitempty"`
	// Shard is the queue that was full (-1 when admission never picked
	// one, i.e. draining/invalid rejects); QueueDepth is that queue's
	// capacity for overload rejects (full by definition), 0 otherwise.
	Shard      int `json:"shard"`
	QueueDepth int `json:"queue_depth"`
}

// StartedEvent is the payload of EventJobStarted.
type StartedEvent struct {
	Kind        Kind    `json:"kind"`
	QueueWaitMS float64 `json:"queue_wait_ms"`
}

// TerminalEvent is the payload of EventJobFinished/Failed/Cancelled: one
// record that answers both "how did it end" and "where did the time go".
type TerminalEvent struct {
	Kind  Kind   `json:"kind"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// RunMS is wall-clock execution time (running -> terminal); zero for
	// jobs cancelled before they started.
	RunMS       float64 `json:"run_ms"`
	QueueWaitMS float64 `json:"queue_wait_ms"`
	ResultBytes int     `json:"result_bytes"`
	// StageNS aggregates the flight recorder's per-exchange stage timings
	// (Exchange.StageNS) over every exchange the job performed, keyed by
	// stage name — the same keys as the trace schema's stage_ns map.
	// Omitted for kinds with no exchange hook (figure jobs run through the
	// experiment pool, which aggregates at the registry level instead).
	StageNS map[string]int64 `json:"stage_ns,omitempty"`
	// TraceDigest is the exemplar link from this (wall-clock) metrics
	// record to the job's deterministic flight-recorder trace: the content
	// address of the NDJSON body GET /jobs/{key}/trace serves. Present only
	// when the job was traced and finished done; TraceBytes is that body's
	// length.
	TraceDigest string `json:"trace_digest,omitempty"`
	TraceBytes  int    `json:"trace_bytes,omitempty"`
}

// CachedEvent is the payload of EventJobCached.
type CachedEvent struct {
	Kind Kind  `json:"kind"`
	Seed int64 `json:"seed"`
	// Digest is the spec's content address — the cache key that hit.
	Digest string `json:"digest"`
	// ResultBytes is the length of the stored byte stream served.
	ResultBytes int `json:"result_bytes"`
}

// RecoveredEvent is the payload of EventJobRecovered.
type RecoveredEvent struct {
	Kind   Kind   `json:"kind"`
	Digest string `json:"digest"`
	// PriorJob is the ID the submission carried in the previous process
	// (informational; the recovered job has a fresh ID).
	PriorJob string `json:"prior_job,omitempty"`
}

// StoreRecoveredEvent is the payload of EventStoreRecovered: what WAL
// replay found and what the server did with it.
type StoreRecoveredEvent struct {
	// Records counts well-formed WAL records replayed.
	Records int `json:"records"`
	// Completed digests have durable result bodies; CacheWarmed of them
	// were loaded into the result cache at startup.
	Completed   int `json:"completed"`
	CacheWarmed int `json:"cache_warmed"`
	// Requeued submissions were re-admitted; Dropped could not be (corrupt
	// or foreign-schema specs, or queues full during recovery — the WAL
	// still holds them for the next restart).
	Requeued int `json:"requeued"`
	Dropped  int `json:"dropped,omitempty"`
	// Failed digests are settled and neither re-run nor cached.
	Failed int `json:"failed,omitempty"`
	// TruncatedBytes is the torn WAL tail discarded (0 for a clean log).
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
}

// DrainBeginEvent is the payload of EventDrainBegin.
type DrainBeginEvent struct {
	WindowMS float64 `json:"window_ms"`
}

// DrainEndEvent is the payload of EventDrainEnd.
type DrainEndEvent struct {
	Clean bool `json:"clean"`
}

// SummaryEvent is the payload of EventSummary: a rolling-window view of
// the server, emitted every Config.SummaryEvery. Rates cover the trailing
// summaryWindow; quantiles cover the last summaryQuantileSamples jobs.
type SummaryEvent struct {
	QueueDepth int `json:"queue_depth"`
	Inflight   int `json:"inflight"`
	// SubmitsPerSec counts all admission attempts; JobsPerSec counts jobs
	// reaching a terminal state; RejectsPerSec counts rejections.
	SubmitsPerSec float64 `json:"submits_per_sec"`
	JobsPerSec    float64 `json:"jobs_per_sec"`
	RejectsPerSec float64 `json:"rejects_per_sec"`
	// RejectRate is the rejected fraction of windowed admission attempts.
	RejectRate float64 `json:"reject_rate"`
	// RunMSP50/99 are run-latency quantiles over recent terminal jobs
	// (zero until a job finishes).
	RunMSP50 float64 `json:"run_ms_p50"`
	RunMSP99 float64 `json:"run_ms_p99"`
	// StageMSP50/99 are flight-recorder per-stage quantiles (total ms a
	// job spent in each pipeline stage) over recent jobs.
	StageMSP50 map[string]float64 `json:"stage_ms_p50,omitempty"`
	StageMSP99 map[string]float64 `json:"stage_ms_p99,omitempty"`
	// JournalEvicted/Dropped surface the journal's own pressure counters.
	JournalEvicted uint64 `json:"journal_evicted"`
	JournalDropped uint64 `json:"journal_dropped"`
}

const (
	// summaryWindow is the rolling-rate horizon behind SummaryEvent.
	summaryWindow = 10 * time.Second
	// summaryQuantileSamples bounds the sliding quantile windows.
	summaryQuantileSamples = 256
)

// stageAgg accumulates flight-recorder stage timings across every exchange
// a job performs. It is wired into the job's links as a cos.Observer; the
// simulation loops run on one worker goroutine, so no locking is needed.
type stageAgg struct {
	ns [cos.StageCount]int64
}

// observe adds one exchange's stage timings (cos.Observer signature).
func (a *stageAgg) observe(ex *cos.Exchange) {
	for i, v := range ex.StageNS {
		a.ns[i] += v
	}
}

// toMap renders the totals keyed by stage name, or nil if nothing was
// recorded (e.g. figure jobs, which have no exchange hook).
func (a *stageAgg) toMap() map[string]int64 {
	var total int64
	for _, v := range a.ns {
		total += v
	}
	if total == 0 {
		return nil
	}
	m := make(map[string]int64, len(a.ns))
	for i, v := range a.ns {
		m[cos.Stage(i).String()] = v
	}
	return m
}

// opsState is the Server's rolling-window bookkeeping behind summary
// frames. Present (non-nil windows) only when a journal is attached.
type opsState struct {
	submits  *obs.RateWindow // admission attempts (admitted + rejected)
	rejects  *obs.RateWindow
	finishes *obs.RateWindow
	runMS    *obs.QuantileWindow
	stageMS  [cos.StageCount]*obs.QuantileWindow

	stop chan struct{} // closes to stop the summary ticker
	done chan struct{} // closed when the ticker goroutine exits
}

func newOpsState() *opsState {
	o := &opsState{
		submits:  obs.NewRateWindow(summaryWindow, 20),
		rejects:  obs.NewRateWindow(summaryWindow, 20),
		finishes: obs.NewRateWindow(summaryWindow, 20),
		runMS:    obs.NewQuantileWindow(summaryQuantileSamples),
	}
	for i := range o.stageMS {
		o.stageMS[i] = obs.NewQuantileWindow(summaryQuantileSamples)
	}
	return o
}

// emit appends an event to the journal when one is attached.
func (s *Server) emit(typ, job string, payload any) {
	if s.journal != nil {
		s.journal.Append(typ, job, payload)
	}
}

// recordTerminal feeds the rolling windows with one finished job.
func (s *Server) recordTerminal(runMS float64, agg *stageAgg) {
	if s.ops == nil {
		return
	}
	s.ops.finishes.Add(1)
	if runMS > 0 {
		s.ops.runMS.Observe(runMS)
	}
	if agg != nil {
		for i, ns := range agg.ns {
			if ns > 0 {
				s.ops.stageMS[i].Observe(float64(ns) / 1e6)
			}
		}
	}
}

// emitTerminalEvent writes the job's terminal journal event, correlating
// it with the aggregated flight-recorder stage timings.
func (s *Server) emitTerminalEvent(j *Job, agg *stageAgg) {
	if s.journal == nil {
		return
	}
	st := j.Status()
	ev := TerminalEvent{
		Kind:        st.Kind,
		State:       st.State,
		Error:       st.Error,
		ResultBytes: st.ResultBytes,
	}
	if st.StartedAt != nil && st.FinishedAt != nil {
		ev.RunMS = st.FinishedAt.Sub(*st.StartedAt).Seconds() * 1e3
		ev.QueueWaitMS = st.StartedAt.Sub(st.SubmittedAt).Seconds() * 1e3
	}
	if agg != nil {
		ev.StageNS = agg.toMap()
	}
	ev.TraceDigest = st.TraceDigest
	ev.TraceBytes = st.TraceBytes
	typ := EventJobFinished
	switch st.State {
	case StateFailed.String():
		typ = EventJobFailed
	case StateCancelled.String():
		typ = EventJobCancelled
	}
	s.emit(typ, j.id, ev)
	s.recordTerminal(ev.RunMS, agg)
}

// summarize builds a summary frame for time now. Exported to the journal
// via the summary ticker; tests call it directly for determinism.
func (s *Server) summarize(now time.Time) SummaryEvent {
	ev := SummaryEvent{
		QueueDepth: s.queueLen(),
		Inflight:   int(s.inflight.Value()),
	}
	if s.ops != nil {
		ev.SubmitsPerSec = s.ops.submits.RateAt(now)
		ev.JobsPerSec = s.ops.finishes.RateAt(now)
		ev.RejectsPerSec = s.ops.rejects.RateAt(now)
		if submits := s.ops.submits.CountAt(now); submits > 0 {
			ev.RejectRate = float64(s.ops.rejects.CountAt(now)) / float64(submits)
		}
		if s.ops.runMS.Count() > 0 {
			ev.RunMSP50 = s.ops.runMS.Quantile(0.50)
			ev.RunMSP99 = s.ops.runMS.Quantile(0.99)
		}
		p50 := map[string]float64{}
		p99 := map[string]float64{}
		for i, w := range s.ops.stageMS {
			if w.Count() == 0 {
				continue
			}
			name := cos.Stage(i).String()
			p50[name] = w.Quantile(0.50)
			p99[name] = w.Quantile(0.99)
		}
		if len(p50) > 0 {
			ev.StageMSP50, ev.StageMSP99 = p50, p99
		}
	}
	if s.journal != nil {
		ev.JournalEvicted = s.journal.Evicted()
		ev.JournalDropped = s.journal.Dropped()
	}
	return ev
}

// emitSummary appends one summary frame now.
func (s *Server) emitSummary(now time.Time) {
	s.emit(EventSummary, "", s.summarize(now))
}

// startSummaryLoop emits summary frames every interval until stopped (by
// Drain). Called from New when a journal is attached and SummaryEvery > 0.
func (s *Server) startSummaryLoop(every time.Duration) {
	s.ops.stop = make(chan struct{})
	s.ops.done = make(chan struct{})
	go func() {
		defer close(s.ops.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				s.emitSummary(now)
			case <-s.ops.stop:
				return
			}
		}
	}()
}

// stopSummaryLoop halts the ticker; idempotent via drainOnce's caller.
func (s *Server) stopSummaryLoop() {
	if s.ops != nil && s.ops.stop != nil {
		close(s.ops.stop)
		<-s.ops.done
	}
}

// Journal returns the journal receiving the server's events (nil when
// disabled). The HTTP layer streams it on GET /events.
func (s *Server) Journal() *event.Journal { return s.journal }
