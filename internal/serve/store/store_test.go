package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// spec is a stand-in canonical encoding; the store treats it as opaque.
func spec(kind string) []byte {
	return []byte(`{"spec":{"kind":"` + kind + `"},"spec_schema":1}`)
}

const (
	digA = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
	digB = "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"
	digC = "cccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccc"
)

func open(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStoreReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)

	body := []byte(`{"type":"packet"}` + "\n")
	if err := s.LogSubmit("job-000001", digA, spec("link")); err != nil {
		t.Fatal(err)
	}
	if err := s.LogSubmit("job-000002", digB, spec("stream")); err != nil {
		t.Fatal(err)
	}
	if err := s.LogResult("job-000001", digA, "done", "", body, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.LogSubmit("job-000003", digC, spec("wlan")); err != nil {
		t.Fatal(err)
	}
	if err := s.LogResult("job-000003", digC, "failed", "boom", nil, nil); err != nil {
		t.Fatal(err)
	}
	s.Close()

	re := open(t, dir)
	rec := re.Recovery()
	if rec.TruncatedBytes != 0 {
		t.Fatalf("clean WAL reported %d truncated bytes", rec.TruncatedBytes)
	}
	if len(rec.Completed) != 1 || rec.Completed[0].Digest != digA {
		t.Fatalf("Completed = %+v, want [%s]", rec.Completed, digA)
	}
	if len(rec.Pending) != 1 || rec.Pending[0].Digest != digB || rec.Pending[0].Job != "job-000002" {
		t.Fatalf("Pending = %+v, want job-000002/%s", rec.Pending, digB)
	}
	if !bytes.Equal(rec.Pending[0].Spec, spec("stream")) {
		t.Fatalf("pending spec = %s", rec.Pending[0].Spec)
	}
	if len(rec.Failed) != 1 || rec.Failed[0] != digC {
		t.Fatalf("Failed = %+v, want [%s]", rec.Failed, digC)
	}
	got, err := re.ReadResult(digA)
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("ReadResult = %q, %v; want stored body", got, err)
	}
}

// TestStoreReplayDigestFolding pins the digest-keyed replay semantics:
// duplicate submissions fold onto one pending entry, done is sticky
// across later submits, and a resubmit after failure goes pending again.
func TestStoreReplayDigestFolding(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	// Two submissions of the same digest, one completes: settled.
	s.LogSubmit("job-000001", digA, spec("link"))
	s.LogSubmit("job-000002", digA, spec("link"))
	s.LogResult("job-000001", digA, "done", "", []byte("r\n"), nil)
	s.LogSubmit("job-000003", digA, spec("link")) // after done: still done
	// Failed then resubmitted: pending again.
	s.LogSubmit("job-000004", digB, spec("stream"))
	s.LogResult("job-000004", digB, "failed", "x", nil, nil)
	s.LogSubmit("job-000005", digB, spec("stream"))
	// Duplicate pendings fold to one.
	s.LogSubmit("job-000006", digC, spec("wlan"))
	s.LogSubmit("job-000007", digC, spec("wlan"))
	s.Close()

	rec := open(t, dir).Recovery()
	if len(rec.Completed) != 1 || rec.Completed[0].Digest != digA {
		t.Fatalf("Completed = %+v", rec.Completed)
	}
	if len(rec.Pending) != 2 {
		t.Fatalf("Pending = %+v, want exactly digB and digC once each", rec.Pending)
	}
	if rec.Pending[0].Digest != digB || rec.Pending[1].Digest != digC {
		t.Fatalf("Pending order = %s, %s; want first-submission order digB, digC",
			rec.Pending[0].Digest, rec.Pending[1].Digest)
	}
	if len(rec.Failed) != 0 {
		t.Fatalf("Failed = %+v; the resubmit should have reopened digB", rec.Failed)
	}
}

// TestStoreTruncatedWALTail is the torn-write fixture: a crash mid-append
// leaves a partial final line, which replay must discard (truncating the
// file) while keeping every complete record.
func TestStoreTruncatedWALTail(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	s.LogSubmit("job-000001", digA, spec("link"))
	s.LogResult("job-000001", digA, "done", "", []byte("r\n"), nil)
	s.LogSubmit("job-000002", digB, spec("stream"))
	s.Close()

	wal := filepath.Join(dir, walName)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	cut := int64(len(data) - 17) // mid-way through the final record
	if err := os.Truncate(wal, cut); err != nil {
		t.Fatal(err)
	}

	re := open(t, dir)
	rec := re.Recovery()
	if rec.TruncatedBytes == 0 {
		t.Fatal("torn tail not reported")
	}
	if rec.Records != 2 {
		t.Fatalf("Records = %d, want the 2 intact ones", rec.Records)
	}
	if len(rec.Completed) != 1 || len(rec.Pending) != 0 {
		t.Fatalf("recovery after torn tail = %+v", rec)
	}
	// The log must be append-clean: a new record lands on its own line.
	if err := re.LogSubmit("job-000001", digC, spec("wlan")); err != nil {
		t.Fatal(err)
	}
	re.Close()
	data, err = os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("WAL after truncate+append has %d lines, want 3:\n%s", len(lines), data)
	}
	for _, ln := range lines {
		var r record
		if err := json.Unmarshal([]byte(ln), &r); err != nil {
			t.Fatalf("non-JSON WAL line %q: %v", ln, err)
		}
	}
}

// TestStoreOutOfOrderResultBeforeSubmit covers the append race between
// the admission and completion goroutines: a job's result record can land
// before its own submit record, which must not read as a resubmit.
func TestStoreOutOfOrderResultBeforeSubmit(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	s.LogResult("job-000001", digA, "failed", "x", nil, nil)
	s.LogSubmit("job-000001", digA, spec("link")) // same job, out of order
	s.LogResult("job-000002", digB, "done", "", []byte("r\n"), nil)
	s.LogSubmit("job-000002", digB, spec("stream"))
	s.Close()

	rec := open(t, dir).Recovery()
	if len(rec.Failed) != 1 || rec.Failed[0] != digA {
		t.Fatalf("Failed = %+v; out-of-order submit must not reopen its own failure", rec.Failed)
	}
	if len(rec.Completed) != 1 || rec.Completed[0].Digest != digB {
		t.Fatalf("Completed = %+v", rec.Completed)
	}
	if len(rec.Pending) != 0 {
		t.Fatalf("Pending = %+v, want none", rec.Pending)
	}
}

// TestStoreGarbageMidLog stops trusting the log at the first corrupt
// record rather than resynchronizing past it.
func TestStoreGarbageMidLog(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	s.LogSubmit("job-000001", digA, spec("link"))
	s.Close()
	wal := filepath.Join(dir, walName)
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("{\"wal\":1,\"op\":garbage}\n")
	f.WriteString(`{"wal":1,"op":"submit","job":"job-000002","digest":"` + digB + `","spec":{"spec_schema":1,"spec":{"kind":"link"}},"t_ms":1}` + "\n")
	f.Close()

	rec := open(t, dir).Recovery()
	if rec.Records != 1 || len(rec.Pending) != 1 || rec.Pending[0].Digest != digA {
		t.Fatalf("replay past garbage = %+v, want only the first record", rec)
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("corrupt suffix not truncated")
	}
}

// TestStoreMissingResultFileDemotesToPending covers external deletion of
// a body file: the "done" record can no longer be honored, so the digest
// re-runs.
func TestStoreMissingResultFileDemotesToPending(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	s.LogSubmit("job-000001", digA, spec("link"))
	s.LogResult("job-000001", digA, "done", "", []byte("r\n"), nil)
	s.Close()
	if err := os.Remove(filepath.Join(dir, resultsDir, digA)); err != nil {
		t.Fatal(err)
	}
	rec := open(t, dir).Recovery()
	if len(rec.Completed) != 0 {
		t.Fatalf("Completed = %+v despite missing body", rec.Completed)
	}
	if len(rec.Pending) != 1 || rec.Pending[0].Digest != digA {
		t.Fatalf("Pending = %+v, want the demoted digest", rec.Pending)
	}
}

func TestStoreRejectsHostileDigests(t *testing.T) {
	s := open(t, t.TempDir())
	for _, bad := range []string{"", "../evil", "ABCDEF", "a/b"} {
		if err := s.LogResult("job-000001", bad, "done", "", []byte("x"), nil); err == nil {
			t.Errorf("LogResult accepted digest %q", bad)
		}
		if _, err := s.ReadResult(bad); err == nil {
			t.Errorf("ReadResult accepted digest %q", bad)
		}
	}
}

// TestStoreHostileTraceDigestReplaysUntraced covers a tampered WAL: a
// "done" record whose trace field carries path metacharacters must never
// become a filesystem lookup — the job replays completed but untraced,
// and ReadTrace refuses the digest outright.
func TestStoreHostileTraceDigestReplaysUntraced(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	s.LogSubmit("job-000001", digA, spec("link"))
	s.LogResult("job-000001", digA, "done", "", []byte("r\n"), nil)
	s.Close()

	wal := filepath.Join(dir, walName)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Splice a hostile trace address into the terminal record.
	tampered := bytes.Replace(data, []byte(`"state":"done"`),
		[]byte(`"state":"done","trace":"../../etc/passwd","trace_bytes":9,"probe_every":4`), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("tamper target not found in WAL")
	}
	if err := os.WriteFile(wal, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	re := open(t, dir)
	rec := re.Recovery()
	if len(rec.Completed) != 1 || rec.Completed[0].Digest != digA {
		t.Fatalf("Completed = %+v, want the done digest to survive", rec.Completed)
	}
	if cj := rec.Completed[0]; cj.TraceDigest != "" || cj.ProbeEvery != 0 || cj.TraceBytes != 0 {
		t.Fatalf("hostile trace digest leaked into recovery: %+v", cj)
	}
	for _, bad := range []string{"", "../evil", "ABCDEF", "a/b", "../../etc/passwd"} {
		if _, err := re.ReadTrace(bad); err == nil {
			t.Errorf("ReadTrace accepted digest %q", bad)
		}
	}
	if err := re.LogResult("job-000002", digB, "done", "", []byte("x\n"),
		&TraceArtifact{Digest: "../evil", Body: []byte("t\n")}); err == nil {
		t.Error("LogResult accepted a hostile trace artifact digest")
	}
}

func TestStoreClosedRefusesAppends(t *testing.T) {
	s := open(t, t.TempDir())
	s.Close()
	if err := s.LogSubmit("job-000001", digA, spec("link")); err == nil {
		t.Fatal("LogSubmit succeeded on a closed store")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
