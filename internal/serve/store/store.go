// Package store is cos-serve's durable job store: a write-ahead log of
// job submissions and completions plus content-addressed result body
// files, all under one data directory. A daemon restarted on the same
// directory recovers its world — completed results re-serve byte-identical
// NDJSON from the cache, and submissions that never reached a terminal
// record are re-admitted and re-run.
//
// Layout:
//
//	<dir>/wal.log              append-only JSON lines (submit/result records)
//	<dir>/results/<digest>     completed NDJSON bodies, one file per digest
//	<dir>/traces/<digest>      flight-recorder trace bodies, keyed by the
//	                           trace's own SHA-256 (not the spec digest)
//
// Three rules shape the design:
//
//   - Result-before-record. A result body file is written and renamed into
//     place (atomically, via a temp file) before its WAL record is
//     appended, so a "done" record always points at a readable body.
//
//   - Digest-keyed replay. Recovery folds the WAL per spec digest, not per
//     job ID: job IDs restart at 1 with each daemon process, but the
//     digest is stable across restarts, and one re-run satisfies every
//     pending submission of the same spec. A digest that ever reached
//     "done" stays done — results are content-addressed, so a later
//     submission of the same digest cannot change the bytes.
//
//   - Tolerant tail. A crash mid-append leaves a truncated last line; Open
//     replays up to the last complete, well-formed record and truncates
//     the file there, so the WAL is always append-clean after recovery.
//
// The package is stdlib-only and transport-free; the repository's
// import-hygiene test keeps net/http out of its closure.
package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

const (
	walName    = "wal.log"
	resultsDir = "results"
	tracesDir  = "traces"
	// walVersion stamps every record; readers refuse records from a newer
	// layout rather than misinterpreting them.
	walVersion = 1
)

// Record ops.
const (
	opSubmit = "submit"
	opResult = "result"
)

// record is one WAL line. Submit records carry the canonical spec;
// result records carry the terminal state ("done" or "failed" — cancelled
// jobs write no record, so they replay as pending and re-run).
type record struct {
	WAL    int             `json:"wal"`
	Op     string          `json:"op"`
	Job    string          `json:"job"`
	Digest string          `json:"digest"`
	Spec   json.RawMessage `json:"spec,omitempty"`
	State  string          `json:"state,omitempty"`
	Error  string          `json:"error,omitempty"`
	Bytes  int             `json:"bytes,omitempty"`
	// Trace is the content address of the job's flight-recorder trace body
	// (the trace's own SHA-256, stored under traces/); ProbeEvery is the
	// PHY-probe cadence the trace was captured with. Present only on "done"
	// records of traced jobs.
	Trace      string `json:"trace,omitempty"`
	TraceBytes int    `json:"trace_bytes,omitempty"`
	ProbeEvery int    `json:"probe_every,omitempty"`
	TMS        int64  `json:"t_ms"` // wall-clock stamp, informational only
}

// PendingJob is a submission with no terminal record: work to re-admit.
type PendingJob struct {
	// Job is the ID the submission carried when it was logged (a past
	// process's numbering — informational, not resolvable in this one).
	Job string
	// Digest is the spec's content address.
	Digest string
	// Spec is the canonical encoding (serve.DecodeCanonical parses it).
	Spec []byte
}

// CompletedJob is a digest with a durable "done" result body.
type CompletedJob struct {
	Job    string
	Digest string
	// TraceDigest is the content address of the job's flight-recorder trace
	// body, when one was captured AND its body file is still readable; ""
	// otherwise (untraced job, hostile digest in the record, or a trace body
	// deleted out from under the store — all demote to "trace unavailable"
	// without failing recovery). ProbeEvery echoes the capture cadence.
	TraceDigest string
	ProbeEvery  int
	// TraceBytes is the trace body's size on disk (0 when unavailable).
	TraceBytes int
}

// Recovery is what replaying the WAL found.
type Recovery struct {
	// Completed digests have result bodies readable via ReadResult.
	Completed []CompletedJob
	// Pending submissions never reached a terminal record (crash, drain
	// cancellation) and should be re-admitted.
	Pending []PendingJob
	// Failed digests reached a terminal "failed" record; they are settled
	// (not re-run, not cached).
	Failed []string
	// Records counts well-formed WAL records replayed.
	Records int
	// TruncatedBytes is how much of a torn WAL tail was discarded (0 for
	// a clean log).
	TruncatedBytes int64
}

// Store is an open durable job store. Create one with Open; Log methods
// are safe for concurrent use.
type Store struct {
	dir string

	mu  sync.Mutex
	f   *os.File
	rec Recovery
	now func() int64 // ms since epoch; replaceable in tests
}

// Open creates dir (and its results/ subdirectory) if needed, replays the
// WAL, truncates any torn tail, and opens the log for appending.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{resultsDir, tracesDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s := &Store{
		dir: dir,
		now: func() int64 { return time.Now().UnixMilli() },
	}
	if err := s.replay(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.f = f
	return s, nil
}

func (s *Store) walPath() string { return filepath.Join(s.dir, walName) }

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// Recovery returns what Open found in the WAL. The slices are the
// caller's to keep; they are not updated by later appends.
func (s *Store) Recovery() Recovery { return s.rec }

// replay folds the WAL into the recovery state and truncates a torn tail.
func (s *Store) replay() error {
	data, err := os.ReadFile(s.walPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}

	type digestState struct {
		state      string // "pending", "done", "failed"
		job        string
		spec       json.RawMessage
		trace      string // trace artifact digest from the "done" record
		probeEvery int
		order      int // first-submit position, to keep re-admission in order
	}
	states := map[string]*digestState{}
	order := 0

	goodOffset := int64(0)
	rest := data
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // torn tail: final record never finished its newline
		}
		line := rest[:nl]
		var r record
		if err := json.Unmarshal(line, &r); err != nil || r.WAL != walVersion {
			break // corrupt or foreign record: stop trusting the log here
		}
		switch r.Op {
		case opSubmit:
			ds := states[r.Digest]
			if ds == nil {
				states[r.Digest] = &digestState{state: "pending", job: r.Job, spec: r.Spec, order: order}
				order++
			} else if ds.state == "failed" && r.Job != ds.job {
				// A deliberate resubmit after failure: eligible to run again.
				// (Same job ID means this is the failed job's own submit
				// record landing after its result — appends from admission
				// and completion race across goroutines — not a retry.)
				ds.state = "pending"
				ds.job, ds.spec = r.Job, r.Spec
			}
			// pending stays pending (one re-run covers every duplicate);
			// done stays done (content-addressed results cannot change).
		case opResult:
			ds := states[r.Digest]
			if ds == nil {
				ds = &digestState{job: r.Job, order: order}
				order++
				states[r.Digest] = ds
			}
			if ds.state != "done" { // done is sticky
				if r.State == "done" {
					ds.state = "done"
					// Hostile or malformed trace digests never become file
					// lookups: the job simply replays as untraced.
					if validDigest(r.Trace) {
						ds.trace, ds.probeEvery = r.Trace, r.ProbeEvery
					}
				} else {
					ds.state = "failed"
					ds.job = r.Job // pin the failed job for the resubmit rule
				}
			}
		default:
			// Unknown op from a future writer: skip the record but keep
			// replaying — the fields we understand are still versioned.
		}
		s.rec.Records++
		goodOffset += int64(nl + 1)
		rest = rest[nl+1:]
	}
	if goodOffset < int64(len(data)) {
		s.rec.TruncatedBytes = int64(len(data)) - goodOffset
		if err := os.Truncate(s.walPath(), goodOffset); err != nil {
			return fmt.Errorf("store: truncating torn WAL tail: %w", err)
		}
	}

	// Assemble recovery lists in first-submission order so re-admission
	// preserves the original queue order.
	type ordered struct {
		order int
		d     string
	}
	var all []ordered
	for d, ds := range states {
		all = append(all, ordered{ds.order, d})
	}
	for i := 1; i < len(all); i++ { // insertion sort; recovery sets are small
		for k := i; k > 0 && all[k-1].order > all[k].order; k-- {
			all[k-1], all[k] = all[k], all[k-1]
		}
	}
	for _, o := range all {
		ds := states[o.d]
		switch ds.state {
		case "done":
			// Trust the record only if the body it promises is readable:
			// result-before-record ordering makes a missing file possible
			// only through external deletion, which demotes to pending.
			if _, err := os.Stat(s.resultPath(o.d)); err == nil {
				cj := CompletedJob{Job: ds.job, Digest: o.d}
				// The trace artifact is best-effort: a missing body demotes
				// the job to "trace unavailable", never to pending.
				if ds.trace != "" {
					if fi, err := os.Stat(s.tracePath(ds.trace)); err == nil {
						cj.TraceDigest, cj.ProbeEvery = ds.trace, ds.probeEvery
						cj.TraceBytes = int(fi.Size())
					}
				}
				s.rec.Completed = append(s.rec.Completed, cj)
			} else if len(ds.spec) > 0 {
				s.rec.Pending = append(s.rec.Pending, PendingJob{Job: ds.job, Digest: o.d, Spec: ds.spec})
			}
		case "failed":
			s.rec.Failed = append(s.rec.Failed, o.d)
		case "pending":
			if len(ds.spec) > 0 {
				s.rec.Pending = append(s.rec.Pending, PendingJob{Job: ds.job, Digest: o.d, Spec: ds.spec})
			}
		}
	}
	return nil
}

// append writes one record line and syncs the log. Callers hold s.mu.
func (s *Store) appendLocked(r record) error {
	r.WAL = walVersion
	r.TMS = s.now()
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := s.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// LogSubmit records an admitted job: its ID, digest, and canonical spec
// (the bytes Spec.Canonical produced — recovery re-admits from exactly
// these).
func (s *Store) LogSubmit(jobID, digest string, canonicalSpec []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("store: closed")
	}
	return s.appendLocked(record{
		Op: opSubmit, Job: jobID, Digest: digest, Spec: canonicalSpec,
	})
}

// TraceArtifact is a finished flight-recorder trace to persist alongside
// a "done" result: the NDJSON body, its own SHA-256 content address, and
// the probe cadence it was captured with.
type TraceArtifact struct {
	Digest     string
	ProbeEvery int
	Body       []byte
}

// LogResult records a terminal state. For state "done", body is first
// written to the content-addressed result file (atomically, temp +
// rename) so the WAL record never points at missing bytes; a non-nil
// trace artifact is written the same way (trace-before-record) and its
// digest stamped into the record. For "failed", body and trace are
// ignored and only the settled marker is logged. Cancelled jobs should
// not be logged at all — absence is what makes them re-run.
func (s *Store) LogResult(jobID, digest, state, errMsg string, body []byte, tr *TraceArtifact) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("store: closed")
	}
	rec := record{
		Op: opResult, Job: jobID, Digest: digest, State: state, Error: errMsg, Bytes: len(body),
	}
	if state == "done" {
		if err := s.writeBlobLocked(resultsDir, digest, body); err != nil {
			return err
		}
		if tr != nil {
			if err := s.writeBlobLocked(tracesDir, tr.Digest, tr.Body); err != nil {
				return err
			}
			rec.Trace = tr.Digest
			rec.TraceBytes = len(tr.Body)
			rec.ProbeEvery = tr.ProbeEvery
		}
	}
	return s.appendLocked(rec)
}

func (s *Store) resultPath(digest string) string {
	return filepath.Join(s.dir, resultsDir, digest)
}

func (s *Store) tracePath(digest string) string {
	return filepath.Join(s.dir, tracesDir, digest)
}

// writeBlobLocked writes a content-addressed body file atomically under
// the given subdirectory. Re-writing an existing digest is a no-op: the
// bytes are content-addressed.
func (s *Store) writeBlobLocked(sub, digest string, body []byte) error {
	if !validDigest(digest) {
		return fmt.Errorf("store: invalid digest %q", digest)
	}
	path := filepath.Join(s.dir, sub, digest)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	tmp, err := os.CreateTemp(filepath.Join(s.dir, sub), "tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// ReadResult returns the stored NDJSON body for a completed digest.
func (s *Store) ReadResult(digest string) ([]byte, error) {
	if !validDigest(digest) {
		return nil, fmt.Errorf("store: invalid digest %q", digest)
	}
	b, err := os.ReadFile(s.resultPath(digest))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return b, nil
}

// ReadTrace returns the stored flight-recorder trace body addressed by
// the trace's own digest.
func (s *Store) ReadTrace(digest string) ([]byte, error) {
	if !validDigest(digest) {
		return nil, fmt.Errorf("store: invalid digest %q", digest)
	}
	b, err := os.ReadFile(s.tracePath(digest))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return b, nil
}

// validDigest guards the filesystem namespace: result files are named by
// digests, which are lowercase hex — anything else (path separators,
// dots) is refused.
func validDigest(d string) bool {
	if d == "" {
		return false
	}
	for i := 0; i < len(d); i++ {
		c := d[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Close syncs and closes the WAL. Idempotent; Log calls after Close fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
