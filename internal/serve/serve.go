// Package serve is the transport-free core of the cos-serve daemon: a
// long-lived job-queue service that runs simulation workloads — link
// exchanges, control streams, WLAN coordination rounds, and named
// experiment figures — on a sharded worker pool and streams each job's
// results as NDJSON.
//
// Three properties define the subsystem:
//
//   - Bounded admission. Every shard owns a bounded queue; when a job's
//     shard is full, Submit fails with ErrOverloaded immediately instead
//     of queueing unboundedly (the HTTP layer maps this to 429 with a
//     Retry-After hint). Queue depth and jobs in flight are exported as
//     gauges through internal/obs.
//
//   - Determinism. A job's result stream is a pure function of its
//     normalized Spec: all randomness derives from Spec.Seed, and records
//     are produced in simulation order, never completion order. Two
//     submissions of the same spec return byte-identical NDJSON bodies
//     regardless of shard count or concurrent load.
//
//   - Graceful drain. Drain stops admission (Submit fails with
//     ErrDraining, mapped to 503), lets queued and running jobs finish
//     inside the drain window, then cancels whatever remains via context.
//
// The package deliberately imports no transport: internal/serve/http owns
// the HTTP/JSON surface, and the PR-1 layering rule (net/http stays out of
// library packages) is frozen by the repository's import-hygiene test.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"cos/internal/obs"
	"cos/internal/obs/event"
	"cos/internal/serve/cache"
	"cos/internal/serve/store"
)

// Typed admission errors; the HTTP layer maps these to status codes.
var (
	// ErrOverloaded: the job's shard queue is full (HTTP 429).
	ErrOverloaded = errors.New("serve: admission queue full")
	// ErrDraining: the server no longer admits jobs (HTTP 503).
	ErrDraining = errors.New("serve: server is draining")
	// ErrUnknownJob: no job with the requested ID (HTTP 404).
	ErrUnknownJob = errors.New("serve: unknown job")
	// ErrTraceUnavailable: the job has no retrievable flight-recorder trace
	// — it was submitted untraced, did not finish done, or its persisted
	// trace body is gone (HTTP 404).
	ErrTraceUnavailable = errors.New("serve: trace unavailable")
	// ErrInvalidTraceOptions: the submission's trace options are
	// inconsistent — ProbeEvery < 0, or ProbeEvery > 0 without Trace
	// (HTTP 400).
	ErrInvalidTraceOptions = errors.New("serve: probe cadence requires tracing and must be >= 0")
)

// Config parameterizes a Server. The zero value selects sane defaults.
type Config struct {
	// Shards is the worker-shard count; each shard runs jobs serially off
	// its own bounded queue, so Shards is also the maximum number of jobs
	// in flight. Zero selects 2.
	Shards int
	// QueueDepth bounds each shard's queue (jobs admitted but not yet
	// running). Zero selects 16.
	QueueDepth int
	// DefaultTimeout is the per-job deadline applied when a spec carries
	// no timeout_ms. Zero selects 60s.
	DefaultTimeout time.Duration
	// Metrics receives the server's gauges and counters (default:
	// obs.Default()).
	Metrics *obs.Registry
	// Journal receives the server's structured lifecycle events (see
	// events.go for the vocabulary). Nil makes the server create and own
	// its own journal of JournalCapacity entries; pass one to share it
	// with other producers (the daemon adds its process-level events and
	// the stderr mirror on the same journal).
	Journal *event.Journal
	// JournalCapacity sizes the ring when the server creates its own
	// journal (0 selects event.DefaultCapacity; negative disables the
	// journal entirely — no events are recorded and GET /events is
	// unavailable).
	JournalCapacity int
	// SummaryEvery is the period between rolling-window summary frames on
	// the journal (0 disables; the daemon defaults to 1s).
	SummaryEvery time.Duration
	// Cache is the content-addressed result cache consulted at admission:
	// a submission whose spec digest is cached returns a job born terminal
	// with the stored byte stream, without touching a shard. Nil disables
	// caching — every submission runs. (The core keeps this opt-in so
	// determinism tests exercise real recomputation; the daemon enables it
	// by default.)
	Cache *cache.Cache
	// Store is the durable job store. When set, every admission appends a
	// WAL record, terminal results are persisted (done results with their
	// NDJSON bodies, failures as settled markers), and New replays the
	// store's recovery state: completed digests are loaded into the cache
	// and submissions that never reached a terminal record are re-admitted.
	// Nil disables persistence. The Server does not close the store; the
	// owner does, after Drain.
	Store *store.Store
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default()
	}
	return c
}

// Server is a running job service. Create one with New, submit jobs with
// Submit, and shut it down with Drain. All methods are safe for
// concurrent use.
type Server struct {
	cfg Config

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string        // job IDs in submission order
	byDigest map[string]*Job // newest job per spec digest
	byKey    map[string]*Job // jobs by idempotency key
	// traces maps a spec digest to its finished trace artifact's metadata
	// (the trace's own content address + capture cadence). Populated when a
	// traced job finishes done and from store recovery; consulted so a
	// cache-hit submission asking for the same cadence can reuse the
	// persisted trace instead of re-running.
	traces   map[string]traceMeta
	nextID   uint64
	nextSh   uint64 // round-robin shard cursor
	draining bool
	shards   []chan *Job

	wg        sync.WaitGroup
	drainOnce sync.Once

	journal    *event.Journal
	ownJournal bool      // Drain closes the journal only if New created it
	ops        *opsState // rolling windows behind summary frames

	queueDepth   *obs.Gauge
	inflight     *obs.Gauge
	submitted    *obs.Counter
	rejected     *obs.CounterFamily
	finished     *obs.CounterFamily
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	jobSeconds   *obs.Histogram
	queueSeconds *obs.Histogram
}

// New starts a server: Shards worker goroutines, each draining its own
// bounded queue.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
		byDigest:   map[string]*Job{},
		byKey:      map[string]*Job{},
		traces:     map[string]traceMeta{},
		shards:     make([]chan *Job, cfg.Shards),

		queueDepth: cfg.Metrics.Gauge("serve_queue_depth",
			"Jobs admitted but not yet running, across all shards."),
		inflight: cfg.Metrics.Gauge("serve_jobs_inflight",
			"Jobs currently executing on shard workers."),
		submitted: cfg.Metrics.Counter("serve_jobs_submitted_total",
			"Jobs admitted to the queue."),
		rejected: cfg.Metrics.CounterFamily("serve_jobs_rejected_total",
			"Jobs rejected at admission, by reason (overload, draining, invalid).", "reason"),
		finished: cfg.Metrics.CounterFamily("serve_jobs_finished_total",
			"Jobs reaching a terminal state, by state (done, failed, cancelled).", "state"),
		cacheHits: cfg.Metrics.Counter("serve_cache_hits_total",
			"Submissions served from the content-addressed result cache."),
		cacheMisses: cfg.Metrics.Counter("serve_cache_misses_total",
			"Submissions that missed the result cache and ran (0 when caching is disabled)."),
		jobSeconds: cfg.Metrics.Histogram("serve_job_seconds",
			"Job execution latency (running -> terminal).", nil),
		queueSeconds: cfg.Metrics.Histogram("serve_job_queue_seconds",
			"Job queue wait (submitted -> running).", nil),
	}
	switch {
	case cfg.Journal != nil:
		s.journal = cfg.Journal
	case cfg.JournalCapacity >= 0:
		s.journal = event.New(cfg.JournalCapacity)
		s.ownJournal = true
	}
	if s.journal != nil {
		s.ops = newOpsState()
	}
	for i := range s.shards {
		s.shards[i] = make(chan *Job, cfg.QueueDepth)
		s.wg.Add(1)
		go s.worker(i)
	}
	// Last: the summary goroutine reads server state, so every field must
	// be initialized before it starts.
	if s.ops != nil && cfg.SummaryEvery > 0 {
		s.startSummaryLoop(cfg.SummaryEvery)
	}
	s.recover()
	return s
}

// recover replays the durable store's recovery state: completed result
// bodies are loaded into the cache (so repeat submissions hit without
// touching disk), and submissions that never reached a terminal record —
// a crash, or a drain window that cancelled them — are re-admitted through
// the normal Submit path and re-run.
func (s *Server) recover() {
	if s.cfg.Store == nil {
		return
	}
	rec := s.cfg.Store.Recovery()
	if rec.Records == 0 {
		return
	}
	warmed := 0
	for _, c := range rec.Completed {
		if c.TraceDigest != "" {
			// Replayed trace artifacts become reusable: a cache-hit
			// submission asking for the same cadence gets the stored trace,
			// and TraceByDigest serves it without a job.
			s.mu.Lock()
			s.traces[c.Digest] = traceMeta{
				digest: c.TraceDigest, probeEvery: c.ProbeEvery, bytes: c.TraceBytes,
			}
			s.mu.Unlock()
		}
		if s.cfg.Cache == nil {
			continue // ResultByDigest still serves these straight from disk
		}
		if body, err := s.cfg.Store.ReadResult(c.Digest); err == nil {
			s.cfg.Cache.Put(c.Digest, body)
			warmed++
		}
	}
	requeued, dropped := 0, 0
	for _, p := range rec.Pending {
		spec, err := DecodeCanonical(p.Spec)
		if err != nil {
			dropped++ // foreign schema version or corrupt spec: unrunnable
			continue
		}
		job, err := s.SubmitWith(spec, SubmitOptions{})
		if err != nil {
			dropped++ // queue full mid-recovery; the WAL still holds it
			continue
		}
		requeued++
		s.emit(EventJobRecovered, job.ID(), RecoveredEvent{
			Kind: spec.normalized().Kind, Digest: p.Digest, PriorJob: p.Job,
		})
	}
	s.emit(EventStoreRecovered, "", StoreRecoveredEvent{
		Records:        rec.Records,
		Completed:      len(rec.Completed),
		CacheWarmed:    warmed,
		Requeued:       requeued,
		Dropped:        dropped,
		Failed:         len(rec.Failed),
		TruncatedBytes: rec.TruncatedBytes,
	})
}

// SubmitOptions refines SubmitWith admission.
type SubmitOptions struct {
	// IdempotencyKey deduplicates retries: a second submission carrying the
	// same key returns the job the first one admitted instead of admitting
	// another. Keys live for the server's lifetime. Empty disables
	// deduplication. Orthogonal to content addressing: two different keys
	// with the same spec are two submissions (the second may hit the cache).
	IdempotencyKey string
	// Trace makes the shard capture a schema-v2 flight-recorder trace for
	// the job, retrievable via Server.JobTrace once the job finishes done.
	// Trace options are not part of the spec digest: the result stream is
	// identical either way, and the trace body itself is deterministic (its
	// one wall-clock field is stripped), so a traced and an untraced run of
	// the same spec share a digest and a cache entry.
	Trace bool
	// ProbeEvery samples a deep PHY introspection probe on every Nth
	// exchange of a traced job (cos.WithProbe); 0 captures events only.
	// Setting it without Trace, or negative, fails admission with
	// ErrInvalidTraceOptions.
	ProbeEvery int
}

// traceMeta is the server's record of a finished trace artifact for one
// spec digest: the trace's own content address, the probe cadence it was
// captured with, and its body length.
type traceMeta struct {
	digest     string
	probeEvery int
	bytes      int
}

// Submit validates spec, admits a job, and returns it. It fails fast with
// ErrDraining once Drain has begun and ErrOverloaded when the target
// shard's queue is full. Equivalent to SubmitWith(spec, SubmitOptions{}).
func (s *Server) Submit(spec Spec) (*Job, error) {
	return s.SubmitWith(spec, SubmitOptions{})
}

// SubmitWith is Submit with options. When a result cache is configured and
// the spec's digest is cached, the returned job is born terminal
// (StateDone, Cached() true) with the stored byte stream — no shard work,
// no queue slot. Admission control still applies: a draining server
// refuses cache hits too.
func (s *Server) SubmitWith(spec Spec, opts SubmitOptions) (*Job, error) {
	norm := spec.normalized()
	if err := spec.Validate(); err != nil {
		s.rejected.With("invalid").Inc()
		s.noteSubmit(true)
		s.emit(EventJobRejected, "", RejectedEvent{
			Reason: "invalid", Kind: norm.Kind, Error: err.Error(), Shard: -1,
		})
		return nil, err
	}
	digest := norm.Digest()
	if opts.ProbeEvery < 0 || (opts.ProbeEvery > 0 && !opts.Trace) {
		s.rejected.With("invalid").Inc()
		s.noteSubmit(true)
		s.emit(EventJobRejected, "", RejectedEvent{
			Reason: "invalid", Kind: norm.Kind, Error: ErrInvalidTraceOptions.Error(), Shard: -1,
		})
		return nil, ErrInvalidTraceOptions
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejected.With("draining").Inc()
		s.noteSubmit(true)
		s.emit(EventJobRejected, "", RejectedEvent{
			Reason: "draining", Kind: norm.Kind, Shard: -1,
		})
		return nil, ErrDraining
	}
	if opts.IdempotencyKey != "" {
		if prior, ok := s.byKey[opts.IdempotencyKey]; ok {
			s.mu.Unlock()
			return prior, nil // a retry of an admission that already happened
		}
	}
	// A traced submission can only be served from the cache when the
	// digest's persisted trace was captured at the same probe cadence and
	// the durable store can re-serve its body; otherwise it falls through
	// to a real run (the result bytes are content-addressed, so re-running
	// cannot change them — the run exists to produce the trace).
	cacheable := true
	var tm traceMeta
	if opts.Trace {
		m, ok := s.traces[digest]
		if ok && m.probeEvery == opts.ProbeEvery && s.cfg.Store != nil {
			tm = m
		} else {
			cacheable = false
		}
	}
	if body, ok := s.lookupResultLocked(digest); ok && cacheable {
		s.nextID++
		job := newCachedJob(fmt.Sprintf("job-%06d", s.nextID), norm, digest, body)
		if opts.Trace {
			job.traced = true
			job.probeEvery = opts.ProbeEvery
			job.traceDigest = tm.digest
			job.traceBytes = tm.bytes
		}
		s.jobs[job.id] = job
		s.order = append(s.order, job.id)
		s.byDigest[digest] = job
		if opts.IdempotencyKey != "" {
			s.byKey[opts.IdempotencyKey] = job
		}
		s.mu.Unlock()
		s.submitted.Inc()
		s.cacheHits.Inc()
		s.noteSubmit(false)
		s.emit(EventJobCached, job.id, CachedEvent{
			Kind: norm.Kind, Seed: norm.Seed, Digest: digest, ResultBytes: len(body),
		})
		return job, nil
	}
	s.nextID++
	job := &Job{
		id:         fmt.Sprintf("job-%06d", s.nextID),
		spec:       norm,
		digest:     digest,
		traced:     opts.Trace,
		probeEvery: opts.ProbeEvery,
		buf:        newBuffer(),
		state:      StateQueued,
		submitted:  time.Now(),
		done:       make(chan struct{}),
	}
	shardIdx := int(s.nextSh % uint64(len(s.shards)))
	shard := s.shards[shardIdx]
	// Depth is measured before the send so the admitted event can report
	// "queue depth including this job" without racing the worker's dequeue.
	depthBefore := len(shard)
	select {
	case shard <- job:
		s.nextSh++
		s.jobs[job.id] = job
		s.order = append(s.order, job.id)
		s.byDigest[digest] = job
		if opts.IdempotencyKey != "" {
			s.byKey[opts.IdempotencyKey] = job
		}
		s.mu.Unlock()
		s.logSubmit(job)
		s.submitted.Inc()
		if s.cfg.Cache != nil {
			s.cacheMisses.Inc()
		}
		s.queueDepth.Add(1)
		s.noteSubmit(false)
		s.emit(EventJobAdmitted, job.id, AdmittedEvent{
			Kind: norm.Kind, Seed: norm.Seed, Shard: shardIdx, QueueDepth: depthBefore + 1,
		})
		return job, nil
	default:
		s.nextID--          // job was never admitted; reuse the ID
		depth := cap(shard) // rejected because the queue was at capacity
		s.mu.Unlock()
		s.rejected.With("overload").Inc()
		s.noteSubmit(true)
		s.emit(EventJobRejected, "", RejectedEvent{
			Reason: "overload", Kind: norm.Kind, Shard: shardIdx, QueueDepth: depth,
		})
		return nil, ErrOverloaded
	}
}

// lookupResultLocked resolves digest to a finished result body: the cache
// first, then the durable store (re-warming the cache on a disk hit, so
// eviction costs one read, not permanence). Callers hold s.mu; the nested
// cache lock is fine (nothing locks them in the other order) and the rare
// disk fallback is a single small-file read.
func (s *Server) lookupResultLocked(digest string) ([]byte, bool) {
	if s.cfg.Cache == nil {
		return nil, false
	}
	if body, ok := s.cfg.Cache.Get(digest); ok {
		return body, true
	}
	if s.cfg.Store != nil {
		if body, err := s.cfg.Store.ReadResult(digest); err == nil {
			s.cfg.Cache.Put(digest, body)
			return body, true
		}
	}
	return nil, false
}

// logSubmit appends the admission WAL record. Called off s.mu: the WAL
// fsyncs, and replay tolerates the resulting append races (see the store
// package's digest folding rules).
func (s *Server) logSubmit(j *Job) {
	if s.cfg.Store == nil {
		return
	}
	canonical, err := j.spec.Canonical()
	if err != nil {
		return // impossible for a validated spec; nothing durable to write
	}
	_ = s.cfg.Store.LogSubmit(j.id, j.digest, canonical)
}

// persistTerminal makes a terminal state durable and cacheable: done
// results enter the cache and the store (body first, then the WAL record);
// failures append a settled marker so restarts do not retry them;
// cancellations write nothing — absence is what makes them re-run after a
// restart. Runs as a finish hook, before Done() observers wake.
func (s *Server) persistTerminal(j *Job, st State) {
	switch st {
	case StateDone:
		body := j.buf.Bytes()
		if s.cfg.Cache != nil {
			s.cfg.Cache.Put(j.digest, body)
		}
		var tr *store.TraceArtifact
		if td, tb := j.traceInfo(); td != "" && tb != nil {
			tr = &store.TraceArtifact{Digest: td, ProbeEvery: j.probeEvery, Body: tb}
			s.mu.Lock()
			s.traces[j.digest] = traceMeta{digest: td, probeEvery: j.probeEvery, bytes: len(tb)}
			s.mu.Unlock()
		}
		if s.cfg.Store != nil {
			_ = s.cfg.Store.LogResult(j.id, j.digest, "done", "", body, tr)
		}
	case StateFailed:
		if s.cfg.Store != nil {
			_ = s.cfg.Store.LogResult(j.id, j.digest, "failed", j.Err(), nil, nil)
		}
	}
}

// noteSubmit feeds the rolling admission windows behind summary frames.
func (s *Server) noteSubmit(rejected bool) {
	if s.ops == nil {
		return
	}
	s.ops.submits.Add(1)
	if rejected {
		s.ops.rejects.Add(1)
	}
}

// Job returns the job with the given ID.
func (s *Server) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// JobByDigest returns the most recently admitted job for a spec digest.
func (s *Server) JobByDigest(digest string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byDigest[digest]
	if !ok {
		return nil, fmt.Errorf("%w: digest %q", ErrUnknownJob, digest)
	}
	return j, nil
}

// ResultByDigest returns the finished result body for a spec digest from
// the cache or the durable store, without admitting a job. The returned
// slice is read-only. It reports false when the digest has no completed
// result (never ran, still running, failed, or caching disabled).
func (s *Server) ResultByDigest(digest string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lookupResultLocked(digest)
}

// JobTrace returns the finished flight-recorder trace body for a job,
// along with the trace's own content address. It fails with
// ErrTraceUnavailable when the job was submitted untraced, did not finish
// done, or its trace body was persisted but is no longer readable.
// Callers wanting the trace of a still-running job wait on Done() first.
func (s *Server) JobTrace(j *Job) (body []byte, digest string, err error) {
	if !j.traced || j.State() != StateDone {
		return nil, "", ErrTraceUnavailable
	}
	digest, body = j.traceInfo()
	if digest == "" {
		return nil, "", ErrTraceUnavailable
	}
	if body != nil {
		return body, digest, nil
	}
	// Cache-hit and recovered jobs carry only the digest; the body lives
	// in the durable store.
	if s.cfg.Store != nil {
		if b, rerr := s.cfg.Store.ReadTrace(digest); rerr == nil {
			return b, digest, nil
		}
	}
	return nil, "", ErrTraceUnavailable
}

// TraceByDigest returns the finished trace body for a spec digest without
// resolving a job: the newest job for the digest when it holds the trace
// in memory, the durable store otherwise. It reports ErrTraceUnavailable
// when no finished trace exists for the digest.
func (s *Server) TraceByDigest(specDigest string) (body []byte, digest string, err error) {
	s.mu.Lock()
	j := s.byDigest[specDigest]
	tm, ok := s.traces[specDigest]
	s.mu.Unlock()
	if j != nil {
		if b, d, jerr := s.JobTrace(j); jerr == nil {
			return b, d, nil
		}
	}
	if ok && s.cfg.Store != nil {
		if b, rerr := s.cfg.Store.ReadTrace(tm.digest); rerr == nil {
			return b, tm.digest, nil
		}
	}
	return nil, "", ErrTraceUnavailable
}

// Jobs snapshots every known job's status in submission order.
func (s *Server) Jobs() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel requests cancellation of the job with the given ID. Queued jobs
// finish cancelled immediately; running jobs stop at their next context
// poll. Cancelling a terminal job is a no-op.
func (s *Server) Cancel(id string) error {
	j, err := s.Job(id)
	if err != nil {
		return err
	}
	// Queued jobs cancel synchronously inside requestCancel; the hook runs
	// before Done() closes so waiters see the journal event. Running jobs
	// are counted by the worker when their context poll fires.
	j.requestCancel(func() {
		s.finished.With("cancelled").Inc()
		s.emitTerminalEvent(j, nil)
	})
	return nil
}

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Health is a point-in-time admission snapshot: what /healthz serves and
// what fleet health-gating reads. State is "ok" while the server admits
// jobs and "draining" once Drain has begun; the queue numbers let an
// operator (or a coordinator choosing where to dispatch) see pressure
// before it turns into 429s.
type Health struct {
	// State is "ok" or "draining"; it carries the 200/503 decision so the
	// body alone is meaningful in logs.
	State string `json:"state"`
	// Shards is the worker-shard count (the maximum jobs in flight).
	Shards int `json:"shards"`
	// QueueDepth is the total of jobs admitted but not yet running;
	// Queues breaks it down per shard in shard order.
	QueueDepth int   `json:"queue_depth"`
	Queues     []int `json:"queues"`
	// Inflight is the number of jobs currently executing.
	Inflight int `json:"inflight"`
}

// Health snapshots the server's admission state.
func (s *Server) Health() Health {
	s.mu.Lock()
	h := Health{State: "ok", Shards: len(s.shards), Queues: make([]int, len(s.shards))}
	if s.draining {
		h.State = "draining"
	}
	for i, sh := range s.shards {
		h.Queues[i] = len(sh)
		h.QueueDepth += len(sh)
	}
	s.mu.Unlock()
	h.Inflight = int(s.inflight.Value())
	return h
}

// Drain shuts the server down gracefully: admission stops immediately
// (Submit returns ErrDraining), queued and running jobs get up to window
// to finish, and whatever is still in flight when the window closes is
// cancelled via context. Drain blocks until every worker has exited and
// reports whether all jobs completed without a window-expiry cancellation.
// It is idempotent; later calls return the first call's outcome.
func (s *Server) Drain(window time.Duration) bool {
	clean := true
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		for _, sh := range s.shards {
			close(sh) // workers exit after draining their queue
		}
		s.mu.Unlock()
		s.emit(EventDrainBegin, "", DrainBeginEvent{WindowMS: window.Seconds() * 1e3})

		done := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(done)
		}()
		timer := time.NewTimer(window)
		defer timer.Stop()
		select {
		case <-done:
		case <-timer.C:
			clean = false
			s.baseCancel() // cancel in-flight job contexts
			<-done
		}
		s.baseCancel()
		s.stopSummaryLoop()
		s.emit(EventDrainEnd, "", DrainEndEvent{Clean: clean})
		if s.ownJournal {
			s.journal.Close()
		}
	})
	return clean
}

// worker drains one shard serially until its queue is closed by Drain.
func (s *Server) worker(shard int) {
	defer s.wg.Done()
	for job := range s.shards[shard] {
		s.queueDepth.Add(-1)
		s.runJob(job)
	}
}

// runJob executes one dequeued job through its terminal state.
func (s *Server) runJob(j *Job) {
	if j.State().Terminal() {
		return // cancelled while queued
	}
	if s.baseCtx.Err() != nil || j.cancelRequested() {
		// The drain window expired (or the client cancelled) before this
		// queued job reached a worker.
		j.finish(StateCancelled, "", func() {
			s.finished.With("cancelled").Inc()
			s.emitTerminalEvent(j, nil)
		})
		return
	}

	timeout := s.cfg.DefaultTimeout
	if j.spec.TimeoutMS > 0 {
		timeout = time.Duration(j.spec.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	if !j.setRunning(cancel) {
		return // client cancellation won the race; Cancel counted it
	}
	s.queueSeconds.Observe(j.started.Sub(j.submitted).Seconds())
	s.inflight.Add(1)
	start := time.Now()
	s.emit(EventJobStarted, j.id, StartedEvent{
		Kind:        j.spec.Kind,
		QueueWaitMS: j.started.Sub(j.submitted).Seconds() * 1e3,
	})

	// agg correlates the job with the flight recorder: the run wires it
	// into every link as an exchange observer, so the terminal event can
	// report where the job's execution time went, stage by stage. tc, for
	// traced submissions only, captures the full schema-v2 trace on the
	// same hook; untraced jobs carry a nil capture and pay nothing.
	agg := &stageAgg{}
	var tc *traceCapture
	if j.traced {
		tc = newTraceCapture(j.probeEvery)
	}
	err := run(ctx, j.spec, j.buf, agg, tc)
	if tc != nil && err == nil {
		// Finalize before the finish hooks run: persistTerminal writes the
		// artifact and emitTerminalEvent stamps its digest.
		j.setTrace(tc.artifact())
	}

	s.inflight.Add(-1)
	s.jobSeconds.Observe(time.Since(start).Seconds())
	// Both finish hooks land before Done() fires: "wait for the job, then
	// read its trail / resubmit its spec" always sees the terminal journal
	// event and the populated cache.
	hooks := func(st State) []func() {
		return []func(){
			func() { s.persistTerminal(j, st) },
			func() { s.emitTerminalEvent(j, agg) },
		}
	}
	switch {
	case err == nil:
		s.finished.With("done").Inc()
		j.finish(StateDone, "", hooks(StateDone)...)
	case errors.Is(err, context.Canceled):
		s.finished.With("cancelled").Inc()
		j.finish(StateCancelled, "", hooks(StateCancelled)...)
	case errors.Is(err, context.DeadlineExceeded):
		s.finished.With("failed").Inc()
		j.finish(StateFailed, fmt.Sprintf("deadline exceeded after %v", timeout), hooks(StateFailed)...)
	default:
		s.finished.With("failed").Inc()
		j.finish(StateFailed, err.Error(), hooks(StateFailed)...)
	}
}

// SortStatuses orders statuses by ID (submission order, since IDs are
// zero-padded sequence numbers).
func SortStatuses(sts []Status) {
	sort.Slice(sts, func(i, k int) bool { return sts[i].ID < sts[k].ID })
}

// queueLen is a test hook: total queued jobs across shards.
func (s *Server) queueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, sh := range s.shards {
		n += len(sh)
	}
	return n
}
