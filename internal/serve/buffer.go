package serve

import (
	"io"
	"sync"
)

// buffer is an append-only byte log with blocking readers: the job's
// executor writes NDJSON records as they are produced, and any number of
// concurrent readers stream them from the start. Close marks the log
// final, after which drained readers return io.EOF.
type buffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	data   []byte
	closed bool
}

func newBuffer() *buffer {
	b := &buffer{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Write appends p; it never fails and never blocks on readers.
func (b *buffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	b.data = append(b.data, p...)
	b.mu.Unlock()
	b.cond.Broadcast()
	return len(p), nil
}

// Close marks the stream complete and wakes blocked readers. Idempotent.
func (b *buffer) Close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Len returns the bytes written so far.
func (b *buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.data)
}

// Bytes returns a copy of the full stream written so far.
func (b *buffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]byte, len(b.data))
	copy(out, b.data)
	return out
}

// Reader returns an independent reader positioned at the start.
func (b *buffer) Reader() *ResultReader { return &ResultReader{b: b} }

// ResultReader streams a job's NDJSON result bytes. Read blocks while the
// job is still producing output and returns io.EOF once the stream is
// closed and fully consumed. A ResultReader is not safe for concurrent
// use; take one per consumer.
type ResultReader struct {
	b   *buffer
	off int
}

// Read implements io.Reader.
func (r *ResultReader) Read(p []byte) (int, error) {
	b := r.b
	b.mu.Lock()
	defer b.mu.Unlock()
	for r.off >= len(b.data) && !b.closed {
		b.cond.Wait()
	}
	if r.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[r.off:])
	r.off += n
	return n, nil
}

var _ io.Reader = (*ResultReader)(nil)
