package serve

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// State is a job's lifecycle position. The zero value is invalid; jobs are
// born StateQueued and end in exactly one of StateDone, StateFailed, or
// StateCancelled.
type State int

const (
	// StateQueued: admitted, waiting for a shard worker.
	StateQueued State = iota + 1
	// StateRunning: executing on a shard worker.
	StateRunning
	// StateDone: finished successfully; the full result stream is final.
	StateDone
	// StateFailed: finished with an error (bad spec caught late, a
	// simulation error, or a deadline expiry).
	StateFailed
	// StateCancelled: cancelled before completion — by the client, or by
	// drain when the window expired.
	StateCancelled
)

// String names the state; unknown values render as State(n).
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one admitted simulation job. All fields are private; read state
// through Status and results through Result.
type Job struct {
	id     string
	spec   Spec   // normalized
	digest string // content address: spec.Digest() of the normalized spec
	cached bool   // born terminal from a result-cache hit; never ran

	// traced/probeEvery are the submission's trace request (immutable after
	// admission): traced jobs capture a schema-v2 flight-recorder trace.
	traced     bool
	probeEvery int

	buf *buffer

	mu        sync.Mutex
	state     State
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc // non-nil while running
	cancelReq bool               // client asked for cancellation
	done      chan struct{}      // closed on terminal state

	// traceDigest/traceBody land when a traced job finishes done: the body
	// is the captured NDJSON trace, the digest its own SHA-256 content
	// address. traceBody is nil for jobs recovered or cache-hit from the
	// durable store (the body is read back from disk on demand).
	traceDigest string
	traceBody   []byte
	traceBytes  int
}

// newCachedJob builds a job born terminal from a result-cache hit: state
// done, the stored byte stream already written and closed, Done() already
// closed. It never touches a shard.
func newCachedJob(id string, spec Spec, digest string, body []byte) *Job {
	now := time.Now()
	j := &Job{
		id:        id,
		spec:      spec,
		digest:    digest,
		cached:    true,
		buf:       newBuffer(),
		state:     StateDone,
		submitted: now,
		finished:  now,
		done:      make(chan struct{}),
	}
	j.buf.Write(body)
	j.buf.Close()
	close(j.done)
	return j
}

// Status is a point-in-time snapshot of a job, shaped for JSON.
type Status struct {
	// ID is the job's server-assigned identifier.
	ID string `json:"id"`
	// Kind echoes the spec's workload.
	Kind Kind `json:"kind"`
	// State is the lifecycle position ("queued", "running", ...).
	State string `json:"state"`
	// Terminal reports whether State is final.
	Terminal bool `json:"terminal"`
	// Error holds the failure message for failed jobs.
	Error string `json:"error,omitempty"`
	// Seed is the normalized seed the job runs with.
	Seed int64 `json:"seed"`
	// Digest is the spec's content address (Spec.Digest): equal digests
	// mean byte-identical result streams.
	Digest string `json:"digest"`
	// Cached reports the job was served from the content-addressed result
	// cache — born terminal, never touched a shard.
	Cached bool `json:"cached,omitempty"`
	// SubmittedAt/StartedAt/FinishedAt stamp the lifecycle (RFC 3339).
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// ResultBytes counts NDJSON result bytes produced so far.
	ResultBytes int `json:"result_bytes"`
	// Traced reports the submission asked for a flight-recorder trace;
	// ProbeEvery is the requested PHY-probe cadence (0 = spans only).
	Traced     bool `json:"traced,omitempty"`
	ProbeEvery int  `json:"probe_every,omitempty"`
	// TraceDigest is the finished trace's own content address (SHA-256 of
	// the NDJSON body served by GET /jobs/{key}/trace); set only once a
	// traced job reaches state done. TraceBytes is that body's length.
	TraceDigest string `json:"trace_digest,omitempty"`
	TraceBytes  int    `json:"trace_bytes,omitempty"`
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the job's normalized spec.
func (j *Job) Spec() Spec { return j.spec }

// Digest returns the spec's content address (Spec.Digest of the
// normalized spec), assigned at admission.
func (j *Job) Digest() string { return j.digest }

// Cached reports whether the job was served from the result cache: born
// terminal with the stored byte stream, without touching a shard.
func (j *Job) Cached() bool { return j.cached }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Err returns the failure message ("" unless StateFailed).
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errMsg
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.id,
		Kind:        j.spec.Kind,
		State:       j.state.String(),
		Terminal:    j.state.Terminal(),
		Error:       j.errMsg,
		Seed:        j.spec.Seed,
		Digest:      j.digest,
		Cached:      j.cached,
		SubmittedAt: j.submitted,
		ResultBytes: j.buf.Len(),
		Traced:      j.traced,
		ProbeEvery:  j.probeEvery,
		TraceDigest: j.traceDigest,
		TraceBytes:  j.traceBytes,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// Result returns a reader over the job's NDJSON result stream. Reads block
// until more output arrives and return io.EOF once the job is terminal and
// the stream is fully consumed. Multiple readers each see the full stream.
func (j *Job) Result() *ResultReader { return j.buf.Reader() }

// setRunning transitions queued → running; it reports false when the job
// was already cancelled.
func (j *Job) setRunning(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	return true
}

// finish moves the job to a terminal state exactly once. Optional notify
// hooks run after the state flips but before Done() closes, so an observer
// that waited on Done is guaranteed to see their side effects — the server
// uses this to journal the terminal event before waiters wake.
func (j *Job) finish(s State, errMsg string, notify ...func()) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = s
	j.errMsg = errMsg
	j.finished = time.Now()
	j.cancel = nil
	j.buf.Close()
	j.mu.Unlock()
	// Only the goroutine that performed the transition reaches this point,
	// so running hooks and closing done outside the lock is single-shot.
	for _, fn := range notify {
		fn()
	}
	close(j.done)
}

// requestCancel flags the job and cancels its run context if it has one.
// Queued jobs are finished immediately (running the notify hooks); running
// jobs finish when their simulation loop observes the cancelled context.
func (j *Job) requestCancel(notify ...func()) {
	j.mu.Lock()
	cancel := j.cancel
	queued := j.state == StateQueued
	j.cancelReq = true
	j.mu.Unlock()
	if queued {
		j.finish(StateCancelled, "", notify...)
	}
	if cancel != nil {
		cancel()
	}
}

// setTrace records a finished capture's artifact. Called by the shard
// worker after run() returns, before the finish hooks persist and
// journal the terminal state.
func (j *Job) setTrace(digest string, body []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.traceDigest = digest
	j.traceBody = body
	j.traceBytes = len(body)
}

// traceInfo snapshots the trace artifact: its digest and the in-memory
// body (nil when the body lives only in the durable store).
func (j *Job) traceInfo() (digest string, body []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.traceDigest, j.traceBody
}

// cancelRequested reports whether a client cancellation is pending.
func (j *Job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelReq
}
