package serve

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"cos"
	"cos/internal/experiments"
)

// Kind selects which simulation workload a job runs.
type Kind string

const (
	// KindLink pushes packets through one CoS link and reports per-packet
	// delivery, detection, and SNR measurements.
	KindLink Kind = "link"
	// KindStream performs repeated SendStream transfers (multi-packet
	// control messages) over one framed link.
	KindStream Kind = "stream"
	// KindWLAN runs the access-coordination network simulation, comparing
	// CoS grants against explicit grant frames.
	KindWLAN Kind = "wlan"
	// KindFigure regenerates one named experiment figure via
	// experiments.Run and streams its data points.
	KindFigure Kind = "figure"
)

// State is a job's lifecycle position. The zero value is invalid; jobs are
// born StateQueued and end in exactly one of StateDone, StateFailed, or
// StateCancelled.
type State int

const (
	// StateQueued: admitted, waiting for a shard worker.
	StateQueued State = iota + 1
	// StateRunning: executing on a shard worker.
	StateRunning
	// StateDone: finished successfully; the full result stream is final.
	StateDone
	// StateFailed: finished with an error (bad spec caught late, a
	// simulation error, or a deadline expiry).
	StateFailed
	// StateCancelled: cancelled before completion — by the client, or by
	// drain when the window expired.
	StateCancelled
)

// String names the state; unknown values render as State(n).
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Spec describes one simulation job. It doubles as the submit wire format
// (plain JSON), but carries no transport types — internal/serve/http owns
// the HTTP side.
//
// A job's entire output is a pure function of its normalized Spec: every
// random draw derives from Seed, never from scheduling, wall clock, or
// which shard ran it. Two submissions of an identical Spec return
// byte-identical result streams.
type Spec struct {
	// Kind selects the workload (required).
	Kind Kind `json:"kind"`
	// Seed drives all randomness (default 1).
	Seed int64 `json:"seed,omitempty"`
	// TimeoutMS overrides the server's default per-job deadline, in
	// milliseconds (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// SNRdB is the true channel SNR for link/stream/wlan jobs (default 18).
	SNRdB float64 `json:"snr_db,omitempty"`
	// Position is the receiver placement for link/stream jobs: "A", "B",
	// "C", or "flat" (default "B").
	Position string `json:"position,omitempty"`
	// Mobile enables the walking-speed channel for link/stream jobs.
	Mobile bool `json:"mobile,omitempty"`
	// PayloadBytes is the data payload per packet (default 1024).
	PayloadBytes int `json:"payload_bytes,omitempty"`

	// Packets is the packet count for link jobs (default 100, max 1e6).
	Packets int `json:"packets,omitempty"`
	// ControlBits requests control bits per packet for link jobs
	// (default 32; capped by the per-packet budget; 0 = data only).
	ControlBits int `json:"control_bits,omitempty"`

	// StreamBits is the control payload length per SendStream transfer
	// (default 24, max 4096).
	StreamBits int `json:"stream_bits,omitempty"`
	// Sends is the number of stream transfers a stream job performs
	// (default 10, max 1e4).
	Sends int `json:"sends,omitempty"`

	// Stations is the WLAN station count (default 3).
	Stations int `json:"stations,omitempty"`
	// Rounds is the WLAN scheduling round count (default 100, max 1e6).
	Rounds int `json:"rounds,omitempty"`

	// Figure is the experiment ID for figure jobs (see experiments.IDs).
	Figure string `json:"figure,omitempty"`
	// Scale shrinks figure sample sizes (default 0.1; 1 = publication).
	Scale float64 `json:"scale,omitempty"`
	// Workers bounds the figure's point-task pool (default 1; figure
	// output is bit-identical for any worker count).
	Workers int `json:"workers,omitempty"`
}

// normalized returns the spec with defaults applied. Execution and the
// determinism guarantee are defined over the normalized form.
func (s Spec) normalized() Spec {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.SNRdB == 0 {
		s.SNRdB = 18
	}
	if s.Position == "" {
		s.Position = "B"
	}
	if s.PayloadBytes == 0 {
		s.PayloadBytes = 1024
	}
	if s.Packets == 0 {
		s.Packets = 100
	}
	if s.ControlBits == 0 && s.Kind == KindLink {
		s.ControlBits = 32
	}
	if s.StreamBits == 0 {
		s.StreamBits = 24
	}
	if s.Sends == 0 {
		s.Sends = 10
	}
	if s.Stations == 0 {
		s.Stations = 3
	}
	if s.Rounds == 0 {
		s.Rounds = 100
	}
	if s.Scale == 0 {
		s.Scale = 0.1
	}
	if s.Workers == 0 {
		s.Workers = 1
	}
	return s
}

// parsePosition maps the spec's position name to a channel geometry.
func parsePosition(name string) (cos.Position, error) {
	switch strings.ToUpper(name) {
	case "A":
		return cos.PositionA, nil
	case "B":
		return cos.PositionB, nil
	case "C":
		return cos.PositionC, nil
	case "FLAT":
		return cos.PositionFlat, nil
	default:
		return 0, fmt.Errorf("serve: unknown position %q (want A, B, C or flat)", name)
	}
}

// Validate checks a normalized spec before admission, so malformed jobs
// are rejected at submit time instead of burning a worker slot.
func (s Spec) Validate() error {
	s = s.normalized()
	switch s.Kind {
	case KindLink, KindStream, KindWLAN, KindFigure:
	case "":
		return fmt.Errorf("serve: spec missing kind (want link, stream, wlan or figure)")
	default:
		return fmt.Errorf("serve: unknown kind %q (want link, stream, wlan or figure)", s.Kind)
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("serve: timeout_ms %d must be non-negative", s.TimeoutMS)
	}
	if s.Kind == KindLink || s.Kind == KindStream {
		if _, err := parsePosition(s.Position); err != nil {
			return err
		}
	}
	if s.SNRdB < -10 || s.SNRdB > 60 {
		return fmt.Errorf("serve: snr_db %v outside [-10,60]", s.SNRdB)
	}
	if s.PayloadBytes < 16 || s.PayloadBytes > 1<<16 {
		return fmt.Errorf("serve: payload_bytes %d outside [16,65536]", s.PayloadBytes)
	}
	switch s.Kind {
	case KindLink:
		if s.Packets < 1 || s.Packets > 1e6 {
			return fmt.Errorf("serve: packets %d outside [1,1000000]", s.Packets)
		}
		if s.ControlBits < 0 {
			return fmt.Errorf("serve: control_bits %d must be non-negative", s.ControlBits)
		}
	case KindStream:
		if s.StreamBits < 1 || s.StreamBits > 4096 {
			return fmt.Errorf("serve: stream_bits %d outside [1,4096]", s.StreamBits)
		}
		if s.Sends < 1 || s.Sends > 1e4 {
			return fmt.Errorf("serve: sends %d outside [1,10000]", s.Sends)
		}
	case KindWLAN:
		if s.Stations < 1 || s.Stations > 15 {
			return fmt.Errorf("serve: stations %d outside [1,15]", s.Stations)
		}
		if s.Rounds < 1 || s.Rounds > 1e6 {
			return fmt.Errorf("serve: rounds %d outside [1,1000000]", s.Rounds)
		}
	case KindFigure:
		if s.Figure == "" {
			return fmt.Errorf("serve: figure job missing figure ID (known: %v)", experiments.IDs())
		}
		if _, ok := experiments.Get(s.Figure); !ok {
			return fmt.Errorf("serve: unknown figure %q (known: %v)", s.Figure, experiments.IDs())
		}
		if s.Scale < 0 || s.Scale > 1 {
			return fmt.Errorf("serve: scale %v outside (0,1]", s.Scale)
		}
		if s.Workers < 0 {
			return fmt.Errorf("serve: workers %d must be non-negative", s.Workers)
		}
	}
	return nil
}

// Job is one admitted simulation job. All fields are private; read state
// through Status and results through Result.
type Job struct {
	id   string
	spec Spec // normalized

	buf *buffer

	mu        sync.Mutex
	state     State
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc // non-nil while running
	cancelReq bool               // client asked for cancellation
	done      chan struct{}      // closed on terminal state
}

// Status is a point-in-time snapshot of a job, shaped for JSON.
type Status struct {
	// ID is the job's server-assigned identifier.
	ID string `json:"id"`
	// Kind echoes the spec's workload.
	Kind Kind `json:"kind"`
	// State is the lifecycle position ("queued", "running", ...).
	State string `json:"state"`
	// Terminal reports whether State is final.
	Terminal bool `json:"terminal"`
	// Error holds the failure message for failed jobs.
	Error string `json:"error,omitempty"`
	// Seed is the normalized seed the job runs with.
	Seed int64 `json:"seed"`
	// SubmittedAt/StartedAt/FinishedAt stamp the lifecycle (RFC 3339).
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// ResultBytes counts NDJSON result bytes produced so far.
	ResultBytes int `json:"result_bytes"`
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the job's normalized spec.
func (j *Job) Spec() Spec { return j.spec }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Err returns the failure message ("" unless StateFailed).
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errMsg
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.id,
		Kind:        j.spec.Kind,
		State:       j.state.String(),
		Terminal:    j.state.Terminal(),
		Error:       j.errMsg,
		Seed:        j.spec.Seed,
		SubmittedAt: j.submitted,
		ResultBytes: j.buf.Len(),
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// Result returns a reader over the job's NDJSON result stream. Reads block
// until more output arrives and return io.EOF once the job is terminal and
// the stream is fully consumed. Multiple readers each see the full stream.
func (j *Job) Result() *ResultReader { return j.buf.Reader() }

// setRunning transitions queued → running; it reports false when the job
// was already cancelled.
func (j *Job) setRunning(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	return true
}

// finish moves the job to a terminal state exactly once. Optional notify
// hooks run after the state flips but before Done() closes, so an observer
// that waited on Done is guaranteed to see their side effects — the server
// uses this to journal the terminal event before waiters wake.
func (j *Job) finish(s State, errMsg string, notify ...func()) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = s
	j.errMsg = errMsg
	j.finished = time.Now()
	j.cancel = nil
	j.buf.Close()
	j.mu.Unlock()
	// Only the goroutine that performed the transition reaches this point,
	// so running hooks and closing done outside the lock is single-shot.
	for _, fn := range notify {
		fn()
	}
	close(j.done)
}

// requestCancel flags the job and cancels its run context if it has one.
// Queued jobs are finished immediately (running the notify hooks); running
// jobs finish when their simulation loop observes the cancelled context.
func (j *Job) requestCancel(notify ...func()) {
	j.mu.Lock()
	cancel := j.cancel
	queued := j.state == StateQueued
	j.cancelReq = true
	j.mu.Unlock()
	if queued {
		j.finish(StateCancelled, "", notify...)
	}
	if cancel != nil {
		cancel()
	}
}

// cancelRequested reports whether a client cancellation is pending.
func (j *Job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelReq
}
