package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"

	"cos"
	"cos/internal/trace"
)

// traceCapture records one job's flight-recorder trace (schema v2) into
// memory while the job runs on its shard. The capture rides the same
// cos.WithObserver hook the stage aggregator uses, so traced jobs pay one
// extra observer call per exchange and untraced jobs pay nothing.
//
// The captured body is deterministic: the one wall-clock field the trace
// schema carries (stage_ns) is stripped before serialization, so the
// remaining event stream is a pure function of the normalized spec — the
// same property the job's NDJSON result stream already has. That makes
// the finished trace content-addressable by its own SHA-256, persisted
// and replayed with the result-body discipline. Per-job wall-clock stage
// totals still reach operators through the terminal journal event's
// stage_ns map; the trace digest stamped on that same event is the
// exemplar link from the (nondeterministic) runtime metrics to the
// (deterministic) PHY ground truth.
//
// Captures run on a single shard worker goroutine; no locking.
type traceCapture struct {
	probeEvery int
	buf        bytes.Buffer
	w          *trace.Writer
}

// newTraceCapture starts a capture. The schema header is written up
// front so workloads with no exchange hook (figure jobs) still finish
// with a well-formed, versioned — if event-free — trace.
func newTraceCapture(probeEvery int) *traceCapture {
	c := &traceCapture{probeEvery: probeEvery}
	c.w = trace.NewWriter(&c.buf)
	c.w.WriteHeader()
	return c
}

// observe is the cos.Observer wired into the job's links. The exchange
// is cloned (the link reuses it and its slices after the callback), and
// StageNS is dropped: it is the only nondeterministic field an exchange
// carries, and keeping the trace body byte-stable is what makes it
// content-addressable.
func (c *traceCapture) observe(ex *cos.Exchange) {
	ex = ex.Clone()
	ev := trace.FromExchange(ex.Seq, ex, ex.DataBytes)
	ev.StageNS = nil
	c.w.Write(ev)
}

// artifact finalizes the capture: flush, content-address, return. Only
// called once, after the job's run returns.
func (c *traceCapture) artifact() (digest string, body []byte) {
	c.w.Flush()
	body = c.buf.Bytes()
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:]), body
}
