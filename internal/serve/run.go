package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"cos"
	"cos/internal/experiments"
	"cos/internal/pool"
	"cos/internal/scenario"
	"cos/internal/wlan"
)

// run executes a normalized spec, writing NDJSON records to w in
// simulation order. Every record is a struct (never a map), so field
// order — and therefore the byte stream — is deterministic; all
// randomness derives from spec.Seed.
//
// agg, when non-nil, is wired into the workload's links as an exchange
// observer so the caller can correlate the job with the flight recorder's
// per-stage timings. tc, when non-nil, rides the same hook and captures
// the job's full schema-v2 trace (plus sampled PHY probes via
// cos.WithProbe when tc.probeEvery >= 1). Figure jobs have no per-link
// hook (they run through the experiment pool) and leave both untouched —
// a traced figure job yields a header-only trace. WLAN jobs capture
// events from every station link but no probes (wlan.Config has no probe
// plumbing).
func run(ctx context.Context, spec Spec, w io.Writer, agg *stageAgg, tc *traceCapture) error {
	enc := json.NewEncoder(w)
	switch spec.Kind {
	case KindLink:
		return runLink(ctx, spec, enc, agg, tc)
	case KindStream:
		return runStream(ctx, spec, enc, agg, tc)
	case KindWLAN:
		return runWLAN(ctx, spec, enc, agg, tc)
	case KindFigure:
		return runFigure(ctx, spec, enc)
	case KindFigureTask:
		return runFigureTask(ctx, spec, enc)
	default:
		// Validate rejected unknown kinds at admission; reaching here is a
		// programming error, reported as a failed job rather than a panic.
		return &ConfigError{Field: "kind", Reason: "unknown kind " + string(spec.Kind)}
	}
}

// ConfigError reports a spec field the executor could not honor.
type ConfigError struct {
	Field  string
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string { return "serve: " + e.Field + ": " + e.Reason }

// linkOptions builds the cos.Link options shared by link and stream jobs;
// agg (when non-nil) is attached as the flight-recorder observer, and tc
// (when non-nil) as the trace-capture observer, with probe sampling when
// the capture asked for it.
func linkOptions(spec Spec, agg *stageAgg, tc *traceCapture) ([]cos.Option, error) {
	pos, err := parsePosition(spec.Position)
	if err != nil {
		return nil, err
	}
	opts := []cos.Option{
		cos.WithPosition(pos),
		cos.WithSNR(spec.SNRdB),
		cos.WithSeed(spec.Seed),
	}
	if spec.Scenario != "" {
		ref, err := scenario.ParseRef(spec.Scenario)
		if err != nil {
			return nil, err
		}
		opts = append(opts, cos.WithScenario(ref.Name, ref.Params...))
	}
	if spec.Mobile {
		opts = append(opts, cos.WithMobile())
	}
	if agg != nil {
		opts = append(opts, cos.WithObserver(agg.observe))
	}
	if tc != nil {
		opts = append(opts, cos.WithObserver(tc.observe))
		if tc.probeEvery >= 1 {
			opts = append(opts, cos.WithProbe(tc.probeEvery, nil))
		}
	}
	return opts, nil
}

// packetRecord is one link exchange.
type packetRecord struct {
	Type          string  `json:"type"` // "packet"
	Seq           int     `json:"seq"`
	RateMbps      int     `json:"rate_mbps"`
	DataOK        bool    `json:"data_ok"`
	CtrlBitsSent  int     `json:"ctrl_bits_sent"`
	CtrlOK        bool    `json:"ctrl_ok"`
	Silences      int     `json:"silences"`
	MeasuredSNRdB float64 `json:"measured_snr_db"`
}

// linkSummary closes a link job's stream.
type linkSummary struct {
	Type              string  `json:"type"` // "link_summary"
	Packets           int     `json:"packets"`
	DataDelivered     int     `json:"data_delivered"`
	CtrlSent          int     `json:"ctrl_sent"`
	CtrlDelivered     int     `json:"ctrl_delivered"`
	CtrlBitsDelivered int     `json:"ctrl_bits_delivered"`
	Silences          int     `json:"silences"`
	FalsePositives    int     `json:"detector_false_positives"`
	FalseNegatives    int     `json:"detector_false_negatives"`
	MeanMeasuredSNRdB float64 `json:"mean_measured_snr_db"`
	ElapsedSimSeconds float64 `json:"elapsed_sim_seconds"`
}

func runLink(ctx context.Context, spec Spec, enc *json.Encoder, agg *stageAgg, tc *traceCapture) error {
	opts, err := linkOptions(spec, agg, tc)
	if err != nil {
		return err
	}
	link, err := cos.NewLink(opts...)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(spec.Seed + 1))
	data := make([]byte, spec.PayloadBytes)
	sum := linkSummary{Type: "link_summary", Packets: spec.Packets}
	for i := 0; i < spec.Packets; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		rng.Read(data)
		var ctrl []byte
		if spec.ControlBits > 0 {
			budget, err := link.MaxControlBits(len(data))
			if err != nil {
				return err
			}
			n := spec.ControlBits
			if n > budget {
				n = budget
			}
			n = n / 4 * 4
			ctrl = make([]byte, n)
			for j := range ctrl {
				ctrl[j] = byte(rng.Intn(2))
			}
		}
		ex, err := link.Send(data, ctrl)
		if err != nil {
			return err
		}
		if ex.DataOK {
			sum.DataDelivered++
		}
		if len(ex.ControlSent) > 0 {
			sum.CtrlSent++
			if ex.ControlOK {
				sum.CtrlDelivered++
				sum.CtrlBitsDelivered += len(ex.ControlSent)
			}
		}
		sum.Silences += ex.SilencesInserted
		sum.FalsePositives += ex.Detection.FalsePositives
		sum.FalseNegatives += ex.Detection.FalseNegatives
		sum.MeanMeasuredSNRdB += ex.MeasuredSNRdB
		if err := enc.Encode(packetRecord{
			Type:          "packet",
			Seq:           ex.Seq,
			RateMbps:      ex.Mode.RateMbps,
			DataOK:        ex.DataOK,
			CtrlBitsSent:  len(ex.ControlSent),
			CtrlOK:        ex.ControlOK,
			Silences:      ex.SilencesInserted,
			MeasuredSNRdB: ex.MeasuredSNRdB,
		}); err != nil {
			return err
		}
	}
	sum.MeanMeasuredSNRdB /= float64(spec.Packets)
	sum.ElapsedSimSeconds = link.Now()
	return enc.Encode(sum)
}

// streamRecord is one SendStream transfer.
type streamRecord struct {
	Type               string `json:"type"` // "stream"
	Index              int    `json:"index"`
	Outcome            string `json:"outcome"`
	Delivered          bool   `json:"delivered"`
	PacketsUsed        int    `json:"packets_used"`
	FragmentsSent      int    `json:"fragments_sent"`
	FragmentsDelivered int    `json:"fragments_delivered"`
}

// streamSummary closes a stream job's stream.
type streamSummary struct {
	Type        string `json:"type"` // "stream_summary"
	Sends       int    `json:"sends"`
	Delivered   int    `json:"delivered"`
	PacketsUsed int    `json:"packets_used"`
}

func runStream(ctx context.Context, spec Spec, enc *json.Encoder, agg *stageAgg, tc *traceCapture) error {
	opts, err := linkOptions(spec, agg, tc)
	if err != nil {
		return err
	}
	opts = append(opts, cos.WithControlFraming())
	link, err := cos.NewLink(opts...)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(spec.Seed + 1))
	data := make([]byte, spec.PayloadBytes)
	payload := make([]byte, spec.StreamBits)
	sum := streamSummary{Type: "stream_summary", Sends: spec.Sends}
	for i := 0; i < spec.Sends; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		rng.Read(data)
		for j := range payload {
			payload[j] = byte(rng.Intn(2)) // SendStream takes a bit string
		}
		res, err := link.SendStream(payload, data)
		if err != nil {
			return err
		}
		if res.Delivered {
			sum.Delivered++
		}
		sum.PacketsUsed += res.PacketsUsed
		if err := enc.Encode(streamRecord{
			Type:               "stream",
			Index:              i,
			Outcome:            res.Outcome.String(),
			Delivered:          res.Delivered,
			PacketsUsed:        res.PacketsUsed,
			FragmentsSent:      res.FragmentsSent,
			FragmentsDelivered: res.FragmentsDelivered,
		}); err != nil {
			return err
		}
	}
	return enc.Encode(sum)
}

// wlanRecord reports one coordination scheme's run.
type wlanRecord struct {
	Type              string  `json:"type"` // "wlan_report"
	Coordination      string  `json:"coordination"`
	Rounds            int     `json:"rounds"`
	DataDelivered     int     `json:"data_delivered"`
	DataLost          int     `json:"data_lost"`
	GrantsDelivered   int     `json:"grants_delivered"`
	GrantsLost        int     `json:"grants_lost"`
	GrantDeliveryRate float64 `json:"grant_delivery_rate"`
	DataAirtimeSec    float64 `json:"data_airtime_seconds"`
	ControlAirtimeSec float64 `json:"control_airtime_seconds"`
	ControlOverhead   float64 `json:"control_overhead"`
}

// wlanSummary compares the two schemes.
type wlanSummary struct {
	Type                    string  `json:"type"` // "wlan_summary"
	Stations                int     `json:"stations"`
	Rounds                  int     `json:"rounds"`
	OverheadSavedFraction   float64 `json:"overhead_saved_fraction"`
	ControlAirtimeSavedSec  float64 `json:"control_airtime_saved_seconds"`
	CoSGrantDeliveryRate    float64 `json:"cos_grant_delivery_rate"`
	ExplGrantDeliveryRate   float64 `json:"explicit_grant_delivery_rate"`
	CoSDataDeliveredPerLost float64 `json:"cos_data_delivered_per_lost"`
}

func runWLAN(ctx context.Context, spec Spec, enc *json.Encoder, agg *stageAgg, tc *traceCapture) error {
	// wlan.Config carries a single observer hook; compose the stage
	// aggregator and the trace capture when both are wanted. Probes are
	// not plumbed through wlan, so WLAN traces carry events only.
	var observer cos.Observer
	switch {
	case agg != nil && tc != nil:
		observer = func(ex *cos.Exchange) { agg.observe(ex); tc.observe(ex) }
	case agg != nil:
		observer = agg.observe
	case tc != nil:
		observer = tc.observe
	}
	runOne := func(coord wlan.Coordination) (*wlan.Report, error) {
		n, err := wlan.New(wlan.Config{
			Stations:     spec.Stations,
			SNRdB:        spec.SNRdB,
			PayloadBytes: spec.PayloadBytes,
			Coordination: coord,
			Seed:         spec.Seed,
			Scenario:     spec.Scenario,
			Observer:     observer,
		})
		if err != nil {
			return nil, err
		}
		return n.RunContext(ctx, spec.Rounds)
	}
	record := func(coord wlan.Coordination, rep *wlan.Report) error {
		return enc.Encode(wlanRecord{
			Type:              "wlan_report",
			Coordination:      coord.String(),
			Rounds:            rep.Rounds,
			DataDelivered:     rep.DataDelivered,
			DataLost:          rep.DataLost,
			GrantsDelivered:   rep.GrantsDelivered,
			GrantsLost:        rep.GrantsLost,
			GrantDeliveryRate: rep.GrantDeliveryRate(),
			DataAirtimeSec:    rep.DataAirtime,
			ControlAirtimeSec: rep.ControlAirtime,
			ControlOverhead:   rep.ControlOverhead(),
		})
	}
	cosRep, err := runOne(wlan.CoordCoS)
	if err != nil {
		return err
	}
	if err := record(wlan.CoordCoS, cosRep); err != nil {
		return err
	}
	expRep, err := runOne(wlan.CoordExplicit)
	if err != nil {
		return err
	}
	if err := record(wlan.CoordExplicit, expRep); err != nil {
		return err
	}
	sum := wlanSummary{
		Type:                   "wlan_summary",
		Stations:               spec.Stations,
		Rounds:                 spec.Rounds,
		ControlAirtimeSavedSec: expRep.ControlAirtime - cosRep.ControlAirtime,
		CoSGrantDeliveryRate:   cosRep.GrantDeliveryRate(),
		ExplGrantDeliveryRate:  expRep.GrantDeliveryRate(),
	}
	if expRep.ControlOverhead() > 0 {
		sum.OverheadSavedFraction = 1 - cosRep.ControlOverhead()/expRep.ControlOverhead()
	}
	if cosRep.DataLost > 0 {
		sum.CoSDataDeliveredPerLost = float64(cosRep.DataDelivered) / float64(cosRep.DataLost)
	}
	return enc.Encode(sum)
}

// figureMeta opens a figure job's stream.
type figureMeta struct {
	Type   string `json:"type"` // "figure_meta"
	ID     string `json:"id"`
	Title  string `json:"title"`
	XLabel string `json:"x_label"`
	YLabel string `json:"y_label"`
	Series int    `json:"series"`
}

// pointRecord is one figure data point.
type pointRecord struct {
	Type   string  `json:"type"` // "point"
	Series string  `json:"series"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
}

// noteRecord carries a figure interpretation note.
type noteRecord struct {
	Type string `json:"type"` // "note"
	Note string `json:"note"`
}

func runFigure(ctx context.Context, spec Spec, enc *json.Encoder) error {
	res, err := experiments.Run(ctx, spec.Figure, experiments.RunOptions{
		Scale:    spec.Scale,
		Workers:  spec.Workers,
		Seed:     spec.Seed,
		Scenario: spec.Scenario,
	})
	if err != nil {
		return err
	}
	if err := enc.Encode(figureMeta{
		Type:   "figure_meta",
		ID:     res.ID,
		Title:  res.Title,
		XLabel: res.XLabel,
		YLabel: res.YLabel,
		Series: len(res.Series),
	}); err != nil {
		return err
	}
	for _, s := range res.Series {
		for i := range s.X {
			if err := enc.Encode(pointRecord{Type: "point", Series: s.Name, X: s.X[i], Y: s.Y[i]}); err != nil {
				return err
			}
		}
	}
	for _, n := range res.Notes {
		if err := enc.Encode(noteRecord{Type: "note", Note: n}); err != nil {
			return err
		}
	}
	return nil
}

// TaskRecord is the single NDJSON record a figure_task job streams: the
// point-task's serialized outcome, echoed with enough addressing (figure,
// task index) for a coordinator to slot it into the assembly without
// trusting response ordering. Exported because the fleet package decodes
// result bodies back into records.
type TaskRecord struct {
	Type   string          `json:"type"` // "figure_task"
	Figure string          `json:"figure"`
	Task   int             `json:"task"`
	Record json.RawMessage `json:"record"`
}

func runFigureTask(ctx context.Context, spec Spec, enc *json.Encoder) error {
	ts, ok := experiments.Tasks(spec.Figure, spec.taskRunOptions())
	if !ok {
		// Validate rejected non-decomposable figures at admission.
		return &ConfigError{Field: "figure", Reason: "figure " + spec.Figure + " does not decompose into point-tasks"}
	}
	if spec.Task < 0 || spec.Task >= ts.NumTasks() {
		return &ConfigError{Field: "task", Reason: fmt.Sprintf("task %d outside [0,%d)", spec.Task, ts.NumTasks())}
	}
	// The task RNG is derived exactly as the in-process pool derives it
	// (pool.TaskSeed(seed, i)), which is the whole determinism story: this
	// record is byte-for-byte what the local closure would have computed.
	rec, err := ts.RunTask(ctx, spec.Task, pool.TaskRNG(spec.Seed, spec.Task))
	if err != nil {
		return err
	}
	return enc.Encode(TaskRecord{Type: "figure_task", Figure: spec.Figure, Task: spec.Task, Record: rec})
}
