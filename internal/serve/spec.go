package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"cos"
	"cos/internal/experiments"
	"cos/internal/scenario"
)

// ErrInvalidScenario: the spec names a scenario the registry does not know
// or parameterizes one badly (HTTP 400, code "invalid_scenario").
var ErrInvalidScenario = errors.New("serve: invalid scenario")

// Kind selects which simulation workload a job runs.
type Kind string

const (
	// KindLink pushes packets through one CoS link and reports per-packet
	// delivery, detection, and SNR measurements.
	KindLink Kind = "link"
	// KindStream performs repeated SendStream transfers (multi-packet
	// control messages) over one framed link.
	KindStream Kind = "stream"
	// KindWLAN runs the access-coordination network simulation, comparing
	// CoS grants against explicit grant frames.
	KindWLAN Kind = "wlan"
	// KindFigure regenerates one named experiment figure via
	// experiments.Run and streams its data points.
	KindFigure Kind = "figure"
	// KindFigureTask runs a single point-task of a decomposable figure
	// (experiments.Tasks) and streams its one record. It is the unit the
	// fleet coordinator fans out: every task has its own spec digest, so
	// the content-addressed cache deduplicates across backends.
	KindFigureTask Kind = "figure_task"
)

// Spec describes one simulation job. It doubles as the submit wire format
// (plain JSON), but carries no transport types — internal/serve/http owns
// the HTTP side.
//
// A job's entire output is a pure function of its normalized Spec: every
// random draw derives from Seed, never from scheduling, wall clock, or
// which shard ran it. Two submissions of an identical Spec return
// byte-identical result streams. The canonical form of that guarantee is
// Canonical/Digest below: two specs are equal (produce the same normalized
// spec, and therefore the same result stream) if and only if their digests
// are equal.
type Spec struct {
	// Kind selects the workload (required).
	Kind Kind `json:"kind"`
	// Seed drives all randomness (default 1).
	Seed int64 `json:"seed,omitempty"`
	// TimeoutMS overrides the server's default per-job deadline, in
	// milliseconds (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// SNRdB is the true channel SNR for link/stream/wlan jobs (default 18).
	SNRdB float64 `json:"snr_db,omitempty"`
	// Position is the receiver placement for link/stream jobs: "A", "B",
	// "C", or "flat" (default "B").
	Position string `json:"position,omitempty"`
	// Mobile enables the walking-speed channel for link/stream jobs.
	Mobile bool `json:"mobile,omitempty"`
	// PayloadBytes is the data payload per packet (default 1024).
	PayloadBytes int `json:"payload_bytes,omitempty"`

	// Packets is the packet count for link jobs (default 100, max 1e6).
	Packets int `json:"packets,omitempty"`
	// ControlBits requests control bits per packet for link jobs
	// (default 32; capped by the per-packet budget; 0 = data only).
	ControlBits int `json:"control_bits,omitempty"`

	// StreamBits is the control payload length per SendStream transfer
	// (default 24, max 4096).
	StreamBits int `json:"stream_bits,omitempty"`
	// Sends is the number of stream transfers a stream job performs
	// (default 10, max 1e4).
	Sends int `json:"sends,omitempty"`

	// Stations is the WLAN station count (default 3).
	Stations int `json:"stations,omitempty"`
	// Rounds is the WLAN scheduling round count (default 100, max 1e6).
	Rounds int `json:"rounds,omitempty"`

	// Figure is the experiment ID for figure jobs (see experiments.IDs).
	Figure string `json:"figure,omitempty"`
	// Scale shrinks figure sample sizes (default 0.1; 1 = publication).
	Scale float64 `json:"scale,omitempty"`
	// Workers bounds the figure's point-task pool (default 1; figure
	// output is bit-identical for any worker count).
	Workers int `json:"workers,omitempty"`
	// Task is the point-task index for figure_task jobs: which task of the
	// figure's decomposition (experiments.Tasks under this spec's figure,
	// scale, seed and scenario) this job runs. Valid only for figure_task;
	// encoded canonically only for that kind, so every other kind keeps
	// its pre-task digest.
	Task int `json:"task,omitempty"`

	// Scenario selects a registered world scenario by reference — "pulse",
	// "hybrid-bscpec", "ofdm-padding:..." (see internal/scenario). Empty
	// selects the default scenario and encodes canonically as the absent
	// field, so every pre-scenario spec keeps its v1 digest.
	Scenario string `json:"scenario,omitempty"`
}

// normalized returns the spec with defaults applied. Execution, the
// determinism guarantee, and the canonical encoding are all defined over
// the normalized form.
func (s Spec) normalized() Spec {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.SNRdB == 0 {
		s.SNRdB = 18
	}
	if s.Position == "" {
		s.Position = "B"
	}
	s.Position = canonicalPosition(s.Position)
	if s.PayloadBytes == 0 {
		s.PayloadBytes = 1024
	}
	if s.Packets == 0 {
		s.Packets = 100
	}
	if s.ControlBits == 0 && s.Kind == KindLink {
		s.ControlBits = 32
	}
	if s.StreamBits == 0 {
		s.StreamBits = 24
	}
	if s.Sends == 0 {
		s.Sends = 10
	}
	if s.Stations == 0 {
		s.Stations = 3
	}
	if s.Rounds == 0 {
		s.Rounds = 100
	}
	if s.Scale == 0 {
		s.Scale = 0.1
	}
	if s.Workers == 0 {
		s.Workers = 1
	}
	if canon, err := scenario.CanonicalRef(s.Scenario); err == nil {
		// Fold aliases onto one digest: absent, "default", and a
		// parameterized spelling of a preset's own defaults are the same
		// world. Invalid references pass through for Validate to reject.
		s.Scenario = canon
	}
	return s
}

// canonicalPosition folds the case-insensitive position names onto their
// canonical spellings ("A", "B", "C", "flat"), so "b" and "B" — the same
// geometry — share one digest. Unknown names pass through unchanged and
// are rejected by Validate.
func canonicalPosition(name string) string {
	switch strings.ToUpper(name) {
	case "A":
		return "A"
	case "B":
		return "B"
	case "C":
		return "C"
	case "FLAT":
		return "flat"
	default:
		return name
	}
}

// parsePosition maps the spec's position name to a channel geometry.
func parsePosition(name string) (cos.Position, error) {
	switch strings.ToUpper(name) {
	case "A":
		return cos.PositionA, nil
	case "B":
		return cos.PositionB, nil
	case "C":
		return cos.PositionC, nil
	case "FLAT":
		return cos.PositionFlat, nil
	default:
		return 0, fmt.Errorf("serve: unknown position %q (want A, B, C or flat)", name)
	}
}

// SpecSchemaVersion is the version stamped into every canonical encoding.
// It changes only when the canonical byte layout changes — adding a spec
// field, renaming one, or altering a default all bump it, because any of
// those silently re-keys every digest.
const SpecSchemaVersion = 1

// Canonical returns the deterministic, versioned byte encoding of the
// normalized spec: a JSON object {"spec": {...}, "spec_schema": N} whose
// inner object carries every spec field explicitly (defaults applied, keys
// sorted). The encoding is the content-address domain for the result
// cache and the WAL — byte-for-byte stability is pinned by the
// testdata/spec_canonical_v1.golden test, so treat any diff there as a
// schema change requiring a SpecSchemaVersion bump.
func (s Spec) Canonical() ([]byte, error) {
	n := s.normalized()
	// Maps marshal with sorted keys, which is exactly the canonical-order
	// guarantee; every field is present so "absent" and "default" collapse
	// onto the same bytes.
	fields := map[string]any{
		"kind":          string(n.Kind),
		"seed":          n.Seed,
		"timeout_ms":    n.TimeoutMS,
		"snr_db":        n.SNRdB,
		"position":      n.Position,
		"mobile":        n.Mobile,
		"payload_bytes": n.PayloadBytes,
		"packets":       n.Packets,
		"control_bits":  n.ControlBits,
		"stream_bits":   n.StreamBits,
		"sends":         n.Sends,
		"stations":      n.Stations,
		"rounds":        n.Rounds,
		"figure":        n.Figure,
		"scale":         n.Scale,
		"workers":       n.Workers,
	}
	// The scenario key is present only when a non-default scenario is
	// selected: pre-scenario specs must keep their exact v1 canonical
	// bytes (testdata/spec_canonical_v1.golden) without a schema bump.
	if n.Scenario != "" {
		fields["scenario"] = n.Scenario
	}
	// The task key exists only for figure_task jobs (the scenario-field
	// precedent): every pre-existing kind keeps its v1 digest, and each
	// point-task of a figure gets its own content address — which is what
	// lets the result cache deduplicate tasks across a fleet.
	if n.Kind == KindFigureTask {
		fields["task"] = n.Task
	}
	b, err := json.Marshal(map[string]any{
		"spec":        fields,
		"spec_schema": SpecSchemaVersion,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: canonical encoding: %w", err)
	}
	return b, nil
}

// Digest returns the SHA-256 of the canonical encoding as lowercase hex.
// It is the spec's content address: equal digests mean equal normalized
// specs mean byte-identical result streams. The empty string is returned
// only if the canonical encoding fails, which cannot happen for a Spec
// built from plain values.
func (s Spec) Digest() string {
	b, err := s.Canonical()
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// digestHexLen is the length of a Digest string (SHA-256 as hex).
const digestHexLen = 2 * sha256.Size

// IsDigest reports whether key is shaped like a spec digest (64 lowercase
// hex characters). Job IDs ("job-000001") never collide with this shape,
// so one URL namespace can address both.
func IsDigest(key string) bool {
	if len(key) != digestHexLen {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// DecodeSpec parses a JSON spec, rejecting unknown fields and trailing
// data. Strict decoding is part of the digest contract: if misspelled
// fields were silently dropped, two *different* request bodies would
// collapse onto one digest and a client could be served a cached result
// for a spec it never meant to submit.
func DecodeSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("serve: decoding spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("serve: decoding spec: trailing data after JSON object")
	}
	return s, nil
}

// DecodeCanonical parses bytes produced by Canonical, checking the schema
// version. The WAL stores specs in canonical form, so recovery replays
// through here.
func DecodeCanonical(data []byte) (Spec, error) {
	var wrap struct {
		Schema int             `json:"spec_schema"`
		Spec   json.RawMessage `json:"spec"`
	}
	if err := json.Unmarshal(data, &wrap); err != nil {
		return Spec{}, fmt.Errorf("serve: decoding canonical spec: %w", err)
	}
	if wrap.Schema != SpecSchemaVersion {
		return Spec{}, fmt.Errorf("serve: canonical spec schema %d (this build speaks %d)", wrap.Schema, SpecSchemaVersion)
	}
	return DecodeSpec(wrap.Spec)
}

// Validate checks a normalized spec before admission, so malformed jobs
// are rejected at submit time instead of burning a worker slot.
func (s Spec) Validate() error {
	s = s.normalized()
	switch s.Kind {
	case KindLink, KindStream, KindWLAN, KindFigure, KindFigureTask:
	case "":
		return fmt.Errorf("serve: spec missing kind (want link, stream, wlan, figure or figure_task)")
	default:
		return fmt.Errorf("serve: unknown kind %q (want link, stream, wlan, figure or figure_task)", s.Kind)
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("serve: timeout_ms %d must be non-negative", s.TimeoutMS)
	}
	if s.Task != 0 && s.Kind != KindFigureTask {
		return fmt.Errorf("serve: task is only valid for figure_task jobs (kind %q)", s.Kind)
	}
	if s.Scenario != "" {
		if _, err := scenario.FromRef(s.Scenario); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidScenario, err)
		}
	}
	if s.Kind == KindLink || s.Kind == KindStream {
		if _, err := parsePosition(s.Position); err != nil {
			return err
		}
	}
	if s.SNRdB < -10 || s.SNRdB > 60 {
		return fmt.Errorf("serve: snr_db %v outside [-10,60]", s.SNRdB)
	}
	if s.PayloadBytes < 16 || s.PayloadBytes > 1<<16 {
		return fmt.Errorf("serve: payload_bytes %d outside [16,65536]", s.PayloadBytes)
	}
	switch s.Kind {
	case KindLink:
		if s.Packets < 1 || s.Packets > 1e6 {
			return fmt.Errorf("serve: packets %d outside [1,1000000]", s.Packets)
		}
		if s.ControlBits < 0 {
			return fmt.Errorf("serve: control_bits %d must be non-negative", s.ControlBits)
		}
	case KindStream:
		if s.StreamBits < 1 || s.StreamBits > 4096 {
			return fmt.Errorf("serve: stream_bits %d outside [1,4096]", s.StreamBits)
		}
		if s.Sends < 1 || s.Sends > 1e4 {
			return fmt.Errorf("serve: sends %d outside [1,10000]", s.Sends)
		}
	case KindWLAN:
		if s.Stations < 1 || s.Stations > 15 {
			return fmt.Errorf("serve: stations %d outside [1,15]", s.Stations)
		}
		if s.Rounds < 1 || s.Rounds > 1e6 {
			return fmt.Errorf("serve: rounds %d outside [1,1000000]", s.Rounds)
		}
	case KindFigure:
		if s.Figure == "" {
			return fmt.Errorf("serve: figure job missing figure ID (known: %v)", experiments.IDs())
		}
		if _, ok := experiments.Get(s.Figure); !ok {
			return fmt.Errorf("serve: unknown figure %q (known: %v)", s.Figure, experiments.IDs())
		}
		if s.Scale < 0 || s.Scale > 1 {
			return fmt.Errorf("serve: scale %v outside (0,1]", s.Scale)
		}
		if s.Workers < 0 {
			return fmt.Errorf("serve: workers %d must be non-negative", s.Workers)
		}
	case KindFigureTask:
		if s.Figure == "" {
			return fmt.Errorf("serve: figure_task job missing figure ID (task-decomposable: %v)", experiments.TaskIDs())
		}
		if s.Scale < 0 || s.Scale > 1 {
			return fmt.Errorf("serve: scale %v outside (0,1]", s.Scale)
		}
		ts, ok := experiments.Tasks(s.Figure, s.taskRunOptions())
		if !ok {
			return fmt.Errorf("serve: figure %q does not decompose into point-tasks (task-decomposable: %v)", s.Figure, experiments.TaskIDs())
		}
		if n := ts.NumTasks(); s.Task < 0 || s.Task >= n {
			return fmt.Errorf("serve: task %d outside [0,%d) for figure %q at scale %v", s.Task, n, s.Figure, s.Scale)
		}
	}
	return nil
}

// taskRunOptions maps a normalized figure_task spec onto the RunOptions
// that parameterize its figure's decomposition. Workers is pinned to 1:
// one task is one unit of work, and the pool never sees it.
func (s Spec) taskRunOptions() experiments.RunOptions {
	return experiments.RunOptions{Scale: s.Scale, Seed: s.Seed, Workers: 1, Scenario: s.Scenario}
}
