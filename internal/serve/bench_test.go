package serve

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"cos/internal/obs"
)

// benchServeOut enables TestWriteBenchServeReport; `make bench-serve`
// points it at BENCH_serve.json.
var benchServeOut = flag.String("bench-serve-out", "", "write the serve throughput/latency report to this JSON file")

// TestWriteBenchServeReport regenerates BENCH_serve.json (via `make
// bench-serve`): it saturates a GOMAXPROCS-sharded server with small link
// jobs for a fixed wall-clock budget, resubmitting on 429 backpressure, and
// records sustained jobs/sec plus p50/p99 job latency measured from the
// server's own status timestamps (running -> terminal). It skips itself
// unless -bench-serve-out is set so `go test ./...` stays fast.
func TestWriteBenchServeReport(t *testing.T) {
	if *benchServeOut == "" {
		t.Skip("set -bench-serve-out to write the report")
	}

	shards := runtime.GOMAXPROCS(0)
	s := New(Config{Shards: shards, QueueDepth: 64, Metrics: obs.NewRegistry()})
	spec := Spec{Kind: KindLink, PayloadBytes: 256, Packets: 50, ControlBits: 32}

	const window = 5 * time.Second
	start := time.Now()
	deadline := start.Add(window)
	var jobs []*Job
	var rejected int
	seed := int64(0)
	for time.Now().Before(deadline) {
		seed++
		sp := spec
		sp.Seed = seed
		j, err := s.Submit(sp)
		if err != nil {
			// Backpressure: the queue is full, which is exactly the
			// saturation we want. Yield and retry.
			rejected++
			time.Sleep(200 * time.Microsecond)
			continue
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		<-j.Done()
	}
	elapsed := time.Since(start)

	latencies := make([]float64, 0, len(jobs))
	for _, j := range jobs {
		st := j.Status()
		if st.State != "done" {
			t.Fatalf("bench job %s finished %q (err %q)", st.ID, st.State, st.Error)
		}
		latencies = append(latencies, st.FinishedAt.Sub(*st.StartedAt).Seconds())
	}
	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}

	report := struct {
		Description   string  `json:"description"`
		Shards        int     `json:"shards"`
		QueueDepth    int     `json:"queue_depth"`
		WindowSeconds float64 `json:"window_seconds"`
		JobsCompleted int     `json:"jobs_completed"`
		Rejected429   int     `json:"rejected_429"`
		JobsPerSecond float64 `json:"jobs_per_second"`
		P50JobSeconds float64 `json:"p50_job_seconds"`
		P99JobSeconds float64 `json:"p99_job_seconds"`
		SpecPackets   int     `json:"spec_packets"`
		SpecPayloadB  int     `json:"spec_payload_bytes"`
		GoVersion     string  `json:"go_version"`
	}{
		Description:   "cos-serve sustained throughput: small link jobs submitted against a GOMAXPROCS-sharded pool until the wall-clock window closes, resubmitting on 429; latency is running->terminal from the server's own status timestamps",
		Shards:        shards,
		QueueDepth:    64,
		WindowSeconds: elapsed.Seconds(),
		JobsCompleted: len(jobs),
		Rejected429:   rejected,
		JobsPerSecond: float64(len(jobs)) / elapsed.Seconds(),
		P50JobSeconds: pct(0.50),
		P99JobSeconds: pct(0.99),
		SpecPackets:   spec.Packets,
		SpecPayloadB:  spec.PayloadBytes,
		GoVersion:     runtime.Version(),
	}
	if !s.Drain(30 * time.Second) {
		t.Fatal("bench server did not drain cleanly")
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchServeOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %.0f jobs/sec, p99 %.1fms over %d jobs (%d rejections)",
		*benchServeOut, report.JobsPerSecond, report.P99JobSeconds*1e3, len(jobs), rejected)
}
