package serve

import (
	"encoding/json"
	"testing"
	"time"

	"cos"
	"cos/internal/obs"
	"cos/internal/obs/event"
)

// eventsOfType filters a journal snapshot.
func eventsOfType(evs []event.Event, typ string) []event.Event {
	var out []event.Event
	for _, ev := range evs {
		if ev.Type == typ {
			out = append(out, ev)
		}
	}
	return out
}

func decodeInto(t *testing.T, ev event.Event, v any) {
	t.Helper()
	if err := json.Unmarshal(ev.Data, v); err != nil {
		t.Fatalf("decoding %s payload: %v\n%s", ev.Type, err, ev.Data)
	}
}

// TestJobLifecycleEvents is the tentpole's core contract: a job's journal
// trail is admitted -> started -> finished, and the terminal event carries
// the flight recorder's per-stage nanosecond totals.
func TestJobLifecycleEvents(t *testing.T) {
	s := New(Config{Shards: 1, Metrics: obs.NewRegistry()})
	j, err := s.Submit(Spec{Kind: KindLink, Seed: 3, Packets: 5, PayloadBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	s.Drain(5 * time.Second)

	evs := s.Journal().Snapshot(0)
	admitted := eventsOfType(evs, EventJobAdmitted)
	if len(admitted) != 1 || admitted[0].Job != j.ID() {
		t.Fatalf("admitted events = %+v", admitted)
	}
	var adm AdmittedEvent
	decodeInto(t, admitted[0], &adm)
	if adm.Kind != KindLink || adm.Seed != 3 || adm.Shard != 0 || adm.QueueDepth < 1 {
		t.Fatalf("admitted payload = %+v", adm)
	}

	started := eventsOfType(evs, EventJobStarted)
	if len(started) != 1 || started[0].Job != j.ID() {
		t.Fatalf("started events = %+v", started)
	}

	finished := eventsOfType(evs, EventJobFinished)
	if len(finished) != 1 || finished[0].Job != j.ID() {
		t.Fatalf("finished events = %+v", finished)
	}
	var term TerminalEvent
	decodeInto(t, finished[0], &term)
	if term.State != "done" || term.RunMS <= 0 || term.ResultBytes == 0 {
		t.Fatalf("terminal payload = %+v", term)
	}

	// The stage_ns map must cover the full flight-recorder stage
	// vocabulary, with real time recorded in the always-on stages.
	if len(term.StageNS) != int(cos.StageCount) {
		t.Fatalf("stage_ns has %d keys, want %d: %v", len(term.StageNS), cos.StageCount, term.StageNS)
	}
	for _, name := range cos.StageNames() {
		if _, ok := term.StageNS[name]; !ok {
			t.Errorf("stage_ns missing stage %q", name)
		}
	}
	for _, always := range []string{"tx_encode", "channel", "rx_frontend"} {
		if term.StageNS[always] <= 0 {
			t.Errorf("stage_ns[%s] = %d, want > 0", always, term.StageNS[always])
		}
	}

	// Sequence numbers order the lifecycle.
	if !(admitted[0].Seq < started[0].Seq && started[0].Seq < finished[0].Seq) {
		t.Fatalf("lifecycle out of order: admitted=%d started=%d finished=%d",
			admitted[0].Seq, started[0].Seq, finished[0].Seq)
	}

	// Drain bracketing.
	if n := len(eventsOfType(evs, EventDrainBegin)); n != 1 {
		t.Fatalf("drain_begin events = %d", n)
	}
	ends := eventsOfType(evs, EventDrainEnd)
	if len(ends) != 1 {
		t.Fatalf("drain_end events = %d", len(ends))
	}
	var de DrainEndEvent
	decodeInto(t, ends[0], &de)
	if !de.Clean {
		t.Fatal("drain_end clean = false, want true")
	}
	if !s.Journal().Closed() {
		t.Fatal("server-owned journal should close at drain end")
	}
}

// TestStageCorrelationAcrossKinds checks that stream and wlan jobs also
// carry flight-recorder totals (figure jobs intentionally do not).
func TestStageCorrelationAcrossKinds(t *testing.T) {
	s := New(Config{Shards: 2, Metrics: obs.NewRegistry()})
	defer s.Drain(10 * time.Second)

	for _, tc := range []struct {
		spec      Spec
		wantStage bool
	}{
		{Spec{Kind: KindStream, Sends: 2, StreamBits: 16, PayloadBytes: 64}, true},
		{Spec{Kind: KindWLAN, Stations: 2, Rounds: 3, PayloadBytes: 64}, true},
		{Spec{Kind: KindFigure, Figure: "fig2", Scale: 0.05}, false},
	} {
		j, err := s.Submit(tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec.Kind, err)
		}
		<-j.Done()
		evs := s.Journal().Snapshot(0)
		var term *TerminalEvent
		for _, ev := range eventsOfType(evs, EventJobFinished) {
			if ev.Job == j.ID() {
				term = new(TerminalEvent)
				decodeInto(t, ev, term)
			}
		}
		if term == nil {
			t.Fatalf("%s: no job_finished event", tc.spec.Kind)
		}
		if tc.wantStage && term.StageNS["tx_encode"] <= 0 {
			t.Errorf("%s: stage_ns = %v, want tx_encode > 0", tc.spec.Kind, term.StageNS)
		}
		if !tc.wantStage && term.StageNS != nil {
			t.Errorf("%s: stage_ns = %v, want omitted", tc.spec.Kind, term.StageNS)
		}
	}
}

func TestRejectEventsCarryQueueContext(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 1, Metrics: obs.NewRegistry()})
	defer s.Drain(10 * time.Second)

	// Invalid spec.
	if _, err := s.Submit(Spec{Kind: "nope"}); err == nil {
		t.Fatal("invalid spec admitted")
	}
	// Saturate the single shard: one running + one queued, then overload.
	slow := Spec{Kind: KindLink, Packets: 2000, PayloadBytes: 64}
	var overloaded bool
	for i := 0; i < 64 && !overloaded; i++ {
		_, err := s.Submit(slow)
		overloaded = err == ErrOverloaded
	}
	if !overloaded {
		t.Fatal("never hit ErrOverloaded")
	}

	evs := s.Journal().Snapshot(0)
	rejects := eventsOfType(evs, EventJobRejected)
	if len(rejects) < 2 {
		t.Fatalf("rejected events = %d, want >= 2", len(rejects))
	}
	var sawInvalid, sawOverload bool
	for _, ev := range rejects {
		var rej RejectedEvent
		decodeInto(t, ev, &rej)
		switch rej.Reason {
		case "invalid":
			sawInvalid = true
			if rej.Error == "" || rej.Shard != -1 {
				t.Errorf("invalid reject payload = %+v", rej)
			}
		case "overload":
			sawOverload = true
			if rej.Shard != 0 || rej.QueueDepth < 1 {
				t.Errorf("overload reject payload = %+v", rej)
			}
		}
	}
	if !sawInvalid || !sawOverload {
		t.Fatalf("missing reject reasons: invalid=%v overload=%v", sawInvalid, sawOverload)
	}
}

func TestDrainingRejectEventAndSharedJournalStaysOpen(t *testing.T) {
	j := event.New(64)
	s := New(Config{Shards: 1, Metrics: obs.NewRegistry(), Journal: j})
	s.Drain(time.Second)
	if _, err := s.Submit(Spec{Kind: KindLink}); err != ErrDraining {
		t.Fatalf("submit while draining = %v", err)
	}
	rejects := eventsOfType(j.Snapshot(0), EventJobRejected)
	if len(rejects) != 1 {
		t.Fatalf("rejected events = %d, want 1", len(rejects))
	}
	var rej RejectedEvent
	decodeInto(t, rejects[0], &rej)
	if rej.Reason != "draining" {
		t.Fatalf("reason = %q", rej.Reason)
	}
	// An externally supplied journal is the daemon's to close, not the
	// server's.
	if j.Closed() {
		t.Fatal("shared journal closed by Drain")
	}
}

func TestSummaryFrames(t *testing.T) {
	s := New(Config{Shards: 1, Metrics: obs.NewRegistry()})
	j, err := s.Submit(Spec{Kind: KindLink, Packets: 3, PayloadBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()

	sum := s.summarize(time.Now())
	if sum.SubmitsPerSec <= 0 {
		t.Fatalf("submits_per_sec = %v, want > 0", sum.SubmitsPerSec)
	}
	if sum.JobsPerSec <= 0 {
		t.Fatalf("jobs_per_sec = %v, want > 0", sum.JobsPerSec)
	}
	if sum.RejectRate != 0 {
		t.Fatalf("reject_rate = %v, want 0", sum.RejectRate)
	}
	if sum.RunMSP50 <= 0 || sum.RunMSP99 < sum.RunMSP50 {
		t.Fatalf("run quantiles p50=%v p99=%v", sum.RunMSP50, sum.RunMSP99)
	}
	if sum.StageMSP50["tx_encode"] <= 0 {
		t.Fatalf("stage_ms_p50 = %v, want tx_encode > 0", sum.StageMSP50)
	}

	// The periodic loop emits frames on its own when configured.
	s2 := New(Config{Shards: 1, Metrics: obs.NewRegistry(), SummaryEvery: 10 * time.Millisecond})
	deadline := time.Now().Add(5 * time.Second)
	for len(eventsOfType(s2.Journal().Snapshot(0), EventSummary)) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no summary frame emitted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s2.Drain(time.Second)
	s.Drain(time.Second)
}

// TestJournalDisabled pins the opt-out: JournalCapacity < 0 records
// nothing and Journal() is nil.
func TestJournalDisabled(t *testing.T) {
	s := New(Config{Shards: 1, Metrics: obs.NewRegistry(), JournalCapacity: -1})
	defer s.Drain(time.Second)
	if s.Journal() != nil {
		t.Fatal("Journal() should be nil when disabled")
	}
	j, err := s.Submit(Spec{Kind: KindLink, Packets: 1, PayloadBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.State() != StateDone {
		t.Fatalf("job state = %v", j.State())
	}
}
