package serve

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"
	"time"

	"cos"
	"cos/internal/obs"
	"cos/internal/obs/event"
)

// benchEventsOut enables TestWriteBenchEventsReport; `make bench-events`
// points it at BENCH_events.json.
var benchEventsOut = flag.String("bench-events-out", "", "write the event-journal overhead report to this JSON file")

// benchSaturate runs the same saturation loop as the serve throughput
// bench and returns sustained jobs/sec.
func benchSaturate(t *testing.T, cfg Config, window time.Duration) float64 {
	t.Helper()
	s := New(cfg)
	spec := Spec{Kind: KindLink, PayloadBytes: 256, Packets: 50, ControlBits: 32}
	start := time.Now()
	deadline := start.Add(window)
	var jobs []*Job
	seed := int64(0)
	for time.Now().Before(deadline) {
		seed++
		sp := spec
		sp.Seed = seed
		j, err := s.Submit(sp)
		if err != nil {
			time.Sleep(200 * time.Microsecond)
			continue
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		<-j.Done()
	}
	elapsed := time.Since(start)
	if !s.Drain(30 * time.Second) {
		t.Fatal("bench server did not drain cleanly")
	}
	return float64(len(jobs)) / elapsed.Seconds()
}

// benchLinkExchange measures a bare link exchange with and without the
// stage-aggregating observer, mirroring BenchmarkLinkExchange's setup.
func benchLinkExchange(b *testing.B, agg *stageAgg) {
	b.Helper()
	opts := []cos.Option{cos.WithSNR(20), cos.WithSeed(6)}
	if agg != nil {
		opts = append(opts, cos.WithObserver(agg.observe))
	}
	link, err := cos.NewLink(opts...)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 1024)
	ctrl := make([]byte, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Respect the adaptive control budget, as BenchmarkLinkExchange does.
		maxBits, err := link.MaxControlBits(len(data))
		if err != nil {
			b.Fatal(err)
		}
		n := len(ctrl)
		if n > maxBits {
			n = maxBits / 4 * 4
		}
		if _, err := link.Send(data, ctrl[:n]); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWriteBenchEventsReport regenerates BENCH_events.json (via `make
// bench-events`). It quantifies the operations plane's cost at three
// levels — the raw journal append, the per-exchange observer on a bare
// link, and end-to-end serve throughput with the journal on vs off — and
// enforces the acceptance budget: journal+observer overhead on the serve
// path stays within ~2% (with scheduling-noise tolerance).
func TestWriteBenchEventsReport(t *testing.T) {
	if *benchEventsOut == "" {
		t.Skip("set -bench-events-out to write the report")
	}

	// Level 1: raw journal append cost (the price of one event).
	appendRes := testing.Benchmark(func(b *testing.B) {
		j := event.New(event.DefaultCapacity)
		payload := AdmittedEvent{Kind: KindLink, Seed: 1, Shard: 0, QueueDepth: 3}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j.Append(EventJobAdmitted, "job-000001", payload)
		}
	})
	// ...and with a subscriber attached (the /events fan-out path).
	appendSubRes := testing.Benchmark(func(b *testing.B) {
		j := event.New(event.DefaultCapacity)
		sub := j.Subscribe(0, 64)
		go func() {
			for range sub.C() {
			}
		}()
		defer sub.Cancel()
		payload := AdmittedEvent{Kind: KindLink, Seed: 1, Shard: 0, QueueDepth: 3}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j.Append(EventJobAdmitted, "job-000001", payload)
		}
	})

	// Level 2: per-exchange observer cost on a bare link.
	plainLink := testing.Benchmark(func(b *testing.B) { benchLinkExchange(b, nil) })
	agg := &stageAgg{}
	observedLink := testing.Benchmark(func(b *testing.B) { benchLinkExchange(b, agg) })
	if plainLink.N == 0 || observedLink.N == 0 {
		t.Fatal("link benchmark failed to run (b.Fatal inside)")
	}
	if agg.toMap() == nil {
		t.Fatal("stage observer never fired during the observed benchmark")
	}

	// Level 3: end-to-end serve throughput, journal off vs on. Three
	// interleaved trials each; best-of to shed scheduler noise.
	shards := runtime.GOMAXPROCS(0)
	const window = 3 * time.Second
	off := Config{Shards: shards, QueueDepth: 64, Metrics: obs.NewRegistry(), JournalCapacity: -1}
	on := Config{Shards: shards, QueueDepth: 64, Metrics: obs.NewRegistry(), SummaryEvery: time.Second}
	var jpsOff, jpsOn float64
	for i := 0; i < 3; i++ {
		if v := benchSaturate(t, off, window); v > jpsOff {
			jpsOff = v
		}
		on.Metrics = obs.NewRegistry()
		if v := benchSaturate(t, on, window); v > jpsOn {
			jpsOn = v
		}
	}
	overhead := 1 - jpsOn/jpsOff

	linkNsPlain := float64(plainLink.NsPerOp())
	linkNsObserved := float64(observedLink.NsPerOp())
	linkOverhead := linkNsObserved/linkNsPlain - 1

	report := struct {
		Description        string  `json:"description"`
		JournalAppendNsOp  int64   `json:"journal_append_ns_op"`
		JournalAppendBOp   int64   `json:"journal_append_bytes_op"`
		AppendWithSubNsOp  int64   `json:"journal_append_with_subscriber_ns_op"`
		LinkExchangeNsOp   int64   `json:"link_exchange_ns_op"`
		ObservedLinkNsOp   int64   `json:"link_exchange_observed_ns_op"`
		LinkObserverFrac   float64 `json:"link_observer_overhead_frac"`
		Shards             int     `json:"shards"`
		JobsPerSecPlain    float64 `json:"serve_jobs_per_sec_journal_off"`
		JobsPerSecJournal  float64 `json:"serve_jobs_per_sec_journal_on"`
		JournalOverhead    float64 `json:"serve_journal_overhead_frac"`
		OverheadBudgetFrac float64 `json:"overhead_budget_frac"`
		GoVersion          string  `json:"go_version"`
	}{
		Description:        "operations-plane cost: raw journal append, per-exchange stage observer on a bare link, and end-to-end serve throughput with the event journal (plus 1s summary frames) on vs off; best of 3 interleaved saturation trials per mode",
		JournalAppendNsOp:  appendRes.NsPerOp(),
		JournalAppendBOp:   appendRes.AllocedBytesPerOp(),
		AppendWithSubNsOp:  appendSubRes.NsPerOp(),
		LinkExchangeNsOp:   plainLink.NsPerOp(),
		ObservedLinkNsOp:   observedLink.NsPerOp(),
		LinkObserverFrac:   linkOverhead,
		Shards:             shards,
		JobsPerSecPlain:    jpsOff,
		JobsPerSecJournal:  jpsOn,
		JournalOverhead:    overhead,
		OverheadBudgetFrac: 0.02,
		GoVersion:          runtime.Version(),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchEventsOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("journal append %dns (%dns with subscriber); link exchange %d->%dns (%.2f%%); serve %.0f->%.0f jobs/sec (%.2f%% overhead)",
		report.JournalAppendNsOp, report.AppendWithSubNsOp,
		report.LinkExchangeNsOp, report.ObservedLinkNsOp, linkOverhead*100,
		jpsOff, jpsOn, overhead*100)

	// Acceptance: ~2% budget on the serve path, with slack for best-of-3
	// scheduling noise; the bare-link observer must be near-free.
	if overhead > 0.05 {
		t.Errorf("serve journal overhead %.1f%% exceeds budget (2%% target, 5%% hard stop)", overhead*100)
	}
	if linkOverhead > 0.02 {
		t.Errorf("link observer overhead %.1f%% exceeds 2%%", linkOverhead*100)
	}
}
