package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"cos/internal/obs"
)

// newTestServer builds a server on an isolated metrics registry so tests
// can assert exact gauge/counter values without cross-talk.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	s := New(cfg)
	t.Cleanup(func() { s.Drain(5 * time.Second) })
	return s
}

// fastLinkSpec is a link job small enough to finish in tens of
// milliseconds.
func fastLinkSpec(seed int64) Spec {
	return Spec{Kind: KindLink, Seed: seed, Packets: 3, PayloadBytes: 64}
}

// slowLinkSpec is a link job that takes far longer than any test timeout;
// it exists to be cancelled (the packet loop polls ctx per packet).
func slowLinkSpec() Spec {
	return Spec{Kind: KindLink, Packets: 1e6, PayloadBytes: 64}
}

func waitTerminal(t *testing.T, j *Job, within time.Duration) Status {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(within):
		t.Fatalf("job %s still %v after %v", j.ID(), j.State(), within)
	}
	return j.Status()
}

func TestStateString(t *testing.T) {
	cases := map[State]string{
		StateQueued:    "queued",
		StateRunning:   "running",
		StateDone:      "done",
		StateFailed:    "failed",
		StateCancelled: "cancelled",
		State(0):       "State(0)",
		State(99):      "State(99)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
	for _, s := range []State{StateDone, StateFailed, StateCancelled} {
		if !s.Terminal() {
			t.Errorf("%v should be terminal", s)
		}
	}
	for _, s := range []State{StateQueued, StateRunning, State(0)} {
		if s.Terminal() {
			t.Errorf("%v should not be terminal", s)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{},                                           // missing kind
		{Kind: "bogus"},                              // unknown kind
		{Kind: KindLink, TimeoutMS: -1},              // negative timeout
		{Kind: KindLink, Position: "Z"},              // unknown position
		{Kind: KindLink, SNRdB: 99},                  // SNR out of range
		{Kind: KindLink, PayloadBytes: 4},            // payload too small
		{Kind: KindLink, Packets: -1},                // negative packets
		{Kind: KindStream, StreamBits: -1},           // negative stream payload
		{Kind: KindStream, Sends: 1e6},               // too many sends
		{Kind: KindWLAN, Stations: 99},               // too many stations
		{Kind: KindWLAN, Rounds: -5},                 // negative rounds
		{Kind: KindFigure},                           // missing figure ID
		{Kind: KindFigure, Figure: "nope"},           // unknown figure
		{Kind: KindFigure, Figure: "fig2", Scale: 2}, // scale out of range
	}
	for _, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", spec)
		}
	}
	good := []Spec{
		{Kind: KindLink},
		{Kind: KindStream, Position: "flat"},
		{Kind: KindWLAN, Stations: 2, Rounds: 5},
		{Kind: KindFigure, Figure: "fig10a"},
	}
	for _, spec := range good {
		if err := spec.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", spec, err)
		}
	}
}

func TestSubmitRejectsInvalidSpec(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	if _, err := s.Submit(Spec{Kind: "bogus"}); err == nil {
		t.Fatal("Submit accepted an invalid spec")
	}
}

func TestLinkJobRunsToDone(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Shards: 1, Metrics: reg})
	j, err := s.Submit(fastLinkSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j, 30*time.Second)
	if st.State != "done" {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Error)
	}
	if st.StartedAt == nil || st.FinishedAt == nil {
		t.Fatal("terminal status missing started/finished stamps")
	}

	// The NDJSON stream must hold one record per packet plus a summary.
	body, err := io.ReadAll(j.Result())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d NDJSON lines, want 4 (3 packets + summary):\n%s", len(lines), body)
	}
	var last struct {
		Type    string `json:"type"`
		Packets int    `json:"packets"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Type != "link_summary" || last.Packets != 3 {
		t.Fatalf("last record = %+v, want link_summary for 3 packets", last)
	}

	snap := reg.Snapshot()
	if got := snap[`serve_jobs_finished_total{state="done"}`]; got != 1 {
		t.Errorf("finished{done} = %v, want 1", got)
	}
	if got := snap["serve_queue_depth"]; got != 0 {
		t.Errorf("queue depth after completion = %v, want 0", got)
	}
	if got := snap["serve_jobs_inflight"]; got != 0 {
		t.Errorf("inflight after completion = %v, want 0", got)
	}
}

func TestStreamWLANAndFigureJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	s := newTestServer(t, Config{Shards: 2})
	specs := []Spec{
		{Kind: KindStream, Sends: 2, StreamBits: 8, PayloadBytes: 256},
		{Kind: KindWLAN, Stations: 2, Rounds: 4, PayloadBytes: 64},
		{Kind: KindFigure, Figure: "fig10a"},
	}
	for _, spec := range specs {
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Kind, err)
		}
		st := waitTerminal(t, j, 120*time.Second)
		if st.State != "done" {
			t.Fatalf("%s job: state %s (err %q)", spec.Kind, st.State, st.Error)
		}
		if st.ResultBytes == 0 {
			t.Fatalf("%s job produced no result bytes", spec.Kind)
		}
	}
}

// TestDeterministicNDJSON is the determinism acceptance gate: two
// submissions of the same job spec + seed return byte-identical NDJSON
// result bodies, including when they run concurrently with other jobs on
// a multi-shard pool.
func TestDeterministicNDJSON(t *testing.T) {
	s := newTestServer(t, Config{Shards: 4, QueueDepth: 32})

	target := Spec{Kind: KindLink, Seed: 42, Packets: 4, PayloadBytes: 128, ControlBits: 16}
	var decoys []*Job
	submit := func(spec Spec) *Job {
		t.Helper()
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	// Interleave the two target submissions with decoy load on every shard.
	decoys = append(decoys, submit(fastLinkSpec(1)), submit(fastLinkSpec(2)))
	first := submit(target)
	decoys = append(decoys, submit(fastLinkSpec(3)), submit(fastLinkSpec(4)))
	second := submit(target)
	decoys = append(decoys, submit(Spec{Kind: KindWLAN, Stations: 2, Rounds: 3, PayloadBytes: 64}))

	// Stream both targets concurrently while everything runs.
	var wg sync.WaitGroup
	bodies := make([][]byte, 2)
	for i, j := range []*Job{first, second} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, err := io.ReadAll(j.Result())
			if err == nil {
				bodies[i] = b
			}
		}()
	}
	wg.Wait()

	for _, j := range append(decoys, first, second) {
		if st := waitTerminal(t, j, 60*time.Second); st.State != "done" {
			t.Fatalf("job %s: state %s (err %q)", st.ID, st.State, st.Error)
		}
	}
	if len(bodies[0]) == 0 {
		t.Fatal("empty result body")
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("same spec+seed produced different NDJSON bodies:\n--- first ---\n%s\n--- second ---\n%s",
			bodies[0], bodies[1])
	}
	// And a reader attached after completion sees the same bytes.
	replay, err := io.ReadAll(first.Result())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(replay, bodies[0]) {
		t.Fatal("post-completion replay differs from live stream")
	}
}

func TestSubmitOverloadAndQueueGauge(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Shards: 1, QueueDepth: 1, Metrics: reg})

	// First job occupies the worker; second fills the queue; third must be
	// rejected with ErrOverloaded.
	running, err := s.Submit(slowLinkSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, running, StateRunning, 30*time.Second)
	queued, err := s.Submit(slowLinkSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(fastLinkSpec(1)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third submit: err = %v, want ErrOverloaded", err)
	}
	snap := reg.Snapshot()
	if got := snap["serve_queue_depth"]; got != 1 {
		t.Errorf("queue depth = %v, want 1", got)
	}
	if got := snap[`serve_jobs_rejected_total{reason="overload"}`]; got != 1 {
		t.Errorf("rejected{overload} = %v, want 1", got)
	}

	// A later submission reuses capacity freed by cancellation.
	if err := s.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, queued, 5*time.Second); st.State != "cancelled" {
		t.Fatalf("queued job state = %s, want cancelled", st.State)
	}
	if err := s.Cancel(running.ID()); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, running, 30*time.Second); st.State != "cancelled" {
		t.Fatalf("running job state = %s, want cancelled", st.State)
	}
}

func waitForState(t *testing.T, j *Job, want State, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %v (now %v)", j.ID(), want, j.State())
}

// TestJobCancel covers client cancellation of a running job: the packet
// loop observes the cancelled context mid-simulation.
func TestJobCancel(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	j, err := s.Submit(slowLinkSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, j, StateRunning, 30*time.Second)
	if err := s.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j, 30*time.Second); st.State != "cancelled" {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
	// The result stream must be closed (EOF) even though the job died.
	if _, err := io.ReadAll(j.Result()); err != nil {
		t.Fatalf("result stream after cancel: %v", err)
	}
}

func TestJobDeadlineFails(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	spec := slowLinkSpec()
	spec.TimeoutMS = 30
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j, 30*time.Second)
	if st.State != "failed" {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Fatalf("error = %q, want a deadline message", st.Error)
	}
}

func TestUnknownJob(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	if _, err := s.Job("job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("err = %v, want ErrUnknownJob", err)
	}
	if err := s.Cancel("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Cancel err = %v, want ErrUnknownJob", err)
	}
}

// TestServerDrain proves the drain contract at the core layer: admission
// stops immediately (ErrDraining), queued and running jobs finish inside
// the window, and Drain reports a clean shutdown.
func TestServerDrain(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Shards: 2, QueueDepth: 8, Metrics: reg})

	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := s.Submit(fastLinkSpec(int64(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	drained := make(chan bool, 1)
	go func() { drained <- s.Drain(60 * time.Second) }()

	// Admission must stop as soon as draining begins.
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(fastLinkSpec(9)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: err = %v, want ErrDraining", err)
	}

	select {
	case clean := <-drained:
		if !clean {
			t.Fatal("Drain reported window expiry for fast jobs")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Drain did not return")
	}
	for _, j := range jobs {
		if st := j.Status(); st.State != "done" {
			t.Fatalf("job %s after drain: state %s (err %q)", st.ID, st.State, st.Error)
		}
	}
	if got := reg.Snapshot()[`serve_jobs_rejected_total{reason="draining"}`]; got != 1 {
		t.Errorf("rejected{draining} = %v, want 1", got)
	}
	// Idempotent: a second Drain returns the first outcome immediately.
	if !s.Drain(0) {
		t.Error("second Drain call did not report the first outcome")
	}
}

// TestServerDrainCancelsSlowJobs proves the window half of the contract:
// jobs that cannot finish inside the drain window are cancelled, not
// leaked, and Drain still returns.
func TestServerDrainCancelsSlowJobs(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 4, Metrics: obs.NewRegistry()})
	running, err := s.Submit(slowLinkSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, running, StateRunning, 30*time.Second)
	queued, err := s.Submit(slowLinkSpec())
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	clean := s.Drain(50 * time.Millisecond)
	if clean {
		t.Error("Drain reported clean shutdown despite unfinishable jobs")
	}
	if took := time.Since(start); took > 30*time.Second {
		t.Fatalf("Drain took %v; the window is 50ms", took)
	}
	if st := running.Status(); st.State != "cancelled" {
		t.Errorf("running job after drain: %s (err %q), want cancelled", st.State, st.Error)
	}
	if st := queued.Status(); st.State != "cancelled" {
		t.Errorf("queued job after drain: %s (err %q), want cancelled", st.State, st.Error)
	}
}

func TestResultReaderStreamsIncrementally(t *testing.T) {
	b := newBuffer()
	r := b.Reader()
	b.Write([]byte("one\n"))
	buf := make([]byte, 16)
	n, err := r.Read(buf)
	if err != nil || string(buf[:n]) != "one\n" {
		t.Fatalf("first read = %q, %v", buf[:n], err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		n, err := r.Read(buf)
		if err != nil || string(buf[:n]) != "two\n" {
			t.Errorf("second read = %q, %v", buf[:n], err)
		}
		if _, err := r.Read(buf); err != io.EOF {
			t.Errorf("read after close = %v, want EOF", err)
		}
	}()
	time.Sleep(5 * time.Millisecond) // let the reader block
	b.Write([]byte("two\n"))
	b.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked reader never woke")
	}
	if got := b.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
}
