package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"runtime"
	"time"

	"testing"

	"cos/internal/obs"
	"cos/internal/serve/cache"
)

// benchCacheOut enables TestWriteBenchCacheReport; `make bench-cache`
// points it at BENCH_cache.json.
var benchCacheOut = flag.String("bench-cache-out", "", "write the result-cache speedup report to this JSON file")

// TestWriteBenchCacheReport regenerates BENCH_cache.json (via `make
// bench-cache`): it runs N distinct link specs cold (every job computed on
// the shard pool), resubmits the same N specs warm (every job served from
// the content-addressed result cache), verifies each warm stream is
// byte-identical to its cold run, and reports the jobs/sec on both sides.
// The acceptance bar is a >= 10x warm/cold speedup — a cache hit is a map
// lookup plus a buffer copy, against an FFT/Viterbi simulation. It skips
// itself unless -bench-cache-out is set so `go test ./...` stays fast.
func TestWriteBenchCacheReport(t *testing.T) {
	if *benchCacheOut == "" {
		t.Skip("set -bench-cache-out to write the report")
	}

	const n = 64
	shards := runtime.GOMAXPROCS(0)
	s := New(Config{Shards: shards, QueueDepth: n, Metrics: obs.NewRegistry(), Cache: cache.New(0)})
	defer s.Drain(30 * time.Second)
	specFor := func(i int) Spec {
		return Spec{Kind: KindLink, Seed: int64(i + 1), PayloadBytes: 256, Packets: 50, ControlBits: 32}
	}

	runAll := func(wantCached bool) (time.Duration, [][]byte) {
		start := time.Now()
		jobs := make([]*Job, 0, n)
		for i := 0; i < n; i++ {
			j, err := s.Submit(specFor(i))
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			if j.Cached() != wantCached {
				t.Fatalf("job %d cached=%v, want %v", i, j.Cached(), wantCached)
			}
			jobs = append(jobs, j)
		}
		bodies := make([][]byte, 0, n)
		for i, j := range jobs {
			<-j.Done()
			if st := j.Status(); st.State != "done" {
				t.Fatalf("job %d finished %q (err %q)", i, st.State, st.Error)
			}
			body, err := io.ReadAll(j.Result())
			if err != nil {
				t.Fatal(err)
			}
			bodies = append(bodies, body)
		}
		return time.Since(start), bodies
	}

	coldElapsed, coldBodies := runAll(false)
	warmElapsed, warmBodies := runAll(true)
	for i := range coldBodies {
		if !bytes.Equal(coldBodies[i], warmBodies[i]) {
			t.Fatalf("spec %d: warm stream differs from cold (%d vs %d bytes)",
				i, len(warmBodies[i]), len(coldBodies[i]))
		}
	}

	coldJPS := float64(n) / coldElapsed.Seconds()
	warmJPS := float64(n) / warmElapsed.Seconds()
	speedup := warmJPS / coldJPS
	if speedup < 10 {
		t.Fatalf("warm/cold speedup = %.1fx, want >= 10x (cold %.0f jobs/sec, warm %.0f jobs/sec)",
			speedup, coldJPS, warmJPS)
	}

	report := struct {
		Description    string  `json:"description"`
		Shards         int     `json:"shards"`
		Jobs           int     `json:"jobs"`
		ColdSeconds    float64 `json:"cold_seconds"`
		WarmSeconds    float64 `json:"warm_seconds"`
		ColdJobsPerSec float64 `json:"cold_jobs_per_second"`
		WarmJobsPerSec float64 `json:"warm_jobs_per_second"`
		Speedup        float64 `json:"speedup"`
		BytesPerJob    int     `json:"result_bytes_per_job"`
		ByteIdentical  bool    `json:"byte_identical"`
		GoVersion      string  `json:"go_version"`
	}{
		Description:    "content-addressed result cache: N distinct link specs run cold (computed on the shard pool) then resubmitted warm (served from the cache); every warm NDJSON stream is asserted byte-identical to its cold run",
		Shards:         shards,
		Jobs:           n,
		ColdSeconds:    coldElapsed.Seconds(),
		WarmSeconds:    warmElapsed.Seconds(),
		ColdJobsPerSec: coldJPS,
		WarmJobsPerSec: warmJPS,
		Speedup:        speedup,
		BytesPerJob:    len(coldBodies[0]),
		ByteIdentical:  true,
		GoVersion:      runtime.Version(),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchCacheOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %.1fx speedup (cold %.0f -> warm %.0f jobs/sec, %d byte-identical streams)",
		*benchCacheOut, speedup, coldJPS, warmJPS, n)
}
