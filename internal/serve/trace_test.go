package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cos/internal/obs"
	"cos/internal/obs/event"
	"cos/internal/serve/cache"
	"cos/internal/serve/store"
	"cos/internal/trace"
)

var updateTraceGolden = flag.Bool("update-trace-golden", false,
	"rewrite testdata/jobtrace_v2.golden from the current capture")

// goldenTraceSpec is the fixture pinned by testdata/jobtrace_v2.golden.
func goldenTraceSpec() Spec {
	return Spec{Kind: KindLink, Seed: 7, Packets: 4, PayloadBytes: 128, SNRdB: 18}
}

const goldenTraceProbeEvery = 2

// goldenTraceDigest pins the content address of the golden trace body, so
// the artifact key itself (not just the bytes) is part of the contract.
const goldenTraceDigest = "206fea3ca61a1d7c306a4388a1172cc2b73bb083bb9245d456c0f0c83b30f3f7"

// submitTraced submits spec with trace options and waits for done.
func submitTraced(t *testing.T, s *Server, spec Spec, probeEvery int) *Job {
	t.Helper()
	j, err := s.SubmitWith(spec, SubmitOptions{Trace: true, ProbeEvery: probeEvery})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j, 60*time.Second); st.State != "done" {
		t.Fatalf("traced job %s: state %s (err %q)", st.ID, st.State, st.Error)
	}
	return j
}

// TestJobTraceGolden pins the traced-job round trip byte-for-byte: the
// captured body is deterministic (stage_ns stripped), its digest is the
// SHA-256 of exactly those bytes, and the encoding matches the golden. A
// drift here silently re-keys every persisted trace artifact — regenerate
// the golden deliberately (-update-trace-golden), never to "fix" CI.
func TestJobTraceGolden(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	j := submitTraced(t, s, goldenTraceSpec(), goldenTraceProbeEvery)

	body, digest, err := s.JobTrace(j)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(body)
	if want := hex.EncodeToString(sum[:]); digest != want {
		t.Fatalf("trace digest %s does not address the served body (sha256 %s)", digest, want)
	}
	if !*updateTraceGolden && digest != goldenTraceDigest {
		t.Fatalf("trace digest %s, want pinned %s", digest, goldenTraceDigest)
	}

	path := filepath.Join("testdata", "jobtrace_v2.golden")
	if *updateTraceGolden {
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("trace body drifted from %s (%d bytes, want %d)", path, len(body), len(want))
	}

	// The body is a well-formed schema-v2 trace with the requested probe
	// cadence and no wall-clock stage timings.
	events, version, err := trace.ReadVersioned(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if version != trace.SchemaVersion {
		t.Fatalf("trace schema = %d, want %d", version, trace.SchemaVersion)
	}
	if len(events) != 4 {
		t.Fatalf("trace events = %d, want 4 (one per packet)", len(events))
	}
	probes := 0
	for i, ev := range events {
		if len(ev.StageNS) != 0 {
			t.Fatalf("event %d carries wall-clock stage_ns; capture must strip it", i)
		}
		if ev.Probe != nil {
			probes++
		}
	}
	if probes != 2 {
		t.Fatalf("probes = %d, want 2 (4 packets, cadence 2)", probes)
	}
}

// TestTracedJobsByteIdentical: the acceptance determinism bar — the same
// spec+seed+cadence captured on two independent servers yields
// byte-identical trace bodies and equal digests.
func TestTracedJobsByteIdentical(t *testing.T) {
	spec := Spec{Kind: KindLink, Seed: 99, Packets: 5, PayloadBytes: 96}
	var bodies [][]byte
	var digests []string
	for i := 0; i < 2; i++ {
		s := newTestServer(t, Config{Shards: 2})
		j := submitTraced(t, s, spec, 3)
		body, digest, err := s.JobTrace(j)
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, body)
		digests = append(digests, digest)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatal("trace bodies differ across servers for the same spec+seed+cadence")
	}
	if digests[0] != digests[1] {
		t.Fatalf("trace digests differ: %s vs %s", digests[0], digests[1])
	}
}

// TestTraceResultUnaffected: tracing is invisible to the result stream —
// a traced and an untraced run of the same spec produce byte-identical
// NDJSON (which is why they share one spec digest and one cache entry).
func TestTraceResultUnaffected(t *testing.T) {
	spec := Spec{Kind: KindLink, Seed: 21, Packets: 4, PayloadBytes: 64}
	s1 := newTestServer(t, Config{Shards: 1})
	plain, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, plain, 60*time.Second)
	s2 := newTestServer(t, Config{Shards: 1})
	traced := submitTraced(t, s2, spec, 1)
	if !bytes.Equal(plain.buf.Bytes(), traced.buf.Bytes()) {
		t.Fatal("tracing changed the result stream")
	}
	if plain.Digest() != traced.Digest() {
		t.Fatal("trace options leaked into the spec digest")
	}
}

// TestUntracedJobTraceUnavailable: untraced jobs and non-done jobs have
// no trace.
func TestUntracedJobTraceUnavailable(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	j, err := s.Submit(fastLinkSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j, 60*time.Second)
	if _, _, err := s.JobTrace(j); !errors.Is(err, ErrTraceUnavailable) {
		t.Fatalf("untraced JobTrace err = %v, want ErrTraceUnavailable", err)
	}
	if st := j.Status(); st.Traced || st.TraceDigest != "" {
		t.Fatalf("untraced status grew trace fields: %+v", st)
	}
	if _, _, err := s.TraceByDigest(j.Digest()); !errors.Is(err, ErrTraceUnavailable) {
		t.Fatal("TraceByDigest should fail for an untraced digest")
	}
}

// TestTraceInvalidOptions: inconsistent trace options fail admission with
// the typed sentinel.
func TestTraceInvalidOptions(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	if _, err := s.SubmitWith(fastLinkSpec(1), SubmitOptions{ProbeEvery: 4}); !errors.Is(err, ErrInvalidTraceOptions) {
		t.Fatalf("ProbeEvery without Trace: err = %v, want ErrInvalidTraceOptions", err)
	}
	if _, err := s.SubmitWith(fastLinkSpec(1), SubmitOptions{Trace: true, ProbeEvery: -1}); !errors.Is(err, ErrInvalidTraceOptions) {
		t.Fatalf("negative ProbeEvery: err = %v, want ErrInvalidTraceOptions", err)
	}
}

// TestTraceCacheReuse: with a store, a cache-hit resubmission at the same
// cadence reuses the persisted trace; a different cadence re-runs.
func TestTraceCacheReuse(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := newTestServer(t, Config{Shards: 1, Cache: cache.New(0), Store: st})
	spec := Spec{Kind: KindLink, Seed: 31, Packets: 3, PayloadBytes: 64}

	first := submitTraced(t, s, spec, 2)
	firstBody, firstDigest, err := s.JobTrace(first)
	if err != nil {
		t.Fatal(err)
	}

	// Same cadence: served from the cache, trace reused from the store.
	again := submitTraced(t, s, spec, 2)
	if !again.Cached() {
		t.Fatal("same-cadence traced resubmission should hit the result cache")
	}
	againBody, againDigest, err := s.JobTrace(again)
	if err != nil {
		t.Fatal(err)
	}
	if againDigest != firstDigest || !bytes.Equal(againBody, firstBody) {
		t.Fatal("cache-hit trace differs from the original capture")
	}

	// Different cadence: the stored trace cannot satisfy it — re-run.
	other := submitTraced(t, s, spec, 1)
	if other.Cached() {
		t.Fatal("different-cadence traced resubmission must re-run")
	}
	_, otherDigest, err := s.JobTrace(other)
	if err != nil {
		t.Fatal(err)
	}
	if otherDigest == firstDigest {
		t.Fatal("different cadence produced the same trace digest (probes missing?)")
	}

	// An untraced resubmission still cache-hits regardless.
	plain, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, plain, 60*time.Second)
	if !plain.Cached() {
		t.Fatal("untraced resubmission should hit the result cache")
	}
}

// TestTraceSurvivesRestart: the acceptance durability bar — a restarted
// daemon re-serves the same trace bytes from the store, both by digest
// lookup and through a cache-hit resubmission.
func TestTraceSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Kind: KindLink, Seed: 47, Packets: 3, PayloadBytes: 64}

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Shards: 1, Metrics: obs.NewRegistry(), Cache: cache.New(0), Store: st1})
	j1 := submitTraced(t, s1, spec, 2)
	body1, digest1, err := s1.JobTrace(j1)
	if err != nil {
		t.Fatal(err)
	}
	s1.Drain(5 * time.Second)
	st1.Close()

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2 := newTestServer(t, Config{Shards: 1, Cache: cache.New(0), Store: st2})

	// Digest-addressed lookup with no live job.
	body2, digest2, err := s2.TraceByDigest(j1.Digest())
	if err != nil {
		t.Fatal(err)
	}
	if digest2 != digest1 || !bytes.Equal(body2, body1) {
		t.Fatal("restart changed the persisted trace bytes")
	}

	// A traced resubmission at the same cadence cache-hits and carries the
	// recovered trace metadata.
	j2 := submitTraced(t, s2, spec, 2)
	if !j2.Cached() {
		t.Fatal("post-restart traced resubmission should hit the warmed cache")
	}
	if st := j2.Status(); st.TraceDigest != digest1 || st.TraceBytes != len(body1) {
		t.Fatalf("recovered trace metadata = %s/%d, want %s/%d",
			st.TraceDigest, st.TraceBytes, digest1, len(body1))
	}
}

// TestTraceMissingBodyDemotes: deleting the trace body out from under the
// store demotes the job to "trace unavailable" on replay — recovery (and
// the result body) are unaffected.
func TestTraceMissingBodyDemotes(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Kind: KindLink, Seed: 53, Packets: 3, PayloadBytes: 64}

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Shards: 1, Metrics: obs.NewRegistry(), Cache: cache.New(0), Store: st1})
	j1 := submitTraced(t, s1, spec, 0)
	_, digest1, err := s1.JobTrace(j1)
	if err != nil {
		t.Fatal(err)
	}
	s1.Drain(5 * time.Second)
	st1.Close()

	if err := os.Remove(filepath.Join(dir, "traces", digest1)); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovery()
	if len(rec.Completed) != 1 {
		t.Fatalf("recovery completed = %d, want 1", len(rec.Completed))
	}
	if rec.Completed[0].TraceDigest != "" {
		t.Fatal("missing trace body must demote to trace-unavailable, not survive replay")
	}
	s2 := newTestServer(t, Config{Shards: 1, Cache: cache.New(0), Store: st2})
	if _, _, err := s2.TraceByDigest(j1.Digest()); !errors.Is(err, ErrTraceUnavailable) {
		t.Fatalf("TraceByDigest err = %v, want ErrTraceUnavailable", err)
	}
	// The result itself still cache-hits.
	if _, ok := s2.ResultByDigest(j1.Digest()); !ok {
		t.Fatal("result body lost alongside the trace demotion")
	}
}

// TestTraceDigestInTerminalEvent: the metrics→trace exemplar link — the
// finished journal event carries the digest of exactly the bytes the
// trace endpoint serves.
func TestTraceDigestInTerminalEvent(t *testing.T) {
	jr := event.New(64)
	s := newTestServer(t, Config{Shards: 1, Journal: jr})
	j := submitTraced(t, s, fastLinkSpec(61), 1)
	body, digest, err := s.JobTrace(j)
	if err != nil {
		t.Fatal(err)
	}

	var ev TerminalEvent
	found := false
	for _, e := range jr.Snapshot(0) {
		if e.Type == EventJobFinished && e.Job == j.ID() {
			if err := json.Unmarshal(e.Data, &ev); err != nil {
				t.Fatal(err)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no finished event for the traced job")
	}
	if ev.TraceDigest != digest {
		t.Fatalf("finished event trace_digest = %s, want %s", ev.TraceDigest, digest)
	}
	if ev.TraceBytes != len(body) {
		t.Fatalf("finished event trace_bytes = %d, want %d", ev.TraceBytes, len(body))
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != ev.TraceDigest {
		t.Fatal("finished event digest does not address the served trace body")
	}
}

// TestTraceOtherKinds: every workload yields a well-formed trace — WLAN
// jobs capture events from every station link (no probes), figure jobs
// have no exchange hook and finish with a valid header-only trace.
func TestTraceOtherKinds(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})

	wlan := submitTraced(t, s, Spec{Kind: KindWLAN, Stations: 2, Rounds: 3, PayloadBytes: 64}, 0)
	body, _, err := s.JobTrace(wlan)
	if err != nil {
		t.Fatal(err)
	}
	events, version, err := trace.ReadVersioned(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if version != trace.SchemaVersion || len(events) == 0 {
		t.Fatalf("wlan trace: version %d, %d events", version, len(events))
	}

	fig := submitTraced(t, s, Spec{Kind: KindFigure, Figure: "fig2", Scale: 0.05}, 0)
	body, _, err = s.JobTrace(fig)
	if err != nil {
		t.Fatal(err)
	}
	events, version, err = trace.ReadVersioned(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if version != trace.SchemaVersion {
		t.Fatalf("figure trace version = %d, want %d (header-only)", version, trace.SchemaVersion)
	}
	if len(events) != 0 {
		t.Fatalf("figure trace events = %d, want 0 (no exchange hook)", len(events))
	}
}
