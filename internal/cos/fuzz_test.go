package cos

import (
	"testing"

	"cos/internal/bits"
)

// FuzzParseControl: arbitrary bit streams must never panic and any frame
// that parses must re-frame to a prefix of itself.
func FuzzParseControl(f *testing.F) {
	seed, _ := FrameControl([]byte{1, 0, 1, 1})
	f.Add(toByteString(seed))
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 1, 0, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		stream := make([]byte, len(raw))
		for i, b := range raw {
			stream[i] = b & 1
		}
		payload, ok := ParseControl(stream)
		if !ok {
			return
		}
		framed, err := FrameControl(payload)
		if err != nil {
			t.Fatalf("parsed payload failed to re-frame: %v", err)
		}
		if len(framed) > len(stream) || !bits.Equal(stream[:len(framed)], framed) {
			t.Fatalf("re-framed message is not a prefix of the stream")
		}
	})
}

func toByteString(bits []byte) []byte {
	out := make([]byte, len(bits))
	copy(out, bits)
	return out
}

// FuzzIntervalRoundTrip: any bit payload (multiple of k) must survive
// encode -> layout -> extract -> decode unchanged.
func FuzzIntervalRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 0, 1, 1, 0}, uint8(4))
	f.Add([]byte{1, 1, 1, 1}, uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, kRaw uint8) {
		k := int(kRaw)%8 + 1
		msg := make([]byte, len(raw)/k*k)
		for i := range msg {
			msg[i] = raw[i] & 1
		}
		if len(msg) > 64 {
			msg = msg[:64/k*k]
		}
		iv, err := EncodeIntervals(msg, k)
		if err != nil {
			t.Fatalf("EncodeIntervals: %v", err)
		}
		ctrl := []int{3, 17, 31, 45}
		numSym := 1 + (1+len(iv)*(1<<k))/len(ctrl) + 1
		pos, err := Layout(iv, numSym, ctrl)
		if err != nil {
			t.Fatalf("Layout with ample capacity: %v", err)
		}
		mask := NewMask(numSym)
		for _, p := range pos {
			mask[p.Sym][p.SC] = true
		}
		gotIv, err := ExtractIntervals(mask, ctrl)
		if err != nil {
			t.Fatalf("ExtractIntervals: %v", err)
		}
		got, err := DecodeIntervals(gotIv, k)
		if err != nil {
			t.Fatalf("DecodeIntervals: %v", err)
		}
		if !bits.Equal(got, msg) {
			t.Fatalf("roundtrip mismatch: %v -> %v", msg, got)
		}
	})
}
