package cos

import (
	"fmt"

	"cos/internal/dsp"
	"cos/internal/ofdm"
	"cos/internal/phy"
)

// Scratch-reuse variants of the CoS embed/extract chain. Each XxxInto
// function writes into a caller-owned destination, growing it only when its
// capacity is insufficient, and computes exactly what its allocating
// counterpart does. Destinations must not alias inputs.

// GrowMask reshapes mask to numSymbols all-false rows of ofdm.NumData
// entries, reusing row storage where possible.
func GrowMask(mask [][]bool, numSymbols int) [][]bool {
	if cap(mask) < numSymbols {
		grown := make([][]bool, numSymbols)
		copy(grown, mask[:cap(mask)])
		mask = grown
	}
	mask = mask[:numSymbols]
	for i := range mask {
		if cap(mask[i]) < ofdm.NumData {
			mask[i] = make([]bool, ofdm.NumData)
			continue
		}
		mask[i] = mask[i][:ofdm.NumData]
		for j := range mask[i] {
			mask[i][j] = false
		}
	}
	return mask
}

// MaskCount counts the true entries of a mask over the given control
// subcarriers — len(MaskPositions(mask, ctrlSCs)) without building the list.
func MaskCount(mask [][]bool, ctrlSCs []int) int {
	n := 0
	for s := range mask {
		for _, sc := range ctrlSCs {
			if mask[s][sc] {
				n++
			}
		}
	}
	return n
}

// EncodeIntervalsInto is EncodeIntervals writing into dst.
func EncodeIntervalsInto(dst []int, controlBits []byte, k int) ([]int, error) {
	if k < 1 || k > 16 {
		return nil, fmt.Errorf("cos: bits per interval %d out of range [1,16]", k)
	}
	if len(controlBits)%k != 0 {
		return nil, fmt.Errorf("cos: control length %d is not a multiple of k=%d", len(controlBits), k)
	}
	n := len(controlBits) / k
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		v := 0
		for j := 0; j < k; j++ {
			b := controlBits[i*k+j]
			if b > 1 {
				return nil, fmt.Errorf("cos: element %d = %d is not a bit", i*k+j, b)
			}
			v = v<<1 | int(b)
		}
		dst[i] = v
	}
	return dst, nil
}

// DecodeIntervalsInto is DecodeIntervals writing into dst. Like
// DecodeIntervals, the result is non-nil even when intervals is empty.
func DecodeIntervalsInto(dst []byte, intervals []int, k int) ([]byte, error) {
	if k < 1 || k > 16 {
		return nil, fmt.Errorf("cos: bits per interval %d out of range [1,16]", k)
	}
	n := len(intervals) * k
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	for i, v := range intervals {
		if v < 0 || v >= 1<<k {
			return nil, fmt.Errorf("cos: interval %d out of range [0,%d]", v, 1<<k-1)
		}
		for j := 0; j < k; j++ {
			dst[i*k+j] = byte((v >> (k - 1 - j)) & 1)
		}
	}
	return dst, nil
}

// LayoutInto is Layout writing into dst.
func LayoutInto(dst []Pos, intervals []int, numSymbols int, ctrlSCs []int) ([]Pos, error) {
	if err := validateCtrlSCs(ctrlSCs); err != nil {
		return nil, err
	}
	if numSymbols < 1 {
		return nil, fmt.Errorf("cos: packet has %d symbols", numSymbols)
	}
	capacity := numSymbols * len(ctrlSCs)
	need := 1
	for _, v := range intervals {
		if v < 0 {
			return nil, fmt.Errorf("cos: negative interval %d", v)
		}
		need += v + 1
	}
	if need > capacity {
		return nil, fmt.Errorf("cos: message needs %d control positions, packet offers %d (%d symbols x %d subcarriers)",
			need, capacity, numSymbols, len(ctrlSCs))
	}
	n := len(intervals) + 1
	if cap(dst) < n {
		dst = make([]Pos, n)
	}
	dst = dst[:n]
	idx := 0
	dst[0] = Pos{Sym: 0, SC: ctrlSCs[0]} // start marker
	for i, v := range intervals {
		idx += v + 1
		dst[i+1] = Pos{Sym: idx / len(ctrlSCs), SC: ctrlSCs[idx%len(ctrlSCs)]}
	}
	return dst, nil
}

// InsertSilencesInto is InsertSilences reusing mask as the returned erasure
// mask (reshaped to the grid's symbol count).
func InsertSilencesInto(mask [][]bool, grid *ofdm.Grid, positions []Pos) ([][]bool, error) {
	mask = GrowMask(mask, grid.NumSymbols())
	for _, p := range positions {
		if err := grid.Set(p.Sym, p.SC, 0); err != nil {
			return nil, fmt.Errorf("cos: silence at %+v: %w", p, err)
		}
		mask[p.Sym][p.SC] = true
	}
	return mask, nil
}

// ExtractIntervalsInto is ExtractIntervals writing into dst. Unlike
// ExtractIntervals (which returns nil for a silence-free mask), the result
// is dst resliced to the interval count, so it may be empty and non-nil;
// callers that only inspect length and contents see identical behaviour.
func ExtractIntervalsInto(dst []int, mask [][]bool, ctrlSCs []int) ([]int, error) {
	if err := validateCtrlSCs(ctrlSCs); err != nil {
		return nil, err
	}
	intervals := dst[:0]
	started := false
	gap := 0
	for s := range mask {
		if len(mask[s]) != ofdm.NumData {
			return nil, fmt.Errorf("cos: mask row %d has %d entries, want %d", s, len(mask[s]), ofdm.NumData)
		}
		for _, sc := range ctrlSCs {
			silent := mask[s][sc]
			if !started {
				if silent {
					started = true
					gap = 0
				}
				continue
			}
			if silent {
				intervals = append(intervals, gap)
				gap = 0
			} else {
				gap++
			}
		}
	}
	return intervals, nil
}

// DetectMaskInto is Detector.DetectMask reusing mask as the returned
// detected-silence mask. Thresholds live on the stack, so a warm mask makes
// detection allocation-free.
func (d Detector) DetectMaskInto(mask [][]bool, fe *phy.FrontEnd, ctrlSCs []int) ([][]bool, error) {
	if err := validateCtrlSCs(ctrlSCs); err != nil {
		return nil, err
	}
	var ths [ofdm.NumData]float64
	for i, sc := range ctrlSCs {
		th, err := d.Threshold(fe, sc)
		if err != nil {
			return nil, err
		}
		ths[i] = th
	}
	mask = GrowMask(mask, fe.NumSymbols())
	silent := 0
	for s := 0; s < fe.NumSymbols(); s++ {
		for i, sc := range ctrlSCs {
			y, err := fe.Bins[s].DataValue(sc)
			if err != nil {
				return nil, err
			}
			if dsp.MagSq(y) < ths[i] {
				mask[s][sc] = true
				silent++
			}
		}
	}
	mDetectorScans.Add(uint64(fe.NumSymbols() * len(ctrlSCs)))
	mDetectorSilences.Add(uint64(silent))
	return mask, nil
}

// FrameControlInto is FrameControl writing into dst.
func FrameControlInto(dst, payload []byte) ([]byte, error) {
	if len(payload) > MaxFramedPayloadBits {
		return nil, fmt.Errorf("cos: control payload %d bits exceeds the %d-bit framing limit", len(payload), MaxFramedPayloadBits)
	}
	for i, b := range payload {
		if b > 1 {
			return nil, fmt.Errorf("cos: payload element %d = %d is not a bit", i, b)
		}
	}
	n := 8 + len(payload) + 8
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	for i := 0; i < 8; i++ {
		dst[i] = byte((len(payload) >> (7 - i)) & 1)
	}
	copy(dst[8:], payload)
	crc := crc8Bits(dst[:8+len(payload)])
	for i := 0; i < 8; i++ {
		dst[8+len(payload)+i] = (crc >> (7 - i)) & 1
	}
	return dst, nil
}

// PadToIntervalInto is PadToInterval writing into dst.
func PadToIntervalInto(dst, bits []byte, k int) ([]byte, error) {
	if k < 1 {
		return nil, fmt.Errorf("cos: k = %d", k)
	}
	n := len(bits)
	if k > 1 && n%k != 0 {
		n += k - n%k
	}
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	copy(dst, bits)
	for i := len(bits); i < n; i++ {
		dst[i] = 0
	}
	return dst, nil
}
