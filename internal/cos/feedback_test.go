package cos

import (
	"math"
	"math/rand"
	"testing"

	"cos/internal/channel"
	"cos/internal/phy"
)

func TestFeedbackPSDURoundTrip(t *testing.T) {
	for _, snr := range []float64{-10, -0.25, 0, 7.25, 22.5, 53.75} {
		f := Feedback{MeasuredSNRdB: snr, Selected: []int{1, 2, 3}}
		psdu, err := f.encodePSDU()
		if err != nil {
			t.Fatalf("snr %v: %v", snr, err)
		}
		got, count, ok := decodePSDU(psdu)
		if !ok {
			t.Fatalf("snr %v: decode failed", snr)
		}
		if math.Abs(got-snr) > snrQuant/2 {
			t.Errorf("snr %v decoded as %v", snr, got)
		}
		if count != 3 {
			t.Errorf("selection count = %d", count)
		}
	}
	if _, err := (Feedback{MeasuredSNRdB: 99}).encodePSDU(); err == nil {
		t.Error("out-of-range SNR should error")
	}
	if _, _, ok := decodePSDU([]byte{1, 2, 3}); ok {
		t.Error("garbage PSDU should fail")
	}
}

func TestFeedbackFrameRoundTripOverChannel(t *testing.T) {
	ch, err := channel.PositionB.New(false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(401))
	// A legal selection: SelectDetectable never picks subcarriers in the
	// channel's deep notch (Position B fades subcarriers 19-28).
	f := Feedback{MeasuredSNRdB: 17.5, Selected: []int{3, 15, 31, 40, 44}}
	samples, err := BuildFeedbackFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	hResp := ch.FrequencyResponse(0)
	nv, err := phy.NoiseVarForActualSNR(hResp, 18)
	if err != nil {
		t.Fatal(err)
	}
	rx := ch.Apply(samples, 0, nv, rng)
	got, err := ParseFeedbackFrame(rx, Detector{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.MeasuredSNRdB-17.5) > snrQuant/2 {
		t.Errorf("SNR = %v, want 17.5", got.MeasuredSNRdB)
	}
	if len(got.Selected) != len(f.Selected) {
		t.Fatalf("selected %v, want %v", got.Selected, f.Selected)
	}
	for i := range f.Selected {
		if got.Selected[i] != f.Selected[i] {
			t.Fatalf("selected %v, want %v", got.Selected, f.Selected)
		}
	}
}

func TestFeedbackFrameValidation(t *testing.T) {
	// Empty selections are legal (CoS paused).
	if _, err := BuildFeedbackFrame(Feedback{MeasuredSNRdB: 10, Selected: nil}); err != nil {
		t.Errorf("empty selection should encode: %v", err)
	}
	if _, err := BuildFeedbackFrame(Feedback{MeasuredSNRdB: 10, Selected: []int{50}}); err == nil {
		t.Error("bad subcarrier should error")
	}
	// Wrong frame length.
	if _, err := ParseFeedbackFrame(make([]complex128, 400), Detector{}); err == nil {
		t.Error("wrong-length frame should error")
	}
}

func TestFeedbackFrameCountCrosscheck(t *testing.T) {
	// Corrupt the V symbol by silencing an extra subcarrier at the sample
	// level: the count crosscheck must catch the mismatch (or detection
	// noise must not produce a *different valid-looking* selection).
	ch, err := channel.PositionFlat.New(false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(402))
	f := Feedback{MeasuredSNRdB: 15, Selected: []int{10, 20}}
	samples, err := BuildFeedbackFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	// Zero the last OFDM symbol entirely: every subcarrier reads silent.
	for i := len(samples) - 80; i < len(samples); i++ {
		samples[i] = 0
	}
	rx := ch.Apply(samples, 0, 1e-6, rng)
	if _, err := ParseFeedbackFrame(rx, Detector{}); err == nil {
		t.Error("mangled V symbol should fail the count crosscheck")
	}
}

func TestFeedbackFrameEmptySelectionRoundTrip(t *testing.T) {
	ch, err := channel.PositionFlat.New(false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(403))
	samples, err := BuildFeedbackFrame(Feedback{MeasuredSNRdB: 12})
	if err != nil {
		t.Fatal(err)
	}
	rx := ch.Apply(samples, 0, 1e-5, rng)
	got, err := ParseFeedbackFrame(rx, Detector{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Selected) != 0 {
		t.Errorf("selected = %v, want empty", got.Selected)
	}
	if math.Abs(got.MeasuredSNRdB-12) > snrQuant/2 {
		t.Errorf("SNR = %v", got.MeasuredSNRdB)
	}
}
