package cos

import "fmt"

// The paper's control messages are raw bit strings: the receiver has no way
// to tell a corrupted message from a good one (a single detection error
// shifts every subsequent interval). This file adds the minimal framing a
// deployable CoS needs — an 8-bit length header and an 8-bit CRC — so the
// receiver can validate what it extracted and discard garbage.

// MaxFramedPayloadBits is the largest control payload the 8-bit length
// header can describe.
const MaxFramedPayloadBits = 255

// frameOverheadBits is the header+CRC cost of framing.
const frameOverheadBits = 16

// crc8Poly is the CRC-8-CCITT polynomial x^8+x^2+x+1.
const crc8Poly = 0x07

// crc8Bits computes a bitwise CRC-8 over a bit slice (MSB-first).
func crc8Bits(bits []byte) byte {
	var crc byte
	for _, b := range bits {
		crc ^= (b & 1) << 7
		if crc&0x80 != 0 {
			crc = crc<<1 ^ crc8Poly
		} else {
			crc <<= 1
		}
	}
	return crc
}

// FrameControl wraps a control payload with its length and CRC:
//
//	[8-bit length][payload bits][8-bit CRC over length+payload]
//
// The result's length is a multiple of nothing in particular; callers pad
// to the interval codec's k with PadToInterval.
func FrameControl(payload []byte) ([]byte, error) {
	if len(payload) > MaxFramedPayloadBits {
		return nil, fmt.Errorf("cos: control payload %d bits exceeds the %d-bit framing limit", len(payload), MaxFramedPayloadBits)
	}
	for i, b := range payload {
		if b > 1 {
			return nil, fmt.Errorf("cos: payload element %d = %d is not a bit", i, b)
		}
	}
	out := make([]byte, 0, 8+len(payload)+8)
	for i := 7; i >= 0; i-- {
		out = append(out, byte((len(payload)>>i)&1))
	}
	out = append(out, payload...)
	crc := crc8Bits(out)
	for i := 7; i >= 0; i-- {
		out = append(out, (crc>>i)&1)
	}
	return out, nil
}

// ParseControl validates and unwraps a framed control message from the
// (possibly longer) extracted bit stream. ok is false when the stream is
// too short, the length is inconsistent, or the CRC fails.
func ParseControl(bits []byte) (payload []byte, ok bool) {
	if len(bits) < frameOverheadBits {
		return nil, false
	}
	n := 0
	for i := 0; i < 8; i++ {
		n = n<<1 | int(bits[i]&1)
	}
	total := 8 + n + 8
	if len(bits) < total {
		return nil, false
	}
	var crc byte
	for i := 0; i < 8; i++ {
		crc = crc<<1 | (bits[8+n+i] & 1)
	}
	if crc8Bits(bits[:8+n]) != crc {
		return nil, false
	}
	out := make([]byte, n)
	copy(out, bits[8:8+n])
	return out, true
}

// PadToInterval pads a framed bit string with zero bits to a multiple of k
// so it fits the interval codec. The length header makes the padding
// self-delimiting.
func PadToInterval(bits []byte, k int) ([]byte, error) {
	if k < 1 {
		return nil, fmt.Errorf("cos: k = %d", k)
	}
	out := make([]byte, len(bits), len(bits)+k)
	copy(out, bits)
	for len(out)%k != 0 {
		out = append(out, 0)
	}
	return out, nil
}

// FramedBits returns the on-air bit cost of a payload of n bits with
// framing and padding to a multiple of k.
func FramedBits(n, k int) int {
	total := n + frameOverheadBits
	if k > 1 && total%k != 0 {
		total += k - total%k
	}
	return total
}
