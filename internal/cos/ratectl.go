package cos

import (
	"fmt"
	"sort"
	"strconv"
	"sync/atomic"

	"cos/internal/obs"
	"cos/internal/ofdm"
	"cos/internal/phy"
)

// Rate-controller metrics: how often the SNR-indexed lookup runs, how
// often it moves the link to a different silence budget, and the budget
// distribution (one counter per budget value).
var (
	mRateLookups = obs.Default().Counter("cos_ratectl_lookups_total",
		"Silence-budget table lookups.")
	mRateTransitions = obs.Default().Counter("cos_ratectl_transitions_total",
		"Lookups that selected a different budget than the table's previous answer.")
	mRateBudget = obs.Default().Gauge("cos_ratectl_budget",
		"Most recently selected silence budget (symbols per packet).")
	mRateBudgetDist = obs.Default().CounterFamily("cos_ratectl_budget_selected_total",
		"Budget-transition targets by budget value.", "budget")
)

// RateEntry maps a measured-SNR floor to the silence budget sustainable at
// that SNR.
type RateEntry struct {
	// SNRdB is the lower edge of the entry's SNR band.
	SNRdB float64
	// SilencesPerPacket is the maximum number of silence symbols per packet
	// that keeps the packet reception rate at the target (99.3% in the
	// paper) in this band.
	SilencesPerPacket int
}

// RateTable is the lookup table of Sec. III-F: like 802.11 data-rate
// selection, the sender indexes it with the receiver's reported SNR to pick
// the control-message rate. Entries are kept sorted by SNR.
type RateTable struct {
	entries []RateEntry
	// last is the previous Lookup answer (-1 before the first), used to
	// count budget transitions without the caller having to diff.
	last atomic.Int64
}

// NewRateTable builds a table from entries (any order; sorted internally).
// At least one entry is required and silence budgets must be non-negative.
func NewRateTable(entries []RateEntry) (*RateTable, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("cos: empty rate table")
	}
	sorted := make([]RateEntry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].SNRdB < sorted[b].SNRdB })
	for i, e := range sorted {
		if e.SilencesPerPacket < 0 {
			return nil, fmt.Errorf("cos: negative silence budget %d", e.SilencesPerPacket)
		}
		if i > 0 && sorted[i].SNRdB == sorted[i-1].SNRdB {
			return nil, fmt.Errorf("cos: duplicate SNR entry %v", e.SNRdB)
		}
	}
	t := &RateTable{entries: sorted}
	t.last.Store(-1)
	return t, nil
}

// Lookup returns the silence budget for the given measured SNR: the entry
// with the highest SNR floor not exceeding snrDB. Below every floor the
// fallback (most conservative) budget is returned.
func (t *RateTable) Lookup(snrDB float64) int {
	budget := t.Fallback()
	for _, e := range t.entries {
		if snrDB >= e.SNRdB {
			budget = e.SilencesPerPacket
		} else {
			break
		}
	}
	mRateLookups.Inc()
	if prev := t.last.Swap(int64(budget)); prev != int64(budget) {
		if prev >= 0 {
			mRateTransitions.Inc()
		}
		mRateBudget.Set(float64(budget))
		mRateBudgetDist.With(strconv.Itoa(budget)).Inc()
	}
	return budget
}

// Fallback returns the most conservative budget in the table — what the
// sender uses after a failed transmission, when no fresh channel feedback
// exists (Sec. III-F).
func (t *RateTable) Fallback() int {
	min := t.entries[0].SilencesPerPacket
	for _, e := range t.entries[1:] {
		if e.SilencesPerPacket < min {
			min = e.SilencesPerPacket
		}
	}
	return min
}

// Entries returns a copy of the sorted table.
func (t *RateTable) Entries() []RateEntry {
	out := make([]RateEntry, len(t.entries))
	copy(out, t.entries)
	return out
}

// DefaultRateTable returns a conservative table calibrated on this
// repository's channel simulator (regenerate with examples/ratemap; see
// EXPERIMENTS.md). Entries are indexed by *measured* SNR — what the
// receiver reports — and carry half the measured sustainable budget as
// engineering margin. The sawtooth follows the data-rate bands: 1/2-coded
// modes leave far more spare redundancy than 3/4-coded ones (the paper's
// Fig. 9 ordering), so the budget drops at every switch into a 3/4 band.
func DefaultRateTable() *RateTable {
	t, err := NewRateTable([]RateEntry{
		{SNRdB: 4.0, SilencesPerPacket: 4},   // 6 Mb/s (BPSK,1/2)
		{SNRdB: 5.5, SilencesPerPacket: 2},   // 9 Mb/s (BPSK,3/4)
		{SNRdB: 7.1, SilencesPerPacket: 16},  // 12 Mb/s (QPSK,1/2)
		{SNRdB: 8.5, SilencesPerPacket: 32},  // deeper into the 12 Mb/s band
		{SNRdB: 9.5, SilencesPerPacket: 2},   // 18 Mb/s (QPSK,3/4)
		{SNRdB: 11.0, SilencesPerPacket: 4},  //
		{SNRdB: 12.0, SilencesPerPacket: 16}, // 24 Mb/s (16QAM,1/2)
		{SNRdB: 14.0, SilencesPerPacket: 32}, //
		{SNRdB: 16.0, SilencesPerPacket: 2},  // 36 Mb/s (16QAM,3/4)
		{SNRdB: 18.0, SilencesPerPacket: 4},  //
		{SNRdB: 19.5, SilencesPerPacket: 2},  // 48 Mb/s (64QAM,2/3)
		{SNRdB: 22.0, SilencesPerPacket: 2},  // 54 Mb/s (64QAM,3/4)
		{SNRdB: 24.0, SilencesPerPacket: 4},  //
	})
	if err != nil {
		// The literal table above is well-formed by construction.
		panic(err)
	}
	return t
}

// SilencesPerSecond converts a per-packet silence budget into the paper's
// Rm metric (silence symbols per second) for back-to-back transmission of
// psduLen-byte packets at the given mode (frame aggregation, as in the
// Fig. 9 measurement method).
func SilencesPerSecond(budget int, mode phy.Mode, psduLen int) float64 {
	symbols := mode.SymbolsForPSDU(psduLen)
	packetDur := float64(ofdm.PreambleLen+symbols*ofdm.SymbolLen) / ofdm.SampleRate
	return float64(budget) / packetDur
}

// ControlBitsPerSecond converts a per-packet silence budget into a control
// message bit rate: each silence beyond the start marker closes one
// interval carrying k bits.
func ControlBitsPerSecond(budget int, k int, mode phy.Mode, psduLen int) float64 {
	if budget < 2 {
		return 0
	}
	symbols := mode.SymbolsForPSDU(psduLen)
	packetDur := float64(ofdm.PreambleLen+symbols*ofdm.SymbolLen) / ofdm.SampleRate
	return float64((budget-1)*k) / packetDur
}
