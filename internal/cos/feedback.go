package cos

import (
	"fmt"
	"math"

	"cos/internal/bits"
	"cos/internal/ofdm"
	"cos/internal/phy"
)

// The paper transmits the receiver's feedback "built on top of the
// transmission of ACK frame" (Sec. III-A): a small acknowledgement PSDU at
// the base rate carrying the measured SNR, followed by ONE extra OFDM
// symbol — the subcarrier-selection vector V, in which a silence on data
// subcarrier j means "j is a control subcarrier" (Sec. III-D).

// feedbackMode is the base rate used for feedback frames.
const feedbackRateMbps = 6

// feedbackMagic tags feedback PSDUs so stray frames are not misparsed.
const feedbackMagic = 0xC5

// snrQuant is the SNR quantization step (dB) of the feedback payload.
const snrQuant = 0.25

// snrOffset shifts the quantized SNR so negative values encode.
const snrOffset = 10.0

// Feedback is the receiver state carried back to the sender.
type Feedback struct {
	// MeasuredSNRdB is the receiver's NIC SNR report (quantized to 0.25 dB
	// on the wire, range -10..+53.75 dB).
	MeasuredSNRdB float64
	// Selected lists the control subcarriers chosen by the receiver.
	Selected []int
}

// encodePSDU packs the feedback scalar fields: magic, quantized SNR, and
// the selection count (for a crosscheck against the V symbol), FCS-framed.
func (f Feedback) encodePSDU() ([]byte, error) {
	q := math.Round((f.MeasuredSNRdB + snrOffset) / snrQuant)
	if q < 0 || q > 255 {
		return nil, fmt.Errorf("cos: measured SNR %.2f dB outside the feedback range", f.MeasuredSNRdB)
	}
	body := []byte{feedbackMagic, byte(q), byte(len(f.Selected))}
	return bits.AppendFCS(body), nil
}

// decodePSDU inverts encodePSDU; ok is false on FCS or format mismatch.
func decodePSDU(psdu []byte) (snrDB float64, selCount int, ok bool) {
	body, ok := bits.CheckFCS(psdu)
	if !ok || len(body) != 3 || body[0] != feedbackMagic {
		return 0, 0, false
	}
	return float64(body[1])*snrQuant - snrOffset, int(body[2]), true
}

// BuildFeedbackFrame renders a feedback frame to baseband samples: preamble,
// the ACK payload symbols at 6 Mb/s, then the one-symbol selection vector V
// (all data subcarriers +1 except silences on the selected ones).
// An empty selection is legal: the V symbol carries no silences and the
// payload count is zero (CoS paused on a hostile channel).
func BuildFeedbackFrame(f Feedback) ([]complex128, error) {
	if len(f.Selected) > 0 {
		if err := validateCtrlSCs(f.Selected); err != nil {
			return nil, err
		}
	}
	mode, err := phy.ModeByRate(feedbackRateMbps)
	if err != nil {
		return nil, err
	}
	psdu, err := f.encodePSDU()
	if err != nil {
		return nil, err
	}
	pkt, err := phy.BuildPacket(phy.TxConfig{Mode: mode}, psdu)
	if err != nil {
		return nil, err
	}
	payload, err := pkt.Grid.Modulate(1)
	if err != nil {
		return nil, err
	}
	vGrid, err := EncodeFeedback(f.Selected)
	if err != nil {
		return nil, err
	}
	// The V symbol continues the pilot polarity sequence after the payload.
	vSamples, err := vGrid.Modulate(1 + pkt.NumSymbols())
	if err != nil {
		return nil, err
	}
	out := make([]complex128, 0, ofdm.PreambleLen+len(payload)+len(vSamples))
	out = append(out, ofdm.Preamble()...)
	out = append(out, payload...)
	out = append(out, vSamples...)
	return out, nil
}

// feedbackSymbols returns the payload symbol count of a feedback frame.
func feedbackSymbols() (int, error) {
	mode, err := phy.ModeByRate(feedbackRateMbps)
	if err != nil {
		return 0, err
	}
	return mode.SymbolsForPSDU(3 + bits.FCSLen), nil
}

// ParseFeedbackFrame recovers the feedback from received samples. The V
// symbol is scanned with the energy detector (BPSK discrimination); the
// scalar payload is decoded normally and validated by FCS. A count mismatch
// between the payload's selection count and the scanned V symbol is
// reported as an error (detection was unreliable).
func ParseFeedbackFrame(samples []complex128, det Detector) (Feedback, error) {
	var f Feedback
	mode, err := phy.ModeByRate(feedbackRateMbps)
	if err != nil {
		return f, err
	}
	nAck, err := feedbackSymbols()
	if err != nil {
		return f, err
	}
	fe, err := phy.RunFrontEnd(samples)
	if err != nil {
		return f, err
	}
	if fe.NumSymbols() != nAck+1 {
		return f, fmt.Errorf("cos: feedback frame has %d symbols, want %d", fe.NumSymbols(), nAck+1)
	}

	// Scalar part: decode the first nAck symbols as a normal packet.
	ackFE := &phy.FrontEnd{
		Bins:           fe.Bins[:nAck],
		ChannelEst:     fe.ChannelEst,
		NoiseVar:       fe.NoiseVar,
		PerSymbolNoise: fe.PerSymbolNoise[:nAck],
		LTFNoiseVar:    fe.LTFNoiseVar,
	}
	dec, err := ackFE.Decode(phy.DecodeConfig{Mode: mode, PSDULen: 3 + bits.FCSLen})
	if err != nil {
		return f, err
	}
	snrDB, selCount, ok := decodePSDU(dec.PSDU)
	if !ok {
		return f, fmt.Errorf("cos: feedback payload failed its frame check")
	}

	// V symbol: silence scan over all 48 data subcarriers. The symbol is
	// BPSK-like (+1 on unselected subcarriers).
	det.Scheme = 0 // unit minimum point energy
	scan, err := det.DetectSymbol(fe, nAck)
	if err != nil {
		return f, err
	}
	// Deeply faded subcarriers always scan as silent, but the selection
	// rule (SelectDetectable) never picks undetectable subcarriers, so the
	// sender can discard those scan hits: under channel reciprocity both
	// ends agree on which subcarriers are dead.
	snrs, err := fe.SubcarrierSNRs()
	if err != nil {
		return f, err
	}
	for sc := range scan {
		if scan[sc] && snrs[sc] < DefaultDetectabilityFloor {
			scan[sc] = false
		}
	}
	sel, err := MaskToSelection(scan)
	if err != nil {
		return f, err
	}
	if len(sel) != selCount {
		return f, fmt.Errorf("cos: V symbol shows %d selected subcarriers, payload says %d", len(sel), selCount)
	}
	f.MeasuredSNRdB = snrDB
	f.Selected = sel
	return f, nil
}
