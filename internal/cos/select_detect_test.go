package cos

import (
	"testing"

	"cos/internal/modulation"
	"cos/internal/ofdm"
)

func flatSNR(v float64) []float64 {
	out := make([]float64, ofdm.NumData)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestSelectDetectableExcludesDeadSubcarriers(t *testing.T) {
	evm := flatEVM(0.05)
	snr := flatSNR(100)
	// Subcarriers 10 and 30 are weak (high EVM) but 30 is too faded to
	// detect silences on.
	evm[10], snr[10] = 0.8, 60
	evm[30], snr[30] = 0.9, 3
	got, err := SelectDetectable(evm, snr, modulation.QPSK, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range got {
		if sc == 30 {
			t.Error("undetectable subcarrier 30 selected")
		}
	}
	found := false
	for _, sc := range got {
		if sc == 10 {
			found = true
		}
	}
	if !found {
		t.Errorf("weak detectable subcarrier 10 not selected: %v", got)
	}
}

func TestSelectDetectableQuotaFromStrong(t *testing.T) {
	// Nothing crosses the EVM threshold; quota filled by weakest
	// detectable subcarriers.
	evm := flatEVM(0.02)
	snr := flatSNR(200)
	evm[5] = 0.04
	evm[40] = 0.05
	got, err := SelectDetectable(evm, snr, modulation.QAM16, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 5 || got[1] != 40 {
		t.Errorf("selected %v, want [5 40]", got)
	}
}

func TestSelectDetectableNoCandidates(t *testing.T) {
	if _, err := SelectDetectable(flatEVM(0.5), flatSNR(1), modulation.QAM64, 1, 0, 0); err == nil {
		t.Error("all-dead channel should error")
	}
}

func TestSelectDetectableMaxCount(t *testing.T) {
	evm := flatEVM(0.9) // everything weak
	snr := flatSNR(500) // everything detectable
	got, err := SelectDetectable(evm, snr, modulation.QPSK, 1, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Errorf("selected %d, want 6", len(got))
	}
}

func TestSelectDetectableValidation(t *testing.T) {
	if _, err := SelectDetectable(flatEVM(0.1), flatSNR(10)[:5], modulation.QPSK, 1, 0, 0); err == nil {
		t.Error("short SNR vector should error")
	}
	if _, err := SelectDetectable(flatEVM(0.1), flatSNR(10), modulation.QPSK, 1, 0, 0.5); err == nil {
		t.Error("floor below 1 should error")
	}
	if _, err := SelectDetectable(flatEVM(0.1), flatSNR(100), modulation.QPSK, 0, 0, 0); err == nil {
		t.Error("minCount 0 should error")
	}
	if _, err := SelectDetectable(flatEVM(0.1), flatSNR(100), modulation.QPSK, 5, 2, 0); err == nil {
		t.Error("maxCount < minCount should error")
	}
}

func TestMinPointEnergyValues(t *testing.T) {
	cases := map[modulation.Scheme]float64{
		modulation.BPSK:  1,
		modulation.QPSK:  1,
		modulation.QAM16: 0.2,
		modulation.QAM64: 2.0 / 42.0,
	}
	for s, want := range cases {
		got := s.MinPointEnergy()
		if diff := got - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("%v MinPointEnergy = %v, want %v", s, got, want)
		}
	}
	if modulation.Scheme(0).MinPointEnergy() != 0 {
		t.Error("invalid scheme should report 0")
	}
}
