package cos

import (
	"fmt"
	"sort"

	"cos/internal/modulation"
	"cos/internal/ofdm"
)

// SelectControlSubcarriers implements the paper's subcarrier selection
// (Sec. III-D): a data subcarrier whose EVM exceeds Dm/2 for the upcoming
// mode's constellation cannot be demodulated reliably, so its symbols are
// already doomed to be corrected by the channel code — erasing them for CoS
// is nearly free. Those subcarriers are selected as control subcarriers.
//
// evm holds the per-subcarrier EVM fractions measured from the last
// correctly decoded packet. minCount guarantees CoS always has carriers to
// signal on (on clean channels no subcarrier may cross the threshold): if
// fewer qualify, the weakest (highest-EVM) subcarriers fill the quota.
// maxCount, if positive, caps the selection at the weakest maxCount.
// The result is in ascending subcarrier order.
func SelectControlSubcarriers(evm []float64, scheme modulation.Scheme, minCount, maxCount int) ([]int, error) {
	if len(evm) != ofdm.NumData {
		return nil, fmt.Errorf("cos: EVM vector has %d entries, want %d", len(evm), ofdm.NumData)
	}
	if !scheme.Valid() {
		return nil, fmt.Errorf("cos: invalid modulation scheme %d", int(scheme))
	}
	if minCount < 1 || minCount > ofdm.NumData {
		return nil, fmt.Errorf("cos: minCount %d out of range [1,%d]", minCount, ofdm.NumData)
	}
	if maxCount != 0 && maxCount < minCount {
		return nil, fmt.Errorf("cos: maxCount %d below minCount %d", maxCount, minCount)
	}

	threshold := scheme.MinDistance() / 2
	type sub struct {
		idx int
		evm float64
	}
	byWeakness := make([]sub, ofdm.NumData)
	for i, e := range evm {
		byWeakness[i] = sub{idx: i, evm: e}
	}
	sort.Slice(byWeakness, func(a, b int) bool {
		if byWeakness[a].evm != byWeakness[b].evm {
			return byWeakness[a].evm > byWeakness[b].evm
		}
		return byWeakness[a].idx < byWeakness[b].idx
	})

	selected := make([]int, 0, minCount)
	for _, s := range byWeakness {
		if s.evm > threshold || len(selected) < minCount {
			selected = append(selected, s.idx)
			continue
		}
		break
	}
	if maxCount > 0 && len(selected) > maxCount {
		selected = selected[:maxCount]
	}
	sort.Ints(selected)
	return selected, nil
}

// EncodeFeedback builds the one-OFDM-symbol subcarrier-selection feedback of
// Sec. III-D: a grid of one symbol where each selected subcarrier is silent
// and every other data subcarrier carries a known BPSK pilot (+1). The
// symbol rides on the reverse link (piggybacked on the ACK in the paper).
// An empty selection is legal and encodes as an all-active symbol (the
// receiver found no usable control subcarriers; CoS pauses).
func EncodeFeedback(selected []int) (*ofdm.Grid, error) {
	if len(selected) > 0 {
		if err := validateCtrlSCs(selected); err != nil {
			return nil, err
		}
	}
	g := ofdm.NewGrid(1)
	row, err := g.Symbol(0)
	if err != nil {
		return nil, err
	}
	for i := range row {
		row[i] = 1
	}
	for _, sc := range selected {
		row[sc] = 0
	}
	return g, nil
}

// DefaultDetectabilityFloor is the minimum linear ratio between a
// subcarrier's weakest active constellation energy and the noise floor for
// the subcarrier to be usable as a control subcarrier (~15 dB separation:
// the detection threshold then sits well clear of both hypotheses, keeping
// per-symbol false negatives near 0.4% and false positives near 1e-5 on the
// weakest admissible subcarrier — what whole-message delivery needs, since
// one detection error anywhere in a packet shifts every later interval).
const DefaultDetectabilityFloor = 30.0

// SelectDetectable refines SelectControlSubcarriers with the constraint the
// paper's lab setup satisfied implicitly: a control subcarrier must be weak
// enough to be nearly free (high EVM) yet strong enough that energy
// detection can still separate silence from its weakest constellation
// point. subcarrierSNRs are the receiver's per-subcarrier linear SNR
// estimates (phy.FrontEnd.SubcarrierSNRs); floor is the minimum
// minPointEnergy*SNR ratio (zero selects DefaultDetectabilityFloor).
//
// Undetectable subcarriers are excluded outright. If fewer than minCount
// detectable subcarriers exist, the strongest detectable ones still fill
// the quota; if none are detectable, an error is returned (CoS must stay
// silent — in the protocol sense — on such a channel).
func SelectDetectable(evm, subcarrierSNRs []float64, scheme modulation.Scheme, minCount, maxCount int, floor float64) ([]int, error) {
	if len(subcarrierSNRs) != ofdm.NumData {
		return nil, fmt.Errorf("cos: SNR vector has %d entries, want %d", len(subcarrierSNRs), ofdm.NumData)
	}
	if floor == 0 {
		floor = DefaultDetectabilityFloor
	}
	if floor < 1 {
		return nil, fmt.Errorf("cos: detectability floor %v below 1", floor)
	}
	all, err := SelectControlSubcarriers(evm, scheme, ofdm.NumData, 0)
	if err != nil {
		return nil, err
	}
	if minCount < 1 || (maxCount != 0 && maxCount < minCount) {
		return nil, fmt.Errorf("cos: bad quota min=%d max=%d", minCount, maxCount)
	}
	minE := scheme.MinPointEnergy()
	// Re-rank by weakness (highest EVM first) keeping only detectable ones.
	type cand struct {
		idx int
		evm float64
	}
	var cands []cand
	for _, sc := range all {
		if minE*subcarrierSNRs[sc] >= floor {
			cands = append(cands, cand{idx: sc, evm: evm[sc]})
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("cos: no detectable control subcarriers (floor %v)", floor)
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].evm != cands[b].evm {
			return cands[a].evm > cands[b].evm
		}
		return cands[a].idx < cands[b].idx
	})
	threshold := scheme.MinDistance() / 2
	selected := make([]int, 0, minCount)
	for _, c := range cands {
		if c.evm > threshold || len(selected) < minCount {
			selected = append(selected, c.idx)
			continue
		}
		break
	}
	if maxCount > 0 && len(selected) > maxCount {
		selected = selected[:maxCount]
	}
	sort.Ints(selected)
	return selected, nil
}

// MaskToSelection converts a one-symbol silence scan (from
// Detector.DetectSymbol against the feedback symbol) into the ascending
// list of selected subcarriers — the receive side of EncodeFeedback.
func MaskToSelection(silent []bool) ([]int, error) {
	if len(silent) != ofdm.NumData {
		return nil, fmt.Errorf("cos: scan has %d entries, want %d", len(silent), ofdm.NumData)
	}
	var out []int
	for sc, s := range silent {
		if s {
			out = append(out, sc)
		}
	}
	return out, nil
}
