package cos

import (
	"math"
	"testing"

	"cos/internal/phy"
)

func TestNewRateTableValidation(t *testing.T) {
	if _, err := NewRateTable(nil); err == nil {
		t.Error("empty table should error")
	}
	if _, err := NewRateTable([]RateEntry{{SNRdB: 5, SilencesPerPacket: -1}}); err == nil {
		t.Error("negative budget should error")
	}
	if _, err := NewRateTable([]RateEntry{{SNRdB: 5, SilencesPerPacket: 1}, {SNRdB: 5, SilencesPerPacket: 2}}); err == nil {
		t.Error("duplicate SNR should error")
	}
}

func TestRateTableLookup(t *testing.T) {
	tbl, err := NewRateTable([]RateEntry{
		{SNRdB: 15, SilencesPerPacket: 40},
		{SNRdB: 5, SilencesPerPacket: 10},
		{SNRdB: 10, SilencesPerPacket: 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		snr  float64
		want int
	}{
		{3, 10},   // below all floors -> fallback (minimum budget)
		{5, 10},   // exact floor
		{9.9, 10}, // below next band
		{10, 25},
		{14.9, 25},
		{15, 40},
		{30, 40},
	}
	for _, c := range cases {
		if got := tbl.Lookup(c.snr); got != c.want {
			t.Errorf("Lookup(%v) = %d, want %d", c.snr, got, c.want)
		}
	}
	if got := tbl.Fallback(); got != 10 {
		t.Errorf("Fallback = %d, want 10", got)
	}
}

func TestRateTableEntriesSortedCopy(t *testing.T) {
	tbl, err := NewRateTable([]RateEntry{
		{SNRdB: 15, SilencesPerPacket: 40},
		{SNRdB: 5, SilencesPerPacket: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := tbl.Entries()
	if e[0].SNRdB != 5 || e[1].SNRdB != 15 {
		t.Errorf("entries not sorted: %v", e)
	}
	e[0].SilencesPerPacket = 999
	if tbl.Entries()[0].SilencesPerPacket == 999 {
		t.Error("Entries returned aliased storage")
	}
}

func TestDefaultRateTableSane(t *testing.T) {
	tbl := DefaultRateTable()
	if len(tbl.Entries()) < 5 {
		t.Error("default table suspiciously small")
	}
	if tbl.Fallback() <= 0 {
		t.Error("fallback budget should be positive")
	}
	for _, e := range tbl.Entries() {
		if e.SilencesPerPacket <= 0 {
			t.Errorf("entry %+v has non-positive budget", e)
		}
	}
}

func TestSilencesPerSecond(t *testing.T) {
	mode, err := phy.ModeByRate(24)
	if err != nil {
		t.Fatal(err)
	}
	// 1024-byte packet at 24 Mb/s: 86 symbols x 4us + 16us preamble = 360us.
	got := SilencesPerSecond(18, mode, 1024)
	want := 18.0 / 360e-6
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("SilencesPerSecond = %v, want %v", got, want)
	}
}

func TestControlBitsPerSecond(t *testing.T) {
	mode, err := phy.ModeByRate(24)
	if err != nil {
		t.Fatal(err)
	}
	// 18 silences -> 17 intervals x 4 bits per 360us packet.
	got := ControlBitsPerSecond(18, 4, mode, 1024)
	want := 17.0 * 4 / 360e-6
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("ControlBitsPerSecond = %v, want %v", got, want)
	}
	if ControlBitsPerSecond(1, 4, mode, 1024) != 0 {
		t.Error("budget 1 carries no intervals")
	}
	if ControlBitsPerSecond(0, 4, mode, 1024) != 0 {
		t.Error("budget 0 carries no intervals")
	}
}
