package cos

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cos/internal/bits"
	"cos/internal/ofdm"
)

func TestEncodeIntervalsPaperExample(t *testing.T) {
	// Sec. II-A: "001001101000001110100111" -> 2, 6, 8, 1, 14(?), ...
	// The paper spells out {"0010" -> 2, "0110" -> 6, ..., "0111" -> 7}.
	msg := []byte{0, 0, 1, 0, 0, 1, 1, 0, 1, 0, 0, 0, 0, 0, 1, 1, 1, 0, 1, 0, 0, 1, 1, 1}
	got, err := EncodeIntervals(msg, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 6, 8, 3, 10, 7}
	if len(got) != len(want) {
		t.Fatalf("intervals = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("interval %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestIntervalRoundTrip(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw)%8 + 1
		rng := rand.New(rand.NewSource(seed))
		msg := make([]byte, k*(1+rng.Intn(20)))
		for i := range msg {
			msg[i] = byte(rng.Intn(2))
		}
		iv, err := EncodeIntervals(msg, k)
		if err != nil {
			return false
		}
		back, err := DecodeIntervals(iv, k)
		if err != nil {
			return false
		}
		return bits.Equal(back, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEncodeIntervalsErrors(t *testing.T) {
	if _, err := EncodeIntervals(make([]byte, 5), 4); err == nil {
		t.Error("non-multiple length should error")
	}
	if _, err := EncodeIntervals([]byte{0, 1, 2, 0}, 4); err == nil {
		t.Error("non-bit should error")
	}
	if _, err := EncodeIntervals(nil, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := EncodeIntervals(nil, 17); err == nil {
		t.Error("k=17 should error")
	}
}

func TestDecodeIntervalsErrors(t *testing.T) {
	if _, err := DecodeIntervals([]int{16}, 4); err == nil {
		t.Error("interval out of range should error")
	}
	if _, err := DecodeIntervals([]int{-1}, 4); err == nil {
		t.Error("negative interval should error")
	}
	if _, err := DecodeIntervals([]int{1}, 0); err == nil {
		t.Error("k=0 should error")
	}
}

func TestLayoutPaperFigure(t *testing.T) {
	// Fig. 1(a): 6 control subcarriers; start marker at S(1,1); "0010"=2
	// puts the next silence at S(1,4); "0110"=6 puts the following one at
	// S(2,5). With our zero-based traversal (sym, ctrl slot):
	ctrl := []int{0, 1, 2, 3, 4, 5}
	pos, err := Layout([]int{2, 6}, 4, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	want := []Pos{{0, 0}, {0, 3}, {1, 4}}
	if len(pos) != len(want) {
		t.Fatalf("positions = %v", pos)
	}
	for i := range want {
		if pos[i] != want[i] {
			t.Errorf("pos %d = %+v, want %+v", i, pos[i], want[i])
		}
	}
}

func TestLayoutExtractRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nCtrl := 1 + rng.Intn(8)
		ctrl := randomCtrlSet(rng, nCtrl)
		numSym := 10 + rng.Intn(80)
		k := 4
		maxBits := MaxMessageBits(numSym, nCtrl, k)
		if maxBits == 0 {
			return true
		}
		nBits := k * (1 + rng.Intn(maxBits/k))
		msg := make([]byte, nBits)
		for i := range msg {
			msg[i] = byte(rng.Intn(2))
		}
		iv, err := EncodeIntervals(msg, k)
		if err != nil {
			return false
		}
		pos, err := Layout(iv, numSym, ctrl)
		if err != nil {
			return false
		}
		mask := NewMask(numSym)
		for _, p := range pos {
			mask[p.Sym][p.SC] = true
		}
		gotIv, err := ExtractIntervals(mask, ctrl)
		if err != nil {
			return false
		}
		back, err := DecodeIntervals(gotIv, k)
		if err != nil {
			return false
		}
		return bits.Equal(back, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func randomCtrlSet(rng *rand.Rand, n int) []int {
	perm := rng.Perm(ofdm.NumData)[:n]
	// ascending
	for i := 0; i < len(perm); i++ {
		for j := i + 1; j < len(perm); j++ {
			if perm[j] < perm[i] {
				perm[i], perm[j] = perm[j], perm[i]
			}
		}
	}
	return perm
}

func TestLayoutCapacityError(t *testing.T) {
	ctrl := []int{10, 11}
	// 3 symbols x 2 subcarriers = 6 positions; interval 15 needs 17.
	if _, err := Layout([]int{15}, 3, ctrl); err == nil {
		t.Error("oversized message should error")
	}
	if _, err := Layout([]int{-1}, 3, ctrl); err == nil {
		t.Error("negative interval should error")
	}
	if _, err := Layout(nil, 0, ctrl); err == nil {
		t.Error("zero symbols should error")
	}
}

func TestLayoutCtrlValidation(t *testing.T) {
	bad := [][]int{nil, {}, {-1}, {48}, {5, 5}, {7, 3}}
	for _, ctrl := range bad {
		if _, err := Layout([]int{1}, 10, ctrl); err == nil {
			t.Errorf("ctrl set %v should error", ctrl)
		}
	}
}

func TestExtractIntervalsIgnoresLeadingNormals(t *testing.T) {
	// Silences at traversal positions 3 and 5 with ctrl = {20}: the first
	// silence is the start marker; one interval of gap 1.
	mask := NewMask(8)
	mask[3][20] = true
	mask[5][20] = true
	iv, err := ExtractIntervals(mask, []int{20})
	if err != nil {
		t.Fatal(err)
	}
	if len(iv) != 1 || iv[0] != 1 {
		t.Errorf("intervals = %v, want [1]", iv)
	}
}

func TestExtractIntervalsEmptyMask(t *testing.T) {
	iv, err := ExtractIntervals(NewMask(5), []int{3, 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(iv) != 0 {
		t.Errorf("intervals = %v, want empty", iv)
	}
}

func TestMaxMessageBits(t *testing.T) {
	// 100 symbols x 4 subcarriers = 400 positions; k=4 -> 16 positions per
	// worst-case interval after the start marker: 24 intervals = 96 bits.
	if got := MaxMessageBits(100, 4, 4); got != 96 {
		t.Errorf("MaxMessageBits = %d, want 96", got)
	}
	if MaxMessageBits(0, 4, 4) != 0 || MaxMessageBits(10, 0, 4) != 0 || MaxMessageBits(10, 4, 0) != 0 {
		t.Error("degenerate inputs should yield 0")
	}
}

func TestSilenceCount(t *testing.T) {
	if got := SilenceCount([]int{1, 2, 3}); got != 4 {
		t.Errorf("SilenceCount = %d, want 4", got)
	}
	if got := SilenceCount(nil); got != 1 {
		t.Errorf("SilenceCount(nil) = %d, want 1", got)
	}
}
