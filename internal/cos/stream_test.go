package cos

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cos/internal/bits"
)

func TestFragmentRoundTrip(t *testing.T) {
	f := func(seed int64, sizeRaw uint16, maxRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(sizeRaw) % 400
		maxFrag := 16 + int(maxRaw)%64
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(rng.Intn(2))
		}
		var fr Fragmenter
		frags, err := fr.Split(payload, maxFrag)
		if err != nil {
			// Only legitimate failure: too many fragments.
			return (size+maxFrag-fragHeaderLen-1)/(maxFrag-fragHeaderLen) > MaxFragments
		}
		var re Reassembler
		for i, frag := range frags {
			if len(frag) > maxFrag {
				return false
			}
			got, done, err := re.Push(frag)
			if err != nil {
				return false
			}
			if done != (i == len(frags)-1) {
				return false
			}
			if done {
				return bits.Equal(got, payload)
			}
		}
		return size == 0 // empty payload completes on its single fragment
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFragmenterValidation(t *testing.T) {
	var f Fragmenter
	if _, err := f.Split([]byte{2}, 32); err == nil {
		t.Error("non-bit payload should error")
	}
	if _, err := f.Split(make([]byte, 10), fragHeaderLen); err == nil {
		t.Error("fragment size leaving no payload room should error")
	}
	if _, err := f.Split(make([]byte, 10000), 12); err == nil {
		t.Error("payload needing too many fragments should error")
	}
}

func TestFragmenterIDsCycle(t *testing.T) {
	var f Fragmenter
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		frags, err := f.Split([]byte{1}, 32)
		if err != nil {
			t.Fatal(err)
		}
		id := 0
		for b := 0; b < fragIDBits; b++ {
			id = id<<1 | int(frags[0][b])
		}
		if seen[id] {
			t.Fatalf("message ID %d repeated within 16 messages", id)
		}
		seen[id] = true
	}
}

func TestReassemblerAbortsOnGap(t *testing.T) {
	var f Fragmenter
	payload := make([]byte, 100)
	frags, err := f.Split(payload, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 3 {
		t.Fatalf("want >=3 fragments, got %d", len(frags))
	}
	var re Reassembler
	if _, _, err := re.Push(frags[0]); err != nil {
		t.Fatal(err)
	}
	// Skip fragment 1: fragment 2 must abort the message.
	if _, done, err := re.Push(frags[2]); err == nil || done {
		t.Error("gap should abort the message with an error")
	}
	if re.InProgress() {
		t.Error("aborted message still marked in progress")
	}
}

func TestReassemblerNewMessagePreemptsPartial(t *testing.T) {
	var f Fragmenter
	first, err := f.Split(make([]byte, 100), 40)
	if err != nil {
		t.Fatal(err)
	}
	secondPayload := []byte{1, 0, 1}
	second, err := f.Split(secondPayload, 40)
	if err != nil {
		t.Fatal(err)
	}
	var re Reassembler
	if _, _, err := re.Push(first[0]); err != nil {
		t.Fatal(err)
	}
	got, done, err := re.Push(second[0])
	if err != nil || !done {
		t.Fatalf("new single-fragment message should complete: %v %v", done, err)
	}
	if !bits.Equal(got, secondPayload) {
		t.Errorf("payload %v, want %v", got, secondPayload)
	}
}

func TestReassemblerStrayFragment(t *testing.T) {
	var f Fragmenter
	frags, err := f.Split(make([]byte, 100), 40)
	if err != nil {
		t.Fatal(err)
	}
	var re Reassembler
	// Starting mid-message (idx != 0) is a stray.
	if _, _, err := re.Push(frags[1]); err == nil {
		t.Error("mid-message fragment with no context should error")
	}
	if _, _, err := re.Push(make([]byte, 3)); err == nil {
		t.Error("too-short fragment should error")
	}
}

// TestStreamOverLink pushes a 200-bit control message through the real
// pipeline across multiple packets.
func TestStreamOverLink(t *testing.T) {
	// Uses the internal packages directly to keep this in package cos;
	// the public-API version lives in the root package tests.
	rng := rand.New(rand.NewSource(501))
	payload := make([]byte, 200)
	for i := range payload {
		payload[i] = byte(rng.Intn(2))
	}
	var f Fragmenter
	frags, err := f.Split(payload, 60)
	if err != nil {
		t.Fatal(err)
	}
	var re Reassembler
	var got []byte
	for _, frag := range frags {
		// Frame and immediately parse (the Link does this over the air;
		// here we exercise the composition).
		framed, err := FrameControl(frag)
		if err != nil {
			t.Fatal(err)
		}
		parsed, ok := ParseControl(framed)
		if !ok {
			t.Fatal("framed fragment failed to parse")
		}
		msg, done, err := re.Push(parsed)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			got = msg
		}
	}
	if !bits.Equal(got, payload) {
		t.Fatal("stream roundtrip mismatch")
	}
}
